#include <gtest/gtest.h>

#include "containment/containment.h"
#include "er/er_schema.h"
#include "kb/knowledge_base.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq::er {
namespace {

constexpr const char* kUniversitySchema = R"(
  % conceptual schema of the running example
  entity person {
    attribute name : string;
    attribute age : number optional;
    attribute hobby : string optional multi;
  }
  entity student isa person {
    attribute major : string;
  }
  entity course {
    attribute title : string;
  }
  relationship enrolled {
    role who : student mandatory;
    role what : course unique;
    attribute grade : number optional;
  }
)";

// ---- parsing -------------------------------------------------------------

TEST(ErParserTest, ParsesTheUniversitySchema) {
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  ASSERT_EQ(schema->entities.size(), 3u);
  ASSERT_EQ(schema->relationships.size(), 1u);

  const Entity& person = schema->entities[0];
  EXPECT_EQ(person.name, "person");
  ASSERT_EQ(person.attributes.size(), 3u);
  EXPECT_TRUE(person.attributes[0].mandatory);
  EXPECT_TRUE(person.attributes[0].functional);
  EXPECT_FALSE(person.attributes[1].mandatory);  // optional
  EXPECT_TRUE(person.attributes[1].functional);
  EXPECT_FALSE(person.attributes[2].mandatory);  // optional multi
  EXPECT_FALSE(person.attributes[2].functional);

  const Entity& student = schema->entities[1];
  ASSERT_EQ(student.supertypes.size(), 1u);
  EXPECT_EQ(student.supertypes[0], "person");

  const Relationship& enrolled = schema->relationships[0];
  ASSERT_EQ(enrolled.roles.size(), 2u);
  EXPECT_TRUE(enrolled.roles[0].total_participation);
  EXPECT_FALSE(enrolled.roles[0].unique_participation);
  EXPECT_TRUE(enrolled.roles[1].unique_participation);
}

TEST(ErParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseErSchema("entity {").ok());
  EXPECT_FALSE(ParseErSchema("entity p { attribute a string; }").ok());
  EXPECT_FALSE(ParseErSchema("entity p { attribute a : t weird; }").ok());
  EXPECT_FALSE(ParseErSchema("banana p { }").ok());
  EXPECT_FALSE(ParseErSchema("relationship r { role a : b; }").ok());
}

TEST(ErParserTest, ValidationErrors) {
  // Unknown role entity.
  EXPECT_FALSE(ParseErSchema("entity a { } entity b { } relationship r { "
                             "role x : a; role y : ghost; }")
                   .ok());
  // Duplicate names.
  EXPECT_FALSE(ParseErSchema("entity a { } entity a { }").ok());
  // Unknown supertype.
  EXPECT_FALSE(ParseErSchema("entity a isa ghost { }").ok());
  // ISA cycle.
  EXPECT_FALSE(
      ParseErSchema("entity a isa b { } entity b isa a { }").ok());
  // Relationship with one role.
  EXPECT_FALSE(
      ParseErSchema("entity a { } relationship r { role x : a; }").ok());
}

// ---- compilation ------------------------------------------------------------

TEST(ErCompileTest, EntityEncoding) {
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok());
  World world;
  std::vector<Atom> facts = schema->ToFacts(world);
  auto has = [&](const Atom& atom) {
    for (const Atom& fact : facts) {
      if (fact == atom) return true;
    }
    return false;
  };
  Term person = world.MakeConstant("person");
  Term student = world.MakeConstant("student");
  Term name = world.MakeConstant("name");
  Term age = world.MakeConstant("age");
  Term hobby = world.MakeConstant("hobby");

  EXPECT_TRUE(has(Atom::Sub(student, person)));
  EXPECT_TRUE(has(Atom::Type(person, name, world.MakeConstant("string"))));
  EXPECT_TRUE(has(Atom::Mandatory(name, person)));
  EXPECT_TRUE(has(Atom::Funct(name, person)));
  EXPECT_FALSE(has(Atom::Mandatory(age, person)));  // optional
  EXPECT_TRUE(has(Atom::Funct(age, person)));
  EXPECT_FALSE(has(Atom::Mandatory(hobby, person)));
  EXPECT_FALSE(has(Atom::Funct(hobby, person)));
}

TEST(ErCompileTest, RelationshipEncoding) {
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok());
  World world;
  std::vector<Atom> facts = schema->ToFacts(world);
  auto has = [&](const Atom& atom) {
    for (const Atom& fact : facts) {
      if (fact == atom) return true;
    }
    return false;
  };
  Term enrolled = world.MakeConstant("enrolled");
  Term who = world.MakeConstant("who");
  Term what = world.MakeConstant("what");
  Term student = world.MakeConstant("student");
  Term course = world.MakeConstant("course");
  Term who_inv = world.MakeConstant("who_of_enrolled");
  Term what_inv = world.MakeConstant("what_of_enrolled");

  // Tuple side: both roles exactly-one.
  EXPECT_TRUE(has(Atom::Type(enrolled, who, student)));
  EXPECT_TRUE(has(Atom::Mandatory(who, enrolled)));
  EXPECT_TRUE(has(Atom::Funct(who, enrolled)));
  EXPECT_TRUE(has(Atom::Type(enrolled, what, course)));
  // Participation side.
  EXPECT_TRUE(has(Atom::Type(student, who_inv, enrolled)));
  EXPECT_TRUE(has(Atom::Mandatory(who_inv, student)));   // total
  EXPECT_FALSE(has(Atom::Funct(who_inv, student)));
  EXPECT_TRUE(has(Atom::Type(course, what_inv, enrolled)));
  EXPECT_TRUE(has(Atom::Funct(what_inv, course)));       // unique
  EXPECT_FALSE(has(Atom::Mandatory(what_inv, course)));
}

// ---- end-to-end: E-R semantics drives containment ----------------------------

TEST(ErContainmentTest, TotalParticipationImpliesEnrollment) {
  // Under the schema, every student participates in `enrolled`: the query
  // for students is contained in the query for participants.
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok());
  World world;
  std::vector<Atom> schema_facts = schema->ToFacts(world);

  // Embed the schema facts into both queries (queries are checked against
  // all databases, so the schema travels in the body).
  auto with_schema = [&](const char* text) {
    ConjunctiveQuery q = *ParseQuery(world, text);
    std::vector<Atom> body = q.body();
    body.insert(body.end(), schema_facts.begin(), schema_facts.end());
    return ConjunctiveQuery(q.name(), q.head(), std::move(body));
  };

  ConjunctiveQuery students = with_schema("q(S) :- member(S, student).");
  ConjunctiveQuery participants = *ParseQuery(
      world, "q(S) :- data(S, who_of_enrolled, E), member(E, enrolled).");

  Result<ContainmentResult> result =
      CheckContainment(world, students, participants);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);
}

TEST(ErContainmentTest, RelationshipTupleYieldsRoleFillers) {
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok());
  World world;
  std::vector<Atom> schema_facts = schema->ToFacts(world);

  std::vector<Atom> body = {Atom::Member(world.MakeVariable("E"),
                                         world.MakeConstant("enrolled"))};
  body.insert(body.end(), schema_facts.begin(), schema_facts.end());
  ConjunctiveQuery tuples("q", {world.MakeVariable("E")}, body);

  // Every enrolled-tuple has a student filler for `who`.
  ConjunctiveQuery with_filler = *ParseQuery(
      world, "q(E) :- data(E, who, S), member(S, student).");
  Result<ContainmentResult> result =
      CheckContainment(world, tuples, with_filler);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);
}

TEST(ErKbTest, InstanceDataSaturatesAgainstTheSchema) {
  Result<ErSchema> schema = ParseErSchema(kUniversitySchema);
  ASSERT_TRUE(schema.ok());
  World world;
  KnowledgeBase kb(world);
  for (const Atom& fact : schema->ToFacts(world)) {
    ASSERT_TRUE(kb.AddFact(fact).ok());
  }
  ASSERT_TRUE(kb.Load("ann : student. db : course. e1 : enrolled. "
                      "e1[who -> ann, what -> db]. ann[name -> 'Ann']. "
                      "ann[major -> 'cs'].").ok());
  Result<ConsistencyReport> report = kb.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  // ann is a person (ISA) and has the inherited name typing.
  EXPECT_TRUE(kb.database().Contains(Atom::Member(
      world.MakeConstant("ann"), world.MakeConstant("person"))));
  EXPECT_TRUE(kb.database().Contains(
      Atom::Type(world.MakeConstant("ann"), world.MakeConstant("name"),
                 world.MakeConstant("string"))));

  // Violating role uniqueness is detected: a second enrollment of the
  // same course.
  ASSERT_TRUE(kb.Load("e2 : enrolled. e2[what -> db]. "
                      "db[what_of_enrolled -> e1]. "
                      "db[what_of_enrolled -> e2].").ok());
  report = kb.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
}

}  // namespace
}  // namespace floq::er
