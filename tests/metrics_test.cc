#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "chase/chase.h"
#include "containment/containment.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// The registry is process-wide, so each test starts from zeroed
// instruments and leaves collection disabled for its neighbours.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Get().Reset();
    MetricsRegistry::set_enabled(true);
  }
  void TearDown() override {
    MetricsRegistry::set_enabled(false);
    MetricsRegistry::Get().Reset();
  }
};

// ---- a tiny JSON reader (objects/arrays/strings/numbers) ---------------
//
// Enough of RFC 8259 to parse the exports back: the tests assert on the
// round-trip, not just on substrings, so malformed output fails loudly.

struct JsonValue;
using JsonObject = std::map<std::string, std::shared_ptr<JsonValue>>;
using JsonArray = std::vector<std::shared_ptr<JsonValue>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  std::shared_ptr<JsonValue> Parse() {
    std::shared_ptr<JsonValue> value = ParseValue();
    SkipSpace();
    ok_ = ok_ && pos_ == text_.size();
    return ok_ ? value : nullptr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::shared_ptr<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail();
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') return ParseNull();
    return ParseNumber();
  }

  std::shared_ptr<JsonValue> ParseObject() {
    if (!Consume('{')) return Fail();
    JsonObject object;
    SkipSpace();
    if (Consume('}')) return Make(std::move(object));
    for (;;) {
      std::shared_ptr<JsonValue> key = ParseString();
      if (key == nullptr || !Consume(':')) return Fail();
      std::shared_ptr<JsonValue> value = ParseValue();
      if (value == nullptr) return Fail();
      object[std::get<std::string>(key->value)] = value;
      if (Consume(',')) continue;
      if (Consume('}')) return Make(std::move(object));
      return Fail();
    }
  }

  std::shared_ptr<JsonValue> ParseArray() {
    if (!Consume('[')) return Fail();
    JsonArray array;
    SkipSpace();
    if (Consume(']')) return Make(std::move(array));
    for (;;) {
      std::shared_ptr<JsonValue> value = ParseValue();
      if (value == nullptr) return Fail();
      array.push_back(value);
      if (Consume(',')) continue;
      if (Consume(']')) return Make(std::move(array));
      return Fail();
    }
  }

  std::shared_ptr<JsonValue> ParseString() {
    if (!Consume('"')) return Fail();
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail();
        char escape = text_[pos_++];
        switch (escape) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) return Fail();
            pos_ += 4;  // tests never assert on control characters
            out += '?';
            break;
          default: out += escape;
        }
      } else {
        out += c;
      }
    }
    if (!Consume('"')) return Fail();
    return Make(std::move(out));
  }

  std::shared_ptr<JsonValue> ParseBool() {
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return Make(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return Make(false);
    }
    return Fail();
  }

  std::shared_ptr<JsonValue> ParseNull() {
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return Make(nullptr);
    }
    return Fail();
  }

  std::shared_ptr<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Fail();
    return Make(std::stod(text_.substr(start, pos_ - start)));
  }

  template <typename T>
  std::shared_ptr<JsonValue> Make(T&& value) {
    auto out = std::make_shared<JsonValue>();
    out->value = std::forward<T>(value);
    return out;
  }

  std::shared_ptr<JsonValue> Fail() {
    ok_ = false;
    pos_ = text_.size();
    return nullptr;
  }

  const std::string& text_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- Counter ----------------------------------------------------------

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter& counter = MetricsRegistry::Get().counter("test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST_F(MetricsTest, CounterNameIsStable) {
  Counter& a = MetricsRegistry::Get().counter("test.same");
  Counter& b = MetricsRegistry::Get().counter("test.same");
  EXPECT_EQ(&a, &b);
}

// The TSan target of the suite: many threads hammer one counter (and one
// histogram) while a reader thread snapshots concurrently; after the join
// the totals must be exact.
TEST_F(MetricsTest, ConcurrentIncrementsAreExactAfterJoin) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  Counter& counter = MetricsRegistry::Get().counter("test.concurrent");
  Histogram& histogram =
      MetricsRegistry::Get().histogram("test.concurrent_histogram");

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    // Concurrent snapshots must be torn-free (each shard read is atomic)
    // and monotone in aggregate; mainly this exercises TSan.
    uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
      for (const auto& c : snapshot.counters) {
        if (c.name == "test.concurrent") {
          EXPECT_GE(c.value, last);
          last = c.value;
        }
      }
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(uint64_t(i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(counter.Value(), uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(histogram.Count(), uint64_t(kThreads) * kPerThread);
  // Sum of 0..kPerThread-1, kThreads times over.
  EXPECT_EQ(histogram.Sum(), uint64_t(kThreads) * kPerThread *
                                 (kPerThread - 1) / 2);
}

// ---- Histogram buckets ------------------------------------------------

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(1023), 10);
  EXPECT_EQ(Histogram::BucketOf(1024), 11);
  EXPECT_EQ(Histogram::BucketOf(UINT64_MAX), Histogram::kBuckets - 1);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(2), 2u);
  EXPECT_EQ(Histogram::BucketLowerBound(3), 4u);
  EXPECT_EQ(Histogram::BucketLowerBound(11), 1024u);

  // Every value lands in the bucket whose range contains it.
  for (uint64_t value : {0ull, 1ull, 2ull, 3ull, 5ull, 100ull, 4096ull}) {
    int bucket = Histogram::BucketOf(value);
    EXPECT_GE(value, Histogram::BucketLowerBound(bucket)) << value;
    if (bucket + 1 < Histogram::kBuckets) {
      EXPECT_LT(value, Histogram::BucketLowerBound(bucket + 1)) << value;
    }
  }
}

TEST_F(MetricsTest, HistogramRecordFillsBuckets) {
  Histogram& histogram = MetricsRegistry::Get().histogram("test.buckets");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(3);
  auto buckets = histogram.Buckets();
  EXPECT_EQ(buckets[0], 1u);  // value 0
  EXPECT_EQ(buckets[1], 1u);  // value 1
  EXPECT_EQ(buckets[2], 2u);  // values 2, 3
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 6u);
}

// ---- disabled-by-default gating ---------------------------------------

TEST(MetricsGatingTest, DisabledRegistryCollectsNothingFromChase) {
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::Get().Reset();

  World world;
  ConjunctiveQuery q = Q(world, "q(A) :- type(T, A, T2), sub(T2, T3).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_GT(chase.size(), 0u);

  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  for (const auto& counter : snapshot.counters) {
    EXPECT_EQ(counter.value, 0u) << counter.name;
  }
}

// ---- instrumentation plumbing -----------------------------------------

TEST_F(MetricsTest, ContainmentCheckPopulatesChaseAndHomSeries) {
  World world;
  ConjunctiveQuery q1 =
      Q(world, "q(A, B) :- type(T1, A, T2), sub(T2, T3), type(T3, B, G).");
  ConjunctiveQuery q2 =
      Q(world, "qq(A, B) :- type(T1, A, T2), type(T2, B, G).");
  auto result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
  EXPECT_GE(result->chase_ms, 0.0);
  EXPECT_GE(result->hom_ms, 0.0);

  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  std::map<std::string, uint64_t> counters;
  for (const auto& c : snapshot.counters) counters[c.name] = c.value;

  EXPECT_EQ(counters["chase.runs"], 1u);
  // The pair.fl-style containment derives its witness via rho_7/rho_8.
  EXPECT_GT(counters["chase.rule.rho7"] + counters["chase.rule.rho8"], 0u);
  // All twelve per-rule series exist even when they never fired.
  for (int k = 1; k <= 12; ++k) {
    EXPECT_TRUE(counters.count("chase.rule.rho" + std::to_string(k))) << k;
  }
  EXPECT_GT(counters["match.kernel_dispatch"], 0u);
  EXPECT_GT(counters["hom.nodes_visited"], 0u);
  EXPECT_GT(counters["hom.matches_found"], 0u);

  bool found_level = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "chase.max_level") {
      found_level = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(found_level);
}

// ---- JSON exports -----------------------------------------------------

TEST_F(MetricsTest, MetricsJsonRoundTrips) {
  MetricsRegistry::Get().counter("test.json\"escape").Add(3);
  MetricsRegistry::Get().histogram("test.json_histogram").Record(5);

  std::string json = MetricsRegistry::Get().ToJson();
  std::shared_ptr<JsonValue> root = JsonParser(json).Parse();
  ASSERT_NE(root, nullptr) << json;

  const JsonObject& top = std::get<JsonObject>(root->value);
  ASSERT_TRUE(top.count("counters"));
  ASSERT_TRUE(top.count("histograms"));
  const JsonObject& counters = std::get<JsonObject>(top.at("counters")->value);
  ASSERT_TRUE(counters.count("test.json\"escape"));
  EXPECT_EQ(std::get<double>(counters.at("test.json\"escape")->value), 3.0);

  const JsonObject& histograms =
      std::get<JsonObject>(top.at("histograms")->value);
  ASSERT_TRUE(histograms.count("test.json_histogram"));
  const JsonObject& histogram =
      std::get<JsonObject>(histograms.at("test.json_histogram")->value);
  EXPECT_EQ(std::get<double>(histogram.at("count")->value), 1.0);
  EXPECT_EQ(std::get<double>(histogram.at("sum")->value), 5.0);
  const JsonArray& buckets =
      std::get<JsonArray>(histogram.at("buckets")->value);
  ASSERT_EQ(buckets.size(), 1u);  // sparse: only the populated bucket
  const JsonArray& entry = std::get<JsonArray>(buckets[0]->value);
  EXPECT_EQ(std::get<double>(entry[0]->value), 4.0);  // lower bound of [4,8)
  EXPECT_EQ(std::get<double>(entry[1]->value), 1.0);
}

TEST_F(MetricsTest, ToJsonIsCanonicalWithNoTrailingWhitespace) {
  // Empty registry and populated registry alike: the snapshot ends at the
  // closing brace, so embedders (the daemon's `metrics` reply, lint
  // --json) splice it in without trimming.
  std::string empty = MetricsRegistry::Get().ToJson();
  ASSERT_FALSE(empty.empty());
  EXPECT_EQ(empty.back(), '}');

  MetricsRegistry::Get().counter("test.canonical").Add(1);
  MetricsRegistry::Get().gauge("test.canonical_gauge").Set(2);
  MetricsRegistry::Get().histogram("test.canonical_histogram").Record(3);
  std::string json = MetricsRegistry::Get().ToJson();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '}');
  EXPECT_EQ(json.find_last_not_of(" \t\r\n"), json.size() - 1);
  ASSERT_NE(JsonParser(json).Parse(), nullptr) << json;
}

// ---- Gauge ------------------------------------------------------------

TEST_F(MetricsTest, GaugeSetAddResetAndExport) {
  Gauge& gauge = MetricsRegistry::Get().gauge("test.gauge");
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.Add(-10);
  EXPECT_EQ(gauge.Value(), -3);  // gauges go down as well as up
  Gauge& same = MetricsRegistry::Get().gauge("test.gauge");
  EXPECT_EQ(&same, &gauge);

  std::string json = MetricsRegistry::Get().ToJson();
  std::shared_ptr<JsonValue> root = JsonParser(json).Parse();
  ASSERT_NE(root, nullptr) << json;
  const JsonObject& top = std::get<JsonObject>(root->value);
  ASSERT_TRUE(top.count("gauges"));
  const JsonObject& gauges = std::get<JsonObject>(top.at("gauges")->value);
  ASSERT_TRUE(gauges.count("test.gauge"));
  EXPECT_EQ(std::get<double>(gauges.at("test.gauge")->value), -3.0);

  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

// ---- SnapshotDelta ----------------------------------------------------

TEST_F(MetricsTest, SnapshotDeltaSubtractsCountersAndHistograms) {
  Counter& counter = MetricsRegistry::Get().counter("test.delta_counter");
  Gauge& gauge = MetricsRegistry::Get().gauge("test.delta_gauge");
  Histogram& histogram =
      MetricsRegistry::Get().histogram("test.delta_histogram");

  counter.Add(10);
  gauge.Set(100);
  histogram.Record(1);
  histogram.Record(1000);
  MetricsSnapshot before = MetricsRegistry::Get().Snapshot();

  counter.Add(5);
  gauge.Set(42);
  histogram.Record(1);
  MetricsRegistry::Get().counter("test.delta_fresh").Add(3);
  MetricsSnapshot after = MetricsRegistry::Get().Snapshot();

  MetricsSnapshot delta = MetricsRegistry::SnapshotDelta(before, after);
  std::map<std::string, uint64_t> counters;
  for (const auto& c : delta.counters) counters[c.name] = c.value;
  EXPECT_EQ(counters["test.delta_counter"], 5u);
  // An instrument born between the snapshots passes through unchanged.
  EXPECT_EQ(counters["test.delta_fresh"], 3u);
  // Gauges are point-in-time: the delta carries `after`'s value verbatim.
  for (const auto& g : delta.gauges) {
    if (g.name == "test.delta_gauge") EXPECT_EQ(g.value, 42);
  }
  for (const auto& h : delta.histograms) {
    if (h.name != "test.delta_histogram") continue;
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, 1u);
    EXPECT_EQ(h.buckets[1], 1u);   // the new Record(1)
    EXPECT_EQ(h.buckets[10], 0u);  // the old Record(1000) subtracted out
  }

  // A Reset between snapshots clamps at zero instead of underflowing.
  MetricsRegistry::Get().Reset();
  counter.Add(2);
  MetricsSnapshot reset_after = MetricsRegistry::Get().Snapshot();
  MetricsSnapshot clamped = MetricsRegistry::SnapshotDelta(after, reset_after);
  for (const auto& c : clamped.counters) {
    if (c.name == "test.delta_counter") EXPECT_EQ(c.value, 0u);
  }
}

// What `floq top` leans on: deltas between snapshots taken around a
// concurrent burst are exact once the writers have joined.
TEST_F(MetricsTest, SnapshotDeltaIsExactAroundConcurrentBurst) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  Counter& counter = MetricsRegistry::Get().counter("test.delta_burst");
  Histogram& histogram =
      MetricsRegistry::Get().histogram("test.delta_burst_histogram");
  counter.Add(123);  // pre-existing baseline the delta must remove
  histogram.Record(9);

  MetricsSnapshot before = MetricsRegistry::Get().Snapshot();
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        histogram.Record(uint64_t(i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  MetricsSnapshot after = MetricsRegistry::Get().Snapshot();

  MetricsSnapshot delta = MetricsRegistry::SnapshotDelta(before, after);
  for (const auto& c : delta.counters) {
    if (c.name == "test.delta_burst") {
      EXPECT_EQ(c.value, uint64_t(kThreads) * kPerThread);
    }
  }
  for (const auto& h : delta.histograms) {
    if (h.name == "test.delta_burst_histogram") {
      EXPECT_EQ(h.count, uint64_t(kThreads) * kPerThread);
      EXPECT_EQ(h.sum, uint64_t(kThreads) * kPerThread * (kPerThread - 1) / 2);
    }
  }
}

// ---- Prometheus exposition --------------------------------------------

TEST_F(MetricsTest, PrometheusExpositionMatchesGoldenBlocks) {
  MetricsRegistry::Get().counter("test.prom.requests").Add(42);
  MetricsRegistry::Get().gauge("test.prom.queue.depth").Set(-3);
  Histogram& histogram = MetricsRegistry::Get().histogram("test.prom.lat_us");
  histogram.Record(0);
  histogram.Record(1);
  histogram.Record(3);
  histogram.Record(1000);

  std::string exposition = MetricsRegistry::Get().Snapshot().ToPrometheus();

  // Golden per-instrument blocks: name sanitization, the _total suffix,
  // and the log2 -> cumulative-le mapping are all load-bearing for stock
  // scrapers, so they are asserted byte-for-byte.
  const std::string counter_block =
      "# HELP floq_test_prom_requests_total floq counter test.prom.requests\n"
      "# TYPE floq_test_prom_requests_total counter\n"
      "floq_test_prom_requests_total 42\n";
  EXPECT_NE(exposition.find(counter_block), std::string::npos) << exposition;

  const std::string gauge_block =
      "# HELP floq_test_prom_queue_depth floq gauge test.prom.queue.depth\n"
      "# TYPE floq_test_prom_queue_depth gauge\n"
      "floq_test_prom_queue_depth -3\n";
  EXPECT_NE(exposition.find(gauge_block), std::string::npos) << exposition;

  // Values 0, 1, 3, 1000 land in log2 buckets 0, 1, 2, 10; cumulative
  // counts are emitted for every bucket up to the highest populated one,
  // with le = the bucket's inclusive upper bound 2^i - 1.
  const std::string histogram_block =
      "# HELP floq_test_prom_lat_us floq log2 histogram test.prom.lat_us\n"
      "# TYPE floq_test_prom_lat_us histogram\n"
      "floq_test_prom_lat_us_bucket{le=\"0\"} 1\n"
      "floq_test_prom_lat_us_bucket{le=\"1\"} 2\n"
      "floq_test_prom_lat_us_bucket{le=\"3\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"7\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"15\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"31\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"63\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"127\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"255\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"511\"} 3\n"
      "floq_test_prom_lat_us_bucket{le=\"1023\"} 4\n"
      "floq_test_prom_lat_us_bucket{le=\"+Inf\"} 4\n"
      "floq_test_prom_lat_us_sum 1004\n"
      "floq_test_prom_lat_us_count 4\n";
  EXPECT_NE(exposition.find(histogram_block), std::string::npos) << exposition;
}

// Parse the exposition back and check the histogram contract every
// scraper relies on: le labels strictly increase, cumulative bucket
// counts never decrease, and the +Inf bucket equals _count.
TEST_F(MetricsTest, PrometheusHistogramsAreCumulativeAndMonotone) {
  Histogram& a = MetricsRegistry::Get().histogram("test.mono.a_us");
  for (uint64_t v : {0ull, 2ull, 2ull, 70ull, 4096ull, 1ull << 40}) {
    a.Record(v);
  }
  MetricsRegistry::Get().histogram("test.mono.empty_us");  // no samples

  std::string exposition = MetricsRegistry::Get().Snapshot().ToPrometheus();
  std::map<std::string, std::vector<std::pair<double, uint64_t>>> series;
  std::map<std::string, uint64_t> totals;
  size_t start = 0;
  while (start < exposition.size()) {
    size_t end = exposition.find('\n', start);
    if (end == std::string::npos) end = exposition.size();
    std::string line = exposition.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    uint64_t value = std::strtoull(line.c_str() + space + 1, nullptr, 10);
    size_t brace = name.find("_bucket{le=\"");
    if (brace != std::string::npos) {
      std::string le = name.substr(brace + 12);
      le.pop_back();  // trailing "}
      le.pop_back();
      double bound = le == "+Inf" ? std::numeric_limits<double>::infinity()
                                  : std::stod(le);
      series[name.substr(0, brace)].emplace_back(bound, value);
    } else {
      totals[name] = value;
    }
  }

  ASSERT_TRUE(series.count("floq_test_mono_a_us"));
  for (const auto& [name, buckets] : series) {
    ASSERT_FALSE(buckets.empty()) << name;
    for (size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_GT(buckets[i].first, buckets[i - 1].first) << name;
      EXPECT_GE(buckets[i].second, buckets[i - 1].second) << name;
    }
    EXPECT_TRUE(std::isinf(buckets.back().first)) << name;
    ASSERT_TRUE(totals.count(name + "_count")) << name;
    EXPECT_EQ(buckets.back().second, totals[name + "_count"]) << name;
  }
  // The empty histogram still exposes +Inf/_sum/_count so the series
  // exists from the first scrape.
  ASSERT_TRUE(series.count("floq_test_mono_empty_us"));
  EXPECT_EQ(series["floq_test_mono_empty_us"].back().second, 0u);
}

// ---- quantiles --------------------------------------------------------

TEST_F(MetricsTest, HistogramQuantileWalksBucketUpperBounds) {
  MetricsSnapshot::HistogramValue empty;
  EXPECT_EQ(HistogramQuantile(empty, 0.5), 0.0);

  Histogram& histogram = MetricsRegistry::Get().histogram("test.quantile");
  histogram.Record(1);
  histogram.Record(2);
  histogram.Record(4);
  histogram.Record(1000);
  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  const MetricsSnapshot::HistogramValue* h = nullptr;
  for (const auto& candidate : snapshot.histograms) {
    if (candidate.name == "test.quantile") h = &candidate;
  }
  ASSERT_NE(h, nullptr);
  // Quantiles resolve to the inclusive upper bound of the target bucket:
  // buckets are [2,4) -> 3, [4,8) -> 7, [512,1024) -> 1023.
  EXPECT_EQ(HistogramQuantile(*h, 0.0), 1.0);
  EXPECT_EQ(HistogramQuantile(*h, 0.5), 3.0);
  EXPECT_EQ(HistogramQuantile(*h, 0.75), 7.0);
  EXPECT_EQ(HistogramQuantile(*h, 1.0), 1023.0);
}

// ---- trace suppression (request sampling) -----------------------------

TEST(TraceTest, TraceSuppressMakesSpansNoOps) {
  TraceSession session;
  { TraceSpan kept("suppress.kept"); }
  {
    TraceSuppress suppress;
    TraceSpan dropped("suppress.dropped");
    EXPECT_FALSE(dropped.active());
    {
      TraceSuppress nested;  // scopes nest; spans stay suppressed
      TraceSpan also_dropped("suppress.nested");
      EXPECT_FALSE(also_dropped.active());
    }
    TraceSpan still_dropped("suppress.still");
    EXPECT_FALSE(still_dropped.active());
  }
  { TraceSpan after("suppress.after"); }
  EXPECT_EQ(session.size(), 2u);
  std::string json = session.ToJson();
  EXPECT_NE(json.find("suppress.kept"), std::string::npos);
  EXPECT_NE(json.find("suppress.after"), std::string::npos);
  EXPECT_EQ(json.find("suppress.dropped"), std::string::npos);
}

// ---- tracing ----------------------------------------------------------

TEST(TraceTest, NoSessionMeansInactiveSpans) {
  ASSERT_EQ(TraceSession::Current(), nullptr);
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Arg("ignored", int64_t{1});  // must be a harmless no-op
}

TEST(TraceTest, SpansRecordAndExportChromeJson) {
  std::string json;
  {
    TraceSession session;
    ASSERT_EQ(TraceSession::Current(), &session);
    {
      TraceSpan span("unit.test_span");
      span.Arg("rule", int64_t{7}).Arg("phase", "verify");
    }
    { TraceSpan inner("unit.second_span"); }
    EXPECT_EQ(session.size(), 2u);
    EXPECT_EQ(session.dropped(), 0u);
    json = session.ToJson();
  }
  EXPECT_EQ(TraceSession::Current(), nullptr);

  std::shared_ptr<JsonValue> root = JsonParser(json).Parse();
  ASSERT_NE(root, nullptr) << json;
  const JsonObject& top = std::get<JsonObject>(root->value);
  ASSERT_TRUE(top.count("traceEvents"));
  const JsonArray& events = std::get<JsonArray>(top.at("traceEvents")->value);
  ASSERT_EQ(events.size(), 2u);

  const JsonObject& first = std::get<JsonObject>(events[0]->value);
  EXPECT_EQ(std::get<std::string>(first.at("ph")->value), "X");
  EXPECT_EQ(std::get<std::string>(first.at("name")->value),
            "unit.test_span");
  EXPECT_GE(std::get<double>(first.at("dur")->value), 0.0);
  const JsonObject& args = std::get<JsonObject>(first.at("args")->value);
  EXPECT_EQ(std::get<double>(args.at("rule")->value), 7.0);
  EXPECT_EQ(std::get<std::string>(args.at("phase")->value), "verify");
}

TEST(TraceTest, RingBufferDropsOldestAndCounts) {
  TraceSession session(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceSpan span("ring.span");
  }
  EXPECT_EQ(session.size(), 4u);
  EXPECT_EQ(session.dropped(), 6u);
  std::shared_ptr<JsonValue> root = JsonParser(session.ToJson()).Parse();
  ASSERT_NE(root, nullptr);
  const JsonObject& top = std::get<JsonObject>(root->value);
  EXPECT_EQ(std::get<JsonArray>(top.at("traceEvents")->value).size(), 4u);
}

TEST(TraceTest, ChaseEmitsSpansWhenSessionInstalled) {
  World world;
  ConjunctiveQuery q = Q(world, "q(A) :- type(T, A, T2), sub(T2, T3).");

  TraceSession session;
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_GT(chase.size(), 0u);
  EXPECT_GE(session.size(), 1u);
  std::string json = session.ToJson();
  EXPECT_NE(json.find("chase.run"), std::string::npos);
  ASSERT_NE(JsonParser(json).Parse(), nullptr) << json;
}

}  // namespace
}  // namespace floq
