#include "containment/engine.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "chase/chase.h"
#include "containment/containment.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/atom.h"
#include "term/term.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// A small mixed workload: chains that exercise rho_8 containments plus
// parsed queries with mutual containments and incomparable pairs.
std::vector<ConjunctiveQuery> Workload(World& world) {
  std::vector<ConjunctiveQuery> queries;
  queries.push_back(Q(world, "q0(X) :- member(X, C)."));
  queries.push_back(Q(world, "q1(X) :- member(X, C), sub(C, D)."));
  queries.push_back(Q(world, "q2(X) :- member(X, C), member(X, D)."));
  queries.push_back(Q(world, "q3(X) :- data(X, A, V)."));
  queries.push_back(Q(world, "q4(X) :- data(X, A, V), funct(A, O)."));
  queries.push_back(
      Q(world, "q5(X) :- member(X, C), mandatory(A, C), type(C, A, T)."));
  return queries;
}

// ---- equivalence with the pairwise checker ------------------------------

TEST(ContainmentEngineTest, MatchesPairwiseCheckContainment) {
  World world;
  std::vector<ConjunctiveQuery> queries = Workload(world);

  ContainmentEngine engine(world);
  for (const ConjunctiveQuery& q : queries) {
    Result<size_t> id = engine.AddQuery(q);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  Result<std::vector<std::vector<PairVerdict>>> matrix = engine.CheckAll();
  ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      if (i == j) continue;
      Result<ContainmentResult> direct =
          CheckContainment(world, queries[i], queries[j]);
      ASSERT_TRUE(direct.ok()) << direct.status().ToString();
      EXPECT_EQ((*matrix)[i][j].contained, direct->contained)
          << queries[i].name() << " ⊆ " << queries[j].name();
    }
  }
}

TEST(ContainmentEngineTest, MatchesPairwiseInLevelZeroAndClassicalModes) {
  for (ChaseDepth depth : {ChaseDepth::kLevelZero, ChaseDepth::kNone}) {
    World world;
    std::vector<ConjunctiveQuery> queries = Workload(world);
    BatchContainmentOptions options;
    options.containment.depth = depth;

    ContainmentEngine engine(world, options);
    for (const ConjunctiveQuery& q : queries) {
      ASSERT_TRUE(engine.AddQuery(q).ok());
    }
    Result<std::vector<std::vector<PairVerdict>>> matrix = engine.CheckAll();
    ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();

    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t j = 0; j < queries.size(); ++j) {
        if (i == j) continue;
        Result<ContainmentResult> direct = CheckContainment(
            world, queries[i], queries[j], options.containment);
        ASSERT_TRUE(direct.ok());
        EXPECT_EQ((*matrix)[i][j].contained, direct->contained)
            << "depth mode " << int(depth) << ": " << queries[i].name()
            << " ⊆ " << queries[j].name();
      }
    }
  }
}

// ---- chase memoization ---------------------------------------------------

TEST(ContainmentEngineTest, EachQueryChasedExactlyOnce) {
  World world;
  std::vector<ConjunctiveQuery> queries = Workload(world);
  const size_t n = queries.size();

  ContainmentEngine engine(world);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(engine.AddQuery(q).ok());
  }
  ASSERT_TRUE(engine.CheckAll().ok());

  // With the signature index on (the default), registration probes each
  // query once, stage 0 discharges the signature-incompatible pairs (e.g.
  // q3 = {data} can never contain q0 = {member}), and every surviving
  // pair's chase request hits the probe's cached handle.
  const BatchStats& stats = engine.stats();
  EXPECT_EQ(stats.pairs_checked, n * (n - 1));
  EXPECT_GT(stats.pruned_pairs, 0u);
  EXPECT_EQ(stats.pruned_pairs + stats.chase_requests, n * (n - 1));
  EXPECT_EQ(stats.chases_run, n);  // one chase per query, not per pair
  EXPECT_EQ(stats.chase_cache_hits, stats.chase_requests);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(engine.chase_of(i), nullptr) << "query " << i;
  }
}

TEST(ContainmentEngineTest, EachQueryChasedExactlyOnceWithoutIndex) {
  World world;
  std::vector<ConjunctiveQuery> queries = Workload(world);
  const size_t n = queries.size();

  BatchContainmentOptions options;
  options.containment.use_signature_index = false;
  ContainmentEngine engine(world, options);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(engine.AddQuery(q).ok());
  }
  ASSERT_TRUE(engine.CheckAll().ok());

  // Legacy path: no probes, no pruning — the first pair per lhs chases,
  // the rest hit the cache.
  const BatchStats& stats = engine.stats();
  EXPECT_EQ(stats.pairs_checked, n * (n - 1));
  EXPECT_EQ(stats.pruned_pairs, 0u);
  EXPECT_EQ(stats.chase_requests, n * (n - 1));
  EXPECT_EQ(stats.chases_run, n);
  EXPECT_EQ(stats.chase_cache_hits, n * (n - 1) - n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(engine.chase_of(i), nullptr) << "query " << i;
  }
}

TEST(ContainmentEngineTest, SecondCheckReusesAndDeepensHandles) {
  World world;
  // The 1-cycle's chase is an infinite data chain along one attribute, so
  // every EnsureLevel with a higher bound genuinely deepens, and data-chain
  // probes of any length embed into it.
  std::vector<ConjunctiveQuery> queries;
  queries.push_back(gen::MakeMandatoryCycleQuery(world, 1, "cycle"));
  queries.push_back(gen::MakeDataChainProbe(world, 2, "short_probe"));
  queries.push_back(gen::MakeDataChainProbe(world, 4, "long_probe"));

  ContainmentEngine engine(world);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(engine.AddQuery(q).ok());
  }

  // Registration already probed each query once for its signature (the
  // probe handle IS the pair pipeline's cache entry).
  EXPECT_EQ(engine.stats().chases_run, 3u);

  // First round: cycle ⊆ short_probe.
  std::vector<std::pair<size_t, size_t>> first = {{0, 1}};
  Result<std::vector<PairVerdict>> r1 = engine.CheckPairs(first);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_TRUE((*r1)[0].contained);
  EXPECT_EQ(engine.stats().chases_run, 3u);      // served from the probe
  EXPECT_EQ(engine.stats().chase_cache_hits, 1u);
  int first_level = (*r1)[0].level_bound;

  // Second round needs a deeper chase of the same lhs (longer probe =>
  // larger Theorem 12 bound). The handle must be reused and deepened, not
  // rebuilt.
  std::vector<std::pair<size_t, size_t>> second = {{0, 2}};
  Result<std::vector<PairVerdict>> r2 = engine.CheckPairs(second);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_TRUE((*r2)[0].contained);
  EXPECT_GT((*r2)[0].level_bound, first_level);
  EXPECT_EQ(engine.stats().chases_run, 3u);      // still no rebuild
  EXPECT_EQ(engine.stats().chase_cache_hits, 2u);
  EXPECT_GE(engine.stats().chase_deepenings, 1u);
  ASSERT_NE(engine.chase_of(0), nullptr);
  EXPECT_GE(engine.chase_of(0)->max_level(), first_level);
}

// ---- parallel == sequential ---------------------------------------------

TEST(ContainmentEngineTest, ParallelVerdictsEqualSequential) {
  World world;
  std::vector<ConjunctiveQuery> queries = Workload(world);
  for (int seed = 1; seed <= 6; ++seed) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(seed);
    spec.atoms = 4;
    spec.variable_pool = 3;
    spec.arity = 1;
    queries.push_back(
        gen::MakeRandomQuery(world, spec, "r" + std::to_string(seed)));
  }

  BatchContainmentOptions sequential;
  sequential.jobs = 1;
  ContainmentEngine seq_engine(world, sequential);
  BatchContainmentOptions parallel;
  parallel.jobs = 4;
  ContainmentEngine par_engine(world, parallel);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(seq_engine.AddQuery(q).ok());
    ASSERT_TRUE(par_engine.AddQuery(q).ok());
  }

  Result<std::vector<std::vector<PairVerdict>>> seq = seq_engine.CheckAll();
  Result<std::vector<std::vector<PairVerdict>>> par = par_engine.CheckAll();
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ((*seq)[i][j].contained, (*par)[i][j].contained)
          << i << " ⊆ " << j;
      EXPECT_EQ((*seq)[i][j].lhs_unsatisfiable, (*par)[i][j].lhs_unsatisfiable);
    }
  }
  EXPECT_EQ(seq_engine.stats().chases_run, par_engine.stats().chases_run);
}

// ---- edge cases ----------------------------------------------------------

TEST(ContainmentEngineTest, UnsatisfiableLhsIsVacuouslyContained) {
  World world;
  // rho_4 equates the two distinct constants 1 and 2: the chase fails.
  ConjunctiveQuery bad = Q(
      world, "q() :- funct(a, o), data(o, a, one), data(o, a, two).");
  ConjunctiveQuery probe = Q(world, "p() :- member(X, C).");

  ContainmentEngine engine(world);
  ASSERT_TRUE(engine.AddQuery(bad).ok());
  ASSERT_TRUE(engine.AddQuery(probe).ok());
  std::vector<std::pair<size_t, size_t>> pairs = {{0, 1}, {1, 0}};
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  EXPECT_TRUE((*verdicts)[0].contained);
  EXPECT_TRUE((*verdicts)[0].lhs_unsatisfiable);
  EXPECT_FALSE((*verdicts)[1].contained);
  EXPECT_FALSE((*verdicts)[1].lhs_unsatisfiable);
}

TEST(ContainmentEngineTest, RejectsUnknownIdsAndArityMismatches) {
  World world;
  ContainmentEngine engine(world);
  ASSERT_TRUE(engine.AddQuery(Q(world, "q(X) :- member(X, C).")).ok());
  ASSERT_TRUE(engine.AddQuery(Q(world, "p() :- member(X, C).")).ok());

  std::vector<std::pair<size_t, size_t>> bad_id = {{0, 7}};
  EXPECT_FALSE(engine.CheckPairs(bad_id).ok());

  std::vector<std::pair<size_t, size_t>> bad_arity = {{0, 1}};
  Result<std::vector<PairVerdict>> mismatch = engine.CheckPairs(bad_arity);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
}

TEST(ContainmentEngineTest, EmptyPairListAndEmptyEngine) {
  World world;
  ContainmentEngine engine(world);
  EXPECT_EQ(engine.query_count(), 0u);
  Result<std::vector<std::vector<PairVerdict>>> matrix = engine.CheckAll();
  ASSERT_TRUE(matrix.ok());
  EXPECT_TRUE(matrix->empty());
  std::vector<std::pair<size_t, size_t>> none;
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(none);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE(verdicts->empty());
}

TEST(ContainmentEngineTest, RejectsMalformedQuery) {
  World world;
  // Unsafe: head variable X does not occur in the body.
  ConjunctiveQuery unsafe("bad", {world.MakeVariable("X")},
                          {Atom::Member(world.MakeVariable("Y"),
                                        world.MakeVariable("C"))});
  ContainmentEngine engine(world);
  EXPECT_FALSE(engine.AddQuery(unsafe).ok());
}

// ---- resumption property: deepened == fresh ------------------------------
//
// The chase materialized by EnsureLevel(k1), ..., EnsureLevel(kn) must be
// the same instance a fresh single-shot chase at level kn produces. Null
// names are execution-order artifacts (the two runs draw different fresh
// nulls from the World), so equality is up to a bijection over nulls.
// Per-conjunct levels are NOT compared: level assignment depends on which
// derivation reached a conjunct first, which is order-dependent.

// Tries to extend the null bijection so that a == b position-wise.
// Returns the newly added (null of a, null of b) pairs for backtracking.
bool MapAtom(const Atom& a, const Atom& b, std::map<Term, Term>& fwd,
             std::map<Term, Term>& rev,
             std::vector<std::pair<Term, Term>>& added) {
  if (a.predicate() != b.predicate() || a.arity() != b.arity()) return false;
  auto undo = [&] {
    for (const auto& [x, y] : added) {
      fwd.erase(x);
      rev.erase(y);
    }
    added.clear();
  };
  for (int i = 0; i < a.arity(); ++i) {
    Term x = a.arg(i);
    Term y = b.arg(i);
    if (!x.IsNull() && !y.IsNull()) {
      if (x != y) return undo(), false;
      continue;
    }
    if (!x.IsNull() || !y.IsNull()) return undo(), false;
    auto f = fwd.find(x);
    if (f != fwd.end()) {
      if (f->second != y) return undo(), false;
      continue;
    }
    if (rev.count(y) > 0) return undo(), false;
    fwd.emplace(x, y);
    rev.emplace(y, x);
    added.emplace_back(x, y);
  }
  return true;
}

bool MatchAtoms(size_t i, const std::vector<Atom>& as,
                const std::vector<std::vector<size_t>>& candidates,
                const std::vector<Atom>& bs, std::vector<bool>& used,
                std::map<Term, Term>& fwd, std::map<Term, Term>& rev) {
  if (i == as.size()) return true;
  for (size_t j : candidates[i]) {
    if (used[j]) continue;
    std::vector<std::pair<Term, Term>> added;
    if (!MapAtom(as[i], bs[j], fwd, rev, added)) continue;
    used[j] = true;
    if (MatchAtoms(i + 1, as, candidates, bs, used, fwd, rev)) return true;
    used[j] = false;
    for (const auto& [x, y] : added) {
      fwd.erase(x);
      rev.erase(y);
    }
  }
  return false;
}

// Whether a null-renaming bijection maps chase `a` (atoms + head) onto
// chase `b` exactly.
bool ChasesIsomorphic(const ChaseResult& a, const ChaseResult& b) {
  if (a.outcome() != b.outcome()) return false;
  if (a.size() != b.size()) return false;
  if (a.head().size() != b.head().size()) return false;

  std::map<Term, Term> fwd, rev;
  // Seed the bijection with the head correspondence.
  for (size_t i = 0; i < a.head().size(); ++i) {
    Term x = a.head()[i];
    Term y = b.head()[i];
    if (!x.IsNull() && !y.IsNull()) {
      if (x != y) return false;
      continue;
    }
    if (!x.IsNull() || !y.IsNull()) return false;
    auto f = fwd.find(x);
    if (f != fwd.end()) {
      if (f->second != y) return false;
      continue;
    }
    if (rev.count(y) > 0) return false;
    fwd.emplace(x, y);
    rev.emplace(y, x);
  }

  const std::vector<Atom> as(a.conjuncts().atoms().begin(),
                             a.conjuncts().atoms().end());
  const std::vector<Atom> bs(b.conjuncts().atoms().begin(),
                             b.conjuncts().atoms().end());
  std::vector<std::vector<size_t>> candidates(as.size());
  for (size_t i = 0; i < as.size(); ++i) {
    for (size_t j = 0; j < bs.size(); ++j) {
      if (as[i].predicate() == bs[j].predicate()) candidates[i].push_back(j);
    }
    if (candidates[i].empty()) return false;
  }
  std::vector<bool> used(bs.size(), false);
  return MatchAtoms(0, as, candidates, bs, used, fwd, rev);
}

TEST(ResumableChaseTest, DeepeningMatchesFreshChaseAcrossCorpus) {
  // Structured queries with infinite chases plus random constrained
  // queries: deepen in three steps and compare against one-shot chases at
  // every intermediate level.
  const int kSteps[] = {2, 5, 9};
  World world;
  std::vector<ConjunctiveQuery> corpus;
  corpus.push_back(gen::MakeMandatoryCycleQuery(world, 2, "cycle2"));
  corpus.push_back(gen::MakeMandatoryCycleQuery(world, 3, "cycle3"));
  corpus.push_back(gen::MakeAttributeChainQuery(world, 3, true, "chain"));
  corpus.push_back(gen::MakeFunctFanQuery(world, 3, "fan"));
  for (int seed = 1; seed <= 10; ++seed) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(seed);
    spec.atoms = 4;
    spec.variable_pool = 3;
    spec.constant_pool = 2;
    spec.arity = 1;
    spec.with_constraints = true;
    corpus.push_back(
        gen::MakeRandomQuery(world, spec, "rand" + std::to_string(seed)));
  }

  for (const ConjunctiveQuery& query : corpus) {
    ResumableChase resumable(world, query);
    for (int level : kSteps) {
      const ChaseResult& resumed = resumable.EnsureLevel(level);
      ChaseOptions fresh_options;
      fresh_options.max_level = level;
      ChaseResult fresh = ChaseQuery(world, query, fresh_options);
      EXPECT_TRUE(ChasesIsomorphic(resumed, fresh))
          << query.name() << " at level " << level << ": resumed "
          << resumed.size() << " conjuncts ("
          << ChaseOutcomeName(resumed.outcome()) << "), fresh "
          << fresh.size() << " conjuncts ("
          << ChaseOutcomeName(fresh.outcome()) << ")";
    }
    EXPECT_TRUE(resumable.started());
  }
}

TEST(ResumableChaseTest, EnsureLevelIsMonotoneAndIdempotent) {
  World world;
  ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, 2, "cycle");
  ResumableChase resumable(world, cycle);

  const ChaseResult& at4 = resumable.EnsureLevel(4);
  EXPECT_EQ(at4.outcome(), ChaseOutcome::kLevelCapped);
  uint32_t size_at4 = at4.size();
  EXPECT_EQ(resumable.deepen_count(), 0u);

  // Same or lower level: a const no-op.
  resumable.EnsureLevel(4);
  resumable.EnsureLevel(2);
  EXPECT_EQ(resumable.deepen_count(), 0u);
  EXPECT_EQ(resumable.result().size(), size_at4);

  const ChaseResult& at8 = resumable.EnsureLevel(8);
  EXPECT_EQ(resumable.deepen_count(), 1u);
  EXPECT_GT(at8.size(), size_at4);
  EXPECT_GE(at8.max_level(), 5);
}

TEST(ResumableChaseTest, FrozenHandleAllowsConstReads) {
  World world;
  ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, 2, "cycle");
  ResumableChase resumable(world, cycle);
  resumable.EnsureLevel(5);
  uint32_t size = resumable.result().size();

  resumable.Freeze();
  EXPECT_TRUE(resumable.frozen());
  // Reads and non-deepening EnsureLevel calls stay legal while frozen.
  EXPECT_EQ(resumable.EnsureLevel(3).size(), size);
  EXPECT_EQ(resumable.result().size(), size);
  resumable.Thaw();
  EXPECT_FALSE(resumable.frozen());
  // After thawing, deepening is legal again.
  EXPECT_GT(resumable.EnsureLevel(7).size(), size);
}

TEST(ResumableChaseTest, CompletedChaseNeverDeepens) {
  World world;
  // No mandatory atoms: the chase completes at level 0.
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), sub(C, D).");
  ResumableChase resumable(world, q);
  const ChaseResult& result = resumable.EnsureLevel(3);
  EXPECT_EQ(result.outcome(), ChaseOutcome::kCompleted);
  resumable.EnsureLevel(100);
  EXPECT_EQ(resumable.deepen_count(), 0u);
}

// ---- resource governance (DESIGN.md §11) --------------------------------

// q() :- sub(c1,c2), sub(c2,c3), ..., sub(cn,c_{n+1}). The rho_2
// transitivity closure materializes ~n^2/2 level-0 conjuncts, so a long
// chain makes the chase stage deliberately expensive while staying
// completely free of member/data/type atoms.
ConjunctiveQuery MakeSubChainQuery(World& world, int n,
                                   const std::string& name) {
  std::vector<Atom> body;
  Term prev = world.MakeConstant(name + "_c1");
  for (int i = 1; i <= n; ++i) {
    Term next = world.MakeConstant(name + "_c" + std::to_string(i + 1));
    body.push_back(Atom::Sub(prev, next));
    prev = next;
  }
  return ConjunctiveQuery(name, {}, std::move(body));
}

TEST(GovernedEngineTest, ChaseAtomBudgetYieldsUnknownOnlyWhereInconclusive) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  // Far below what the cycle's Theorem 12 bound materializes, but enough
  // for the small member queries to chase to completion.
  options.containment.max_chase_atoms = 10;
  // The signature filter would discharge (cycle, sub_probe) outright (sub
  // is never derivable from the cycle's predicates) — sound, but this
  // test is specifically about inconclusive truncated prefixes, so keep
  // the pair on the chase path. Stage-0/governor interplay has its own
  // tests below.
  options.containment.use_signature_index = false;
  ContainmentEngine engine(world, options);

  Result<size_t> cycle =
      engine.AddQuery(gen::MakeMandatoryCycleQuery(world, 2, "cycle"));
  Result<size_t> sub_probe = engine.AddQuery(Q(world, "p() :- sub(X, Y)."));
  Result<size_t> mandatory_probe =
      engine.AddQuery(Q(world, "p0() :- mandatory(A, B)."));
  Result<size_t> member_sub =
      engine.AddQuery(Q(world, "s1() :- member(X, C), sub(C, D)."));
  Result<size_t> member_only =
      engine.AddQuery(Q(world, "s0() :- member(X, C)."));
  ASSERT_TRUE(cycle.ok() && sub_probe.ok() && mandatory_probe.ok() &&
              member_sub.ok() && member_only.ok());

  std::vector<std::pair<size_t, size_t>> pairs = {
      {*cycle, *sub_probe},        // truncated prefix, no hom -> UNKNOWN
      {*cycle, *mandatory_probe},  // hom into the truncated prefix
      {*member_sub, *member_only},  // untripped definite positive
      {*member_only, *member_sub},  // untripped definite negative
  };
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  // The cycle's chase tripped the atom budget and sub(X, Y) never embeds
  // in the prefix (no chase rule invents sub facts), so "not contained"
  // would be unsound: the verdict degrades to UNKNOWN(chase-atoms).
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kUnknown);
  EXPECT_EQ((*verdicts)[0].unknown_reason, TripReason::kChaseAtomBudget);
  EXPECT_FALSE((*verdicts)[0].contained);

  // Same truncated prefix, but mandatory(A, B) maps into the retained
  // body atoms: a homomorphism into any prefix is a sound positive.
  EXPECT_EQ((*verdicts)[1].resolution, Resolution::kContained);
  EXPECT_TRUE((*verdicts)[1].contained);

  // Pairs whose chases completed keep their definite verdicts.
  EXPECT_EQ((*verdicts)[2].resolution, Resolution::kContained);
  EXPECT_EQ((*verdicts)[3].resolution, Resolution::kNotContained);

  EXPECT_EQ(engine.stats().unknown_pairs, 1u);
  EXPECT_EQ(engine.stats().timed_out_pairs, 0u);
  EXPECT_EQ(engine.stats().cancelled_pairs, 0u);
}

// The fixed random graph behind testdata/hard_3col.fl, regenerated with
// the same Park–Miller LCG: finding a homomorphism into the K3 query's
// canonical database means 3-coloring a 40-vertex graph at the chromatic
// phase transition — minutes of backtracking, far beyond any test-scale
// budget, yet fully deterministic.
std::string HardGraphQuery(uint64_t seed) {
  constexpr int kVertices = 40;
  constexpr int kEdges = 95;
  auto next = [&seed] {
    seed = seed * 16807 % 2147483647;
    return uint32_t(seed);
  };
  std::map<std::pair<int, int>, bool> used;
  std::string text = "g(V0) :- ";
  int count = 0;
  while (count < kEdges) {
    int u = int(next() % kVertices);
    int v = int(next() % kVertices);
    if (u == v) continue;
    std::pair<int, int> key = u < v ? std::pair{u, v} : std::pair{v, u};
    if (used[key]) continue;
    used[key] = true;
    if (count > 0) text += ", ";
    text += "e(V" + std::to_string(u) + ", V" + std::to_string(v) +
            "), e(V" + std::to_string(v) + ", V" + std::to_string(u) + ")";
    ++count;
  }
  text += ".";
  return text;
}

// Governor promptness: a pair whose budget trips must free its worker
// slot for the rest of the batch — two runaway pairs on a two-worker
// fan-out degrade to typed UNKNOWNs within their own slices while every
// cheap pair still gets decided, and the cheap pairs' queue wait stays
// bounded by the runaway pairs' budget, not their true (minutes-scale)
// cost.
TEST(GovernedEngineTest, TimedOutPairsFreeWorkersPromptly) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 2;
  // Worst-case order on purpose: no cost model to float the cheap pairs
  // ahead, no signature filter to discharge anything before the governed
  // stages (it would also skew the queue_wait sample count below).
  options.containment.use_cost_scheduling = false;
  options.containment.use_signature_index = false;
  options.containment.budget.timeout_ms = 500;
  ContainmentEngine engine(world, options);

  Result<size_t> k3 = engine.AddQuery(
      Q(world,
        "h(A) :- e(A, B), e(B, A), e(B, C), e(C, B), e(C, A), e(A, C)."));
  Result<size_t> g1 = engine.AddQuery(Q(world, HardGraphQuery(7).c_str()));
  Result<size_t> g2 = engine.AddQuery(Q(world, HardGraphQuery(11).c_str()));
  ASSERT_TRUE(k3.ok() && g1.ok() && g2.ok());
  std::vector<ConjunctiveQuery> cheap = Workload(world);
  std::vector<size_t> ids;
  for (const ConjunctiveQuery& query : cheap) {
    Result<size_t> id = engine.AddQuery(query);
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
  }

  // Both runaway pairs first, so they grab both workers before any cheap
  // pair is picked up.
  std::vector<std::pair<size_t, size_t>> pairs = {{*k3, *g1}, {*k3, *g2}};
  const size_t n_hard = pairs.size();
  for (size_t i = 0; i < ids.size(); ++i) {
    pairs.push_back({ids[i], ids[(i + 1) % ids.size()]});
  }
  const size_t n_cheap = pairs.size() - n_hard;

  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  for (size_t i = 0; i < n_hard; ++i) {
    EXPECT_EQ((*verdicts)[i].resolution, Resolution::kUnknown) << i;
    EXPECT_EQ((*verdicts)[i].unknown_reason, TripReason::kDeadlineExceeded)
        << i;
  }
  for (size_t i = n_hard; i < pairs.size(); ++i) {
    EXPECT_NE((*verdicts)[i].resolution, Resolution::kUnknown) << i;
  }

  const BatchStats& stats = engine.stats();
  EXPECT_EQ(stats.timed_out_pairs, n_hard);
  EXPECT_EQ(stats.cancelled_pairs, 0u);
  EXPECT_EQ(stats.unknown_pairs, n_hard);
  // Decided pairs only: exactly the cheap ones.
  EXPECT_EQ(stats.queue_wait.samples, n_cheap);
  // Each runaway pair holds a worker for at most ~2x timeout_ms (the
  // budget re-anchors per stage); behind that the queue drains in
  // microseconds. 2500 ms of headroom keeps this robust on loaded CI
  // machines while still proving the slot was freed by the governor, not
  // by the search finishing.
  EXPECT_LT(stats.queue_wait.max_ms, 2500.0);
}

TEST(GovernedEngineTest, CancelLatchesAcrossBatchesUntilReset) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  ContainmentEngine engine(world, options);
  ASSERT_TRUE(
      engine.AddQuery(Q(world, "s1() :- member(X, C), sub(C, D).")).ok());
  ASSERT_TRUE(engine.AddQuery(Q(world, "s0() :- member(X, C).")).ok());

  engine.Cancel();
  EXPECT_TRUE(engine.cancel_requested());
  Result<std::vector<std::vector<PairVerdict>>> cancelled = engine.CheckAll();
  ASSERT_TRUE(cancelled.ok()) << cancelled.status().ToString();
  EXPECT_EQ((*cancelled)[0][1].resolution, Resolution::kUnknown);
  EXPECT_EQ((*cancelled)[0][1].unknown_reason, TripReason::kCancelled);
  EXPECT_EQ((*cancelled)[1][0].resolution, Resolution::kUnknown);
  EXPECT_EQ((*cancelled)[1][0].unknown_reason, TripReason::kCancelled);
  EXPECT_EQ(engine.stats().cancelled_pairs, 2u);

  engine.ResetCancel();
  EXPECT_FALSE(engine.cancel_requested());
  Result<std::vector<std::vector<PairVerdict>>> verdicts = engine.CheckAll();
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
  EXPECT_EQ((*verdicts)[0][1].resolution, Resolution::kContained);
  EXPECT_EQ((*verdicts)[1][0].resolution, Resolution::kNotContained);
  EXPECT_EQ(engine.stats().cancelled_pairs, 2u);
}

// TSan-runnable: Cancel() flips an atomic observed by the chase governor
// on the checking thread; no other state is shared.
TEST(GovernedEngineTest, CancelFromAnotherThreadStopsTheBatchPromptly) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  // Make the atom budget a non-factor: only cancellation may stop this.
  options.containment.max_chase_atoms = 10'000'000;
  // No signature filter: it would discharge the pair before the chase
  // starts (and its registration probe would front-load the ~2M-atom
  // closure before the canceller thread exists).
  options.containment.use_signature_index = false;
  ContainmentEngine engine(world, options);
  Result<size_t> chain = engine.AddQuery(MakeSubChainQuery(world, 2000, "cn"));
  Result<size_t> probe = engine.AddQuery(Q(world, "p() :- member(X, C)."));
  ASSERT_TRUE(chain.ok() && probe.ok());
  std::vector<std::pair<size_t, size_t>> pairs = {{*chain, *probe}};

  auto start = std::chrono::steady_clock::now();
  std::thread canceller([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    engine.Cancel();
  });
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  canceller.join();
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kUnknown);
  EXPECT_EQ((*verdicts)[0].unknown_reason, TripReason::kCancelled);
  EXPECT_EQ(engine.stats().cancelled_pairs, 1u);
  // The ~2M-atom transitivity closure is abandoned within a governor
  // stride of the Cancel(); the generous bound keeps slow CI green while
  // still ruling out "ran to completion anyway".
  EXPECT_LT(elapsed.count(), 10'000);
}

// The ISSUE's acceptance scenario: one deliberately pathological pair
// under a 200ms budget degrades to UNKNOWN(deadline) in bounded time
// while every other pair in the same batch keeps its definite verdict.
TEST(GovernedEngineTest, DeadlineTripIsolatedToPathologicalPair) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  options.containment.max_chase_atoms = 10'000'000;
  options.containment.budget.timeout_ms = 200;
  // The signature filter would settle (chain, probe) definitively from
  // the static closure (member is never derivable from sub atoms); this
  // test needs the pair to actually hit its deadline.
  options.containment.use_signature_index = false;
  ContainmentEngine engine(world, options);

  Result<size_t> chain = engine.AddQuery(MakeSubChainQuery(world, 2000, "cn"));
  Result<size_t> probe = engine.AddQuery(Q(world, "p() :- member(X, C)."));
  Result<size_t> member_sub =
      engine.AddQuery(Q(world, "s1() :- member(X, C), sub(C, D)."));
  Result<size_t> member_only =
      engine.AddQuery(Q(world, "s0() :- member(X, C)."));
  ASSERT_TRUE(chain.ok() && probe.ok() && member_sub.ok() &&
              member_only.ok());

  // Pathological pair in the middle: isolation, not ordering, must save
  // the definite pairs. Each pair re-anchors its own 200ms slices.
  std::vector<std::pair<size_t, size_t>> pairs = {
      {*member_sub, *member_only},
      {*chain, *probe},
      {*member_only, *member_sub},
  };
  auto start = std::chrono::steady_clock::now();
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  // The chain's ~2M-atom closure cannot finish inside 200ms; its prefix
  // holds no member facts, so the probe finds no sound positive either.
  EXPECT_EQ((*verdicts)[1].resolution, Resolution::kUnknown);
  EXPECT_EQ((*verdicts)[1].unknown_reason, TripReason::kDeadlineExceeded);

  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kContained);
  EXPECT_EQ((*verdicts)[2].resolution, Resolution::kNotContained);

  EXPECT_EQ(engine.stats().unknown_pairs, 1u);
  EXPECT_EQ(engine.stats().timed_out_pairs, 1u);
  // Bounded: the pathological pair consumes at most ~2x its 200ms budget
  // (chase slice + hom slice); the rest of the batch is trivial.
  EXPECT_LT(elapsed.count(), 10'000);
}

// ---- signature stage / governor interplay --------------------------------

TEST(GovernedEngineTest, PrunedPairConsumesNoHomStepBudget) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  // A budget so small that ANY homomorphism search would trip it into
  // kUnknown at its first stride check.
  options.containment.budget.hom_step_budget = 1;
  ContainmentEngine engine(world, options);

  // funct is never derivable from member atoms, so the signature filter
  // discharges (lhs, rhs) before either stage.
  Result<size_t> lhs = engine.AddQuery(Q(world, "a() :- member(X, C)."));
  Result<size_t> rhs = engine.AddQuery(Q(world, "b() :- funct(A, O)."));
  ASSERT_TRUE(lhs.ok() && rhs.ok());

  std::vector<std::pair<size_t, size_t>> pairs = {{*lhs, *rhs}};
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  // Definite kNotContained — not kUnknown(hom-steps) — with zero search
  // effort: the pair never reached the hom stage, so the one-step budget
  // was never consumed.
  EXPECT_TRUE((*verdicts)[0].pruned);
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kNotContained);
  EXPECT_EQ((*verdicts)[0].unknown_reason, TripReason::kNone);
  EXPECT_EQ((*verdicts)[0].hom_stats.nodes_visited, 0u);
  EXPECT_EQ(engine.stats().pruned_pairs, 1u);
  EXPECT_EQ(engine.stats().chase_requests, 0u);
  EXPECT_EQ(engine.stats().unknown_pairs, 0u);
}

TEST(GovernedEngineTest, SignatureStageDeadlineDegradesToUnknown) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  // An already-expired deadline: every stage's governor trips on its
  // first CheckNow.
  options.containment.budget.deadline = Deadline::AfterMillis(0);
  ContainmentEngine engine(world, options);

  // Absent the trip this pair WOULD be discharged (funct never derivable
  // from member): a tripped stage-0 governor must degrade it to kUnknown,
  // never cash in the (still sound, but unattempted) definite verdict.
  Result<size_t> lhs = engine.AddQuery(Q(world, "a() :- member(X, C)."));
  Result<size_t> rhs = engine.AddQuery(Q(world, "b() :- funct(A, O)."));
  ASSERT_TRUE(lhs.ok() && rhs.ok());

  std::vector<std::pair<size_t, size_t>> pairs = {{*lhs, *rhs}};
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();

  EXPECT_FALSE((*verdicts)[0].pruned);
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kUnknown);
  EXPECT_EQ((*verdicts)[0].unknown_reason, TripReason::kDeadlineExceeded);
  EXPECT_EQ(engine.stats().pruned_pairs, 0u);
  EXPECT_EQ(engine.stats().unknown_pairs, 1u);
  EXPECT_EQ(engine.stats().timed_out_pairs, 1u);
}

}  // namespace
}  // namespace floq
