// Tests for the extension layer: query classification, explanations, DOT
// export, certain answers, union containment, and the ablation knobs.

#include <gtest/gtest.h>

#include "chase/graph_dot.h"
#include "containment/classifier.h"
#include "containment/containment.h"
#include "containment/explain.h"
#include "containment/views.h"
#include "kb/knowledge_base.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// ---- classifier -----------------------------------------------------------

TEST(ClassifierTest, EquivalentQueriesCollapse) {
  World world;
  std::vector<ConjunctiveQuery> queries = {
      Q(world, "a(O) :- member(O, C), sub(C, D), member(O, D)."),
      Q(world, "b(O) :- member(O, C), sub(C, D)."),
      Q(world, "c(O) :- member(O, C)."),
  };
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, queries);
  ASSERT_TRUE(taxonomy.ok()) << taxonomy.status().ToString();
  // a ≡ b (the member(O, D) atom is implied), both ⊂ c.
  EXPECT_EQ(taxonomy->classes.size(), 2u);
  EXPECT_EQ(taxonomy->class_of[0], taxonomy->class_of[1]);
  EXPECT_NE(taxonomy->class_of[0], taxonomy->class_of[2]);
  ASSERT_EQ(taxonomy->hasse_edges.size(), 1u);
  EXPECT_EQ(taxonomy->hasse_edges[0].first, taxonomy->class_of[0]);
  EXPECT_EQ(taxonomy->hasse_edges[0].second, taxonomy->class_of[2]);
}

TEST(ClassifierTest, HasseSkipsTransitiveEdges) {
  World world;
  std::vector<ConjunctiveQuery> queries = {
      Q(world, "small(X) :- member(X, c0), member(X, c1), member(X, c2)."),
      Q(world, "mid(X) :- member(X, c0), member(X, c1)."),
      Q(world, "big(X) :- member(X, c0)."),
  };
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, queries);
  ASSERT_TRUE(taxonomy.ok());
  EXPECT_EQ(taxonomy->classes.size(), 3u);
  // Chain small ⊂ mid ⊂ big: exactly two Hasse edges (no small->big).
  EXPECT_EQ(taxonomy->hasse_edges.size(), 2u);
}

TEST(ClassifierTest, EmptyAndSingleton) {
  World world;
  Result<QueryTaxonomy> empty = ClassifyQueries(world, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->classes.empty());

  std::vector<ConjunctiveQuery> one = {Q(world, "q(X) :- member(X, c).")};
  Result<QueryTaxonomy> single = ClassifyQueries(world, one);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->classes.size(), 1u);
  EXPECT_TRUE(single->hasse_edges.empty());
}

TEST(ClassifierTest, TaxonomyRendering) {
  World world;
  std::vector<ConjunctiveQuery> queries = {
      Q(world, "narrow(X) :- member(X, c0), data(X, a0, V)."),
      Q(world, "wide(X) :- member(X, c0)."),
  };
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, queries);
  ASSERT_TRUE(taxonomy.ok());
  std::string rendered = TaxonomyToString(*taxonomy, queries, world);
  // wide is the root, narrow indented below.
  EXPECT_NE(rendered.find("wide\n  narrow"), std::string::npos) << rendered;
}

TEST(ClassifierTest, ArityMismatchIsError) {
  World world;
  std::vector<ConjunctiveQuery> queries = {
      Q(world, "a(X) :- member(X, c0)."),
      Q(world, "b(X, Y) :- data(X, a0, Y)."),
  };
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, queries);
  EXPECT_FALSE(taxonomy.ok());
}

// ---- explanations ------------------------------------------------------------

TEST(ExplainTest, PositiveVerdictShowsDerivations) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, C), sub(C, person).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, person).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainContainment(world, q1, q2, *result);
  EXPECT_NE(text.find("q1 ⊆ q2"), std::string::npos) << text;
  EXPECT_NE(text.find("rho_3"), std::string::npos) << text;
  EXPECT_NE(text.find("[in body(q1)]"), std::string::npos) << text;
}

TEST(ExplainTest, NegativeVerdictMentionsCounterexample) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, student).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, professor).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainContainment(world, q1, q2, *result);
  EXPECT_NE(text.find("⊄"), std::string::npos) << text;
  EXPECT_NE(text.find("counterexample"), std::string::npos) << text;
}

TEST(ExplainTest, UnsatisfiableVerdict) {
  World world;
  ConjunctiveQuery q1 = Q(world,
                          "q() :- data(O, A, one), data(O, A, two), "
                          "funct(A, O).");
  ConjunctiveQuery q2 = Q(world, "q() :- sub(X, Y).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  std::string text = ExplainContainment(world, q1, q2, *result);
  EXPECT_NE(text.find("vacuously"), std::string::npos) << text;
}

TEST(ExplainTest, DeepDerivationThroughRho5) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ConjunctiveQuery q2 = Q(world, "q() :- data(O, X, V), member(V, T2).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->contained);
  std::string text = ExplainContainment(world, q1, q2, *result);
  EXPECT_NE(text.find("rho_5"), std::string::npos) << text;
  EXPECT_NE(text.find("rho_1"), std::string::npos) << text;
}

// ---- DOT export -----------------------------------------------------------------

TEST(GraphDotTest, ContainsNodesArcsAndRanks) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseOptions options;
  options.max_level = 6;
  options.record_cross_arcs = true;
  ChaseResult chase = ChaseQuery(world, q, options);
  std::string dot = ChaseGraphToDot(chase, world, {.max_level = 6});
  EXPECT_NE(dot.find("digraph chase"), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
  EXPECT_NE(dot.find("mandatory(A, T)"), std::string::npos);
  EXPECT_NE(dot.find("label=\"r5\""), std::string::npos);  // rho_5 arc
  EXPECT_NE(dot.find("penwidth=2.0"), std::string::npos);  // primary arc
  EXPECT_EQ(dot.find("label=\"q"), std::string::npos);     // no stray quotes
}

TEST(GraphDotTest, LevelCapFiltersNodes) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 12});
  std::string shallow = ChaseGraphToDot(chase, world, {.max_level = 2});
  std::string deep = ChaseGraphToDot(chase, world, {.max_level = 12});
  EXPECT_LT(shallow.size(), deep.size());
}

// ---- certain answers ---------------------------------------------------------------

TEST(CertainAnswersTest, NullsAreFilteredButJoinsThroughNullsCount) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("person[boss {1:*} *=> person]. ann : person. "
                      "bea : person. ann[boss -> bea].").ok());
  // Who has a boss? ann certainly (bea); bea certainly too — by rho_5 a
  // boss exists in *every* model even though its identity is unknown; and
  // the class `person` itself, because classes are objects in F-logic and
  // mandatory(boss, person) applies to it literally.
  ConjunctiveQuery who = *ParseQuery(world, "q(X) :- data(X, boss, B).");
  Result<std::vector<std::vector<Term>>> certain = kb.CertainAnswers(who);
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  EXPECT_EQ(certain->size(), 3u);

  // Whose boss is bea? Only ann — the invented boss of bea is a null and
  // must not leak into certain answers.
  ConjunctiveQuery whose =
      *ParseQuery(world, "q(X, B) :- data(X, boss, B).");
  certain = kb.CertainAnswers(whose);
  ASSERT_TRUE(certain.ok());
  ASSERT_EQ(certain->size(), 1u);
  EXPECT_EQ(world.NameOf((*certain)[0][0]), "ann");
  EXPECT_EQ(world.NameOf((*certain)[0][1]), "bea");
}

TEST(CertainAnswersTest, InconsistentKbIsAnError) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("o[a {0:1} *=> t]. o : o2. o[a -> v1]. o[a -> v2]. "
                      "funct(a, o).").ok());
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- data(o, a, X).");
  Result<std::vector<std::vector<Term>>> certain = kb.CertainAnswers(q);
  EXPECT_FALSE(certain.ok());
  EXPECT_EQ(certain.status().code(), StatusCode::kFailedPrecondition);
}

// ---- union containment -----------------------------------------------------------

TEST(UnionContainmentTest, EveryDisjunctMustBeCovered) {
  World world;
  std::vector<ConjunctiveQuery> lhs = {
      Q(world, "l1(X) :- member(X, student)."),
      Q(world, "l2(X) :- member(X, professor)."),
  };
  std::vector<ConjunctiveQuery> rhs = {
      Q(world, "r1(X) :- member(X, C)."),
  };
  Result<std::optional<size_t>> violation =
      CheckUnionContainment(world, lhs, rhs);
  ASSERT_TRUE(violation.ok());
  EXPECT_FALSE(violation->has_value());  // holds

  std::vector<ConjunctiveQuery> narrow_rhs = {
      Q(world, "r1(X) :- member(X, student)."),
  };
  violation = CheckUnionContainment(world, lhs, narrow_rhs);
  ASSERT_TRUE(violation.ok());
  ASSERT_TRUE(violation->has_value());
  EXPECT_EQ(violation->value(), 1u);  // l2 is the violator
}

TEST(UnionContainmentTest, EmptyLhsIsContainedInAnything) {
  World world;
  std::vector<ConjunctiveQuery> rhs = {Q(world, "r(X) :- member(X, C).")};
  Result<std::optional<size_t>> violation =
      CheckUnionContainment(world, {}, rhs);
  ASSERT_TRUE(violation.ok());
  EXPECT_FALSE(violation->has_value());
}

// ---- ablation knobs ---------------------------------------------------------------

TEST(AblationTest, NaiveAtomOrderFindsTheSameHomomorphisms) {
  World world;
  ConjunctiveQuery q1 =
      Q(world, "q(X) :- member(X, C), sub(C, D), type(D, A, T), "
               "data(X, A, V).");
  ChaseResult chase = ChaseLevelZero(world, q1);
  ConjunctiveQuery q2 =
      Q(world, "p(X) :- member(X, C2), type(C2, A2, T2)."
               ).RenameApart(world);
  MatchOptions naive;
  naive.most_constrained_first = false;
  auto smart = FindQueryHomomorphism(q2, chase.conjuncts(), {chase.head()[0]});
  auto dumb = FindQueryHomomorphism(q2, chase.conjuncts(), {chase.head()[0]},
                                    nullptr, naive);
  EXPECT_EQ(smart.has_value(), dumb.has_value());
}

TEST(AblationTest, FullRecheckChaseMatchesDeltaChase) {
  // Two independent worlds so the two chases draw the same fresh nulls;
  // the results must then be identical conjunct for conjunct.
  const char* text = "q() :- mandatory(A, T), type(T, A, T), sub(T, U).";
  World world_a, world_b;
  ConjunctiveQuery qa = *ParseQuery(world_a, text);
  ConjunctiveQuery qb = *ParseQuery(world_b, text);
  ChaseOptions delta;
  delta.max_level = 10;
  ChaseOptions full = delta;
  full.use_delta_windows = false;
  ChaseResult with_delta = ChaseQuery(world_a, qa, delta);
  ChaseResult without = ChaseQuery(world_b, qb, full);
  ASSERT_EQ(with_delta.size(), without.size());
  EXPECT_EQ(with_delta.max_level(), without.max_level());
  for (uint32_t id = 0; id < with_delta.size(); ++id) {
    EXPECT_TRUE(without.conjuncts().Contains(with_delta.conjunct(id)))
        << with_delta.conjunct(id).ToString(world_a);
    EXPECT_EQ(with_delta.LevelOf(id),
              without.LevelOf(without.conjuncts().IdOf(
                  with_delta.conjunct(id))));
  }
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

// ---- view usability analysis ----------------------------------------------

TEST(ViewAnalysisTest, ClassifiesViewsAgainstAQuery) {
  World world;
  ConjunctiveQuery query =
      *ParseQuery(world, "q(X) :- member(X, C), sub(C, person).");
  std::vector<ConjunctiveQuery> views = {
      // Complete: query answers are all persons (rho_3).
      *ParseQuery(world, "v0(X) :- member(X, person)."),
      // Sound: members of subclasses of subclasses of person qualify.
      *ParseQuery(world,
                  "v1(X) :- member(X, D), sub(D, C), sub(C, person)."),
      // Exact: same query up to renaming.
      *ParseQuery(world, "v2(Y) :- member(Y, K), sub(K, person)."),
      // Irrelevant.
      *ParseQuery(world, "v3(X) :- data(X, age, V)."),
      // Irrelevant by arity.
      *ParseQuery(world, "v4(X, C) :- member(X, C)."),
  };
  Result<ViewAnalysis> analysis = AnalyzeViews(world, query, views);
  ASSERT_TRUE(analysis.ok()) << analysis.status().ToString();
  EXPECT_EQ(analysis->usability[0], ViewUsability::kComplete);
  EXPECT_EQ(analysis->usability[1], ViewUsability::kSound);
  EXPECT_EQ(analysis->usability[2], ViewUsability::kExact);
  EXPECT_EQ(analysis->usability[3], ViewUsability::kIrrelevant);
  EXPECT_EQ(analysis->usability[4], ViewUsability::kIrrelevant);
  ASSERT_TRUE(analysis->exact_view.has_value());
  EXPECT_EQ(*analysis->exact_view, 2u);
  // EXACT views appear in both candidate lists.
  EXPECT_EQ(analysis->complete_views, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(analysis->sound_views, (std::vector<size_t>{1, 2}));
}

TEST(ViewAnalysisTest, ConstraintDrivenCompleteness) {
  // The view over the superclass is complete for the subclass query only
  // because of rho_3 — classically it is irrelevant.
  World world;
  ConjunctiveQuery query = *ParseQuery(
      world, "q(X) :- member(X, grad), sub(grad, person).");
  std::vector<ConjunctiveQuery> views = {
      *ParseQuery(world, "v(X) :- member(X, person)."),
  };
  Result<ViewAnalysis> analysis = AnalyzeViews(world, query, views);
  ASSERT_TRUE(analysis.ok());
  EXPECT_EQ(analysis->usability[0], ViewUsability::kComplete);
  EXPECT_FALSE(
      CheckClassicalContainment(world, query, views[0])->contained);
}

TEST(ViewAnalysisTest, RenderedTableMentionsVerdicts) {
  World world;
  ConjunctiveQuery query = *ParseQuery(world, "q(X) :- member(X, c).");
  std::vector<ConjunctiveQuery> views = {
      *ParseQuery(world, "v(X) :- member(X, C)."),
  };
  Result<ViewAnalysis> analysis = AnalyzeViews(world, query, views);
  ASSERT_TRUE(analysis.ok());
  std::string table = ViewAnalysisToString(*analysis, query, views, world);
  EXPECT_NE(table.find("COMPLETE"), std::string::npos) << table;
}

}  // namespace
}  // namespace floq
