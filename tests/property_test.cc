// Property-based tests: randomized queries and databases checked against
// the paper's semantic definitions, with the Datalog engine as an
// independent oracle. Each suite is parameterized by a generator seed.

#include <gtest/gtest.h>

#include <set>

#include "chase/chase.h"
#include "chase/sigma_fl.h"
#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "datalog/evaluator.h"
#include "gen/generators.h"
#include "kb/knowledge_base.h"
#include "term/world.h"

namespace floq {
namespace {

gen::RandomQuerySpec SmallQuerySpec(uint64_t seed, int atoms, int arity) {
  gen::RandomQuerySpec spec;
  spec.seed = seed;
  spec.atoms = atoms;
  spec.arity = arity;
  spec.variable_pool = 4;
  spec.constant_pool = 3;
  spec.constant_probability = 0.2;
  return spec;
}

// ---- containment is reflexive ------------------------------------------------

class ReflexivityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReflexivityProperty, QContainedInQ) {
  World world;
  ConjunctiveQuery q = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam(), 2 + int(GetParam() % 4), 1));
  Result<ContainmentResult> result = CheckContainment(world, q, q);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained) << q.ToString(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReflexivityProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

// ---- dropping body atoms only widens the query -------------------------------

class MonotonicityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MonotonicityProperty, SubBodyContainsFullBody) {
  World world;
  ConjunctiveQuery q = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam(), 4, 1));
  // Drop each atom in turn (when the result stays safe).
  for (size_t i = 0; i < q.body().size(); ++i) {
    std::vector<Atom> smaller = q.body();
    smaller.erase(smaller.begin() + i);
    ConjunctiveQuery wider(q.name(), q.head(), std::move(smaller));
    if (!wider.Validate(world).ok()) continue;
    Result<ContainmentResult> result = CheckContainment(world, q, wider);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->contained)
        << q.ToString(world) << " vs " << wider.ToString(world);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotonicityProperty,
                         ::testing::Range(uint64_t(0), uint64_t(30)));

// ---- the weaker checkers are sound w.r.t. the paper's checker ----------------

class BaselineSoundnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineSoundnessProperty, ClassicalImpliesSigma) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 2 + 1, 3, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 2 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> classical =
      CheckClassicalContainment(world, q1, q2);
  ASSERT_TRUE(classical.ok());
  if (!classical->contained) return;

  Result<ContainmentResult> paper = CheckContainment(world, q1, q2);
  ASSERT_TRUE(paper.ok()) << paper.status().ToString();
  EXPECT_TRUE(paper->contained)
      << q1.ToString(world) << " vs " << q2.ToString(world);
}

TEST_P(BaselineSoundnessProperty, LevelZeroImpliesSigma) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 3 + 1, 3, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 3 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  ContainmentOptions level_zero;
  level_zero.depth = ChaseDepth::kLevelZero;
  Result<ContainmentResult> shallow =
      CheckContainment(world, q1, q2, level_zero);
  ASSERT_TRUE(shallow.ok());
  if (!shallow->contained) return;

  Result<ContainmentResult> paper = CheckContainment(world, q1, q2);
  ASSERT_TRUE(paper.ok());
  EXPECT_TRUE(paper->contained);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSoundnessProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

// ---- transitivity ---------------------------------------------------------------

class TransitivityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TransitivityProperty, ContainmentComposes) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 5 + 1, 4, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 5 + 2, 3, 1), "q2");
  ConjunctiveQuery q3 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 5 + 3, 2, 1), "q3");
  if (q1.arity() != q2.arity() || q2.arity() != q3.arity()) return;

  Result<ContainmentResult> first = CheckContainment(world, q1, q2);
  Result<ContainmentResult> second = CheckContainment(world, q2, q3);
  ASSERT_TRUE(first.ok() && second.ok());
  if (!first->contained || !second->contained) return;

  Result<ContainmentResult> third = CheckContainment(world, q1, q3);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third->contained)
      << q1.ToString(world) << " | " << q2.ToString(world) << " | "
      << q3.ToString(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitivityProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

// ---- completed chases satisfy Sigma_FL --------------------------------------

class ChaseModelProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaseModelProperty, CompletedChaseIsAModelOfSigma) {
  World world;
  gen::RandomQuerySpec spec = SmallQuerySpec(GetParam(), 4, 0);
  ConjunctiveQuery q = gen::MakeRandomQuery(world, spec);
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 200,
                                            .max_atoms = 200'000});
  if (chase.outcome() != ChaseOutcome::kCompleted) return;

  // Every Datalog TGD instance must have its head present.
  SigmaFL sigma = MakeSigmaFL(world);
  for (const SigmaTgd& tgd : sigma.tgds) {
    MatchConjunction(tgd.rule.body, chase.conjuncts(), Substitution(),
                     [&](const Substitution& match) {
                       EXPECT_TRUE(chase.conjuncts().Contains(
                           match.Apply(tgd.rule.head)))
                           << "rho_" << int(tgd.id) << " unsatisfied in "
                           << q.ToString(world);
                       return true;
                     });
  }

  // rho_4: a functional attribute has at most one value per object.
  for (uint32_t fid : chase.conjuncts().WithPredicate(pfl::kFunct)) {
    const Atom& funct = chase.conjunct(fid);
    std::set<Term> values;
    for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
      const Atom& data = chase.conjunct(id);
      if (data.arg(0) == funct.arg(1) && data.arg(1) == funct.arg(0)) {
        values.insert(data.arg(2));
      }
    }
    EXPECT_LE(values.size(), 1u) << q.ToString(world);
  }

  // rho_5: every mandatory attribute has a value.
  for (uint32_t mid : chase.conjuncts().WithPredicate(pfl::kMandatory)) {
    const Atom& mandatory = chase.conjunct(mid);
    bool has_value = false;
    for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
      const Atom& data = chase.conjunct(id);
      if (data.arg(0) == mandatory.arg(1) && data.arg(1) == mandatory.arg(0)) {
        has_value = true;
      }
    }
    EXPECT_TRUE(has_value) << q.ToString(world);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseModelProperty,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

// ---- negative verdicts are witnessed by the frozen chase ---------------------

class CounterexampleProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CounterexampleProperty, FrozenChaseRefutesContainment) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 7 + 1, 4, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 7 + 2, 3, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  if (!result.ok()) return;  // budget blowups are exercised elsewhere
  // Only finite chases yield genuine finite counterexample databases.
  if (result->contained ||
      result->chase.outcome() != ChaseOutcome::kCompleted) {
    return;
  }

  // Freeze the chase: every variable becomes a fresh null.
  Substitution freeze;
  for (const Atom& atom : result->chase.conjuncts().atoms()) {
    for (Term t : atom) {
      if (t.IsVariable() && !freeze.Binds(t)) {
        freeze.Bind(t, world.MakeFreshNull());
      }
    }
  }
  Database db;
  for (const Atom& atom : result->chase.conjuncts().atoms()) {
    db.Insert(freeze.Apply(atom));
  }
  std::vector<Term> frozen_head = freeze.ApplyToTerms(result->chase.head());

  // q1 returns its canonical tuple on the counterexample; q2 does not.
  EXPECT_TRUE(QueryReturns(db, q1, frozen_head)) << q1.ToString(world);
  EXPECT_FALSE(QueryReturns(db, q2, frozen_head))
      << q1.ToString(world) << " vs " << q2.ToString(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CounterexampleProperty,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

// ---- soundness against random concrete databases -----------------------------

class OracleSoundnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OracleSoundnessProperty, PositiveVerdictsHoldOnRandomDatabases) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 11 + 1, 3, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 11 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> verdict = CheckContainment(world, q1, q2);
  if (!verdict.ok() || !verdict->contained) return;

  for (uint64_t db_seed = 0; db_seed < 5; ++db_seed) {
    gen::RandomKbSpec kb_spec;
    kb_spec.seed = GetParam() * 100 + db_seed;
    KnowledgeBase kb(world);
    for (const Atom& fact : gen::MakeRandomKbFacts(world, kb_spec)) {
      ASSERT_TRUE(kb.AddFact(fact).ok());
    }
    // Bridge the query constants (c0..c2) into the database so constant
    // atoms in the queries can match.
    ASSERT_TRUE(kb.AddFact(Atom::Member(world.MakeConstant("c0"),
                                        world.MakeConstant("c1"))).ok());
    ASSERT_TRUE(kb.AddFact(Atom::Data(world.MakeConstant("c0"),
                                      world.MakeConstant("c1"),
                                      world.MakeConstant("c2"))).ok());
    ASSERT_TRUE(kb.AddFact(Atom::Sub(world.MakeConstant("c1"),
                                     world.MakeConstant("c2"))).ok());

    SaturateOptions options;
    options.mandatory_completion_rounds = 6;
    Result<ConsistencyReport> report = kb.Saturate(options);
    ASSERT_TRUE(report.ok());
    // Only legal instances count: Sigma_FL must hold in full.
    if (!report->consistent || !report->unsatisfied_mandatory.empty()) {
      continue;
    }

    std::set<std::vector<Term>> q2_answers;
    for (auto& tuple : EvaluateQuery(kb.database(), q2)) {
      q2_answers.insert(std::move(tuple));
    }
    for (const auto& tuple : EvaluateQuery(kb.database(), q1)) {
      EXPECT_TRUE(q2_answers.count(tuple) > 0)
          << "containment verdict violated on database seed " << kb_spec.seed
          << "\n  q1 = " << q1.ToString(world)
          << "\n  q2 = " << q2.ToString(world);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleSoundnessProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

// ---- witnesses are valid homomorphisms ----------------------------------------

class WitnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WitnessProperty, PositiveVerdictsCarryValidWitnesses) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 13 + 1, 4, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 13 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  if (!result.ok() || !result->contained || result->q1_unsatisfiable) return;
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(IsQueryHomomorphism(q2, result->chase.conjuncts(),
                                  result->chase.head(), *result->witness))
      << q1.ToString(world) << " vs " << q2.ToString(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessProperty,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

}  // namespace
}  // namespace floq

// Appended suites: properties of the extension layer.

#include "containment/classifier.h"
#include "containment/minimize.h"

namespace floq {
namespace {

// ---- cores are equivalent and idempotent -------------------------------------

class CoreProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoreProperty, CoreIsEquivalentAndIdempotent) {
  World world;
  ConjunctiveQuery q = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 17 + 3, 4, 1));
  Result<ConjunctiveQuery> core = ComputeCore(world, q);
  if (!core.ok()) return;  // budget blowups tolerated
  EXPECT_LE(core->size(), q.size());

  Result<bool> equivalent = CheckEquivalence(world, q, *core);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent) << q.ToString(world) << "  vs  "
                           << core->ToString(world);

  Result<ConjunctiveQuery> again = ComputeCore(world, *core);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), core->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreProperty,
                         ::testing::Range(uint64_t(0), uint64_t(30)));

// ---- classifier agrees with pairwise checks -----------------------------------

class ClassifierProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClassifierProperty, ClassesMatchPairwiseEquivalence) {
  World world;
  std::vector<ConjunctiveQuery> queries;
  for (int i = 0; i < 4; ++i) {
    queries.push_back(gen::MakeRandomQuery(
        world, SmallQuerySpec(GetParam() * 19 + uint64_t(i), 3, 1),
        "q" + std::to_string(i)));
  }
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world, queries);
  if (!taxonomy.ok()) return;

  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      Result<bool> equivalent =
          CheckEquivalence(world, queries[i], queries[j]);
      ASSERT_TRUE(equivalent.ok());
      EXPECT_EQ(*equivalent,
                taxonomy->class_of[i] == taxonomy->class_of[j])
          << queries[i].ToString(world) << " vs "
          << queries[j].ToString(world);
    }
  }

  // Hasse edges are strict containments between representatives.
  for (const auto& [sub, super] : taxonomy->hasse_edges) {
    size_t i = taxonomy->classes[size_t(sub)][0];
    size_t j = taxonomy->classes[size_t(super)][0];
    Result<ContainmentResult> forward =
        CheckContainment(world, queries[i], queries[j]);
    Result<ContainmentResult> backward =
        CheckContainment(world, queries[j], queries[i]);
    ASSERT_TRUE(forward.ok() && backward.ok());
    EXPECT_TRUE(forward->contained);
    EXPECT_FALSE(backward->contained);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClassifierProperty,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

// ---- UCQ containment degenerates correctly -------------------------------------

class UcqProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UcqProperty, SingletonUnionEqualsPlainContainment) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 23 + 1, 3, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 23 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> plain = CheckContainment(world, q1, q2);
  std::vector<ConjunctiveQuery> disjuncts = {q2};
  Result<std::optional<size_t>> ucq =
      CheckUcqContainment(world, q1, disjuncts);
  if (!plain.ok() || !ucq.ok()) return;
  EXPECT_EQ(plain->contained, ucq->has_value())
      << q1.ToString(world) << " vs " << q2.ToString(world);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcqProperty,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

}  // namespace
}  // namespace floq

// Appended suite: the generic dependency path agrees with the paper's
// specialized checker when fed Sigma_FL itself.

#include "chase/dependencies.h"

namespace floq {
namespace {

class GenericAgreementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GenericAgreementProperty, GenericSigmaFLMatchesPaperChecker) {
  World world;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 29 + 1, 3, 1), "q1");
  ConjunctiveQuery q2 = gen::MakeRandomQuery(
      world, SmallQuerySpec(GetParam() * 29 + 2, 2, 1), "q2");
  if (q1.arity() != q2.arity()) return;

  Result<ContainmentResult> paper = CheckContainment(world, q1, q2);
  if (!paper.ok()) return;

  DependencySet sigma = MakeSigmaFLDependencies(world);
  ContainmentOptions options;
  options.level_override = q2.size() * 2 * q1.size();
  Result<ContainmentResult> generic =
      CheckContainmentUnderDependencies(world, q1, q2, sigma, options);
  if (!generic.ok()) return;
  EXPECT_EQ(paper->contained, generic->contained)
      << q1.ToString(world) << " vs " << q2.ToString(world);
  EXPECT_EQ(paper->q1_unsatisfiable, generic->q1_unsatisfiable);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GenericAgreementProperty,
                         ::testing::Range(uint64_t(0), uint64_t(50)));

}  // namespace
}  // namespace floq
