// Integration tests: every worked example in the paper, end to end, going
// through the F-logic surface syntax where the paper does.

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "chase/chase.h"
#include "containment/containment.h"
#include "flogic/parser.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

// ---- Section 2, first example: joinable attribute pairs --------------------
//
//   q(A,B)  :- T1[A*=>T2], T2::T3, T3[B*=>_].
//   qq(A,B) :- T1[A*=>T2], T2[B*=>_].
//   claim: q ⊆ qq.

TEST(PaperSection2Test, JoinableAttributesContainment) {
  World world;
  ConjunctiveQuery q =
      *flogic::ParseQuery(world,
                          "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> _].");
  ConjunctiveQuery qq =
      *flogic::ParseQuery(world, "qq(A, B) :- T1[A *=> T2], T2[B *=> _].");

  Result<ContainmentResult> forward = CheckContainment(world, q, qq);
  ASSERT_TRUE(forward.ok()) << forward.status().ToString();
  EXPECT_TRUE(forward->contained);

  // The containment is strict.
  Result<ContainmentResult> backward = CheckContainment(world, qq, q);
  ASSERT_TRUE(backward.ok());
  EXPECT_FALSE(backward->contained);
}

TEST(PaperSection2Test, JoinableAttributesNeedsSupertyping) {
  // The containment hinges on rho_8 (supertyping): classical containment
  // misses it.
  World world;
  ConjunctiveQuery q =
      *flogic::ParseQuery(world,
                          "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> _].");
  ConjunctiveQuery qq =
      *flogic::ParseQuery(world, "qq(A, B) :- T1[A *=> T2], T2[B *=> _].");
  EXPECT_FALSE(CheckClassicalContainment(world, q, qq)->contained);

  // And on the derived conjunct type(T1, A, T3) being at level 0.
  ContainmentOptions level_zero_options;
  level_zero_options.depth = ChaseDepth::kLevelZero;
  Result<ContainmentResult> level_zero =
      CheckContainment(world, q, qq, level_zero_options);
  ASSERT_TRUE(level_zero.ok());
  EXPECT_TRUE(level_zero->contained);  // rho_8 fires in the Sigma^- chase
}

// ---- Section 2, second example: mandatory attributes of nonempty classes ---
//
//   q(Att,Class,Type) :- Class[Att {1,*} *=> _], Class[Att*=>Type], _:Class.
//
// The paper's second rule listing is garbled in the available text, so we
// reconstruct a natural containing query that exercises the intended
// machinery (rho_5 value invention + rho_1/rho_6/rho_10 inheritance):
// "some object of the class carries a value for Att, of type Type".

TEST(PaperSection2Test, MandatoryAttributeTripleContainment) {
  World world;
  ConjunctiveQuery q =
      *flogic::ParseQuery(world,
                          "q(Att, Class, Type) :- Class[Att {1,*} *=> _], "
                          "Class[Att *=> Type], _ : Class.");
  ConjunctiveQuery qq =
      *flogic::ParseQuery(world,
                          "qq(Att, Class, Type) :- O : Class, "
                          "O[Att -> V], V : Type.");

  Result<ContainmentResult> result = CheckContainment(world, q, qq);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);

  // Neither the classical check nor the level-0 chase can see this:
  // rho_5 must invent the value.
  EXPECT_FALSE(CheckClassicalContainment(world, q, qq)->contained);
  ContainmentOptions level_zero_options;
  level_zero_options.depth = ChaseDepth::kLevelZero;
  EXPECT_FALSE(
      CheckContainment(world, q, qq, level_zero_options)->contained);
}

// ---- Example 1: chase side effects on the query head ------------------------

TEST(PaperExample1Test, ChaseRewritesHead) {
  World world;
  ConjunctiveQuery q = *ParseQuery(world,
                                   "q(V1, V2) :- data(O, A, V1), "
                                   "data(O, A, V2), funct(A, C), "
                                   "member(O, C).");
  ChaseResult chase = ChaseQuery(world, q);
  ASSERT_EQ(chase.outcome(), ChaseOutcome::kCompleted);

  // "rule rho_12 will add the conjunct funct(A, O)".
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Funct(world.MakeVariable("A"), world.MakeVariable("O"))));

  // "by rule rho_4, we will replace V2 with V1" — the head becomes
  // q(V1, V1).
  Term v1 = world.MakeVariable("V1");
  EXPECT_EQ(chase.head(), (std::vector<Term>{v1, v1}));

  // The remaining conjuncts of the paper's rewritten query body.
  Term o = world.MakeVariable("O");
  Term a = world.MakeVariable("A");
  Term c = world.MakeVariable("C");
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Data(o, a, v1)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Funct(a, c)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(o, c)));
  // data(O, A, V2) collapsed into data(O, A, V1).
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 1u);
}

// ---- Example 2 / Figure 1: the infinite chase chain --------------------------

TEST(PaperExample2Test, Figure1ChasePrefix) {
  World world;
  ConjunctiveQuery q = *ParseQuery(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 10});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kLevelCapped);

  Term a = world.MakeVariable("A");
  Term t = world.MakeVariable("T");
  Term u = world.MakeVariable("U");

  // Figure 1's chain: mandatory(A,T), type(T,A,T) at level 0, then
  // data(T,A,v1), member(v1,T), type(v1,A,T), mandatory(A,v1),
  // data(v1,A,v2), member(v2,T), type(v2,A,T), ...
  std::vector<Term> chain_nulls;
  Term source = t;
  for (int hop = 0; hop < 3; ++hop) {
    Term next;
    for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
      const Atom& atom = chase.conjunct(id);
      if (atom.arg(0) == source && atom.arg(1) == a) next = atom.arg(2);
    }
    ASSERT_TRUE(next.valid()) << "chain broke at hop " << hop;
    EXPECT_TRUE(next.IsNull());
    EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(next, t)));
    EXPECT_TRUE(chase.conjuncts().Contains(Atom::Type(next, a, t)));
    EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a, next)));
    chain_nulls.push_back(next);
    source = next;
  }

  // "because of rule rho_3 ... we obtain the conjunct member(v1, U)" — the
  // branch departing from the chain.
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(chain_nulls[0], u)));

  // The conjuncts never interact across cycles: all chain nulls distinct.
  EXPECT_NE(chain_nulls[0], chain_nulls[1]);
  EXPECT_NE(chain_nulls[1], chain_nulls[2]);
}

TEST(PaperExample2Test, SelfContainmentDespiteInfiniteChase) {
  World world;
  ConjunctiveQuery q = *ParseQuery(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  Result<ContainmentResult> result = CheckContainment(world, q, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

// ---- Section 4: cycles of mandatory attributes -------------------------------

TEST(PaperSection4Test, MandatoryCycleGeneratesPaperSeries) {
  // The k=2 cycle from Section 4: attributes a1, a2 over classes t1, t2.
  World world;
  ConjunctiveQuery q = *ParseQuery(world,
                                   "q() :- mandatory(a1, t1), "
                                   "type(t1, a1, t2), mandatory(a2, t2), "
                                   "type(t2, a2, t1).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 8});

  Term a1 = world.MakeConstant("a1");
  Term a2 = world.MakeConstant("a2");
  Term t1 = world.MakeConstant("t1");
  Term t2 = world.MakeConstant("t2");

  // Cycle 1 of the paper's series: data(t1,a1,v1), member(v1,t2),
  // type(v1,a2,t1)... wait — per the paper, type(v1, A2, T3) with T3 = t1
  // for k = 2, and mandatory(a2, v1).
  Term v1;
  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0) == t1 && atom.arg(1) == a1) v1 = atom.arg(2);
  }
  ASSERT_TRUE(v1.valid());
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(v1, t2)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Type(v1, a2, t1)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a2, v1)));

  // Cycle 2: data(v1, a2, v2), member(v2, t1), ...
  Term v2;
  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0) == v1 && atom.arg(1) == a2) v2 = atom.arg(2);
  }
  ASSERT_TRUE(v2.valid());
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(v2, t1)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Type(v2, a1, t2)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a1, v2)));
}

TEST(PaperSection4Test, DataAtomStopsTheCycle) {
  // "if there is no atom in q of the form data(T1, A1, v)" — with one, the
  // restricted rho_5 never fires for (t1, a1).
  World world;
  ConjunctiveQuery q = *ParseQuery(world,
                                   "q() :- mandatory(a1, t1), "
                                   "type(t1, a1, t1), data(t1, a1, w).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 40});
  // The chain proceeds through w (member(w, t1), mandatory(a1, w), then
  // data(w, a1, v)...) — but the *first* step reuses w instead of a null.
  Term t1 = world.MakeConstant("t1");
  Term a1 = world.MakeConstant("a1");
  Term w = world.MakeConstant("w");
  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0) == t1 && atom.arg(1) == a1) {
      EXPECT_EQ(atom.arg(2), w);  // no invented value for (t1, a1)
    }
  }
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(w, t1)));
}

// ---- Theorem 12: the level bound is what makes the decision finite -----------

TEST(PaperTheorem12Test, BoundIsQ2TimesTwiceQ1) {
  World world;
  ConjunctiveQuery q1 = *ParseQuery(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  ConjunctiveQuery q2 = *ParseQuery(world, "q() :- data(O, A, V).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->level_bound, q2.size() * 2 * q1.size());  // 1 * 2 * 3
  EXPECT_TRUE(result->contained);
}

TEST(PaperTheorem13Test, DecisionIsDeterministicallyFeasibleOnPaperExamples) {
  // Smoke check that the two §2 examples decide instantly with small
  // chases — the NP guess is replaced by indexed backtracking.
  World world;
  ConjunctiveQuery q =
      *flogic::ParseQuery(world,
                          "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> _].");
  ConjunctiveQuery qq =
      *flogic::ParseQuery(world, "qq(A, B) :- T1[A *=> T2], T2[B *=> _].");
  Result<ContainmentResult> result = CheckContainment(world, q, qq);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
  EXPECT_LT(result->chase.size(), 100u);
  EXPECT_LT(result->hom_stats.nodes_visited, 1000u);
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

// Golden test: the per-level conjunct counts of Example 2's chase are
// pinned exactly. The prefix (levels 0..3) establishes the pattern; the
// chain is then periodic with period 3: data(1) -> member(2) ->
// type(2)+mandatory(1). Any engine change that alters derivation order,
// levels, or the restricted-rho_5 semantics trips this test.
TEST(PaperExample2Test, GoldenPerLevelCounts) {
  World world;
  ConjunctiveQuery q = *ParseQuery(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 19});

  // counts[level] = {data, member, type, mandatory, sub}
  std::map<int, std::array<int, 5>> counts;
  for (uint32_t id = 0; id < chase.size(); ++id) {
    std::array<int, 5>& row = counts[chase.LevelOf(id)];
    switch (chase.conjunct(id).predicate()) {
      case pfl::kData: ++row[0]; break;
      case pfl::kMember: ++row[1]; break;
      case pfl::kType: ++row[2]; break;
      case pfl::kMandatory: ++row[3]; break;
      case pfl::kSub: ++row[4]; break;
      default: FAIL() << "unexpected predicate";
    }
  }

  EXPECT_EQ(counts[0], (std::array<int, 5>{0, 0, 2, 1, 1}));
  for (int level = 1; level <= 19; ++level) {
    switch ((level - 1) % 3) {
      case 0:  // rho_5 step
        EXPECT_EQ(counts[level], (std::array<int, 5>{1, 0, 0, 0, 0}))
            << "level " << level;
        break;
      case 1:  // rho_1 (+ rho_3 branch): member(v,T), member(v,U)
        EXPECT_EQ(counts[level], (std::array<int, 5>{0, 2, 0, 0, 0}))
            << "level " << level;
        break;
      case 2:  // rho_6 twice + rho_10
        EXPECT_EQ(counts[level], (std::array<int, 5>{0, 0, 2, 1, 0}))
            << "level " << level;
        break;
    }
  }
}

}  // namespace
}  // namespace floq
