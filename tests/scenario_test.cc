// A cross-module integration scenario: "semantic web service discovery",
// the application story the paper's introduction tells. A mediator owns a
// conceptual (E-R) schema; services publish their capabilities as
// F-logic/SPARQL meta-queries; discovery = classifying requests against
// capabilities with Sigma_FL containment, explaining matches, and
// answering over a federated knowledge base.

#include <gtest/gtest.h>

#include "containment/classifier.h"
#include "containment/containment.h"
#include "containment/explain.h"
#include "containment/minimize.h"
#include "er/er_schema.h"
#include "flogic/parser.h"
#include "kb/knowledge_base.h"
#include "query/parser.h"
#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"
#include "term/world.h"

namespace floq {
namespace {

class DiscoveryScenario : public ::testing::Test {
 protected:
  void SetUp() override {
    // 1. The mediator's conceptual schema, designed in E-R.
    Result<er::ErSchema> schema = er::ParseErSchema(R"(
      entity person {
        attribute name : string;
      }
      entity author isa person {
        attribute orcid : string optional;
      }
      entity paper {
        attribute title : string;
      }
      relationship wrote {
        role who : author mandatory;
        role what : paper;
      }
    )");
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    schema_facts_ = schema->ToFacts(world_);
  }

  // Queries are checked against all databases; schema constraints travel
  // in the body.
  ConjunctiveQuery WithSchema(const char* text) {
    ConjunctiveQuery q = *ParseQuery(world_, text);
    std::vector<Atom> body = q.body();
    body.insert(body.end(), schema_facts_.begin(), schema_facts_.end());
    return ConjunctiveQuery(q.name(), q.head(), std::move(body));
  }

  World world_;
  std::vector<Atom> schema_facts_;
};

TEST_F(DiscoveryScenario, CapabilityMatchingViaContainment) {
  // A request: authors (they have written something, by total
  // participation). Two advertised capabilities.
  ConjunctiveQuery request = WithSchema("r(A) :- member(A, author).");
  ConjunctiveQuery capability_people =
      *ParseQuery(world_, "c1(A) :- member(A, person).");
  ConjunctiveQuery capability_writers = *ParseQuery(
      world_, "c2(A) :- data(A, who_of_wrote, W), data(W, what, P).");

  // Both capabilities cover the request: c1 via ISA, c2 via total
  // participation + mandatory role fillers (needs rho_5).
  Result<ContainmentResult> via_isa =
      CheckContainment(world_, request, capability_people);
  ASSERT_TRUE(via_isa.ok());
  EXPECT_TRUE(via_isa->contained);

  Result<ContainmentResult> via_participation =
      CheckContainment(world_, request, capability_writers);
  ASSERT_TRUE(via_participation.ok());
  EXPECT_TRUE(via_participation->contained);

  // The second match is invisible without the constraints.
  EXPECT_FALSE(
      CheckClassicalContainment(world_, request, capability_writers)
          ->contained);

  // The match is explainable, citing the existential rule.
  std::string explanation = ExplainContainment(
      world_, request, capability_writers, *via_participation);
  EXPECT_NE(explanation.find("rho_5"), std::string::npos) << explanation;
}

TEST_F(DiscoveryScenario, RequestsClassifyIntoATaxonomy) {
  std::vector<ConjunctiveQuery> requests = {
      WithSchema("authors(A) :- member(A, author)."),
      WithSchema("people(A) :- member(A, person)."),
      WithSchema("named(A) :- member(A, person), data(A, name, N)."),
      WithSchema("named2(A) :- data(A, name, N), member(A, person)."),
  };
  Result<QueryTaxonomy> taxonomy = ClassifyQueries(world_, requests);
  ASSERT_TRUE(taxonomy.ok()) << taxonomy.status().ToString();
  // named ≡ named2 (same atoms reordered); under the schema, people ≡
  // named (name is mandatory, so every person has one via rho_5)...
  // except `named` carries the schema in its body while `people` does
  // too, so the equivalence holds. authors ⊂ people.
  EXPECT_EQ(taxonomy->class_of[2], taxonomy->class_of[3]);
  EXPECT_EQ(taxonomy->class_of[1], taxonomy->class_of[2]);
  EXPECT_NE(taxonomy->class_of[0], taxonomy->class_of[1]);
}

TEST_F(DiscoveryScenario, FederatedAnswering) {
  // 2. One source publishes RDF, the other native F-logic; both land in
  // the same knowledge base under the shared schema.
  KnowledgeBase kb(world_);
  for (const Atom& fact : schema_facts_) {
    ASSERT_TRUE(kb.AddFact(fact).ok());
  }

  rdf::RdfGraph graph;
  ASSERT_TRUE(graph
                  .LoadText("kim rdf:type author\n"
                            "kim name 'Kim'\n"
                            "w1 rdf:type wrote\n"
                            "w1 who kim\n"
                            "w1 what p1\n"
                            "p1 rdf:type paper\n"
                            "p1 title 'On_Chases'\n")
                  .ok());
  ASSERT_TRUE(graph.Populate(kb).ok());
  ASSERT_TRUE(kb.Load("lee : author. lee[name -> 'Lee'].").ok());

  Result<ConsistencyReport> report = kb.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);

  // A SPARQL request answered over the federation: authors are persons.
  Result<ConjunctiveQuery> request = rdf::ParseSparql(
      world_, "SELECT ?a WHERE { ?a rdf:type person }");
  ASSERT_TRUE(request.ok());
  Result<std::vector<std::vector<Term>>> answers = kb.Answer(*request);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // kim, lee

  // Certain answers: who certainly wrote something? kim explicitly; lee
  // by total participation (the tuple exists in every model, identity
  // unknown).
  ConjunctiveQuery wrote_something = *ParseQuery(
      world_, "q(A) :- member(A, author), data(A, who_of_wrote, W).");
  Result<std::vector<std::vector<Term>>> certain =
      kb.CertainAnswers(wrote_something);
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  std::set<std::string> names;
  for (const auto& tuple : *certain) {
    names.insert(world_.NameOf(tuple[0]));
  }
  EXPECT_TRUE(names.count("kim") > 0);
  EXPECT_TRUE(names.count("lee") > 0);
}

TEST_F(DiscoveryScenario, RequestOptimizationBeforeDispatch) {
  // A clumsy federated request is minimized before being sent out.
  ConjunctiveQuery request = WithSchema(
      "r(A) :- member(A, author), member(A, person), data(A, name, N), "
      "member(N, string).");
  CoreStats stats;
  Result<ConjunctiveQuery> core = ComputeCore(world_, request, {}, &stats);
  ASSERT_TRUE(core.ok());
  // member(A, person) follows from ISA; member(N, string) from typing;
  // data(A, name, N) from the mandatory name... but N appears in the
  // head? No — N is non-head, so the whole name leg collapses and only
  // member(A, author) (plus schema) remains.
  EXPECT_LT(core->size(), request.size());
  EXPECT_TRUE(*CheckEquivalence(world_, request, *core));
}

}  // namespace
}  // namespace floq
