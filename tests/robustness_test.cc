// Robustness: malformed and adversarial inputs must produce Status errors
// (never crashes), and randomized garbage must never be accepted as a
// valid program when it is not one.

#include <gtest/gtest.h>

#include <string>

#include "flogic/parser.h"
#include "query/parser.h"
#include "rdf/sparql.h"
#include "term/world.h"
#include "util/rng.h"

namespace floq {
namespace {

// ---- targeted malformed inputs ------------------------------------------------

TEST(RobustnessTest, QueryParserRejectsGarbage) {
  World world;
  const char* cases[] = {
      "",
      "q(",
      "q(X :- member(X, c).",
      "q(X) :- member(X, c),",
      "q(X) :- member(X, c)) .",
      "q(X) :- member(X c).",
      "q(X) :- member(, c).",
      "q(X) : - member(X, c).",
      "q(X) :- (X, c).",
      "123(X) :- member(X, c).",
      "q(X) :- member(X, 'unterminated).",
      ":- member(X, c).",
      "q(X) :- .",
  };
  for (const char* text : cases) {
    Result<ConjunctiveQuery> q = ParseQuery(world, text);
    EXPECT_FALSE(q.ok()) << "accepted: " << text;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(RobustnessTest, QuotedConstantEdgeCases) {
  World world;
  // Quotes delimit arbitrary constants, including empty and spaced ones.
  EXPECT_TRUE(ParseQuery(world, "q(X) :- member(X, 'a class').").ok());
  EXPECT_TRUE(ParseQuery(world, "q(X) :- member(X, '').").ok());
  // Misplaced or unterminated quotes must come back as Status errors —
  // never assertion failures — wherever a term or identifier can start.
  const char* cases[] = {
      "q(X) :- member(X, ').",
      "q(X) :- member(X, 'abc).",
      "q('unterminated :- member(X, c).",
      "q(X) :- member('a, 'b).",
      "'q'(X) :- member(X, c).",
      "q(X) :- 'member'(X, c).",
  };
  for (const char* text : cases) {
    Result<ConjunctiveQuery> q = ParseQuery(world, text);
    EXPECT_FALSE(q.ok()) << "accepted: " << text;
    EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << text;
  }
}

TEST(RobustnessTest, ArityOverflowIsRejected) {
  World world;
  // kMaxArity is 6; a seventh argument must be a parse error, not a crash
  // in the Atom constructor.
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q() :- p(A, B, C, D, E, F, G).");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
  // The rejected arity must not poison the predicate table.
  EXPECT_TRUE(ParseQuery(world, "q() :- p(A, A).").ok());
}

TEST(RobustnessTest, FlogicParserRejectsGarbage) {
  World world;
  const char* cases[] = {
      "john :",
      "john ::",
      "john[",
      "john[age",
      "john[age ->",
      "john[age -> 33",
      "john[age {1:*}",
      "john[age {1:*} -> 33]",  // cardinality with -> is not legal
      "john[age *=> ]",
      "person[age {one:*} *=> t]",
      "[age -> 33]",
      "john : student student",
      "?-",
      "?- .",
  };
  for (const char* text : cases) {
    Result<flogic::Program> program = flogic::ParseProgram(world, text);
    EXPECT_FALSE(program.ok()) << "accepted: " << text;
  }
}

TEST(RobustnessTest, SparqlParserRejectsGarbage) {
  World world;
  const char* cases[] = {
      "",
      "SELECT",
      "SELECT ?x",
      "SELECT ?x WHERE",
      "SELECT ?x WHERE {",
      "SELECT ?x WHERE { ?x }",
      "SELECT ?x WHERE { ?x rdf:type }",
      "SELECT x WHERE { ?x rdf:type c }",
      "WHERE { ?x rdf:type c } SELECT ?x",
  };
  for (const char* text : cases) {
    EXPECT_FALSE(rdf::ParseSparql(world, text).ok()) << "accepted: " << text;
  }
}

// ---- randomized fuzz (structure-aware token soup) ------------------------------

class FuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzProperty, TokenSoupNeverCrashesTheParsers) {
  static const char* kTokens[] = {
      "q",      "(",    ")",    ":-",  ".",   ",",      "X",   "member",
      "sub",    "data", "type", "::",  ":",   "[",      "]",   "->",
      "*=>",    "{",    "}",    "1",   "*",   "0",      "_",   "'s t'",
      "person", "33",   "%c\n", "?-",  "Att", "funct",  "a_b", "-",
  };
  Rng rng(GetParam());
  std::string text;
  int length = 1 + int(rng.Below(40));
  for (int i = 0; i < length; ++i) {
    text += kTokens[rng.Below(std::size(kTokens))];
    text += rng.Chance(0.8) ? " " : "";
  }

  World world;
  // Whatever happens must be a clean Result, not a crash; and if the text
  // parses, it must re-parse after printing (idempotent acceptance).
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  if (q.ok()) {
    Result<ConjunctiveQuery> again = ParseQuery(world, q->ToString(world));
    EXPECT_TRUE(again.ok()) << text;
  }
  Result<flogic::Program> program = flogic::ParseProgram(world, text);
  if (program.ok()) {
    for (const Atom& fact : program->facts) EXPECT_TRUE(fact.IsGround());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty,
                         ::testing::Range(uint64_t(0), uint64_t(300)));

// ---- random byte soup ------------------------------------------------------------

class ByteFuzzProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByteFuzzProperty, RandomBytesNeverCrash) {
  Rng rng(GetParam() * 31 + 7);
  std::string text;
  int length = int(rng.Below(120));
  for (int i = 0; i < length; ++i) {
    text += char(32 + rng.Below(95));  // printable ASCII
  }
  World world;
  (void)ParseQuery(world, text);
  (void)flogic::ParseProgram(world, text);
  (void)rdf::ParseSparql(world, text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteFuzzProperty,
                         ::testing::Range(uint64_t(0), uint64_t(300)));

}  // namespace
}  // namespace floq
