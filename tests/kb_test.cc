#include <gtest/gtest.h>

#include "kb/knowledge_base.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

// The running example from the paper's Section 2 narrative.
constexpr const char* kUniversity = R"(
  % schema
  freshman :: student.
  student :: person.
  person[age {0:1} *=> number].
  person[name {1:*} *=> string].
  student[major *=> string].

  % data
  john : freshman.
  mary : student.
  john[age -> 33].
  john[name -> 'John Smith'].
  mary[name -> 'Mary Poppins'].
  33 : number.
)";

class KbTest : public ::testing::Test {
 protected:
  World world_;
  KnowledgeBase kb_{world_};
};

TEST_F(KbTest, LoadAndCount) {
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  EXPECT_GT(kb_.size(), 0u);
  EXPECT_FALSE(kb_.saturated());
}

TEST_F(KbTest, SaturationDerivesSubclassTransitivity) {
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  Result<ConsistencyReport> report = kb_.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  EXPECT_TRUE(kb_.database().Contains(Atom::Sub(
      world_.MakeConstant("freshman"), world_.MakeConstant("person"))));
  EXPECT_TRUE(kb_.database().Contains(Atom::Member(
      world_.MakeConstant("john"), world_.MakeConstant("person"))));
}

TEST_F(KbTest, PaperIntroInferences) {
  // "These statements imply, for instance, that john:person ... are true."
  ASSERT_TRUE(kb_.Load("john : student. freshman :: student. "
                       "student :: person.").ok());
  ASSERT_TRUE(kb_.Saturate().ok());
  EXPECT_TRUE(kb_.database().Contains(Atom::Member(
      world_.MakeConstant("john"), world_.MakeConstant("person"))));
  EXPECT_TRUE(kb_.database().Contains(Atom::Sub(
      world_.MakeConstant("freshman"), world_.MakeConstant("person"))));
  // "(Note that it does not follow ... that john:class)" — membership in
  // 'class' must not appear out of nowhere.
  ASSERT_TRUE(kb_.Load("student : class.").ok());
  ASSERT_TRUE(kb_.Saturate().ok());
  EXPECT_FALSE(kb_.database().Contains(Atom::Member(
      world_.MakeConstant("john"), world_.MakeConstant("class"))));
  EXPECT_FALSE(kb_.database().Contains(Atom::Sub(
      world_.MakeConstant("student"), world_.MakeConstant("class"))));
}

TEST_F(KbTest, MetaQueryOverSchema) {
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  // "?- X::person." — subclasses of person.
  Result<std::vector<std::vector<Term>>> answers = kb_.Answer("X :: person");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  std::vector<std::string> names;
  for (const auto& tuple : *answers) names.push_back(world_.NameOf(tuple[0]));
  EXPECT_NE(std::find(names.begin(), names.end(), "student"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "freshman"), names.end());
}

TEST_F(KbTest, MixedMetaAndDataQueryFromPaper) {
  // "?- student[Att*=>string], john[Att->Val]." — string attributes of
  // class student valued on john. john need not be a student member.
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  Result<std::vector<std::vector<Term>>> answers =
      kb_.Answer("student[Att *=> string], john[Att -> Val]");
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(world_.NameOf((*answers)[0][0]), "name");
  EXPECT_EQ(world_.NameOf((*answers)[0][1]), "John Smith");
}

TEST_F(KbTest, TypeInheritanceReachesMembers) {
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  ASSERT_TRUE(kb_.Saturate().ok());
  // john inherits person's age signature through freshman :: student ::
  // person (rho_7 then rho_6).
  EXPECT_TRUE(kb_.database().Contains(
      Atom::Type(world_.MakeConstant("john"), world_.MakeConstant("age"),
                 world_.MakeConstant("number"))));
  // Type correctness (rho_1): 33 is a number.
  EXPECT_TRUE(kb_.database().Contains(Atom::Member(
      world_.MakeConstant("33"), world_.MakeConstant("number"))));
}

TEST_F(KbTest, FunctViolationIsReported) {
  ASSERT_TRUE(kb_.Load("person[age {0:1} *=> number]. bob : person. "
                       "bob[age -> 33]. bob[age -> 44].").ok());
  Result<ConsistencyReport> report = kb_.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->consistent);
  ASSERT_EQ(report->funct_violations.size(), 1u);
  EXPECT_NE(report->funct_violations[0].find("bob"), std::string::npos);
}

TEST_F(KbTest, FunctMergesLabeledNulls) {
  ASSERT_TRUE(kb_.Load("person[boss {1:1} *=> person]. ann : person.").ok());
  SaturateOptions options;
  options.mandatory_completion_rounds = 3;
  Result<ConsistencyReport> report = kb_.Saturate(options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  // ann got an invented boss; adding a concrete one must merge, not clash.
  ASSERT_TRUE(kb_.Load("ann[boss -> bea]. bea : person.").ok());
  report = kb_.Saturate(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->consistent);
  // Exactly one boss value remains for ann, and it is the constant.
  int ann_boss_values = 0;
  for (const Atom& fact : kb_.database().facts()) {
    if (fact.predicate() == pfl::kData &&
        fact.arg(0) == world_.MakeConstant("ann") &&
        fact.arg(1) == world_.MakeConstant("boss")) {
      ++ann_boss_values;
      EXPECT_EQ(fact.arg(2), world_.MakeConstant("bea"));
    }
  }
  EXPECT_EQ(ann_boss_values, 1);
}

TEST_F(KbTest, UnsatisfiedMandatoryReportedWithoutCompletion) {
  ASSERT_TRUE(kb_.Load("person[name {1:*} *=> string]. ann : person.").ok());
  Result<ConsistencyReport> report = kb_.Saturate();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->consistent);
  // mandatory(name, person) itself and mandatory(name, ann) via rho_10.
  EXPECT_EQ(report->unsatisfied_mandatory.size(), 2u);
}

TEST_F(KbTest, MandatoryCompletionInventsValues) {
  ASSERT_TRUE(kb_.Load("person[name {1:*} *=> string]. ann : person.").ok());
  SaturateOptions options;
  options.mandatory_completion_rounds = 5;
  Result<ConsistencyReport> report = kb_.Saturate(options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->unsatisfied_mandatory.empty());
  // The invented name is a member of string (rho_1).
  bool found = false;
  for (const Atom& fact : kb_.database().facts()) {
    if (fact.predicate() == pfl::kMember && fact.arg(0).IsNull() &&
        fact.arg(1) == world_.MakeConstant("string")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KbTest, AnswerAutoSaturates) {
  ASSERT_TRUE(kb_.Load(kUniversity).ok());
  Result<std::vector<std::vector<Term>>> answers =
      kb_.Answer("q(X) :- X : person.");
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 2u);  // john, mary
  EXPECT_TRUE(kb_.saturated());
}

TEST_F(KbTest, NonGroundFactRejected) {
  World world;
  KnowledgeBase kb(world);
  Term v = world.MakeVariable("X");
  Status status = kb.AddFact(Atom::Member(v, world.MakeConstant("c")));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(KbTest, GoalsAndRulesAreCollected) {
  ASSERT_TRUE(kb_.Load("john : student. q(X) :- X : student. "
                       "?- X : student.").ok());
  EXPECT_EQ(kb_.rules().size(), 1u);
  EXPECT_EQ(kb_.goals().size(), 1u);
  Result<std::vector<std::vector<Term>>> answers = kb_.Answer(kb_.goals()[0]);
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

TEST(KbDumpTest, RoundTripsThroughLoad) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("freshman :: student. john : freshman. "
                      "john[age -> 33]. person[name {1:*} *=> string]. "
                      "person[age {0:1} *=> number].").ok());
  ASSERT_TRUE(kb.Saturate().ok());
  std::string dump = kb.DumpAsProgram();

  World world2;
  KnowledgeBase copy(world2);
  ASSERT_TRUE(copy.Load(dump).ok()) << dump;
  EXPECT_EQ(copy.size(), kb.size());
  // Saturation is a no-op on a saturated dump.
  uint32_t before = copy.size();
  ASSERT_TRUE(copy.Saturate().ok());
  EXPECT_EQ(copy.size(), before);
}

TEST(KbDumpTest, NullsBecomeLoadableConstants) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("person[name {1:*} *=> string]. ann : person.").ok());
  SaturateOptions options;
  options.mandatory_completion_rounds = 4;
  ASSERT_TRUE(kb.Saturate(options).ok());
  std::string dump = kb.DumpAsProgram();
  EXPECT_NE(dump.find("null_"), std::string::npos);

  World world2;
  KnowledgeBase copy(world2);
  ASSERT_TRUE(copy.Load(dump).ok()) << dump;
  EXPECT_EQ(copy.size(), kb.size());
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

TEST(KbRulesTest, UserRulesMaterialize) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("ann[parent -> bob]. bob[parent -> cid].").ok());
  ConjunctiveQuery rule =
      *ParseQuery(world, "grandparent(X, Z) :- data(X, parent, Y), "
                         "data(Y, parent, Z).");
  ASSERT_TRUE(kb.DefineRule(rule).ok());
  Result<std::vector<std::vector<Term>>> answers =
      kb.Answer(*ParseQuery(world, "q(X, Z) :- grandparent(X, Z)."));
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  ASSERT_EQ(answers->size(), 1u);
  EXPECT_EQ(world.NameOf((*answers)[0][0]), "ann");
  EXPECT_EQ(world.NameOf((*answers)[0][1]), "cid");
}

TEST(KbRulesTest, RecursiveRulesReachFixpoint) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("a[parent -> b]. b[parent -> c]. c[parent -> d].").ok());
  ASSERT_TRUE(kb.DefineRule(*ParseQuery(
      world, "ancestor(X, Y) :- data(X, parent, Y).")).ok());
  ASSERT_TRUE(kb.DefineRule(*ParseQuery(
      world, "ancestor(X, Z) :- ancestor(X, Y), ancestor(Y, Z).")).ok());
  Result<std::vector<std::vector<Term>>> answers =
      kb.Answer(*ParseQuery(world, "q(X, Y) :- ancestor(X, Y)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 6u);  // all ordered pairs along the chain
}

TEST(KbRulesTest, RulesInteractWithSigmaFL) {
  World world;
  KnowledgeBase kb(world);
  // A rule whose body uses Sigma_FL-derived facts, and whose conclusions
  // feed back into Sigma_FL (classifying objects into a class that then
  // inherits a signature).
  ASSERT_TRUE(kb.Load("adult :: person. person[name {1:*} *=> string]. "
                      "ann[age -> 21]. 21 : adultAge.").ok());
  ASSERT_TRUE(kb.DefineRule(*ParseQuery(
      world, "member(X, adult) :- data(X, age, V), member(V, adultAge)."))
                  .ok());
  ASSERT_TRUE(kb.Saturate().ok());
  // ann became an adult, hence a person (rho_3), hence name is mandatory
  // for her (rho_10).
  EXPECT_TRUE(kb.database().Contains(Atom::Member(
      world.MakeConstant("ann"), world.MakeConstant("person"))));
  EXPECT_TRUE(kb.database().Contains(Atom::Mandatory(
      world.MakeConstant("name"), world.MakeConstant("ann"))));
}

TEST(KbRulesTest, MaterializeLoadedRules) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load("ann : student. student :: person. "
                      "named(X) :- X : person.").ok());
  ASSERT_TRUE(kb.MaterializeLoadedRules().ok());
  Result<std::vector<std::vector<Term>>> answers =
      kb.Answer(*ParseQuery(world, "q(X) :- named(X)."));
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST(KbRulesTest, ArityConflictRejected) {
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.DefineRule(*ParseQuery(
      world, "p(X) :- member(X, c).")).ok());
  // p/2 now conflicts with p/1.
  Status status = kb.DefineRule(*ParseQuery(
      world, "p(X, Y) :- data(X, a, Y)."));
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace floq
