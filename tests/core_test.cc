// Tests for Sigma_FL-core computation (minimization + variable folding).

#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/minimize.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(CoreTest, FoldsParallelVariables) {
  World world;
  // Classical core: member(X, C) and member(X, D) fold into one atom.
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), member(X, D).");
  CoreStats stats;
  Result<ConjunctiveQuery> core = ComputeCore(world, q, {}, &stats);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 1);
  EXPECT_TRUE(*CheckEquivalence(world, q, *core));
}

TEST(CoreTest, EgdEnablesAFoldRemovalCannotReach) {
  World world;
  // Neither data atom nor either member atom is removable on its own
  // (each value variable carries its own membership). But under
  // funct(a, o) the chase merges V and W, so the fold W -> V is
  // equivalence-preserving — and it unlocks further shrinking.
  ConjunctiveQuery q =
      Q(world, "q() :- data(o, a, V), data(o, a, W), member(V, c), "
               "member(W, d), funct(a, o).");
  MinimizeStats m;
  Result<ConjunctiveQuery> only_removal = MinimizeQuery(world, q, {}, &m);
  ASSERT_TRUE(only_removal.ok());
  EXPECT_EQ(only_removal->size(), 5);  // removal alone is stuck

  CoreStats stats;
  Result<ConjunctiveQuery> core = ComputeCore(world, q, {}, &stats);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 4);  // one data atom, both members, funct
  EXPECT_GE(stats.variables_folded, 1);
  EXPECT_TRUE(*CheckEquivalence(world, q, *core));
}

TEST(CoreTest, HeadVariablesAreNeverFolded) {
  World world;
  // X and Y are both in the head: they must stay distinct even though
  // folding them would yield an equivalent-looking diagonal body.
  ConjunctiveQuery q = Q(world, "q(X, Y) :- data(O, A, X), data(O, A, Y).");
  Result<ConjunctiveQuery> core = ComputeCore(world, q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->head()[0], world.MakeVariable("X"));
  EXPECT_EQ(core->head()[1], world.MakeVariable("Y"));
  EXPECT_EQ(core->size(), 2);
}

TEST(CoreTest, CombinesRemovalAndFolding) {
  World world;
  // member(O, D) is removable (rho_3); afterwards E folds onto C.
  ConjunctiveQuery q =
      Q(world, "q(O) :- member(O, C), sub(C, D), member(O, D), "
               "member(O, E).");
  CoreStats stats;
  Result<ConjunctiveQuery> core = ComputeCore(world, q, {}, &stats);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 2);  // member(O, C), sub(C, D)
  EXPECT_TRUE(*CheckEquivalence(world, q, *core));
}

TEST(CoreTest, MinimalQueryIsFixpoint) {
  World world;
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), data(X, A, V).");
  CoreStats stats;
  Result<ConjunctiveQuery> core = ComputeCore(world, q, {}, &stats);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 2);
  EXPECT_EQ(stats.atoms_removed, 0);
  EXPECT_EQ(stats.variables_folded, 0);
  // Idempotent.
  Result<ConjunctiveQuery> again = ComputeCore(world, *core);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, *core);
}

TEST(CoreTest, SigmaAwareFoldBeyondClassicalCore) {
  World world;
  // Under funct(a, o), the two values V and W coincide in every legal
  // database, so the core folds W onto V — a fold the classical core
  // would reject.
  ConjunctiveQuery q =
      Q(world, "q() :- funct(a, o), data(o, a, V), data(o, a, W), "
               "member(V, c).");
  Result<ConjunctiveQuery> core = ComputeCore(world, q);
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core->size(), 3);  // funct, one data, member
  EXPECT_TRUE(*CheckEquivalence(world, q, *core));
}

}  // namespace
}  // namespace floq
