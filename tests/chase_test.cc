#include <gtest/gtest.h>

#include "chase/chase.h"
#include "chase/sigma_fl.h"
#include "chase/term_union_find.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// ---- Sigma_FL catalog -----------------------------------------------------

TEST(SigmaFLTest, CatalogShape) {
  World world;
  SigmaFL sigma = MakeSigmaFL(world);
  EXPECT_EQ(sigma.tgds.size(), 10u);
  EXPECT_EQ(sigma.egd.body.size(), 3u);
  EXPECT_EQ(sigma.existential.body.predicate(), pfl::kMandatory);
  // Every TGD is range-restricted: head variables occur in the body.
  for (const SigmaTgd& tgd : sigma.tgds) {
    for (Term head_term : tgd.rule.head) {
      bool found = false;
      for (const Atom& atom : tgd.rule.body) {
        for (Term t : atom) found |= t == head_term;
      }
      EXPECT_TRUE(found) << "rho_" << int(tgd.id);
    }
  }
}

TEST(SigmaFLTest, DatalogFragmentHasTenRules) {
  World world;
  EXPECT_EQ(SigmaFLDatalogRules(world).size(), 10u);
}

// ---- TermUnionFind ---------------------------------------------------------

TEST(TermUnionFindTest, ConstantBeatsNullBeatsVariable) {
  World world;
  Term c = world.MakeConstant("c");
  Term n = world.MakeFreshNull();
  Term v = world.MakeVariable("V");
  TermUnionFind uf;
  ASSERT_TRUE(uf.Merge(v, n, world).ok());
  EXPECT_EQ(uf.Find(v), n);
  ASSERT_TRUE(uf.Merge(n, c, world).ok());
  EXPECT_EQ(uf.Find(v), c);
  EXPECT_EQ(uf.Find(n), c);
  EXPECT_EQ(uf.merge_count(), 2u);
}

TEST(TermUnionFindTest, DistinctConstantsFail) {
  World world;
  TermUnionFind uf;
  Status status =
      uf.Merge(world.MakeConstant("a"), world.MakeConstant("b"), world);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(TermUnionFindTest, LexicographicWithinVariables) {
  World world;
  Term v1 = world.MakeVariable("V1");
  Term v2 = world.MakeVariable("V2");
  TermUnionFind uf;
  ASSERT_TRUE(uf.Merge(v2, v1, world).ok());
  EXPECT_EQ(uf.Find(v2), v1);  // V1 lexicographically precedes V2
}

// ---- Phase A: the terminating Sigma_FL^- chase -----------------------------

TEST(ChaseLevelZeroTest, SubclassTransitivity) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- sub(A, B), sub(B, C).");
  ChaseResult chase = ChaseLevelZero(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  Term a = world.MakeVariable("A");
  Term c = world.MakeVariable("C");
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Sub(a, c)));
  EXPECT_EQ(chase.max_level(), 0);
  // Provenance: the derived conjunct cites rho_2.
  uint32_t id = chase.conjuncts().IdOf(Atom::Sub(a, c));
  EXPECT_EQ(chase.meta(id).rule, kRho2);
  EXPECT_EQ(chase.meta(id).parents.size(), 2u);
}

TEST(ChaseLevelZeroTest, TypeInheritanceToMembers) {
  World world;
  ConjunctiveQuery q =
      Q(world, "q() :- member(O, C), type(C, A, T).");
  ChaseResult chase = ChaseLevelZero(world, q);
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Type(world.MakeVariable("O"), world.MakeVariable("A"),
                 world.MakeVariable("T"))));
}

TEST(ChaseLevelZeroTest, TypeCorrectnessRho1) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- type(O, A, T), data(O, A, V).");
  ChaseResult chase = ChaseLevelZero(world, q);
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Member(world.MakeVariable("V"), world.MakeVariable("T"))));
}

TEST(ChaseLevelZeroTest, SupertypingRho8) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- type(C, A, T1), sub(T1, T).");
  ChaseResult chase = ChaseLevelZero(world, q);
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Type(world.MakeVariable("C"), world.MakeVariable("A"),
                 world.MakeVariable("T"))));
}

TEST(ChaseLevelZeroTest, InheritanceOfConstraintsToSubclassesAndMembers) {
  World world;
  ConjunctiveQuery q = Q(world,
                         "q() :- sub(C, D), mandatory(A, D), funct(B, D), "
                         "member(O, C).");
  ChaseResult chase = ChaseLevelZero(world, q);
  Term a = world.MakeVariable("A");
  Term b = world.MakeVariable("B");
  Term c = world.MakeVariable("C");
  Term o = world.MakeVariable("O");
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a, c)));  // rho_9
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Funct(b, c)));      // rho_11
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a, o)));  // rho_10
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Funct(b, o)));      // rho_12
  EXPECT_EQ(chase.max_level(), 0);
}

TEST(ChaseLevelZeroTest, LevelZeroDoesNotFireRho5) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, O).");
  ChaseResult chase = ChaseLevelZero(world, q);
  // rho_5 is beyond the cap: outcome is level-capped and no data conjunct.
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kLevelCapped);
  EXPECT_TRUE(chase.conjuncts().WithPredicate(pfl::kData).empty());
  EXPECT_EQ(chase.size(), 1u);
}

// ---- EGD (rho_4) ------------------------------------------------------------

TEST(ChaseEgdTest, MergesValuesOfFunctionalAttribute) {
  World world;
  ConjunctiveQuery q = Q(world,
                         "q(V, W) :- data(O, A, V), data(O, A, W), "
                         "funct(A, O).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  // V and W merged; V precedes W lexicographically, so V survives.
  Term v = world.MakeVariable("V");
  ASSERT_EQ(chase.head().size(), 2u);
  EXPECT_EQ(chase.head()[0], v);
  EXPECT_EQ(chase.head()[1], v);
  // The two data conjuncts collapsed into one.
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 1u);
  EXPECT_GE(chase.stats().egd_merges, 1u);
}

TEST(ChaseEgdTest, ConstantWinsOverVariable) {
  World world;
  ConjunctiveQuery q = Q(world,
                         "q(V) :- data(O, A, V), data(O, A, thirty), "
                         "funct(A, O).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.head()[0], world.MakeConstant("thirty"));
}

TEST(ChaseEgdTest, TwoDistinctConstantsFailTheChase) {
  World world;
  ConjunctiveQuery q = Q(world,
                         "q() :- data(O, A, one), data(O, A, two), "
                         "funct(A, O).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kFailed);
  EXPECT_TRUE(chase.failed());
}

TEST(ChaseEgdTest, EgdTriggeredThroughInheritance) {
  // Example 1 of the paper: funct is declared on the class; rho_12 carries
  // it to the member, then rho_4 merges.
  World world;
  ConjunctiveQuery q = Q(world,
                         "q(V1, V2) :- data(O, A, V1), data(O, A, V2), "
                         "funct(A, C), member(O, C).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  Term v1 = world.MakeVariable("V1");
  EXPECT_EQ(chase.head()[0], v1);
  EXPECT_EQ(chase.head()[1], v1);
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Funct(world.MakeVariable("A"), world.MakeVariable("O"))));
}

TEST(ChaseEgdTest, CascadingMergesAcrossAttributes) {
  // Merging V with W makes data(V, B, X) and data(W, B, Y) collide under
  // funct(B, V): X and Y must merge too.
  World world;
  ConjunctiveQuery q = Q(world,
                         "q(X, Y) :- data(O, A, V), data(O, A, W), "
                         "funct(A, O), data(V, B, X), data(W, B, Y), "
                         "funct(B, V).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.head()[0], chase.head()[1]);
}

// ---- Phase B: rho_5 chains ---------------------------------------------------

TEST(ChaseRho5Test, MandatoryInventsValue) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, O).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 5});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  const std::vector<uint32_t> data =
      chase.conjuncts().WithPredicate(pfl::kData).ToVector();
  ASSERT_EQ(data.size(), 1u);
  const Atom& atom = chase.conjunct(data[0]);
  EXPECT_EQ(atom.arg(0), world.MakeVariable("O"));
  EXPECT_EQ(atom.arg(1), world.MakeVariable("A"));
  EXPECT_TRUE(atom.arg(2).IsNull());
  EXPECT_EQ(chase.LevelOf(data[0]), 1);
  EXPECT_EQ(chase.stats().fresh_nulls, 1u);
}

TEST(ChaseRho5Test, ExistingDataBlocksRho5) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, O), data(O, A, V).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 5});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 1u);
  EXPECT_EQ(chase.stats().fresh_nulls, 0u);
}

TEST(ChaseRho5Test, FiniteCascadeTerminates) {
  // mandatory(a, o) with type t that has no further mandatory attributes:
  // one null, then member/type propagation, then fixpoint.
  World world;
  ConjunctiveQuery q =
      Q(world, "q() :- mandatory(A, O), type(O, A, T).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 50});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  // data(O,A,n0) at level 1, member(n0,T) at level 2.
  Term t = world.MakeVariable("T");
  bool found_member_null = false;
  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kMember)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0).IsNull() && atom.arg(1) == t) {
      found_member_null = true;
      EXPECT_EQ(chase.LevelOf(id), 2);
    }
  }
  EXPECT_TRUE(found_member_null);
}

TEST(ChaseRho5Test, InfiniteChainIsLevelCapped) {
  // Example 2 shape: a self-loop type with a mandatory attribute produces
  // an infinite chain; the cap must stop it.
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 12});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kLevelCapped);
  EXPECT_EQ(chase.max_level(), 12);
  // The cycle rho_5 -> rho_1 -> {rho_6, rho_10} advances three levels per
  // fresh null under Definition 3's level rule (rho_6 and rho_10 both hang
  // off the member conjunct), so nulls appear at levels 1, 4, 7, 10.
  EXPECT_EQ(chase.stats().fresh_nulls, 4u);
}

TEST(ChaseRho5Test, CycleConjunctsMatchPaperExample2) {
  World world;
  ConjunctiveQuery q =
      Q(world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 8});
  Term a = world.MakeVariable("A");
  Term t = world.MakeVariable("T");
  Term u = world.MakeVariable("U");

  // Locate the first fresh null v1 = value of data(T, A, v1).
  Term v1, v2;
  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0) == t && atom.arg(1) == a && atom.arg(2).IsNull()) {
      v1 = atom.arg(2);
      EXPECT_EQ(chase.LevelOf(id), 1);
    }
  }
  ASSERT_TRUE(v1.valid());

  // The paper's chain (Example 2): member(v1,T), type(v1,A,T),
  // mandatory(A,v1), then data(v1,A,v2).
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(v1, t)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Type(v1, a, t)));
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Mandatory(a, v1)));
  EXPECT_EQ(chase.LevelOf(chase.conjuncts().IdOf(Atom::Member(v1, t))), 2);
  EXPECT_EQ(chase.LevelOf(chase.conjuncts().IdOf(Atom::Type(v1, a, t))), 3);
  EXPECT_EQ(chase.LevelOf(chase.conjuncts().IdOf(Atom::Mandatory(a, v1))), 3);

  for (uint32_t id : chase.conjuncts().WithPredicate(pfl::kData)) {
    const Atom& atom = chase.conjunct(id);
    if (atom.arg(0) == v1) {
      v2 = atom.arg(2);
      EXPECT_EQ(chase.LevelOf(id), 4);
    }
  }
  ASSERT_TRUE(v2.valid());
  EXPECT_TRUE(v2.IsNull());

  // The rho_3 branch from the paper's Figure 1: member(v1, U).
  EXPECT_TRUE(chase.conjuncts().Contains(Atom::Member(v1, u)));
}

TEST(ChaseRho5Test, MergedChainStillRestricted) {
  // funct + mandatory on the same attribute: the invented value merges
  // with the present one, chain does not grow.
  World world;
  ConjunctiveQuery q = Q(world,
                         "q(V) :- mandatory(A, O), funct(A, O), "
                         "data(O, A, V).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 10});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 1u);
}

// ---- budgets and caps ---------------------------------------------------------

TEST(ChaseBudgetTest, AtomBudgetStopsTheChase) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseOptions options;
  options.max_level = 1000000;
  options.max_atoms = 20;
  ChaseResult chase = ChaseQuery(world, q, options);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kBudgetExceeded);
  EXPECT_LE(chase.size(), 21u);
}

TEST(ChaseBudgetTest, CountUpToLevel) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 8});
  EXPECT_EQ(chase.CountUpToLevel(0), 2u);
  EXPECT_GT(chase.CountUpToLevel(4), chase.CountUpToLevel(1));
  EXPECT_EQ(chase.CountUpToLevel(chase.max_level()), chase.size());
}

// ---- chase graph ---------------------------------------------------------------

TEST(ChaseGraphTest, ArcsFollowProvenance) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- sub(A, B), sub(B, C).");
  ChaseResult chase = ChaseLevelZero(world, q);
  std::vector<ChaseArc> arcs = chase.Arcs();
  ASSERT_EQ(arcs.size(), 2u);
  uint32_t derived = chase.conjuncts().IdOf(
      Atom::Sub(world.MakeVariable("A"), world.MakeVariable("C")));
  for (const ChaseArc& arc : arcs) {
    EXPECT_EQ(arc.to, derived);
    EXPECT_EQ(arc.rule, kRho2);
    EXPECT_FALSE(arc.cross);
  }
}

TEST(ChaseGraphTest, PrimaryArcClassification) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 6});
  int primary = 0, secondary = 0;
  for (const ChaseArc& arc : chase.Arcs()) {
    if (chase.IsPrimary(arc)) {
      ++primary;
    } else {
      ++secondary;
    }
  }
  EXPECT_GT(primary, 0);
  EXPECT_GT(secondary, 0);  // e.g. level-0 type conjunct into level-2 member
}

TEST(ChaseGraphTest, LocalityLemma5) {
  // Every secondary (non-primary) generation arc into a conjunct at level
  // >= 1 starts at level 0 or exactly two levels back.
  World world;
  ConjunctiveQuery q =
      Q(world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 16});
  for (const ChaseArc& arc : chase.Arcs()) {
    if (arc.cross) continue;
    int to_level = chase.LevelOf(arc.to);
    if (to_level < 1) continue;
    if (chase.IsPrimary(arc)) continue;
    int from_level = chase.LevelOf(arc.from);
    EXPECT_TRUE(from_level == 0 || from_level == to_level - 2)
        << "secondary arc from level " << from_level << " to " << to_level;
  }
}

TEST(ChaseGraphTest, CrossArcsRecordedWhenRequested) {
  World world;
  // sub(A,B), sub(B,C), sub(A,C): rho_2 can re-derive the present sub(A,C).
  ConjunctiveQuery q = Q(world, "q() :- sub(A, B), sub(B, C), sub(A, C).");
  ChaseOptions options;
  options.record_cross_arcs = true;
  ChaseResult chase = ChaseQuery(world, q, options);
  bool found_cross = false;
  for (const ChaseArc& arc : chase.Arcs()) found_cross |= arc.cross;
  EXPECT_TRUE(found_cross);
}

TEST(ChaseGraphTest, DebugStringMentionsRules) {
  World world;
  ConjunctiveQuery q = Q(world, "q() :- sub(A, B), sub(B, C).");
  ChaseResult chase = ChaseLevelZero(world, q);
  std::string dump = chase.DebugString(world);
  EXPECT_NE(dump.find("rho_2"), std::string::npos);
  EXPECT_NE(dump.find("sub(A, C)"), std::string::npos);
}

// ---- head transformation ---------------------------------------------------------

TEST(ChaseHeadTest, HeadSurvivesWhenNoEgd) {
  World world;
  ConjunctiveQuery q = Q(world, "q(A, B) :- sub(A, B).");
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.head(),
            (std::vector<Term>{world.MakeVariable("A"),
                               world.MakeVariable("B")}));
}

TEST(ChaseHeadTest, EmptyBodyQueryYieldsEmptyCompletedChase) {
  World world;
  ConjunctiveQuery q(std::string("q"), {}, {});
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.size(), 0u);
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

// ---- oblivious vs restricted rho_5 (ChaseOptions::restricted_rho5) ---------

TEST(ObliviousChaseTest, ExistingDataDoesNotBlock) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q() :- mandatory(A, O), data(O, A, V).");
  ASSERT_TRUE(q.ok());
  ChaseOptions oblivious;
  oblivious.max_level = 5;
  oblivious.restricted_rho5 = false;
  ChaseResult chase = ChaseQuery(world, *q, oblivious);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  // The restricted chase keeps one data conjunct; the oblivious one
  // invents a second value.
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 2u);
  EXPECT_EQ(chase.stats().fresh_nulls, 1u);
}

TEST(ObliviousChaseTest, FiresOncePerPair) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(world, "q() :- mandatory(A, O).");
  ASSERT_TRUE(q.ok());
  ChaseOptions oblivious;
  oblivious.max_level = 50;
  oblivious.restricted_rho5 = false;
  ChaseResult chase = ChaseQuery(world, *q, oblivious);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.stats().fresh_nulls, 1u);
}

TEST(ObliviousChaseTest, IsASupersetOfTheRestrictedChase) {
  const char* text =
      "q() :- mandatory(A, T), type(T, A, T), data(T, A, w).";
  World world_r, world_o;
  ConjunctiveQuery qr = *ParseQuery(world_r, text);
  ConjunctiveQuery qo = *ParseQuery(world_o, text);
  ChaseOptions restricted;
  restricted.max_level = 8;
  ChaseOptions oblivious = restricted;
  oblivious.restricted_rho5 = false;
  ChaseResult r = ChaseQuery(world_r, qr, restricted);
  ChaseResult o = ChaseQuery(world_o, qo, oblivious);
  // Every restricted conjunct appears (up to null renaming) obliviously;
  // here the constant skeleton suffices: compare per-predicate counts.
  EXPECT_GE(o.conjuncts().WithPredicate(pfl::kData).size(),
            r.conjuncts().WithPredicate(pfl::kData).size());
  EXPECT_GT(o.stats().fresh_nulls, r.stats().fresh_nulls);
}

}  // namespace
}  // namespace floq
