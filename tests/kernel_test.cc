// Tests for the compiled homomorphism kernel (DESIGN.md §9): the
// BindingTrail, the galloping posting-list intersection, pattern
// compilation, and — the load-bearing part — differential properties
// asserting that the kernel, with and without list intersection, and the
// legacy map-based matcher enumerate *identical* match sets over the
// src/gen corpus and produce identical verdicts through the batch
// ContainmentEngine in sequential and parallel modes.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "containment/containment.h"
#include "containment/engine.h"
#include "datalog/binding_trail.h"
#include "datalog/compiled_pattern.h"
#include "datalog/match.h"
#include "datalog/posting_intersect.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/rng.h"

namespace floq {
namespace {

// ---- BindingTrail ----------------------------------------------------------

TEST(BindingTrailTest, BindMarkUndo) {
  BindingTrail trail(4);
  EXPECT_FALSE(trail.Bound(0));
  trail.Bind(0, Term::Constant(7));
  size_t mark = trail.Mark();
  trail.Bind(2, Term::Variable(1));
  trail.Bind(3, Term::Null(5));
  EXPECT_TRUE(trail.Bound(2));
  EXPECT_EQ(trail.Get(3), Term::Null(5));
  EXPECT_EQ(trail.trail().size(), 3u);

  trail.UndoTo(mark);
  EXPECT_TRUE(trail.Bound(0));
  EXPECT_EQ(trail.Get(0), Term::Constant(7));
  EXPECT_FALSE(trail.Bound(2));
  EXPECT_FALSE(trail.Bound(3));

  // Slots freed by the undo are bindable again.
  trail.Bind(2, Term::Constant(9));
  EXPECT_EQ(trail.Get(2), Term::Constant(9));
  trail.UndoTo(0);
  EXPECT_FALSE(trail.Bound(0));
  EXPECT_EQ(trail.Mark(), 0u);
}

// ---- galloping search and k-way intersection --------------------------------

std::vector<uint32_t> RandomSortedIds(Rng& rng, size_t len, uint32_t universe) {
  std::set<uint32_t> ids;
  while (ids.size() < len) ids.insert(uint32_t(rng.Below(universe)));
  return {ids.begin(), ids.end()};
}

TEST(GallopTest, AgreesWithLowerBound) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint32_t> list =
        RandomSortedIds(rng, 1 + rng.Below(200), 1000);
    for (int probe = 0; probe < 40; ++probe) {
      uint32_t target = uint32_t(rng.Below(1100));
      size_t begin = rng.Below(list.size() + 1);
      size_t expected =
          size_t(std::lower_bound(list.begin() + begin, list.end(), target) -
                 list.begin());
      EXPECT_EQ(GallopToLowerBound(list, begin, target), expected)
          << "begin=" << begin << " target=" << target;
    }
  }
}

TEST(IntersectTest, AgreesWithSetIntersection) {
  Rng rng(7);
  for (int trial = 0; trial < 60; ++trial) {
    size_t k = 2 + rng.Below(4);
    uint32_t universe = 50 + uint32_t(rng.Below(500));
    std::vector<std::vector<uint32_t>> lists;
    for (size_t i = 0; i < k; ++i) {
      lists.push_back(RandomSortedIds(rng, 1 + rng.Below(universe / 2),
                                      universe));
    }
    std::vector<uint32_t> expected = lists[0];
    for (size_t i = 1; i < k; ++i) {
      std::vector<uint32_t> next;
      std::set_intersection(expected.begin(), expected.end(),
                            lists[i].begin(), lists[i].end(),
                            std::back_inserter(next));
      expected = std::move(next);
    }

    std::vector<PostingView> views(lists.begin(), lists.end());
    std::vector<uint32_t> actual;
    IntersectPostingLists(views, actual);
    EXPECT_EQ(actual, expected) << "k=" << k << " trial=" << trial;
  }
}

TEST(IntersectTest, EmptyAndDisjointLists) {
  std::vector<uint32_t> a = {1, 3, 5};
  std::vector<uint32_t> b;
  std::vector<uint32_t> out = {99};
  std::vector<PostingView> lists = {PostingView(a), PostingView(b)};
  IntersectPostingLists(lists, out);
  EXPECT_TRUE(out.empty());

  std::vector<uint32_t> c = {2, 4, 6};
  lists = {PostingView(a), PostingView(c)};
  IntersectPostingLists(lists, out);
  EXPECT_TRUE(out.empty());
}

// ---- pattern compilation ----------------------------------------------------

TEST(CompiledPatternTest, ClassifiesArgumentPositions) {
  World world;
  FactIndex index;
  auto facts = ParseAtoms(world, "data(john, age, v33), member(john, person)");
  ASSERT_TRUE(facts.ok());
  for (const Atom& atom : *facts) index.Insert(atom);

  // X is a first occurrence in atom 0 then a join in atom 1; Y repeats
  // within atom 0; `person` is a constant with a nonempty posting list.
  auto pattern = ParseAtoms(world, "data(X, Y, Y), member(X, person)");
  ASSERT_TRUE(pattern.ok());
  MatchStats stats;
  CompiledPattern compiled(*pattern, index, Substitution(), &stats);

  ASSERT_EQ(compiled.atoms().size(), 2u);
  EXPECT_EQ(compiled.num_slots(), 2);  // X, Y
  const CompiledAtom& data = compiled.atoms()[0];
  EXPECT_EQ(data.args[0].kind, CompiledArg::Kind::kSlot);
  EXPECT_FALSE(data.args[0].repeated_in_atom);
  EXPECT_EQ(data.args[1].kind, CompiledArg::Kind::kSlot);
  EXPECT_FALSE(data.args[1].repeated_in_atom);
  EXPECT_EQ(data.args[2].kind, CompiledArg::Kind::kSlot);
  EXPECT_TRUE(data.args[2].repeated_in_atom);
  EXPECT_EQ(data.args[1].slot, data.args[2].slot);
  EXPECT_EQ(data.num_const_lists, 0);
  EXPECT_EQ(data.num_slot_positions, 3);

  const CompiledAtom& member = compiled.atoms()[1];
  EXPECT_EQ(member.args[0].kind, CompiledArg::Kind::kSlot);
  EXPECT_EQ(member.args[0].slot, data.args[0].slot);  // same X
  EXPECT_EQ(member.args[1].kind, CompiledArg::Kind::kConstant);
  EXPECT_EQ(member.args[1].value, world.MakeConstant("person"));
  // The constant position's posting list was resolved at compile time.
  EXPECT_EQ(member.num_const_lists, 1);
  EXPECT_EQ(member.const_lists[0].size(), 1u);
  // static_best is the constant list (views have no identity, so the
  // compiled atom records which input won).
  EXPECT_EQ(member.static_best_const_index, 0);
  EXPECT_EQ(member.static_best.size(), member.const_lists[0].size());
  EXPECT_FALSE(compiled.impossible());
  EXPECT_EQ(stats.index_probes, 1u);
}

TEST(CompiledPatternTest, EmptyConstantListShortCircuitsCompilation) {
  World world;
  FactIndex index;
  auto facts = ParseAtoms(world, "data(john, age, v33), member(john, person)");
  ASSERT_TRUE(facts.ok());
  for (const Atom& atom : *facts) index.Insert(atom);

  // Nobody is a member of class `john`: the empty posting list proves the
  // conjunction unmatchable and compilation stops there, like the legacy
  // matcher's first-empty-candidate-list bailout.
  auto pattern = ParseAtoms(world, "member(X, john), data(X, Y, Z)");
  ASSERT_TRUE(pattern.ok());
  MatchStats stats;
  CompiledPattern compiled(*pattern, index, Substitution(), &stats);
  EXPECT_TRUE(compiled.impossible());
  EXPECT_EQ(compiled.atoms().size(), 0u);  // stopped inside the first atom
  EXPECT_EQ(stats.index_probes, 1u);

  // And the kernel reports no matches without expanding a node.
  MatchStats search_stats;
  size_t matches = 0;
  MatchConjunction(
      *pattern, index, Substitution(),
      [&](const Substitution&) {
        ++matches;
        return true;
      },
      &search_stats);
  EXPECT_EQ(matches, 0u);
  EXPECT_EQ(search_stats.nodes_visited, 0u);
}

TEST(CompiledPatternTest, InitialBindingsBecomeConstants) {
  World world;
  FactIndex index;
  auto facts = ParseAtoms(world, "sub(a, b), sub(b, c)");
  ASSERT_TRUE(facts.ok());
  for (const Atom& atom : *facts) index.Insert(atom);

  auto pattern = ParseAtoms(world, "sub(X, Y)");
  ASSERT_TRUE(pattern.ok());
  Substitution initial;
  initial.Bind(world.MakeVariable("X"), world.MakeConstant("b"));
  CompiledPattern compiled(*pattern, index, initial, nullptr);

  EXPECT_EQ(compiled.num_slots(), 1);  // only Y remains free
  const CompiledAtom& sub = compiled.atoms()[0];
  EXPECT_EQ(sub.args[0].kind, CompiledArg::Kind::kConstant);
  EXPECT_EQ(sub.args[0].value, world.MakeConstant("b"));
  EXPECT_EQ(sub.args[1].kind, CompiledArg::Kind::kSlot);
  EXPECT_FALSE(compiled.impossible());
  // static_best is the resolved sub(b, _) list: exactly one fact.
  EXPECT_EQ(sub.static_best.size(), 1u);
  EXPECT_EQ(sub.static_best_const_index, 0);
}

// ---- differential property: identical match sets ----------------------------

// Canonical rendering of a match for set comparison: the (raw, raw) pairs
// of the substitution, sorted.
std::string CanonicalMatch(const Substitution& match) {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  for (const auto& [from, to] : match.entries()) {
    entries.emplace_back(from.raw(), to.raw());
  }
  std::sort(entries.begin(), entries.end());
  std::string out;
  for (const auto& [from, to] : entries) {
    out += std::to_string(from) + "->" + std::to_string(to) + ";";
  }
  return out;
}

std::set<std::string> AllMatches(std::span<const Atom> pattern,
                                 const FactIndex& index,
                                 const MatchOptions& options,
                                 MatchStats* stats = nullptr) {
  std::set<std::string> matches;
  MatchConjunction(
      pattern, index, Substitution(),
      [&](const Substitution& match) {
        matches.insert(CanonicalMatch(match));
        return true;
      },
      stats, options);
  return matches;
}

class KernelEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelEquivalenceProperty, SameMatchSetsOnGenCorpus) {
  const uint64_t seed = GetParam();
  World world;

  // Target: the level-0 chase of a random query (dense, join-heavy).
  gen::RandomQuerySpec target_spec;
  target_spec.seed = seed;
  target_spec.atoms = 10 + int(seed % 6);
  target_spec.variable_pool = 5 + int(seed % 3);
  target_spec.constant_pool = 3;
  target_spec.constant_probability = 0.25;
  target_spec.arity = 0;
  ConjunctiveQuery q1 =
      gen::MakeRandomQuery(world, target_spec, "target");
  ChaseResult chase = ChaseLevelZero(world, q1);
  ASSERT_TRUE(chase.conjuncts().PostingListsSorted());

  for (int probe_index = 0; probe_index < 4; ++probe_index) {
    gen::RandomQuerySpec probe_spec;
    probe_spec.seed = seed * 97 + uint64_t(probe_index);
    probe_spec.atoms = 3 + int((seed + uint64_t(probe_index)) % 4);
    probe_spec.variable_pool = 4;
    probe_spec.constant_pool = 3;
    probe_spec.constant_probability = 0.25;
    probe_spec.arity = 0;
    probe_spec.with_constraints = false;
    ConjunctiveQuery probe =
        gen::MakeRandomQuery(world, probe_spec, "probe").RenameApart(world);

    MatchOptions legacy;
    legacy.use_compiled_kernel = false;
    MatchOptions kernel;  // compiled + intersection (production defaults)
    MatchOptions kernel_no_intersect;
    kernel_no_intersect.use_list_intersection = false;

    std::set<std::string> expected =
        AllMatches(probe.body(), chase.conjuncts(), legacy);
    EXPECT_EQ(AllMatches(probe.body(), chase.conjuncts(), kernel), expected)
        << "kernel vs legacy, probe " << probe.ToString(world);
    EXPECT_EQ(
        AllMatches(probe.body(), chase.conjuncts(), kernel_no_intersect),
        expected)
        << "kernel (no intersection) vs legacy, probe "
        << probe.ToString(world);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelEquivalenceProperty,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

// The head-seeded search path (initial substitution non-empty) must agree
// too: full CheckContainment with kernel on vs off.
class KernelContainmentProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelContainmentProperty, SameVerdictsThroughCheckContainment) {
  const uint64_t seed = GetParam();
  World world;
  gen::RandomQuerySpec spec;
  spec.seed = seed;
  spec.atoms = 3 + int(seed % 4);
  spec.variable_pool = 4;
  spec.arity = 1;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(world, spec, "q1");
  spec.seed = seed + 1000;
  spec.atoms = 3 + int((seed + 1) % 4);
  ConjunctiveQuery q2 = gen::MakeRandomQuery(world, spec, "q2");

  ContainmentOptions with_kernel;
  ContainmentOptions without_kernel;
  without_kernel.match.use_compiled_kernel = false;

  for (const auto& [lhs, rhs] : {std::pair{&q1, &q2}, std::pair{&q2, &q1}}) {
    Result<ContainmentResult> fast =
        CheckContainment(world, *lhs, *rhs, with_kernel);
    Result<ContainmentResult> slow =
        CheckContainment(world, *lhs, *rhs, without_kernel);
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    ASSERT_TRUE(slow.ok()) << slow.status().ToString();
    EXPECT_EQ(fast->contained, slow->contained)
        << lhs->ToString(world) << " vs " << rhs->ToString(world);
    EXPECT_EQ(fast->hom_stats.matches_found > 0,
              slow->hom_stats.matches_found > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelContainmentProperty,
                         ::testing::Range(uint64_t(0), uint64_t(30)));

// ---- differential property: identical engine verdicts, jobs 1 and N ---------

TEST(KernelEngineEquivalence, SameMatrixAcrossKernelAndJobs) {
  struct Config {
    bool use_compiled_kernel;
    bool use_list_intersection;
    int jobs;
  };
  const Config configs[] = {
      {true, true, 1}, {true, true, 4}, {true, false, 1}, {false, false, 1},
      {false, false, 4},
  };

  std::vector<std::vector<uint8_t>> matrices;
  for (const Config& config : configs) {
    World world;
    BatchContainmentOptions options;
    options.containment.match.use_compiled_kernel = config.use_compiled_kernel;
    options.containment.match.use_list_intersection =
        config.use_list_intersection;
    options.jobs = config.jobs;
    ContainmentEngine engine(world, options);
    for (uint64_t seed = 0; seed < 10; ++seed) {
      gen::RandomQuerySpec spec;
      spec.seed = seed;
      spec.atoms = 3 + int(seed % 4);
      spec.variable_pool = 4;
      spec.arity = 1;
      auto id = engine.AddQuery(
          gen::MakeRandomQuery(world, spec, "q" + std::to_string(seed)));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
    }
    auto matrix = engine.CheckAll();
    ASSERT_TRUE(matrix.ok()) << matrix.status().ToString();
    std::vector<uint8_t> flat;
    for (const auto& row : *matrix) {
      for (const PairVerdict& verdict : row) {
        flat.push_back(verdict.contained ? 1 : 0);
      }
    }
    matrices.push_back(std::move(flat));
  }
  for (size_t i = 1; i < matrices.size(); ++i) {
    EXPECT_EQ(matrices[i], matrices[0]) << "config " << i;
  }
}

// ---- sortedness invariant the intersection relies on ------------------------

TEST(FactIndexInvariant, PostingListsSortedOnChasedCorpus) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    World world;
    gen::RandomQuerySpec spec;
    spec.seed = seed;
    spec.atoms = 8;
    spec.variable_pool = 5;
    spec.arity = 0;
    ConjunctiveQuery q = gen::MakeRandomQuery(world, spec, "q");
    ChaseResult chase = ChaseLevelZero(world, q);
    EXPECT_TRUE(chase.conjuncts().PostingListsSorted()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace floq
