#include <gtest/gtest.h>

#include "query/conjunctive_query.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

// ---- parsing ------------------------------------------------------------

TEST(QueryParserTest, ParsesPaperJoinableQuery) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(
      world, "q(A, B) :- type(T1, A, T2), sub(T2, T3), type(T3, B, _).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->name(), "q");
  EXPECT_EQ(q->arity(), 2);
  EXPECT_EQ(q->size(), 3);
  EXPECT_EQ(q->body()[0].predicate(), pfl::kType);
  EXPECT_EQ(q->body()[1].predicate(), pfl::kSub);
}

TEST(QueryParserTest, VariablesVsConstantsByCase) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q(X) :- member(X, student).");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->body()[0].arg(0).IsVariable());
  EXPECT_TRUE(q->body()[0].arg(1).IsConstant());
  EXPECT_EQ(world.NameOf(q->body()[0].arg(1)), "student");
}

TEST(QueryParserTest, AnonymousVariablesAreFreshEachTime) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q() :- data(_, _, _), data(_, _, _).");
  ASSERT_TRUE(q.ok());
  std::vector<Term> vars = q->Variables();
  EXPECT_EQ(vars.size(), 6u);  // all distinct
}

TEST(QueryParserTest, QuotedAndNumericConstants) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q(V) :- data(john, age, V), data(john, name, 'J S').");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(world.NameOf(q->body()[1].arg(2)), "J S");
  Result<ConjunctiveQuery> q2 = ParseQuery(world, "q() :- data(j, age, 33).");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(world.NameOf(q2->body()[0].arg(2)), "33");
  EXPECT_TRUE(q2->body()[0].arg(2).IsConstant());
}

TEST(QueryParserTest, CommentsAreSkipped) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(world,
                                          "% a comment\n"
                                          "q(X) :- % mid-rule comment\n"
                                          "  member(X, c).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(QueryParserTest, ZeroAryHeadAllowed) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(world, "q() :- sub(a, b).");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 0);
  // Headless form also allowed.
  Result<ConjunctiveQuery> q2 = ParseQuery(world, "q :- sub(a, b).");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->arity(), 0);
}

TEST(QueryParserTest, UserPredicatesRegisterOnFirstUse) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(world, "q(X, Y) :- edge(X, Y).");
  ASSERT_TRUE(q.ok());
  EXPECT_NE(world.predicates().Lookup("edge"), kInvalidPredicate);
}

TEST(QueryParserTest, ArityConflictIsError) {
  World world;
  ASSERT_TRUE(ParseQuery(world, "q(X) :- edge(X, X).").ok());
  Result<ConjunctiveQuery> bad = ParseQuery(world, "q(X) :- edge(X, X, X).");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(QueryParserTest, WrongPflArityIsError) {
  World world;
  EXPECT_FALSE(ParseQuery(world, "q(X) :- member(X).").ok());
  EXPECT_FALSE(ParseQuery(world, "q(X) :- data(X, X).").ok());
}

TEST(QueryParserTest, UnsafeHeadIsError) {
  World world;
  Result<ConjunctiveQuery> bad = ParseQuery(world, "q(Y) :- member(X, c).");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unsafe"), std::string::npos);
}

TEST(QueryParserTest, SyntaxErrorsReportPosition) {
  World world;
  Result<ConjunctiveQuery> bad = ParseQuery(world, "q(X) :- member(X c).");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("parse error at 1:"),
            std::string::npos);
}

TEST(QueryParserTest, MultipleRules) {
  World world;
  Result<std::vector<ConjunctiveQuery>> queries = ParseQueries(world,
                                                               "q(X) :- member(X, c).\n"
                                                               "r(Y) :- sub(Y, d).\n");
  ASSERT_TRUE(queries.ok());
  ASSERT_EQ(queries->size(), 2u);
  EXPECT_EQ((*queries)[0].name(), "q");
  EXPECT_EQ((*queries)[1].name(), "r");
}

TEST(QueryParserTest, ParseAtomsList) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseAtoms(world, "member(john, student), sub(student, person).");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ(atoms->size(), 2u);
  Result<std::vector<Atom>> empty = ParseAtoms(world, "  % nothing\n");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

// ---- ConjunctiveQuery utilities -------------------------------------------

TEST(ConjunctiveQueryTest, SizeIsBodyAtomCount) {
  World world;
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- member(X, c), sub(c, d).");
  EXPECT_EQ(q.size(), 2);
}

TEST(ConjunctiveQueryTest, VariablesInFirstOccurrenceOrder) {
  World world;
  ConjunctiveQuery q =
      *ParseQuery(world, "q(B) :- data(A, B, C), member(A, D).");
  std::vector<Term> vars = q.Variables();
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_EQ(world.NameOf(vars[0]), "B");  // head first
  EXPECT_EQ(world.NameOf(vars[1]), "A");
  EXPECT_EQ(world.NameOf(vars[2]), "C");
  EXPECT_EQ(world.NameOf(vars[3]), "D");
}

TEST(ConjunctiveQueryTest, RenameApartSharesNoVariables) {
  World world;
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- member(X, Y).");
  Substitution renaming;
  ConjunctiveQuery renamed = q.RenameApart(world, &renaming);
  EXPECT_EQ(renamed.size(), q.size());
  for (Term v : renamed.Variables()) {
    for (Term original : q.Variables()) EXPECT_NE(v, original);
  }
  // The renaming maps old to new consistently.
  EXPECT_EQ(renaming.Apply(q.head()[0]), renamed.head()[0]);
}

TEST(ConjunctiveQueryTest, FreezeProducesGroundAtomsAndHead) {
  World world;
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- data(X, age, V).");
  std::vector<Term> frozen_head;
  std::vector<Atom> frozen = q.Freeze(world, &frozen_head);
  ASSERT_EQ(frozen.size(), 1u);
  EXPECT_TRUE(frozen[0].IsGround());
  ASSERT_EQ(frozen_head.size(), 1u);
  EXPECT_TRUE(frozen_head[0].IsNull());
  EXPECT_EQ(frozen[0].arg(0), frozen_head[0]);
}

TEST(ConjunctiveQueryTest, SubstituteRewritesHeadAndBody) {
  World world;
  ConjunctiveQuery q = *ParseQuery(world, "q(X) :- member(X, c).");
  Substitution subst;
  subst.Bind(q.head()[0], world.MakeConstant("john"));
  ConjunctiveQuery grounded = q.Substitute(subst);
  EXPECT_EQ(world.NameOf(grounded.head()[0]), "john");
  EXPECT_EQ(world.NameOf(grounded.body()[0].arg(0)), "john");
}

TEST(ConjunctiveQueryTest, ToStringRoundTripsThroughParser) {
  World world;
  ConjunctiveQuery q = *ParseQuery(
      world, "q(A, B) :- type(T1, A, T2), sub(T2, T3), type(T3, B, T4).");
  std::string text = q.ToString(world);
  Result<ConjunctiveQuery> reparsed = ParseQuery(world, text);
  ASSERT_TRUE(reparsed.ok()) << text;
  EXPECT_EQ(*reparsed, q);
}

TEST(ConjunctiveQueryTest, HeadConstantsAreAllowed) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q(john, X) :- member(X, c).");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->head()[0].IsConstant());
}

// ---- error positions and spans -------------------------------------------

TEST(QueryParserTest, SafetyErrorAnchorsAtRuleStart) {
  World world;
  Result<std::vector<ConjunctiveQuery>> bad = ParseQueries(world,
      "q(X) :- member(X, c).\n"
      "  r(Y) :- member(X, c).\n");
  ASSERT_FALSE(bad.ok());
  // The offending rule starts at line 2, column 3.
  EXPECT_NE(bad.status().message().find("at 2:3:"), std::string::npos);
}

TEST(QueryParserTest, ArityConflictAnchorsAtAtom) {
  World world;
  Result<ConjunctiveQuery> bad =
      ParseQuery(world, "q(X) :- p(X, Y),\n  p(X).");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("at 2:3:"), std::string::npos);
}

TEST(QueryParserTest, MidRuleSyntaxErrorPositionIsExact) {
  World world;
  Result<ConjunctiveQuery> bad =
      ParseQuery(world, "q(X) :-\n member(X c).");
  ASSERT_FALSE(bad.ok());
  // The parser stops where ',' or ')' was expected: line 2, column 11.
  EXPECT_NE(bad.status().message().find("at 2:11:"), std::string::npos);
}

TEST(QueryParserTest, RecordsRuleAndHeadTermSpans) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q(X, Y) :- member(X, c), member(Y, d).");
  ASSERT_TRUE(q.ok());
  SourceSpan rule = world.spans().at(q->span());
  EXPECT_EQ(rule.line, 1);
  EXPECT_EQ(rule.column, 1);
  SourceSpan x = world.spans().at(q->head_span(0));
  SourceSpan y = world.spans().at(q->head_span(1));
  EXPECT_EQ(x.column, 3);
  EXPECT_EQ(y.column, 6);
  EXPECT_EQ(y.end_column, 7);
}

TEST(QueryParserTest, AtomsCarryProvenanceSpans) {
  World world;
  Result<ConjunctiveQuery> q =
      ParseQuery(world, "q(X) :- member(X, c),\n  sub(c, d).");
  ASSERT_TRUE(q.ok());
  SourceSpan first = world.spans().at(q->body()[0].provenance());
  SourceSpan second = world.spans().at(q->body()[1].provenance());
  EXPECT_EQ(first.line, 1);
  EXPECT_EQ(first.column, 9);
  EXPECT_EQ(second.line, 2);
  EXPECT_EQ(second.column, 3);
}

}  // namespace
}  // namespace floq
