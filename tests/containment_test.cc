#include <gtest/gtest.h>

#include "containment/containment.h"
#include "containment/homomorphism.h"
#include "containment/minimize.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

bool Contained(World& world, const ConjunctiveQuery& q1,
               const ConjunctiveQuery& q2,
               const ContainmentOptions& options = {}) {
  Result<ContainmentResult> result = CheckContainment(world, q1, q2, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->contained;
}

// ---- homomorphism search -----------------------------------------------------

TEST(HomomorphismTest, HeadConstraintSeedsSearch) {
  World world;
  ConjunctiveQuery pattern = Q(world, "q(X) :- member(X, C).");
  FactIndex target;
  Term john = world.MakeConstant("john");
  Term mary = world.MakeConstant("mary");
  Term student = world.MakeConstant("student");
  target.Insert(Atom::Member(john, student));
  target.Insert(Atom::Member(mary, student));

  std::optional<Substitution> hom =
      FindQueryHomomorphism(pattern, target, {john});
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->Apply(world.MakeVariable("X")), john);

  EXPECT_FALSE(
      FindQueryHomomorphism(pattern, target, {world.MakeConstant("nobody")})
          .has_value());
}

TEST(HomomorphismTest, HeadConstantMustEqualTarget) {
  World world;
  ConjunctiveQuery pattern = Q(world, "q(john) :- member(john, C).");
  FactIndex target;
  Term john = world.MakeConstant("john");
  Term student = world.MakeConstant("student");
  target.Insert(Atom::Member(john, student));
  EXPECT_TRUE(FindQueryHomomorphism(pattern, target, {john}).has_value());
  EXPECT_FALSE(FindQueryHomomorphism(pattern, target,
                                     {world.MakeConstant("mary")})
                   .has_value());
}

TEST(HomomorphismTest, RepeatedHeadVariableNeedsOneImage) {
  World world;
  ConjunctiveQuery pattern = Q(world, "q(X, X) :- member(X, C).");
  FactIndex target;
  Term john = world.MakeConstant("john");
  Term mary = world.MakeConstant("mary");
  target.Insert(Atom::Member(john, mary));
  EXPECT_TRUE(FindQueryHomomorphism(pattern, target, {john, john}));
  EXPECT_FALSE(FindQueryHomomorphism(pattern, target, {john, mary}));
}

TEST(HomomorphismTest, IsQueryHomomorphismValidatesWitness) {
  World world;
  ConjunctiveQuery pattern = Q(world, "q(X) :- member(X, C).");
  FactIndex target;
  Term john = world.MakeConstant("john");
  Term student = world.MakeConstant("student");
  target.Insert(Atom::Member(john, student));

  std::optional<Substitution> hom =
      FindQueryHomomorphism(pattern, target, {john});
  ASSERT_TRUE(hom.has_value());
  EXPECT_TRUE(IsQueryHomomorphism(pattern, target, {john}, *hom));

  Substitution wrong;
  wrong.Bind(world.MakeVariable("X"), student);
  EXPECT_FALSE(IsQueryHomomorphism(pattern, target, {john}, wrong));
}

// ---- classical containment ------------------------------------------------------

TEST(ClassicalContainmentTest, Reflexive) {
  World world;
  ConjunctiveQuery q = Q(world, "q(A) :- member(A, C), sub(C, D).");
  Result<ContainmentResult> result = CheckClassicalContainment(world, q, q);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST(ClassicalContainmentTest, FewerAtomsContainMore) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, C), sub(C, D).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, C).");
  EXPECT_TRUE(CheckClassicalContainment(world, q1, q2)->contained);
  EXPECT_FALSE(CheckClassicalContainment(world, q2, q1)->contained);
}

TEST(ClassicalContainmentTest, ConstantsRestrict) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, student).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, C).");
  EXPECT_TRUE(CheckClassicalContainment(world, q1, q2)->contained);
  EXPECT_FALSE(CheckClassicalContainment(world, q2, q1)->contained);
}

TEST(ClassicalContainmentTest, ArityMismatchIsError) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, C).");
  ConjunctiveQuery q2 = Q(world, "q(X, C) :- member(X, C).");
  Result<ContainmentResult> result = CheckClassicalContainment(world, q1, q2);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---- containment under Sigma_FL ---------------------------------------------------

TEST(ContainmentTest, ReflexiveUnderSigma) {
  World world;
  ConjunctiveQuery q =
      Q(world, "q(A, B) :- type(T1, A, T2), sub(T2, T3), type(T3, B, X).");
  EXPECT_TRUE(Contained(world, q, q));
}

TEST(ContainmentTest, SubclassTransitivityMakesContainment) {
  World world;
  // q1 asks for members of C via a 2-step subclass path; q2 via 1 step.
  ConjunctiveQuery q1 =
      Q(world, "q(X) :- member(X, A), sub(A, B), sub(B, C).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, A), sub(A, C1).");
  EXPECT_TRUE(Contained(world, q1, q2));
  // Classical containment also holds here (map sub(A,C1) to sub(A,B)), so
  // sharpen: require the subclass of a *specific* class.
  ConjunctiveQuery q3 =
      Q(world, "q(X) :- member(X, A), sub(A, B), sub(B, c0).");
  ConjunctiveQuery q4 = Q(world, "q(X) :- member(X, A), sub(A, c0).");
  EXPECT_TRUE(Contained(world, q3, q4));
  EXPECT_FALSE(CheckClassicalContainment(world, q3, q4)->contained);
}

TEST(ContainmentTest, MembershipPropagatesUpward) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, C), sub(C, person).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, person).");
  EXPECT_TRUE(Contained(world, q1, q2));
  EXPECT_FALSE(Contained(world, q2, q1));
}

TEST(ContainmentTest, TypeCorrectnessGivesMembership) {
  World world;
  ConjunctiveQuery q1 =
      Q(world, "q(V) :- type(O, A, number), data(O, A, V).");
  ConjunctiveQuery q2 = Q(world, "q(V) :- member(V, number).");
  EXPECT_TRUE(Contained(world, q1, q2));
  EXPECT_FALSE(CheckClassicalContainment(world, q1, q2)->contained);
}

TEST(ContainmentTest, MandatoryAttributeImpliesSomeValue) {
  // Needs rho_5: every class with a mandatory typed attribute and a member
  // has a member of the attribute's type.
  World world;
  ConjunctiveQuery q1 = Q(world,
                          "q(C) :- mandatory(A, C), type(C, A, T), "
                          "member(O, C).");
  ConjunctiveQuery q2 = Q(world, "q(C) :- member(O, C), data(O, A, V).");
  EXPECT_TRUE(Contained(world, q1, q2));
  // Not visible at level 0 (rho_5 never fires there).
  ContainmentOptions level_zero;
  level_zero.depth = ChaseDepth::kLevelZero;
  EXPECT_FALSE(Contained(world, q1, q2, level_zero));
}

TEST(ContainmentTest, EgdAlignsHeads) {
  // Example-1 shape: under funct, the two values coincide, so q1 is
  // contained in the diagonal query.
  World world;
  ConjunctiveQuery q1 = Q(world,
                          "q(V1, V2) :- data(O, A, V1), data(O, A, V2), "
                          "funct(A, C), member(O, C).");
  ConjunctiveQuery q2 = Q(world, "q(V, V) :- data(O, A, V).");
  EXPECT_TRUE(Contained(world, q1, q2));
  EXPECT_FALSE(CheckClassicalContainment(world, q1, q2)->contained);
}

TEST(ContainmentTest, UnsatisfiableQ1IsContainedInAnything) {
  World world;
  ConjunctiveQuery q1 = Q(world,
                          "q() :- data(O, A, one), data(O, A, two), "
                          "funct(A, O).");
  ConjunctiveQuery q2 = Q(world, "q() :- member(X, impossible).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
  EXPECT_TRUE(result->q1_unsatisfiable);
}

TEST(ContainmentTest, NegativeVerdictsComeWithChaseCounterexample) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, student).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, professor).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->contained);
  // The chase of q1 is the counterexample: q1 returns X there, q2 nothing.
  EXPECT_GE(result->chase.size(), 1u);
  EXPECT_FALSE(result->witness.has_value());
}

TEST(ContainmentTest, WitnessIsAValidHomomorphism) {
  World world;
  ConjunctiveQuery q1 =
      Q(world, "q(X) :- member(X, C), sub(C, person).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, person).");
  Result<ContainmentResult> result = CheckContainment(world, q1, q2);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(IsQueryHomomorphism(q2, result->chase.conjuncts(),
                                  result->chase.head(), *result->witness));
}

TEST(ContainmentTest, InfiniteChaseIsHandledByTheBound) {
  // q1's chase is infinite (mandatory self-loop); Theorem 12's level bound
  // must still decide both directions.
  World world;
  ConjunctiveQuery q1 = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ConjunctiveQuery q2 = Q(world, "q() :- data(O, X, V), data(V, X, W).");
  EXPECT_TRUE(Contained(world, q1, q2));
  ConjunctiveQuery q3 = Q(world, "q() :- sub(S1, S2).");
  EXPECT_FALSE(Contained(world, q1, q3));
}

TEST(ContainmentTest, DeepTargetNeedsDeepChase) {
  // q2 requires a 3-chain of data values; only levels >= 7 of chase(q1)
  // contain it. A small level override must miss it, the paper bound must
  // find it.
  World world;
  ConjunctiveQuery q1 = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ConjunctiveQuery q2 =
      Q(world, "q() :- data(O1, X, O2), data(O2, X, O3), data(O3, X, O4).");
  ContainmentOptions shallow;
  shallow.level_override = 4;
  EXPECT_FALSE(Contained(world, q1, q2, shallow));
  EXPECT_TRUE(Contained(world, q1, q2));
}

TEST(ContainmentTest, BudgetExhaustionIsReported) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q() :- mandatory(A, T), type(T, A, T).");
  ConjunctiveQuery q2 =
      Q(world, "q() :- data(O1, X, O2), data(O2, X, O3), data(O3, X, O4).");
  ContainmentOptions tiny;
  tiny.max_chase_atoms = 5;
  // The 5-atom prefix cannot contain q2's 3-chain, and a truncated chase
  // cannot refute containment: the verdict is UNKNOWN, not an error and
  // not a spurious "not contained".
  Result<ContainmentResult> result = CheckContainment(world, q1, q2, tiny);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->contained);
  EXPECT_EQ(result->resolution, Resolution::kUnknown);
  EXPECT_EQ(result->unknown_reason, TripReason::kChaseAtomBudget);
  EXPECT_FALSE(result->conclusive);
}

// ---- equivalence ---------------------------------------------------------

TEST(EquivalenceTest, RedundantAtomIsEquivalent) {
  World world;
  // member(O, D) is implied by member(O, C), sub(C, D).
  ConjunctiveQuery q1 =
      Q(world, "q(O) :- member(O, C), sub(C, D), member(O, D).");
  ConjunctiveQuery q2 = Q(world, "q(O) :- member(O, C), sub(C, D).");
  Result<bool> equivalent = CheckEquivalence(world, q1, q2);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(*equivalent);
}

TEST(EquivalenceTest, StrictContainmentIsNotEquivalence) {
  World world;
  ConjunctiveQuery q1 = Q(world, "q(X) :- member(X, person).");
  ConjunctiveQuery q2 = Q(world, "q(X) :- member(X, C).");
  Result<bool> equivalent = CheckEquivalence(world, q1, q2);
  ASSERT_TRUE(equivalent.ok());
  EXPECT_FALSE(*equivalent);
}

// ---- UCQ containment ---------------------------------------------------------

TEST(UcqContainmentTest, PicksTheMatchingDisjunct) {
  World world;
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, student).");
  std::vector<ConjunctiveQuery> disjuncts = {
      Q(world, "q(X) :- member(X, professor)."),
      Q(world, "q(X) :- member(X, C)."),
  };
  Result<std::optional<size_t>> hit = CheckUcqContainment(world, q, disjuncts);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->has_value());
  EXPECT_EQ(hit->value(), 1u);
}

TEST(UcqContainmentTest, NoDisjunctMatches) {
  World world;
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, student).");
  std::vector<ConjunctiveQuery> disjuncts = {
      Q(world, "q(X) :- member(X, professor)."),
      Q(world, "q(X) :- data(X, A, V)."),
  };
  Result<std::optional<size_t>> hit = CheckUcqContainment(world, q, disjuncts);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit->has_value());
}

TEST(UcqContainmentTest, UsesConstraints) {
  World world;
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), sub(C, person).");
  std::vector<ConjunctiveQuery> disjuncts = {
      Q(world, "q(X) :- member(X, person)."),
  };
  Result<std::optional<size_t>> hit = CheckUcqContainment(world, q, disjuncts);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->has_value());
}

// ---- minimization ---------------------------------------------------------------

TEST(MinimizeTest, RemovesConstraintImpliedAtom) {
  World world;
  ConjunctiveQuery q =
      Q(world, "q(O) :- member(O, C), sub(C, D), member(O, D).");
  MinimizeStats stats;
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q, {}, &stats);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 2);
  EXPECT_EQ(stats.atoms_removed, 1);
  // Still equivalent to the original.
  EXPECT_TRUE(*CheckEquivalence(world, q, *minimal));
}

TEST(MinimizeTest, KeepsNonRedundantAtoms) {
  World world;
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), data(X, A, V).");
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 2);
}

TEST(MinimizeTest, ClassicalDuplicateAtomsCollapse) {
  World world;
  // Two isomorphic member atoms joined only through the head variable.
  ConjunctiveQuery q = Q(world, "q(X) :- member(X, C), member(X, D).");
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 1);
}

TEST(MinimizeTest, NonImpliedAtomsStay) {
  World world;
  // member(O, C) is not implied by the data atom: nothing is removable.
  ConjunctiveQuery q = Q(world, "q(V) :- data(O, A, V), member(O, C).");
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 2);
}

TEST(MinimizeTest, Rho1ImpliedMembershipIsRemoved) {
  World world;
  // member(V, T) follows from type(O, A, T), data(O, A, V) by rho_1.
  ConjunctiveQuery q =
      Q(world, "q(V) :- type(O, A, T), data(O, A, V), member(V, T).");
  Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), 2);
  EXPECT_EQ(minimal->body()[0].predicate(), pfl::kType);
  EXPECT_EQ(minimal->body()[1].predicate(), pfl::kData);
}

}  // namespace
}  // namespace floq
