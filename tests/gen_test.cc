#include <gtest/gtest.h>

#include "chase/chase.h"
#include "containment/containment.h"
#include "gen/generators.h"
#include "kb/knowledge_base.h"
#include "term/world.h"

namespace floq::gen {
namespace {

TEST(GeneratorTest, AttributeChainShape) {
  World world;
  ConjunctiveQuery q = MakeAttributeChainQuery(world, 3, true);
  EXPECT_EQ(q.arity(), 2);
  EXPECT_EQ(q.size(), 5);  // 3 type atoms + 2 sub hops
  EXPECT_TRUE(q.Validate(world).ok());

  ConjunctiveQuery qq = MakeAttributeChainQuery(world, 3, false, "qq");
  EXPECT_EQ(qq.size(), 3);
  EXPECT_TRUE(qq.Validate(world).ok());
}

TEST(GeneratorTest, ChainContainmentGeneralizesPaperExample) {
  // For every n: the chain with subclass hops is contained in the chain
  // without them (rho_8 collapses each sub step), paper §2 generalized.
  World world;
  for (int hops = 2; hops <= 4; ++hops) {
    ConjunctiveQuery q = MakeAttributeChainQuery(world, hops, true, "q");
    ConjunctiveQuery qq = MakeAttributeChainQuery(world, hops, false, "qq");
    Result<ContainmentResult> result = CheckContainment(world, q, qq);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->contained) << "hops=" << hops;
    Result<ContainmentResult> reverse = CheckContainment(world, qq, q);
    ASSERT_TRUE(reverse.ok());
    EXPECT_FALSE(reverse->contained) << "hops=" << hops;
  }
}

TEST(GeneratorTest, MandatoryCycleShape) {
  World world;
  ConjunctiveQuery q = MakeMandatoryCycleQuery(world, 3);
  EXPECT_EQ(q.size(), 6);
  EXPECT_EQ(q.arity(), 0);
  EXPECT_TRUE(q.Validate(world).ok());
}

TEST(GeneratorTest, MandatoryCycleChaseIsInfinite) {
  World world;
  ConjunctiveQuery q = MakeMandatoryCycleQuery(world, 2);
  ChaseResult chase = ChaseQuery(world, q, {.max_level = 15});
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kLevelCapped);
  EXPECT_GT(chase.stats().fresh_nulls, 2u);
}

TEST(GeneratorTest, DataChainProbeMatchesCycleChase) {
  // The probe chains one attribute variable, so it needs a 1-cycle (the
  // k=2 cycle alternates attributes between hops).
  World world;
  ConjunctiveQuery cycle = MakeMandatoryCycleQuery(world, 1);
  ConjunctiveQuery probe = MakeDataChainProbe(world, 3);
  Result<ContainmentResult> result = CheckContainment(world, cycle, probe);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST(GeneratorTest, FunctFanMergesToOneValue) {
  World world;
  ConjunctiveQuery q = MakeFunctFanQuery(world, 8);
  EXPECT_EQ(q.size(), 9);
  ChaseResult chase = ChaseQuery(world, q);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.conjuncts().WithPredicate(pfl::kData).size(), 1u);
  EXPECT_EQ(chase.stats().egd_merges, 7u);
}

TEST(GeneratorTest, RandomQueryIsDeterministic) {
  World world;
  RandomQuerySpec spec;
  spec.seed = 42;
  spec.atoms = 6;
  ConjunctiveQuery q1 = MakeRandomQuery(world, spec);
  ConjunctiveQuery q2 = MakeRandomQuery(world, spec);
  EXPECT_EQ(q1, q2);
  spec.seed = 43;
  ConjunctiveQuery q3 = MakeRandomQuery(world, spec);
  EXPECT_FALSE(q1 == q3);
}

TEST(GeneratorTest, RandomQueriesAreValid) {
  World world;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    RandomQuerySpec spec;
    spec.seed = seed;
    spec.atoms = 1 + int(seed % 7);
    spec.arity = int(seed % 3);
    ConjunctiveQuery q = MakeRandomQuery(world, spec);
    EXPECT_TRUE(q.Validate(world).ok()) << q.ToString(world);
    EXPECT_EQ(q.size(), spec.atoms);
  }
}

TEST(GeneratorTest, RandomKbFactsAreGroundAndSeedStable) {
  World world;
  RandomKbSpec spec;
  spec.seed = 7;
  std::vector<Atom> facts1 = MakeRandomKbFacts(world, spec);
  std::vector<Atom> facts2 = MakeRandomKbFacts(world, spec);
  EXPECT_EQ(facts1, facts2);
  for (const Atom& fact : facts1) EXPECT_TRUE(fact.IsGround());
  EXPECT_EQ(int(facts1.size()),
            spec.sub_facts + spec.member_facts + spec.data_facts +
                spec.type_facts + spec.mandatory_facts + spec.funct_facts);
}

TEST(GeneratorTest, RandomKbSaturates) {
  World world;
  RandomKbSpec spec;
  spec.seed = 11;
  KnowledgeBase kb(world);
  for (const Atom& fact : MakeRandomKbFacts(world, spec)) {
    ASSERT_TRUE(kb.AddFact(fact).ok());
  }
  SaturateOptions options;
  options.mandatory_completion_rounds = 4;
  Result<ConsistencyReport> report = kb.Saturate(options);
  ASSERT_TRUE(report.ok());
  EXPECT_GE(kb.size(), uint32_t(spec.member_facts));
}

}  // namespace
}  // namespace floq::gen
