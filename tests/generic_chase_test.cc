// Tests for the generic dependency framework: parsing, weak acyclicity,
// the generic chase, cross-checks against the Sigma_FL-specialized engine,
// and containment under user dependency sets.

#include <gtest/gtest.h>

#include <map>

#include "chase/chase.h"
#include "chase/dependencies.h"
#include "chase/generic_chase.h"
#include "containment/containment.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

// ---- parsing -------------------------------------------------------------

TEST(DependencyParserTest, TgdsAndEgds) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    person(X) :- employee(X).
    works_for(X, Y) :- employee(X).     % Y is existential
    X = Y :- boss(E, X), boss(E, Y).
  )");
  ASSERT_TRUE(deps.ok()) << deps.status().ToString();
  ASSERT_EQ(deps->tgds.size(), 2u);
  ASSERT_EQ(deps->egds.size(), 1u);
  EXPECT_TRUE(deps->tgds[0].ExistentialVariables().empty());
  EXPECT_EQ(deps->tgds[1].ExistentialVariables().size(), 1u);
  EXPECT_TRUE(deps->egds[0].left.IsVariable());
}

TEST(DependencyParserTest, Errors) {
  World world;
  EXPECT_FALSE(ParseDependencies(world, "person(X).").ok());  // no :-
  EXPECT_FALSE(ParseDependencies(world, "p(X) :- .").ok());   // empty body
  // Equated variable not in body.
  EXPECT_FALSE(
      ParseDependencies(world, "X = Z :- boss(E, X), boss(E, Y).").ok());
  // Arity conflict on the head predicate.
  EXPECT_FALSE(ParseDependencies(world,
                                 "p(X) :- q(X). p(X, Y) :- q(X), q(Y).")
                   .ok());
}

TEST(DependencyParserTest, SigmaFLHasTwelveRules) {
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  EXPECT_EQ(sigma.tgds.size(), 11u);
  EXPECT_EQ(sigma.egds.size(), 1u);
  // rho_5 is the only existential TGD.
  int existential = 0;
  for (const Tgd& tgd : sigma.tgds) {
    existential += tgd.ExistentialVariables().empty() ? 0 : 1;
  }
  EXPECT_EQ(existential, 1);
}

// ---- weak acyclicity -------------------------------------------------------

TEST(WeakAcyclicityTest, DatalogSetsAreWeaklyAcyclic) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    sub(C1, C2) :- sub(C1, C3), sub(C3, C2).
    member(O, C1) :- member(O, C), sub(C, C1).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsWeaklyAcyclic(*deps, world));
}

TEST(WeakAcyclicityTest, AcyclicExistentialsAreFine) {
  World world;
  // Every employee works somewhere; departments don't generate employees.
  Result<DependencySet> deps = ParseDependencies(world, R"(
    works_in(X, D) :- employee(X).
    dept(D) :- works_in(X, D).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsWeaklyAcyclic(*deps, world));
}

TEST(WeakAcyclicityTest, ExistentialCycleDetected) {
  World world;
  // Every person has a parent who is a person: classic non-terminating.
  Result<DependencySet> deps = ParseDependencies(world, R"(
    parent_of(X, P) :- person(X).
    person(P) :- parent_of(X, P).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_FALSE(IsWeaklyAcyclic(*deps, world));
}

TEST(WeakAcyclicityTest, SpecialSelfLoopIsACycleOfLengthOne) {
  World world;
  // The body variable Y sits at p[0] and feeds the invented X back into
  // p[0]: a special edge from a position to itself, the shortest
  // possible witness.
  Result<DependencySet> deps = ParseDependencies(
      world, "p(X, Y) :- p(Y, Z).");
  ASSERT_TRUE(deps.ok());
  WeakAcyclicityResult result = AnalyzeWeakAcyclicity(*deps, world);
  EXPECT_FALSE(result.weakly_acyclic);
  ASSERT_EQ(result.witness.size(), 1u);
  EXPECT_TRUE(result.witness[0].special);
  EXPECT_TRUE(result.witness[0].from == result.witness[0].to);
  EXPECT_EQ(result.witness[0].from.ToString(world), "p[0]");
}

TEST(WeakAcyclicityTest, EgdOnlySetsAreTriviallyWeaklyAcyclic) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    X = Y :- boss(E, X), boss(E, Y).
    V = W :- data(O, A, V), data(O, A, W), funct(A, O).
  )");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(deps->tgds.empty());
  WeakAcyclicityResult result = AnalyzeWeakAcyclicity(*deps, world);
  EXPECT_TRUE(result.weakly_acyclic);
  EXPECT_TRUE(result.edges.empty());
  EXPECT_TRUE(result.witness.empty());
}

TEST(WeakAcyclicityTest, WitnessCycleIsWellFormedAndClosed) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    parent_of(X, P) :- person(X).
    person(P) :- parent_of(X, P).
  )");
  ASSERT_TRUE(deps.ok());
  WeakAcyclicityResult result = AnalyzeWeakAcyclicity(*deps, world);
  ASSERT_FALSE(result.weakly_acyclic);
  ASSERT_GE(result.witness.size(), 2u);
  bool has_special = false;
  for (size_t i = 0; i < result.witness.size(); ++i) {
    const DependencyEdge& edge = result.witness[i];
    const DependencyEdge& next =
        result.witness[(i + 1) % result.witness.size()];
    EXPECT_TRUE(edge.to == next.from);  // consecutive edges chain, wrapping
    has_special |= edge.special;
  }
  EXPECT_TRUE(has_special);
}

TEST(WeakAcyclicityTest, SigmaFLWitnessRunsThroughRho5AndRho1) {
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  WeakAcyclicityResult result = AnalyzeWeakAcyclicity(sigma, world);
  ASSERT_FALSE(result.weakly_acyclic);
  ASSERT_FALSE(result.witness.empty());
  // The first witness edge is the special edge of rho_5 (tgd5 in the
  // user-syntax listing): mandatory feeds the invented value position
  // data[2]; the cycle then returns to a mandatory position.
  EXPECT_TRUE(result.witness[0].special);
  EXPECT_EQ(result.witness[0].to.ToString(world), "data[2]");
  EXPECT_EQ(result.witness[0].from.ToString(world)
                .substr(0, 9), "mandatory");
  std::string rendered;
  for (const DependencyEdge& edge : result.witness) {
    rendered += edge.ToString(sigma, world) + "\n";
  }
  EXPECT_NE(rendered.find("*-->"), std::string::npos) << rendered;
}

TEST(WeakAcyclicityTest, SigmaFLIsNotWeaklyAcyclic) {
  // rho_5 feeds data, rho_1 feeds member, rho_10 feeds mandatory, which
  // feeds rho_5 again — the source of the paper's infinite chases.
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  EXPECT_FALSE(IsWeaklyAcyclic(sigma, world));
}

TEST(WeakAcyclicityTest, JointlyAcyclicSetStillTerminates) {
  World world;
  // Not weakly acyclic (the special edge p[0] -*-> q[1] closes through
  // q[1] -> p[0]) yet the restricted chase terminates: the invented Y
  // never acquires an r fact, so the second rule cannot re-fire on it.
  Result<DependencySet> deps = ParseDependencies(world, R"(
    q(X, Y) :- p(X).
    p(Y) :- q(X, Y), r(Y).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_FALSE(IsWeaklyAcyclic(*deps, world));
  ConjunctiveQuery q = *ParseQuery(world, "q0() :- p(A), r(A).");
  ChaseOptions options;
  options.max_level = 50;
  options.max_atoms = 10'000;
  ChaseResult chase = GenericChase(world, q, *deps, options);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
}

// ---- generic chase -----------------------------------------------------------

TEST(GenericChaseTest, PlainTgdsSaturate) {
  World world;
  Result<DependencySet> deps = ParseDependencies(
      world, "sub(C1, C2) :- sub(C1, C3), sub(C3, C2).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(world, "q() :- sub(A, B), sub(B, C).");
  ChaseResult chase = GenericChase(world, q, *deps);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_TRUE(chase.conjuncts().Contains(
      Atom::Sub(world.MakeVariable("A"), world.MakeVariable("C"))));
}

TEST(GenericChaseTest, ExistentialInventsOneNullPerInstance) {
  World world;
  Result<DependencySet> deps = ParseDependencies(
      world, "works_in(X, D) :- employee(X).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q =
      *ParseQuery(world, "q() :- employee(ann), employee(bob).");
  ChaseResult chase = GenericChaseFacts(world, q.body(), *deps);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.stats().fresh_nulls, 2u);
  // Restricted: re-running adds nothing (heads satisfied).
}

TEST(GenericChaseTest, RestrictedExistentialIsBlockedByWitness) {
  World world;
  Result<DependencySet> deps = ParseDependencies(
      world, "works_in(X, D) :- employee(X).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(
      world, "q() :- employee(ann), works_in(ann, sales).");
  ChaseResult chase = GenericChase(world, q, *deps);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.stats().fresh_nulls, 0u);
}

TEST(GenericChaseTest, EgdMergesAndFails) {
  World world;
  Result<DependencySet> deps = ParseDependencies(
      world, "X = Y :- boss(E, X), boss(E, Y).");
  ASSERT_TRUE(deps.ok());

  ConjunctiveQuery merging = *ParseQuery(
      world, "q(V, W) :- boss(e1, V), boss(e1, W).");
  ChaseResult chase = GenericChase(world, merging, *deps);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  EXPECT_EQ(chase.head()[0], chase.head()[1]);

  ConjunctiveQuery failing = *ParseQuery(
      world, "q() :- boss(e1, ann), boss(e1, bob).");
  ChaseResult failed = GenericChase(world, failing, *deps);
  EXPECT_EQ(failed.outcome(), ChaseOutcome::kFailed);
}

TEST(GenericChaseTest, NonTerminatingSetIsLevelCapped) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    parent_of(X, P) :- person(X).
    person(P) :- parent_of(X, P).
  )");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(world, "q() :- person(adam).");
  ChaseOptions options;
  options.max_level = 9;
  ChaseResult chase = GenericChase(world, q, *deps, options);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kLevelCapped);
  EXPECT_GE(chase.stats().fresh_nulls, 4u);
}

// ---- cross-check against the specialized Sigma_FL engine ---------------------

class GenericVsSpecialized : public ::testing::TestWithParam<const char*> {};

TEST_P(GenericVsSpecialized, SameConjunctCountsPerPredicate) {
  // Run both engines in separate worlds (so fresh nulls align) and compare
  // the per-predicate conjunct counts of the level-capped chases.
  World world_s, world_g;
  ConjunctiveQuery qs = *ParseQuery(world_s, GetParam());
  ConjunctiveQuery qg = *ParseQuery(world_g, GetParam());

  ChaseOptions options;
  options.max_level = 9;
  ChaseResult specialized = ChaseQuery(world_s, qs, options);
  DependencySet sigma = MakeSigmaFLDependencies(world_g);
  ChaseResult generic = GenericChase(world_g, qg, sigma, options);

  ASSERT_EQ(specialized.failed(), generic.failed());
  if (specialized.failed()) return;

  // The specialized engine puts all of chase_{Sigma^-} at level 0 while
  // the generic one counts from the initial conjuncts, so levels differ;
  // the saturated *sets* must agree when both completed.
  if (specialized.outcome() == ChaseOutcome::kCompleted &&
      generic.outcome() == ChaseOutcome::kCompleted) {
    std::map<PredicateId, size_t> counts_s, counts_g;
    for (uint32_t id = 0; id < specialized.size(); ++id) {
      counts_s[specialized.conjunct(id).predicate()]++;
    }
    for (uint32_t id = 0; id < generic.size(); ++id) {
      counts_g[generic.conjunct(id).predicate()]++;
    }
    EXPECT_EQ(counts_s, counts_g) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Queries, GenericVsSpecialized,
    ::testing::Values(
        "q() :- sub(A, B), sub(B, C).",
        "q() :- member(O, C), type(C, A, T).",
        "q(V) :- data(O, A, V), data(O, A, W), funct(A, O).",
        "q() :- mandatory(A, O), type(O, A, T).",
        "q() :- data(O, A, one), data(O, A, two), funct(A, O).",
        "q() :- sub(C, D), mandatory(A, D), funct(B, D), member(O, C)."));

// ---- containment under user dependencies ---------------------------------------

TEST(UserDependencyContainmentTest, WeaklyAcyclicComplete) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
    dept(D) :- works_in(X, D).
  )");
  ASSERT_TRUE(deps.ok());
  ASSERT_TRUE(IsWeaklyAcyclic(*deps, world));

  ConjunctiveQuery q1 = *ParseQuery(world, "q(X) :- employee(X).");
  ConjunctiveQuery q2 = *ParseQuery(
      world, "q(X) :- person(X), works_in(X, D), dept(D).");
  Result<ContainmentResult> result =
      CheckContainmentUnderDependencies(world, q1, q2, *deps);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);
  EXPECT_TRUE(result->conclusive);

  // Reverse fails conclusively (weakly acyclic).
  Result<ContainmentResult> reverse =
      CheckContainmentUnderDependencies(world, q2, q1, *deps);
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse->contained);
  EXPECT_TRUE(reverse->conclusive);
}

TEST(UserDependencyContainmentTest, KeyEgdAlignsHeads) {
  World world;
  Result<DependencySet> deps = ParseDependencies(
      world, "X = Y :- ssn(P, S, X), ssn(P, S, Y).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q1 = *ParseQuery(
      world, "q(X, Y) :- ssn(P, S, X), ssn(P, S, Y).");
  ConjunctiveQuery q2 = *ParseQuery(world, "q(V, V) :- ssn(P, S, V).");
  Result<ContainmentResult> result =
      CheckContainmentUnderDependencies(world, q1, q2, *deps);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->contained);
}

TEST(UserDependencyContainmentTest, NonWeaklyAcyclicNeedsOverride) {
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  ConjunctiveQuery q1 = *ParseQuery(world, "q() :- mandatory(A, T), "
                                           "type(T, A, T).");
  ConjunctiveQuery q2 = *ParseQuery(world, "q() :- data(O, X, V).");

  // Without an override: precondition failure.
  Result<ContainmentResult> bare =
      CheckContainmentUnderDependencies(world, q1, q2, sigma);
  EXPECT_FALSE(bare.ok());
  EXPECT_EQ(bare.status().code(), StatusCode::kFailedPrecondition);

  // With the paper's bound: positive and conclusive-as-positive.
  ContainmentOptions options;
  options.level_override = q2.size() * 2 * q1.size();
  Result<ContainmentResult> bounded =
      CheckContainmentUnderDependencies(world, q1, q2, sigma, options);
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_TRUE(bounded->contained);

  // A deep negative is flagged inconclusive.
  ConjunctiveQuery q3 = *ParseQuery(world, "q() :- sub(S1, S2).");
  Result<ContainmentResult> negative =
      CheckContainmentUnderDependencies(world, q1, q3, sigma, options);
  ASSERT_TRUE(negative.ok());
  EXPECT_FALSE(negative->contained);
  EXPECT_FALSE(negative->conclusive);
}

TEST(UserDependencyContainmentTest, AgreesWithPaperMethodOnSigmaFL) {
  // The generic path with Sigma_FL-as-user-dependencies and the paper's
  // bound must agree with the specialized checker.
  const char* pairs[][2] = {
      {"q(X) :- member(X, C), sub(C, person).",
       "q(X) :- member(X, person)."},
      {"q(V) :- type(O, A, number), data(O, A, V).",
       "q(V) :- member(V, number)."},
      {"q(X) :- member(X, student).", "q(X) :- member(X, professor)."},
      {"q(C) :- mandatory(A, C), type(C, A, T), member(O, C).",
       "q(C) :- member(O, C), data(O, A, V)."},
  };
  for (const auto& pair : pairs) {
    World world;
    ConjunctiveQuery q1 = *ParseQuery(world, pair[0]);
    ConjunctiveQuery q2 = *ParseQuery(world, pair[1]);
    Result<ContainmentResult> paper = CheckContainment(world, q1, q2);
    ASSERT_TRUE(paper.ok());

    DependencySet sigma = MakeSigmaFLDependencies(world);
    ContainmentOptions options;
    options.level_override = q2.size() * 2 * q1.size();
    Result<ContainmentResult> generic =
        CheckContainmentUnderDependencies(world, q1, q2, sigma, options);
    ASSERT_TRUE(generic.ok()) << generic.status().ToString();
    EXPECT_EQ(paper->contained, generic->contained)
        << pair[0] << " vs " << pair[1];
  }
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

TEST(GenericChaseTest, DebugStringNamesGenericRules) {
  World world;
  Result<DependencySet> deps =
      ParseDependencies(world, "person(X) :- employee(X).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(world, "q() :- employee(ann).");
  ChaseResult chase = GenericChase(world, q, *deps);
  EXPECT_NE(chase.DebugString(world).find("rho_1000"), std::string::npos);
}

TEST(GenericChaseTest, BudgetExceededReported) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    parent_of(X, P) :- person(X).
    person(P) :- parent_of(X, P).
  )");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(world, "q() :- person(adam).");
  ChaseOptions options;
  options.max_atoms = 10;
  ChaseResult chase = GenericChase(world, q, *deps, options);
  EXPECT_EQ(chase.outcome(), ChaseOutcome::kBudgetExceeded);
}

TEST(GenericChaseTest, RepeatedExistentialVariableSharesOneNull) {
  World world;
  // The same existential variable twice in the head: one null, repeated.
  Result<DependencySet> deps =
      ParseDependencies(world, "pair(X, Y, Y) :- thing(X).");
  ASSERT_TRUE(deps.ok());
  ConjunctiveQuery q = *ParseQuery(world, "q() :- thing(a).");
  ChaseResult chase = GenericChase(world, q, *deps);
  ASSERT_EQ(chase.outcome(), ChaseOutcome::kCompleted);
  bool found = false;
  for (uint32_t id = 0; id < chase.size(); ++id) {
    const Atom& atom = chase.conjunct(id);
    if (world.predicates().NameOf(atom.predicate()) == "pair") {
      found = true;
      EXPECT_TRUE(atom.arg(1).IsNull());
      EXPECT_EQ(atom.arg(1), atom.arg(2));
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(chase.stats().fresh_nulls, 1u);
}

}  // namespace
}  // namespace floq
