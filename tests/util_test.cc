#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/function_ref.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/union_find.h"

namespace floq {
namespace {

// ---- Status / Result --------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = InvalidArgumentError("bad foo");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad foo");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad foo");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status(), Status::Ok());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = NotFoundError("missing");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result = std::string("payload");
  std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

// ---- strings ------------------------------------------------------------

TEST(StringsTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"solo"}, ", "), "solo");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("_G12", "_G"));
  EXPECT_FALSE(StartsWith("_", "_G"));
  EXPECT_TRUE(StartsWith("abc", ""));
}

// ---- interner -----------------------------------------------------------

TEST(InternerTest, InternIsIdempotent) {
  StringInterner interner;
  uint32_t a = interner.Intern("alpha");
  uint32_t b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.NameOf(a), "alpha");
  EXPECT_EQ(interner.NameOf(b), "beta");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(InternerTest, LookupDoesNotInsert) {
  StringInterner interner;
  EXPECT_EQ(interner.Lookup("ghost"), UINT32_MAX);
  EXPECT_EQ(interner.size(), 0u);
  interner.Intern("ghost");
  EXPECT_NE(interner.Lookup("ghost"), UINT32_MAX);
}

TEST(InternerTest, IdsAreDense) {
  StringInterner interner;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(interner.Intern(StrCat("name", i)), uint32_t(i));
  }
}

// ---- union-find -----------------------------------------------------------

TEST(UnionFindTest, SingletonsAreDistinct) {
  UnionFind uf;
  uf.GrowTo(4);
  EXPECT_FALSE(uf.Same(0, 1));
  EXPECT_EQ(uf.Find(3), 3u);
}

TEST(UnionFindTest, WinnerBecomesRepresentative) {
  UnionFind uf;
  uf.GrowTo(4);
  EXPECT_TRUE(uf.Union(2, 1));
  EXPECT_EQ(uf.Find(1), 2u);
  EXPECT_EQ(uf.Find(2), 2u);
  // Merging again is a no-op.
  EXPECT_FALSE(uf.Union(2, 1));
}

TEST(UnionFindTest, TransitiveMerges) {
  UnionFind uf;
  uf.GrowTo(10);
  uf.Union(0, 1);
  uf.Union(1, 2);  // winner is 0's class root (0)
  EXPECT_TRUE(uf.Same(0, 2));
  EXPECT_EQ(uf.Find(2), 0u);
}

TEST(UnionFindTest, GrowsOnDemand) {
  UnionFind uf;
  EXPECT_EQ(uf.Find(100), 100u);
  EXPECT_GE(uf.size(), 101u);
}

// ---- rng ------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t x = rng.Below(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.Between(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitCanBeReusedAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
  }  // destructor must run the backlog before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  ParallelFor(pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

// ---- FunctionRef -------------------------------------------------------

int FreeFunctionDouble(int x) { return 2 * x; }

TEST(FunctionRefTest, CallsLambda) {
  int calls = 0;
  // The ref is non-owning: the lambda must be a named object that outlives
  // it (a temporary would dangle, exactly as with C++26 std::function_ref).
  auto increment = [&calls](int x) {
    ++calls;
    return x + 1;
  };
  FunctionRef<int(int)> ref = increment;
  EXPECT_EQ(ref(41), 42);
  EXPECT_EQ(ref(1), 2);
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRefTest, CallsFreeFunction) {
  FunctionRef<int(int)> ref = FreeFunctionDouble;
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRefTest, PassesReferenceArguments) {
  auto append = [](std::string& out) { out += "x"; };
  FunctionRef<void(std::string&)> ref = append;
  std::string s;
  ref(s);
  ref(s);
  EXPECT_EQ(s, "xx");
}

}  // namespace
}  // namespace floq
