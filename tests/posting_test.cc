#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <map>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "datalog/fact_index.h"
#include "datalog/posting_block.h"
#include "datalog/posting_intersect.h"
#include "datalog/snapshot.h"
#include "kb/knowledge_base.h"
#include "term/world.h"
#include "util/metrics.h"

// Tests for the block-compressed posting storage (DESIGN.md §14): codec
// round trips, SIMD-vs-scalar differential parity, cursor streaming and
// SeekGE against plain-vector oracles, FactIndex freezing at random
// points, and snapshot write -> mmap-load parity up to KB answers.

namespace floq {
namespace {

// Deterministic sorted strictly-increasing id list: `n` ids with gaps
// drawn from [1, max_gap].
std::vector<uint32_t> RandomIds(std::mt19937& rng, size_t n,
                                uint32_t max_gap, uint32_t start = 0) {
  std::uniform_int_distribution<uint32_t> gap(1, max_gap);
  std::vector<uint32_t> ids;
  ids.reserve(n);
  uint32_t cur = start;
  for (size_t i = 0; i < n; ++i) {
    cur += gap(rng);
    ids.push_back(cur);
  }
  return ids;
}

std::vector<uint32_t> DecodeWholeList(const uint8_t* arena_data,
                                      uint32_t offset) {
  FrozenListView list = ResolveFrozenList(arena_data, offset);
  std::vector<uint32_t> out;
  out.reserve(list.count);
  std::array<uint32_t, kPostingBlockSize> buf;
  for (uint32_t b = 0; b < list.num_blocks; ++b) {
    uint32_t n = DecodeBlockScalar(list, b, buf.data());
    EXPECT_EQ(n, list.BlockLength(b));
    out.insert(out.end(), buf.begin(), buf.begin() + n);
  }
  return out;
}

// ---- Codec ---------------------------------------------------------------

TEST(PostingCodecTest, RoundTripAcrossSizesAndGapWidths) {
  std::mt19937 rng(7);
  const size_t sizes[] = {1, 2, 5, 127, 128, 129, 255, 256, 1000, 4133};
  const uint32_t gaps[] = {1, 3, 200, 90'000};  // widths 1, 1, 2, 4 bytes
  for (size_t n : sizes) {
    for (uint32_t max_gap : gaps) {
      PostingArena arena;
      std::vector<uint32_t> ids = RandomIds(rng, n, max_gap);
      uint32_t offset = arena.EncodeList(ids);
      EXPECT_EQ(DecodeWholeList(arena.data(), offset), ids)
          << "n=" << n << " max_gap=" << max_gap;
    }
  }
}

TEST(PostingCodecTest, PicksDeltaWidthPerBlock) {
  // First block dense (1-byte deltas), second block sparse (4-byte).
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < kPostingBlockSize; ++i) ids.push_back(i + 1);
  uint32_t cur = ids.back();
  for (uint32_t i = 0; i < kPostingBlockSize; ++i) {
    cur += 1'000'000;
    ids.push_back(cur);
  }
  PostingArena arena;
  uint32_t offset = arena.EncodeList(ids);
  FrozenListView list = ResolveFrozenList(arena.data(), offset);
  ASSERT_EQ(list.num_blocks, 2u);
  EXPECT_EQ(list.metas[0].delta_width(), 1u);
  EXPECT_EQ(list.metas[1].delta_width(), 4u);
  EXPECT_EQ(list.metas[0].max_id, ids[kPostingBlockSize - 1]);
  EXPECT_EQ(list.metas[1].max_id, ids.back());
  EXPECT_EQ(DecodeWholeList(arena.data(), offset), ids);
}

TEST(PostingCodecTest, MultipleListsShareOneArena) {
  std::mt19937 rng(11);
  PostingArena arena;
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> lists;
  for (int i = 0; i < 20; ++i) {
    std::vector<uint32_t> ids = RandomIds(rng, 1 + size_t(rng() % 400), 50);
    uint32_t offset = arena.EncodeList(ids);
    lists.emplace_back(offset, std::move(ids));
  }
  for (const auto& [offset, ids] : lists) {
    EXPECT_EQ(DecodeWholeList(arena.data(), offset), ids);
  }
}

TEST(PostingCodecTest, FrozenBytesAtMostHalfOfPlainVectors) {
  // The acceptance bound for the dense-id regime FactIndex produces: ids
  // are insertion-ordered, so posting-list gaps are small and almost all
  // blocks take 1-byte deltas.
  std::mt19937 rng(13);
  PostingArena arena;
  uint64_t total_ids = 0;
  for (int i = 0; i < 50; ++i) {
    std::vector<uint32_t> ids = RandomIds(rng, 2000, 4);
    arena.EncodeList(ids);
    total_ids += ids.size();
  }
  double bytes_per_posting = double(arena.size()) / double(total_ids);
  EXPECT_LE(bytes_per_posting, 2.0) << "frozen tier must be <= 0.5x the "
                                       "4-byte plain-vector representation";
}

// ---- SIMD differential ---------------------------------------------------

TEST(PostingSimdTest, DecodeBlockMatchesScalar) {
  // With FLOQ_NATIVE+SSE4.1 this is a genuine SIMD-vs-scalar differential;
  // otherwise both paths are the scalar one and the test is vacuous (the
  // CI native job runs the real comparison).
  std::mt19937 rng(17);
  const uint32_t gaps[] = {1, 14, 250, 70'000, 20'000'000};
  for (uint32_t max_gap : gaps) {
    for (int trial = 0; trial < 20; ++trial) {
      size_t n = 1 + size_t(rng() % 513);
      PostingArena arena;
      std::vector<uint32_t> ids = RandomIds(rng, n, max_gap);
      uint32_t offset = arena.EncodeList(ids);
      FrozenListView list = ResolveFrozenList(arena.data(), offset);
      std::array<uint32_t, kPostingBlockSize> scalar, simd;
      for (uint32_t b = 0; b < list.num_blocks; ++b) {
        uint32_t ns = DecodeBlockScalar(list, b, scalar.data());
        uint32_t nv = DecodeBlock(list, b, simd.data());
        ASSERT_EQ(ns, nv);
        for (uint32_t k = 0; k < ns; ++k) {
          ASSERT_EQ(scalar[k], simd[k]) << "block " << b << " slot " << k;
        }
      }
    }
  }
}

TEST(PostingSimdTest, LowerBoundMatchesScalarAndStd) {
  std::mt19937 rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    uint32_t n = 1 + rng() % kPostingBlockSize;
    std::vector<uint32_t> data = RandomIds(rng, n, 1000);
    // Probe below, above, at every element, and between elements.
    std::vector<uint32_t> targets = {0, data.front(), data.back(),
                                     data.back() + 1, UINT32_MAX};
    for (int i = 0; i < 16; ++i) {
      targets.push_back(rng() % (data.back() + 2));
    }
    for (uint32_t t : targets) {
      uint32_t expected = uint32_t(
          std::lower_bound(data.begin(), data.end(), t) - data.begin());
      EXPECT_EQ(LowerBoundInBlockScalar(data.data(), n, t), expected);
      EXPECT_EQ(LowerBoundInBlock(data.data(), n, t), expected);
    }
  }
}

// ---- Cursor streaming and seeking ----------------------------------------

// A view with `ids[0..split)` frozen in `arena` and the rest as tail.
PostingView SplitView(PostingArena& arena, const std::vector<uint32_t>& ids,
                      size_t split) {
  uint32_t offset = 0;
  if (split > 0) {
    offset = arena.EncodeList(std::span<const uint32_t>(ids.data(), split));
  }
  return PostingView(arena.data(), offset, uint32_t(split),
                     std::span<const uint32_t>(ids.data() + split,
                                               ids.size() - split));
}

TEST(PostingCursorTest, StreamMatchesVectorAtEverySplit) {
  std::mt19937 rng(23);
  std::vector<uint32_t> ids = RandomIds(rng, 700, 9);
  const size_t splits[] = {0, 1, 127, 128, 129, 350, 699, 700};
  for (size_t split : splits) {
    PostingArena arena;
    PostingView view = SplitView(arena, ids, split);
    ASSERT_EQ(view.size(), ids.size());
    std::vector<uint32_t> streamed;
    for (uint32_t id : view) streamed.push_back(id);
    EXPECT_EQ(streamed, ids) << "split=" << split;
    EXPECT_EQ(view.ToVector(), ids) << "split=" << split;
  }
}

TEST(PostingCursorTest, SeekGEDifferentialAgainstLowerBound) {
  std::mt19937 rng(29);
  for (int trial = 0; trial < 40; ++trial) {
    size_t n = 1 + size_t(rng() % 900);
    std::vector<uint32_t> ids = RandomIds(rng, n, 1 + rng() % 500);
    size_t split = size_t(rng() % (n + 1));
    PostingArena arena;
    PostingView view = SplitView(arena, ids, split);

    // Non-decreasing random targets (the leapfrog discipline).
    std::vector<uint32_t> targets;
    uint32_t t = 0;
    while (t < ids.back() + 2) {
      targets.push_back(t);
      t += rng() % 97;
    }

    PostingCursor cursor(view);
    size_t floor_pos = 0;  // SeekGE never moves backwards
    for (uint32_t target : targets) {
      bool ok = cursor.SeekGE(target);
      size_t expected = std::max(
          floor_pos, size_t(std::lower_bound(ids.begin(), ids.end(), target) -
                            ids.begin()));
      EXPECT_EQ(GallopToLowerBound(ids, 0, target),
                size_t(std::lower_bound(ids.begin(), ids.end(), target) -
                       ids.begin()));
      EXPECT_EQ(cursor.position(), expected) << "target=" << target;
      EXPECT_EQ(ok, expected < ids.size());
      if (ok) {
        EXPECT_EQ(cursor.value(), ids[expected]);
        // Occasionally interleave a Next, as the kernel loop does.
        if (rng() % 4 == 0) {
          cursor.Next();
          ++expected;
        }
      }
      floor_pos = expected;
    }
  }
}

TEST(IntersectTest, MatchesSetIntersectionOverMixedTiers) {
  std::mt19937 rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    size_t k = 2 + rng() % 3;
    // One arena per list: EncodeList may reallocate, so views over a shared
    // arena must all be taken after the last append (FactIndex::Freeze
    // two-passes for exactly this reason).
    std::deque<PostingArena> arenas;
    std::vector<std::vector<uint32_t>> plain;
    for (size_t i = 0; i < k; ++i) {
      plain.push_back(RandomIds(rng, 50 + rng() % 500, 4));
    }
    std::vector<PostingView> views;
    for (const std::vector<uint32_t>& ids : plain) {
      views.push_back(SplitView(arenas.emplace_back(), ids,
                                size_t(rng() % (ids.size() + 1))));
    }
    std::vector<uint32_t> expected = plain[0];
    for (size_t i = 1; i < k; ++i) {
      std::vector<uint32_t> next;
      std::set_intersection(expected.begin(), expected.end(),
                            plain[i].begin(), plain[i].end(),
                            std::back_inserter(next));
      expected = std::move(next);
    }
    std::vector<uint32_t> got;
    IntersectPostingLists(views, got);
    EXPECT_EQ(got, expected) << "k=" << k << " trial=" << trial;
  }
}

// ---- FactIndex freezing --------------------------------------------------

TEST(FactIndexFreezeTest, RandomFreezePointsPreserveAllPostingLists) {
  std::mt19937 rng(37);
  World world;
  FactIndex index;
  std::vector<Term> terms;
  for (int i = 0; i < 40; ++i) {
    terms.push_back(world.MakeConstant("c" + std::to_string(i)));
  }
  // Reference model: plain vectors per predicate and per (pred, pos, term).
  std::map<uint64_t, std::vector<uint32_t>> by_pred;
  std::map<std::tuple<uint64_t, int, Term>, std::vector<uint32_t>> by_arg;

  auto pick = [&] { return terms[rng() % terms.size()]; };
  for (int i = 0; i < 4000; ++i) {
    Atom atom;
    switch (rng() % 3) {
      case 0: atom = Atom::Sub(pick(), pick()); break;
      case 1: atom = Atom::Member(pick(), pick()); break;
      default: atom = Atom::Data(pick(), pick(), pick()); break;
    }
    auto [id, fresh] = index.Insert(atom);
    if (fresh) {
      by_pred[atom.predicate()].push_back(id);
      for (int pos = 0; pos < atom.arity(); ++pos) {
        by_arg[{atom.predicate(), pos, atom.arg(pos)}].push_back(id);
      }
    }
    // Freeze at random points with random thresholds, sometimes twice.
    if (rng() % 300 == 0) index.Freeze(1 + rng() % 16);
  }
  index.Freeze();

  EXPECT_TRUE(index.PostingListsSorted());
  for (const auto& [pred, ids] : by_pred) {
    EXPECT_EQ(index.WithPredicate(PredicateId(pred)).ToVector(), ids);
  }
  for (const auto& [key, ids] : by_arg) {
    auto [pred, pos, term] = key;
    EXPECT_EQ(index.WithArgument(PredicateId(pred), pos, term).ToVector(),
              ids);
  }
  FactIndex::StorageStats stats = index.Stats();
  EXPECT_GT(stats.frozen_postings, 0u);
  EXPECT_GT(stats.arena_bytes, 0u);
}

TEST(FactIndexFreezeTest, InsertAfterFreezeAppendsToTail) {
  World world;
  FactIndex index;
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  std::vector<uint32_t> expected;
  for (int i = 0; i < 300; ++i) {
    Term t = world.MakeConstant("x" + std::to_string(i));
    auto [id, fresh] = index.Insert(Atom::Sub(t, b));
    ASSERT_TRUE(fresh);
    expected.push_back(id);
  }
  index.Freeze(1);
  PostingView frozen = index.WithArgument(pfl::kSub, 1, b);
  EXPECT_EQ(frozen.frozen_count(), 300u);
  EXPECT_TRUE(frozen.tail().empty());

  auto [id, fresh] = index.Insert(Atom::Sub(a, b));
  ASSERT_TRUE(fresh);
  expected.push_back(id);
  PostingView mixed = index.WithArgument(pfl::kSub, 1, b);
  EXPECT_EQ(mixed.frozen_count(), 300u);
  EXPECT_EQ(mixed.tail().size(), 1u);
  EXPECT_EQ(mixed.ToVector(), expected);

  index.Freeze(1);  // re-freeze folds the tail into the frozen tier
  PostingView refrozen = index.WithArgument(pfl::kSub, 1, b);
  EXPECT_EQ(refrozen.frozen_count(), 301u);
  EXPECT_TRUE(refrozen.tail().empty());
  EXPECT_EQ(refrozen.ToVector(), expected);
}

TEST(FactIndexTest, ClearReleasesHeapCapacity) {
  World world;
  FactIndex index;
  for (int i = 0; i < 5000; ++i) {
    index.Insert(Atom::Sub(world.MakeConstant("s" + std::to_string(i)),
                           world.MakeConstant("t" + std::to_string(i % 7))));
  }
  index.Freeze();
  size_t loaded = index.MemoryFootprint();
  ASSERT_GT(loaded, 100'000u);
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.WithPredicate(pfl::kSub).empty());
  // Swap-clear must actually return the bucket arrays, posting vectors and
  // arena to the allocator, not just logically empty them.
  EXPECT_LT(index.MemoryFootprint(), loaded / 100);

  // The cleared index is reusable and ids restart at 0.
  auto [id, fresh] = index.Insert(
      Atom::Sub(world.MakeConstant("a"), world.MakeConstant("b")));
  EXPECT_TRUE(fresh);
  EXPECT_EQ(id, 0u);
}

// ---- Metrics -------------------------------------------------------------

uint64_t CounterValue(const MetricsSnapshot& snapshot,
                      const std::string& name) {
  for (const auto& c : snapshot.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

TEST(PostingMetricsTest, CursorWorkIsCounted) {
  MetricsRegistry::set_enabled(true);
  MetricsRegistry::Get().Reset();
  std::mt19937 rng(41);
  PostingArena arena;
  std::vector<uint32_t> ids = RandomIds(rng, 4096, 3);
  uint32_t offset = arena.EncodeList(ids);
  PostingView view(arena.data(), offset, uint32_t(ids.size()), {});
  PostingCursor cursor(view);
  for (uint32_t target = 0; cursor.SeekGE(target); target += 512) {
  }
  MetricsSnapshot snapshot = MetricsRegistry::Get().Snapshot();
  MetricsRegistry::set_enabled(false);
  EXPECT_GT(CounterValue(snapshot, "index.seek_calls"), 0u);
  EXPECT_GT(CounterValue(snapshot, "index.blocks_decoded"), 0u);
  EXPECT_GT(CounterValue(snapshot, "index.seek_blocks_skipped"), 0u);
}

// ---- Snapshots -----------------------------------------------------------

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(SnapshotTest, IndexRoundTripsThroughFile) {
  std::mt19937 rng(43);
  World world;
  FactIndex index;
  std::vector<Term> terms;
  for (int i = 0; i < 25; ++i) {
    terms.push_back(world.MakeConstant("k" + std::to_string(i)));
  }
  std::vector<Atom> inserted;
  for (int i = 0; i < 1500; ++i) {
    Atom atom = rng() % 2 == 0
                    ? Atom::Sub(terms[rng() % 25], terms[rng() % 25])
                    : Atom::Data(terms[rng() % 25], terms[rng() % 25],
                                 terms[rng() % 25]);
    if (index.Insert(atom).second) inserted.push_back(atom);
  }
  const std::string path = TempPath("roundtrip.snap");
  ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path, 0x0).ok());

  World world2;
  FactIndex loaded;
  Result<SnapshotInfo> info = LoadFactIndexSnapshot(path, world2, loaded);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotFormatVersion);
  EXPECT_EQ(info->atom_count, uint32_t(inserted.size()));
  ASSERT_EQ(loaded.size(), index.size());

  // Atom array, id map, and both posting tables must agree exactly.
  for (uint32_t id = 0; id < index.size(); ++id) {
    EXPECT_EQ(loaded.at(id), index.at(id));
  }
  for (const Atom& atom : inserted) {
    EXPECT_EQ(loaded.IdOf(atom), index.IdOf(atom));
  }
  EXPECT_EQ(loaded.WithPredicate(pfl::kSub).ToVector(),
            index.WithPredicate(pfl::kSub).ToVector());
  EXPECT_EQ(loaded.WithPredicate(pfl::kData).ToVector(),
            index.WithPredicate(pfl::kData).ToVector());
  for (Term t : terms) {
    for (int pos = 0; pos < 2; ++pos) {
      EXPECT_EQ(loaded.WithArgument(pfl::kSub, pos, t).ToVector(),
                index.WithArgument(pfl::kSub, pos, t).ToVector());
    }
  }
  EXPECT_TRUE(loaded.PostingListsSorted());

  // A loaded index stays writable: inserts append past the mapped prefix
  // and a later Freeze re-encodes from the mapped arena onto the heap.
  Atom fresh_atom = Atom::Member(terms[0], terms[1]);
  auto [fresh_id, fresh] = loaded.Insert(fresh_atom);
  EXPECT_TRUE(fresh);
  EXPECT_EQ(fresh_id, uint32_t(inserted.size()));
  loaded.Freeze(1);
  EXPECT_EQ(loaded.IdOf(fresh_atom), fresh_id);
  EXPECT_EQ(loaded.WithPredicate(pfl::kSub).ToVector(),
            index.WithPredicate(pfl::kSub).ToVector());
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadIntoPopulatedIdenticalWorldSucceeds) {
  World world;
  FactIndex index;
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  index.Insert(Atom::Sub(a, b));
  const std::string path = TempPath("sameworld.snap");
  ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path).ok());
  // Loading back into the *same* world must succeed: the symbols intern to
  // their existing ids.
  FactIndex loaded;
  Result<SnapshotInfo> info = LoadFactIndexSnapshot(path, world, loaded);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(loaded.IdOf(Atom::Sub(a, b)), 0u);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadIntoConflictingWorldFails) {
  World world;
  FactIndex index;
  index.Insert(
      Atom::Sub(world.MakeConstant("a"), world.MakeConstant("b")));
  const std::string path = TempPath("conflict.snap");
  ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path).ok());

  World other;
  other.MakeConstant("something_else");  // id 0 taken by a different name
  FactIndex loaded;
  Result<SnapshotInfo> info = LoadFactIndexSnapshot(path, other, loaded);
  EXPECT_FALSE(info.ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, RejectsCorruptAndTruncatedFiles) {
  World world;
  FactIndex index;
  for (int i = 0; i < 100; ++i) {
    index.Insert(Atom::Sub(world.MakeConstant("n" + std::to_string(i)),
                           world.MakeConstant("m")));
  }
  const std::string path = TempPath("corrupt.snap");
  ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path).ok());

  {
    World w;
    FactIndex idx;
    EXPECT_FALSE(
        LoadFactIndexSnapshot(TempPath("does_not_exist.snap"), w, idx).ok());
  }
  {
    // Flip a magic byte.
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
    World w;
    FactIndex idx;
    EXPECT_FALSE(LoadFactIndexSnapshot(path, w, idx).ok());
  }
  // Rewrite, then truncate to half.
  ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path).ok());
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
    World w;
    FactIndex idx;
    EXPECT_FALSE(LoadFactIndexSnapshot(path, w, idx).ok());
  }
  std::remove(path.c_str());
}

// v2 hardening (DESIGN.md §14.3): the header carries a CRC-32 over
// itself and one over the eagerly-read symbols section, so a torn or
// bit-flipped snapshot is rejected before any offset is trusted — the
// daemon recovery path must never chase pointers from a half-written
// header.
TEST(SnapshotTest, RejectsHeaderAndSymbolsCorruption) {
  World world;
  FactIndex index;
  for (int i = 0; i < 50; ++i) {
    index.Insert(Atom::Sub(world.MakeConstant("h" + std::to_string(i)),
                           world.MakeConstant("t")));
  }
  const std::string path = TempPath("crc.snap");

  auto rewrite = [&] {
    ASSERT_TRUE(WriteFactIndexSnapshot(index, world, path).ok());
  };
  auto load_fails = [&](const char* what) {
    World w;
    FactIndex idx;
    EXPECT_FALSE(LoadFactIndexSnapshot(path, w, idx).ok()) << what;
  };
  auto flip_byte = [&](long offset) {
    FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  };
  auto read_u64 = [&](long offset) {
    FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    std::fseek(f, offset, SEEK_SET);
    uint64_t value = 0;
    EXPECT_EQ(std::fread(&value, sizeof value, 1, f), 1u);
    std::fclose(f);
    return value;
  };

  // Shorter than one 96-byte header: rejected before any field is read.
  rewrite();
  ASSERT_EQ(truncate(path.c_str(), 64), 0);
  load_fails("truncated header");

  // A flipped count field breaks the header CRC even though magic and
  // version still read clean.
  rewrite();
  flip_byte(16);  // atom_count
  load_fails("bad header CRC");

  // A flipped byte inside the symbols blob breaks the symbols CRC; the
  // header itself is intact, so this is the second line of defense.
  rewrite();
  const long symbols_offset = long(read_u64(72));
  const long symbols_size = long(read_u64(80));
  ASSERT_GT(symbols_size, 16);
  flip_byte(symbols_offset + 16);
  load_fails("bad symbols CRC");

  // File ends mid-symbols-section: bounds check, not a crash.
  rewrite();
  ASSERT_EQ(truncate(path.c_str(), symbols_offset + 4), 0);
  load_fails("truncated symbols section");

  // Untouched rewrite still loads: the harness flips real bytes, not a
  // format quirk.
  rewrite();
  World w;
  FactIndex idx;
  EXPECT_TRUE(LoadFactIndexSnapshot(path, w, idx).ok());
  std::remove(path.c_str());
}

TEST(SnapshotTest, KbSaveLoadPreservesAnswersAndSaturation) {
  const char* kProgram =
      "alice : student. bob : student. carol : professor.\n"
      "student :: person. professor :: person.\n"
      "alice[advisor -> carol].\n"
      "person[name *=> string].\n";
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(kb.Load(kProgram).ok());
  ASSERT_TRUE(kb.Saturate().ok());
  Result<std::vector<std::vector<Term>>> before = kb.Answer("X : person");
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->empty());

  const std::string path = TempPath("kb.snap");
  ASSERT_TRUE(kb.SaveSnapshot(path).ok());

  World world2;
  KnowledgeBase restored(world2);
  ASSERT_TRUE(restored.LoadSnapshot(path).ok());
  EXPECT_TRUE(restored.saturated());
  EXPECT_EQ(restored.size(), kb.size());

  Result<std::vector<std::vector<Term>>> after = restored.Answer("X : person");
  ASSERT_TRUE(after.ok());
  auto names = [](World& w,
                  const std::vector<std::vector<Term>>& tuples) {
    std::set<std::string> out;
    for (const auto& tuple : tuples) out.insert(w.NameOf(tuple[0]));
    return out;
  };
  EXPECT_EQ(names(world2, *after), names(world, *before));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace floq
