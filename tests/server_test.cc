// Tests for the `floq serve` daemon stack (DESIGN.md §16): the wire
// protocol, the write-ahead log, the durable registry, the live daemon's
// degradation ladder — and the headline crash-recovery suite, which uses
// the deterministic fault-injection points (util/fault.h) to kill a real
// daemon process at every durability-critical instruction and assert
// that recovery preserves exactly the acknowledged state and the full
// containment lattice.
//
// The crash suite re-executes this test binary as the daemon: main()
// recognizes `--daemon-child <dir> <socket> [k=v...]` and runs RunDaemon
// instead of gtest, so fork + execv(/proc/self/exe) gives each scenario
// a genuine process to kill -9 (via the fault point's _exit) and restart.

#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "server/wal.h"
#include "util/deadline.h"
#include "util/fault.h"

namespace floq::server {
namespace {

// --- helpers --------------------------------------------------------------

std::string MakeTempDir() {
  char buffer[] = "/tmp/floqsrvXXXXXX";  // short: AF_UNIX paths cap ~107B
  const char* dir = mkdtemp(buffer);
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

int ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// One request, one reply, fresh connection. Error Status when the daemon
// is unreachable or drops the connection mid-request (how a crashed
// daemon presents to a client).
Result<Json> Request(const std::string& socket_path, const Json& request,
                     int64_t timeout_ms = 20'000) {
  int fd = ConnectUnix(socket_path);
  if (fd < 0) return InternalError("connect " + socket_path);
  Status sent = WriteFrame(fd, request.Serialize(),
                           Deadline::AfterMillis(timeout_ms));
  if (!sent.ok()) {
    ::close(fd);
    return sent;
  }
  FrameDecoder decoder;
  Result<std::string> payload =
      ReadFrame(fd, decoder, Deadline::AfterMillis(timeout_ms));
  ::close(fd);
  if (!payload.ok()) return payload.status();
  return ParseJson(*payload);
}

Json MakeRequest(const std::string& cmd) {
  Json request = Json::Object();
  request.Set("cmd", Json::String(cmd));
  return request;
}

Json RegisterRequest(const std::string& name, const std::string& query) {
  Json request = MakeRequest("register");
  request.Set("name", Json::String(name));
  request.Set("query", Json::String(query));
  return request;
}

struct DaemonProc {
  pid_t pid = -1;
  std::string dir;
  std::string socket_path;
};

// fork + execv(/proc/self/exe --daemon-child ...): a real process whose
// fault-point _exit(42) is indistinguishable from kill -9 for the files
// on disk. `fault` arms FLOQ_FAULT in the child only.
DaemonProc SpawnDaemon(const std::string& dir, const std::string& fault = "",
                       std::vector<std::string> extra = {}) {
  DaemonProc daemon;
  daemon.dir = dir;
  daemon.socket_path = dir + "/floq.sock";
  pid_t pid = fork();
  if (pid == 0) {
    if (fault.empty()) {
      unsetenv("FLOQ_FAULT");
    } else {
      setenv("FLOQ_FAULT", fault.c_str(), 1);
    }
    std::vector<std::string> args = {"/proc/self/exe", "--daemon-child", dir,
                                     daemon.socket_path};
    for (std::string& e : extra) args.push_back(std::move(e));
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    execv("/proc/self/exe", argv.data());
    _exit(127);
  }
  daemon.pid = pid;
  return daemon;
}


// Kills a daemon leaked by an assertion failure on scope exit. A leaked
// child inherits the test's stdout pipe; without this, one failed test
// hangs any harness waiting for EOF on that pipe.
class DaemonReaper {
 public:
  explicit DaemonReaper(DaemonProc& daemon) : daemon_(daemon) {}
  ~DaemonReaper() {
    if (daemon_.pid <= 0) return;
    kill(daemon_.pid, SIGKILL);
    int status = 0;
    waitpid(daemon_.pid, &status, 0);
  }

 private:
  DaemonProc& daemon_;
};

// Polls until the daemon answers a ping (or dies / 5s pass).
bool WaitForDaemon(const DaemonProc& daemon) {
  for (int i = 0; i < 250; ++i) {
    Result<Json> pong = Request(daemon.socket_path, MakeRequest("ping"), 2000);
    if (pong.ok()) return true;
    int status = 0;
    if (waitpid(daemon.pid, &status, WNOHANG) == daemon.pid) return false;
    usleep(20'000);
  }
  return false;
}

int WaitForExit(DaemonProc& daemon) {
  int status = 0;
  if (waitpid(daemon.pid, &status, 0) != daemon.pid) return -1;
  daemon.pid = -1;  // reaped: the DaemonReaper must not touch it
  return WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
}

// Graceful stop through the protocol; returns the process exit code.
int ShutdownDaemon(DaemonProc& daemon) {
  (void)Request(daemon.socket_path, MakeRequest("shutdown"));
  return WaitForExit(daemon);
}

// The workload every daemon test registers: a mix of equivalent,
// strictly contained, and incomparable queries so the maintained lattice
// has real classes and real edges to preserve across crashes.
const std::vector<std::pair<std::string, std::string>>& Workload() {
  static const std::vector<std::pair<std::string, std::string>> queries = {
      {"students", "q(X) :- X : student."},
      {"students2", "q(Y) :- Y : student, Y : student."},  // ≡ students
      {"people", "q(X) :- X : person."},
      {"advised", "q(X) :- X : student, X[advisor -> Y]."},  // ⊆ students
      {"pairs", "q(X, Y) :- X[advisor -> Y]."},
  };
  return queries;
}

// Deterministic lattice fingerprint: the classify reply minus the epoch
// (recovery replays bump epochs; the lattice itself must not move).
std::string LatticeFingerprint(const Json& classify_reply) {
  Json fingerprint = Json::Object();
  const Json* classes = classify_reply.Find("classes");
  const Json* hasse = classify_reply.Find("hasse");
  EXPECT_NE(classes, nullptr);
  EXPECT_NE(hasse, nullptr);
  if (classes != nullptr) fingerprint.Set("classes", *classes);
  if (hasse != nullptr) fingerprint.Set("hasse", *hasse);
  return fingerprint.Serialize();
}

// Full cached containment matrix over the workload, as resolution names.
std::vector<std::string> ContainMatrix(const std::string& socket_path) {
  std::vector<std::string> matrix;
  for (const auto& [lhs, lhs_text] : Workload()) {
    for (const auto& [rhs, rhs_text] : Workload()) {
      Json request = MakeRequest("contain");
      request.Set("lhs", Json::String(lhs));
      request.Set("rhs", Json::String(rhs));
      Result<Json> reply = Request(socket_path, request);
      EXPECT_TRUE(reply.ok()) << reply.status().ToString();
      if (!reply.ok()) {
        matrix.push_back("ERROR");
        continue;
      }
      const Json* resolution = reply->Find("resolution");
      matrix.push_back(resolution != nullptr && resolution->is_string()
                           ? resolution->AsString()
                           : "MALFORMED");
    }
  }
  return matrix;
}

// --- protocol unit tests --------------------------------------------------

TEST(ProtocolTest, JsonRoundTripIsDeterministic) {
  Json object = Json::Object();
  object.Set("cmd", Json::String("contain"));
  object.Set("count", Json::Number(42));
  object.Set("flag", Json::Bool(true));
  object.Set("nothing", Json::Null());
  Json array = Json::Array();
  array.Append(Json::String("a\"b\\c\n"));
  array.Append(Json::Number(-1.5));
  object.Set("items", array);

  std::string wire = object.Serialize();
  EXPECT_EQ(wire,
            "{\"cmd\":\"contain\",\"count\":42,\"flag\":true,"
            "\"nothing\":null,\"items\":[\"a\\\"b\\\\c\\n\",-1.5]}");
  Result<Json> parsed = ParseJson(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Serialize(), wire);
}

TEST(ProtocolTest, ParseRejectsMalformedAndDeepInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  std::string deep(kMaxJsonDepth + 2, '[');
  deep += std::string(kMaxJsonDepth + 2, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
  std::string shallow(kMaxJsonDepth - 1, '[');
  shallow += std::string(kMaxJsonDepth - 1, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(ProtocolTest, FrameDecoderHandlesPartialAndBackToBackFrames) {
  std::string first = EncodeFrame("{\"a\":1}");
  std::string second = EncodeFrame("{\"b\":2}");
  std::string stream = first + second;

  FrameDecoder decoder;
  // Byte-at-a-time: each frame completes exactly on its final byte.
  std::vector<std::string> decoded;
  for (size_t i = 0; i < stream.size(); ++i) {
    decoder.Append(stream.data() + i, 1);
    Result<std::optional<std::string>> frame = decoder.Next();
    ASSERT_TRUE(frame.ok());
    if (frame->has_value()) {
      EXPECT_TRUE(i + 1 == first.size() || i + 1 == stream.size());
      decoded.push_back(**frame);
    }
  }
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0], "{\"a\":1}");
  EXPECT_EQ(decoded[1], "{\"b\":2}");
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(ProtocolTest, FrameDecoderPoisonsOnOversizedHeader) {
  uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  std::memcpy(header, &huge, 4);
  FrameDecoder decoder;
  decoder.Append(header, 4);
  EXPECT_FALSE(decoder.Next().ok());
  // Poisoned: stays failed even if more bytes arrive.
  decoder.Append("xxxx", 4);
  EXPECT_FALSE(decoder.Next().ok());
}

// --- WAL unit tests -------------------------------------------------------

TEST(WalTest, AppendsSurviveReopen) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/test.wal";
  {
    Wal wal;
    WalReplay replay;
    ASSERT_TRUE(wal.Open(path, &replay).ok());
    EXPECT_TRUE(replay.records.empty());
    ASSERT_TRUE(wal.Append("one").ok());
    ASSERT_TRUE(wal.Append("two").ok());
    ASSERT_TRUE(wal.Append(std::string(1000, 'x')).ok());
  }
  Wal wal;
  WalReplay replay;
  ASSERT_TRUE(wal.Open(path, &replay).ok());
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0], "one");
  EXPECT_EQ(replay.records[1], "two");
  EXPECT_EQ(replay.records[2], std::string(1000, 'x'));
  EXPECT_FALSE(replay.truncated_tail);
}

TEST(WalTest, TornTailIsTruncatedNotFatal) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/test.wal";
  {
    Wal wal;
    WalReplay replay;
    ASSERT_TRUE(wal.Open(path, &replay).ok());
    ASSERT_TRUE(wal.Append("kept").ok());
    ASSERT_TRUE(wal.Append("torn-away").ok());
  }
  // Chop into the middle of the second record: a crash mid-write.
  struct stat st{};
  ASSERT_EQ(stat(path.c_str(), &st), 0);
  ASSERT_EQ(truncate(path.c_str(), st.st_size - 4), 0);

  Wal wal;
  WalReplay replay;
  ASSERT_TRUE(wal.Open(path, &replay).ok());
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0], "kept");
  EXPECT_TRUE(replay.truncated_tail);

  // The tail was repaired on open: appends land cleanly and a further
  // reopen sees both records with no truncation flag.
  ASSERT_TRUE(wal.Append("after-repair").ok());
  wal.Close();
  Wal again;
  WalReplay replay2;
  ASSERT_TRUE(again.Open(path, &replay2).ok());
  ASSERT_EQ(replay2.records.size(), 2u);
  EXPECT_EQ(replay2.records[1], "after-repair");
  EXPECT_FALSE(replay2.truncated_tail);
}

TEST(WalTest, MidLogCorruptionFailsLoudly) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/test.wal";
  {
    Wal wal;
    WalReplay replay;
    ASSERT_TRUE(wal.Open(path, &replay).ok());
    ASSERT_TRUE(wal.Append("first-record-payload").ok());
    ASSERT_TRUE(wal.Append("second-record-payload").ok());
    ASSERT_TRUE(wal.Append("third-record-payload").ok());
  }
  // Flip one payload byte of the FIRST record: its CRC now mismatches
  // but valid records follow, so this is corruption, not a torn tail.
  int fd = open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  char byte = 0;
  ASSERT_EQ(pread(fd, &byte, 1, 8 + 8 + 2), 1);  // magic + frame + 2
  byte ^= 0x40;
  ASSERT_EQ(pwrite(fd, &byte, 1, 8 + 8 + 2), 1);
  close(fd);

  Wal wal;
  WalReplay replay;
  EXPECT_FALSE(wal.Open(path, &replay).ok());
}

// --- registry unit tests --------------------------------------------------

RegistryOptions TestRegistryOptions(const std::string& dir,
                                    int checkpoint_every = 32) {
  RegistryOptions options;
  options.dir = dir;
  options.checkpoint_every = checkpoint_every;
  options.containment.jobs = 1;
  return options;
}

TEST(RegistryTest, RegisterUnregisterAndSnapshotIsolation) {
  std::string dir = MakeTempDir();
  QueryRegistry registry(TestRegistryOptions(dir));
  ASSERT_TRUE(registry.Open().ok());

  ASSERT_TRUE(registry.Register("a", "q(X) :- X : student.").ok());
  std::shared_ptr<const RegistrySnapshotView> before = registry.Snapshot();
  ASSERT_TRUE(registry.Register("b", "q(X) :- X : person.").ok());

  // The old snapshot is immutable: it still sees one entry.
  EXPECT_EQ(before->entries.size(), 1u);
  std::shared_ptr<const RegistrySnapshotView> after = registry.Snapshot();
  EXPECT_EQ(after->entries.size(), 2u);
  EXPECT_GT(after->epoch, before->epoch);

  // Identical re-register is an acked no-op; conflicting text refuses.
  Result<QueryRegistry::RegisterOutcome> again =
      registry.Register("a", "q(X) :- X : student.");
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->already_registered);
  EXPECT_FALSE(registry.Register("a", "q(X) :- X : person.").ok());

  ASSERT_TRUE(registry.Unregister("a").ok());
  EXPECT_FALSE(registry.Unregister("a").ok());  // NotFound now
  EXPECT_EQ(registry.Snapshot()->entries.size(), 1u);
  EXPECT_EQ(registry.Snapshot()->Find("b")->name, "b");
}

TEST(RegistryTest, ReopenRecoversEntriesAndLattice) {
  std::string dir = MakeTempDir();
  std::string fingerprint_before;
  {
    QueryRegistry registry(TestRegistryOptions(dir, /*checkpoint_every=*/2));
    ASSERT_TRUE(registry.Open().ok());
    for (const auto& [name, text] : Workload()) {
      ASSERT_TRUE(registry.Register(name, text).ok()) << name;
    }
    ASSERT_TRUE(registry.Unregister("people").ok());
    std::shared_ptr<const RegistrySnapshotView> snap = registry.Snapshot();
    for (Resolution r : snap->resolution[0]) {
      fingerprint_before += ResolutionName(r);
      fingerprint_before += ',';
    }
    // No clean shutdown: drop the registry with WAL + checkpoint as-is.
  }
  QueryRegistry recovered(TestRegistryOptions(dir));
  ASSERT_TRUE(recovered.Open().ok());
  std::shared_ptr<const RegistrySnapshotView> snap = recovered.Snapshot();
  ASSERT_EQ(snap->entries.size(), Workload().size() - 1);
  EXPECT_EQ(snap->Find("people"), nullptr);
  EXPECT_NE(snap->Find("students"), nullptr);
  std::string fingerprint_after;
  for (Resolution r : snap->resolution[0]) {
    fingerprint_after += ResolutionName(r);
    fingerprint_after += ',';
  }
  EXPECT_EQ(fingerprint_after, fingerprint_before);
}

TEST(RegistryTest, RejectsInvalidNames) {
  std::string dir = MakeTempDir();
  QueryRegistry registry(TestRegistryOptions(dir));
  ASSERT_TRUE(registry.Open().ok());
  EXPECT_FALSE(registry.Register("", "q(X) :- X : student.").ok());
  EXPECT_FALSE(registry.Register("has space", "q(X) :- X : student.").ok());
  EXPECT_FALSE(registry.Register(std::string(300, 'a'),
                                 "q(X) :- X : student.").ok());
  // A parse failure must not reach the WAL: the registry stays clean.
  EXPECT_FALSE(registry.Register("bad", "q(X :-").ok());
  EXPECT_EQ(registry.Snapshot()->entries.size(), 0u);
}

// --- live daemon tests ----------------------------------------------------

TEST(DaemonTest, FullSessionAgainstLiveDaemon) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir);
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  for (const auto& [name, text] : Workload()) {
    Result<Json> reply =
        Request(daemon.socket_path, RegisterRequest(name, text));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(*reply->GetBool("ok")) << reply->Serialize();
  }

  // Cached contain: advised ⊆ students, not vice versa.
  Json contain = MakeRequest("contain");
  contain.Set("lhs", Json::String("advised"));
  contain.Set("rhs", Json::String("students"));
  Result<Json> verdict = Request(daemon.socket_path, contain);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->Find("resolution")->AsString(), "CONTAINED");
  EXPECT_TRUE(*verdict->GetBool("cached"));

  contain.Set("lhs", Json::String("students"));
  contain.Set("rhs", Json::String("advised"));
  verdict = Request(daemon.socket_path, contain);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->Find("resolution")->AsString(), "NOT_CONTAINED");

  // Ad-hoc contain against a registered name: fresh chase, same verdict.
  Json adhoc = MakeRequest("contain");
  adhoc.Set("lhs_query",
            Json::String("q(X) :- X : student, X[advisor -> Y]."));
  adhoc.Set("rhs", Json::String("students"));
  verdict = Request(daemon.socket_path, adhoc);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->Find("resolution")->AsString(), "CONTAINED");
  EXPECT_FALSE(*verdict->GetBool("cached"));

  // classify groups the two equivalent student queries.
  Result<Json> classify = Request(daemon.socket_path, MakeRequest("classify"));
  ASSERT_TRUE(classify.ok());
  std::string fingerprint = LatticeFingerprint(*classify);
  EXPECT_NE(fingerprint.find("students2"), std::string::npos);

  // NOT_FOUND is typed, not a verdict.
  Json missing = MakeRequest("contain");
  missing.Set("lhs", Json::String("students"));
  missing.Set("rhs", Json::String("no-such-query"));
  verdict = Request(daemon.socket_path, missing);
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict->GetBool("ok"));
  EXPECT_EQ(verdict->Find("code")->AsString(), "NOT_FOUND");

  // lint over the wire.
  Json lint = MakeRequest("lint");
  lint.Set("program", Json::String("q(X) :- X : student.\nq(X) :- Y : person."));
  Result<Json> lint_reply = Request(daemon.socket_path, lint);
  ASSERT_TRUE(lint_reply.ok());
  EXPECT_TRUE(*lint_reply->GetBool("ok"));

  // status reflects the registered set.
  Result<Json> status = Request(daemon.socket_path, MakeRequest("status"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status->GetInt("queries"),
            static_cast<int64_t>(Workload().size()));

  Result<Json> metrics = Request(daemon.socket_path, MakeRequest("metrics"));
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(*metrics->GetBool("ok"));

  // Unknown command is INVALID, connection stays usable (new conn here).
  Result<Json> bad = Request(daemon.socket_path, MakeRequest("frobnicate"));
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->Find("code")->AsString(), "INVALID");

  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

TEST(DaemonTest, RegistrationsSurviveGracefulRestart) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir);
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));
  for (const auto& [name, text] : Workload()) {
    ASSERT_TRUE(Request(daemon.socket_path, RegisterRequest(name, text)).ok());
  }
  std::vector<std::string> matrix_before = ContainMatrix(daemon.socket_path);
  ASSERT_EQ(ShutdownDaemon(daemon), 0);

  DaemonProc restarted = SpawnDaemon(dir);
  DaemonReaper restarted_reaper(restarted);
  ASSERT_TRUE(WaitForDaemon(restarted));
  // The drain checkpointed: recovery needs no WAL replay, and the
  // lattice answers identically.
  EXPECT_EQ(ContainMatrix(restarted.socket_path), matrix_before);
  Result<Json> status = Request(restarted.socket_path, MakeRequest("status"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status->GetInt("wal_mutations"), 0);
  EXPECT_EQ(ShutdownDaemon(restarted), 0);
}

TEST(DaemonTest, MalformedFramesGetTypedRepliesAndClose) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir);
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  // Valid frame, invalid JSON → BAD_REQUEST, then the server closes.
  int fd = ConnectUnix(daemon.socket_path);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteFrame(fd, "not json {{{", Deadline::AfterMillis(5000)).ok());
  FrameDecoder decoder;
  Result<std::string> reply =
      ReadFrame(fd, decoder, Deadline::AfterMillis(5000));
  ASSERT_TRUE(reply.ok());
  Result<Json> parsed = ParseJson(*reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("code")->AsString(), "BAD_REQUEST");
  Result<std::string> eof = ReadFrame(fd, decoder, Deadline::AfterMillis(5000));
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);  // clean EOF
  ::close(fd);

  // Oversized frame header → same ladder rung.
  fd = ConnectUnix(daemon.socket_path);
  ASSERT_GE(fd, 0);
  uint32_t huge = kMaxFrameBytes + 1;
  char header[4];
  std::memcpy(header, &huge, 4);
  ASSERT_EQ(write(fd, header, 4), 4);
  FrameDecoder decoder2;
  reply = ReadFrame(fd, decoder2, Deadline::AfterMillis(5000));
  ASSERT_TRUE(reply.ok());
  parsed = ParseJson(*reply);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->Find("code")->AsString(), "BAD_REQUEST");
  ::close(fd);

  // The daemon shrugged it all off.
  EXPECT_TRUE(Request(daemon.socket_path, MakeRequest("ping")).ok());
  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

#ifdef FLOQ_FAULT_INJECT
TEST(DaemonTest, AdmissionGateShedsBeyondQueueLimit) {
  std::string dir = MakeTempDir();
  // One worker, zero queue: any request arriving while another runs is
  // shed immediately with OVERLOADED — never silently queued. The
  // stall-type fault point pins the first contain inside its admission
  // permit for 2 s, so the probe deterministically finds the worker
  // busy without depending on any query being expensive.
  DaemonProc daemon = SpawnDaemon(dir, "serve.contain.stall",
                                  {"workers=1", "queue_limit=0"});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  Json slow = MakeRequest("contain");
  slow.Set("lhs_query", Json::String("q(X) :- X : student."));
  slow.Set("rhs_query", Json::String("q(Y) :- Y : student."));

  int slow_fd = ConnectUnix(daemon.socket_path);
  ASSERT_GE(slow_fd, 0);
  ASSERT_TRUE(
      WriteFrame(slow_fd, slow.Serialize(), Deadline::AfterMillis(5000)).ok());
  usleep(300'000);  // let the worker enter the stalled contain

  Result<Json> shed = Request(daemon.socket_path, MakeRequest("ping"));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_FALSE(*shed->GetBool("ok"));
  const Json* code = shed->Find("code");
  ASSERT_NE(code, nullptr) << shed->Serialize();
  EXPECT_EQ(code->AsString(), "OVERLOADED");

  // Drain while the stalled contain is still in flight: the second
  // signal escalates to cancellation through the shared token, the
  // daemon still answers the slow client, and it exits 0.
  kill(daemon.pid, SIGTERM);
  usleep(100'000);
  kill(daemon.pid, SIGTERM);
  FrameDecoder decoder;
  Result<std::string> payload =
      ReadFrame(slow_fd, decoder, Deadline::AfterMillis(15'000));
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  Result<Json> parsed = ParseJson(*payload);
  ASSERT_TRUE(parsed.ok());
  if (const Json* resolution = parsed->Find("resolution");
      resolution != nullptr) {
    // The trivial pair may still resolve soundly before the cancelled
    // token is observed; a cancelled check must degrade to UNKNOWN —
    // either way, never an unsound verdict.
    EXPECT_TRUE(resolution->AsString() == "CONTAINED" ||
                resolution->AsString() == "UNKNOWN")
        << parsed->Serialize();
  } else {
    EXPECT_FALSE(*parsed->GetBool("ok"));
  }
  ::close(slow_fd);
  EXPECT_EQ(WaitForExit(daemon), 0);
}
#endif  // FLOQ_FAULT_INJECT

TEST(DaemonTest, IdleConnectionsAreDisconnected) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir, "", {"idle_timeout_ms=400"});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));
  int fd = ConnectUnix(daemon.socket_path);
  ASSERT_GE(fd, 0);
  // Say nothing; the daemon hangs up on us.
  FrameDecoder decoder;
  Result<std::string> read =
      ReadFrame(fd, decoder, Deadline::AfterMillis(5000));
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound)
      << read.status().ToString();
  ::close(fd);
  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

// --- observability: metrics snapshot, Prometheus, request attribution -----

std::string ReadFileOrEmpty(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::string();
  std::string content;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(file);
  return content;
}

TEST(ObservabilityTest, MetricsOutWrittenOnSigtermDrain) {
  std::string dir = MakeTempDir();
  std::string metrics_path = dir + "/final-metrics.json";
  DaemonProc daemon = SpawnDaemon(dir, "", {"metrics_out=" + metrics_path});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));
  ASSERT_TRUE(Request(daemon.socket_path,
                      RegisterRequest("students", "q(X) :- X : student."))
                  .ok());

  kill(daemon.pid, SIGTERM);
  EXPECT_EQ(WaitForExit(daemon), 0);

  // The drain path wrote a final snapshot: canonical JSON with the serve
  // counters armed by the daemon itself.
  std::string snapshot = ReadFileOrEmpty(metrics_path);
  ASSERT_FALSE(snapshot.empty()) << metrics_path << " missing";
  EXPECT_NE(snapshot.find("\"counters\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"gauges\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"serve.requests\""), std::string::npos);
  EXPECT_NE(snapshot.find("\"serve.wal.append.records\": 1"),
            std::string::npos)
      << snapshot;
}

TEST(ObservabilityTest, RepliesCarryRequestIdsAndClientTraceIds) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir);
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  // Server-assigned ids are monotonically increasing across requests.
  Result<Json> first = Request(daemon.socket_path, MakeRequest("ping"));
  ASSERT_TRUE(first.ok());
  Result<int64_t> first_id = first->GetInt("request_id");
  ASSERT_TRUE(first_id.ok()) << first->Serialize();
  Result<Json> second = Request(daemon.socket_path, MakeRequest("status"));
  ASSERT_TRUE(second.ok());
  Result<int64_t> second_id = second->GetInt("request_id");
  ASSERT_TRUE(second_id.ok());
  EXPECT_GT(*second_id, *first_id);

  // A client-supplied trace id echoes back on the reply, even a typed
  // error reply.
  Json bad = MakeRequest("frobnicate");
  bad.Set("trace_id", Json::String("deadbeef-cafe"));
  Result<Json> reply = Request(daemon.socket_path, bad);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(*reply->GetBool("ok"));
  Result<std::string> echoed = reply->GetString("trace_id");
  ASSERT_TRUE(echoed.ok()) << reply->Serialize();
  EXPECT_EQ(*echoed, "deadbeef-cafe");
  EXPECT_TRUE(reply->GetInt("request_id").ok()) << reply->Serialize();

  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

TEST(ObservabilityTest, PrometheusOverProtocol) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir);
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));
  ASSERT_TRUE(Request(daemon.socket_path,
                      RegisterRequest("students", "q(X) :- X : student."))
                  .ok());

  Json request = MakeRequest("metrics");
  request.Set("format", Json::String("prometheus"));
  Result<Json> reply = Request(daemon.socket_path, request);
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(*reply->GetBool("ok")) << reply->Serialize();
  Result<std::string> body = reply->GetString("body");
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body->find("# TYPE floq_serve_requests_total counter"),
            std::string::npos);
  EXPECT_NE(body->find("# TYPE floq_serve_cmd_register_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body->find("floq_serve_wal_fsync_us_bucket"), std::string::npos);
  EXPECT_NE(body->find("# TYPE floq_serve_queue_depth gauge"),
            std::string::npos);

  // An unknown format is a typed INVALID, not a guess.
  request.Set("format", Json::String("xml"));
  reply = Request(daemon.socket_path, request);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(*reply->GetBool("ok"));
  EXPECT_EQ(reply->Find("code")->AsString(), "INVALID");

  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

// Binds an ephemeral loopback port, frees it, and returns its number —
// the next bind can lose a race for it, but the window is tiny and the
// test fails loudly rather than silently.
int ProbeFreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    return -1;
  }
  ::close(fd);
  return int(ntohs(addr.sin_port));
}

TEST(ObservabilityTest, HttpMetricsEndpointServesExposition) {
  int port = ProbeFreePort();
  ASSERT_GT(port, 0);
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(
      dir, "", {"http_metrics_port=" + std::to_string(port)});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(uint16_t(port));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  const char request[] = "GET /metrics HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(fd, request, sizeof request - 1),
            ssize_t(sizeof request - 1));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, size_t(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("floq_serve_requests_total"), std::string::npos);

  // Non-/metrics paths 404 without killing the listener.
  fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char bad[] = "GET /other HTTP/1.0\r\n\r\n";
  ASSERT_EQ(::write(fd, bad, sizeof bad - 1), ssize_t(sizeof bad - 1));
  response.clear();
  while ((n = ::read(fd, buffer, sizeof buffer)) > 0) {
    response.append(buffer, size_t(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("404"), std::string::npos) << response;

  EXPECT_EQ(ShutdownDaemon(daemon), 0);
}

// --- fault-injection: error points (daemon survives) ----------------------

#ifdef FLOQ_FAULT_INJECT

TEST(FaultTest, CatalogHasEnoughCrashPoints) {
  int crash_points = 0;
  std::set<std::string> names;
  for (const fault::PointInfo& point : fault::kPoints) {
    EXPECT_TRUE(names.insert(point.name).second)
        << "duplicate fault point " << point.name;
    if (point.crash) ++crash_points;
  }
  EXPECT_GE(crash_points, 8) << "the crash suite needs ≥8 kill points";
}

TEST(FaultTest, WalAppendIoErrorIsInternalNotFatal) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir, "wal.append.io_error:2");
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  Result<Json> first = Request(
      daemon.socket_path, RegisterRequest("students", "q(X) :- X : student."));
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(*first->GetBool("ok"));

  // Second append hits the injected EIO: a typed INTERNAL error, no ack,
  // no crash — and reads keep working off the last good state.
  Result<Json> second = Request(
      daemon.socket_path, RegisterRequest("people", "q(X) :- X : person."));
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_FALSE(*second->GetBool("ok"));
  EXPECT_EQ(second->Find("code")->AsString(), "INTERNAL");

  Result<Json> status = Request(daemon.socket_path, MakeRequest("status"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status->GetInt("queries"), 1);
  (void)Request(daemon.socket_path, MakeRequest("shutdown"));
  WaitForExit(daemon);

  // Whatever the exit path, the acked registration must recover.
  DaemonProc recovered = SpawnDaemon(dir);
  DaemonReaper recovered_reaper(recovered);
  ASSERT_TRUE(WaitForDaemon(recovered));
  Result<Json> after = Request(recovered.socket_path, MakeRequest("status"));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after->GetInt("queries"), 1);
  EXPECT_EQ(ShutdownDaemon(recovered), 0);
}

TEST(FaultTest, CheckpointIoErrorKeepsWalAuthoritative) {
  std::string dir = MakeTempDir();
  // checkpoint_every=2 → the second register triggers a checkpoint whose
  // injected failure must not lose either acked mutation.
  DaemonProc daemon =
      SpawnDaemon(dir, "checkpoint.io_error", {"checkpoint_every=2"});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));
  for (const auto& [name, text] : Workload()) {
    Result<Json> reply =
        Request(daemon.socket_path, RegisterRequest(name, text));
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    ASSERT_TRUE(*reply->GetBool("ok")) << reply->Serialize();
  }
  (void)Request(daemon.socket_path, MakeRequest("shutdown"));
  WaitForExit(daemon);

  DaemonProc recovered = SpawnDaemon(dir);
  DaemonReaper recovered_reaper(recovered);
  ASSERT_TRUE(WaitForDaemon(recovered));
  Result<Json> status = Request(recovered.socket_path, MakeRequest("status"));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(*status->GetInt("queries"),
            static_cast<int64_t>(Workload().size()));
  EXPECT_EQ(ShutdownDaemon(recovered), 0);
}

TEST(FaultTest, UnknownFaultPointRefusesToStart) {
  std::string dir = MakeTempDir();
  DaemonProc daemon = SpawnDaemon(dir, "no.such.point");
  DaemonReaper daemon_reaper(daemon);
  EXPECT_EQ(WaitForExit(daemon), fault::kBadPointExitCode);
}

// The attribution contract (DESIGN.md §17): one request's id is the SAME
// number in the reply, in the slow-request log line, and in the span tree
// of the rotated trace file. The stall point makes the contain take ~2s
// against a 100ms slow threshold, so the warn line fires
// deterministically; trace_sample=1 keeps every request's spans.
TEST(FaultTest, RequestIdIsConsistentAcrossReplyLogAndTrace) {
  std::string dir = MakeTempDir();
  std::string log_path = dir + "/server-log.jsonl";
  std::string trace_dir = dir + "/traces";
  DaemonProc daemon = SpawnDaemon(
      dir, "serve.contain.stall",
      {"log_out=" + log_path, "log_level=debug", "slow_request_ms=100",
       "trace_sample=1", "trace_dir=" + trace_dir});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon));

  Json slow = MakeRequest("contain");
  slow.Set("lhs_query", Json::String("q(X) :- X : student."));
  slow.Set("rhs_query", Json::String("q(Y) :- Y : student."));
  slow.Set("trace_id", Json::String("traceid-123"));
  Result<Json> reply = Request(daemon.socket_path, slow);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  Result<int64_t> id = reply->GetInt("request_id");
  ASSERT_TRUE(id.ok()) << reply->Serialize();
  Result<std::string> echoed = reply->GetString("trace_id");
  ASSERT_TRUE(echoed.ok()) << reply->Serialize();
  EXPECT_EQ(*echoed, "traceid-123");

  EXPECT_EQ(ShutdownDaemon(daemon), 0);  // drain rotates the trace file

  const std::string id_field = "\"request_id\": " + std::to_string(*id);

  // The slow-request log line names the same request and trace id.
  std::string log = ReadFileOrEmpty(log_path);
  bool found_slow = false;
  size_t start = 0;
  while (start < log.size()) {
    size_t end = log.find('\n', start);
    if (end == std::string::npos) end = log.size();
    std::string line = log.substr(start, end - start);
    if (line.find("\"msg\": \"request.slow\"") != std::string::npos &&
        line.find("\"cmd\": \"contain\"") != std::string::npos) {
      found_slow = true;
      EXPECT_NE(line.find(id_field), std::string::npos) << line;
      EXPECT_NE(line.find("\"trace_id\": \"traceid-123\""), std::string::npos)
          << line;
    }
    start = end + 1;
  }
  EXPECT_TRUE(found_slow) << log;

  // And the rotated trace's serve.request span carries the same id.
  std::string traces;
  for (int seq = 0; seq < 8; ++seq) {
    traces += ReadFileOrEmpty(trace_dir + "/floq-trace-" +
                              std::to_string(seq) + ".json");
  }
  ASSERT_FALSE(traces.empty());
  EXPECT_NE(traces.find("\"serve.request\""), std::string::npos);
  EXPECT_NE(traces.find(id_field), std::string::npos);
}

// --- the headline: crash-recovery parity suite ----------------------------

struct CrashScenario {
  const char* fault;        // FLOQ_FAULT spec, point[:nth]
  int checkpoint_every;     // daemon checkpoint cadence
};

// Reference lattice from an uninterrupted daemon over the same workload,
// computed once: classify fingerprint + full contain matrix.
struct Reference {
  std::string fingerprint;
  std::vector<std::string> matrix;
};

const Reference& CleanReference() {
  static const Reference reference = [] {
    Reference r;
    std::string dir = MakeTempDir();
    DaemonProc daemon = SpawnDaemon(dir);
    DaemonReaper daemon_reaper(daemon);
    EXPECT_TRUE(WaitForDaemon(daemon));
    for (const auto& [name, text] : Workload()) {
      Result<Json> reply =
          Request(daemon.socket_path, RegisterRequest(name, text));
      EXPECT_TRUE(reply.ok() && *reply->GetBool("ok"));
    }
    Result<Json> classify =
        Request(daemon.socket_path, MakeRequest("classify"));
    EXPECT_TRUE(classify.ok());
    r.fingerprint = LatticeFingerprint(*classify);
    r.matrix = ContainMatrix(daemon.socket_path);
    EXPECT_EQ(ShutdownDaemon(daemon), 0);
    return r;
  }();
  return reference;
}

class CrashRecoveryTest : public ::testing::TestWithParam<CrashScenario> {};

// For each durability-critical fault point: run a daemon armed to die
// there, register the workload until the crash, then restart and assert
//   (1) the process really died at the injected point (exit 42),
//   (2) every ACKED registration survived (durability before ack),
//   (3) nothing un-attempted was invented,
//   (4) re-registering the full workload is idempotent, and
//   (5) the recovered lattice — classify fingerprint and the complete
//       containment matrix — is byte-identical to the uninterrupted
//       reference. No crash point may yield an unsound verdict.
TEST_P(CrashRecoveryTest, AckedStateAndLatticeSurviveKill) {
  const CrashScenario& scenario = GetParam();
  std::string dir = MakeTempDir();
  DaemonProc daemon =
      SpawnDaemon(dir, scenario.fault,
                  {"checkpoint_every=" +
                   std::to_string(scenario.checkpoint_every)});
  DaemonReaper daemon_reaper(daemon);
  ASSERT_TRUE(WaitForDaemon(daemon)) << scenario.fault;

  std::set<std::string> acked;
  for (const auto& [name, text] : Workload()) {
    Result<Json> reply =
        Request(daemon.socket_path, RegisterRequest(name, text));
    if (reply.ok() && reply->GetBool("ok").ok() && *reply->GetBool("ok")) {
      acked.insert(name);
    } else {
      break;  // the daemon died mid-request (or is already gone)
    }
  }
  ASSERT_EQ(WaitForExit(daemon), fault::kCrashExitCode)
      << scenario.fault << ": daemon did not die at the injected point";

  // Restart, fault disarmed: recovery must be clean.
  DaemonProc recovered = SpawnDaemon(dir);
  DaemonReaper recovered_reaper(recovered);
  ASSERT_TRUE(WaitForDaemon(recovered))
      << scenario.fault << ": recovery failed";

  Result<Json> status = Request(recovered.socket_path, MakeRequest("status"));
  ASSERT_TRUE(status.ok());
  int64_t queries = *status->GetInt("queries");
  EXPECT_GE(queries, static_cast<int64_t>(acked.size()))
      << scenario.fault << ": an acked registration was lost";
  EXPECT_LE(queries, static_cast<int64_t>(Workload().size()))
      << scenario.fault << ": recovery invented state";
  for (const std::string& name : acked) {
    Json probe = MakeRequest("contain");
    probe.Set("lhs", Json::String(name));
    probe.Set("rhs", Json::String(name));
    Result<Json> self = Request(recovered.socket_path, probe);
    ASSERT_TRUE(self.ok());
    EXPECT_TRUE(*self->GetBool("ok"))
        << scenario.fault << ": acked query " << name << " missing";
    EXPECT_EQ(self->Find("resolution")->AsString(), "CONTAINED");
  }

  // Idempotent top-up to the full workload, then lattice parity.
  for (const auto& [name, text] : Workload()) {
    Result<Json> reply =
        Request(recovered.socket_path, RegisterRequest(name, text));
    ASSERT_TRUE(reply.ok()) << scenario.fault;
    EXPECT_TRUE(*reply->GetBool("ok")) << reply->Serialize();
  }
  Result<Json> classify =
      Request(recovered.socket_path, MakeRequest("classify"));
  ASSERT_TRUE(classify.ok());
  EXPECT_EQ(LatticeFingerprint(*classify), CleanReference().fingerprint)
      << scenario.fault << ": recovered lattice diverged";
  EXPECT_EQ(ContainMatrix(recovered.socket_path), CleanReference().matrix)
      << scenario.fault << ": recovered matrix diverged";

  EXPECT_EQ(ShutdownDaemon(recovered), 0) << scenario.fault;
}

INSTANTIATE_TEST_SUITE_P(
    AllCrashPoints, CrashRecoveryTest,
    ::testing::Values(
        // WAL append: before any bytes, mid-record, after write pre-fsync.
        CrashScenario{"wal.append.before_write:3", 32},
        CrashScenario{"wal.append.torn_write:2", 32},
        CrashScenario{"wal.append.before_fsync:4", 32},
        // Checkpoint: torn tmp, tmp durable but not yet live, live but
        // WAL not yet reset (replay must be idempotent).
        CrashScenario{"checkpoint.tmp.torn_write", 2},
        CrashScenario{"checkpoint.before_rename", 2},
        CrashScenario{"checkpoint.after_rename", 2},
        CrashScenario{"checkpoint.after_rename:2", 2},
        // Request path: between admission and execution, and after the
        // mutation is durable but before the client hears about it.
        CrashScenario{"serve.request.before_execute:3", 32},
        CrashScenario{"serve.request.before_reply:2", 32},
        CrashScenario{"serve.request.before_reply:5", 2}),
    [](const ::testing::TestParamInfo<CrashScenario>& info) {
      std::string name = info.param.fault;
      for (char& c : name) {
        if (c == '.' || c == ':') c = '_';
      }
      return name + "_ck" + std::to_string(info.param.checkpoint_every);
    });

#else  // !FLOQ_FAULT_INJECT

TEST(FaultTest, DISABLED_FaultInjectionCompiledOut) {
  GTEST_SKIP() << "built without FLOQ_FAULT_INJECT";
}

#endif  // FLOQ_FAULT_INJECT

}  // namespace
}  // namespace floq::server

// The crash suite re-executes this binary as a real daemon process.
int DaemonChildMain(int argc, char** argv) {
  floq::server::DaemonOptions options;
  options.dir = argv[2];
  options.socket_path = argv[3];
  options.workers = 2;
  options.jobs = 1;
  for (int i = 4; i < argc; ++i) {
    std::string arg = argv[i];
    size_t eq = arg.find('=');
    if (eq == std::string::npos) continue;
    std::string key = arg.substr(0, eq);
    std::string text = arg.substr(eq + 1);
    long long value = std::atoll(text.c_str());
    if (key == "workers") options.workers = int(value);
    else if (key == "queue_limit") options.queue_limit = int(value);
    else if (key == "max_connections") options.max_connections = int(value);
    else if (key == "idle_timeout_ms") options.idle_timeout_ms = value;
    else if (key == "io_timeout_ms") options.io_timeout_ms = value;
    else if (key == "request_timeout_ms") options.request_timeout_ms = value;
    else if (key == "checkpoint_every") options.checkpoint_every = int(value);
    else if (key == "slow_request_ms") options.slow_request_ms = value;
    else if (key == "trace_sample") options.trace_sample = int(value);
    else if (key == "http_metrics_port") options.http_metrics_port = int(value);
    else if (key == "log_out") options.log_out = text;
    else if (key == "log_level") options.log_level = text;
    else if (key == "metrics_out") options.metrics_out = text;
    else if (key == "trace_dir") options.trace_dir = text;
  }
  floq::Status status = floq::server::RunDaemon(options);
  if (!status.ok()) {
    std::fprintf(stderr, "daemon-child: %s\n", status.ToString().c_str());
    return 4;
  }
  return 0;
}

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--daemon-child") == 0) {
    return DaemonChildMain(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
