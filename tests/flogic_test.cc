#include <gtest/gtest.h>

#include "flogic/lexer.h"
#include "flogic/parser.h"
#include "flogic/printer.h"
#include "term/world.h"

namespace floq::flogic {
namespace {

// ---- lexer -------------------------------------------------------------

TEST(LexerTest, PunctuationLongestMatch) {
  Result<std::vector<Token>> tokens = Tokenize(":: : :- *=> * -> ?-");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kColonColon, TokenKind::kColon,
                       TokenKind::kImplies, TokenKind::kSignature,
                       TokenKind::kStar, TokenKind::kArrow, TokenKind::kQuery,
                       TokenKind::kEnd}));
}

TEST(LexerTest, WordsSplitByCase) {
  Result<std::vector<Token>> tokens = Tokenize("john Student _anon _");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kVariable);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kVariable);
}

TEST(LexerTest, NumberThenStatementDot) {
  Result<std::vector<Token>> tokens = Tokenize("john[age -> 33].");
  ASSERT_TRUE(tokens.ok());
  // The '.' after 33 must be a kDot, not part of the number.
  const Token& last = (*tokens)[tokens->size() - 2];
  EXPECT_EQ(last.kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[4].text, "33");
}

TEST(LexerTest, DecimalNumbers) {
  Result<std::vector<Token>> tokens = Tokenize("x[w -> 3.14].");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[4].text, "3.14");
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kDot);
}

TEST(LexerTest, StringsAndComments) {
  Result<std::vector<Token>> tokens =
      Tokenize("'hello world' % trailing comment\nfoo");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
  EXPECT_EQ((*tokens)[1].text, "foo");
}

TEST(LexerTest, ErrorsCarryPosition) {
  Result<std::vector<Token>> tokens = Tokenize("abc\n  @");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("2:3"), std::string::npos);
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

// ---- molecules --------------------------------------------------------

TEST(FlogicParserTest, IsaMolecule) {
  World world;
  Result<std::vector<Atom>> atoms = ParseFormula(world, "john : student");
  ASSERT_TRUE(atoms.ok()) << atoms.status().ToString();
  ASSERT_EQ(atoms->size(), 1u);
  EXPECT_EQ((*atoms)[0], Atom::Member(world.MakeConstant("john"),
                                      world.MakeConstant("student")));
}

TEST(FlogicParserTest, SubclassMolecule) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "freshman :: student");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ((*atoms)[0], Atom::Sub(world.MakeConstant("freshman"),
                                   world.MakeConstant("student")));
}

TEST(FlogicParserTest, DataMolecule) {
  World world;
  Result<std::vector<Atom>> atoms = ParseFormula(world, "john[age -> 33]");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ((*atoms)[0],
            Atom::Data(world.MakeConstant("john"), world.MakeConstant("age"),
                       world.MakeConstant("33")));
}

TEST(FlogicParserTest, SignatureMolecule) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[age *=> number]");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ((*atoms)[0],
            Atom::Type(world.MakeConstant("person"), world.MakeConstant("age"),
                       world.MakeConstant("number")));
}

TEST(FlogicParserTest, MandatorySignatureEncodesPerPaper) {
  World world;
  // O[A {1:*} *=> _] encodes exactly mandatory(A, O).
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[name {1:*} *=> _]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 1u);
  EXPECT_EQ((*atoms)[0], Atom::Mandatory(world.MakeConstant("name"),
                                         world.MakeConstant("person")));
}

TEST(FlogicParserTest, MandatoryWithTypeAddsTypeAtom) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[name {1:*} *=> string]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 2u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kMandatory);
  EXPECT_EQ((*atoms)[1].predicate(), pfl::kType);
}

TEST(FlogicParserTest, FunctionalSignature) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[age {0:1} *=> number]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 2u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kFunct);
  EXPECT_EQ((*atoms)[1].predicate(), pfl::kType);
}

TEST(FlogicParserTest, ExactlyOneCardinal) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[ssn {1:1} *=> _]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 2u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kMandatory);
  EXPECT_EQ((*atoms)[1].predicate(), pfl::kFunct);
}

TEST(FlogicParserTest, CommaCardinalitySeparatorFromPaper) {
  World world;
  // The paper writes {1,*} in its second example.
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "Class[Att {1,*} *=> _]");
  ASSERT_TRUE(atoms.ok());
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kMandatory);
}

TEST(FlogicParserTest, UnsupportedCardinalityRejected) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[age {2:5} *=> number]");
  ASSERT_FALSE(atoms.ok());
  EXPECT_NE(atoms.status().message().find("F-logic Lite"), std::string::npos);
}

TEST(FlogicParserTest, VacuousCardinalityAddsNothing) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "person[age {0:*} *=> number]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 1u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kType);
}

TEST(FlogicParserTest, MultiAttributeMolecule) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "john[age -> 33, name -> 'J', dept *=> string]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 3u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kData);
  EXPECT_EQ((*atoms)[1].predicate(), pfl::kData);
  EXPECT_EQ((*atoms)[2].predicate(), pfl::kType);
}

TEST(FlogicParserTest, VariablesAnywherePerPaper) {
  World world;
  // john:X, Y::person, john[Att->33], person[Att*=>Val] are all allowed.
  EXPECT_TRUE(ParseFormula(world, "john : X").ok());
  EXPECT_TRUE(ParseFormula(world, "Y :: person").ok());
  EXPECT_TRUE(ParseFormula(world, "john[Att -> 33]").ok());
  EXPECT_TRUE(ParseFormula(world, "person[Att *=> Val]").ok());
}

TEST(FlogicParserTest, MixedMoleculeAndPredicateAtoms) {
  World world;
  Result<std::vector<Atom>> atoms =
      ParseFormula(world, "member(X, C), C[name *=> string]");
  ASSERT_TRUE(atoms.ok());
  ASSERT_EQ(atoms->size(), 2u);
  EXPECT_EQ((*atoms)[0].predicate(), pfl::kMember);
  EXPECT_EQ((*atoms)[1].predicate(), pfl::kType);
}

// ---- rules & programs ----------------------------------------------------

TEST(FlogicParserTest, PaperJoinableRule) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(
      world, "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> _].");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 2);
  ASSERT_EQ(q->size(), 3);
  EXPECT_EQ(q->body()[0].predicate(), pfl::kType);
  EXPECT_EQ(q->body()[1].predicate(), pfl::kSub);
  EXPECT_EQ(q->body()[2].predicate(), pfl::kType);
  // The anonymous type variable is fresh.
  EXPECT_TRUE(q->body()[2].arg(2).IsVariable());
}

TEST(FlogicParserTest, PaperMandatoryTripleRule) {
  World world;
  Result<ConjunctiveQuery> q = ParseQuery(world,
                                          "q(Att, Class, Type) :- "
                                          "Class[Att {1,*} *=> _], "
                                          "Class[Att *=> Type], "
                                          "_ : Class.");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 3);
  ASSERT_EQ(q->size(), 3);
  EXPECT_EQ(q->body()[0].predicate(), pfl::kMandatory);
  EXPECT_EQ(q->body()[1].predicate(), pfl::kType);
  EXPECT_EQ(q->body()[2].predicate(), pfl::kMember);
}

TEST(FlogicParserTest, ProgramWithFactsRulesGoals) {
  World world;
  Result<Program> program = ParseProgram(world,
                                         "john : student.\n"
                                         "student :: person.\n"
                                         "person[age {0:1} *=> number].\n"
                                         "q(X) :- X : person.\n"
                                         "?- student[Att *=> T].\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->facts.size(), 4u);  // funct + type from the signature
  EXPECT_EQ(program->rules.size(), 1u);
  EXPECT_EQ(program->goals.size(), 1u);
  // Goal head collects named variables in order.
  EXPECT_EQ(program->goals[0].arity(), 2);
}

TEST(FlogicParserTest, NonGroundFactRejected) {
  World world;
  Result<Program> program = ParseProgram(world, "X : student.");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("ground"), std::string::npos);
}

TEST(FlogicParserTest, GoalWithOnlyAnonymousVarsHasArityZero) {
  World world;
  Result<Program> program = ParseProgram(world, "?- _ : student.");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->goals[0].arity(), 0);
}

// ---- printer ---------------------------------------------------------------

TEST(FlogicPrinterTest, AtomSurfaceForms) {
  World world;
  Term o = world.MakeConstant("john");
  Term c = world.MakeConstant("student");
  Term a = world.MakeConstant("age");
  Term v = world.MakeConstant("33");
  EXPECT_EQ(AtomToSurface(Atom::Member(o, c), world), "john : student");
  EXPECT_EQ(AtomToSurface(Atom::Sub(c, o), world), "student :: john");
  EXPECT_EQ(AtomToSurface(Atom::Data(o, a, v), world), "john[age -> 33]");
  EXPECT_EQ(AtomToSurface(Atom::Type(o, a, c), world),
            "john[age *=> student]");
  EXPECT_EQ(AtomToSurface(Atom::Mandatory(a, o), world),
            "john[age {1:*} *=> _]");
  EXPECT_EQ(AtomToSurface(Atom::Funct(a, o), world),
            "john[age {0:1} *=> _]");
}

TEST(FlogicPrinterTest, SurfaceRoundTrip) {
  World world;
  ConjunctiveQuery q = *ParseQuery(
      world, "q(A, B) :- T1[A *=> T2], T2 :: T3, T3[B *=> T4], "
             "member(X, T3).");
  std::string surface = QueryToSurface(q, world);
  Result<ConjunctiveQuery> reparsed = ParseQuery(world, surface);
  ASSERT_TRUE(reparsed.ok()) << surface;
  EXPECT_EQ(reparsed->body(), q.body());
  EXPECT_EQ(reparsed->head(), q.head());
}

// ---- error positions and spans -------------------------------------------

TEST(LexerTest, TokensCarryEndPositions) {
  Result<std::vector<Token>> tokens = Tokenize("ab[cd ->\n  ef]");
  ASSERT_TRUE(tokens.ok());
  const Token& ab = (*tokens)[0];
  EXPECT_EQ(ab.line, 1);
  EXPECT_EQ(ab.column, 1);
  EXPECT_EQ(ab.end_line, 1);
  EXPECT_EQ(ab.end_column, 3);  // one past the last character
  const Token& ef = (*tokens)[4];
  EXPECT_EQ(ef.line, 2);
  EXPECT_EQ(ef.column, 3);
  EXPECT_EQ(ef.end_column, 5);
}

TEST(FlogicParserTest, NonGroundFactErrorAnchorsAtTheFact) {
  World world;
  Result<Program> bad = ParseProgram(world,
      "john : student.\n  X : student.");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("at 2:3:"), std::string::npos);
}

TEST(FlogicParserTest, UnsafeRuleErrorAnchorsAtTheRule) {
  World world;
  Result<Program> bad = ParseProgram(world,
      "john : student.\nq(X, Y) :- X : person.");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("at 2:1:"), std::string::npos);
}

TEST(FlogicParserTest, LenientParseKeepsUnsafeRule) {
  World world;
  Result<Program> program = ParseProgramLenient(world,
      "q(X, Y) :- X : person.");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->rules.size(), 1u);
  EXPECT_FALSE(program->rules[0].Validate(world).ok());
}

TEST(FlogicParserTest, RulesCarryHeadTermSpans) {
  World world;
  Result<Program> program = ParseProgram(world,
      "q(X, Name) :- X[name -> Name].");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const ConjunctiveQuery& rule = program->rules[0];
  SourceSpan x = world.spans().at(rule.head_span(0));
  SourceSpan name = world.spans().at(rule.head_span(1));
  EXPECT_EQ(x.line, 1);
  EXPECT_EQ(x.column, 3);
  EXPECT_EQ(name.column, 6);
  EXPECT_EQ(name.end_column, 10);
  SourceSpan whole = world.spans().at(rule.span());
  EXPECT_EQ(whole.column, 1);
}

TEST(FlogicParserTest, MoleculeAtomsCarryProvenanceSpans) {
  World world;
  Result<Program> program = ParseProgram(world,
      "?- X : person,\n   X[age -> A].");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const ConjunctiveQuery& goal = program->goals[0];
  ASSERT_EQ(goal.body().size(), 2u);
  SourceSpan isa = world.spans().at(goal.body()[0].provenance());
  SourceSpan data = world.spans().at(goal.body()[1].provenance());
  EXPECT_EQ(isa.line, 1);
  EXPECT_EQ(isa.column, 4);
  // The data atom is stamped with its attribute expression "age -> A",
  // not the whole molecule.
  EXPECT_EQ(data.line, 2);
  EXPECT_EQ(data.column, 6);
}

}  // namespace
}  // namespace floq::flogic
