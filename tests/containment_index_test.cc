#include "containment/index.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "containment/classifier.h"
#include "containment/engine.h"
#include "containment/signature.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

ConjunctiveQuery Q(World& world, const char* text) {
  Result<ConjunctiveQuery> q = ParseQuery(world, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

// ---- signature lattice units ---------------------------------------------

TEST(SignatureTest, PredicateBitsSubsetToleratesDifferentWidths) {
  PredicateBits narrow, wide;
  narrow.Set(pfl::kMember);
  wide.Set(pfl::kMember);
  wide.Set(200);  // forces a second word
  EXPECT_TRUE(narrow.IsSubsetOf(wide));
  EXPECT_FALSE(wide.IsSubsetOf(narrow));  // bit 200 reads as absent
  narrow.Set(130);
  EXPECT_FALSE(narrow.IsSubsetOf(wide));
  EXPECT_EQ(wide.Count(), 2);
}

TEST(SignatureTest, SigmaClosureAddsOnlyRho1AndRho5Heads) {
  auto closure_of = [](const std::vector<PredicateId>& preds, bool with_rho5) {
    PredicateBits bits;
    for (PredicateId p : preds) bits.Set(p);
    return SigmaClosurePredicates(bits, with_rho5);
  };

  // {mandatory} |-> + data (rho_5), and nothing else.
  PredicateBits c = closure_of({pfl::kMandatory}, true);
  EXPECT_TRUE(c.Test(pfl::kData));
  EXPECT_FALSE(c.Test(pfl::kMember));
  EXPECT_EQ(c.Count(), 2);

  // Same start without rho_5 (the Sigma_FL^- chase): inert.
  EXPECT_EQ(closure_of({pfl::kMandatory}, false).Count(), 1);

  // {type, data} |-> + member (rho_1).
  c = closure_of({pfl::kType, pfl::kData}, true);
  EXPECT_TRUE(c.Test(pfl::kMember));
  EXPECT_EQ(c.Count(), 3);

  // {mandatory, type} |-> + data (rho_5), then + member (rho_1): the
  // fixpoint chains.
  c = closure_of({pfl::kMandatory, pfl::kType}, true);
  EXPECT_TRUE(c.Test(pfl::kData));
  EXPECT_TRUE(c.Test(pfl::kMember));
  EXPECT_EQ(c.Count(), 4);

  // sub and funct are preserved but never invented.
  c = closure_of({pfl::kSub, pfl::kFunct}, true);
  EXPECT_EQ(c.Count(), 2);
}

TEST(SignatureTest, ConstantMultiplicityIsNotADischargeCondition) {
  World world;
  // rhs mentions constant c twice, lhs only once: a homomorphism may map
  // both occurrences onto the one chase conjunct, so only the *distinct*
  // constant set participates in the subset test.
  ConjunctiveQuery lhs_q = Q(world, "l(X) :- member(X, c).");
  ConjunctiveQuery rhs_q = Q(world, "r(X) :- member(X, c), member(c, c).");
  ClosureSignature lhs =
      ComputeClosureSignature(lhs_q, ChaseDepth::kNone, nullptr);
  QuerySignature rhs = ComputeQuerySignature(rhs_q);
  EXPECT_EQ(rhs.constant_counts[0], 3u);  // the multiset is still recorded
  EXPECT_TRUE(MayContain(lhs, rhs));
}

// ---- adversarial near-misses ---------------------------------------------

// The naive predicate-subset test would discharge this pair: member
// occurs nowhere in the lhs body. But rho_1 derives member(V, T) — the
// attribute's value belongs to its declared type — in the chase, and the
// containment genuinely holds — the closure fingerprint must keep the
// pair alive.
TEST(SignatureTest, ClosureKeepsRho1DerivablePairs) {
  World world;
  ConjunctiveQuery lhs = Q(world, "l(V) :- type(o, a, T), data(o, a, V).");
  ConjunctiveQuery rhs = Q(world, "r(V) :- member(V, T).");

  ContainmentEngine engine(world);
  ASSERT_TRUE(engine.AddQuery(lhs).ok());
  ASSERT_TRUE(engine.AddQuery(rhs).ok());
  std::vector<std::pair<size_t, size_t>> pairs = {{0, 1}};
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
  EXPECT_FALSE((*verdicts)[0].pruned);
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kContained);
}

// A failed chase makes the lhs vacuously contained in *everything* —
// including queries whose predicates and constants it never mentions. The
// filter must never touch such a pair.
TEST(SignatureTest, FailedChaseLhsIsNeverPruned) {
  World world;
  ConjunctiveQuery bad =
      Q(world, "l() :- funct(a, o), data(o, a, one), data(o, a, two).");
  ConjunctiveQuery foreign = Q(world, "r() :- sub(c9, c10).");

  ContainmentEngine engine(world);
  ASSERT_TRUE(engine.AddQuery(bad).ok());
  ASSERT_TRUE(engine.AddQuery(foreign).ok());
  const ClosureSignature* sig = engine.signature_of(0);
  ASSERT_NE(sig, nullptr);
  EXPECT_TRUE(sig->chase_failed);
  EXPECT_FALSE(sig->prunable);

  std::vector<std::pair<size_t, size_t>> pairs = {{0, 1}};
  Result<std::vector<PairVerdict>> verdicts = engine.CheckPairs(pairs);
  ASSERT_TRUE(verdicts.ok()) << verdicts.status().ToString();
  EXPECT_FALSE((*verdicts)[0].pruned);
  EXPECT_EQ((*verdicts)[0].resolution, Resolution::kContained);
  EXPECT_TRUE((*verdicts)[0].lhs_unsatisfiable);
}

// ---- differential soundness over generated workloads ---------------------

// Same-arity workloads mixing the structured generator families, random
// queries over a shared constant pool, and hand-written near-miss pairs
// (same predicates, one constant off; rho_1/rho_5-derivable rhs
// predicates).
std::vector<ConjunctiveQuery> BooleanWorkload(World& world) {
  std::vector<ConjunctiveQuery> queries;
  queries.push_back(gen::MakeMandatoryCycleQuery(world, 1, "cycle1"));
  queries.push_back(gen::MakeDataChainProbe(world, 2, "probe2"));
  queries.push_back(gen::MakeDataChainProbe(world, 3, "probe3"));
  queries.push_back(Q(world, "b0() :- member(X, c1)."));
  queries.push_back(Q(world, "b1() :- member(X, c2)."));  // near-miss: c2
  queries.push_back(Q(world, "b2() :- member(X, C), sub(C, D)."));
  queries.push_back(Q(world, "b3() :- type(o, a, T), data(o, a, V)."));
  queries.push_back(Q(world, "b4() :- member(V, T)."));
  queries.push_back(Q(world, "b5() :- mandatory(a, o)."));
  queries.push_back(Q(world, "b6() :- data(o, a, V)."));
  queries.push_back(
      Q(world, "b7() :- funct(a, o), data(o, a, one), data(o, a, two)."));
  queries.push_back(Q(world, "b8() :- sub(c9, c10)."));
  return queries;
}

std::vector<ConjunctiveQuery> UnaryWorkload(World& world) {
  std::vector<ConjunctiveQuery> queries;
  for (int seed = 1; seed <= 8; ++seed) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(seed);
    spec.atoms = 4;
    spec.variable_pool = 3;
    spec.constant_pool = 3;         // shared pool: forces overlaps
    spec.constant_probability = 0.35;
    spec.arity = 1;
    queries.push_back(
        gen::MakeRandomQuery(world, spec, "r" + std::to_string(seed)));
  }
  queries.push_back(Q(world, "u0(X) :- member(X, c1)."));
  queries.push_back(Q(world, "u1(X) :- member(X, c1), member(X, c2)."));
  queries.push_back(Q(world, "u2(X) :- data(X, a, V)."));
  queries.push_back(Q(world, "u3(X) :- data(X, a, c1)."));
  return queries;
}

void ExpectDifferentialParity(World& world,
                              const std::vector<ConjunctiveQuery>& queries) {
  BatchContainmentOptions with_index;
  with_index.jobs = 1;
  ContainmentEngine pruned_engine(world, with_index);

  BatchContainmentOptions no_index;
  no_index.jobs = 1;
  no_index.containment.use_signature_index = false;
  ContainmentEngine full_engine(world, no_index);

  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(pruned_engine.AddQuery(q).ok());
    ASSERT_TRUE(full_engine.AddQuery(q).ok());
  }
  Result<std::vector<std::vector<PairVerdict>>> fast = pruned_engine.CheckAll();
  Result<std::vector<std::vector<PairVerdict>>> slow = full_engine.CheckAll();
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();

  uint64_t pruned = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      if (i == j) continue;
      const PairVerdict& f = (*fast)[i][j];
      const PairVerdict& s = (*slow)[i][j];
      // Soundness: the filter must never discharge a pair the full
      // procedure proves contained (a violation here is the gated-at-zero
      // condition of the bench suite).
      if (f.pruned) {
        ++pruned;
        EXPECT_EQ(s.resolution, Resolution::kNotContained)
            << "soundness violation: pruned pair " << queries[i].name()
            << " ⊆ " << queries[j].name() << " is actually "
            << ResolutionName(s.resolution);
      }
      // Parity: identical verdicts pair-for-pair (the --no-prune
      // contract).
      EXPECT_EQ(f.resolution, s.resolution)
          << queries[i].name() << " ⊆ " << queries[j].name();
      EXPECT_EQ(f.contained, s.contained);
      EXPECT_EQ(f.lhs_unsatisfiable, s.lhs_unsatisfiable);
    }
  }
  EXPECT_EQ(pruned, pruned_engine.stats().pruned_pairs);
  EXPECT_GT(pruned_engine.stats().pruned_pairs, 0u);
  EXPECT_EQ(full_engine.stats().pruned_pairs, 0u);
}

TEST(ContainmentIndexTest, DifferentialSoundnessBooleanWorkload) {
  World world;
  ExpectDifferentialParity(world, BooleanWorkload(world));
}

TEST(ContainmentIndexTest, DifferentialSoundnessUnaryWorkload) {
  World world;
  ExpectDifferentialParity(world, UnaryWorkload(world));
}

TEST(ContainmentIndexTest, DifferentialSoundnessLevelZeroAndClassical) {
  for (ChaseDepth depth : {ChaseDepth::kLevelZero, ChaseDepth::kNone}) {
    World world;
    std::vector<ConjunctiveQuery> queries = BooleanWorkload(world);
    BatchContainmentOptions with_index;
    with_index.jobs = 1;
    with_index.containment.depth = depth;
    BatchContainmentOptions no_index = with_index;
    no_index.containment.use_signature_index = false;

    ContainmentEngine fast(world, with_index);
    ContainmentEngine slow(world, no_index);
    for (const ConjunctiveQuery& q : queries) {
      ASSERT_TRUE(fast.AddQuery(q).ok());
      ASSERT_TRUE(slow.AddQuery(q).ok());
    }
    Result<std::vector<std::vector<PairVerdict>>> f = fast.CheckAll();
    Result<std::vector<std::vector<PairVerdict>>> s = slow.CheckAll();
    ASSERT_TRUE(f.ok() && s.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t j = 0; j < queries.size(); ++j) {
        if (i == j) continue;
        EXPECT_EQ((*f)[i][j].resolution, (*s)[i][j].resolution)
            << "depth " << int(depth) << ": " << queries[i].name() << " ⊆ "
            << queries[j].name();
      }
    }
  }
}

// ---- cost-ordered scheduling ---------------------------------------------

// use_cost_scheduling may only *reorder* the batch pipeline and *raise*
// per-pair hom budgets (ResourceBudget::FromEstimate): the verdict matrix
// must match the unscheduled engine pair-for-pair, in every depth mode
// and with any fan-out width.
void ExpectSchedulingParity(const std::vector<ConjunctiveQuery>& queries,
                            World& world, ChaseDepth depth, int jobs) {
  BatchContainmentOptions plain;
  plain.jobs = jobs;
  plain.containment.depth = depth;
  BatchContainmentOptions scheduled = plain;
  scheduled.containment.use_cost_scheduling = true;

  ContainmentEngine base(world, plain);
  ContainmentEngine cost(world, scheduled);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(base.AddQuery(q).ok());
    ASSERT_TRUE(cost.AddQuery(q).ok());
  }
  Result<std::vector<std::vector<PairVerdict>>> b = base.CheckAll();
  Result<std::vector<std::vector<PairVerdict>>> c = cost.CheckAll();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_TRUE(c.ok()) << c.status().ToString();

  bool any_predicted = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = 0; j < queries.size(); ++j) {
      if (i == j) continue;
      const PairVerdict& p = (*b)[i][j];
      const PairVerdict& s = (*c)[i][j];
      EXPECT_EQ(p.resolution, s.resolution)
          << "depth " << int(depth) << " jobs " << jobs << ": "
          << queries[i].name() << " ⊆ " << queries[j].name();
      EXPECT_EQ(p.contained, s.contained);
      EXPECT_EQ(p.pruned, s.pruned);
      EXPECT_EQ(p.lhs_unsatisfiable, s.lhs_unsatisfiable);
      // The scheduler's prediction rides along on unpruned verdicts only.
      EXPECT_EQ(p.predicted_cost, 0.0);
      if (s.predicted_cost > 0.0) {
        EXPECT_FALSE(s.pruned);
        any_predicted = true;
      }
    }
  }
  EXPECT_TRUE(any_predicted) << "no pair was ever costed";
}

TEST(CostSchedulingTest, VerdictParityBooleanWorkloadAllDepths) {
  for (ChaseDepth depth :
       {ChaseDepth::kPaperBound, ChaseDepth::kLevelZero, ChaseDepth::kNone}) {
    World world;
    std::vector<ConjunctiveQuery> queries = BooleanWorkload(world);
    ExpectSchedulingParity(queries, world, depth, 1);
  }
}

TEST(CostSchedulingTest, VerdictParityUnaryWorkload) {
  World world;
  std::vector<ConjunctiveQuery> queries = UnaryWorkload(world);
  ExpectSchedulingParity(queries, world, ChaseDepth::kPaperBound, 1);
}

TEST(CostSchedulingTest, VerdictParityUnderParallelFanOut) {
  World world;
  std::vector<ConjunctiveQuery> queries = BooleanWorkload(world);
  ExpectSchedulingParity(queries, world, ChaseDepth::kPaperBound, 4);
}

TEST(CostSchedulingTest, CalibratedBudgetsOnlyReduceUnknowns) {
  // With a hom step budget set, calibration scales the budget *up* for
  // pairs predicted expensive: every pair the base engine decides must
  // come back with the identical verdict, and a scheduled kUnknown
  // implies a base kUnknown (never the reverse). The step budget is
  // deterministic (unlike a timeout), so this is an exact property.
  for (uint64_t step_budget : {1u, 8u, 64u, 4096u}) {
    World world;
    std::vector<ConjunctiveQuery> queries = UnaryWorkload(world);
    BatchContainmentOptions plain;
    plain.jobs = 1;
    plain.containment.budget.hom_step_budget = step_budget;
    BatchContainmentOptions scheduled = plain;
    scheduled.containment.use_cost_scheduling = true;

    ContainmentEngine base(world, plain);
    ContainmentEngine cost(world, scheduled);
    for (const ConjunctiveQuery& q : queries) {
      ASSERT_TRUE(base.AddQuery(q).ok());
      ASSERT_TRUE(cost.AddQuery(q).ok());
    }
    Result<std::vector<std::vector<PairVerdict>>> b = base.CheckAll();
    Result<std::vector<std::vector<PairVerdict>>> c = cost.CheckAll();
    ASSERT_TRUE(b.ok() && c.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      for (size_t j = 0; j < queries.size(); ++j) {
        if (i == j) continue;
        const PairVerdict& p = (*b)[i][j];
        const PairVerdict& s = (*c)[i][j];
        if (s.resolution == Resolution::kUnknown) {
          EXPECT_EQ(p.resolution, Resolution::kUnknown)
              << "budget " << step_budget << ": calibration introduced an "
              << "UNKNOWN on " << queries[i].name() << " ⊆ "
              << queries[j].name();
        } else if (p.resolution != Resolution::kUnknown) {
          EXPECT_EQ(p.resolution, s.resolution)
              << queries[i].name() << " ⊆ " << queries[j].name();
        }
      }
    }
    EXPECT_LE(cost.stats().unknown_pairs, base.stats().unknown_pairs);
  }
}

// ---- the incremental index -----------------------------------------------

TEST(ContainmentIndexTest, IncrementalInsertMatchesBatchClassifier) {
  World world;
  std::vector<ConjunctiveQuery> queries = UnaryWorkload(world);

  BatchContainmentOptions options;
  options.jobs = 1;
  ContainmentIndex index(world, options);
  for (const ConjunctiveQuery& q : queries) {
    Result<size_t> id = index.Insert(q);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  QueryTaxonomy incremental = index.Taxonomy();

  Result<QueryTaxonomy> batch = ClassifyQueries(world, queries, options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  EXPECT_EQ(incremental.class_of, batch->class_of);
  EXPECT_EQ(incremental.classes, batch->classes);
  EXPECT_EQ(incremental.hasse_edges, batch->hasse_edges);
  EXPECT_EQ(incremental.contains, batch->contains);
}

TEST(ContainmentIndexTest, InsertChecksOnlySurvivingCandidates) {
  World world;
  std::vector<ConjunctiveQuery> queries = BooleanWorkload(world);
  BatchContainmentOptions options;
  options.jobs = 1;
  ContainmentIndex index(world, options);
  for (const ConjunctiveQuery& q : queries) {
    ASSERT_TRUE(index.Insert(q).ok());
  }
  const IndexStats& stats = index.index_stats();
  const size_t n = queries.size();
  EXPECT_EQ(stats.inserts, n);
  EXPECT_EQ(stats.candidate_pairs, n * (n - 1));
  EXPECT_EQ(stats.pruned_pairs + stats.checked_pairs, stats.candidate_pairs);
  // The point of the index: most candidates never reach the engine.
  EXPECT_GT(stats.pruned_pairs, 0u);
  // The engine saw only survivors, so its own stage 0 found nothing left
  // to prune (the prefilter and stage 0 run the identical test).
  EXPECT_EQ(index.engine_stats().pruned_pairs, 0u);
}

TEST(ContainmentIndexTest, CrossArityPairsAreIncomparable) {
  World world;
  BatchContainmentOptions options;
  options.jobs = 1;
  ContainmentIndex index(world, options);
  ASSERT_TRUE(index.Insert(Q(world, "a(X) :- member(X, C).")).ok());
  ASSERT_TRUE(index.Insert(Q(world, "b() :- member(X, C).")).ok());
  EXPECT_EQ(index.index_stats().candidate_pairs, 0u);
  EXPECT_FALSE(index.Contains(0, 1));
  EXPECT_FALSE(index.Contains(1, 0));
  EXPECT_TRUE(index.Contains(0, 0));  // reflexive diagonal
}

}  // namespace
}  // namespace floq
