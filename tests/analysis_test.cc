// Tests for the static diagnostics engine (src/analysis): the lint-code
// registry, every query lint family FLQ001..FLQ007 with exact source
// spans, the dependency-set grades FLD101/FLD102, the Section-4
// mandatory-cycle detector FLD103, and the two output formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/dependency_lints.h"
#include "analysis/diagnostic.h"
#include "analysis/query_lints.h"
#include "chase/dependencies.h"
#include "flogic/parser.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq::analysis {
namespace {

std::vector<const Diagnostic*> WithCode(const std::vector<Diagnostic>& all,
                                        std::string_view code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : all) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

bool HasCode(const std::vector<Diagnostic>& all, std::string_view code) {
  return !WithCode(all, code).empty();
}

// ---- registry and formatting ---------------------------------------------

TEST(DiagnosticTest, RegistryIsSortedAndComplete) {
  const std::vector<LintCodeInfo>& codes = LintCodes();
  ASSERT_FALSE(codes.empty());
  for (size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(std::string(codes[i - 1].code), codes[i].code);
  }
  for (const char* code : {"FLQ000", "FLQ001", "FLQ002", "FLQ003", "FLQ004",
                           "FLQ005", "FLQ006", "FLQ007", "FLD101", "FLD102",
                           "FLD103"}) {
    EXPECT_NE(FindLintCode(code), nullptr) << code;
  }
  EXPECT_EQ(FindLintCode("FLQ999"), nullptr);
  EXPECT_EQ(FindLintCode("FLQ001")->severity, Severity::kError);
  EXPECT_EQ(FindLintCode("FLQ007")->severity, Severity::kNote);
}

TEST(DiagnosticTest, FormatIncludesFileSpanSeverityAndCode) {
  Diagnostic d = MakeDiagnostic("FLQ002", "variable X occurs only once",
                                SourceSpan{3, 14, 3, 15});
  d.notes.push_back("a note");
  std::string text = FormatDiagnostic(d, "input.fl");
  EXPECT_EQ(text,
            "input.fl:3:14: warning: variable X occurs only once [FLQ002]\n"
            "    note: a note");
  // Without a span or file the location prefix disappears.
  EXPECT_EQ(FormatDiagnostic(MakeDiagnostic("FLQ006", "bad")),
            "error: bad [FLQ006]");
}

TEST(DiagnosticTest, StatusAnchorBecomesSpan) {
  Diagnostic d = DiagnosticFromStatus(
      InvalidArgumentError("parse error at 7:12: expected ':-'"));
  EXPECT_EQ(d.code, "FLQ000");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.span.line, 7);
  EXPECT_EQ(d.span.column, 12);
}

TEST(DiagnosticTest, SortPutsUnknownSpansLast) {
  std::vector<Diagnostic> all;
  all.push_back(MakeDiagnostic("FLD101", "no span"));
  all.push_back(MakeDiagnostic("FLQ002", "later", SourceSpan{5, 1, 5, 2}));
  all.push_back(MakeDiagnostic("FLQ001", "earlier", SourceSpan{2, 3, 2, 4}));
  SortDiagnostics(all);
  EXPECT_EQ(all[0].code, "FLQ001");
  EXPECT_EQ(all[1].code, "FLQ002");
  EXPECT_EQ(all[2].code, "FLD101");
}

TEST(DiagnosticTest, JsonShape) {
  std::vector<Diagnostic> all;
  Diagnostic d = MakeDiagnostic("FLQ005", "duplicate \"atom\"",
                                SourceSpan{1, 2, 1, 9});
  d.notes.push_back("first occurrence at 1:1");
  all.push_back(std::move(d));
  std::string json = DiagnosticsToJson(all, "in.fl");
  EXPECT_NE(json.find("\"code\": \"FLQ005\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"duplicate-atom\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"in.fl\""), std::string::npos);
  EXPECT_NE(json.find("duplicate \\\"atom\\\""), std::string::npos);
  EXPECT_NE(json.find("\"span\": {\"line\": 1, \"column\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"notes\": [\"first occurrence at 1:1\"]"),
            std::string::npos);
  EXPECT_EQ(DiagnosticsToJson({}), "[]");
}

// ---- FLQ001 unsafe head variable -----------------------------------------

TEST(QueryLintTest, UnsafeHeadVariableWithExactSpan) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
q(X, Y) :- X : person.
)");
  auto found = WithCode(all, "FLQ001");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_NE(found[0]->message.find("Y"), std::string::npos);
  // "Y" sits at line 2, column 6 of the program text.
  EXPECT_EQ(found[0]->span.line, 2);
  EXPECT_EQ(found[0]->span.column, 6);
  EXPECT_EQ(found[0]->span.end_column, 7);
  EXPECT_TRUE(HasErrors(all));
}

TEST(QueryLintTest, SafeQueryHasNoUnsafeHeadDiagnostic) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X : person.");
  EXPECT_FALSE(HasCode(all, "FLQ001"));
  EXPECT_FALSE(HasErrors(all));
}

// ---- FLQ002 singleton variables ------------------------------------------

TEST(QueryLintTest, SingletonVariableFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X : person, Unused : course.");
  auto found = WithCode(all, "FLQ002");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0]->message.find("Unused"), std::string::npos);
  EXPECT_TRUE(found[0]->span.known());
}

TEST(QueryLintTest, AnonymousAndProjectedVariablesAreSilent) {
  World world;
  // _ is the explicit don't-care; X is projected by the head.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X[age -> _].");
  EXPECT_FALSE(HasCode(all, "FLQ002"));
}

// ---- FLQ003 cartesian product --------------------------------------------

TEST(QueryLintTest, DisconnectedComponentsFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X, Y) :- X : person, Y : course.");
  auto found = WithCode(all, "FLQ003");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->notes.size(), 2u);
}

TEST(QueryLintTest, GroundAtomsAreNotProductFactors) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), sub(c, d).");
  EXPECT_FALSE(HasCode(all, "FLQ003"));
}

// ---- FLQ004 P_FL role misuse ---------------------------------------------

TEST(QueryLintTest, AttributeObjectRoleMixFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, C), data(X, C, V), data(Y, C, V).");
  auto found = WithCode(all, "FLQ004");
  ASSERT_EQ(found.size(), 1u);  // reported once per term
  EXPECT_NE(found[0]->message.find("C"), std::string::npos);
  EXPECT_EQ(found[0]->notes.size(), 2u);
}

TEST(QueryLintTest, PaperFigureOneQueryIsRoleClean) {
  World world;
  // Figure 1 of the paper: T is object/class throughout, A is attribute
  // throughout — no mix, even though T occurs in type's value position.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  EXPECT_FALSE(HasCode(all, "FLQ004"));
}

// ---- FLQ005 duplicate atoms ----------------------------------------------

TEST(QueryLintTest, DuplicateAtomFlaggedAtSecondOccurrence) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, C), member(X, C).");
  auto found = WithCode(all, "FLQ005");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->span.column, 23);  // the second member(X, C)
  ASSERT_EQ(found[0]->notes.size(), 1u);
  EXPECT_NE(found[0]->notes[0].find("1:9"), std::string::npos);
}

// ---- FLQ006 unsatisfiable under Sigma_FL ---------------------------------

TEST(QueryLintTest, FunctViolationMakesQueryUnsatisfiable) {
  World world;
  // rho_4 must equate the distinct constants one and two.
  std::vector<Diagnostic> all = AnalyzeProgramText(world,
      "q(X) :- member(X, c), data(o, a, one), data(o, a, two), "
      "funct(a, o).");
  EXPECT_TRUE(HasCode(all, "FLQ006"));
  EXPECT_TRUE(HasErrors(all));
}

TEST(QueryLintTest, SatisfiableQueryPassesTheProbe) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X, V) :- data(X, a, V), funct(a, X).");
  EXPECT_FALSE(HasCode(all, "FLQ006"));
}

// ---- FLQ007 redundant atoms ----------------------------------------------

TEST(QueryLintTest, SigmaRedundantAtomFlagged) {
  World world;
  // member(X, c) follows from member(X, d) and sub(d, c) under rho_3 —
  // the introduction's motivating example of constraint-aware redundancy.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), member(X, d), sub(d, c).");
  auto found = WithCode(all, "FLQ007");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("member(X, c)"), std::string::npos);
  EXPECT_EQ(found[0]->span.column, 9);
}

TEST(QueryLintTest, MinimalQueryHasNoRedundancyNote) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), member(X, d).");
  EXPECT_FALSE(HasCode(all, "FLQ007"));
}

TEST(QueryLintTest, ProbesCanBeDisabled) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgramLenient(
      world, "q(X) :- member(X, c), member(X, d), sub(d, c).");
  ASSERT_TRUE(program.ok());
  QueryLintOptions options;
  options.chase_probe = false;
  options.redundancy = false;
  std::vector<Diagnostic> all =
      LintQuery(world, program->rules[0], options);
  EXPECT_FALSE(HasCode(all, "FLQ006"));
  EXPECT_FALSE(HasCode(all, "FLQ007"));
}

// ---- FLQ000 parse errors -------------------------------------------------

TEST(AnalyzerTest, ParseErrorBecomesLocatedDiagnostic) {
  World world;
  std::vector<Diagnostic> all =
      AnalyzeProgramText(world, "q(X) :- X : .");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].code, "FLQ000");
  EXPECT_EQ(all[0].severity, Severity::kError);
  EXPECT_TRUE(all[0].span.known());
}

// ---- FLD101/FLD102 dependency grades -------------------------------------

TEST(DependencyLintTest, WeaklyAcyclicSetIsClean) {
  World world;
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
  )");
  EXPECT_TRUE(all.empty());
}

TEST(DependencyLintTest, JointlyAcyclicRefinementReported) {
  World world;
  // Not weakly acyclic (p[0] -*-> q[1] -> p[0]) but jointly acyclic:
  // the invented Y can never reach r[1]... there is no rule binding a
  // frontier variable entirely inside Mov(Y) = {q[1]}.
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    q(X, Y) :- p(X).
    p(Y) :- q(X, Y), r(Y).
  )");
  auto found = WithCode(all, "FLD102");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_FALSE(HasCode(all, "FLD101"));
  // The witness cycle rides along as notes.
  bool has_special_edge = false;
  for (const std::string& note : found[0]->notes) {
    has_special_edge |= note.find("*-->") != std::string::npos;
  }
  EXPECT_TRUE(has_special_edge);
}

TEST(DependencyLintTest, SigmaFLStyleSetGetsFullWarningWithWitness) {
  World world;
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    member(V, T) :- type(O, A, T), data(O, A, V).
    data(O, A, V) :- mandatory(A, O).
    mandatory(A, O) :- member(O, C), mandatory(A, C).
  )");
  auto found = WithCode(all, "FLD101");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  // The witness must pass through the special edge into data[2] and
  // close the cycle back to mandatory[1].
  std::string joined;
  for (const std::string& note : found[0]->notes) joined += note + "\n";
  EXPECT_NE(joined.find("data[2]"), std::string::npos);
  EXPECT_NE(joined.find("mandatory[1]"), std::string::npos);
}

TEST(DependencyLintTest, FullSigmaFLIsNeitherGrade) {
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  EXPECT_FALSE(IsWeaklyAcyclic(sigma, world));
  EXPECT_FALSE(IsJointlyAcyclic(sigma));
}

TEST(DependencyLintTest, DatalogAndEgdOnlySetsAreJointlyAcyclic) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    p(X) :- q(X, Y).
    X = Y :- r(E, X), r(E, Y).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsJointlyAcyclic(*deps));
}

// ---- FLD103 mandatory cycles ---------------------------------------------

TEST(MandatoryCycleTest, DirectCycleFound) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
person[spouse {1:1} *=> person].
john : person.
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  MandatoryCycleReport report = FindMandatoryCycle(world, program->facts);
  ASSERT_TRUE(report.cyclic);
  ASSERT_EQ(report.cycle.size(), 1u);
  EXPECT_EQ(report.cycle[0].ToString(world), "person -[spouse]-> person");
  // cycle[i].target chains into cycle[i+1].cls (wrapping).
  EXPECT_TRUE(report.cycle.front().cls == report.cycle.back().target);
}

TEST(MandatoryCycleTest, CycleThroughSubclassInheritanceFound) {
  World world;
  // employee inherits mandatory boss from person; boss is typed into
  // manager, a subclass of person — the cycle runs through inheritance:
  // manager -[boss]-> manager.
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
manager :: person.
person[boss {1:*} *=> manager].
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  MandatoryCycleReport report = FindMandatoryCycle(world, program->facts);
  ASSERT_TRUE(report.cyclic);
  for (size_t i = 0; i < report.cycle.size(); ++i) {
    const MandatoryEdge& edge = report.cycle[i];
    const MandatoryEdge& next =
        report.cycle[(i + 1) % report.cycle.size()];
    EXPECT_TRUE(edge.target == next.cls);
  }
}

TEST(MandatoryCycleTest, AcyclicSchemaIsClean) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
person[name {1:*} *=> string].
person[age {0:1} *=> number].
john : person.
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(FindMandatoryCycle(world, program->facts).cyclic);
}

TEST(MandatoryCycleTest, UntypedMandatoryDoesNotCycle) {
  World world;
  // mandatory without a type target: rho_5 invents one value and stops.
  Result<flogic::Program> program =
      flogic::ParseProgram(world, "person[spouse {1:*} *=> _].");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(FindMandatoryCycle(world, program->facts).cyclic);
}

TEST(AnalyzerTest, CyclicKbYieldsFld103WithSpanAndWitness) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
person[spouse {1:1} *=> person].
john : person.
)");
  auto found = WithCode(all, "FLD103");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->span.line, 2);  // the spouse attribute expression
  ASSERT_FALSE(found[0]->notes.empty());
  EXPECT_NE(found[0]->notes[0].find("person -[spouse]-> person"),
            std::string::npos);
  EXPECT_TRUE(HasErrors(all));
}

// ---- analyzer composition -------------------------------------------------

TEST(AnalyzerTest, DiagnosticsAcrossRulesComeBackSorted) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
q1(X) :- X : person, Unused : course.
q2(X, Y) :- X : person.
)");
  ASSERT_GE(all.size(), 2u);
  for (size_t i = 1; i < all.size(); ++i) {
    bool prev_known = all[i - 1].span.known();
    bool cur_known = all[i].span.known();
    if (prev_known && cur_known) {
      EXPECT_LE(all[i - 1].span.line, all[i].span.line);
    }
    EXPECT_TRUE(prev_known || !cur_known);  // unknown spans stay last
  }
}

TEST(AnalyzerTest, CleanProgramProducesNoDiagnostics) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
% the university schema of the README, cycle-free
freshman :: student.
student :: person.
person[name {1:*} *=> string].
john : freshman.
john[name -> 'John Smith'].
q(X) :- X : person, X[name -> N], N : string.
)");
  EXPECT_TRUE(all.empty()) << FormatDiagnostics(all);
}

}  // namespace
}  // namespace floq::analysis
