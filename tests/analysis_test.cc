// Tests for the static diagnostics engine (src/analysis): the lint-code
// registry, every query lint family FLQ001..FLQ007 with exact source
// spans, the dependency-set grades FLD101/FLD102, the Section-4
// mandatory-cycle detector FLD103, and the two output formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/boundedness.h"
#include "analysis/cost_model.h"
#include "analysis/dependency_lints.h"
#include "analysis/diagnostic.h"
#include "analysis/query_lints.h"
#include "chase/chase.h"
#include "chase/dependencies.h"
#include "containment/governor.h"
#include "datalog/fact_index.h"
#include "flogic/parser.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq::analysis {
namespace {

std::vector<const Diagnostic*> WithCode(const std::vector<Diagnostic>& all,
                                        std::string_view code) {
  std::vector<const Diagnostic*> out;
  for (const Diagnostic& d : all) {
    if (d.code == code) out.push_back(&d);
  }
  return out;
}

bool HasCode(const std::vector<Diagnostic>& all, std::string_view code) {
  return !WithCode(all, code).empty();
}

// ---- registry and formatting ---------------------------------------------

TEST(DiagnosticTest, RegistryIsSortedAndComplete) {
  const std::vector<LintCodeInfo>& codes = LintCodes();
  ASSERT_FALSE(codes.empty());
  for (size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(std::string(codes[i - 1].code), codes[i].code);
  }
  for (const char* code : {"FLQ000", "FLQ001", "FLQ002", "FLQ003", "FLQ004",
                           "FLQ005", "FLQ006", "FLQ007", "FLD101", "FLD102",
                           "FLD103"}) {
    EXPECT_NE(FindLintCode(code), nullptr) << code;
  }
  EXPECT_EQ(FindLintCode("FLQ999"), nullptr);
  EXPECT_EQ(FindLintCode("FLQ001")->severity, Severity::kError);
  EXPECT_EQ(FindLintCode("FLQ007")->severity, Severity::kNote);
}

TEST(DiagnosticTest, FormatIncludesFileSpanSeverityAndCode) {
  Diagnostic d = MakeDiagnostic("FLQ002", "variable X occurs only once",
                                SourceSpan{3, 14, 3, 15});
  d.notes.push_back("a note");
  std::string text = FormatDiagnostic(d, "input.fl");
  EXPECT_EQ(text,
            "input.fl:3:14: warning: variable X occurs only once [FLQ002]\n"
            "    note: a note");
  // Without a span or file the location prefix disappears.
  EXPECT_EQ(FormatDiagnostic(MakeDiagnostic("FLQ006", "bad")),
            "error: bad [FLQ006]");
}

TEST(DiagnosticTest, StatusAnchorBecomesSpan) {
  Diagnostic d = DiagnosticFromStatus(
      InvalidArgumentError("parse error at 7:12: expected ':-'"));
  EXPECT_EQ(d.code, "FLQ000");
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.span.line, 7);
  EXPECT_EQ(d.span.column, 12);
}

TEST(DiagnosticTest, SortPutsUnknownSpansLast) {
  std::vector<Diagnostic> all;
  all.push_back(MakeDiagnostic("FLD101", "no span"));
  all.push_back(MakeDiagnostic("FLQ002", "later", SourceSpan{5, 1, 5, 2}));
  all.push_back(MakeDiagnostic("FLQ001", "earlier", SourceSpan{2, 3, 2, 4}));
  SortDiagnostics(all);
  EXPECT_EQ(all[0].code, "FLQ001");
  EXPECT_EQ(all[1].code, "FLQ002");
  EXPECT_EQ(all[2].code, "FLD101");
}

TEST(DiagnosticTest, JsonShape) {
  std::vector<Diagnostic> all;
  Diagnostic d = MakeDiagnostic("FLQ005", "duplicate \"atom\"",
                                SourceSpan{1, 2, 1, 9});
  d.notes.push_back("first occurrence at 1:1");
  all.push_back(std::move(d));
  std::string json = DiagnosticsToJson(all, "in.fl");
  EXPECT_NE(json.find("\"code\": \"FLQ005\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"duplicate-atom\""), std::string::npos);
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"in.fl\""), std::string::npos);
  EXPECT_NE(json.find("duplicate \\\"atom\\\""), std::string::npos);
  EXPECT_NE(json.find("\"span\": {\"line\": 1, \"column\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"notes\": [\"first occurrence at 1:1\"]"),
            std::string::npos);
  EXPECT_EQ(DiagnosticsToJson({}), "[]");
}

// ---- FLQ001 unsafe head variable -----------------------------------------

TEST(QueryLintTest, UnsafeHeadVariableWithExactSpan) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
q(X, Y) :- X : person.
)");
  auto found = WithCode(all, "FLQ001");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_NE(found[0]->message.find("Y"), std::string::npos);
  // "Y" sits at line 2, column 6 of the program text.
  EXPECT_EQ(found[0]->span.line, 2);
  EXPECT_EQ(found[0]->span.column, 6);
  EXPECT_EQ(found[0]->span.end_column, 7);
  EXPECT_TRUE(HasErrors(all));
}

TEST(QueryLintTest, SafeQueryHasNoUnsafeHeadDiagnostic) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X : person.");
  EXPECT_FALSE(HasCode(all, "FLQ001"));
  EXPECT_FALSE(HasErrors(all));
}

// ---- FLQ002 singleton variables ------------------------------------------

TEST(QueryLintTest, SingletonVariableFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X : person, Unused : course.");
  auto found = WithCode(all, "FLQ002");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_NE(found[0]->message.find("Unused"), std::string::npos);
  EXPECT_TRUE(found[0]->span.known());
}

TEST(QueryLintTest, AnonymousAndProjectedVariablesAreSilent) {
  World world;
  // _ is the explicit don't-care; X is projected by the head.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- X[age -> _].");
  EXPECT_FALSE(HasCode(all, "FLQ002"));
}

// ---- FLQ003 cartesian product --------------------------------------------

TEST(QueryLintTest, DisconnectedComponentsFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X, Y) :- X : person, Y : course.");
  auto found = WithCode(all, "FLQ003");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->notes.size(), 2u);
}

TEST(QueryLintTest, GroundAtomsAreNotProductFactors) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), sub(c, d).");
  EXPECT_FALSE(HasCode(all, "FLQ003"));
}

// ---- FLQ004 P_FL role misuse ---------------------------------------------

TEST(QueryLintTest, AttributeObjectRoleMixFlagged) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, C), data(X, C, V), data(Y, C, V).");
  auto found = WithCode(all, "FLQ004");
  ASSERT_EQ(found.size(), 1u);  // reported once per term
  EXPECT_NE(found[0]->message.find("C"), std::string::npos);
  EXPECT_EQ(found[0]->notes.size(), 2u);
}

TEST(QueryLintTest, PaperFigureOneQueryIsRoleClean) {
  World world;
  // Figure 1 of the paper: T is object/class throughout, A is attribute
  // throughout — no mix, even though T occurs in type's value position.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q() :- mandatory(A, T), type(T, A, T), sub(T, U).");
  EXPECT_FALSE(HasCode(all, "FLQ004"));
}

// ---- FLQ005 duplicate atoms ----------------------------------------------

TEST(QueryLintTest, DuplicateAtomFlaggedAtSecondOccurrence) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, C), member(X, C).");
  auto found = WithCode(all, "FLQ005");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->span.column, 23);  // the second member(X, C)
  ASSERT_EQ(found[0]->notes.size(), 1u);
  EXPECT_NE(found[0]->notes[0].find("1:9"), std::string::npos);
}

// ---- FLQ006 unsatisfiable under Sigma_FL ---------------------------------

TEST(QueryLintTest, FunctViolationMakesQueryUnsatisfiable) {
  World world;
  // rho_4 must equate the distinct constants one and two.
  std::vector<Diagnostic> all = AnalyzeProgramText(world,
      "q(X) :- member(X, c), data(o, a, one), data(o, a, two), "
      "funct(a, o).");
  EXPECT_TRUE(HasCode(all, "FLQ006"));
  EXPECT_TRUE(HasErrors(all));
}

TEST(QueryLintTest, SatisfiableQueryPassesTheProbe) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X, V) :- data(X, a, V), funct(a, X).");
  EXPECT_FALSE(HasCode(all, "FLQ006"));
}

// ---- FLQ007 redundant atoms ----------------------------------------------

TEST(QueryLintTest, SigmaRedundantAtomFlagged) {
  World world;
  // member(X, c) follows from member(X, d) and sub(d, c) under rho_3 —
  // the introduction's motivating example of constraint-aware redundancy.
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), member(X, d), sub(d, c).");
  auto found = WithCode(all, "FLQ007");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_NE(found[0]->message.find("member(X, c)"), std::string::npos);
  EXPECT_EQ(found[0]->span.column, 9);
}

TEST(QueryLintTest, MinimalQueryHasNoRedundancyNote) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(
      world, "q(X) :- member(X, c), member(X, d).");
  EXPECT_FALSE(HasCode(all, "FLQ007"));
}

TEST(QueryLintTest, ProbesCanBeDisabled) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgramLenient(
      world, "q(X) :- member(X, c), member(X, d), sub(d, c).");
  ASSERT_TRUE(program.ok());
  QueryLintOptions options;
  options.chase_probe = false;
  options.redundancy = false;
  std::vector<Diagnostic> all =
      LintQuery(world, program->rules[0], options);
  EXPECT_FALSE(HasCode(all, "FLQ006"));
  EXPECT_FALSE(HasCode(all, "FLQ007"));
}

// ---- FLQ000 parse errors -------------------------------------------------

TEST(AnalyzerTest, ParseErrorBecomesLocatedDiagnostic) {
  World world;
  std::vector<Diagnostic> all =
      AnalyzeProgramText(world, "q(X) :- X : .");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].code, "FLQ000");
  EXPECT_EQ(all[0].severity, Severity::kError);
  EXPECT_TRUE(all[0].span.known());
}

// ---- FLD101/FLD102 dependency grades -------------------------------------

TEST(DependencyLintTest, WeaklyAcyclicSetIsClean) {
  World world;
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
  )");
  EXPECT_TRUE(all.empty());
}

TEST(DependencyLintTest, JointlyAcyclicRefinementReported) {
  World world;
  // Not weakly acyclic (p[0] -*-> q[1] -> p[0]) but jointly acyclic:
  // the invented Y can never reach r[1]... there is no rule binding a
  // frontier variable entirely inside Mov(Y) = {q[1]}.
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    q(X, Y) :- p(X).
    p(Y) :- q(X, Y), r(Y).
  )");
  auto found = WithCode(all, "FLD102");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kNote);
  EXPECT_FALSE(HasCode(all, "FLD101"));
  // The witness cycle rides along as notes.
  bool has_special_edge = false;
  for (const std::string& note : found[0]->notes) {
    has_special_edge |= note.find("*-->") != std::string::npos;
  }
  EXPECT_TRUE(has_special_edge);
}

TEST(DependencyLintTest, SigmaFLStyleSetGetsFullWarningWithWitness) {
  World world;
  std::vector<Diagnostic> all = AnalyzeDependencyText(world, R"(
    member(V, T) :- type(O, A, T), data(O, A, V).
    data(O, A, V) :- mandatory(A, O).
    mandatory(A, O) :- member(O, C), mandatory(A, C).
  )");
  auto found = WithCode(all, "FLD101");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  // The witness must pass through the special edge into data[2] and
  // close the cycle back to mandatory[1].
  std::string joined;
  for (const std::string& note : found[0]->notes) joined += note + "\n";
  EXPECT_NE(joined.find("data[2]"), std::string::npos);
  EXPECT_NE(joined.find("mandatory[1]"), std::string::npos);
}

TEST(DependencyLintTest, FullSigmaFLIsNeitherGrade) {
  World world;
  DependencySet sigma = MakeSigmaFLDependencies(world);
  EXPECT_FALSE(IsWeaklyAcyclic(sigma, world));
  EXPECT_FALSE(IsJointlyAcyclic(sigma));
}

TEST(DependencyLintTest, DatalogAndEgdOnlySetsAreJointlyAcyclic) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    p(X) :- q(X, Y).
    X = Y :- r(E, X), r(E, Y).
  )");
  ASSERT_TRUE(deps.ok());
  EXPECT_TRUE(IsJointlyAcyclic(*deps));
}

// ---- FLD103 mandatory cycles ---------------------------------------------

TEST(MandatoryCycleTest, DirectCycleFound) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
person[spouse {1:1} *=> person].
john : person.
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  MandatoryCycleReport report = FindMandatoryCycle(world, program->facts);
  ASSERT_TRUE(report.cyclic);
  ASSERT_EQ(report.cycle.size(), 1u);
  EXPECT_EQ(report.cycle[0].ToString(world), "person -[spouse]-> person");
  // cycle[i].target chains into cycle[i+1].cls (wrapping).
  EXPECT_TRUE(report.cycle.front().cls == report.cycle.back().target);
}

TEST(MandatoryCycleTest, CycleThroughSubclassInheritanceFound) {
  World world;
  // employee inherits mandatory boss from person; boss is typed into
  // manager, a subclass of person — the cycle runs through inheritance:
  // manager -[boss]-> manager.
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
manager :: person.
person[boss {1:*} *=> manager].
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  MandatoryCycleReport report = FindMandatoryCycle(world, program->facts);
  ASSERT_TRUE(report.cyclic);
  for (size_t i = 0; i < report.cycle.size(); ++i) {
    const MandatoryEdge& edge = report.cycle[i];
    const MandatoryEdge& next =
        report.cycle[(i + 1) % report.cycle.size()];
    EXPECT_TRUE(edge.target == next.cls);
  }
}

TEST(MandatoryCycleTest, AcyclicSchemaIsClean) {
  World world;
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
person[name {1:*} *=> string].
person[age {0:1} *=> number].
john : person.
)");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(FindMandatoryCycle(world, program->facts).cyclic);
}

TEST(MandatoryCycleTest, UntypedMandatoryDoesNotCycle) {
  World world;
  // mandatory without a type target: rho_5 invents one value and stops.
  Result<flogic::Program> program =
      flogic::ParseProgram(world, "person[spouse {1:*} *=> _].");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(FindMandatoryCycle(world, program->facts).cyclic);
}

TEST(AnalyzerTest, CyclicKbYieldsFld103WithSpanAndWitness) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
person[spouse {1:1} *=> person].
john : person.
)");
  auto found = WithCode(all, "FLD103");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->span.line, 2);  // the spouse attribute expression
  ASSERT_FALSE(found[0]->notes.empty());
  EXPECT_NE(found[0]->notes[0].find("person -[spouse]-> person"),
            std::string::npos);
  EXPECT_TRUE(HasErrors(all));
}

// ---- analyzer composition -------------------------------------------------

TEST(AnalyzerTest, DiagnosticsAcrossRulesComeBackSorted) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
q1(X) :- X : person, Unused : course.
q2(X, Y) :- X : person.
)");
  ASSERT_GE(all.size(), 2u);
  for (size_t i = 1; i < all.size(); ++i) {
    bool prev_known = all[i - 1].span.known();
    bool cur_known = all[i].span.known();
    if (prev_known && cur_known) {
      EXPECT_LE(all[i - 1].span.line, all[i].span.line);
    }
    EXPECT_TRUE(prev_known || !cur_known);  // unknown spans stay last
  }
}

TEST(AnalyzerTest, CleanProgramProducesNoDiagnostics) {
  World world;
  std::vector<Diagnostic> all = AnalyzeProgramText(world, R"(
% the university schema of the README, cycle-free
freshman :: student.
student :: person.
person[name {1:*} *=> string].
john : freshman.
john[name -> 'John Smith'].
q(X) :- X : person, X[name -> N], N : string.
)");
  EXPECT_TRUE(all.empty()) << FormatDiagnostics(all);
}

// ---- null-generation boundedness (DESIGN.md §15) -------------------------

Result<DependencySet> Deps(World& world, const char* text) {
  return ParseDependencies(world, text);
}

TEST(BoundednessTest, DatalogOnlySetGeneratesNoNulls) {
  World world;
  Result<DependencySet> deps = Deps(world, "p(X) :- q(X, Y).");
  ASSERT_TRUE(deps.ok());
  BoundednessReport report = AnalyzeBoundedness(*deps, world);
  EXPECT_EQ(report.degree, NullDegree::kNone);
  EXPECT_EQ(report.witness_degree, 0);
  EXPECT_TRUE(report.positions.empty());
  EXPECT_TRUE(report.bounded());
}

TEST(BoundednessTest, SingleInventionIsLinear) {
  World world;
  Result<DependencySet> deps = Deps(world, "q(X, Y) :- p(X).");
  ASSERT_TRUE(deps.ok());
  BoundednessReport report = AnalyzeBoundedness(*deps, world);
  EXPECT_EQ(report.degree, NullDegree::kLinear);
  EXPECT_EQ(report.witness_degree, 1);
  ASSERT_EQ(report.witness.size(), 1u);
  EXPECT_TRUE(report.witness[0].special);
  // The per-position table carries the graded position q[1].
  ASSERT_FALSE(report.positions.empty());
  EXPECT_EQ(report.positions[0].degree, NullDegree::kLinear);
  EXPECT_EQ(report.positions[0].position.ToString(world), "q[1]");
}

TEST(BoundednessTest, ChainedInventionIsPolynomialWithChainedWitness) {
  World world;
  // p[0] -*-> q[1] (invent Y), then q's frontier feeds r[1] (invent Z):
  // special edges chain to depth 2 without closing a cycle — O(n^2)
  // nulls, FLD201 territory.
  Result<DependencySet> deps = Deps(world, R"(
    q(X, Y) :- p(X).
    r(Y, Z) :- q(X, Y).
  )");
  ASSERT_TRUE(deps.ok());
  BoundednessReport report = AnalyzeBoundedness(*deps, world);
  EXPECT_EQ(report.degree, NullDegree::kPolynomial);
  EXPECT_EQ(report.witness_degree, 2);
  ASSERT_GE(report.witness.size(), 2u);
  for (size_t i = 1; i < report.witness.size(); ++i) {
    EXPECT_TRUE(report.witness[i - 1].to == report.witness[i].from)
        << WitnessPathToString(report.witness, *deps, world);
  }
  // Worst position first, and the whole-set grade is its grade.
  ASSERT_FALSE(report.positions.empty());
  EXPECT_EQ(report.positions[0].degree, NullDegree::kPolynomial);
  EXPECT_EQ(report.positions[0].witness_degree, report.witness_degree);
}

TEST(BoundednessTest, SpecialCycleIsUnbounded) {
  World world;
  Result<DependencySet> deps = Deps(world, R"(
    q(X, Y) :- p(X).
    p(Y) :- q(X, Y).
  )");
  ASSERT_TRUE(deps.ok());
  BoundednessReport report = AnalyzeBoundedness(*deps, world);
  EXPECT_EQ(report.degree, NullDegree::kUnbounded);
  EXPECT_FALSE(report.bounded());
  // Consistent with the weak-acyclicity test by construction.
  EXPECT_FALSE(IsWeaklyAcyclic(*deps, world));
  ASSERT_FALSE(report.witness.empty());
  bool has_special = false;
  for (const DependencyEdge& edge : report.witness) has_special |= edge.special;
  EXPECT_TRUE(has_special);
}

TEST(BoundednessTest, Fld201FiresOnPolynomialSetsOnly) {
  World world;
  Result<DependencySet> poly = Deps(world, R"(
    q(X, Y) :- p(X).
    r(Y, Z) :- q(X, Y).
  )");
  ASSERT_TRUE(poly.ok());
  std::vector<Diagnostic> found = LintDependencyCost(*poly, world);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].code, "FLD201");
  EXPECT_EQ(found[0].severity, Severity::kWarning);
  EXPECT_NE(found[0].message.find("degree 2"), std::string::npos);
  bool witness_note = false;
  for (const std::string& note : found[0].notes) {
    witness_note |= note.find("*-->") != std::string::npos;
  }
  EXPECT_TRUE(witness_note);
  // It folds into the dependency analyzer next to FLD101/102.
  std::vector<Diagnostic> all = AnalyzeDependencySet(*poly, world);
  EXPECT_TRUE(HasCode(all, "FLD201"));

  World world2;
  Result<DependencySet> linear = Deps(world2, "q(X, Y) :- p(X).");
  ASSERT_TRUE(linear.ok());
  EXPECT_TRUE(LintDependencyCost(*linear, world2).empty());
  World world3;
  Result<DependencySet> cyclic = Deps(world3, R"(
    q(X, Y) :- p(X).
    p(Y) :- q(X, Y).
  )");
  ASSERT_TRUE(cyclic.ok());
  // kUnbounded is FLD101's finding, not FLD201's.
  EXPECT_TRUE(LintDependencyCost(*cyclic, world3).empty());
}

TEST(SigmaBoundednessTest, MandatoryChainDepthBoundsTheCascade) {
  World world;
  // a -[f]-> b -[g]-> c: the rho_5 cascade nests two levels deep and
  // stops — linear null generation with mandatory depth 2.
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
a[f {1:1} *=> b].
b[g {1:1} *=> c].
x : a.
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  SigmaBoundedness grade = AnalyzeSigmaBoundedness(world, program->facts);
  EXPECT_EQ(grade.degree, NullDegree::kLinear);
  EXPECT_EQ(grade.mandatory_depth, 2);
  ASSERT_EQ(grade.witness.size(), 2u);
  EXPECT_TRUE(grade.witness[0].target == grade.witness[1].cls);
}

TEST(SigmaBoundednessTest, CyclicKbIsUnboundedWithWitness) {
  World world;
  // The testdata/cyclic_kb.fl schema: spouse mandatory on person, typed
  // back into person.
  Result<flogic::Program> program = flogic::ParseProgram(world, R"(
person[spouse {1:1} *=> person].
john : person.
)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  SigmaBoundedness grade = AnalyzeSigmaBoundedness(world, program->facts);
  EXPECT_EQ(grade.degree, NullDegree::kUnbounded);
  ASSERT_FALSE(grade.witness.empty());
  EXPECT_EQ(grade.witness[0].ToString(world), "person -[spouse]-> person");
  // The witness closes: each edge's target is the next edge's class.
  for (size_t i = 0; i < grade.witness.size(); ++i) {
    const MandatoryEdge& edge = grade.witness[i];
    const MandatoryEdge& next = grade.witness[(i + 1) % grade.witness.size()];
    EXPECT_TRUE(edge.target == next.cls);
  }
}

TEST(SigmaBoundednessTest, QueryVariablesParticipateInTheWalk) {
  World world;
  // The chase treats query variables as values: X's membership in class a
  // starts the same cascade a ground member would.
  Result<ConjunctiveQuery> query = ParseQuery(
      world,
      "q(X) :- member(X, a), mandatory(f, a), type(a, f, b), "
      "mandatory(g, b), type(b, g, c).");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  SigmaBoundedness grade = AnalyzeSigmaBoundedness(world, query->body());
  EXPECT_EQ(grade.degree, NullDegree::kLinear);
  EXPECT_EQ(grade.mandatory_depth, 2);
}

// ---- chase growth model and pair cost ------------------------------------

TEST(CostModelTest, CompletedProbeIsExactWithFullConfidence) {
  World world;
  Result<ConjunctiveQuery> query = ParseQuery(world, "q(X) :- member(X, c).");
  ASSERT_TRUE(query.ok());
  ChaseOptions options;
  options.max_level = 8;
  ChaseResult probe = ChaseQuery(world, *query, options);
  ASSERT_EQ(probe.outcome(), ChaseOutcome::kCompleted);
  ChaseGrowthModel model = FitChaseGrowth(probe);
  EXPECT_TRUE(model.completed);
  // Exact at every level: the fixpoint adds nothing deeper.
  EXPECT_EQ(model.AtomsAtLevel(100, 1'000'000), probe.size());
  EXPECT_EQ(model.ConfidenceAtLevel(100), 1.0);
}

TEST(CostModelTest, GrowingProbeExtrapolatesAndDecaysConfidence) {
  World world;
  // The mandatory cycle: every level invents a fresh spouse, so a level-2
  // probe is still growing and deeper levels are extrapolated.
  Result<ConjunctiveQuery> query = ParseQuery(
      world,
      "q() :- member(j, person), mandatory(spouse, person), "
      "type(person, spouse, person).");
  ASSERT_TRUE(query.ok());
  ChaseOptions options;
  options.max_level = 2;
  ChaseResult probe = ChaseQuery(world, *query, options);
  ChaseGrowthModel model = FitChaseGrowth(probe);
  EXPECT_FALSE(model.completed);
  EXPECT_GT(model.per_level, 1.0);
  const uint64_t cap = 1u << 20;
  uint64_t prev = model.AtomsAtLevel(2, cap);
  for (int level : {4, 8, 16}) {
    uint64_t at = model.AtomsAtLevel(level, cap);
    EXPECT_GE(at, prev);
    prev = at;
  }
  EXPECT_EQ(model.AtomsAtLevel(1000, cap), cap);  // saturates at the budget
  EXPECT_LT(model.ConfidenceAtLevel(8), 1.0);
  EXPECT_LT(model.ConfidenceAtLevel(16), model.ConfidenceAtLevel(8));
  EXPECT_EQ(model.ConfidenceAtLevel(2), 1.0);  // within the probe: exact
}

TEST(CostModelTest, ConstantSelectivityOrdersPatterns) {
  World world;
  FactIndex index;
  Term c1 = world.MakeConstant("c1");
  Term c2 = world.MakeConstant("c2");
  for (int i = 0; i < 50; ++i) {
    index.Insert(Atom::Member(
        world.MakeConstant("x" + std::to_string(i)), c1));
  }
  index.Insert(Atom::Member(world.MakeConstant("y"), c2));
  TargetProfile target = ProfileFacts(index);
  EXPECT_EQ(target.PredicateCount(pfl::kMember), 51u);
  EXPECT_EQ(target.ConstantCount(pfl::kMember, 1, c1), 50u);
  EXPECT_EQ(target.ConstantCount(pfl::kMember, 1, c2), 1u);

  Result<ConjunctiveQuery> common = ParseQuery(world, "a() :- member(X, c1).");
  Result<ConjunctiveQuery> rare = ParseQuery(world, "b() :- member(X, c2).");
  ASSERT_TRUE(common.ok() && rare.ok());
  CostEstimate common_cost =
      EstimatePairCost(target, ProfilePattern(*common), 0, 1'000'000);
  CostEstimate rare_cost =
      EstimatePairCost(target, ProfilePattern(*rare), 0, 1'000'000);
  EXPECT_GT(common_cost.hom_fanout_bound, rare_cost.hom_fanout_bound);

  // A constant absent from the (completed) target can never match: the
  // chase invents only nulls, so the fan-out collapses.
  Result<ConjunctiveQuery> absent =
      ParseQuery(world, "c() :- member(X, nowhere).");
  ASSERT_TRUE(absent.ok());
  CostEstimate absent_cost =
      EstimatePairCost(target, ProfilePattern(*absent), 0, 1'000'000);
  EXPECT_LT(absent_cost.hom_fanout_bound, rare_cost.hom_fanout_bound);
}

TEST(CostModelTest, Fld202FiresOnVariableDisjointBodies) {
  World world;
  Result<ConjunctiveQuery> query =
      ParseQuery(world, "q() :- member(X, c1), member(Y, c2).");
  ASSERT_TRUE(query.ok());
  QueryCostReport report = AnalyzeQueryCost(world, *query);
  EXPECT_TRUE(HasCode(report.diagnostics, "FLD202"));

  World world2;
  Result<ConjunctiveQuery> joined =
      ParseQuery(world2, "q() :- member(X, C), sub(C, D).");
  ASSERT_TRUE(joined.ok());
  QueryCostReport clean = AnalyzeQueryCost(world2, *joined);
  EXPECT_FALSE(HasCode(clean.diagnostics, "FLD202"));
}

TEST(CostModelTest, Fld203FiresWhenTheEstimateExceedsTheBudget) {
  World world;
  Result<ConjunctiveQuery> query = ParseQuery(
      world,
      "q() :- member(j, person), mandatory(spouse, person), "
      "type(person, spouse, person).");
  ASSERT_TRUE(query.ok());
  CostAnalysisOptions options;
  options.chase_atom_budget = 64;  // tiny: the spouse cascade blows past it
  QueryCostReport report = AnalyzeQueryCost(world, *query, options);
  auto found = WithCode(report.diagnostics, "FLD203");
  ASSERT_EQ(found.size(), 1u);
  // The mandatory cycle is named in the supporting notes.
  EXPECT_EQ(report.boundedness.degree, NullDegree::kUnbounded);
  bool cycle_note = false;
  for (const std::string& note : found[0]->notes) {
    cycle_note |= note.find("person -[spouse]-> person") != std::string::npos;
  }
  EXPECT_TRUE(cycle_note);

  // A bounded query under the default budget stays silent.
  World world2;
  Result<ConjunctiveQuery> small =
      ParseQuery(world2, "q(X) :- member(X, c).");
  ASSERT_TRUE(small.ok());
  EXPECT_FALSE(HasCode(AnalyzeQueryCost(world2, *small).diagnostics,
                       "FLD203"));
}

TEST(CostModelTest, FromEstimateOnlyEverRaisesTheBudget) {
  ResourceBudget base;
  base.hom_step_budget = 100;
  // Cheap pairs keep the base budget.
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 50.0, 100.0).hom_step_budget,
            100u);
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 100.0, 100.0).hom_step_budget,
            100u);
  // Expensive pairs scale linearly with the cost ratio...
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 400.0, 100.0).hom_step_budget,
            400u);
  // ...up to the 64x cap.
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 1e9, 1.0).hom_step_budget,
            6400u);
  // An unlimited budget stays unlimited; degenerate means stay put.
  ResourceBudget unlimited;
  EXPECT_EQ(ResourceBudget::FromEstimate(unlimited, 400.0, 100.0)
                .hom_step_budget,
            0u);
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 400.0, 0.0).hom_step_budget,
            100u);
  EXPECT_EQ(ResourceBudget::FromEstimate(base, 0.0, 100.0).hom_step_budget,
            100u);
}

}  // namespace
}  // namespace floq::analysis
