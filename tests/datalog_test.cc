#include <gtest/gtest.h>

#include "datalog/database.h"
#include "datalog/evaluator.h"
#include "datalog/fact_index.h"
#include "datalog/match.h"
#include "datalog/rule.h"
#include "query/parser.h"
#include "term/world.h"

namespace floq {
namespace {

// ---- FactIndex -----------------------------------------------------------

TEST(FactIndexTest, InsertDeduplicates) {
  World world;
  FactIndex index;
  Atom atom = Atom::Sub(world.MakeConstant("a"), world.MakeConstant("b"));
  auto [id1, fresh1] = index.Insert(atom);
  auto [id2, fresh2] = index.Insert(atom);
  EXPECT_TRUE(fresh1);
  EXPECT_FALSE(fresh2);
  EXPECT_EQ(id1, id2);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Contains(atom));
}

TEST(FactIndexTest, PostingListsAreStrictlyIncreasing) {
  // The galloping intersection in the homomorphism kernel relies on every
  // posting list being strictly increasing in fact id — which holds by
  // construction (ids are assigned in insertion order, each Insert
  // appends) and is FLOQ_DCHECKed per append in debug builds.
  World world;
  FactIndex index;
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  Term c = world.MakeConstant("c");
  index.Insert(Atom::Sub(a, b));
  index.Insert(Atom::Sub(b, c));
  index.Insert(Atom::Sub(a, c));
  index.Insert(Atom::Member(a, b));
  index.Insert(Atom::Sub(b, c));  // duplicate: must not re-append
  EXPECT_TRUE(index.PostingListsSorted());

  const std::vector<uint32_t> subs = index.WithPredicate(pfl::kSub).ToVector();
  EXPECT_EQ(subs, (std::vector<uint32_t>{0, 1, 2}));
  const std::vector<uint32_t> from_a =
      index.WithArgument(pfl::kSub, 0, a).ToVector();
  EXPECT_EQ(from_a, (std::vector<uint32_t>{0, 2}));
}

TEST(FactIndexTest, PredicateBuckets) {
  World world;
  FactIndex index;
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  index.Insert(Atom::Sub(a, b));
  index.Insert(Atom::Member(a, b));
  index.Insert(Atom::Sub(b, a));
  EXPECT_EQ(index.WithPredicate(pfl::kSub).size(), 2u);
  EXPECT_EQ(index.WithPredicate(pfl::kMember).size(), 1u);
  EXPECT_TRUE(index.WithPredicate(pfl::kData).empty());
}

TEST(FactIndexTest, ArgumentIndex) {
  World world;
  FactIndex index;
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  Term c = world.MakeConstant("c");
  index.Insert(Atom::Sub(a, b));
  index.Insert(Atom::Sub(a, c));
  index.Insert(Atom::Sub(b, c));
  EXPECT_EQ(index.WithArgument(pfl::kSub, 0, a).size(), 2u);
  EXPECT_EQ(index.WithArgument(pfl::kSub, 1, c).size(), 2u);
  EXPECT_TRUE(index.WithArgument(pfl::kSub, 0, c).empty());
}

// Regression test for the argument-index packing: the key used to give
// the position only 2 bits, so position 4 of a 6-ary predicate computed
// the same bucket key as position 0 of the next predicate id (and
// position 5 as its position 1), and lookups returned ids of foreign
// atoms.
TEST(FactIndexTest, WideArityPositionsDoNotCollide) {
  World world;
  PredicateId wide_a = world.predicates().Intern("wide_a", 6);
  PredicateId wide_b = world.predicates().Intern("wide_b", 6);
  ASSERT_NE(wide_a, kInvalidPredicate);
  ASSERT_EQ(wide_b, wide_a + 1);  // consecutive ids: the aliasing setup

  Term v = world.MakeConstant("v");
  Term w = world.MakeConstant("w");
  std::vector<Term> filler;
  for (int i = 0; i < 6; ++i) {
    filler.push_back(world.MakeConstant("c" + std::to_string(i)));
  }

  FactIndex index;
  Atom a(wide_a, filler);
  a.set_arg(4, v);
  a.set_arg(5, w);
  Atom b(wide_b, filler);
  b.set_arg(0, v);
  b.set_arg(1, w);
  index.Insert(a);
  index.Insert(b);

  // Old packing: key(wide_a, 4, v) == key(wide_b, 0, v), so both lookups
  // saw a two-element bucket.
  ASSERT_EQ(index.WithArgument(wide_a, 4, v).size(), 1u);
  EXPECT_EQ(index.at(index.WithArgument(wide_a, 4, v).ToVector()[0]), a);
  ASSERT_EQ(index.WithArgument(wide_b, 0, v).size(), 1u);
  EXPECT_EQ(index.at(index.WithArgument(wide_b, 0, v).ToVector()[0]), b);

  // And key(wide_a, 5, w) == key(wide_b, 1, w).
  ASSERT_EQ(index.WithArgument(wide_a, 5, w).size(), 1u);
  EXPECT_EQ(index.at(index.WithArgument(wide_a, 5, w).ToVector()[0]), a);
  ASSERT_EQ(index.WithArgument(wide_b, 1, w).size(), 1u);
  EXPECT_EQ(index.at(index.WithArgument(wide_b, 1, w).ToVector()[0]), b);

  EXPECT_TRUE(index.WithArgument(wide_a, 0, v).empty());
  EXPECT_TRUE(index.WithArgument(wide_b, 4, v).empty());
}

TEST(FactIndexTest, IdOfMissingAtom) {
  World world;
  FactIndex index;
  EXPECT_EQ(index.IdOf(Atom::Sub(world.MakeConstant("x"),
                                 world.MakeConstant("y"))),
            kInvalidFactId);
}

// ---- MatchConjunction -------------------------------------------------------

class MatchTest : public ::testing::Test {
 protected:
  World world_;
  FactIndex index_;

  void Load(const char* text) {
    Result<std::vector<Atom>> atoms = ParseAtoms(world_, text);
    ASSERT_TRUE(atoms.ok()) << atoms.status().ToString();
    for (const Atom& atom : *atoms) index_.Insert(atom);
  }

  std::vector<Atom> Pattern(const char* text) {
    Result<std::vector<Atom>> atoms = ParseAtoms(world_, text);
    EXPECT_TRUE(atoms.ok()) << atoms.status().ToString();
    return *atoms;
  }

  size_t CountMatches(const char* pattern_text) {
    size_t count = 0;
    MatchConjunction(Pattern(pattern_text), index_, Substitution(),
                     [&](const Substitution&) {
                       ++count;
                       return true;
                     });
    return count;
  }
};

TEST_F(MatchTest, SingleAtomAllBindings) {
  Load("sub(a, b), sub(b, c), sub(a, c).");
  EXPECT_EQ(CountMatches("sub(X, Y)."), 3u);
  EXPECT_EQ(CountMatches("sub(a, Y)."), 2u);
  EXPECT_EQ(CountMatches("sub(a, b)."), 1u);
  EXPECT_EQ(CountMatches("sub(c, Y)."), 0u);
}

TEST_F(MatchTest, RepeatedVariableWithinAtom) {
  Load("sub(a, a), sub(a, b).");
  EXPECT_EQ(CountMatches("sub(X, X)."), 1u);
}

TEST_F(MatchTest, JoinAcrossAtoms) {
  Load("sub(a, b), sub(b, c), sub(c, d).");
  // Chains of length 2: (a,b,c), (b,c,d).
  EXPECT_EQ(CountMatches("sub(X, Y), sub(Y, Z)."), 2u);
}

TEST_F(MatchTest, ConstantsMapToThemselves) {
  Load("member(john, student), member(mary, student).");
  EXPECT_EQ(CountMatches("member(john, C)."), 1u);
}

TEST_F(MatchTest, InitialSubstitutionIsRespected) {
  Load("sub(a, b), sub(b, c).");
  std::vector<Atom> pattern = Pattern("sub(X, Y).");
  Substitution initial;
  initial.Bind(world_.MakeVariable("X"), world_.MakeConstant("b"));
  size_t count = 0;
  MatchConjunction(pattern, index_, initial, [&](const Substitution& match) {
    EXPECT_EQ(match.Apply(world_.MakeVariable("Y")), world_.MakeConstant("c"));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1u);
}

TEST_F(MatchTest, EarlyStopReturnsFalse) {
  Load("sub(a, b), sub(b, c), sub(c, d).");
  std::vector<Atom> pattern = Pattern("sub(X, Y).");
  bool completed = MatchConjunction(pattern, index_, Substitution(),
                                    [](const Substitution&) { return false; });
  EXPECT_FALSE(completed);
}

TEST_F(MatchTest, FindFirstMatchReportsWitness) {
  Load("member(john, student).");
  Substitution found;
  EXPECT_TRUE(FindFirstMatch(Pattern("member(X, student)."), index_,
                             Substitution(), &found));
  EXPECT_EQ(found.Apply(world_.MakeVariable("X")),
            world_.MakeConstant("john"));
  EXPECT_FALSE(
      FindFirstMatch(Pattern("member(X, person)."), index_, Substitution()));
}

TEST_F(MatchTest, EmptyPatternMatchesOnce) {
  Load("sub(a, b).");
  EXPECT_EQ(CountMatches(""), 1u);
}

TEST_F(MatchTest, StatsCountNodes) {
  Load("sub(a, b), sub(b, c).");
  MatchStats stats;
  MatchConjunction(Pattern("sub(X, Y), sub(Y, Z)."), index_, Substitution(),
                   [](const Substitution&) { return true; }, &stats);
  EXPECT_GT(stats.nodes_visited, 0u);
  EXPECT_EQ(stats.matches_found, 1u);
}

// ---- TryUnifyAtom -----------------------------------------------------------

TEST(TryUnifyAtomTest, BindsAndChecks) {
  World world;
  Term x = world.MakeVariable("X");
  Term a = world.MakeConstant("a");
  Term b = world.MakeConstant("b");
  Substitution subst;
  EXPECT_TRUE(TryUnifyAtom(Atom::Sub(x, x), Atom::Sub(a, a), subst));
  EXPECT_EQ(subst.Apply(x), a);
  Substitution subst2;
  EXPECT_FALSE(TryUnifyAtom(Atom::Sub(x, x), Atom::Sub(a, b), subst2));
  EXPECT_TRUE(subst2.empty());  // failed unification leaves no bindings
}

TEST(TryUnifyAtomTest, PredicateMismatch) {
  World world;
  Term a = world.MakeConstant("a");
  Substitution subst;
  EXPECT_FALSE(TryUnifyAtom(Atom::Sub(a, a), Atom::Member(a, a), subst));
}

// ---- SemiNaiveFixpoint ------------------------------------------------------

class FixpointTest : public ::testing::Test {
 protected:
  World world_;
  Database db_;

  void LoadFacts(const char* text) {
    Result<std::vector<Atom>> atoms = ParseAtoms(world_, text);
    ASSERT_TRUE(atoms.ok()) << atoms.status().ToString();
    db_.InsertAll(*atoms);
  }

  Rule MakeRule(const char* text) {
    Result<ConjunctiveQuery> q = ParseQuery(world_, text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    // Reuse the CQ parser: head predicate = rule name.
    PredicateId pred =
        world_.predicates().Intern(q->name(), int(q->head().size()));
    return Rule{Atom(pred, q->head()), q->body()};
  }
};

TEST_F(FixpointTest, TransitiveClosure) {
  LoadFacts("sub(a, b), sub(b, c), sub(c, d).");
  std::vector<Rule> rules = {MakeRule("sub(X, Z) :- sub(X, Y), sub(Y, Z).")};
  Result<uint64_t> derived = SemiNaiveFixpoint(db_, rules);
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, 3u);  // (a,c), (b,d), (a,d)
  EXPECT_TRUE(db_.Contains(Atom::Sub(world_.MakeConstant("a"),
                                     world_.MakeConstant("d"))));
}

TEST_F(FixpointTest, MembershipInheritance) {
  LoadFacts("member(john, freshman), sub(freshman, student), "
            "sub(student, person).");
  std::vector<Rule> rules = {
      MakeRule("sub(X, Z) :- sub(X, Y), sub(Y, Z)."),
      MakeRule("member(O, D) :- member(O, C), sub(C, D)."),
  };
  ASSERT_TRUE(SemiNaiveFixpoint(db_, rules).ok());
  EXPECT_TRUE(db_.Contains(Atom::Member(world_.MakeConstant("john"),
                                        world_.MakeConstant("person"))));
  EXPECT_EQ(db_.FactsWith(pfl::kMember).size(), 3u);
}

TEST_F(FixpointTest, EmptyRulesDeriveNothing) {
  LoadFacts("sub(a, b).");
  Result<uint64_t> derived = SemiNaiveFixpoint(db_, {});
  ASSERT_TRUE(derived.ok());
  EXPECT_EQ(*derived, 0u);
}

TEST_F(FixpointTest, BudgetIsEnforced) {
  // succ-cycle free growth: f(X,Y) over a chain squared would stay finite;
  // instead use a rule that keeps inventing pairs over a 20-element domain:
  // reach(X, Z) :- edge(X, Y), reach(Y, Z) on a cycle saturates quickly, so
  // budget must be tiny to trigger.
  LoadFacts("edge(a, b), edge(b, c), edge(c, a), reach(a, a).");
  std::vector<Rule> rules = {
      MakeRule("reach(X, Z) :- edge(X, Y), reach(Y, Z).")};
  EvalOptions options;
  options.max_facts = 5;
  Result<uint64_t> derived = SemiNaiveFixpoint(db_, rules, options);
  EXPECT_FALSE(derived.ok());
  EXPECT_EQ(derived.status().code(), StatusCode::kResourceExhausted);
}

// ---- EvaluateQuery ----------------------------------------------------------

TEST_F(FixpointTest, EvaluateQueryReturnsDistinctTuples) {
  LoadFacts("member(john, student), member(mary, student), "
            "member(john, club).");
  ConjunctiveQuery q = *ParseQuery(world_, "q(X) :- member(X, C).");
  std::vector<std::vector<Term>> answers = EvaluateQuery(db_, q);
  EXPECT_EQ(answers.size(), 2u);  // john, mary — deduplicated
}

TEST_F(FixpointTest, EvaluateQueryWithJoin) {
  LoadFacts("type(person, age, number), data(john, age, 33), "
            "data(john, name, js).");
  ConjunctiveQuery q =
      *ParseQuery(world_, "q(A, V) :- type(person, A, number), "
                          "data(john, A, V).");
  std::vector<std::vector<Term>> answers = EvaluateQuery(db_, q);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(world_.NameOf(answers[0][0]), "age");
  EXPECT_EQ(world_.NameOf(answers[0][1]), "33");
}

TEST_F(FixpointTest, QueryReturnsChecksSpecificTuple) {
  LoadFacts("member(john, student).");
  ConjunctiveQuery q = *ParseQuery(world_, "q(X) :- member(X, student).");
  EXPECT_TRUE(QueryReturns(db_, q, {world_.MakeConstant("john")}));
  EXPECT_FALSE(QueryReturns(db_, q, {world_.MakeConstant("mary")}));
  EXPECT_FALSE(QueryReturns(db_, q, {}));  // arity mismatch
}

TEST_F(FixpointTest, BooleanQueryOnEmptyDatabase) {
  ConjunctiveQuery q = *ParseQuery(world_, "q() :- member(X, student).");
  EXPECT_TRUE(EvaluateQuery(db_, q).empty());
}

}  // namespace
}  // namespace floq
