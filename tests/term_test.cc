#include <gtest/gtest.h>

#include "term/atom.h"
#include "term/predicate.h"
#include "term/substitution.h"
#include "term/term.h"
#include "term/world.h"

namespace floq {
namespace {

// ---- Term -------------------------------------------------------------

TEST(TermTest, KindsAndIndexes) {
  Term c = Term::Constant(5);
  Term n = Term::Null(7);
  Term v = Term::Variable(9);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_TRUE(n.IsNull());
  EXPECT_TRUE(v.IsVariable());
  EXPECT_EQ(c.index(), 5u);
  EXPECT_EQ(n.index(), 7u);
  EXPECT_EQ(v.index(), 9u);
}

TEST(TermTest, EqualityIsKindAndIndex) {
  EXPECT_EQ(Term::Constant(1), Term::Constant(1));
  EXPECT_NE(Term::Constant(1), Term::Variable(1));
  EXPECT_NE(Term::Constant(1), Term::Constant(2));
}

TEST(TermTest, DefaultIsInvalid) {
  Term t;
  EXPECT_FALSE(t.valid());
  EXPECT_NE(t, Term::Constant(0));
}

TEST(TermTest, TotalOrderIsKindMajor) {
  EXPECT_LT(Term::Constant(100), Term::Null(0));
  EXPECT_LT(Term::Null(100), Term::Variable(0));
}

// ---- World -----------------------------------------------------------

TEST(WorldTest, ConstantInterning) {
  World world;
  Term a1 = world.MakeConstant("john");
  Term a2 = world.MakeConstant("john");
  Term b = world.MakeConstant("mary");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(world.NameOf(a1), "john");
}

TEST(WorldTest, VariablesAndConstantsAreSeparateNamespaces) {
  World world;
  Term c = world.MakeConstant("x");
  Term v = world.MakeVariable("x");
  EXPECT_NE(c, v);
}

TEST(WorldTest, FreshNullsAreOrdered) {
  World world;
  Term n0 = world.MakeFreshNull();
  Term n1 = world.MakeFreshNull();
  EXPECT_NE(n0, n1);
  EXPECT_TRUE(world.PrecedesInChaseOrder(n0, n1));
  EXPECT_EQ(world.NameOf(n0), "_#0");
}

TEST(WorldTest, FreshVariablesNeverCollide) {
  World world;
  world.MakeVariable("_G0");  // pre-claim the first generated name
  Term fresh = world.MakeFreshVariable();
  EXPECT_NE(world.NameOf(fresh), "_G0");
}

TEST(WorldTest, ChaseOrderConstantsBeforeNullsBeforeVariables) {
  World world;
  Term c = world.MakeConstant("zzz");
  Term n = world.MakeFreshNull();
  Term v = world.MakeVariable("Aaa");
  EXPECT_TRUE(world.PrecedesInChaseOrder(c, n));
  EXPECT_TRUE(world.PrecedesInChaseOrder(n, v));
  EXPECT_TRUE(world.PrecedesInChaseOrder(c, v));
  EXPECT_FALSE(world.PrecedesInChaseOrder(v, c));
}

TEST(WorldTest, ChaseOrderWithinKindIsLexicographic) {
  World world;
  Term a = world.MakeConstant("alpha");
  Term b = world.MakeConstant("beta");
  EXPECT_TRUE(world.PrecedesInChaseOrder(a, b));
  EXPECT_FALSE(world.PrecedesInChaseOrder(b, a));
  Term v1 = world.MakeVariable("V1");
  Term v2 = world.MakeVariable("V2");
  EXPECT_TRUE(world.PrecedesInChaseOrder(v1, v2));
}

// ---- PredicateTable ------------------------------------------------------

TEST(PredicateTest, PflCatalogIsPreRegistered) {
  PredicateTable table;
  EXPECT_EQ(table.Lookup("member"), pfl::kMember);
  EXPECT_EQ(table.Lookup("sub"), pfl::kSub);
  EXPECT_EQ(table.Lookup("data"), pfl::kData);
  EXPECT_EQ(table.Lookup("type"), pfl::kType);
  EXPECT_EQ(table.Lookup("mandatory"), pfl::kMandatory);
  EXPECT_EQ(table.Lookup("funct"), pfl::kFunct);
  EXPECT_EQ(table.ArityOf(pfl::kData), 3);
  EXPECT_EQ(table.ArityOf(pfl::kMember), 2);
}

TEST(PredicateTest, UserPredicatesGetFreshIds) {
  PredicateTable table;
  PredicateId p = table.Intern("edge", 2);
  EXPECT_GE(p, pfl::kCount);
  EXPECT_EQ(table.Intern("edge", 2), p);
  EXPECT_EQ(table.NameOf(p), "edge");
  EXPECT_FALSE(pfl::IsPfl(p));
}

TEST(PredicateTest, ArityConflictIsRejected) {
  PredicateTable table;
  table.Intern("edge", 2);
  EXPECT_EQ(table.Intern("edge", 3), kInvalidPredicate);
  EXPECT_EQ(table.Intern("member", 3), kInvalidPredicate);
}

TEST(PredicateTest, ExcessiveArityIsRejected) {
  PredicateTable table;
  EXPECT_EQ(table.Intern("wide", kMaxArity + 1), kInvalidPredicate);
}

// ---- Atom ----------------------------------------------------------------

TEST(AtomTest, ConstructionAndAccessors) {
  World world;
  Term o = world.MakeConstant("john");
  Term a = world.MakeConstant("age");
  Term v = world.MakeConstant("33");
  Atom atom = Atom::Data(o, a, v);
  EXPECT_EQ(atom.predicate(), pfl::kData);
  EXPECT_EQ(atom.arity(), 3);
  EXPECT_EQ(atom.arg(0), o);
  EXPECT_EQ(atom.arg(2), v);
  EXPECT_EQ(atom.ToString(world), "data(john, age, 33)");
}

TEST(AtomTest, EqualityAndHash) {
  World world;
  Term x = world.MakeVariable("X");
  Term c = world.MakeConstant("c");
  Atom a1 = Atom::Member(x, c);
  Atom a2 = Atom::Member(x, c);
  Atom a3 = Atom::Member(c, x);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, a3);
  EXPECT_EQ(AtomHash()(a1), AtomHash()(a2));
}

TEST(AtomTest, GroundnessChecksVariables) {
  World world;
  Term c = world.MakeConstant("c");
  Term n = world.MakeFreshNull();
  Term v = world.MakeVariable("V");
  EXPECT_TRUE(Atom::Sub(c, n).IsGround());
  EXPECT_FALSE(Atom::Sub(c, v).IsGround());
}

TEST(AtomTest, IterationCoversArity) {
  World world;
  Atom atom = Atom::Type(world.MakeConstant("a"), world.MakeConstant("b"),
                         world.MakeConstant("c"));
  int count = 0;
  for (Term t : atom) {
    EXPECT_TRUE(t.valid());
    ++count;
  }
  EXPECT_EQ(count, 3);
}

// ---- Substitution ----------------------------------------------------------

TEST(SubstitutionTest, IdentityOutsideDomain) {
  World world;
  Substitution subst;
  Term x = world.MakeVariable("X");
  EXPECT_EQ(subst.Apply(x), x);
}

TEST(SubstitutionTest, BindAndApplyToAtom) {
  World world;
  Term x = world.MakeVariable("X");
  Term c = world.MakeConstant("c");
  Term d = world.MakeConstant("d");
  Substitution subst;
  subst.Bind(x, c);
  Atom atom = Atom::Member(x, d);
  EXPECT_EQ(subst.Apply(atom), Atom::Member(c, d));
}

TEST(SubstitutionTest, TryBindDetectsConflicts) {
  World world;
  Term x = world.MakeVariable("X");
  Substitution subst;
  EXPECT_TRUE(subst.TryBind(x, world.MakeConstant("a")));
  EXPECT_TRUE(subst.TryBind(x, world.MakeConstant("a")));
  EXPECT_FALSE(subst.TryBind(x, world.MakeConstant("b")));
  EXPECT_EQ(subst.Apply(x), world.MakeConstant("a"));
}

TEST(SubstitutionTest, EraseRestoresIdentity) {
  World world;
  Term x = world.MakeVariable("X");
  Substitution subst;
  subst.Bind(x, world.MakeConstant("a"));
  subst.Erase(x);
  EXPECT_EQ(subst.Apply(x), x);
  EXPECT_TRUE(subst.empty());
}

TEST(SubstitutionTest, Composition) {
  World world;
  Term x = world.MakeVariable("X");
  Term y = world.MakeVariable("Y");
  Term c = world.MakeConstant("c");
  Substitution first;
  first.Bind(x, y);
  Substitution second;
  second.Bind(y, c);
  Substitution composed = first.ComposeWith(second);
  EXPECT_EQ(composed.Apply(x), c);  // x -> y -> c
  EXPECT_EQ(composed.Apply(y), c);  // y -> c carried over
}

}  // namespace
}  // namespace floq

namespace floq {
namespace {

TEST(WorldTest, ReservedVariablesAreUnparseableAndUnique) {
  World world;
  Term r0 = world.MakeReservedVariable();
  Term r1 = world.MakeReservedVariable();
  EXPECT_NE(r0, r1);
  EXPECT_EQ(world.NameOf(r0)[0], '$');  // no floq lexer accepts '$'
  // A later user parse can never produce these terms: '$' is rejected.
}

TEST(WorldTest, NullNamesAreStable) {
  World world;
  Term n = world.MakeFreshNull();
  EXPECT_EQ(world.NameOf(n), "_#0");
  EXPECT_EQ(world.null_count(), 1u);
}

}  // namespace
}  // namespace floq
