#include <gtest/gtest.h>

#include "rdf/rdf_graph.h"
#include "rdf/sparql.h"
#include "term/world.h"

namespace floq::rdf {
namespace {

constexpr const char* kGraphText = R"(
  # classes
  grad_student rdfs:subClassOf student
  student rdfs:subClassOf person

  # properties
  advisor rdfs:domain grad_student
  advisor rdfs:range professor
  advisor rdf:type owl:FunctionalProperty
  name rdfs:domain person
  name rdfs:range string
  name rdf:type floq:MandatoryProperty

  # instances
  kim rdf:type grad_student
  kim advisor prof_lee .
  prof_lee rdf:type professor
)";

TEST(RdfGraphTest, LoadTextParsesTriples) {
  RdfGraph graph;
  ASSERT_TRUE(graph.LoadText(kGraphText).ok());
  EXPECT_EQ(graph.triples().size(), 11u);
}

TEST(RdfGraphTest, MalformedLineIsRejected) {
  RdfGraph graph;
  Status status = graph.LoadText("only two");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(RdfGraphTest, VocabularyMapping) {
  RdfGraph graph;
  ASSERT_TRUE(graph.LoadText(kGraphText).ok());
  World world;
  std::vector<Atom> facts = graph.ToFacts(world);

  Term grad = world.MakeConstant("grad_student");
  Term student = world.MakeConstant("student");
  Term advisor = world.MakeConstant("advisor");
  Term professor = world.MakeConstant("professor");
  Term kim = world.MakeConstant("kim");
  Term person = world.MakeConstant("person");
  Term name = world.MakeConstant("name");

  auto contains = [&](const Atom& atom) {
    for (const Atom& fact : facts) {
      if (fact == atom) return true;
    }
    return false;
  };

  EXPECT_TRUE(contains(Atom::Sub(grad, student)));
  EXPECT_TRUE(contains(Atom::Member(kim, grad)));
  EXPECT_TRUE(contains(Atom::Type(grad, advisor, professor)));
  EXPECT_TRUE(contains(Atom::Funct(advisor, grad)));
  EXPECT_TRUE(contains(Atom::Mandatory(name, person)));
  EXPECT_TRUE(contains(
      Atom::Data(kim, advisor, world.MakeConstant("prof_lee"))));
  // Schema triples are consumed, not turned into data atoms.
  EXPECT_FALSE(contains(Atom::Data(advisor, world.MakeConstant("rdfs:domain"),
                                   grad)));
}

TEST(RdfGraphTest, PopulatesKnowledgeBase) {
  RdfGraph graph;
  ASSERT_TRUE(graph.LoadText(kGraphText).ok());
  World world;
  KnowledgeBase kb(world);
  ASSERT_TRUE(graph.Populate(kb).ok());
  ASSERT_TRUE(kb.Saturate().ok());
  // kim is a person via two subclass hops.
  EXPECT_TRUE(kb.database().Contains(Atom::Member(
      world.MakeConstant("kim"), world.MakeConstant("person"))));
  // prof_lee is a professor by rho_1 (range typing).
  EXPECT_TRUE(kb.database().Contains(Atom::Member(
      world.MakeConstant("prof_lee"), world.MakeConstant("professor"))));
}

// ---- SPARQL ---------------------------------------------------------------

TEST(SparqlTest, ParsesBasicGraphPattern) {
  World world;
  Result<ConjunctiveQuery> q = ParseSparql(world,
                                           "SELECT ?x ?y WHERE { "
                                           "?x rdf:type student . "
                                           "?x age ?y }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->arity(), 2);
  ASSERT_EQ(q->size(), 2);
  EXPECT_EQ(q->body()[0].predicate(), pfl::kMember);
  EXPECT_EQ(q->body()[1].predicate(), pfl::kData);
}

TEST(SparqlTest, SelectStarCollectsVariables) {
  World world;
  Result<ConjunctiveQuery> q = ParseSparql(
      world, "select * where { ?c rdfs:subClassOf person . ?x rdf:type ?c }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->arity(), 2);  // ?c, ?x
  EXPECT_EQ(q->body()[0].predicate(), pfl::kSub);
}

TEST(SparqlTest, MetaPatternsTranslate) {
  World world;
  Result<ConjunctiveQuery> q = ParseSparql(
      world,
      "SELECT ?p WHERE { ?p rdfs:range string . ?p rdf:type "
      "owl:FunctionalProperty }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->size(), 2);
  EXPECT_EQ(q->body()[0].predicate(), pfl::kType);
  EXPECT_EQ(q->body()[1].predicate(), pfl::kFunct);
}

TEST(SparqlTest, ParseErrors) {
  World world;
  EXPECT_FALSE(ParseSparql(world, "WHERE { ?x rdf:type c }").ok());
  EXPECT_FALSE(ParseSparql(world, "SELECT ?x WHERE { ?x rdf:type }").ok());
  EXPECT_FALSE(ParseSparql(world, "SELECT ?x WHERE { }").ok());
  // Unsafe head: ?y not in the pattern.
  EXPECT_FALSE(
      ParseSparql(world, "SELECT ?y WHERE { ?x rdf:type c }").ok());
}

TEST(SparqlTest, ContainmentUnderRdfsSemantics) {
  World world;
  // Members of subclasses of person vs members of person: needs rho_3.
  Result<ContainmentResult> result = CheckSparqlContainment(
      world,
      "SELECT ?x WHERE { ?c rdfs:subClassOf person . ?x rdf:type ?c }",
      "SELECT ?x WHERE { ?x rdf:type person }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);

  Result<ContainmentResult> reverse = CheckSparqlContainment(
      world,
      "SELECT ?x WHERE { ?x rdf:type person }",
      "SELECT ?x WHERE { ?c rdfs:subClassOf person . ?x rdf:type ?c }");
  ASSERT_TRUE(reverse.ok());
  EXPECT_FALSE(reverse->contained);
}

TEST(SparqlTest, MetaQueryContainment) {
  World world;
  // Functional mandatory property queries: {1:1} implies {0:1}-style
  // containment at the meta level. Here: any property that is mandatory
  // and range-typed on some class is range-typed on some class.
  Result<ContainmentResult> result = CheckSparqlContainment(
      world,
      "SELECT ?p WHERE { ?p rdfs:range string . ?p rdf:type "
      "floq:MandatoryProperty }",
      "SELECT ?p WHERE { ?p rdfs:range string }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->contained);
}

}  // namespace
}  // namespace floq::rdf

namespace floq::rdf {
namespace {

TEST(RdfGraphTest, QuotedLiteralsMayContainSpaces) {
  RdfGraph graph;
  ASSERT_TRUE(graph.LoadText("p1 title 'On the Chase'\n"
                             "p1 note \"double quoted too\" .").ok());
  ASSERT_EQ(graph.triples().size(), 2u);
  EXPECT_EQ(graph.triples()[0].object, "On the Chase");
  EXPECT_EQ(graph.triples()[1].object, "double quoted too");
}

TEST(RdfGraphTest, UnterminatedQuoteRejected) {
  RdfGraph graph;
  EXPECT_FALSE(graph.LoadText("p1 title 'oops").ok());
}

}  // namespace
}  // namespace floq::rdf
