// Experiment F1 — Figure 1 reproduction: the chase graph of Example 2.
//
// The paper's Figure 1 draws chase_Sigma(q) for
//   q() :- mandatory(A,T), type(T,A,T), sub(T,U).
// as an infinite chain data -> member -> {type, mandatory} -> data ...
// with rho_3 branches (member(v_i, U)) departing from it. This binary
// prints the per-level series our engine derives (the executable Figure 1)
// and times chase materialization as the level cap grows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "chase/chase.h"
#include "query/parser.h"
#include "term/world.h"

namespace {

constexpr const char* kExample2 =
    "q() :- mandatory(A, T), type(T, A, T), sub(T, U).";

void PrintFigure1Table() {
  using namespace floq;
  World world;
  ConjunctiveQuery q = *ParseQuery(world, kExample2);
  ChaseOptions options;
  options.max_level = 24;
  options.record_cross_arcs = true;
  ChaseResult chase = ChaseQuery(world, q, options);

  std::printf("== F1: chase graph of Example 2 (Figure 1) ==\n");
  std::printf("query: %s\n", q.ToString(world).c_str());
  std::printf("outcome: %s, conjuncts: %u, max level: %d, fresh nulls: %llu\n",
              ChaseOutcomeName(chase.outcome()), chase.size(),
              chase.max_level(),
              (unsigned long long)chase.stats().fresh_nulls);

  // Per-level conjunct counts by predicate.
  std::map<int, std::map<std::string, int>> by_level;
  for (uint32_t id = 0; id < chase.size(); ++id) {
    const std::string& pred =
        world.predicates().NameOf(chase.conjunct(id).predicate());
    by_level[chase.LevelOf(id)][pred]++;
  }
  std::printf("%-6s %-8s %-8s %-8s %-10s %-8s %s\n", "level", "data",
              "member", "type", "mandatory", "sub", "total");
  for (const auto& [level, counts] : by_level) {
    int total = 0;
    for (const auto& [pred, n] : counts) total += n;
    auto get = [&](const char* p) {
      auto it = counts.find(p);
      return it == counts.end() ? 0 : it->second;
    };
    std::printf("%-6d %-8d %-8d %-8d %-10d %-8d %d\n", level, get("data"),
                get("member"), get("type"), get("mandatory"), get("sub"),
                total);
  }

  // Arc statistics (primary vs secondary vs cross, Definition 3).
  int primary = 0, secondary = 0, cross = 0;
  for (const floq::ChaseArc& arc : chase.Arcs()) {
    if (arc.cross) {
      ++cross;
    } else if (chase.IsPrimary(arc)) {
      ++primary;
    } else {
      ++secondary;
    }
  }
  std::printf("arcs: %d primary, %d secondary, %d cross\n", primary,
              secondary, cross);
  std::printf("first 14 conjuncts of the chain:\n");
  for (uint32_t id = 0; id < chase.size() && id < 14; ++id) {
    std::printf("  L%-3d %s\n", chase.LevelOf(id),
                chase.conjunct(id).ToString(world).c_str());
  }
  std::printf("\n");
}

void BM_ChaseExample2ToLevel(benchmark::State& state) {
  using namespace floq;
  const int level_cap = int(state.range(0));
  for (auto _ : state) {
    World world;
    ConjunctiveQuery q = *ParseQuery(world, kExample2);
    ChaseOptions options;
    options.max_level = level_cap;
    ChaseResult chase = ChaseQuery(world, q, options);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
    state.counters["nulls"] = double(chase.stats().fresh_nulls);
  }
}
BENCHMARK(BM_ChaseExample2ToLevel)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
