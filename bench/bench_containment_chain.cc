// Experiment E1 — containment decision time on the §2 "joinable
// attributes" family, generalized to chains of n hops:
//
//   q  = chain with subclass hops  (2n-1 atoms)
//   qq = chain without             (n atoms)
//
// q ⊆ qq holds for every n (rho_8 collapses the sub steps); classical
// containment misses it. This benchmark validates the verdicts and
// measures the deterministic decision cost as n grows — polynomial here,
// since chases of acyclic queries stay small.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "containment/containment.h"
#include "gen/generators.h"
#include "term/world.h"

namespace {

void PrintVerdictTable() {
  using namespace floq;
  std::printf("== E1: chain containment verdicts ==\n");
  std::printf("%-6s %-10s %-10s %-12s %-14s %s\n", "hops", "|q1|", "|q2|",
              "paper", "classical", "chase conjuncts");
  for (int hops : {2, 4, 8, 16, 32}) {
    World world;
    ConjunctiveQuery q = gen::MakeAttributeChainQuery(world, hops, true, "q");
    ConjunctiveQuery qq =
        gen::MakeAttributeChainQuery(world, hops, false, "qq");
    Result<ContainmentResult> paper = CheckContainment(world, q, qq);
    Result<ContainmentResult> classical =
        CheckClassicalContainment(world, q, qq);
    std::printf("%-6d %-10d %-10d %-12s %-14s %u\n", hops, q.size(),
                qq.size(), paper.ok() && paper->contained ? "CONTAINED" : "no",
                classical.ok() && classical->contained ? "CONTAINED" : "no",
                paper.ok() ? paper->chase.size() : 0);
  }
  std::printf("\n");
}

void BM_ChainContainmentPaper(benchmark::State& state) {
  using namespace floq;
  const int hops = int(state.range(0));
  World world;
  ConjunctiveQuery q = gen::MakeAttributeChainQuery(world, hops, true, "q");
  ConjunctiveQuery qq = gen::MakeAttributeChainQuery(world, hops, false, "qq");
  for (auto _ : state) {
    Result<ContainmentResult> result = CheckContainment(world, q, qq);
    benchmark::DoNotOptimize(result.ok() && result->contained);
    if (result.ok()) {
      state.counters["chase_atoms"] = result->chase.size();
      state.counters["hom_nodes"] = double(result->hom_stats.nodes_visited);
    }
  }
}
BENCHMARK(BM_ChainContainmentPaper)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_ChainContainmentClassical(benchmark::State& state) {
  using namespace floq;
  const int hops = int(state.range(0));
  World world;
  ConjunctiveQuery q = gen::MakeAttributeChainQuery(world, hops, true, "q");
  ConjunctiveQuery qq = gen::MakeAttributeChainQuery(world, hops, false, "qq");
  for (auto _ : state) {
    Result<ContainmentResult> result = CheckClassicalContainment(world, q, qq);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ChainContainmentClassical)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// Self-containment of the long chain: the homomorphism search must embed
// the full body, stressing the join order heuristic.
void BM_ChainSelfContainment(benchmark::State& state) {
  using namespace floq;
  const int hops = int(state.range(0));
  World world;
  ConjunctiveQuery q = gen::MakeAttributeChainQuery(world, hops, true, "q");
  for (auto _ : state) {
    Result<ContainmentResult> result = CheckContainment(world, q, q);
    benchmark::DoNotOptimize(result.ok() && result->contained);
  }
}
BENCHMARK(BM_ChainSelfContainment)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  PrintVerdictTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
