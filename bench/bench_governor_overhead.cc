// Experiment E12 — cost of the resource governor (DESIGN.md §11). The
// homomorphism search is the hottest governed loop: ExecGovernor::Tick()
// runs once per search step (a decrement-and-test, with the clock read
// and cancellation-flag load amortized over kStride = 1024 ticks). This
// benchmark measures that tax directly: the same search corpus is run
//
//   * ungoverned — MatchOptions::governor == nullptr (the default), and
//   * governed   — a live governor with a far-future deadline and an
//                  armed cancellation token, exactly what
//                  `floq ... --timeout-ms N` installs; it never trips,
//                  so every measured cycle is pure bookkeeping overhead.
//
// Per configuration the report records best-of-N wall times and the
// governed/ungoverned ratio; the headline number is the geometric mean
// of those ratios (target: < 1.02, i.e. under 2% overhead). Results go
// to BENCH_governor.json and stdout.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "datalog/match.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"
#include "util/deadline.h"
#include "util/rng.h"

namespace {

using namespace floq;

struct CorpusConfig {
  const char* name;
  int target_atoms;   // size of the random q1 whose chase is the target
  int target_pool;    // q1 variable pool (smaller => denser target)
  int probe_atoms;    // size of each probe body
  int probe_pool;     // probe variable pool (random probes only)
  bool subquery_probes;  // sample probes from the target's own body
  bool enumerate_all;    // count every match instead of stopping at one
  int probes;            // probes per pass
};

// The same axes as the E11 kernel grid: the governor tax is per search
// step, so the corpus spans short failing searches (tick count ~ probe
// size) through full enumerations (millions of ticks per pass) where the
// amortized clock read actually recurs.
constexpr CorpusConfig kCorpus[] = {
    {"random_sparse_first", 24, 10, 8, 5, false, false, 64},
    {"random_dense_first", 24, 6, 12, 4, false, false, 64},
    {"subquery_small_all", 24, 8, 5, 0, true, true, 24},
    {"subquery_mid_all", 48, 10, 7, 0, true, true, 16},
    {"subquery_wide_all", 96, 14, 7, 0, true, true, 12},
    {"subquery_deep_all", 64, 8, 9, 0, true, true, 8},
};

struct RunMetrics {
  double wall_ms = 0;  // best pass
  uint64_t nodes = 0;  // of one pass, for cross-variant agreement
  uint64_t found = 0;
};

struct Workload {
  World world;
  ChaseResult chase;
  std::vector<ConjunctiveQuery> probes;
};

// Fills a caller-owned Workload (World is neither copyable nor movable).
void MakeWorkload(const CorpusConfig& config, Workload& w) {
  gen::RandomQuerySpec target_spec;
  target_spec.seed = 977;
  target_spec.atoms = config.target_atoms;
  target_spec.variable_pool = config.target_pool;
  target_spec.constant_pool = 3;
  target_spec.constant_probability = 0.0;
  target_spec.arity = 0;
  target_spec.with_constraints = false;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(w.world, target_spec, "target");
  w.chase = ChaseLevelZero(w.world, q1);

  Rng rng(4242);
  for (int t = 0; t < config.probes; ++t) {
    if (config.subquery_probes) {
      std::vector<Atom> body = q1.body();
      for (size_t i = body.size(); i > 1; --i) {
        std::swap(body[i - 1], body[rng.Below(i)]);
      }
      body.resize(size_t(config.probe_atoms));
      ConjunctiveQuery probe("probe", {}, std::move(body));
      w.probes.push_back(probe.RenameApart(w.world));
    } else {
      gen::RandomQuerySpec spec;
      spec.seed = uint64_t(t) * 131 + 17;
      spec.atoms = config.probe_atoms;
      spec.variable_pool = config.probe_pool;
      spec.constant_pool = 3;
      spec.constant_probability = 0.0;
      spec.arity = 0;
      spec.with_constraints = false;
      w.probes.push_back(
          gen::MakeRandomQuery(w.world, spec, "probe").RenameApart(w.world));
    }
  }
}

// One pass over every probe. When `governed`, a fresh governor with a
// far-future deadline and a live token is installed — the exact
// configuration `--timeout-ms` produces, minus any chance of tripping.
RunMetrics OnePass(const Workload& workload, const CorpusConfig& config,
                   bool governed, const CancellationToken& token) {
  ExecGovernor governor(Deadline::AfterMillis(3'600'000), token);
  MatchOptions options;
  if (governed) options.governor = &governor;

  RunMetrics metrics;
  for (const ConjunctiveQuery& probe : workload.probes) {
    MatchStats stats;
    if (config.enumerate_all) {
      constexpr uint64_t kMatchCap = 20000;
      uint64_t matches = 0;
      MatchConjunction(
          probe.body(), workload.chase.conjuncts(), Substitution(),
          [&](const Substitution&) { return ++matches < kMatchCap; }, &stats,
          options);
      metrics.found += matches;
    } else {
      if (FindQueryHomomorphism(probe, workload.chase.conjuncts(), {}, &stats,
                                options)) {
        ++metrics.found;
      }
    }
    metrics.nodes += stats.nodes_visited;
  }
  return metrics;
}

RunMetrics TimedRun(const Workload& workload, const CorpusConfig& config,
                    bool governed, const CancellationToken& token) {
  OnePass(workload, config, governed, token);  // warm-up
  RunMetrics best;
  constexpr int kPasses = 9;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto start = std::chrono::steady_clock::now();
    RunMetrics metrics = OnePass(workload, config, governed, token);
    auto stop = std::chrono::steady_clock::now();
    metrics.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (pass == 0 || metrics.wall_ms < best.wall_ms) best = metrics;
  }
  return best;
}

void WriteGovernorReport() {
  CancellationSource source;
  CancellationToken token = source.token();

  std::string json;
  json += "{\n  \"experiment\": \"governor_overhead\",\n";
  json += "  \"passes\": 9,\n  \"stride\": 1024,\n  \"configs\": [\n";

  double log_ratio_sum = 0;
  int config_count = 0;
  bool all_agree = true;

  for (const CorpusConfig& config : kCorpus) {
    Workload workload;
    MakeWorkload(config, workload);

    RunMetrics plain = TimedRun(workload, config, false, token);
    RunMetrics governed = TimedRun(workload, config, true, token);

    // A never-tripping governor must not change the search at all.
    bool agree = plain.found == governed.found && plain.nodes == governed.nodes;
    all_agree = all_agree && agree;
    double ratio = plain.wall_ms > 0 ? governed.wall_ms / plain.wall_ms : 1.0;
    log_ratio_sum += std::log(ratio);
    ++config_count;

    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"target_conjuncts\": %u, "
                  "\"probe_atoms\": %d, \"mode\": \"%s\", \"probes\": %d, "
                  "\"nodes_per_pass\": %llu,\n"
                  "      \"ungoverned_wall_ms\": %.3f, "
                  "\"governed_wall_ms\": %.3f, "
                  "\"overhead_ratio\": %.4f, \"verdicts_agree\": %s}",
                  config.name, workload.chase.size(), config.probe_atoms,
                  config.enumerate_all ? "all_matches" : "first_match",
                  config.probes, (unsigned long long)plain.nodes,
                  plain.wall_ms, governed.wall_ms, ratio,
                  agree ? "true" : "false");
    json += buffer;
    json += (&config == &kCorpus[std::size(kCorpus) - 1]) ? "\n" : ",\n";
  }

  double geomean = std::exp(log_ratio_sum / config_count);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"geomean_overhead_ratio\": %.4f,\n"
                "  \"target_ratio\": 1.02,\n"
                "  \"all_verdicts_agree\": %s\n}\n",
                geomean, all_agree ? "true" : "false");
  json += buffer;

  std::printf("== E12: governor overhead on the hom-search corpus ==\n%s\n",
              json.c_str());
  std::FILE* file = std::fopen("BENCH_governor.json", "w");
  FLOQ_CHECK(file != nullptr);
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("(report written to BENCH_governor.json)\n\n");
}

// ---- google-benchmark timers ------------------------------------------------

void BM_GovernedHomSearch(benchmark::State& state) {
  const bool governed = state.range(0) != 0;
  const CorpusConfig& config = kCorpus[3];  // subquery_mid_all
  Workload workload;
  MakeWorkload(config, workload);
  CancellationSource source;
  CancellationToken token = source.token();
  for (auto _ : state) {
    RunMetrics metrics = OnePass(workload, config, governed, token);
    benchmark::DoNotOptimize(metrics.found);
  }
}
BENCHMARK(BM_GovernedHomSearch)
    ->ArgNames({"governed"})
    ->Args({0})
    ->Args({1});

}  // namespace

int main(int argc, char** argv) {
  WriteGovernorReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
