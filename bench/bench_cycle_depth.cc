// Experiment E2 — the §4 mandatory-attribute cycles and Theorem 12's
// level bound. chase(cycle_k) is infinite; deciding cycle_k ⊆ probe_m
// (an m-hop data chain) requires materializing only |probe| · 2|cycle|
// levels. The table shows where the verdict crosses over as the level
// override shrinks below the depth the probe actually needs, validating
// that the paper bound is sufficient (and that shallow prefixes are not).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "containment/containment.h"
#include "gen/generators.h"
#include "term/world.h"

namespace {

void PrintCrossoverTable() {
  using namespace floq;
  std::printf("== E2: level bound vs verdict (cycle k=1, probe m hops) ==\n");
  std::printf("%-8s %-12s %-14s %-12s %s\n", "probe m", "paper bound",
              "needed level", "verdict@bound", "shallowest level that works");
  for (int m : {1, 2, 3, 4, 6, 8}) {
    World world;
    ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, 1);
    ConjunctiveQuery probe = gen::MakeDataChainProbe(world, m);
    int paper_bound = probe.size() * 2 * cycle.size();

    Result<ContainmentResult> at_bound = CheckContainment(world, cycle, probe);
    bool verdict = at_bound.ok() && at_bound->contained;

    int shallowest = -1;
    for (int level = 0; level <= paper_bound; ++level) {
      ContainmentOptions options;
      options.level_override = level;
      Result<ContainmentResult> result =
          CheckContainment(world, cycle, probe, options);
      if (result.ok() && result->contained) {
        shallowest = level;
        break;
      }
    }
    std::printf("%-8d %-12d %-14d %-12s %d\n", m, paper_bound, shallowest,
                verdict ? "CONTAINED" : "no", shallowest);
  }
  std::printf("\n== E2b: chase growth per cycle length k (to paper bound of a "
              "1-hop probe) ==\n");
  std::printf("%-6s %-8s %-12s %-12s %s\n", "k", "bound", "conjuncts",
              "nulls", "outcome");
  for (int k : {1, 2, 4, 8, 16, 32}) {
    World world;
    ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, k);
    ConjunctiveQuery probe = gen::MakeDataChainProbe(world, 1);
    Result<ContainmentResult> result = CheckContainment(world, cycle, probe);
    if (!result.ok()) {
      std::printf("%-6d error: %s\n", k, result.status().ToString().c_str());
      continue;
    }
    std::printf("%-6d %-8d %-12u %-12llu %s\n", k, result->level_bound,
                result->chase.size(),
                (unsigned long long)result->chase.stats().fresh_nulls,
                ChaseOutcomeName(result->chase.outcome()));
  }
  std::printf("\n");
}

void BM_CycleContainment(benchmark::State& state) {
  using namespace floq;
  const int k = int(state.range(0));
  World world;
  ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, k);
  ConjunctiveQuery probe = gen::MakeDataChainProbe(world, 2);
  for (auto _ : state) {
    Result<ContainmentResult> result = CheckContainment(world, cycle, probe);
    benchmark::DoNotOptimize(result.ok());
    if (result.ok()) state.counters["chase_atoms"] = result->chase.size();
  }
}
BENCHMARK(BM_CycleContainment)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_CycleChaseToLevel(benchmark::State& state) {
  using namespace floq;
  const int k = int(state.range(0));
  const int level = int(state.range(1));
  World world;
  ConjunctiveQuery cycle = gen::MakeMandatoryCycleQuery(world, k);
  for (auto _ : state) {
    ChaseOptions options;
    options.max_level = level;
    ChaseResult chase = ChaseQuery(world, cycle, options);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_CycleChaseToLevel)
    ->Args({2, 16})->Args({2, 64})->Args({8, 16})->Args({8, 64})
    ->Args({32, 16})->Args({32, 64});

}  // namespace

int main(int argc, char** argv) {
  PrintCrossoverTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
