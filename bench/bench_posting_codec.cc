// Experiment E15 — the block-compressed posting storage (DESIGN.md §14).
//
// Three claims are measured and gated:
//
//   1. Speed: on intersection-heavy homomorphism workloads (wide chases,
//      dense joins, constants — the regime where the kernel leapfrogs
//      long posting lists), the compiled kernel streaming the frozen tier
//      beats the PR 2 baseline (the interpreted matcher over plain
//      posting vectors, use_compiled_kernel = false on an unfrozen index)
//      by >= 1.5x geomean wall time.
//   2. Space: the frozen tier spends <= 2.0 bytes per posting — at most
//      half of the 4-byte plain-vector representation.
//   3. Correctness: zero differential mismatches across every seam —
//      codec roundtrip (compressed vs plain), SIMD vs scalar decode and
//      lower bound, snapshot-loaded vs in-memory intersection results,
//      and per-config search-verdict agreement between the matchers.
//
// Everything is written to BENCH_posting_codec.json (and echoed) so the
// gates are machine-checkable. FLOQ_BENCH_SMALL=1 shrinks the workloads
// ~8x for CI smoke runs; the correctness gates are size-independent, the
// speed/space gates are checked on the full checked-in run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "datalog/match.h"
#include "datalog/posting_block.h"
#include "datalog/posting_intersect.h"
#include "datalog/snapshot.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace floq;

bool SmallMode() {
  const char* env = std::getenv("FLOQ_BENCH_SMALL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// ---- differential sweeps (claim 3) ------------------------------------------

std::vector<uint32_t> RandomIds(Rng& rng, size_t n, uint32_t max_gap) {
  std::vector<uint32_t> ids;
  ids.reserve(n);
  uint32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += 1 + uint32_t(rng.Below(max_gap));
    ids.push_back(cur);
  }
  return ids;
}

// Encode -> decode (scalar and dispatched) -> compare against the plain
// vector. Returns the number of mismatching lists.
uint64_t CodecRoundTripMismatches(int lists) {
  Rng rng(101);
  uint64_t mismatches = 0;
  for (int i = 0; i < lists; ++i) {
    const size_t n = 1 + rng.Below(3000);
    const uint32_t max_gap = 1u << rng.Below(18);  // widths 1, 2 and 4
    std::vector<uint32_t> ids = RandomIds(rng, n, max_gap);
    PostingArena arena;
    const uint32_t offset = arena.EncodeList(ids);
    FrozenListView list = ResolveFrozenList(arena.data(), offset);
    std::array<uint32_t, kPostingBlockSize> scalar, dispatched;
    std::vector<uint32_t> decoded;
    bool simd_agrees = true;
    for (uint32_t b = 0; b < list.num_blocks; ++b) {
      const uint32_t ns = DecodeBlockScalar(list, b, scalar.data());
      const uint32_t nd = DecodeBlock(list, b, dispatched.data());
      simd_agrees = simd_agrees && ns == nd &&
                    std::equal(scalar.begin(), scalar.begin() + ns,
                               dispatched.begin());
      decoded.insert(decoded.end(), scalar.begin(), scalar.begin() + ns);
    }
    if (decoded != ids || !simd_agrees) ++mismatches;
  }
  return mismatches;
}

uint64_t SimdLowerBoundMismatches(int trials) {
  Rng rng(103);
  uint64_t mismatches = 0;
  for (int i = 0; i < trials; ++i) {
    const uint32_t n = 1 + uint32_t(rng.Below(kPostingBlockSize));
    std::vector<uint32_t> data = RandomIds(rng, n, 2000);
    for (int probe = 0; probe < 32; ++probe) {
      const uint32_t target = uint32_t(rng.Below(data.back() + 2));
      const uint32_t expected = uint32_t(
          std::lower_bound(data.begin(), data.end(), target) - data.begin());
      if (LowerBoundInBlock(data.data(), n, target) != expected ||
          LowerBoundInBlockScalar(data.data(), n, target) != expected) {
        ++mismatches;
      }
    }
  }
  return mismatches;
}

// Build an index of ground facts, intersect argument lists in memory,
// snapshot it, mmap it back, intersect again: results must be identical.
uint64_t SnapshotParityMismatches(int objects) {
  World world;
  FactIndex index;
  Rng rng(107);
  std::vector<Term> attrs, values;
  for (int i = 0; i < 12; ++i) {
    attrs.push_back(world.MakeConstant("attr" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    values.push_back(world.MakeConstant("val" + std::to_string(i)));
  }
  for (int o = 0; o < objects; ++o) {
    Term obj = world.MakeConstant("obj" + std::to_string(o));
    for (int j = 0; j < 4; ++j) {
      index.Insert(Atom::Data(obj, attrs[rng.Below(attrs.size())],
                              values[rng.Below(values.size())]));
    }
  }

  auto intersections = [&](const FactIndex& idx) {
    std::vector<std::vector<uint32_t>> results;
    std::vector<uint32_t> out;
    for (Term a : attrs) {
      for (Term v : values) {
        const PostingView lists[] = {idx.WithArgument(pfl::kData, 1, a),
                                     idx.WithArgument(pfl::kData, 2, v)};
        if (lists[0].empty() || lists[1].empty()) continue;
        IntersectPostingLists(lists, out);
        results.push_back(out);
      }
    }
    return results;
  };

  const std::vector<std::vector<uint32_t>> in_memory = intersections(index);

  const std::string path = "bench_posting_codec.snap";
  FLOQ_CHECK(WriteFactIndexSnapshot(index, world, path).ok());
  World world2;
  FactIndex loaded;
  FLOQ_CHECK(LoadFactIndexSnapshot(path, world2, loaded).ok());
  const std::vector<std::vector<uint32_t>> mapped = intersections(loaded);
  std::remove(path.c_str());

  if (in_memory.size() != mapped.size()) return 1;
  uint64_t mismatches = 0;
  for (size_t i = 0; i < in_memory.size(); ++i) {
    if (in_memory[i] != mapped[i]) ++mismatches;
  }
  return mismatches;
}

// ---- intersection-heavy search configs (claims 1 and 2) ---------------------

struct CodecConfig {
  const char* name;
  int target_atoms;  // size of the random q1 whose level-0 chase is scanned
  int target_pool;   // small pool => dense joins => long shared lists
  int probe_atoms;
  double constant_probability;
  int probes;
};

// All-matches subquery probes over dense targets: every search node has
// several bound positions, so candidate computation is k-way intersection
// — the regime the frozen tier is built for.
constexpr CodecConfig kConfigs[] = {
    {"intersect_mid", 48, 8, 7, 0.0, 16},
    {"intersect_constants", 64, 8, 8, 0.25, 12},
    {"intersect_wide", 96, 10, 8, 0.0, 12},
    {"intersect_wide_kb", 192, 10, 8, 0.25, 8},
};

struct Workload {
  World world;
  ChaseResult chase;
  std::vector<ConjunctiveQuery> probes;
};

void MakeWorkload(const CodecConfig& config, int scale, Workload& w) {
  gen::RandomQuerySpec spec;
  spec.seed = 977;
  spec.atoms = config.target_atoms / scale;
  spec.variable_pool = config.target_pool;
  spec.constant_pool = 3;
  spec.constant_probability = config.constant_probability;
  spec.arity = 0;
  spec.with_constraints = false;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(w.world, spec, "target");
  w.chase = ChaseLevelZero(w.world, q1);

  Rng rng(4242);
  const int probes = std::max(2, config.probes / scale);
  for (int t = 0; t < probes; ++t) {
    std::vector<Atom> body = q1.body();
    for (size_t i = body.size(); i > 1; --i) {
      std::swap(body[i - 1], body[rng.Below(i)]);
    }
    body.resize(std::min(body.size(), size_t(config.probe_atoms)));
    ConjunctiveQuery probe("probe", {}, std::move(body));
    w.probes.push_back(probe.RenameApart(w.world));
  }
}

struct RunMetrics {
  double wall_ms = 0;
  uint64_t found = 0;
};

RunMetrics OnePass(const Workload& w, const MatchOptions& options) {
  RunMetrics metrics;
  constexpr uint64_t kMatchCap = 20000;
  for (const ConjunctiveQuery& probe : w.probes) {
    uint64_t matches = 0;
    MatchConjunction(
        probe.body(), w.chase.conjuncts(), Substitution(),
        [&](const Substitution&) { return ++matches < kMatchCap; },
        /*stats=*/nullptr, options);
    metrics.found += matches;
  }
  return metrics;
}

RunMetrics TimedRun(const Workload& w, const MatchOptions& options) {
  OnePass(w, options);  // warm-up
  RunMetrics best;
  constexpr int kPasses = 5;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto start = std::chrono::steady_clock::now();
    RunMetrics metrics = OnePass(w, options);
    auto stop = std::chrono::steady_clock::now();
    metrics.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (pass == 0 || metrics.wall_ms < best.wall_ms) best = metrics;
  }
  return best;
}

void WriteReport() {
  const bool small = SmallMode();
  const int scale = small ? 8 : 1;

  const uint64_t roundtrip_mismatches =
      CodecRoundTripMismatches(small ? 40 : 400);
  const uint64_t lower_bound_mismatches =
      SimdLowerBoundMismatches(small ? 50 : 500);
  const uint64_t snapshot_mismatches =
      SnapshotParityMismatches(small ? 200 : 2000);

  std::string json;
  json += "{\n  \"experiment\": \"posting_codec\",\n";
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "  \"small_mode\": %s,\n  \"simd_enabled\": %s,\n"
                "  \"configs\": [\n",
                small ? "true" : "false",
                SimdPostingsEnabled() ? "true" : "false");
  json += buffer;

  double log_speedup_sum = 0, bytes_sum = 0;
  uint64_t postings_sum = 0;
  int config_count = 0;
  bool all_agree = true;

  for (const CodecConfig& config : kConfigs) {
    Workload workload;
    MakeWorkload(config, scale, workload);

    MatchOptions legacy;  // PR 2 baseline: interpreted matcher...
    legacy.use_compiled_kernel = false;
    MatchOptions kernel;  // ...vs the kernel on the frozen tier.

    // Legacy times against the unfrozen plain-vector storage, then the
    // index is frozen (as the engine does between chase and search) and
    // the kernel streams the compressed tier.
    RunMetrics legacy_run = TimedRun(workload, legacy);
    workload.chase.FreezeConjuncts();
    RunMetrics kernel_run = TimedRun(workload, kernel);

    FactIndex::StorageStats storage = workload.chase.conjuncts().Stats();
    const double bytes_per_posting =
        storage.frozen_postings == 0
            ? 0.0
            : double(storage.arena_bytes) / double(storage.frozen_postings);
    bytes_sum += double(storage.arena_bytes);
    postings_sum += storage.frozen_postings;

    const bool agree = legacy_run.found == kernel_run.found;
    all_agree = all_agree && agree;
    const double speedup = kernel_run.wall_ms > 0
                               ? legacy_run.wall_ms / kernel_run.wall_ms
                               : 0.0;
    log_speedup_sum += std::log(speedup);
    ++config_count;

    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s\", \"target_conjuncts\": %u, \"probes\": %zu,\n"
        "      \"legacy_wall_ms\": %.3f, \"kernel_frozen_wall_ms\": %.3f,\n"
        "      \"speedup_kernel_frozen_vs_legacy\": %.3f,\n"
        "      \"frozen_postings\": %llu, \"bytes_per_posting_frozen\": "
        "%.3f, \"verdicts_agree\": %s}%s\n",
        config.name, workload.chase.size(), workload.probes.size(),
        legacy_run.wall_ms, kernel_run.wall_ms, speedup,
        (unsigned long long)storage.frozen_postings, bytes_per_posting,
        agree ? "true" : "false",
        (&config == &kConfigs[std::size(kConfigs) - 1]) ? "" : ",");
    json += buffer;
  }

  const double geomean = std::exp(log_speedup_sum / config_count);
  const double bytes_per_posting =
      postings_sum == 0 ? 0.0 : bytes_sum / double(postings_sum);
  std::snprintf(
      buffer, sizeof(buffer),
      "  ],\n"
      "  \"geomean_speedup_vs_pr2_baseline\": %.3f,\n"
      "  \"bytes_per_posting_frozen\": %.3f,\n"
      "  \"bytes_per_posting_plain\": 4.0,\n"
      "  \"codec_roundtrip_mismatches\": %llu,\n"
      "  \"simd_lower_bound_mismatches\": %llu,\n"
      "  \"snapshot_parity_mismatches\": %llu,\n"
      "  \"all_verdicts_agree\": %s\n}\n",
      geomean, bytes_per_posting,
      (unsigned long long)roundtrip_mismatches,
      (unsigned long long)lower_bound_mismatches,
      (unsigned long long)snapshot_mismatches, all_agree ? "true" : "false");
  json += buffer;

  std::printf("== E15: block-compressed posting storage ==\n%s\n",
              json.c_str());
  std::FILE* file = std::fopen("BENCH_posting_codec.json", "w");
  FLOQ_CHECK(file != nullptr);
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("(report written to BENCH_posting_codec.json)\n\n");
}

// ---- google-benchmark timers ------------------------------------------------

// Decode throughput of one frozen block, scalar vs dispatched.
void BM_DecodeBlock(benchmark::State& state) {
  const bool dispatched = state.range(0) != 0;
  Rng rng(11);
  std::vector<uint32_t> ids = RandomIds(rng, 4096, 3);
  PostingArena arena;
  const uint32_t offset = arena.EncodeList(ids);
  FrozenListView list = ResolveFrozenList(arena.data(), offset);
  std::array<uint32_t, kPostingBlockSize> buf;
  uint32_t b = 0;
  for (auto _ : state) {
    uint32_t n = dispatched ? DecodeBlock(list, b, buf.data())
                            : DecodeBlockScalar(list, b, buf.data());
    benchmark::DoNotOptimize(buf[n - 1]);
    b = (b + 1) % list.num_blocks;
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * kPostingBlockSize);
}
BENCHMARK(BM_DecodeBlock)->ArgNames({"simd"})->Arg(0)->Arg(1);

// Seek throughput over a long frozen list (block-skipping gallop).
void BM_CursorSeek(benchmark::State& state) {
  Rng rng(13);
  std::vector<uint32_t> ids = RandomIds(rng, 100'000, 5);
  PostingArena arena;
  const uint32_t offset = arena.EncodeList(ids);
  PostingView view(arena.data(), offset, uint32_t(ids.size()), {});
  const uint32_t stride = uint32_t(state.range(0));
  for (auto _ : state) {
    PostingCursor cursor(view);
    uint32_t target = 0;
    uint64_t sum = 0;
    while (cursor.SeekGE(target)) {
      sum += cursor.value();
      target = cursor.value() + stride;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CursorSeek)->ArgNames({"stride"})->Arg(16)->Arg(512)->Arg(16384);

}  // namespace

int main(int argc, char** argv) {
  WriteReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
