// Ablation/extension experiment: the Sigma_FL-specialized chase engine
// (phase split, shape-specialized rho_4 applicator) vs the generic
// dependency engine fed Sigma_FL as a user set. Both produce the same
// saturated sets (asserted by tests); the specialization buys the
// difference shown here. Also benchmarks a weakly acyclic user set, the
// regime where the generic chase is a complete decision procedure.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chase/chase.h"
#include "chase/dependencies.h"
#include "chase/generic_chase.h"
#include "containment/containment.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/strings.h"

namespace {

using namespace floq;

void PrintComparisonTable() {
  std::printf("== generic vs specialized engine on Sigma_FL ==\n");
  std::printf("%-34s %-12s %-14s %s\n", "query", "conjuncts",
              "specialized ok", "generic ok");
  const char* queries[] = {
      "q() :- sub(A, B), sub(B, C).",
      "q() :- mandatory(A, O), type(O, A, T).",
      "q(V) :- data(O, A, V), data(O, A, W), funct(A, C), member(O, C).",
  };
  for (const char* text : queries) {
    World ws, wg;
    ConjunctiveQuery qs = *ParseQuery(ws, text);
    ConjunctiveQuery qg = *ParseQuery(wg, text);
    ChaseOptions options;
    options.max_level = 9;
    ChaseResult specialized = ChaseQuery(ws, qs, options);
    DependencySet sigma = MakeSigmaFLDependencies(wg);
    ChaseResult generic = GenericChase(wg, qg, sigma, options);
    std::printf("%-34.33s %-12u %-14s %s\n", text, specialized.size(),
                ChaseOutcomeName(specialized.outcome()),
                ChaseOutcomeName(generic.outcome()));
  }
  std::printf("\n");
}

void BM_SpecializedSigmaFL(benchmark::State& state) {
  const int k = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    ConjunctiveQuery q = gen::MakeMandatoryCycleQuery(world, k);
    state.ResumeTiming();
    ChaseOptions options;
    options.max_level = 12;
    ChaseResult chase = ChaseQuery(world, q, options);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_SpecializedSigmaFL)->Arg(1)->Arg(4)->Arg(16);

void BM_GenericSigmaFL(benchmark::State& state) {
  const int k = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    ConjunctiveQuery q = gen::MakeMandatoryCycleQuery(world, k);
    DependencySet sigma = MakeSigmaFLDependencies(world);
    state.ResumeTiming();
    ChaseOptions options;
    options.max_level = 12;
    ChaseResult chase = GenericChase(world, q, sigma, options);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_GenericSigmaFL)->Arg(1)->Arg(4)->Arg(16);

// A weakly acyclic user schema: employee/department/project layers.
void BM_WeaklyAcyclicUserSet(benchmark::State& state) {
  const int employees = int(state.range(0));
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
    dept(D) :- works_in(X, D).
    led_by(D, M) :- dept(D).
    person(M) :- led_by(D, M).
    M1 = M2 :- led_by(D, M1), led_by(D, M2).
  )");
  if (!deps.ok()) return;
  std::vector<Atom> facts;
  PredicateId employee = world.predicates().Intern("employee", 1);
  for (int i = 0; i < employees; ++i) {
    facts.push_back(Atom(employee, {world.MakeConstant(StrCat("e", i))}));
  }
  for (auto _ : state) {
    ChaseResult chase = GenericChaseFacts(world, facts, *deps);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_WeaklyAcyclicUserSet)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void BM_UserDependencyContainment(benchmark::State& state) {
  World world;
  Result<DependencySet> deps = ParseDependencies(world, R"(
    person(X) :- employee(X).
    works_in(X, D) :- employee(X).
    dept(D) :- works_in(X, D).
  )");
  if (!deps.ok()) return;
  ConjunctiveQuery q1 = *ParseQuery(world, "q(X) :- employee(X).");
  ConjunctiveQuery q2 = *ParseQuery(
      world, "q(X) :- person(X), works_in(X, D), dept(D).");
  for (auto _ : state) {
    Result<ContainmentResult> result =
        CheckContainmentUnderDependencies(world, q1, q2, *deps);
    benchmark::DoNotOptimize(result.ok() && result->contained);
  }
}
BENCHMARK(BM_UserDependencyContainment);

}  // namespace

int main(int argc, char** argv) {
  PrintComparisonTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
