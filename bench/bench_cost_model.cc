// Experiment E16 — the static cost model behind cost-ordered scheduling.
// A registry of n small queries asks n(n-1) containment questions; with
// ContainmentOptions::use_cost_scheduling the engine prices every
// unpruned pair with analysis::EstimatePairCost and walks the batch
// cheapest-first. This benchmark classifies the same generated registries
// twice — scheduling on and off — and emits a machine-checkable JSON
// report:
//
//   * rank_correlation   — Spearman correlation between the scheduler's
//                          predicted_cost and the pair's measured search
//                          work (hom nodes + index probes), per registry;
//                          gate: >= 0.6 on the structured mix.
//   * wall_correlation   — the same prediction against wall time
//                          (chase_ms + hom_ms); reported, not gated —
//                          sub-microsecond pairs make wall clocks noisy.
//   * time_to_half_ms    — when the first half of the searched pairs had
//                          a verdict (queue_wait + hom wall), per arm.
//                          Cheapest-first should not lose to index order.
//   * parity_mismatches  — any pair whose verdict differs between the
//                          two arms (scheduling only reorders); gate: 0.
//
// The mixes mirror bench_containment_index (E14) so the cost model is
// exercised on the same populations the signature filter sees: a
// structured mix (chain probes + mandatory cycles, heterogeneous chase
// depth — the regime cost ordering exists for), a predicate-diverse
// random mix, and a homogeneous adversarial mix whose pairs all cost
// about the same. Only the structured mix carries the correlation gate:
// the signature filter discharges nearly every predicate-diverse pair
// before the scheduler prices it (priced_pairs ~ 0 there is expected,
// and E14's job), and in the equal-cost adversarial mix rank order is
// meaningless by construction. Both still feed the parity gate.
//
// FLOQ_BENCH_SMALL=1 in the environment shrinks the registries ~4x for
// CI smoke runs; the parity gate is size-independent.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "containment/engine.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"

namespace {

using namespace floq;

bool SmallMode() {
  const char* env = std::getenv("FLOQ_BENCH_SMALL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

enum class Mix { kStructured, kPredicateDiverse, kAdversarial };

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kStructured:
      return "structured_mixed_depth";
    case Mix::kPredicateDiverse:
      return "predicate_diverse";
    case Mix::kAdversarial:
      return "adversarial_homogeneous";
  }
  return "?";
}

// All queries are boolean so every ordered pair is checkable. The
// structured mix is half chain probes / mandatory cycles (wildly varying
// chase and search cost — exactly what a cost order can exploit), padded
// with cheap random queries; the other two mixes reuse the E14 recipes.
std::vector<ConjunctiveQuery> MakeRegistry(World& world, Mix mix, int n) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(size_t(n));

  const int spine = mix == Mix::kStructured ? n / 2 : n / 50;
  for (int i = 0; i < spine; ++i) {
    if (i % 2 == 1) {
      queries.push_back(gen::MakeMandatoryCycleQuery(
          world, 1 + i % 3, "cycle" + std::to_string(i)));
    } else {
      queries.push_back(gen::MakeDataChainProbe(world, 1 + i % 6,
                                                "probe" + std::to_string(i)));
    }
  }

  gen::RandomQuerySpec spec;
  spec.arity = 0;
  spec.variable_pool = 4;
  switch (mix) {
    case Mix::kStructured:
      spec.atoms = 8;
      spec.constant_pool = 24;
      spec.constant_probability = 0.45;
      spec.with_constraints = false;
      break;
    case Mix::kPredicateDiverse:
      spec.atoms = 14;
      spec.constant_pool = 56;
      spec.constant_probability = 0.60;
      spec.with_constraints = true;
      break;
    case Mix::kAdversarial:
      spec.atoms = 6;
      spec.constant_pool = 4;
      spec.constant_probability = 0.30;
      spec.with_constraints = false;
      break;
  }
  for (int i = int(queries.size()); i < n; ++i) {
    spec.seed = uint64_t(9000 + 31 * i + int(mix));
    queries.push_back(
        gen::MakeRandomQuery(world, spec, "q" + std::to_string(i)));
  }
  return queries;
}

// Per-pair sample for the correlation and latency metrics; only pairs
// the scheduler actually priced (unpruned, search ran) participate.
struct PairSample {
  double predicted = 0;
  double work = 0;     // hom nodes + index probes (deterministic)
  double wall_ms = 0;  // chase_ms + hom_ms (noisy at microsecond scale)
  double done_ms = 0;  // queue_wait_ms + hom_ms: verdict arrival time
};

struct ArmResult {
  double wall_ms = 0;
  BatchStats stats;
  std::vector<uint8_t> codes;  // n*n, row-major: resolution | pruned<<2
  std::vector<PairSample> samples;
};

ArmResult RunArm(Mix mix, int n, bool use_scheduling) {
  World world;
  std::vector<ConjunctiveQuery> queries = MakeRegistry(world, mix, n);

  BatchContainmentOptions options;
  options.jobs = 1;  // arrival order below assumes one worker
  options.containment.use_cost_scheduling = use_scheduling;

  ArmResult arm;
  auto start = std::chrono::steady_clock::now();
  ContainmentEngine engine(world, options);
  for (const ConjunctiveQuery& q : queries) {
    auto id = engine.AddQuery(q);
    FLOQ_CHECK(id.ok());
  }
  auto matrix = engine.CheckAll();
  auto stop = std::chrono::steady_clock::now();
  FLOQ_CHECK(matrix.ok());

  arm.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  arm.stats = engine.stats();
  arm.codes.assign(size_t(n) * size_t(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const PairVerdict& v = (*matrix)[size_t(i)][size_t(j)];
      arm.codes[size_t(i) * size_t(n) + size_t(j)] =
          uint8_t(uint8_t(v.resolution) | (v.pruned ? 4u : 0u));
      if (v.pruned || v.lhs_unsatisfiable) continue;
      const double work =
          double(v.hom_stats.nodes_visited) + double(v.hom_stats.index_probes);
      if (work <= 0) continue;
      PairSample sample;
      sample.predicted = v.predicted_cost;
      sample.work = work;
      sample.wall_ms = v.chase_ms + v.hom_ms;
      sample.done_ms = v.queue_wait_ms + v.hom_ms;
      arm.samples.push_back(sample);
    }
  }
  return arm;
}

// Average ranks with midranks for ties, then Pearson on the ranks —
// standard Spearman.
std::vector<double> Ranks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double mid = 0.5 * double(i + j) + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mid;
    i = j + 1;
  }
  return ranks;
}

double Spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const size_t n = x.size();
  if (n < 3 || y.size() != n) return 0;
  std::vector<double> rx = Ranks(x), ry = Ranks(y);
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += rx[i];
    my += ry[i];
  }
  mx /= double(n);
  my /= double(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

// The k-th smallest verdict-arrival time, k = half the searched pairs:
// how long a consumer draining results cheapest-first waits for 50%
// coverage of the hard pairs.
double TimeToHalf(const ArmResult& arm) {
  std::vector<double> done;
  done.reserve(arm.samples.size());
  for (const PairSample& s : arm.samples) done.push_back(s.done_ms);
  if (done.empty()) return 0;
  const size_t k = done.size() / 2;
  std::nth_element(done.begin(), done.begin() + ptrdiff_t(k), done.end());
  return done[k];
}

struct RegistryReport {
  double rank_correlation = 0;
  double wall_correlation = 0;
  double time_to_half_sched_ms = 0;
  double time_to_half_base_ms = 0;
  uint64_t parity_mismatches = 0;
  size_t samples = 0;
};

RegistryReport CompareArms(const ArmResult& sched, const ArmResult& base) {
  RegistryReport report;
  std::vector<double> predicted, work, wall;
  predicted.reserve(sched.samples.size());
  work.reserve(sched.samples.size());
  wall.reserve(sched.samples.size());
  for (const PairSample& s : sched.samples) {
    if (s.predicted <= 0) continue;
    predicted.push_back(s.predicted);
    work.push_back(s.work);
    wall.push_back(s.wall_ms);
  }
  report.samples = predicted.size();
  report.rank_correlation = Spearman(predicted, work);
  report.wall_correlation = Spearman(predicted, wall);
  report.time_to_half_sched_ms = TimeToHalf(sched);
  report.time_to_half_base_ms = TimeToHalf(base);
  for (size_t k = 0; k < sched.codes.size(); ++k) {
    if ((sched.codes[k] & 3u) != (base.codes[k] & 3u)) {
      ++report.parity_mismatches;
    }
  }
  return report;
}

void PrintArmJson(const char* key, const ArmResult& arm) {
  const BatchStats& s = arm.stats;
  std::printf(
      "      \"%s\": {\"wall_ms\": %.3f, \"cost_model_ms\": %.3f, "
      "\"chases_run\": %llu, \"hom_nodes_visited\": %llu, "
      "\"budget_calibrated_pairs\": %llu}",
      key, arm.wall_ms, s.cost_us / 1000.0, (unsigned long long)s.chases_run,
      (unsigned long long)s.hom.nodes_visited,
      (unsigned long long)s.budget_calibrated_pairs);
}

void PrintReport() {
  const bool small = SmallMode();
  const int n = small ? 48 : 192;
  const Mix mixes[] = {Mix::kStructured, Mix::kPredicateDiverse,
                       Mix::kAdversarial};

  std::printf("{\n");
  std::printf("  \"experiment\": \"cost_model\",\n");
  std::printf("  \"small_mode\": %s,\n", small ? "true" : "false");
  std::printf("  \"queries_per_registry\": %d,\n", n);
  std::printf("  \"registries\": {\n");

  // See the file comment: only the structured mix carries the
  // correlation gate; all mixes feed the parity gate.
  double gated_correlation = 0.0;
  uint64_t mismatches = 0;
  bool first = true;
  for (Mix mix : mixes) {
    ArmResult sched = RunArm(mix, n, /*use_scheduling=*/true);
    ArmResult base = RunArm(mix, n, /*use_scheduling=*/false);
    RegistryReport report = CompareArms(sched, base);
    mismatches += report.parity_mismatches;
    if (mix == Mix::kStructured) gated_correlation = report.rank_correlation;

    if (!first) std::printf(",\n");
    first = false;
    std::printf("    \"%s\": {\n", MixName(mix));
    std::printf("      \"priced_pairs\": %llu,\n",
                (unsigned long long)report.samples);
    PrintArmJson("scheduled", sched);
    std::printf(",\n");
    PrintArmJson("baseline", base);
    std::printf(",\n");
    std::printf("      \"rank_correlation\": %.4f,\n", report.rank_correlation);
    std::printf("      \"wall_correlation\": %.4f,\n", report.wall_correlation);
    std::printf("      \"time_to_half_scheduled_ms\": %.3f,\n",
                report.time_to_half_sched_ms);
    std::printf("      \"time_to_half_baseline_ms\": %.3f,\n",
                report.time_to_half_base_ms);
    std::printf("      \"parity_mismatches\": %llu\n",
                (unsigned long long)report.parity_mismatches);
    std::printf("    }");
  }
  std::printf("\n  },\n");

  std::printf("  \"gated_rank_correlation\": %.4f,\n", gated_correlation);
  std::printf("  \"parity_mismatches\": %llu,\n",
              (unsigned long long)mismatches);
  std::printf("  \"gates\": {\"rank_correlation_min\": 0.60, "
              "\"parity_mismatches_max\": 0},\n");
  std::printf("  \"gates_pass\": %s\n",
              (gated_correlation >= 0.60 && mismatches == 0) ? "true"
                                                             : "false");
  std::printf("}\n");
}

// Wall time of one classify arm for --benchmark_filter runs: arg 0 is
// index order, arg 1 the cost-ordered schedule.
void BM_ClassifyStructured(benchmark::State& state) {
  const int n = SmallMode() ? 48 : 128;
  const bool use_scheduling = state.range(0) != 0;
  for (auto _ : state) {
    ArmResult arm = RunArm(Mix::kStructured, n, use_scheduling);
    benchmark::DoNotOptimize(arm.codes.size());
  }
}
BENCHMARK(BM_ClassifyStructured)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
