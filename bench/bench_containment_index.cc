// Experiment E14 — the signature-pruned containment index. A registry of
// n small queries asks n(n-1) containment questions; the stage-0
// signature filter (signature.h) discharges every pair whose
// predicate/constant fingerprints make a homomorphism impossible, before
// any chase or search runs. This benchmark classifies the same generated
// registries twice — signature index on (the default) and off
// (--no-prune) — and emits a machine-checkable JSON report:
//
//   * pruning_ratio        — pruned_pairs / pairs per registry; the E14
//                            gate demands a geomean >= 0.90.
//   * speedup              — end-to-end wall (AddQuery through CheckAll)
//                            of the no-prune arm over the default arm;
//                            gate: geomean >= 3.0.
//   * soundness_violations — pairs the filter discharged that the full
//                            procedure proves kContained; gate: 0.
//   * parity_mismatches    — any pair whose verdict differs between the
//                            two arms (the --no-prune contract); gate: 0.
//
// Three registry mixes exercise the filter from different angles:
// constant-diverse random queries (constants drawn from a wide pool, so
// most pairs fail the constant-subset test), predicate-diverse structured
// queries (chain probes and mandatory cycles, so predicate masks differ),
// and a homogeneous adversarial mix (shared predicates and a narrow
// constant pool, the filter's worst case — its ratio is reported but held
// to a lower bar by design).
//
// FLOQ_BENCH_SMALL=1 in the environment shrinks the registries ~10x for
// CI smoke runs; the soundness/parity gates are size-independent.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "containment/engine.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"

namespace {

using namespace floq;

bool SmallMode() {
  const char* env = std::getenv("FLOQ_BENCH_SMALL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

enum class Mix { kConstantDiverse, kPredicateDiverse, kAdversarial };

const char* MixName(Mix mix) {
  switch (mix) {
    case Mix::kConstantDiverse:
      return "constant_diverse";
    case Mix::kPredicateDiverse:
      return "predicate_diverse";
    case Mix::kAdversarial:
      return "adversarial_homogeneous";
  }
  return "?";
}

// All queries are boolean so every ordered pair is checkable; bodies stay
// at 3-5 atoms so the no-prune baseline's n(n-1) full checks remain
// tractable on one core.
std::vector<ConjunctiveQuery> MakeRegistry(World& world, Mix mix, int n) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(size_t(n));

  // A structured spine (absent from the pure constant-diverse mix):
  // finite data-chain probes and infinite-chase mandatory cycles keep
  // both chase regimes represented. Probes are variable-only queries — as
  // right-hand sides nothing can constant-prune them, every one of their
  // pairs rides the full pipeline — so the gated mix keeps the spine to
  // 2% and the adversarial mix owns the heavy-overlap regime.
  const int spine = mix == Mix::kConstantDiverse ? 0 : n / 50;
  for (int i = 0; i < spine; ++i) {
    if (i % 2 == 1) {
      queries.push_back(gen::MakeMandatoryCycleQuery(
          world, 1 + i % 3, "cycle" + std::to_string(i)));
    } else {
      queries.push_back(gen::MakeDataChainProbe(world, 1 + i % 6,
                                                "probe" + std::to_string(i)));
    }
  }

  gen::RandomQuerySpec spec;
  spec.arity = 0;
  spec.variable_pool = 4;
  switch (mix) {
    case Mix::kConstantDiverse:
      spec.atoms = 18;
      spec.constant_pool = 48;  // wide pool => constant-subset test bites
      spec.constant_probability = 0.55;
      spec.with_constraints = false;
      break;
    case Mix::kPredicateDiverse:
      spec.atoms = 14;
      spec.constant_pool = 56;
      spec.constant_probability = 0.60;
      spec.with_constraints = true;  // mandatory/funct atoms vary the masks
      break;
    case Mix::kAdversarial:
      spec.atoms = 6;
      spec.constant_pool = 4;  // narrow pool => fingerprints collide
      spec.constant_probability = 0.30;
      spec.with_constraints = false;
      break;
  }
  for (int i = int(queries.size()); i < n; ++i) {
    spec.seed = uint64_t(7000 + 17 * i + int(mix));
    queries.push_back(
        gen::MakeRandomQuery(world, spec, "q" + std::to_string(i)));
  }
  return queries;
}

// One arm: register + CheckAll, end to end. Verdicts are compressed to
// one byte per pair (resolution in the low bits, pruned flag in bit 2) so
// two 1000-query arms never hold two full PairVerdict matrices at once.
struct ArmResult {
  double wall_ms = 0;
  BatchStats stats;
  std::vector<uint8_t> codes;  // n*n, row-major
};

ArmResult RunArm(Mix mix, int n, bool use_index) {
  World world;
  std::vector<ConjunctiveQuery> queries = MakeRegistry(world, mix, n);

  BatchContainmentOptions options;
  options.jobs = 1;  // isolate the filter's win from thread fan-out
  options.containment.use_signature_index = use_index;

  ArmResult arm;
  auto start = std::chrono::steady_clock::now();
  ContainmentEngine engine(world, options);
  for (const ConjunctiveQuery& q : queries) {
    auto id = engine.AddQuery(q);
    FLOQ_CHECK(id.ok());
  }
  auto matrix = engine.CheckAll();
  auto stop = std::chrono::steady_clock::now();
  FLOQ_CHECK(matrix.ok());

  arm.wall_ms = std::chrono::duration<double, std::milli>(stop - start).count();
  arm.stats = engine.stats();
  arm.codes.assign(size_t(n) * size_t(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const PairVerdict& v = (*matrix)[size_t(i)][size_t(j)];
      arm.codes[size_t(i) * size_t(n) + size_t(j)] =
          uint8_t(uint8_t(v.resolution) | (v.pruned ? 4u : 0u));
    }
  }
  return arm;
}

struct RegistryReport {
  double pruning_ratio = 0;
  double speedup = 0;
  uint64_t soundness_violations = 0;
  uint64_t parity_mismatches = 0;
};

RegistryReport CompareArms(const ArmResult& fast, const ArmResult& slow,
                           int n) {
  RegistryReport report;
  const uint64_t pairs = uint64_t(n) * uint64_t(n - 1);
  report.pruning_ratio =
      pairs == 0 ? 0.0 : double(fast.stats.pruned_pairs) / double(pairs);
  report.speedup = fast.wall_ms <= 0 ? 0.0 : slow.wall_ms / fast.wall_ms;
  for (size_t k = 0; k < fast.codes.size(); ++k) {
    const uint8_t f_res = fast.codes[k] & 3u;
    const uint8_t s_res = slow.codes[k] & 3u;
    const bool pruned = (fast.codes[k] & 4u) != 0;
    // A pruned pair is a definite kNotContained claim; the full
    // procedure deciding kContained would be a soundness violation.
    if (pruned && s_res == uint8_t(Resolution::kContained)) {
      ++report.soundness_violations;
    }
    if (f_res != s_res) ++report.parity_mismatches;
  }
  return report;
}

void PrintArmJson(const char* key, const ArmResult& arm, uint64_t pairs) {
  const BatchStats& s = arm.stats;
  double pairs_per_sec =
      arm.wall_ms <= 0 ? 0.0 : double(pairs) / (arm.wall_ms / 1000.0);
  std::printf(
      "      \"%s\": {\"wall_ms\": %.3f, \"pairs_per_sec\": %.1f, "
      "\"pruned_pairs\": %llu, \"signature_ms\": %.3f, "
      "\"chase_requests\": %llu, \"chases_run\": %llu, "
      "\"hom_nodes_visited\": %llu}",
      key, arm.wall_ms, pairs_per_sec, (unsigned long long)s.pruned_pairs,
      s.signature_us / 1000.0, (unsigned long long)s.chase_requests,
      (unsigned long long)s.chases_run,
      (unsigned long long)s.hom.nodes_visited);
}

void PrintReport() {
  const bool small = SmallMode();
  const int n = small ? 128 : 1000;
  const Mix mixes[] = {Mix::kConstantDiverse, Mix::kPredicateDiverse,
                       Mix::kAdversarial};

  std::printf("{\n");
  std::printf("  \"experiment\": \"containment_index\",\n");
  std::printf("  \"small_mode\": %s,\n", small ? "true" : "false");
  std::printf("  \"queries_per_registry\": %d,\n", n);
  std::printf("  \"registries\": {\n");

  double log_ratio_sum = 0, log_speedup_sum = 0;
  // The adversarial mix is a deliberate worst case; it participates in
  // the soundness/parity gates but not the pruning/speedup geomeans.
  int gated = 0;
  uint64_t violations = 0, mismatches = 0;
  bool first = true;
  for (Mix mix : mixes) {
    ArmResult fast = RunArm(mix, n, /*use_index=*/true);
    ArmResult slow = RunArm(mix, n, /*use_index=*/false);
    RegistryReport report = CompareArms(fast, slow, n);
    violations += report.soundness_violations;
    mismatches += report.parity_mismatches;
    if (mix != Mix::kAdversarial) {
      log_ratio_sum += std::log(std::max(report.pruning_ratio, 1e-12));
      log_speedup_sum += std::log(std::max(report.speedup, 1e-12));
      ++gated;
    }

    if (!first) std::printf(",\n");
    first = false;
    const uint64_t pairs = uint64_t(n) * uint64_t(n - 1);
    std::printf("    \"%s\": {\n", MixName(mix));
    std::printf("      \"pairs\": %llu,\n", (unsigned long long)pairs);
    PrintArmJson("with_index", fast, pairs);
    std::printf(",\n");
    PrintArmJson("no_prune", slow, pairs);
    std::printf(",\n");
    std::printf("      \"pruning_ratio\": %.4f,\n", report.pruning_ratio);
    std::printf("      \"speedup\": %.3f,\n", report.speedup);
    std::printf("      \"soundness_violations\": %llu,\n",
                (unsigned long long)report.soundness_violations);
    std::printf("      \"parity_mismatches\": %llu\n",
                (unsigned long long)report.parity_mismatches);
    std::printf("    }");
  }
  std::printf("\n  },\n");

  const double geo_ratio = gated == 0 ? 0 : std::exp(log_ratio_sum / gated);
  const double geo_speedup =
      gated == 0 ? 0 : std::exp(log_speedup_sum / gated);
  std::printf("  \"geomean_pruning_ratio\": %.4f,\n", geo_ratio);
  std::printf("  \"geomean_speedup\": %.3f,\n", geo_speedup);
  std::printf("  \"soundness_violations\": %llu,\n",
              (unsigned long long)violations);
  std::printf("  \"parity_mismatches\": %llu,\n",
              (unsigned long long)mismatches);
  std::printf("  \"gates\": {\"pruning_ratio_min\": 0.90, "
              "\"speedup_min\": 3.0, \"violations_max\": 0},\n");
  std::printf("  \"gates_pass\": %s\n",
              (geo_ratio >= 0.90 && geo_speedup >= 3.0 && violations == 0 &&
               mismatches == 0)
                  ? "true"
                  : "false");
  std::printf("}\n");
}

// Wall time of one classify arm for --benchmark_filter runs: arg 0 is the
// no-prune baseline, arg 1 the default pipeline.
void BM_ClassifyConstantDiverse(benchmark::State& state) {
  const int n = SmallMode() ? 128 : 400;
  const bool use_index = state.range(0) != 0;
  for (auto _ : state) {
    ArmResult arm = RunArm(Mix::kConstantDiverse, n, use_index);
    benchmark::DoNotOptimize(arm.codes.size());
  }
}
BENCHMARK(BM_ClassifyConstantDiverse)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
