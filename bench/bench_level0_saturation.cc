// Experiment E5 — the preliminary chase (level 0, Sigma_FL^-) is
// polynomial in |q| (part of Theorem 13's argument: "this is done in time
// polynomial in |q1|"). Measures fixpoint time and size on subclass
// towers (worst case for rho_2: quadratic closure) and random queries.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chase/chase.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/strings.h"

namespace {

floq::ConjunctiveQuery MakeSubclassTower(floq::World& world, int height) {
  using floq::StrCat;
  std::string text = "q() :- ";
  for (int i = 0; i < height; ++i) {
    if (i > 0) text += ", ";
    text += StrCat("sub(C", i, ", C", i + 1, ")");
  }
  text += ".";
  return *floq::ParseQuery(world, text);
}

void PrintGrowthTable() {
  using namespace floq;
  std::printf("== E5: level-0 saturation growth ==\n");
  std::printf("%-18s %-8s %-12s %s\n", "query", "|q|", "level-0 size",
              "ratio");
  for (int height : {4, 8, 16, 32, 64, 128}) {
    World world;
    ConjunctiveQuery q = MakeSubclassTower(world, height);
    ChaseResult chase = ChaseLevelZero(world, q);
    std::printf("sub-tower %-8d %-8d %-12u %.1f\n", height, q.size(),
                chase.size(), double(chase.size()) / q.size());
  }
  for (uint64_t seed : {1, 2, 3}) {
    World world;
    gen::RandomQuerySpec spec;
    spec.seed = seed;
    spec.atoms = 32;
    spec.variable_pool = 8;
    ConjunctiveQuery q = gen::MakeRandomQuery(world, spec);
    ChaseResult chase = ChaseLevelZero(world, q);
    std::printf("random/%-11llu %-8d %-12u %.1f\n",
                (unsigned long long)seed, q.size(), chase.size(),
                double(chase.size()) / q.size());
  }
  std::printf("\n");
}

void BM_LevelZeroSubclassTower(benchmark::State& state) {
  using namespace floq;
  const int height = int(state.range(0));
  World world;
  ConjunctiveQuery q = MakeSubclassTower(world, height);
  for (auto _ : state) {
    ChaseResult chase = ChaseLevelZero(world, q);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
  state.SetComplexityN(height);
}
BENCHMARK(BM_LevelZeroSubclassTower)
    ->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128)
    ->Complexity();

void BM_LevelZeroRandomQuery(benchmark::State& state) {
  using namespace floq;
  const int atoms = int(state.range(0));
  World world;
  gen::RandomQuerySpec spec;
  spec.seed = 99;
  spec.atoms = atoms;
  spec.variable_pool = std::max(2, atoms / 4);
  ConjunctiveQuery q = gen::MakeRandomQuery(world, spec);
  for (auto _ : state) {
    ChaseResult chase = ChaseLevelZero(world, q);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_LevelZeroRandomQuery)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintGrowthTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
