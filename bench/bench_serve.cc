// Experiment E17 — the `floq serve` daemon (DESIGN.md §16). Three
// questions, one JSON report (stdout; CI captures BENCH_serve.json):
//
//   * daemon_contain    — round-trip latency (p50/p99) and throughput of
//                         cached `contain` requests against a warm
//                         registry over the AF_UNIX socket. The lattice
//                         answer itself is a matrix lookup, so this arm
//                         prices the whole serving stack: framing, JSON,
//                         admission gate, epoch snapshot.
//   * oneshot_contain   — the same containment question answered the
//                         pre-daemon way: re-parse both queries and run
//                         CheckContainment from scratch per request,
//                         i.e. what every `floq check` invocation pays.
//                         speedup = oneshot_p50 / daemon_p50.
//   * armed_contain     — the daemon arm again with the recommended
//                         production observability config (structured
//                         logging at info, tracing sampled at 1/64,
//                         slow-request accounting). armed_overhead_p50 =
//                         armed_p50 / daemon_p50; CI gates it ≤ 1.05x.
//   * recovery          — QueryRegistry::Open wall time on a registry
//                         whose state lives entirely in an N-record WAL
//                         (no checkpoint), and on the same state after a
//                         checkpoint: the price of crash recovery, and
//                         what checkpointing buys.
//
// FLOQ_BENCH_SMALL=1 shrinks the registry and request counts ~8x for CI
// smoke runs.

#include <benchmark/benchmark.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "containment/containment.h"
#include "flogic/parser.h"
#include "server/daemon.h"
#include "server/protocol.h"
#include "server/registry.h"
#include "term/world.h"
#include "util/check.h"
#include "util/metrics.h"

namespace {

using namespace floq;
using namespace floq::server;

bool SmallMode() {
  const char* env = std::getenv("FLOQ_BENCH_SMALL");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Registered queries: pairwise-related class-membership shapes so the
// maintained lattice holds real verdicts, not just signature discharges.
std::string QueryText(int i) {
  switch (i % 3) {
    case 0:
      return "q(X) :- X : c" + std::to_string(i / 3) + ".";
    case 1:
      return "q(X) :- X : c" + std::to_string(i / 3) +
             ", X[advisor -> Y].";
    default:
      return "q(X) :- X : c" + std::to_string(i / 3) +
             ", X[advisor -> Y], Y : c" + std::to_string(i / 3) + ".";
  }
}

int ConnectUnix(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  FLOQ_CHECK(fd >= 0);
  struct sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  FLOQ_CHECK(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                       sizeof(addr)) == 0);
  return fd;
}

Json RoundTrip(int fd, const Json& request) {
  Status written =
      WriteFrame(fd, request.Serialize(), Deadline::AfterMillis(10'000));
  FLOQ_CHECK(written.ok());
  FrameDecoder decoder;
  Result<std::string> payload =
      ReadFrame(fd, decoder, Deadline::AfterMillis(60'000));
  FLOQ_CHECK(payload.ok());
  Result<Json> reply = ParseJson(*payload);
  FLOQ_CHECK(reply.ok());
  return *std::move(reply);
}

struct LatencyStats {
  double p50_us = 0.0;
  double p99_us = 0.0;
  double req_per_s = 0.0;
};

LatencyStats Summarize(std::vector<double>& samples_us, double wall_ms) {
  std::sort(samples_us.begin(), samples_us.end());
  LatencyStats out;
  out.p50_us = samples_us[samples_us.size() / 2];
  out.p99_us = samples_us[size_t(double(samples_us.size() - 1) * 0.99)];
  out.req_per_s = double(samples_us.size()) / (wall_ms / 1000.0);
  return out;
}

struct Report {
  int queries = 0;
  int requests = 0;
  double register_ms = 0.0;
  LatencyStats daemon;
  LatencyStats armed;
  LatencyStats oneshot;
  double speedup_p50 = 0.0;
  double armed_overhead_p50 = 0.0;
  double wal_records = 0;
  double recovery_wal_ms = 0.0;
  double recovery_checkpoint_ms = 0.0;
};

std::string MakeBenchDir() {
  char tmpl[] = "/tmp/floqbenchXXXXXX";
  char* dir = ::mkdtemp(tmpl);
  FLOQ_CHECK(dir != nullptr);
  return dir;
}

// Spins up an in-process daemon with `options`, registers the working
// set, measures the warm cached-contain loop, and shuts down. Fills
// register_ms on the first (baseline) run only.
LatencyStats MeasureDaemonContain(const DaemonOptions& options, int queries,
                                  int requests, double* register_ms) {
  std::thread daemon([options] {
    Status status = RunDaemon(options);
    FLOQ_CHECK(status.ok());
  });

  // Wait for the socket, then register the working set.
  int fd = -1;
  for (int i = 0; i < 500 && fd < 0; ++i) {
    ::usleep(20'000);
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(probe, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd = probe;
    } else {
      ::close(probe);
    }
  }
  FLOQ_CHECK(fd >= 0);

  double start = NowMs();
  for (int i = 0; i < queries; ++i) {
    Json request = Json::Object();
    request.Set("cmd", Json::String("register"));
    request.Set("name", Json::String("q" + std::to_string(i)));
    request.Set("query", Json::String(QueryText(i)));
    Json reply = RoundTrip(fd, request);
    { Result<bool> ok = reply.GetBool("ok"); FLOQ_CHECK(ok.ok() && *ok); }
  }
  if (register_ms != nullptr) *register_ms = NowMs() - start;

  // Warm cached contain round-trips, cycling over related name pairs.
  std::vector<double> samples_us;
  samples_us.reserve(size_t(requests));
  start = NowMs();
  for (int i = 0; i < requests; ++i) {
    Json request = Json::Object();
    request.Set("cmd", Json::String("contain"));
    request.Set("lhs",
                Json::String("q" + std::to_string((3 * i + 1) % queries)));
    request.Set("rhs",
                Json::String("q" + std::to_string((3 * i) % queries)));
    double t0 = NowMs();
    Json reply = RoundTrip(fd, request);
    samples_us.push_back((NowMs() - t0) * 1000.0);
    { Result<bool> ok = reply.GetBool("ok"); FLOQ_CHECK(ok.ok() && *ok); }
    { Result<bool> cached = reply.GetBool("cached"); FLOQ_CHECK(cached.ok() && *cached); }
  }
  LatencyStats stats = Summarize(samples_us, NowMs() - start);

  Json shutdown = Json::Object();
  shutdown.Set("cmd", Json::String("shutdown"));
  (void)RoundTrip(fd, shutdown);
  ::close(fd);
  daemon.join();
  return stats;
}

// One daemon lifetime per repetition, keep the repetition with the best
// p50: min-of-N discards scheduler jitter (a background task landing on
// one run), which on small boxes dwarfs the effect the overhead gate is
// after. Both arms get the same treatment, so the ratio stays honest.
constexpr int kRepetitions = 3;

LatencyStats BestOf(const DaemonOptions& base_options, int queries,
                    int requests, double* register_ms) {
  LatencyStats best;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    DaemonOptions options = base_options;
    options.dir = MakeBenchDir();
    options.socket_path = options.dir + "/s.sock";
    if (!base_options.log_out.empty()) {
      options.log_out = options.dir + "/log.jsonl";
    }
    if (!base_options.trace_dir.empty()) {
      options.trace_dir = options.dir + "/traces";
    }
    LatencyStats stats = MeasureDaemonContain(
        options, queries, requests, rep == 0 ? register_ms : nullptr);
    if (rep == 0 || stats.p50_us < best.p50_us) best = stats;
  }
  return best;
}

void RunDaemonArms(Report& report) {
  DaemonOptions options;
  options.workers = 2;
  report.daemon =
      BestOf(options, report.queries, report.requests, &report.register_ms);

  // Armed arm: the same serving stack with the recommended production
  // observability config — structured log sink at info (per-request
  // request.done lines are debug-only), tracing sampled at 1/64, the
  // slow-request clock running. What an operated deployment pays; CI
  // gates the p50 ratio at 1.05x. trace_sample=1 (trace everything) is a
  // debugging posture and is deliberately not what this arm prices.
  DaemonOptions armed;
  armed.workers = 2;
  armed.log_out = "armed";  // non-empty: BestOf points it into each rep dir
  armed.log_level = "info";
  armed.trace_sample = 64;
  armed.trace_dir = "armed";
  report.armed = BestOf(armed, report.queries, report.requests, nullptr);
  report.armed_overhead_p50 = report.armed.p50_us / report.daemon.p50_us;

  // The daemon arms the process-wide metrics registry and leaves it on;
  // switch it back off so the one-shot baseline prices the pre-daemon
  // path, not the instrumented one.
  MetricsRegistry::set_enabled(false);

  // One-shot baseline: the same questions with no resident state.
  std::vector<double> samples_us;
  samples_us.reserve(size_t(report.requests));
  double start = NowMs();
  for (int i = 0; i < report.requests; ++i) {
    double t0 = NowMs();
    World world;
    Result<ConjunctiveQuery> lhs = flogic::ParseQuery(
        world, QueryText((3 * i + 1) % report.queries));
    Result<ConjunctiveQuery> rhs =
        flogic::ParseQuery(world, QueryText((3 * i) % report.queries));
    FLOQ_CHECK(lhs.ok() && rhs.ok());
    Result<ContainmentResult> verdict =
        CheckContainment(world, *lhs, *rhs, ContainmentOptions{});
    FLOQ_CHECK(verdict.ok());
    benchmark::DoNotOptimize(verdict->resolution);
    samples_us.push_back((NowMs() - t0) * 1000.0);
  }
  report.oneshot = Summarize(samples_us, NowMs() - start);
  report.speedup_p50 = report.oneshot.p50_us / report.daemon.p50_us;
}

void RunRecoveryArm(Report& report) {
  const std::string dir = MakeBenchDir();
  RegistryOptions options;
  options.dir = dir;
  options.checkpoint_every = 0;  // keep every mutation in the WAL
  {
    QueryRegistry registry(options);
    FLOQ_CHECK(registry.Open().ok());
    for (int i = 0; i < report.queries; ++i) {
      FLOQ_CHECK(
          registry.Register("q" + std::to_string(i), QueryText(i)).ok());
    }
    report.wal_records = double(registry.mutations_since_checkpoint());
  }
  {
    double start = NowMs();
    QueryRegistry recovered(options);
    FLOQ_CHECK(recovered.Open().ok());
    report.recovery_wal_ms = NowMs() - start;
    FLOQ_CHECK(recovered.Snapshot()->entries.size() ==
               size_t(report.queries));
    FLOQ_CHECK(recovered.Checkpoint().ok());
  }
  {
    double start = NowMs();
    QueryRegistry recovered(options);
    FLOQ_CHECK(recovered.Open().ok());
    report.recovery_checkpoint_ms = NowMs() - start;
    FLOQ_CHECK(recovered.Snapshot()->entries.size() ==
               size_t(report.queries));
  }
}

void PrintReport() {
  Report report;
  report.queries = SmallMode() ? 24 : 96;
  // The overhead gate divides two p50s, so both arms need enough samples
  // for a stable median even in small mode; cached contains cost ~10 us
  // each, so 2000 requests is still milliseconds of wall clock.
  report.requests = 2000;
  RunDaemonArms(report);
  RunRecoveryArm(report);

  std::printf("{\n");
  std::printf("  \"bench\": \"serve\",\n");
  std::printf("  \"small_mode\": %s,\n", SmallMode() ? "true" : "false");
  std::printf("  \"queries\": %d,\n", report.queries);
  std::printf("  \"register_ms\": %.2f,\n", report.register_ms);
  std::printf("  \"contain_requests\": %d,\n", report.requests);
  std::printf(
      "  \"daemon_contain\": {\"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"req_per_s\": %.0f},\n",
      report.daemon.p50_us, report.daemon.p99_us, report.daemon.req_per_s);
  std::printf(
      "  \"armed_contain\": {\"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"req_per_s\": %.0f},\n",
      report.armed.p50_us, report.armed.p99_us, report.armed.req_per_s);
  std::printf("  \"armed_overhead_p50\": %.3f,\n", report.armed_overhead_p50);
  std::printf(
      "  \"oneshot_contain\": {\"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"req_per_s\": %.0f},\n",
      report.oneshot.p50_us, report.oneshot.p99_us,
      report.oneshot.req_per_s);
  std::printf("  \"speedup_p50\": %.2f,\n", report.speedup_p50);
  std::printf(
      "  \"recovery\": {\"wal_records\": %.0f, \"wal_open_ms\": %.2f, "
      "\"checkpoint_open_ms\": %.2f}\n",
      report.wal_records, report.recovery_wal_ms,
      report.recovery_checkpoint_ms);
  std::printf("}\n");
}

// Interactive arm: one cached contain round-trip per iteration against a
// resident daemon (spun up once per benchmark run).
void BM_DaemonCachedContain(benchmark::State& state) {
  const std::string dir = MakeBenchDir();
  DaemonOptions options;
  options.dir = dir;
  options.socket_path = dir + "/s.sock";
  std::thread daemon([options] { (void)RunDaemon(options); });
  int fd = -1;
  for (int i = 0; i < 500 && fd < 0; ++i) {
    ::usleep(20'000);
    int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(probe, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      fd = probe;
    } else {
      ::close(probe);
    }
  }
  FLOQ_CHECK(fd >= 0);
  for (int i = 0; i < 8; ++i) {
    Json request = Json::Object();
    request.Set("cmd", Json::String("register"));
    request.Set("name", Json::String("q" + std::to_string(i)));
    request.Set("query", Json::String(QueryText(i)));
    (void)RoundTrip(fd, request);
  }
  Json request = Json::Object();
  request.Set("cmd", Json::String("contain"));
  request.Set("lhs", Json::String("q1"));
  request.Set("rhs", Json::String("q0"));
  for (auto _ : state) {
    Json reply = RoundTrip(fd, request);
    benchmark::DoNotOptimize(reply);
  }
  Json shutdown = Json::Object();
  shutdown.Set("cmd", Json::String("shutdown"));
  (void)RoundTrip(fd, shutdown);
  ::close(fd);
  daemon.join();
}
BENCHMARK(BM_DaemonCachedContain)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
