// Experiment E13 — cost of the observability layer (DESIGN.md §12). The
// instrumentation contract is "zero overhead when off": every metrics
// site is gated on one relaxed atomic load (MetricsRegistry::enabled())
// and every trace span on one relaxed pointer load
// (TraceSession::Current()), so a build with the layer compiled in but
// the sinks disarmed must run at the seed's speed. This benchmark
// measures that claim — and the armed-sink tax, for the record — on the
// hom-search corpus of E12 plus a per-pass chase (the two instrumented
// hot paths):
//
//   * off        — sinks disarmed: the production default. Run twice;
//                  the run-to-run ratio is the headline number, since
//                  inside one binary "disabled instrumentation" can only
//                  be distinguished from "no instrumentation" by noise.
//   * metrics    — MetricsRegistry armed (what --metrics-out does).
//   * metrics+trace — registry armed and a TraceSession installed (what
//                  --metrics-out --trace-out does).
//
// Per configuration the report records best-of-N wall times and the
// arm/off ratios; the headline geomean_overhead_ratio (off run-to-run)
// targets < 1.02, and CI fails the build past 1.05 (E13). Results go to
// BENCH_observability.json and stdout.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "datalog/match.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/trace.h"

namespace {

using namespace floq;

struct CorpusConfig {
  const char* name;
  int target_atoms;   // size of the random q1 whose chase is the target
  int target_pool;    // q1 variable pool (smaller => denser target)
  int probe_atoms;    // size of each probe body
  int probe_pool;     // probe variable pool (random probes only)
  bool subquery_probes;  // sample probes from the target's own body
  bool enumerate_all;    // count every match instead of stopping at one
  int probes;            // probes per pass
};

// The E12 axes, minus the widest config (four arms instead of two keep
// the wall budget of a CI run). short failing searches stress the
// per-call fold (one MatchConjunction = one fold); full enumerations
// stress the per-event cost inside a single fold window.
constexpr CorpusConfig kCorpus[] = {
    {"random_sparse_first", 24, 10, 8, 5, false, false, 64},
    {"random_dense_first", 24, 6, 12, 4, false, false, 64},
    {"subquery_small_all", 24, 8, 5, 0, true, true, 24},
    {"subquery_mid_all", 48, 10, 7, 0, true, true, 16},
    {"subquery_deep_all", 64, 8, 9, 0, true, true, 8},
};

enum class Arm { kOff, kMetrics, kMetricsAndTrace };

struct RunMetrics {
  double wall_ms = 0;  // best pass
  uint64_t nodes = 0;  // of one pass, for cross-arm agreement
  uint64_t found = 0;
};

struct Workload {
  World world;
  gen::RandomQuerySpec target_spec;
  ChaseResult chase;
  std::vector<ConjunctiveQuery> probes;
};

// Fills a caller-owned Workload (World is neither copyable nor movable).
void MakeWorkload(const CorpusConfig& config, Workload& w) {
  gen::RandomQuerySpec& target_spec = w.target_spec;
  target_spec.seed = 977;
  target_spec.atoms = config.target_atoms;
  target_spec.variable_pool = config.target_pool;
  target_spec.constant_pool = 3;
  target_spec.constant_probability = 0.0;
  target_spec.arity = 0;
  target_spec.with_constraints = false;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(w.world, target_spec, "target");
  w.chase = ChaseLevelZero(w.world, q1);

  Rng rng(4242);
  for (int t = 0; t < config.probes; ++t) {
    if (config.subquery_probes) {
      std::vector<Atom> body = q1.body();
      for (size_t i = body.size(); i > 1; --i) {
        std::swap(body[i - 1], body[rng.Below(i)]);
      }
      body.resize(size_t(config.probe_atoms));
      ConjunctiveQuery probe("probe", {}, std::move(body));
      w.probes.push_back(probe.RenameApart(w.world));
    } else {
      gen::RandomQuerySpec spec;
      spec.seed = uint64_t(t) * 131 + 17;
      spec.atoms = config.probe_atoms;
      spec.variable_pool = config.probe_pool;
      spec.constant_pool = 3;
      spec.constant_probability = 0.0;
      spec.arity = 0;
      spec.with_constraints = false;
      w.probes.push_back(
          gen::MakeRandomQuery(w.world, spec, "probe").RenameApart(w.world));
    }
  }
}

// One pass: a level-0 chase of the target (exercises the chase driver's
// span + stats fold) followed by every probe search (one MatchConjunction
// fold each). The sinks are armed by the caller, not here, so the pass
// body is identical across arms. The chase runs in a scratch world so no
// arm inherits symbol-table growth from the arms timed before it.
RunMetrics OnePass(const Workload& workload, const CorpusConfig& config) {
  RunMetrics metrics;
  {
    World scratch;
    ConjunctiveQuery q =
        gen::MakeRandomQuery(scratch, workload.target_spec, "target");
    ChaseResult chase = ChaseLevelZero(scratch, q);
    metrics.nodes += chase.size();
  }
  for (const ConjunctiveQuery& probe : workload.probes) {
    MatchStats stats;
    if (config.enumerate_all) {
      constexpr uint64_t kMatchCap = 20000;
      uint64_t matches = 0;
      MatchConjunction(
          probe.body(), workload.chase.conjuncts(), Substitution(),
          [&](const Substitution&) { return ++matches < kMatchCap; }, &stats);
      metrics.found += matches;
    } else {
      if (FindQueryHomomorphism(probe, workload.chase.conjuncts(), {},
                                &stats)) {
        ++metrics.found;
      }
    }
    metrics.nodes += stats.nodes_visited;
  }
  return metrics;
}

RunMetrics TimedRun(const Workload& workload, const CorpusConfig& config,
                    Arm arm) {
  MetricsRegistry::set_enabled(arm != Arm::kOff);
  std::optional<TraceSession> trace;
  // A per-thread ring big enough that no pass wraps it (wrap bookkeeping
  // is the same cost, but keep the arms comparable).
  if (arm == Arm::kMetricsAndTrace) trace.emplace(size_t{1} << 16);

  OnePass(workload, config);  // warm-up
  RunMetrics best;
  constexpr int kPasses = 7;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto start = std::chrono::steady_clock::now();
    RunMetrics metrics = OnePass(workload, config);
    auto stop = std::chrono::steady_clock::now();
    metrics.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (pass == 0 || metrics.wall_ms < best.wall_ms) best = metrics;
  }

  MetricsRegistry::set_enabled(false);
  MetricsRegistry::Get().Reset();
  return best;
}

void WriteObservabilityReport() {
  std::string json;
  json += "{\n  \"experiment\": \"observability_overhead\",\n";
  json += "  \"passes\": 7,\n  \"arms\": [\"off\", \"off_repeat\", "
          "\"metrics\", \"metrics_trace\"],\n  \"configs\": [\n";

  double log_noise_sum = 0;
  double log_metrics_sum = 0;
  double log_trace_sum = 0;
  int config_count = 0;
  bool all_agree = true;

  for (const CorpusConfig& config : kCorpus) {
    Workload workload;
    MakeWorkload(config, workload);

    RunMetrics off = TimedRun(workload, config, Arm::kOff);
    RunMetrics off_repeat = TimedRun(workload, config, Arm::kOff);
    RunMetrics with_metrics = TimedRun(workload, config, Arm::kMetrics);
    RunMetrics with_trace = TimedRun(workload, config, Arm::kMetricsAndTrace);

    // Armed sinks must not change the search or the chase.
    bool agree = off.found == with_metrics.found &&
                 off.nodes == with_metrics.nodes &&
                 off.found == with_trace.found &&
                 off.nodes == with_trace.nodes &&
                 off.nodes == off_repeat.nodes;
    all_agree = all_agree && agree;

    double noise = off.wall_ms > 0 ? off_repeat.wall_ms / off.wall_ms : 1.0;
    double metrics_ratio =
        off.wall_ms > 0 ? with_metrics.wall_ms / off.wall_ms : 1.0;
    double trace_ratio =
        off.wall_ms > 0 ? with_trace.wall_ms / off.wall_ms : 1.0;
    log_noise_sum += std::log(noise);
    log_metrics_sum += std::log(metrics_ratio);
    log_trace_sum += std::log(trace_ratio);
    ++config_count;

    char buffer[640];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\"name\": \"%s\", \"target_conjuncts\": %u, "
        "\"probe_atoms\": %d, \"mode\": \"%s\", \"probes\": %d, "
        "\"nodes_per_pass\": %llu,\n"
        "      \"off_wall_ms\": %.3f, \"off_repeat_wall_ms\": %.3f, "
        "\"metrics_wall_ms\": %.3f, \"metrics_trace_wall_ms\": %.3f,\n"
        "      \"off_ratio\": %.4f, \"metrics_ratio\": %.4f, "
        "\"metrics_trace_ratio\": %.4f, \"verdicts_agree\": %s}",
        config.name, workload.chase.size(), config.probe_atoms,
        config.enumerate_all ? "all_matches" : "first_match", config.probes,
        (unsigned long long)off.nodes, off.wall_ms, off_repeat.wall_ms,
        with_metrics.wall_ms, with_trace.wall_ms, noise, metrics_ratio,
        trace_ratio, agree ? "true" : "false");
    json += buffer;
    json += (&config == &kCorpus[std::size(kCorpus) - 1]) ? "\n" : ",\n";
  }

  double geomean_noise = std::exp(log_noise_sum / config_count);
  double geomean_metrics = std::exp(log_metrics_sum / config_count);
  double geomean_trace = std::exp(log_trace_sum / config_count);
  char buffer[384];
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"geomean_overhead_ratio\": %.4f,\n"
                "  \"geomean_metrics_ratio\": %.4f,\n"
                "  \"geomean_trace_ratio\": %.4f,\n"
                "  \"target_ratio\": 1.02,\n"
                "  \"all_verdicts_agree\": %s\n}\n",
                geomean_noise, geomean_metrics, geomean_trace,
                all_agree ? "true" : "false");
  json += buffer;

  std::printf(
      "== E13: observability overhead (off / metrics / metrics+trace) ==\n"
      "%s\n",
      json.c_str());
  std::FILE* file = std::fopen("BENCH_observability.json", "w");
  FLOQ_CHECK(file != nullptr);
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("(report written to BENCH_observability.json)\n\n");
}

// ---- google-benchmark timers ------------------------------------------------

void BM_InstrumentedHomSearch(benchmark::State& state) {
  const Arm arm = Arm(state.range(0));
  const CorpusConfig& config = kCorpus[3];  // subquery_mid_all
  Workload workload;
  MakeWorkload(config, workload);
  MetricsRegistry::set_enabled(arm != Arm::kOff);
  std::optional<TraceSession> trace;
  if (arm == Arm::kMetricsAndTrace) trace.emplace(size_t{1} << 16);
  for (auto _ : state) {
    RunMetrics metrics = OnePass(workload, config);
    benchmark::DoNotOptimize(metrics.found);
  }
  MetricsRegistry::set_enabled(false);
  MetricsRegistry::Get().Reset();
}
BENCHMARK(BM_InstrumentedHomSearch)
    ->ArgNames({"arm"})
    ->Args({0})
    ->Args({1})
    ->Args({2});

}  // namespace

int main(int argc, char** argv) {
  WriteObservabilityReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
