// Experiment E7 — the NP guess in Theorem 13 is realized as indexed
// backtracking. This benchmark probes the search frontier: embedding
// random q2 bodies of growing size and join density into the chase of a
// fixed q1, reporting visited search nodes alongside wall time.
//
// Experiment E11 — the compiled homomorphism kernel (DESIGN.md §9). The
// same searches are run three ways over a generator-corpus grid:
//
//   * legacy             — the interpreted, map-based matcher
//                          (use_compiled_kernel = false),
//   * kernel_no_intersect — compiled pattern + flat binding trail, but
//                          smallest-list candidate scans,
//   * kernel             — the production path: compiled pattern, trail,
//                          and k-way galloping posting-list intersection.
//
// Per configuration the report records wall time (best of several
// passes), backtracking nodes, index probes, and probes per node; the
// headline number is the geometric-mean wall-time speedup of the kernel
// over the legacy matcher. Everything is written to BENCH_hom_search.json
// (and echoed to stdout) so the bench trajectory is machine-checkable.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "datalog/match.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"
#include "util/rng.h"

namespace {

using namespace floq;

// A q1 whose chase has many interchangeable conjuncts: a wide schema with
// several classes, attributes, members.
ConjunctiveQuery MakeWideTarget(World& world) {
  gen::RandomQuerySpec spec;
  spec.seed = 12345;
  spec.atoms = 24;
  spec.variable_pool = 10;
  spec.constant_pool = 0;
  spec.constant_probability = 0.0;
  spec.arity = 0;
  spec.with_constraints = false;  // keep the chase finite and level-0
  return gen::MakeRandomQuery(world, spec, "target");
}

void PrintSearchTable() {
  World world;
  ConjunctiveQuery q1 = MakeWideTarget(world);
  ChaseResult chase = ChaseLevelZero(world, q1);
  std::printf("== E7: homomorphism search effort into a %u-conjunct chase ==\n",
              chase.size());
  std::printf("%-10s %-10s %-14s %-12s %s\n", "q2 atoms", "pool", "found",
              "avg nodes", "max nodes");
  for (int atoms : {2, 4, 8, 12, 16}) {
    for (int pool : {3, 6}) {
      uint64_t total_nodes = 0, max_nodes = 0;
      int found = 0, trials = 50;
      for (int t = 0; t < trials; ++t) {
        gen::RandomQuerySpec spec;
        spec.seed = uint64_t(atoms * 1000 + pool * 100 + t);
        spec.atoms = atoms;
        spec.variable_pool = pool;
        spec.constant_pool = 0;
        spec.constant_probability = 0.0;
        spec.arity = 0;
        spec.with_constraints = false;
        ConjunctiveQuery q2 =
            gen::MakeRandomQuery(world, spec, "probe").RenameApart(world);
        MatchStats stats;
        if (FindQueryHomomorphism(q2, chase.conjuncts(), {}, &stats)) {
          ++found;
        }
        total_nodes += stats.nodes_visited;
        max_nodes = std::max(max_nodes, stats.nodes_visited);
      }
      std::printf("%-10d %-10d %3d/%-10d %-12.1f %llu\n", atoms, pool, found,
                  trials, double(total_nodes) / trials,
                  (unsigned long long)max_nodes);
    }
  }
  std::printf("\n");
}

// ---- E11: compiled kernel vs legacy matcher ---------------------------------

struct CorpusConfig {
  const char* name;
  int target_atoms;      // size of the random q1 whose chase is the target
  int target_pool;       // q1 variable pool (smaller => denser target)
  int probe_atoms;       // size of each probe body
  int probe_pool;        // probe variable pool (random probes only)
  double constant_probability;  // of both target and probes
  // Probes sampled from the target's own body (renamed apart): always
  // embeddable, so the search enumerates real match sets instead of dying
  // on the first unmatchable atom — the regime Theorem 13's NP guess is
  // about, and the representative containment workload (q2 related to q1).
  bool subquery_probes;
  bool enumerate_all;    // count every match instead of stopping at one
  int probes;            // probes per pass
};

// The grid spans the axes that matter to the kernel: target size
// (candidate-list length per node), probe size (nodes per search), join
// density (how often several positions are bound => intersection
// opportunity), constants (compile-time list resolution), related vs
// unrelated probes, and first-match vs full enumeration.
constexpr CorpusConfig kCorpus[] = {
    {"random_sparse_first", 24, 10, 8, 5, 0.0, false, false, 64},
    {"random_dense_first", 24, 6, 12, 4, 0.0, false, false, 64},
    {"random_constants_first", 24, 8, 10, 5, 0.25, false, false, 64},
    {"subquery_small_all", 24, 8, 5, 0, 0.0, true, true, 24},
    {"subquery_mid_all", 48, 10, 7, 0, 0.0, true, true, 16},
    {"subquery_wide_all", 96, 14, 7, 0, 0.0, true, true, 12},
    {"subquery_wide_first", 96, 14, 10, 0, 0.0, true, false, 24},
    {"subquery_deep_all", 64, 8, 9, 0, 0.0, true, true, 8},
    // Intersection-heavy wide-KB regime (DESIGN.md §14): a large chase
    // with a small variable pool and constants, so most pattern atoms have
    // several bound positions and the kernel leapfrogs long frozen lists.
    {"wide_kb_intersect_all", 192, 10, 8, 0, 0.25, true, true, 8},
};

struct RunMetrics {
  double wall_ms = 0;  // best pass
  MatchStats stats;    // of one pass
  uint64_t found = 0;  // per-probe verdicts, for cross-matcher agreement
};

struct Workload {
  World world;
  ChaseResult chase;
  std::vector<ConjunctiveQuery> probes;
};

// Fills a caller-owned Workload (World is neither copyable nor movable).
void MakeWorkload(const CorpusConfig& config, Workload& w) {
  gen::RandomQuerySpec target_spec;
  target_spec.seed = 977;
  target_spec.atoms = config.target_atoms;
  target_spec.variable_pool = config.target_pool;
  target_spec.constant_pool = 3;
  target_spec.constant_probability = config.constant_probability;
  target_spec.arity = 0;
  target_spec.with_constraints = false;
  ConjunctiveQuery q1 = gen::MakeRandomQuery(w.world, target_spec, "target");
  w.chase = ChaseLevelZero(w.world, q1);

  Rng rng(4242);
  for (int t = 0; t < config.probes; ++t) {
    if (config.subquery_probes) {
      // A random sample of the target's own body atoms, renamed apart.
      std::vector<Atom> body = q1.body();
      for (size_t i = body.size(); i > 1; --i) {
        std::swap(body[i - 1], body[rng.Below(i)]);
      }
      body.resize(size_t(config.probe_atoms));
      ConjunctiveQuery probe("probe", {}, std::move(body));
      w.probes.push_back(probe.RenameApart(w.world));
    } else {
      gen::RandomQuerySpec spec;
      spec.seed = uint64_t(t) * 131 + 17;
      spec.atoms = config.probe_atoms;
      spec.variable_pool = config.probe_pool;
      spec.constant_pool = 3;
      spec.constant_probability = config.constant_probability;
      spec.arity = 0;
      spec.with_constraints = false;
      w.probes.push_back(
          gen::MakeRandomQuery(w.world, spec, "probe").RenameApart(w.world));
    }
  }
}

// One pass over every probe of the workload; returns per-pass stats and a
// bitset-as-counter of verdicts (enumerate_all: total match count).
RunMetrics OnePass(const Workload& workload, const CorpusConfig& config,
                   const MatchOptions& options) {
  RunMetrics metrics;
  for (const ConjunctiveQuery& probe : workload.probes) {
    if (config.enumerate_all) {
      // Cap per-probe enumeration: embeddings of a subquery into a wide
      // chase can be combinatorial. Both matchers enumerate in the same
      // order (asserted by kernel_test), so the capped workload is the
      // exact same node set for every configuration under comparison.
      constexpr uint64_t kMatchCap = 20000;
      uint64_t matches = 0;
      MatchConjunction(
          probe.body(), workload.chase.conjuncts(), Substitution(),
          [&](const Substitution&) {
            return ++matches < kMatchCap;
          },
          &metrics.stats, options);
      metrics.found += matches;
    } else {
      if (FindQueryHomomorphism(probe, workload.chase.conjuncts(), {},
                                &metrics.stats, options)) {
        ++metrics.found;
      }
    }
  }
  return metrics;
}

RunMetrics TimedRun(const Workload& workload, const CorpusConfig& config,
                    const MatchOptions& options) {
  OnePass(workload, config, options);  // warm-up
  RunMetrics best;
  constexpr int kPasses = 5;
  for (int pass = 0; pass < kPasses; ++pass) {
    auto start = std::chrono::steady_clock::now();
    RunMetrics metrics = OnePass(workload, config, options);
    auto stop = std::chrono::steady_clock::now();
    metrics.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (pass == 0 || metrics.wall_ms < best.wall_ms) best = metrics;
  }
  return best;
}

void AppendRunJson(std::string& out, const char* key,
                   const RunMetrics& metrics) {
  char buffer[256];
  double probes_per_node =
      metrics.stats.nodes_visited == 0
          ? 0.0
          : double(metrics.stats.index_probes) /
                double(metrics.stats.nodes_visited);
  std::snprintf(buffer, sizeof(buffer),
                "      \"%s\": {\"wall_ms\": %.3f, \"nodes\": %llu, "
                "\"index_probes\": %llu, \"probes_per_node\": %.2f}",
                key, metrics.wall_ms,
                (unsigned long long)metrics.stats.nodes_visited,
                (unsigned long long)metrics.stats.index_probes,
                probes_per_node);
  out += buffer;
}

void WriteKernelReport() {
  std::string json;
  json += "{\n  \"experiment\": \"hom_search_kernel\",\n";
  json += "  \"passes\": 5,\n  \"configs\": [\n";

  double log_speedup_sum = 0, log_intersect_sum = 0;
  int config_count = 0;
  bool all_agree = true;

  for (const CorpusConfig& config : kCorpus) {
    Workload workload;
    MakeWorkload(config, workload);

    MatchOptions legacy;
    legacy.use_compiled_kernel = false;
    MatchOptions kernel_no_intersect;
    kernel_no_intersect.use_list_intersection = false;
    MatchOptions kernel;

    // Legacy runs on the unfrozen index — plain posting vectors, the PR 2
    // storage — then the index is frozen and the kernel runs stream the
    // block-compressed tier, as the engine does (containment.cc).
    RunMetrics legacy_run = TimedRun(workload, config, legacy);
    workload.chase.FreezeConjuncts();
    RunMetrics plain_run = TimedRun(workload, config, kernel_no_intersect);
    RunMetrics kernel_run = TimedRun(workload, config, kernel);
    FactIndex::StorageStats storage = workload.chase.conjuncts().Stats();
    double bytes_per_posting =
        storage.frozen_postings == 0
            ? 0.0
            : double(storage.arena_bytes) / double(storage.frozen_postings);

    bool agree = legacy_run.found == plain_run.found &&
                 legacy_run.found == kernel_run.found;
    all_agree = all_agree && agree;
    double speedup = kernel_run.wall_ms > 0
                         ? legacy_run.wall_ms / kernel_run.wall_ms
                         : 0.0;
    double intersect_gain = kernel_run.wall_ms > 0
                                ? plain_run.wall_ms / kernel_run.wall_ms
                                : 0.0;
    log_speedup_sum += std::log(speedup);
    log_intersect_sum += std::log(intersect_gain);
    ++config_count;

    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\"name\": \"%s\", \"target_conjuncts\": %u, "
                  "\"probe_atoms\": %d, \"probe_pool\": %d, "
                  "\"constant_probability\": %.2f, \"mode\": \"%s\", "
                  "\"probes\": %d,\n",
                  config.name, workload.chase.size(), config.probe_atoms,
                  config.probe_pool, config.constant_probability,
                  config.enumerate_all ? "all_matches" : "first_match",
                  config.probes);
    json += buffer;
    AppendRunJson(json, "legacy", legacy_run);
    json += ",\n";
    AppendRunJson(json, "kernel_no_intersect", plain_run);
    json += ",\n";
    AppendRunJson(json, "kernel", kernel_run);
    json += ",\n";
    std::snprintf(buffer, sizeof(buffer),
                  "      \"speedup_kernel_vs_legacy\": %.3f, "
                  "\"speedup_intersection\": %.3f, "
                  "\"bytes_per_posting_frozen\": %.3f, "
                  "\"verdicts_agree\": %s}",
                  speedup, intersect_gain, bytes_per_posting,
                  agree ? "true" : "false");
    json += buffer;
    json += (&config == &kCorpus[std::size(kCorpus) - 1]) ? "\n" : ",\n";
  }

  double geomean = std::exp(log_speedup_sum / config_count);
  double geomean_intersect = std::exp(log_intersect_sum / config_count);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "  ],\n  \"geomean_speedup_kernel_vs_legacy\": %.3f,\n"
                "  \"geomean_speedup_intersection\": %.3f,\n"
                "  \"all_verdicts_agree\": %s\n}\n",
                geomean, geomean_intersect, all_agree ? "true" : "false");
  json += buffer;

  std::printf("== E11: compiled kernel vs legacy matcher ==\n%s\n",
              json.c_str());
  std::FILE* file = std::fopen("BENCH_hom_search.json", "w");
  FLOQ_CHECK(file != nullptr);
  std::fputs(json.c_str(), file);
  std::fclose(file);
  std::printf("(report written to BENCH_hom_search.json)\n\n");
}

// ---- google-benchmark timers ------------------------------------------------

void BM_HomSearch(benchmark::State& state) {
  const int atoms = int(state.range(0));
  const bool compiled = state.range(1) != 0;
  World world;
  ConjunctiveQuery q1 = MakeWideTarget(world);
  ChaseResult chase = ChaseLevelZero(world, q1);

  std::vector<ConjunctiveQuery> probes;
  for (int t = 0; t < 32; ++t) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(atoms * 777 + t);
    spec.atoms = atoms;
    spec.variable_pool = 5;
    spec.constant_pool = 0;
    spec.constant_probability = 0.0;
    spec.arity = 0;
    spec.with_constraints = false;
    probes.push_back(
        gen::MakeRandomQuery(world, spec, "probe").RenameApart(world));
  }

  MatchOptions options;
  options.use_compiled_kernel = compiled;
  size_t i = 0;
  uint64_t nodes = 0;
  for (auto _ : state) {
    MatchStats stats;
    auto hom = FindQueryHomomorphism(probes[i++ % probes.size()],
                                     chase.conjuncts(), {}, &stats, options);
    benchmark::DoNotOptimize(hom.has_value());
    nodes += stats.nodes_visited;
  }
  state.counters["nodes/op"] =
      benchmark::Counter(double(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HomSearch)
    ->ArgNames({"atoms", "kernel"})
    ->Args({2, 1})->Args({2, 0})
    ->Args({8, 1})->Args({8, 0})
    ->Args({16, 1})->Args({16, 0})
    ->Args({24, 1})->Args({24, 0});

}  // namespace

int main(int argc, char** argv) {
  PrintSearchTable();
  WriteKernelReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
