// Experiment E7 — the NP guess in Theorem 13 is realized as indexed
// backtracking. This benchmark probes the search frontier: embedding
// random q2 bodies of growing size and join density into the chase of a
// fixed q1, reporting visited search nodes alongside wall time.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "gen/generators.h"
#include "term/world.h"

namespace {

// A q1 whose chase has many interchangeable conjuncts: a wide schema with
// several classes, attributes, members.
floq::ConjunctiveQuery MakeWideTarget(floq::World& world) {
  floq::gen::RandomQuerySpec spec;
  spec.seed = 12345;
  spec.atoms = 24;
  spec.variable_pool = 10;
  spec.constant_pool = 0;
  spec.constant_probability = 0.0;
  spec.arity = 0;
  spec.with_constraints = false;  // keep the chase finite and level-0
  return floq::gen::MakeRandomQuery(world, spec, "target");
}

void PrintSearchTable() {
  using namespace floq;
  World world;
  ConjunctiveQuery q1 = MakeWideTarget(world);
  ChaseResult chase = ChaseLevelZero(world, q1);
  std::printf("== E7: homomorphism search effort into a %u-conjunct chase ==\n",
              chase.size());
  std::printf("%-10s %-10s %-14s %-12s %s\n", "q2 atoms", "pool", "found",
              "avg nodes", "max nodes");
  for (int atoms : {2, 4, 8, 12, 16}) {
    for (int pool : {3, 6}) {
      uint64_t total_nodes = 0, max_nodes = 0;
      int found = 0, trials = 50;
      for (int t = 0; t < trials; ++t) {
        gen::RandomQuerySpec spec;
        spec.seed = uint64_t(atoms * 1000 + pool * 100 + t);
        spec.atoms = atoms;
        spec.variable_pool = pool;
        spec.constant_pool = 0;
        spec.constant_probability = 0.0;
        spec.arity = 0;
        spec.with_constraints = false;
        ConjunctiveQuery q2 =
            gen::MakeRandomQuery(world, spec, "probe").RenameApart(world);
        MatchStats stats;
        if (FindQueryHomomorphism(q2, chase.conjuncts(), {}, &stats)) {
          ++found;
        }
        total_nodes += stats.nodes_visited;
        max_nodes = std::max(max_nodes, stats.nodes_visited);
      }
      std::printf("%-10d %-10d %3d/%-10d %-12.1f %llu\n", atoms, pool, found,
                  trials, double(total_nodes) / trials,
                  (unsigned long long)max_nodes);
    }
  }
  std::printf("\n");
}

void BM_HomSearch(benchmark::State& state) {
  using namespace floq;
  const int atoms = int(state.range(0));
  World world;
  ConjunctiveQuery q1 = MakeWideTarget(world);
  ChaseResult chase = ChaseLevelZero(world, q1);

  std::vector<ConjunctiveQuery> probes;
  for (int t = 0; t < 32; ++t) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(atoms * 777 + t);
    spec.atoms = atoms;
    spec.variable_pool = 5;
    spec.constant_pool = 0;
    spec.constant_probability = 0.0;
    spec.arity = 0;
    spec.with_constraints = false;
    probes.push_back(
        gen::MakeRandomQuery(world, spec, "probe").RenameApart(world));
  }

  size_t i = 0;
  uint64_t nodes = 0;
  for (auto _ : state) {
    MatchStats stats;
    auto hom = FindQueryHomomorphism(probes[i++ % probes.size()],
                                     chase.conjuncts(), {}, &stats);
    benchmark::DoNotOptimize(hom.has_value());
    nodes += stats.nodes_visited;
  }
  state.counters["nodes/op"] =
      benchmark::Counter(double(nodes), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_HomSearch)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  PrintSearchTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
