// Experiment E10 — the batch-containment engine. An n-query containment
// matrix asks n(n-1) questions over the same n queries; the engine chases
// each query once (memoized, resumable) and fans the homomorphism
// searches out over a thread pool. This benchmark times the same
// 16-query matrices three ways and emits the wall times plus the
// chase-cache statistics as JSON, so the speedups and the
// chases-per-query invariant are machine-checkable:
//
//   * pairwise_baseline — the pre-engine path: CheckContainment per pair,
//     re-chasing the lhs from scratch every time (n(n-1) chases).
//   * engine_jobs1      — the engine, fan-out on the calling thread:
//     isolates the memoization win (n chases).
//   * engine_jobs4      — the engine at --jobs 4: adds the parallel
//     fan-out win. Wall-clock gain requires actual cores, so the report
//     includes hardware_concurrency; on a single-core host this run
//     degenerates to jobs1 plus pool overhead.
//
// Two workloads separate the effects: a chase-heavy matrix (mandatory
// cycles probed at Theorem 12 depths, where the baseline's repeated
// chases dominate) and a search-heavy matrix (dense boolean queries with
// level-0 chases, where the parallelizable homomorphism searches
// dominate).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "containment/containment.h"
#include "containment/engine.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace {

using namespace floq;

constexpr int kQueries = 16;

enum class Workload { kChaseHeavy, kSearchHeavy };

// Chase-heavy: mandatory cycles (infinite chases, deepened to the
// Theorem 12 bound of each pair) and data-chain probes (finite level-0
// chases). All boolean, so every pair is checkable.
std::vector<ConjunctiveQuery> MakeChaseHeavy(World& world) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(kQueries);
  for (int k = 1; k <= 4; ++k) {
    queries.push_back(
        gen::MakeMandatoryCycleQuery(world, k, "cycle" + std::to_string(k)));
  }
  for (int m = 1; m <= kQueries - 4; ++m) {
    queries.push_back(
        gen::MakeDataChainProbe(world, m, "probe" + std::to_string(m)));
  }
  return queries;
}

// Search-heavy: boolean queries with many atoms over a small variable
// pool (dense joins => deep backtracking), no constraint atoms (the chase
// stays finite and level-0, so the sequential chase phase is negligible
// and the searches dominate).
std::vector<ConjunctiveQuery> MakeSearchHeavy(World& world) {
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    gen::RandomQuerySpec spec;
    spec.seed = uint64_t(1000 + i);
    spec.atoms = 18;
    spec.variable_pool = 4;
    spec.constant_pool = 0;
    spec.constant_probability = 0.0;
    spec.arity = 0;
    spec.with_constraints = false;
    queries.push_back(
        gen::MakeRandomQuery(world, spec, "m" + std::to_string(i)));
  }
  return queries;
}

std::vector<ConjunctiveQuery> MakeWorkload(World& world, Workload workload) {
  return workload == Workload::kChaseHeavy ? MakeChaseHeavy(world)
                                           : MakeSearchHeavy(world);
}

struct MatrixRun {
  double wall_ms = 0;
  BatchStats stats;
  std::vector<std::vector<bool>> contained;
};

// The engine path in a fresh World (identical interning order makes the
// workloads of different runs identical). jobs == 0 selects the baseline:
// per-pair CheckContainment with no chase reuse.
MatrixRun RunMatrix(Workload workload, int jobs) {
  World world;
  std::vector<ConjunctiveQuery> queries = MakeWorkload(world, workload);
  const size_t n = queries.size();
  MatrixRun run;
  run.contained.assign(n, std::vector<bool>(n, true));

  if (jobs == 0) {
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        Result<ContainmentResult> verdict =
            CheckContainment(world, queries[i], queries[j]);
        FLOQ_CHECK(verdict.ok());
        run.contained[i][j] = verdict->contained;
        ++run.stats.chases_run;  // the baseline chases every pair's lhs
        ++run.stats.chase_requests;
        ++run.stats.pairs_checked;
        run.stats.hom.nodes_visited += verdict->hom_stats.nodes_visited;
      }
    }
    auto stop = std::chrono::steady_clock::now();
    run.wall_ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    return run;
  }

  BatchContainmentOptions options;
  options.jobs = jobs;
  ContainmentEngine engine(world, options);
  for (const ConjunctiveQuery& q : queries) {
    auto id = engine.AddQuery(q);
    FLOQ_CHECK(id.ok());
  }
  auto start = std::chrono::steady_clock::now();
  auto matrix = engine.CheckAll();
  auto stop = std::chrono::steady_clock::now();
  FLOQ_CHECK(matrix.ok());

  run.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  run.stats = engine.stats();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j) run.contained[i][j] = (*matrix)[i][j].contained;
    }
  }
  return run;
}

void PrintRunJson(const char* key, const MatrixRun& run, int jobs) {
  const BatchStats& s = run.stats;
  double hit_rate =
      s.chase_requests == 0
          ? 0.0
          : double(s.chase_cache_hits) / double(s.chase_requests);
  double pairs_per_sec =
      run.wall_ms <= 0.0
          ? 0.0
          : double(s.pairs_checked) / (run.wall_ms / 1000.0);
  std::printf(
      "    \"%s\": {\"jobs\": %d, \"wall_ms\": %.3f, \"pairs\": %llu, "
      "\"pairs_per_sec\": %.1f, \"pruned_pairs\": %llu, "
      "\"chase_requests\": %llu, \"chases_run\": %llu, "
      "\"chase_cache_hits\": %llu, \"chase_cache_hit_rate\": %.4f, "
      "\"chase_deepenings\": %llu, \"hom_nodes_visited\": %llu}",
      key, jobs, run.wall_ms, (unsigned long long)s.pairs_checked,
      pairs_per_sec, (unsigned long long)s.pruned_pairs,
      (unsigned long long)s.chase_requests, (unsigned long long)s.chases_run,
      (unsigned long long)s.chase_cache_hits, hit_rate,
      (unsigned long long)s.chase_deepenings,
      (unsigned long long)s.hom.nodes_visited);
}

bool SameVerdicts(const MatrixRun& a, const MatrixRun& b) {
  return a.contained == b.contained;
}

void PrintWorkloadReport(const char* name, Workload workload) {
  // Warm-up: touch every code path once so no timed run pays first-call
  // costs (page faults, lazy allocations).
  RunMatrix(workload, 2);

  MatrixRun baseline = RunMatrix(workload, 0);
  MatrixRun jobs1 = RunMatrix(workload, 1);
  MatrixRun jobs4 = RunMatrix(workload, 4);

  bool agree = SameVerdicts(baseline, jobs1) && SameVerdicts(jobs1, jobs4);

  std::printf("  \"%s\": {\n", name);
  std::printf("    \"queries\": %d,\n", kQueries);
  PrintRunJson("pairwise_baseline", baseline, 0);
  std::printf(",\n");
  PrintRunJson("engine_jobs1", jobs1, 1);
  std::printf(",\n");
  PrintRunJson("engine_jobs4", jobs4, 4);
  std::printf(",\n");
  std::printf("    \"memoization_speedup\": %.3f,\n",
              jobs1.wall_ms > 0 ? baseline.wall_ms / jobs1.wall_ms : 0.0);
  std::printf("    \"parallel_speedup\": %.3f,\n",
              jobs4.wall_ms > 0 ? jobs1.wall_ms / jobs4.wall_ms : 0.0);
  std::printf("    \"verdicts_agree\": %s\n", agree ? "true" : "false");
  std::printf("  }");
}

void PrintReport() {
  std::printf("{\n");
  std::printf("  \"experiment\": \"batch_matrix\",\n");
  std::printf("  \"hardware_concurrency\": %zu,\n",
              ThreadPool::DefaultThreads());
  PrintWorkloadReport("chase_heavy", Workload::kChaseHeavy);
  std::printf(",\n");
  PrintWorkloadReport("search_heavy", Workload::kSearchHeavy);
  std::printf("\n}\n");
}

// Wall time of the full matrix at a given fan-out width, for
// --benchmark_filter runs and perf work. Arg 0 is the pairwise baseline.
void BM_BatchMatrixChaseHeavy(benchmark::State& state) {
  int jobs = int(state.range(0));
  uint64_t chases = 0;
  for (auto _ : state) {
    MatrixRun run = RunMatrix(Workload::kChaseHeavy, jobs);
    benchmark::DoNotOptimize(run.contained.size());
    chases += run.stats.chases_run;
  }
  state.counters["chases/op"] =
      benchmark::Counter(double(chases), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_BatchMatrixChaseHeavy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BatchMatrixSearchHeavy(benchmark::State& state) {
  int jobs = int(state.range(0));
  for (auto _ : state) {
    MatrixRun run = RunMatrix(Workload::kSearchHeavy, jobs);
    benchmark::DoNotOptimize(run.contained.size());
  }
}
BENCHMARK(BM_BatchMatrixSearchHeavy)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
