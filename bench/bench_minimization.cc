// Experiment E8 — query minimization under Sigma_FL (the optimization
// application from the paper's introduction). Queries of n essential
// atoms are padded with r constraint-implied atoms; minimization must
// remove exactly the r redundant ones.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "containment/minimize.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/strings.h"

namespace {

// Essential: a subclass tower C0 :: C1 :: ... :: Cn with member(X, C0).
// Redundant padding: member(X, Ci) for i = 1..r (implied via rho_3).
floq::ConjunctiveQuery MakePaddedQuery(floq::World& world, int tower,
                                       int redundant) {
  using floq::StrCat;
  std::string text = "q(X) :- member(X, C0)";
  for (int i = 0; i < tower; ++i) {
    text += StrCat(", sub(C", i, ", C", i + 1, ")");
  }
  for (int i = 1; i <= redundant && i <= tower; ++i) {
    text += StrCat(", member(X, C", i, ")");
  }
  text += ".";
  return *floq::ParseQuery(world, text);
}

void PrintMinimizationTable() {
  using namespace floq;
  std::printf("== E8: minimization under Sigma_FL ==\n");
  std::printf("%-8s %-11s %-9s %-9s %-10s %s\n", "tower", "redundant",
              "before", "after", "removed", "checks");
  for (int tower : {2, 4, 8}) {
    for (int redundant : {1, 2, 4, 8}) {
      World world;
      ConjunctiveQuery q = MakePaddedQuery(world, tower, redundant);
      MinimizeStats stats;
      Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q, {}, &stats);
      if (!minimal.ok()) {
        std::printf("error: %s\n", minimal.status().ToString().c_str());
        continue;
      }
      std::printf("%-8d %-11d %-9d %-9d %-10d %d\n", tower,
                  std::min(redundant, tower), q.size(), minimal->size(),
                  stats.atoms_removed, stats.containment_checks);
    }
  }
  std::printf("\n");
}

void BM_Minimize(benchmark::State& state) {
  using namespace floq;
  const int tower = int(state.range(0));
  const int redundant = int(state.range(1));
  World world;
  ConjunctiveQuery q = MakePaddedQuery(world, tower, redundant);
  for (auto _ : state) {
    Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
    benchmark::DoNotOptimize(minimal.ok());
    if (minimal.ok()) state.counters["final_size"] = minimal->size();
  }
}
BENCHMARK(BM_Minimize)
    ->Args({2, 1})->Args({4, 2})->Args({4, 4})->Args({8, 4})->Args({8, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_MinimizeAlreadyMinimal(benchmark::State& state) {
  using namespace floq;
  const int tower = int(state.range(0));
  World world;
  ConjunctiveQuery q = MakePaddedQuery(world, tower, 0);
  for (auto _ : state) {
    Result<ConjunctiveQuery> minimal = MinimizeQuery(world, q);
    benchmark::DoNotOptimize(minimal.ok());
  }
}
BENCHMARK(BM_MinimizeAlreadyMinimal)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  PrintMinimizationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
