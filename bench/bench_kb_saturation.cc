// Experiment E6 — substrate throughput: saturating ground F-logic Lite
// knowledge bases of growing size under the Datalog fragment of Sigma_FL
// (semi-naive evaluation), including rho_4 repair and rho_5 completion.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "gen/generators.h"
#include "kb/knowledge_base.h"
#include "term/world.h"

namespace {

// Sparse scaling: classes and attributes grow with the instance so the
// derived closure stays a small multiple of the base (dense schemas make
// saturation output quadratic, which is a property of the data, not the
// engine).
floq::gen::RandomKbSpec ScaledSpec(int scale, uint64_t seed) {
  floq::gen::RandomKbSpec spec;
  spec.seed = seed;
  spec.classes = scale + 4;
  spec.objects = 2 * scale + 4;
  spec.attributes = scale / 2 + 4;
  spec.sub_facts = scale / 4;
  spec.member_facts = scale;
  spec.data_facts = 2 * scale;
  spec.type_facts = scale / 8;
  spec.mandatory_facts = scale / 50;
  spec.funct_facts = scale / 50;
  return spec;
}

void PrintSaturationTable() {
  using namespace floq;
  std::printf("== E6: knowledge-base saturation ==\n");
  std::printf("%-10s %-12s %-12s %-10s %s\n", "scale", "base facts",
              "saturated", "derived", "consistent");
  for (int scale : {100, 1000, 10000, 100000}) {
    World world;
    KnowledgeBase kb(world);
    std::vector<Atom> facts =
        gen::MakeRandomKbFacts(world, ScaledSpec(scale, 5));
    for (const Atom& fact : facts) {
      if (!kb.AddFact(fact).ok()) return;
    }
    uint32_t before = kb.size();
    SaturateOptions options;
    options.mandatory_completion_rounds = 3;
    Result<ConsistencyReport> report = kb.Saturate(options);
    if (!report.ok()) {
      std::printf("%-10d error: %s\n", scale,
                  report.status().ToString().c_str());
      continue;
    }
    std::printf("%-10d %-12u %-12u %-10u %s\n", scale, before, kb.size(),
                kb.size() - before, report->consistent ? "yes" : "no");
  }
  std::printf("\n");
}

void BM_KbSaturate(benchmark::State& state) {
  using namespace floq;
  const int scale = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    KnowledgeBase kb(world);
    for (const Atom& fact :
         gen::MakeRandomKbFacts(world, ScaledSpec(scale, 5))) {
      if (!kb.AddFact(fact).ok()) return;
    }
    state.ResumeTiming();
    SaturateOptions options;
    options.mandatory_completion_rounds = 3;
    Result<ConsistencyReport> report = kb.Saturate(options);
    benchmark::DoNotOptimize(report.ok());
    state.counters["facts"] = kb.size();
  }
  state.SetComplexityN(scale);
}
BENCHMARK(BM_KbSaturate)
    ->Arg(100)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_KbMetaQuery(benchmark::State& state) {
  using namespace floq;
  const int scale = int(state.range(0));
  World world;
  KnowledgeBase kb(world);
  for (const Atom& fact :
       gen::MakeRandomKbFacts(world, ScaledSpec(scale, 5))) {
    if (!kb.AddFact(fact).ok()) return;
  }
  SaturateOptions options;
  options.mandatory_completion_rounds = 3;
  if (!kb.Saturate(options).ok()) return;
  for (auto _ : state) {
    // The paper's mixed meta/data query shape.
    Result<std::vector<std::vector<Term>>> answers =
        kb.Answer("C[Att *=> T], O : C, O[Att -> Val]");
    benchmark::DoNotOptimize(answers.ok());
    if (answers.ok()) state.counters["answers"] = double(answers->size());
  }
}
BENCHMARK(BM_KbMetaQuery)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintSaturationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
