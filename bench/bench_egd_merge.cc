// Experiment E4 — rho_4 (EGD) repair cost. A fan of m parallel values of
// one functional attribute forces m-1 merges and instance rewrites; the
// cascade variant chains fans so merges enable further merges. Validates
// that Example 1's head-rewriting machinery scales.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chase/chase.h"
#include "gen/generators.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/strings.h"

namespace {

void PrintMergeTable() {
  using namespace floq;
  std::printf("== E4: EGD fan merges ==\n");
  std::printf("%-8s %-10s %-10s %-10s %s\n", "fan m", "merges", "rebuilds",
              "data left", "outcome");
  for (int m : {2, 16, 128, 1024, 4096}) {
    World world;
    ConjunctiveQuery q = gen::MakeFunctFanQuery(world, m);
    ChaseResult chase = ChaseQuery(world, q);
    std::printf("%-8d %-10llu %-10llu %-10zu %s\n", m,
                (unsigned long long)chase.stats().egd_merges,
                (unsigned long long)chase.stats().rebuilds,
                chase.conjuncts().WithPredicate(pfl::kData).size(),
                ChaseOutcomeName(chase.outcome()));
  }
  std::printf("\n");
}

void BM_EgdFanMerge(benchmark::State& state) {
  using namespace floq;
  const int fan = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    ConjunctiveQuery q = gen::MakeFunctFanQuery(world, fan);
    state.ResumeTiming();
    ChaseResult chase = ChaseQuery(world, q);
    benchmark::DoNotOptimize(chase.size());
    state.counters["merges"] = double(chase.stats().egd_merges);
  }
  state.SetComplexityN(fan);
}
BENCHMARK(BM_EgdFanMerge)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)->Arg(512)->Arg(2048)->Arg(4096)
    ->Complexity();

// Cascade: data chains under a functional attribute where each merge at
// depth d enables the merge at depth d+1 (tests the fixpoint loop).
void BM_EgdCascade(benchmark::State& state) {
  using namespace floq;
  const int depth = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    // q(X1,Y1) :- funct(a,o), data(o,a,X1), data(o,a,Y1),
    //             funct(a,X1), data(X1,a,X2), data(Y1,a,Y2), ...
    std::string text = "q() :- funct(a, o), data(o, a, X1), data(o, a, Y1)";
    for (int i = 1; i < depth; ++i) {
      text += StrCat(", funct(a, X", i, ")");
      text += StrCat(", data(X", i, ", a, X", i + 1, ")");
      text += StrCat(", data(Y", i, ", a, Y", i + 1, ")");
    }
    text += ".";
    ConjunctiveQuery q = *ParseQuery(world, text);
    state.ResumeTiming();
    ChaseResult chase = ChaseQuery(world, q);
    benchmark::DoNotOptimize(chase.size());
    state.counters["merges"] = double(chase.stats().egd_merges);
  }
}
BENCHMARK(BM_EgdCascade)->Arg(2)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintMergeTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
