// Ablations of the two main engineering choices in the deterministic
// realization of the paper's algorithm:
//   (a) most-constrained-first dynamic atom ordering in the homomorphism
//       search (vs naive left-to-right),
//   (b) semi-naive delta windows in chase rule collection (vs rescanning
//       the whole instance every round).
// Both are pure optimizations: tests assert identical results.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "chase/chase.h"
#include "containment/homomorphism.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "query/parser.h"
#include "term/world.h"
#include "util/strings.h"

namespace {

using namespace floq;

// Adversarial workload for the ordering ablation: the target is the
// level-0 chase of several disjoint attribute chains (lots of
// similar-looking distractor conjuncts) and the probe's atoms are
// deterministically shuffled, so a left-to-right strategy starts from an
// unselective atom while the dynamic strategy follows the join structure.
ConjunctiveQuery MakeShuffledProbe(World& world, const ConjunctiveQuery& q,
                                   uint64_t seed) {
  // Boolean probe (empty head): with no head seed the search is
  // unanchored, which is where the ordering strategy matters.
  ConjunctiveQuery probe = q.RenameApart(world);
  std::vector<Atom> body = probe.body();
  Rng rng(seed);
  for (size_t i = body.size(); i > 1; --i) {
    std::swap(body[i - 1], body[rng.Below(i)]);
  }
  return ConjunctiveQuery(probe.name(), {}, std::move(body));
}

ConjunctiveQuery MakeChainWithDistractors(World& world, int hops) {
  ConjunctiveQuery main_chain =
      gen::MakeAttributeChainQuery(world, hops, true, "main");
  std::vector<Atom> body = main_chain.body();
  for (int d = 0; d < 3; ++d) {
    ConjunctiveQuery distractor = gen::MakeAttributeChainQuery(
        world, hops, true, StrCat("d", d));
    body.insert(body.end(), distractor.body().begin(),
                distractor.body().end());
  }
  return ConjunctiveQuery("main", main_chain.head(), std::move(body));
}

void PrintOrderingTable() {
  std::printf("== ablation (a): homomorphism search atom ordering "
              "(shuffled boolean probes, 4 chains in target; avg/max over "
              "20 shuffles) ==\n");
  std::printf("%-8s %-12s %-12s %-12s %s\n", "hops", "smart avg",
              "smart max", "naive avg", "naive max");
  for (int hops : {2, 3, 4, 5, 6}) {
    World world;
    ConjunctiveQuery q = MakeChainWithDistractors(world, hops);
    ChaseResult chase = ChaseLevelZero(world, q);

    uint64_t smart_total = 0, naive_total = 0;
    uint64_t smart_max = 0, naive_max = 0;
    const int kShuffles = 20;
    for (int t = 0; t < kShuffles; ++t) {
      ConjunctiveQuery probe = MakeShuffledProbe(
          world, gen::MakeAttributeChainQuery(world, hops, true, "probe"),
          uint64_t(hops * 100 + t));
      MatchStats smart, naive;
      MatchOptions naive_options;
      naive_options.most_constrained_first = false;
      bool found_smart =
          FindQueryHomomorphism(probe, chase.conjuncts(), {}, &smart)
              .has_value();
      bool found_naive =
          FindQueryHomomorphism(probe, chase.conjuncts(), {}, &naive,
                                naive_options)
              .has_value();
      if (found_smart != found_naive) std::printf("VERDICT MISMATCH!\n");
      smart_total += smart.nodes_visited;
      naive_total += naive.nodes_visited;
      smart_max = std::max(smart_max, smart.nodes_visited);
      naive_max = std::max(naive_max, naive.nodes_visited);
    }
    std::printf("%-8d %-12.1f %-12llu %-12.1f %llu\n", hops,
                double(smart_total) / kShuffles,
                (unsigned long long)smart_max,
                double(naive_total) / kShuffles,
                (unsigned long long)naive_max);
  }
  std::printf("\n");
}

void BM_HomOrdering(benchmark::State& state) {
  const bool smart = state.range(1) != 0;
  const int hops = int(state.range(0));
  World world;
  ConjunctiveQuery q = MakeChainWithDistractors(world, hops);
  ChaseResult chase = ChaseLevelZero(world, q);
  ConjunctiveQuery probe = MakeShuffledProbe(
      world, gen::MakeAttributeChainQuery(world, hops, true, "probe"),
      uint64_t(hops));
  MatchOptions options;
  options.most_constrained_first = smart;
  for (auto _ : state) {
    MatchStats stats;
    auto hom = FindQueryHomomorphism(probe, chase.conjuncts(), {},
                                     &stats, options);
    benchmark::DoNotOptimize(hom.has_value());
    state.counters["nodes"] = double(stats.nodes_visited);
  }
}
BENCHMARK(BM_HomOrdering)
    ->ArgNames({"hops", "smart"})
    ->Args({3, 1})->Args({3, 0})->Args({4, 1})->Args({4, 0})
    ->Args({5, 1})->Args({5, 0});

void BM_ChaseDeltaWindows(benchmark::State& state) {
  const bool use_delta = state.range(1) != 0;
  const int level = int(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    World world;
    ConjunctiveQuery q =
        *ParseQuery(world, "q() :- mandatory(A, T), type(T, A, T), "
                           "sub(T, U).");
    state.ResumeTiming();
    ChaseOptions options;
    options.max_level = level;
    options.use_delta_windows = use_delta;
    ChaseResult chase = ChaseQuery(world, q, options);
    benchmark::DoNotOptimize(chase.size());
    state.counters["conjuncts"] = chase.size();
  }
}
BENCHMARK(BM_ChaseDeltaWindows)
    ->ArgNames({"level", "delta"})
    ->Args({16, 1})->Args({16, 0})->Args({64, 1})->Args({64, 0})
    ->Args({128, 1})->Args({128, 0});

void BM_KbChaseDeltaWindows(benchmark::State& state) {
  // Delta windows on a wide level-0 saturation (subclass tower).
  const bool use_delta = state.range(1) != 0;
  const int height = int(state.range(0));
  World world;
  std::string text = "q() :- ";
  for (int i = 0; i < height; ++i) {
    if (i > 0) text += ", ";
    text += StrCat("sub(C", i, ", C", i + 1, ")");
  }
  text += ".";
  ConjunctiveQuery q = *ParseQuery(world, text);
  for (auto _ : state) {
    ChaseOptions options;
    options.max_level = 0;
    options.use_delta_windows = use_delta;
    ChaseResult chase = ChaseQuery(world, q, options);
    benchmark::DoNotOptimize(chase.size());
  }
}
BENCHMARK(BM_KbChaseDeltaWindows)
    ->ArgNames({"tower", "delta"})
    ->Args({16, 1})->Args({16, 0})->Args({32, 1})->Args({32, 0});

}  // namespace

int main(int argc, char** argv) {
  PrintOrderingTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
