// Experiment E3 — recall of the three checkers on constructed containments.
//
// For each random q1 we build q2 by sampling conjuncts of chase_Sigma(q1)
// and generalizing their terms to fresh variables, so q1 ⊆ q2 holds by
// construction. The sampling depth controls which machinery is needed to
// *prove* it:
//   bucket "body"  — conjuncts from body(q1) itself: classical suffices;
//   bucket "level0"— conjuncts derived by the Sigma_FL^- chase: the
//                    level-0 chase suffices, classical may fail;
//   bucket "deep"  — conjuncts invented by rho_5 chains (level >= 1):
//                    only the paper's bounded chase can see them.
// All three methods are sound; recall per bucket quantifies completeness.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <unordered_map>

#include "chase/chase.h"
#include "containment/containment.h"
#include "gen/generators.h"
#include "term/world.h"
#include "util/rng.h"

namespace {

using namespace floq;

enum Bucket { kBody = 0, kLevelZero = 1, kDeep = 2, kBucketCount = 3 };

const char* BucketName(int b) {
  switch (b) {
    case kBody: return "body";
    case kLevelZero: return "level0-derived";
    case kDeep: return "deep (rho_5)";
  }
  return "?";
}

struct LabeledPair {
  ConjunctiveQuery q1;
  ConjunctiveQuery q2;
  int bucket;
};

// Generalizes sampled chase conjuncts into a fresh-variable query.
// Distinct terms map consistently: variables and nulls of the chase become
// fresh q2 variables; constants are kept (with a small chance of being
// generalized too).
ConjunctiveQuery GeneralizeConjuncts(World& world,
                                     const std::vector<Atom>& sampled,
                                     Rng& rng) {
  std::unordered_map<uint32_t, Term> mapping;
  std::vector<Atom> body;
  for (const Atom& atom : sampled) {
    Atom out = atom;
    for (int i = 0; i < atom.arity(); ++i) {
      Term t = atom.arg(i);
      bool generalize = !t.IsConstant() || rng.Chance(0.2);
      if (!generalize) continue;
      auto it = mapping.find(t.raw());
      if (it == mapping.end()) {
        it = mapping.emplace(t.raw(), world.MakeFreshVariable()).first;
      }
      out.set_arg(i, it->second);
    }
    body.push_back(out);
  }
  return ConjunctiveQuery("q2", {}, std::move(body));
}

std::vector<LabeledPair> MakeCorpus(World& world, int per_bucket) {
  std::vector<LabeledPair> corpus;
  int counts[kBucketCount] = {0, 0, 0};
  for (uint64_t seed = 0; seed < 100000; ++seed) {
    bool done = true;
    for (int b = 0; b < kBucketCount; ++b) done &= counts[b] >= per_bucket;
    if (done) break;

    gen::RandomQuerySpec spec;
    spec.seed = seed + 1;
    spec.atoms = 4;
    spec.arity = 0;
    spec.variable_pool = 4;
    spec.constant_pool = 3;
    spec.constant_probability = 0.25;
    ConjunctiveQuery q1 = gen::MakeRandomQuery(world, spec, "q1");

    ChaseOptions chase_options;
    chase_options.max_level = 8;
    chase_options.max_atoms = 50'000;
    ChaseResult chase = ChaseQuery(world, q1, chase_options);
    if (chase.failed() || chase.outcome() == ChaseOutcome::kBudgetExceeded) {
      continue;
    }

    // Partition conjunct ids by bucket.
    std::vector<uint32_t> ids[kBucketCount];
    for (uint32_t id = 0; id < chase.size(); ++id) {
      if (chase.meta(id).rule == kRho0) {
        ids[kBody].push_back(id);
      } else if (chase.LevelOf(id) == 0) {
        ids[kLevelZero].push_back(id);
      } else {
        ids[kDeep].push_back(id);
      }
    }

    Rng rng(seed ^ 0xf10c);
    for (int b = 0; b < kBucketCount; ++b) {
      if (counts[b] >= per_bucket || ids[b].empty()) continue;
      std::vector<Atom> sampled;
      int n = 1 + int(rng.Below(2));
      for (int i = 0; i < n; ++i) {
        sampled.push_back(chase.conjunct(
            ids[b][rng.Below(ids[b].size())]));
      }
      ConjunctiveQuery q2 = GeneralizeConjuncts(world, sampled, rng);
      corpus.push_back(LabeledPair{q1, q2, b});
      ++counts[b];
    }
  }
  return corpus;
}

void PrintRecallTable() {
  World world;
  std::vector<LabeledPair> corpus = MakeCorpus(world, 120);

  int total[kBucketCount] = {0, 0, 0};
  int classical_hits[kBucketCount] = {0, 0, 0};
  int level0_hits[kBucketCount] = {0, 0, 0};
  int paper_hits[kBucketCount] = {0, 0, 0};

  for (const LabeledPair& pair : corpus) {
    ++total[pair.bucket];
    Result<ContainmentResult> classical =
        CheckClassicalContainment(world, pair.q1, pair.q2);
    if (classical.ok() && classical->contained) {
      ++classical_hits[pair.bucket];
    }
    ContainmentOptions level0;
    level0.depth = ChaseDepth::kLevelZero;
    Result<ContainmentResult> shallow =
        CheckContainment(world, pair.q1, pair.q2, level0);
    if (shallow.ok() && shallow->contained) ++level0_hits[pair.bucket];
    Result<ContainmentResult> paper = CheckContainment(world, pair.q1, pair.q2);
    if (paper.ok() && paper->contained) ++paper_hits[pair.bucket];
  }

  std::printf("== E3: recall per conjunct-depth bucket (all pairs contained "
              "by construction) ==\n");
  std::printf("%-18s %-8s %-18s %-18s %s\n", "bucket", "pairs", "classical",
              "level-0 chase", "bounded chase (paper)");
  for (int b = 0; b < kBucketCount; ++b) {
    auto pct = [&](int hits) {
      return total[b] == 0 ? 0.0 : 100.0 * hits / total[b];
    };
    std::printf("%-18s %-8d %6.1f%%            %6.1f%%            %6.1f%%\n",
                BucketName(b), total[b], pct(classical_hits[b]),
                pct(level0_hits[b]), pct(paper_hits[b]));
  }
  std::printf("expected shape: classical complete only on 'body'; level-0\n"
              "adds the Sigma^- consequences; the paper bound is 100%% "
              "everywhere (Theorem 12).\n\n");
}

void BM_ConstructedPair(benchmark::State& state) {
  World world;
  std::vector<LabeledPair> corpus = MakeCorpus(world, 40);
  const int bucket = int(state.range(0));
  std::vector<const LabeledPair*> mine;
  for (const LabeledPair& pair : corpus) {
    if (pair.bucket == bucket) mine.push_back(&pair);
  }
  if (mine.empty()) return;
  size_t i = 0;
  for (auto _ : state) {
    const LabeledPair& pair = *mine[i++ % mine.size()];
    Result<ContainmentResult> result =
        CheckContainment(world, pair.q1, pair.q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_ConstructedPair)->Arg(kBody)->Arg(kLevelZero)->Arg(kDeep);

void BM_IndependentRandomPair(benchmark::State& state) {
  World world;
  std::vector<std::pair<ConjunctiveQuery, ConjunctiveQuery>> pairs;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    gen::RandomQuerySpec spec1;
    spec1.seed = seed * 2 + 1;
    spec1.atoms = 4;
    spec1.arity = 0;
    gen::RandomQuerySpec spec2;
    spec2.seed = seed * 2 + 2;
    spec2.atoms = 2;
    spec2.arity = 0;
    pairs.emplace_back(gen::MakeRandomQuery(world, spec1, "q1"),
                       gen::MakeRandomQuery(world, spec2, "q2"));
  }
  size_t i = 0;
  for (auto _ : state) {
    const auto& [q1, q2] = pairs[i++ % pairs.size()];
    Result<ContainmentResult> result = CheckContainment(world, q1, q2);
    benchmark::DoNotOptimize(result.ok());
  }
}
BENCHMARK(BM_IndependentRandomPair);

}  // namespace

int main(int argc, char** argv) {
  PrintRecallTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
