#include "rdf/rdf_graph.h"

#include <unordered_map>

#include "util/strings.h"

namespace floq::rdf {

Status RdfGraph::LoadText(std::string_view text) {
  for (std::string_view raw_line : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    // Whitespace-separated terms; single- or double-quoted literals may
    // contain spaces (quotes are stripped).
    std::vector<std::string> parts;
    std::string current;
    char quote = 0;
    bool in_term = false;
    for (char c : line) {
      if (quote != 0) {
        if (c == quote) {
          quote = 0;
        } else {
          current += c;
        }
        continue;
      }
      if (c == '\'' || c == '"') {
        quote = c;
        in_term = true;
        continue;
      }
      if (c == ' ' || c == '\t') {
        if (in_term) {
          parts.push_back(current);
          current.clear();
          in_term = false;
        }
        continue;
      }
      current += c;
      in_term = true;
    }
    if (quote != 0) {
      return InvalidArgumentError(
          StrCat("unterminated quote in triple line: '", std::string(line),
                 "'"));
    }
    if (in_term) parts.push_back(current);
    // Tolerate a trailing N-Triples '.'.
    if (!parts.empty() && parts.back() == ".") parts.pop_back();
    if (parts.size() != 3) {
      return InvalidArgumentError(
          StrCat("triple line must have 3 terms: '", std::string(line), "'"));
    }
    Add(parts[0], parts[1], parts[2]);
  }
  return Status::Ok();
}

std::vector<Atom> RdfGraph::ToFacts(World& world) const {
  // First pass: collect schema triples (domains, ranges, property flags).
  std::unordered_map<std::string, std::vector<std::string>> domains;
  std::unordered_map<std::string, std::vector<std::string>> ranges;
  std::unordered_map<std::string, bool> functional;
  std::unordered_map<std::string, bool> mandatory;

  for (const Triple& triple : triples_) {
    if (triple.predicate == kRdfsDomain) {
      domains[triple.subject].push_back(triple.object);
    } else if (triple.predicate == kRdfsRange) {
      ranges[triple.subject].push_back(triple.object);
    } else if (triple.predicate == kRdfType) {
      if (triple.object == kOwlFunctionalProperty) {
        functional[triple.subject] = true;
      } else if (triple.object == kFloqMandatoryProperty) {
        mandatory[triple.subject] = true;
      }
    }
  }

  std::vector<Atom> facts;
  auto constant = [&world](const std::string& name) {
    return world.MakeConstant(name);
  };

  // Schema-level facts derived from the collected declarations.
  for (const auto& [property, domain_list] : domains) {
    Term p = constant(property);
    for (const std::string& domain : domain_list) {
      Term d = constant(domain);
      auto range_it = ranges.find(property);
      if (range_it != ranges.end()) {
        for (const std::string& range : range_it->second) {
          facts.push_back(Atom::Type(d, p, constant(range)));
        }
      }
      if (functional.count(property) > 0) {
        facts.push_back(Atom::Funct(p, d));
      }
      if (mandatory.count(property) > 0) {
        facts.push_back(Atom::Mandatory(p, d));
      }
    }
  }

  // Instance-level facts.
  for (const Triple& triple : triples_) {
    if (triple.predicate == kRdfsDomain || triple.predicate == kRdfsRange) {
      continue;  // consumed above
    }
    if (triple.predicate == kRdfType) {
      if (triple.object == kOwlFunctionalProperty ||
          triple.object == kFloqMandatoryProperty) {
        continue;  // consumed above
      }
      facts.push_back(
          Atom::Member(constant(triple.subject), constant(triple.object)));
    } else if (triple.predicate == kRdfsSubClassOf) {
      facts.push_back(
          Atom::Sub(constant(triple.subject), constant(triple.object)));
    } else {
      facts.push_back(Atom::Data(constant(triple.subject),
                                 constant(triple.predicate),
                                 constant(triple.object)));
    }
  }
  return facts;
}

Status RdfGraph::Populate(KnowledgeBase& kb) const {
  for (const Atom& fact : ToFacts(kb.world())) {
    FLOQ_RETURN_IF_ERROR(kb.AddFact(fact));
  }
  return Status::Ok();
}

}  // namespace floq::rdf
