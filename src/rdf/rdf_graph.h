#ifndef FLOQ_RDF_RDF_GRAPH_H_
#define FLOQ_RDF_RDF_GRAPH_H_

#include <string>
#include <string_view>
#include <vector>

#include "kb/knowledge_base.h"
#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// RDF(S) bridge. The paper observes (§1) that "RDF has many of the
// meta-data features of F-logic and SPARQL can query them. Thus, our
// results apply to SPARQL as well." This module makes that observation
// executable: RDF(S) graphs map onto the P_FL encoding, and SPARQL basic
// graph patterns map onto conjunctive meta-queries, so the containment
// checker decides BGP containment under RDFS-style schema semantics.
//
// Vocabulary mapping (documented in DESIGN.md):
//   (s, rdf:type, c)              ->  member(s, c)
//   (c1, rdfs:subClassOf, c2)     ->  sub(c1, c2)
//   (p, rdfs:domain, d) together
//     with (p, rdfs:range, r)     ->  type(d, p, r)
//   (p, rdf:type,
//      owl:FunctionalProperty)    ->  funct(p, d)      for each domain d
//   (p, rdf:type,
//      floq:MandatoryProperty)    ->  mandatory(p, d)  for each domain d
//   any other (s, p, o)           ->  data(s, p, o)

namespace floq::rdf {

// Vocabulary IRIs (kept in compact form; full IRIs work the same way
// since terms are opaque strings).
inline constexpr std::string_view kRdfType = "rdf:type";
inline constexpr std::string_view kRdfsSubClassOf = "rdfs:subClassOf";
inline constexpr std::string_view kRdfsDomain = "rdfs:domain";
inline constexpr std::string_view kRdfsRange = "rdfs:range";
inline constexpr std::string_view kOwlFunctionalProperty =
    "owl:FunctionalProperty";
inline constexpr std::string_view kFloqMandatoryProperty =
    "floq:MandatoryProperty";

struct Triple {
  std::string subject;
  std::string predicate;
  std::string object;
};

/// An RDF graph: a bag of triples plus the translation to P_FL.
class RdfGraph {
 public:
  RdfGraph() = default;

  void Add(std::string_view subject, std::string_view predicate,
           std::string_view object) {
    triples_.push_back(
        Triple{std::string(subject), std::string(predicate),
               std::string(object)});
  }

  /// Parses a whitespace-separated line-oriented triple format:
  /// "s p o" per line, '#' comments. (A pragmatic stand-in for N-Triples.)
  Status LoadText(std::string_view text);

  const std::vector<Triple>& triples() const { return triples_; }

  /// Translates the graph into P_FL facts in `world` per the vocabulary
  /// mapping above. Domain-dependent constraints (funct/mandatory/range)
  /// require an rdfs:domain triple for the property; properties lacking
  /// one contribute nothing for those constraints.
  std::vector<Atom> ToFacts(World& world) const;

  /// Convenience: loads the graph into a knowledge base.
  Status Populate(KnowledgeBase& kb) const;

 private:
  std::vector<Triple> triples_;
};

}  // namespace floq::rdf

#endif  // FLOQ_RDF_RDF_GRAPH_H_
