#include "rdf/sparql.h"

#include <cctype>
#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/rdf_graph.h"
#include "util/strings.h"

namespace floq::rdf {

namespace {

// Whitespace-and-punctuation tokenizer: '{', '}', '.' are their own
// tokens; '#' comments to end of line.
std::vector<std::string> TokenizeSparql(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '{' || c == '}') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (c == '.' &&
               (i + 1 == text.size() ||
                std::isspace(static_cast<unsigned char>(text[i + 1])) ||
                text[i + 1] == '}')) {
      // A '.' token only when it ends a pattern (IRIs may contain dots).
      flush();
      tokens.push_back(".");
    } else {
      current += c;
    }
  }
  flush();
  return tokens;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

struct Pattern {
  std::string subject;
  std::string predicate;
  std::string object;
};

// Converts a SPARQL term to a floq term: '?x' is a variable, anything
// else a constant.
Term ToTerm(World& world, const std::string& token) {
  if (!token.empty() && token[0] == '?') {
    return world.MakeVariable("Sparql_" + token.substr(1));
  }
  return world.MakeConstant(token);
}

// Translates one triple pattern into P_FL atoms (see header).
Status TranslatePattern(World& world, const Pattern& pattern,
                        std::vector<Atom>& atoms) {
  Term s = ToTerm(world, pattern.subject);
  Term o = ToTerm(world, pattern.object);

  if (pattern.predicate == kRdfType) {
    if (pattern.object == kOwlFunctionalProperty) {
      atoms.push_back(Atom::Funct(s, world.MakeFreshVariable()));
    } else if (pattern.object == kFloqMandatoryProperty) {
      atoms.push_back(Atom::Mandatory(s, world.MakeFreshVariable()));
    } else {
      atoms.push_back(Atom::Member(s, o));
    }
    return Status::Ok();
  }
  if (pattern.predicate == kRdfsSubClassOf) {
    atoms.push_back(Atom::Sub(s, o));
    return Status::Ok();
  }
  if (pattern.predicate == kRdfsDomain) {
    // "property s has domain o": class o carries attribute s (some type).
    atoms.push_back(Atom::Type(o, s, world.MakeFreshVariable()));
    return Status::Ok();
  }
  if (pattern.predicate == kRdfsRange) {
    // "property s has range o": some class types attribute s as o.
    atoms.push_back(Atom::Type(world.MakeFreshVariable(), s, o));
    return Status::Ok();
  }
  atoms.push_back(Atom::Data(s, ToTerm(world, pattern.predicate), o));
  return Status::Ok();
}

}  // namespace

Result<ConjunctiveQuery> ParseSparql(World& world, std::string_view text) {
  std::vector<std::string> tokens = TokenizeSparql(text);
  size_t pos = 0;
  auto error = [&](std::string message) {
    return InvalidArgumentError(StrCat("SPARQL parse error: ", message));
  };

  if (pos >= tokens.size() || !EqualsIgnoreCase(tokens[pos], "SELECT")) {
    return error("expected SELECT");
  }
  ++pos;

  bool select_all = false;
  std::vector<std::string> selected;
  while (pos < tokens.size() && !EqualsIgnoreCase(tokens[pos], "WHERE")) {
    if (tokens[pos] == "*") {
      select_all = true;
    } else if (tokens[pos][0] == '?') {
      selected.push_back(tokens[pos]);
    } else {
      return error(StrCat("unexpected token in SELECT clause: ",
                          tokens[pos]));
    }
    ++pos;
  }
  if (pos >= tokens.size()) return error("expected WHERE");
  ++pos;
  if (pos >= tokens.size() || tokens[pos] != "{") {
    return error("expected '{' after WHERE");
  }
  ++pos;

  std::vector<Pattern> patterns;
  std::vector<std::string> terms;
  while (pos < tokens.size() && tokens[pos] != "}") {
    if (tokens[pos] == ".") {
      if (!terms.empty()) return error("triple pattern with fewer than 3 terms");
      ++pos;
      continue;
    }
    terms.push_back(tokens[pos]);
    ++pos;
    if (terms.size() == 3) {
      patterns.push_back(Pattern{terms[0], terms[1], terms[2]});
      terms.clear();
    }
  }
  if (!terms.empty()) return error("triple pattern with fewer than 3 terms");
  if (pos >= tokens.size()) return error("expected '}'");
  if (patterns.empty()) return error("empty basic graph pattern");

  std::vector<Atom> body;
  for (const Pattern& pattern : patterns) {
    FLOQ_RETURN_IF_ERROR(TranslatePattern(world, pattern, body));
  }

  std::vector<Term> head;
  if (select_all) {
    std::unordered_set<uint32_t> seen;
    for (const Atom& atom : body) {
      for (Term t : atom) {
        if (t.IsVariable() && StartsWith(world.NameOf(t), "Sparql_") &&
            seen.insert(t.raw()).second) {
          head.push_back(t);
        }
      }
    }
  } else {
    for (const std::string& name : selected) {
      head.push_back(world.MakeVariable("Sparql_" + name.substr(1)));
    }
  }

  ConjunctiveQuery query("sparql", std::move(head), std::move(body));
  Status valid = query.Validate(world);
  if (!valid.ok()) return valid;
  return query;
}

Result<ContainmentResult> CheckSparqlContainment(
    World& world, std::string_view q1_text, std::string_view q2_text,
    const ContainmentOptions& options) {
  Result<ConjunctiveQuery> q1 = ParseSparql(world, q1_text);
  if (!q1.ok()) return q1.status();
  Result<ConjunctiveQuery> q2 = ParseSparql(world, q2_text);
  if (!q2.ok()) return q2.status();
  return CheckContainment(world, *q1, *q2, options);
}

}  // namespace floq::rdf
