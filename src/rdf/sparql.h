#ifndef FLOQ_RDF_SPARQL_H_
#define FLOQ_RDF_SPARQL_H_

#include <string_view>

#include "containment/containment.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// A SPARQL basic-graph-pattern frontend. Supported form:
//
//   SELECT ?x ?name
//   WHERE {
//     ?x rdf:type student .
//     ?x name ?name
//   }
//
// Variables start with '?'; everything else is a constant (compact IRIs
// are opaque strings). Triple patterns translate as in rdf_graph.h:
// rdf:type -> member, rdfs:subClassOf -> sub, other predicates -> data.
// Schema-pattern predicates may themselves be variables, which is exactly
// the meta-querying the paper is about — e.g. "?c rdfs:subClassOf person"
// becomes sub(C, person).
//
// SELECT * selects all named variables in order of first occurrence.

namespace floq::rdf {

/// Parses a SPARQL BGP query into a conjunctive meta-query over P_FL.
Result<ConjunctiveQuery> ParseSparql(World& world, std::string_view text);

/// Decides containment of two SPARQL BGP queries under the F-logic Lite
/// reading of RDFS (Sigma_FL).
Result<ContainmentResult> CheckSparqlContainment(
    World& world, std::string_view q1_text, std::string_view q2_text,
    const ContainmentOptions& options = {});

}  // namespace floq::rdf

#endif  // FLOQ_RDF_SPARQL_H_
