#include "flogic/lexer.h"

#include <cctype>

#include "util/strings.h"

namespace floq::flogic {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kVariable: return "variable";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kColon: return "':'";
    case TokenKind::kColonColon: return "'::'";
    case TokenKind::kImplies: return "':-'";
    case TokenKind::kQuery: return "'?-'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kSignature: return "'*=>'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) {
        start_line_ = line_;
        start_column_ = column_;
        tokens.push_back(Make(TokenKind::kEnd, ""));
        return tokens;
      }
      Result<Token> token = Next();
      if (!token.ok()) return token.status();
      tokens.push_back(std::move(token).value());
    }
  }

 private:
  Result<Token> Next() {
    start_line_ = line_;
    start_column_ = column_;
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return LexWord();
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber();
    switch (c) {
      case '\'':
        return LexString();
      case ':':
        Advance();
        if (!AtEnd() && Peek() == ':') {
          Advance();
          return Make(TokenKind::kColonColon, "::");
        }
        if (!AtEnd() && Peek() == '-') {
          Advance();
          return Make(TokenKind::kImplies, ":-");
        }
        return Make(TokenKind::kColon, ":");
      case '?':
        Advance();
        if (!AtEnd() && Peek() == '-') {
          Advance();
          return Make(TokenKind::kQuery, "?-");
        }
        return Error("stray '?'");
      case '-':
        Advance();
        if (!AtEnd() && Peek() == '>') {
          Advance();
          return Make(TokenKind::kArrow, "->");
        }
        if (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          Result<Token> number = LexNumber();
          if (!number.ok()) return number;
          Token token = std::move(number).value();
          token.text.insert(token.text.begin(), '-');
          return token;
        }
        return Error("stray '-'");
      case '*':
        Advance();
        if (!AtEnd() && Peek() == '=' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '>') {
          Advance();
          Advance();
          return Make(TokenKind::kSignature, "*=>");
        }
        return Make(TokenKind::kStar, "*");
      case '[':
        Advance();
        return Make(TokenKind::kLBracket, "[");
      case ']':
        Advance();
        return Make(TokenKind::kRBracket, "]");
      case '{':
        Advance();
        return Make(TokenKind::kLBrace, "{");
      case '}':
        Advance();
        return Make(TokenKind::kRBrace, "}");
      case '(':
        Advance();
        return Make(TokenKind::kLParen, "(");
      case ')':
        Advance();
        return Make(TokenKind::kRParen, ")");
      case ',':
        Advance();
        return Make(TokenKind::kComma, ",");
      case '.':
        Advance();
        return Make(TokenKind::kDot, ".");
      default:
        return Error(StrCat("unexpected character '", c, "'"));
    }
  }

  Result<Token> LexWord() {
    std::string word;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      word += Advance();
    }
    char first = word[0];
    bool is_variable =
        std::isupper(static_cast<unsigned char>(first)) || first == '_';
    return Make(is_variable ? TokenKind::kVariable : TokenKind::kIdentifier,
                std::move(word));
  }

  Result<Token> LexNumber() {
    std::string digits;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      digits += Advance();
    }
    // A decimal point is part of the number only if followed by a digit;
    // otherwise it is the statement terminator.
    if (!AtEnd() && Peek() == '.' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      digits += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits += Advance();
      }
    }
    return Make(TokenKind::kNumber, std::move(digits));
  }

  Result<Token> LexString() {
    Advance();  // opening quote
    std::string value;
    while (!AtEnd() && Peek() != '\'') value += Advance();
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    return Make(TokenKind::kString, std::move(value));
  }

  void SkipWhitespaceAndComments() {
    for (;;) {
      while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
        Advance();
      }
      if (!AtEnd() && Peek() == '%') {
        while (!AtEnd() && Peek() != '\n') Advance();
        continue;
      }
      return;
    }
  }

  Token Make(TokenKind kind, std::string text) const {
    // Called right after the token's characters were consumed, so the
    // current position is the token's end.
    return Token{kind, std::move(text), start_line_, start_column_,
                 line_, column_};
  }

  Status Error(std::string message) const {
    return InvalidArgumentError(StrCat("lex error at ", line_, ":", column_,
                                       ": ", message));
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  char Advance() {
    char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int start_line_ = 1;
  int start_column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  return Lexer(text).Run();
}

}  // namespace floq::flogic
