#ifndef FLOQ_FLOGIC_LEXER_H_
#define FLOQ_FLOGIC_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

// Tokenizer for the F-logic Lite surface syntax of the paper:
//
//   john : student.                      % class membership
//   freshman :: student.                 % subclass
//   john[age -> 33].                     % attribute value
//   person[age {0:1} *=> number].        % functional signature
//   q(A, B) :- T1[A *=> T2], T2 :: T3.   % meta-query
//   ?- student[Att *=> string].          % goal
//
// '%' starts a comment to end of line.

namespace floq::flogic {

enum class TokenKind {
  kIdentifier,   // lower-case-initial: constants, predicate names
  kVariable,     // upper-case or '_'-initial: variables ('_' = anonymous)
  kNumber,       // integer or decimal literal (treated as a constant)
  kString,       // 'single-quoted'
  kColon,        // :
  kColonColon,   // ::
  kImplies,      // :-
  kQuery,        // ?-
  kArrow,        // ->
  kSignature,    // *=>
  kStar,         // *   (only inside cardinality bounds)
  kLBracket,     // [
  kRBracket,     // ]
  kLBrace,       // {
  kRBrace,       // }
  kLParen,       // (
  kRParen,       // )
  kComma,        // ,
  kDot,          // .
  kEnd,          // end of input
};

/// Returns a printable name for diagnostics, e.g. "'::'".
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind;
  std::string text;  // original spelling (unquoted for strings)
  int line = 1;      // 1-based start position
  int column = 1;
  int end_line = 1;  // position just past the last character
  int end_column = 1;
};

/// Tokenizes the whole input. A trailing kEnd token is always appended.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace floq::flogic

#endif  // FLOQ_FLOGIC_LEXER_H_
