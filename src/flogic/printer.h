#ifndef FLOQ_FLOGIC_PRINTER_H_
#define FLOQ_FLOGIC_PRINTER_H_

#include <string>
#include <vector>

#include "query/conjunctive_query.h"
#include "term/atom.h"
#include "term/world.h"

// Decoding of P_FL atoms back into F-logic surface syntax, used by the
// examples and by parser round-trip tests. Non-P_FL atoms render in
// predicate notation.

namespace floq::flogic {

/// "member(john, student)" -> "john : student", etc.
std::string AtomToSurface(const Atom& atom, const World& world);

/// Conjunction rendering: "a : b, c[d -> e]".
std::string FormulaToSurface(const std::vector<Atom>& atoms,
                             const World& world);

/// "q(A, B) :- T1[A *=> T2], T2 :: T3."
std::string QueryToSurface(const ConjunctiveQuery& query, const World& world);

}  // namespace floq::flogic

#endif  // FLOQ_FLOGIC_PRINTER_H_
