#include "flogic/parser.h"

#include <string>
#include <unordered_set>

#include "flogic/lexer.h"
#include "util/strings.h"

// Shim: propagate errors from Status-returning helpers inside
// Result-returning functions (FLOQ_RETURN_IF_ERROR already covers the
// Status-in-Status case; Result converts implicitly from Status).
#define FLOQ_RETURN_IF_ERROR_R(expr)              \
  do {                                            \
    ::floq::Status floq_status_ = (expr);         \
    if (!floq_status_.ok()) return floq_status_;  \
  } while (false)

namespace floq::flogic {

namespace {

// Cardinality bounds of a signature expression. F-logic Lite allows only
// {0:1} (functional), {1:*} (mandatory), {1:1} (both), {0:*} (vacuous).
struct Cardinality {
  bool mandatory = false;
  bool functional = false;
};

class Parser {
 public:
  Parser(World& world, std::vector<Token> tokens, bool validate = true)
      : world_(world), tokens_(std::move(tokens)), validate_(validate) {}

  Result<Program> ParseWholeProgram() {
    Program program;
    while (!Check(TokenKind::kEnd)) {
      FLOQ_RETURN_IF_ERROR_R(ParseStatement(program));
    }
    return program;
  }

  Result<ConjunctiveQuery> ParseSingleQuery() {
    Result<ConjunctiveQuery> rule = ParseRule();
    if (!rule.ok()) return rule;
    if (!Check(TokenKind::kEnd)) return Error("trailing input after rule");
    return rule;
  }

  Result<std::vector<Atom>> ParseBareFormula() {
    std::vector<Atom> atoms;
    FLOQ_RETURN_IF_ERROR_R(ParseFormulaInto(atoms));
    ConsumeIf(TokenKind::kDot);
    if (!Check(TokenKind::kEnd)) return Error("trailing input after formula");
    return atoms;
  }

 private:
  Status ParseStatement(Program& program) {
    size_t start = pos_;
    if (ConsumeIf(TokenKind::kQuery)) {
      std::vector<Atom> body;
      FLOQ_RETURN_IF_ERROR(ParseFormulaInto(body));
      FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kDot));
      ConjunctiveQuery goal = MakeGoal(std::move(body));
      goal.set_span(SpanFrom(start));
      program.goals.push_back(std::move(goal));
      return Status::Ok();
    }

    // A statement that begins like a rule head (identifier '(' ... ')' ':-')
    // is a rule; otherwise it is a fact (a ground formula).
    if (LooksLikeRule()) {
      Result<ConjunctiveQuery> rule = ParseRule();
      if (!rule.ok()) return rule.status();
      program.rules.push_back(std::move(rule).value());
      return Status::Ok();
    }

    std::vector<Atom> atoms;
    FLOQ_RETURN_IF_ERROR(ParseFormulaInto(atoms));
    FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kDot));
    for (const Atom& atom : atoms) {
      if (!atom.IsGround()) {
        return ErrorAtSpan(atom.provenance(),
                           StrCat("fact must be ground: ",
                                  atom.ToString(world_)));
      }
      program.facts.push_back(atom);
    }
    return Status::Ok();
  }

  // Lookahead: IDENT '(' term* ')' ':-' marks a rule. We scan forward past
  // one balanced parenthesis group.
  bool LooksLikeRule() const {
    size_t i = pos_;
    if (tokens_[i].kind != TokenKind::kIdentifier) return false;
    ++i;
    if (tokens_[i].kind == TokenKind::kImplies) return true;  // q :- body
    if (tokens_[i].kind != TokenKind::kLParen) return false;
    int depth = 0;
    for (; tokens_[i].kind != TokenKind::kEnd; ++i) {
      if (tokens_[i].kind == TokenKind::kLParen) ++depth;
      if (tokens_[i].kind == TokenKind::kRParen) {
        --depth;
        if (depth == 0) {
          ++i;
          break;
        }
      }
    }
    return tokens_[i].kind == TokenKind::kImplies;
  }

  Result<ConjunctiveQuery> ParseRule() {
    size_t start = pos_;
    if (!Check(TokenKind::kIdentifier)) {
      return Error("expected rule name");
    }
    std::string name = Advance().text;
    std::vector<Term> head;
    std::vector<uint32_t> head_spans;
    if (ConsumeIf(TokenKind::kLParen)) {
      if (!ConsumeIf(TokenKind::kRParen)) {
        for (;;) {
          size_t term_start = pos_;
          Result<Term> term = ParseTerm();
          if (!term.ok()) return term.status();
          head.push_back(term.value());
          head_spans.push_back(SpanFrom(term_start));
          if (ConsumeIf(TokenKind::kRParen)) break;
          FLOQ_RETURN_IF_ERROR_R(Expect(TokenKind::kComma));
        }
      }
    }
    FLOQ_RETURN_IF_ERROR_R(Expect(TokenKind::kImplies));
    std::vector<Atom> body;
    FLOQ_RETURN_IF_ERROR_R(ParseFormulaInto(body));
    if (!ConsumeIf(TokenKind::kDot) && !Check(TokenKind::kEnd)) {
      return Error("expected '.' at end of rule");
    }
    ConjunctiveQuery query(std::move(name), std::move(head), std::move(body));
    query.set_span(SpanFrom(start));
    query.set_head_spans(std::move(head_spans));
    if (validate_) {
      Status valid = query.Validate(world_);
      if (!valid.ok()) {
        const Token& at = tokens_[start];
        return InvalidArgumentError(StrCat("parse error at ", at.line, ":",
                                           at.column, ": ", valid.message()));
      }
    }
    return query;
  }

  Status ParseFormulaInto(std::vector<Atom>& atoms) {
    for (;;) {
      FLOQ_RETURN_IF_ERROR(ParseConjunctInto(atoms));
      if (!ConsumeIf(TokenKind::kComma)) return Status::Ok();
    }
  }

  // One conjunct: either a low-level predicate atom p(t1,...,tn) or an
  // F-logic molecule (isa, subclass, or bracketed attribute expressions).
  // Every produced atom is stamped with a provenance span: atoms from an
  // attribute expression get the expression's span (set in
  // ParseAttributeSpecInto), everything else the whole conjunct's.
  Status ParseConjunctInto(std::vector<Atom>& atoms) {
    size_t start = pos_;
    size_t first = atoms.size();
    FLOQ_RETURN_IF_ERROR(ParseConjunctImpl(atoms));
    uint32_t span = SpanFrom(start);
    for (size_t i = first; i < atoms.size(); ++i) {
      if (atoms[i].provenance() == SpanTable::kNone) {
        atoms[i].set_provenance(span);
      }
    }
    return Status::Ok();
  }

  Status ParseConjunctImpl(std::vector<Atom>& atoms) {
    // Predicate-atom lookahead: identifier followed by '('.
    if (Check(TokenKind::kIdentifier) &&
        PeekAhead(1).kind == TokenKind::kLParen) {
      return ParsePredicateAtomInto(atoms);
    }

    Result<Term> subject = ParseTerm();
    if (!subject.ok()) return subject.status();

    if (ConsumeIf(TokenKind::kColonColon)) {
      Result<Term> super = ParseTerm();
      if (!super.ok()) return super.status();
      atoms.push_back(Atom::Sub(subject.value(), super.value()));
      return Status::Ok();
    }
    if (ConsumeIf(TokenKind::kColon)) {
      Result<Term> cls = ParseTerm();
      if (!cls.ok()) return cls.status();
      atoms.push_back(Atom::Member(subject.value(), cls.value()));
      return Status::Ok();
    }
    if (ConsumeIf(TokenKind::kLBracket)) {
      for (;;) {
        FLOQ_RETURN_IF_ERROR(ParseAttributeSpecInto(subject.value(), atoms));
        if (ConsumeIf(TokenKind::kRBracket)) return Status::Ok();
        FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      }
    }
    return Error(
        "expected ':', '::' or '[' after molecule subject (or a predicate "
        "atom)");
  }

  // attribute ('->' value | cardinality? '*=>' type)
  Status ParseAttributeSpecInto(Term subject, std::vector<Atom>& atoms) {
    size_t start = pos_;
    size_t first = atoms.size();
    FLOQ_RETURN_IF_ERROR(ParseAttributeSpecImpl(subject, atoms));
    uint32_t span = SpanFrom(start);
    for (size_t i = first; i < atoms.size(); ++i) {
      atoms[i].set_provenance(span);
    }
    return Status::Ok();
  }

  Status ParseAttributeSpecImpl(Term subject, std::vector<Atom>& atoms) {
    Result<Term> attribute = ParseTerm();
    if (!attribute.ok()) return attribute.status();

    if (ConsumeIf(TokenKind::kArrow)) {
      Result<Term> value = ParseTerm();
      if (!value.ok()) return value.status();
      atoms.push_back(Atom::Data(subject, attribute.value(), value.value()));
      return Status::Ok();
    }

    Cardinality card;
    bool has_card = false;
    if (Check(TokenKind::kLBrace)) {
      Result<Cardinality> parsed = ParseCardinality();
      if (!parsed.ok()) return parsed.status();
      card = parsed.value();
      has_card = true;
    }
    FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kSignature));

    // '_' as the type of a constrained signature contributes no type atom
    // (the paper's encoding: O[A {1:*} *=> _] is exactly mandatory(A, O)).
    bool anonymous_type =
        Check(TokenKind::kVariable) && PeekToken().text == "_" && has_card;
    Term type_term;
    if (anonymous_type) {
      Advance();
    } else {
      Result<Term> type = ParseTerm();
      if (!type.ok()) return type.status();
      type_term = type.value();
    }

    if (card.mandatory) {
      atoms.push_back(Atom::Mandatory(attribute.value(), subject));
    }
    if (card.functional) {
      atoms.push_back(Atom::Funct(attribute.value(), subject));
    }
    if (!anonymous_type) {
      atoms.push_back(Atom::Type(subject, attribute.value(), type_term));
    }
    return Status::Ok();
  }

  Result<Cardinality> ParseCardinality() {
    FLOQ_RETURN_IF_ERROR_R(Expect(TokenKind::kLBrace));
    Result<std::string> low = ParseBound();
    if (!low.ok()) return low.status();
    if (!ConsumeIf(TokenKind::kColon) && !ConsumeIf(TokenKind::kComma)) {
      return Error("expected ':' or ',' between cardinality bounds");
    }
    Result<std::string> high = ParseBound();
    if (!high.ok()) return high.status();
    FLOQ_RETURN_IF_ERROR_R(Expect(TokenKind::kRBrace));

    Cardinality card;
    const std::string& lo = *low;
    const std::string& hi = *high;
    if (lo == "0" && hi == "1") {
      card.functional = true;
    } else if (lo == "1" && hi == "*") {
      card.mandatory = true;
    } else if (lo == "1" && hi == "1") {
      card.mandatory = true;
      card.functional = true;
    } else if (lo == "0" && hi == "*") {
      // No constraint.
    } else {
      return Error(StrCat("F-logic Lite supports only the cardinalities "
                          "{0:1}, {1:*}, {1:1}, {0:*}; got {",
                          lo, ":", hi, "}"));
    }
    return card;
  }

  Result<std::string> ParseBound() {
    if (Check(TokenKind::kNumber)) return Advance().text;
    if (ConsumeIf(TokenKind::kStar)) return std::string("*");
    return Error("expected a number or '*' as cardinality bound");
  }

  Status ParsePredicateAtomInto(std::vector<Atom>& atoms) {
    std::string name = Advance().text;  // identifier
    FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    std::vector<Term> args;
    if (!ConsumeIf(TokenKind::kRParen)) {
      for (;;) {
        Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(term.value());
        if (ConsumeIf(TokenKind::kRParen)) break;
        FLOQ_RETURN_IF_ERROR(Expect(TokenKind::kComma));
      }
    }
    PredicateId pred = world_.predicates().Intern(name, int(args.size()));
    if (pred == kInvalidPredicate) {
      return Error(StrCat("predicate ", name, "/", args.size(),
                          " conflicts with an existing arity or exceeds the "
                          "maximum arity"));
    }
    atoms.push_back(Atom(pred, args));
    return Status::Ok();
  }

  Result<Term> ParseTerm() {
    const Token& token = PeekToken();
    switch (token.kind) {
      case TokenKind::kIdentifier:
        return world_.MakeConstant(Advance().text);
      case TokenKind::kNumber:
      case TokenKind::kString:
        return world_.MakeConstant(Advance().text);
      case TokenKind::kVariable: {
        std::string name = Advance().text;
        if (name == "_") return world_.MakeFreshVariable();
        return world_.MakeVariable(name);
      }
      default:
        return Error(StrCat("expected a term, got ",
                            TokenKindName(token.kind)));
    }
  }

  ConjunctiveQuery MakeGoal(std::vector<Atom> body) {
    // The goal's answer tuple is the named variables of the body, in first
    // occurrence order. Anonymous '_' variables were already freshened and
    // are excluded by their generated "_G" prefix. Each head variable
    // inherits the span of the atom of its first occurrence.
    std::vector<Term> head;
    std::vector<uint32_t> head_spans;
    std::unordered_set<uint32_t> seen;
    for (const Atom& atom : body) {
      for (Term t : atom) {
        if (!t.IsVariable()) continue;
        if (StartsWith(world_.NameOf(t), "_G")) continue;
        if (seen.insert(t.raw()).second) {
          head.push_back(t);
          head_spans.push_back(atom.provenance());
        }
      }
    }
    ConjunctiveQuery goal("goal", std::move(head), std::move(body));
    goal.set_head_spans(std::move(head_spans));
    return goal;
  }

  const Token& PeekToken() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t n) const {
    size_t i = pos_ + n;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return PeekToken().kind == kind; }

  const Token& Advance() {
    const Token& token = tokens_[pos_];
    if (token.kind != TokenKind::kEnd) ++pos_;
    return token;
  }

  bool ConsumeIf(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Expect(TokenKind kind) {
    if (ConsumeIf(kind)) return Status::Ok();
    return Error(StrCat("expected ", TokenKindName(kind), ", got ",
                        TokenKindName(PeekToken().kind)));
  }

  Status Error(std::string message) const {
    const Token& token = PeekToken();
    return InvalidArgumentError(StrCat("parse error at ", token.line, ":",
                                       token.column, ": ", message));
  }

  /// Error anchored at a recorded span (falls back to the current token
  /// when the span is unknown).
  Status ErrorAtSpan(uint32_t span_id, std::string message) const {
    const SourceSpan& span = world_.spans().at(span_id);
    if (!span.known()) return Error(std::move(message));
    return InvalidArgumentError(StrCat("parse error at ", span.line, ":",
                                       span.column, ": ", message));
  }

  /// Records the span from token index `first` through the last consumed
  /// token into the World's span table.
  uint32_t SpanFrom(size_t first) {
    size_t last = pos_ > first ? pos_ - 1 : first;
    const Token& a = tokens_[first];
    const Token& b = tokens_[last];
    return world_.spans().Add(
        SourceSpan{a.line, a.column, b.end_line, b.end_column});
  }

  World& world_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  bool validate_ = true;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(World& world, std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(world, std::move(tokens).value()).ParseSingleQuery();
}

Result<Program> ParseProgram(World& world, std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(world, std::move(tokens).value()).ParseWholeProgram();
}

Result<Program> ParseProgramLenient(World& world, std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(world, std::move(tokens).value(), /*validate=*/false)
      .ParseWholeProgram();
}

Result<std::vector<Atom>> ParseFormula(World& world, std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  return Parser(world, std::move(tokens).value()).ParseBareFormula();
}

}  // namespace floq::flogic
