#include "flogic/printer.h"

#include "util/strings.h"

namespace floq::flogic {

std::string AtomToSurface(const Atom& atom, const World& world) {
  auto name = [&](int i) { return world.NameOf(atom.arg(i)); };
  switch (atom.predicate()) {
    case pfl::kMember:
      return StrCat(name(0), " : ", name(1));
    case pfl::kSub:
      return StrCat(name(0), " :: ", name(1));
    case pfl::kData:
      return StrCat(name(0), "[", name(1), " -> ", name(2), "]");
    case pfl::kType:
      return StrCat(name(0), "[", name(1), " *=> ", name(2), "]");
    case pfl::kMandatory:
      return StrCat(name(1), "[", name(0), " {1:*} *=> _]");
    case pfl::kFunct:
      return StrCat(name(1), "[", name(0), " {0:1} *=> _]");
    default:
      return atom.ToString(world);
  }
}

std::string FormulaToSurface(const std::vector<Atom>& atoms,
                             const World& world) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += AtomToSurface(atoms[i], world);
  }
  return out;
}

std::string QueryToSurface(const ConjunctiveQuery& query, const World& world) {
  std::string out = query.name();
  out += '(';
  for (int i = 0; i < query.arity(); ++i) {
    if (i > 0) out += ", ";
    out += world.NameOf(query.head()[i]);
  }
  out += ") :- ";
  out += FormulaToSurface(query.body(), world);
  out += '.';
  return out;
}

}  // namespace floq::flogic
