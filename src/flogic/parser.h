#ifndef FLOQ_FLOGIC_PARSER_H_
#define FLOQ_FLOGIC_PARSER_H_

#include <string_view>
#include <vector>

#include "query/conjunctive_query.h"
#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// Parser for F-logic Lite surface programs and queries, encoding them into
// the low-level predicates P_FL exactly as Section 2 of the paper:
//
//   o : c                    =>  member(o, c)
//   c :: d                   =>  sub(c, d)
//   o[a -> v]                =>  data(o, a, v)
//   o[a *=> t]               =>  type(o, a, t)
//   o[a {1:*} *=> t]         =>  mandatory(a, o)  (+ type(o, a, t) if t ≠ _)
//   o[a {0:1} *=> t]         =>  funct(a, o)      (+ type(o, a, t) if t ≠ _)
//   o[a {1:1} *=> t]         =>  mandatory + funct (+ type if t ≠ _)
//
// Following the paper's examples, both ':' and ',' separate cardinality
// bounds ({1:*} and {1,*} are the same constraint). F-logic Lite admits
// only the bounds {0:1}, {1:*}, {1:1} and the vacuous {0:*}; anything else
// is rejected. Molecules may carry several attribute expressions:
// john[age -> 33, name -> 'J'] expands to two data atoms. Rule bodies may
// mix molecules with low-level atoms such as member(X, C).

namespace floq::flogic {

/// A parsed F-logic program: ground facts, named rules (conjunctive
/// queries), and goals (?- bodies; their head collects the named variables
/// of the body in order of first appearance).
struct Program {
  std::vector<Atom> facts;
  std::vector<ConjunctiveQuery> rules;
  std::vector<ConjunctiveQuery> goals;
};

/// Parses a single rule "q(X) :- body." in surface syntax.
Result<ConjunctiveQuery> ParseQuery(World& world, std::string_view text);

/// Parses a whole program (facts, rules, goals).
Result<Program> ParseProgram(World& world, std::string_view text);

/// Parses a whole program without rejecting unsafe rule heads (the safety
/// check of ConjunctiveQuery::Validate). The static analyzer (floq lint)
/// uses this so it can report unsafe head variables as located
/// diagnostics instead of parse failures.
Result<Program> ParseProgramLenient(World& world, std::string_view text);

/// Parses a conjunction of molecules/atoms (no head, no trailing '.').
Result<std::vector<Atom>> ParseFormula(World& world, std::string_view text);

}  // namespace floq::flogic

#endif  // FLOQ_FLOGIC_PARSER_H_
