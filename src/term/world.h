#ifndef FLOQ_TERM_WORLD_H_
#define FLOQ_TERM_WORLD_H_

#include <string>
#include <string_view>

#include "term/predicate.h"
#include "term/source_span.h"
#include "term/term.h"
#include "util/interner.h"

// A World owns the symbol universe for a family of queries, chases, and
// databases: the names of constants and variables, the supply of fresh
// nulls, and the predicate registry. Everything that must be compared
// (queries in a containment check, a query and a database) must live in
// the same World.

namespace floq {

class World {
 public:
  World() = default;

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Interns a named constant.
  Term MakeConstant(std::string_view name) {
    return Term::Constant(constants_.Intern(name));
  }

  /// Interns a named variable.
  Term MakeVariable(std::string_view name) {
    return Term::Variable(variables_.Intern(name));
  }

  /// Creates a fresh labeled null. Nulls are ordered by creation, matching
  /// the paper's requirement that each fresh value "lexicographically
  /// follows all other constants in the segment of the chase constructed
  /// so far (but still precedes all variables)".
  Term MakeFreshNull() { return Term::Null(null_count_++); }

  /// Creates a fresh variable never seen before (for `_` in the surface
  /// syntax and for renaming queries apart). The generated "_G<n>" names
  /// are parseable, so printed queries round-trip.
  Term MakeFreshVariable() {
    for (;;) {
      std::string name = "_G" + std::to_string(fresh_variable_count_++);
      if (variables_.Lookup(name) == UINT32_MAX) {
        return Term::Variable(variables_.Intern(name));
      }
    }
  }

  /// Creates a fresh variable whose name ("$R<n>") no floq parser can
  /// produce, so it can never collide with any variable of any
  /// later-parsed query. Used for the internal variables of Sigma_FL and
  /// of user dependency sets, whose identity must stay disjoint from all
  /// chase values.
  Term MakeReservedVariable() {
    std::string name = "$R" + std::to_string(reserved_variable_count_++);
    return Term::Variable(variables_.Intern(name));
  }

  /// Human-readable name of any term (nulls render as "_#k").
  std::string NameOf(Term t) const {
    switch (t.kind()) {
      case Term::Kind::kConstant:
        return constants_.NameOf(t.index());
      case Term::Kind::kNull:
        return "_#" + std::to_string(t.index());
      case Term::Kind::kVariable:
        return variables_.NameOf(t.index());
    }
    return "?";
  }

  /// The chase order of Definition 2: all constants (lexicographically)
  /// precede all nulls (by creation) precede all variables
  /// (lexicographically). Returns true if `a` strictly precedes `b`.
  bool PrecedesInChaseOrder(Term a, Term b) const {
    if (a.kind() != b.kind()) return uint8_t(a.kind()) < uint8_t(b.kind());
    switch (a.kind()) {
      case Term::Kind::kConstant:
        return constants_.NameOf(a.index()) < constants_.NameOf(b.index());
      case Term::Kind::kNull:
        return a.index() < b.index();
      case Term::Kind::kVariable:
        return variables_.NameOf(a.index()) < variables_.NameOf(b.index());
    }
    return false;
  }

  PredicateTable& predicates() { return predicates_; }
  const PredicateTable& predicates() const { return predicates_; }

  /// Source spans recorded by the parsers (Atom/ConjunctiveQuery
  /// provenance ids index into this table).
  SpanTable& spans() { return spans_; }
  const SpanTable& spans() const { return spans_; }

  uint32_t constant_count() const { return constants_.size(); }
  uint32_t variable_count() const { return variables_.size(); }
  uint32_t null_count() const { return null_count_; }

  /// Fast-forwards the fresh-null supply so the next MakeFreshNull() is at
  /// least Null(count). Snapshot loading restores a saved World's null
  /// watermark this way; never rewinds.
  void AdvanceNullCounter(uint32_t count) {
    if (count > null_count_) null_count_ = count;
  }

 private:
  StringInterner constants_;
  StringInterner variables_;
  PredicateTable predicates_;
  SpanTable spans_;
  uint32_t null_count_ = 0;
  uint32_t fresh_variable_count_ = 0;
  uint32_t reserved_variable_count_ = 0;
};

}  // namespace floq

#endif  // FLOQ_TERM_WORLD_H_
