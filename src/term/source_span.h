#ifndef FLOQ_TERM_SOURCE_SPAN_H_
#define FLOQ_TERM_SOURCE_SPAN_H_

#include <cstdint>
#include <string>
#include <vector>

// Source provenance for parsed syntax. A SourceSpan is a range of 1-based
// line/column positions in the source text a parser consumed (end is the
// position just past the last character). Spans are interned into a
// SpanTable and addressed by dense 24-bit ids so an Atom can carry its
// provenance inside otherwise-padding bytes (see Atom); id 0 is reserved
// for "no recorded span".

namespace floq {

struct SourceSpan {
  int line = 0;  // 1-based; 0 = unknown
  int column = 0;
  int end_line = 0;
  int end_column = 0;

  bool known() const { return line > 0; }

  /// "3:14" — the start position, the canonical diagnostic anchor.
  std::string ToString() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceSpan& a, const SourceSpan& b) {
    return a.line == b.line && a.column == b.column &&
           a.end_line == b.end_line && a.end_column == b.end_column;
  }
};

/// Arena of source spans addressed by 24-bit ids (0 = none). Owned by a
/// World, so every parser feeding that world shares one id space.
class SpanTable {
 public:
  static constexpr uint32_t kNone = 0;
  static constexpr uint32_t kMaxId = (1u << 24) - 1;

  SpanTable() : spans_(1) {}  // slot 0 = the unknown span

  /// Records `span` and returns its id. Returns kNone when the table is
  /// full: provenance is best-effort and never an error.
  uint32_t Add(const SourceSpan& span) {
    if (spans_.size() > kMaxId) return kNone;
    spans_.push_back(span);
    return uint32_t(spans_.size() - 1);
  }

  /// The span for `id`; out-of-range ids yield the unknown span.
  const SourceSpan& at(uint32_t id) const {
    return id < spans_.size() ? spans_[id] : spans_[0];
  }

  uint32_t size() const { return uint32_t(spans_.size()); }

 private:
  std::vector<SourceSpan> spans_;
};

}  // namespace floq

#endif  // FLOQ_TERM_SOURCE_SPAN_H_
