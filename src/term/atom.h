#ifndef FLOQ_TERM_ATOM_H_
#define FLOQ_TERM_ATOM_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "term/predicate.h"
#include "term/term.h"
#include "term/world.h"
#include "util/check.h"

// Atoms (the paper's "conjuncts"): a predicate applied to terms. Atoms are
// small value types (32 bytes at kMaxArity = 6) so chases and relations
// can hold millions. Each atom additionally carries a 24-bit source-span
// id (see term/source_span.h) packed into otherwise-padding bytes:
// parsers record where an atom came from, diagnostics report it, and the
// engines ignore it (provenance never participates in ==, < or hashing).

namespace floq {

class Atom {
 public:
  Atom() : pred_(kInvalidPredicate), arity_(0) {}

  Atom(PredicateId pred, std::initializer_list<Term> args)
      : pred_(pred), arity_(uint8_t(args.size())) {
    FLOQ_CHECK_LE(args.size(), size_t(kMaxArity));
    int i = 0;
    for (Term t : args) args_[i++] = t;
  }

  Atom(PredicateId pred, const std::vector<Term>& args)
      : pred_(pred), arity_(uint8_t(args.size())) {
    FLOQ_CHECK_LE(args.size(), size_t(kMaxArity));
    for (size_t i = 0; i < args.size(); ++i) args_[i] = args[i];
  }

  // Convenience constructors for the P_FL predicates.
  static Atom Member(Term object, Term cls) {
    return Atom(pfl::kMember, {object, cls});
  }
  static Atom Sub(Term sub_class, Term super_class) {
    return Atom(pfl::kSub, {sub_class, super_class});
  }
  static Atom Data(Term object, Term attribute, Term value) {
    return Atom(pfl::kData, {object, attribute, value});
  }
  static Atom Type(Term object, Term attribute, Term type) {
    return Atom(pfl::kType, {object, attribute, type});
  }
  static Atom Mandatory(Term attribute, Term object) {
    return Atom(pfl::kMandatory, {attribute, object});
  }
  static Atom Funct(Term attribute, Term object) {
    return Atom(pfl::kFunct, {attribute, object});
  }

  PredicateId predicate() const { return pred_; }
  int arity() const { return arity_; }

  Term arg(int i) const {
    FLOQ_CHECK_LT(i, arity_);
    return args_[i];
  }

  void set_arg(int i, Term t) {
    FLOQ_CHECK_LT(i, arity_);
    args_[i] = t;
  }

  /// Iteration over the argument terms.
  const Term* begin() const { return args_.data(); }
  const Term* end() const { return args_.data() + arity_; }

  /// True if every argument is a constant or a null (no variables).
  bool IsGround() const {
    for (Term t : *this) {
      if (t.IsVariable()) return false;
    }
    return true;
  }

  /// 24-bit source-span id into the owning World's SpanTable; 0 = no
  /// recorded span. Carried through copies and substitutions, ignored by
  /// comparison and hashing.
  uint32_t provenance() const {
    return uint32_t(prov_[0]) | (uint32_t(prov_[1]) << 8) |
           (uint32_t(prov_[2]) << 16);
  }

  void set_provenance(uint32_t span_id) {
    if (span_id > 0xffffffu) span_id = 0;  // best-effort: overflow = unknown
    prov_[0] = uint8_t(span_id);
    prov_[1] = uint8_t(span_id >> 8);
    prov_[2] = uint8_t(span_id >> 16);
  }

  /// Renders e.g. "data(john, age, 33)".
  std::string ToString(const World& world) const;

  friend bool operator==(const Atom& a, const Atom& b) {
    if (a.pred_ != b.pred_ || a.arity_ != b.arity_) return false;
    for (int i = 0; i < a.arity_; ++i) {
      if (a.args_[i] != b.args_[i]) return false;
    }
    return true;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }

  /// Total order (predicate-major) for canonicalization.
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.pred_ != b.pred_) return a.pred_ < b.pred_;
    if (a.arity_ != b.arity_) return a.arity_ < b.arity_;
    for (int i = 0; i < a.arity_; ++i) {
      if (a.args_[i] != b.args_[i]) return a.args_[i] < b.args_[i];
    }
    return false;
  }

 private:
  PredicateId pred_;
  uint8_t arity_;
  uint8_t prov_[3] = {0, 0, 0};  // 24-bit span id, in the padding bytes
  std::array<Term, kMaxArity> args_;
};

static_assert(sizeof(Atom) == sizeof(PredicateId) + 4 + kMaxArity * sizeof(Term),
              "Atom provenance must live in padding, not grow the layout");

struct AtomHash {
  size_t operator()(const Atom& atom) const {
    uint64_t h = 0xcbf29ce484222325ULL ^ atom.predicate();
    for (Term t : atom) {
      h ^= t.raw();
      h *= 0x100000001b3ULL;
    }
    return size_t(h);
  }
};

/// Renders a conjunction "a1, a2, ..., an".
std::string AtomsToString(const std::vector<Atom>& atoms, const World& world);

}  // namespace floq

#endif  // FLOQ_TERM_ATOM_H_
