#include "term/predicate.h"

#include "util/check.h"

namespace floq {

PredicateTable::PredicateTable() {
  // The P_FL catalog must get the fixed ids declared in pfl::.
  struct Entry {
    const char* name;
    int arity;
    PredicateId expected_id;
  };
  static constexpr Entry kPfl[] = {
      {"member", 2, pfl::kMember},   {"sub", 2, pfl::kSub},
      {"data", 3, pfl::kData},       {"type", 3, pfl::kType},
      {"mandatory", 2, pfl::kMandatory}, {"funct", 2, pfl::kFunct},
  };
  for (const Entry& entry : kPfl) {
    PredicateId id = Intern(entry.name, entry.arity);
    FLOQ_CHECK_EQ(id, entry.expected_id);
  }
}

PredicateId PredicateTable::Intern(std::string_view name, int arity) {
  FLOQ_CHECK_GE(arity, 0);
  if (arity > kMaxArity) return kInvalidPredicate;
  uint32_t existing = names_.Lookup(name);
  if (existing != UINT32_MAX) {
    return arities_[existing] == arity ? existing : kInvalidPredicate;
  }
  PredicateId id = names_.Intern(name);
  FLOQ_CHECK_EQ(id, arities_.size());
  arities_.push_back(arity);
  return id;
}

PredicateId PredicateTable::Lookup(std::string_view name) const {
  uint32_t id = names_.Lookup(name);
  return id == UINT32_MAX ? kInvalidPredicate : id;
}

const std::string& PredicateTable::NameOf(PredicateId id) const {
  return names_.NameOf(id);
}

int PredicateTable::ArityOf(PredicateId id) const {
  FLOQ_CHECK_LT(id, arities_.size());
  return arities_[id];
}

}  // namespace floq
