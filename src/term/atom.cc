#include "term/atom.h"

namespace floq {

std::string Atom::ToString(const World& world) const {
  std::string out = world.predicates().NameOf(pred_);
  out += '(';
  for (int i = 0; i < arity_; ++i) {
    if (i > 0) out += ", ";
    out += world.NameOf(args_[i]);
  }
  out += ')';
  return out;
}

std::string AtomsToString(const std::vector<Atom>& atoms, const World& world) {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += ", ";
    out += atoms[i].ToString(world);
  }
  return out;
}

}  // namespace floq
