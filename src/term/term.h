#ifndef FLOQ_TERM_TERM_H_
#define FLOQ_TERM_TERM_H_

#include <cstdint>
#include <functional>

#include "util/check.h"

// Terms of F-logic Lite queries and chases. A term is a 4-byte value: a
// kind tag plus an index into per-kind tables owned by a floq::World.
//
// Three kinds exist, and their numeric order deliberately matches the
// chase order of the paper (Definition 2): original constants precede
// fresh nulls ("fresh constants" in the paper, invented by rule rho_5),
// which precede variables. When the equality-generating rule rho_4 equates
// two terms, the one that precedes in this order survives.

namespace floq {

class Term {
 public:
  enum class Kind : uint8_t {
    kConstant = 0,  // named constant from a query/program
    kNull = 1,      // fresh value invented by the chase (labeled null)
    kVariable = 2,  // query variable (capitalized in the surface syntax)
  };

  /// Default-constructed terms are an invalid sentinel distinct from every
  /// real term; useful for uninitialized slots.
  Term() : raw_(kInvalidRaw) {}

  static Term Constant(uint32_t index) { return Term(Kind::kConstant, index); }
  static Term Null(uint32_t index) { return Term(Kind::kNull, index); }
  static Term Variable(uint32_t index) { return Term(Kind::kVariable, index); }

  bool valid() const { return raw_ != kInvalidRaw; }

  Kind kind() const {
    FLOQ_CHECK(valid());
    return Kind(raw_ >> kIndexBits);
  }

  uint32_t index() const {
    FLOQ_CHECK(valid());
    return raw_ & kIndexMask;
  }

  bool IsConstant() const { return kind() == Kind::kConstant; }
  bool IsNull() const { return kind() == Kind::kNull; }
  bool IsVariable() const { return kind() == Kind::kVariable; }

  /// Raw 32-bit encoding, usable as a hash key.
  uint32_t raw() const { return raw_; }

  friend bool operator==(Term a, Term b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Term a, Term b) { return a.raw_ != b.raw_; }
  /// Arbitrary-but-total order for use in sorted containers (kind-major,
  /// then index). This is NOT the chase order, which for constants and
  /// variables is lexicographic on names; see World::PrecedesInChaseOrder.
  friend bool operator<(Term a, Term b) { return a.raw_ < b.raw_; }

 private:
  static constexpr int kIndexBits = 30;
  static constexpr uint32_t kIndexMask = (1u << kIndexBits) - 1;
  static constexpr uint32_t kInvalidRaw = ~0u;

  Term(Kind kind, uint32_t index)
      : raw_((uint32_t(kind) << kIndexBits) | index) {
    FLOQ_CHECK_LE(index, kIndexMask);
  }

  uint32_t raw_;
};

struct TermHash {
  size_t operator()(Term t) const {
    // Fibonacci hashing of the raw encoding.
    return size_t(t.raw()) * 0x9e3779b97f4a7c15ULL >> 32;
  }
};

}  // namespace floq

#endif  // FLOQ_TERM_TERM_H_
