#ifndef FLOQ_TERM_SUBSTITUTION_H_
#define FLOQ_TERM_SUBSTITUTION_H_

#include <unordered_map>
#include <vector>

#include "term/atom.h"
#include "term/term.h"

// Substitutions map terms to terms. They represent both homomorphism
// candidates during search and completed homomorphisms (Definition 1 of
// the paper: constants map to themselves, variables map anywhere).

namespace floq {

class Substitution {
 public:
  Substitution() = default;

  /// Returns the image of `t`, or `t` itself if unmapped (identity
  /// outside the explicit domain — constants are typically unmapped).
  Term Apply(Term t) const {
    auto it = map_.find(t);
    return it == map_.end() ? t : it->second;
  }

  /// Applies the substitution to every argument of `atom`.
  Atom Apply(const Atom& atom) const {
    Atom out = atom;
    for (int i = 0; i < atom.arity(); ++i) out.set_arg(i, Apply(atom.arg(i)));
    return out;
  }

  /// Applies the substitution to a list of atoms.
  std::vector<Atom> Apply(const std::vector<Atom>& atoms) const {
    std::vector<Atom> out;
    out.reserve(atoms.size());
    for (const Atom& atom : atoms) out.push_back(Apply(atom));
    return out;
  }

  /// Applies the substitution to a list of terms.
  std::vector<Term> ApplyToTerms(const std::vector<Term>& terms) const {
    std::vector<Term> out;
    out.reserve(terms.size());
    for (Term t : terms) out.push_back(Apply(t));
    return out;
  }

  /// Binds `from` to `to`. Overwrites any existing binding of `from`.
  void Bind(Term from, Term to) { map_[from] = to; }

  /// True if `t` has an explicit binding.
  bool Binds(Term t) const { return map_.count(t) > 0; }

  /// The explicit binding of `t`, or nullptr if unmapped. One hash lookup
  /// where a Binds + Apply pair would pay two — the matcher hot path uses
  /// this. The pointer is invalidated by any mutation.
  const Term* Lookup(Term t) const {
    auto it = map_.find(t);
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Attempts to extend with from->to; fails (returns false, no change) if
  /// `from` is already bound to a different term.
  bool TryBind(Term from, Term to) {
    auto [it, inserted] = map_.emplace(from, to);
    return inserted || it->second == to;
  }

  void Erase(Term from) { map_.erase(from); }

  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  /// Composition: (other ∘ this), i.e. first apply *this, then `other`.
  Substitution ComposeWith(const Substitution& other) const {
    Substitution out;
    for (const auto& [from, to] : map_) out.Bind(from, other.Apply(to));
    for (const auto& [from, to] : other.map_) {
      if (!out.Binds(from)) out.Bind(from, to);
    }
    return out;
  }

  const std::unordered_map<Term, Term, TermHash>& entries() const {
    return map_;
  }

 private:
  std::unordered_map<Term, Term, TermHash> map_;
};

}  // namespace floq

#endif  // FLOQ_TERM_SUBSTITUTION_H_
