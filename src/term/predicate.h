#ifndef FLOQ_TERM_PREDICATE_H_
#define FLOQ_TERM_PREDICATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/interner.h"

// Predicates. The F-logic Lite encoding P_FL of the paper fixes six
// predicates (Section 2); user programs (the Datalog substrate, the RDF
// bridge) may register further ones. Predicate ids are dense uint32s,
// with the P_FL six occupying fixed ids 0..5 in every World.

namespace floq {

using PredicateId = uint32_t;

inline constexpr PredicateId kInvalidPredicate = ~0u;

/// Maximum predicate arity the engine supports. P_FL needs 3; the
/// headroom is for user predicates of the generic chase (e.g., reified
/// relations with a handful of roles).
inline constexpr int kMaxArity = 6;

// The fixed P_FL catalog (Section 2 of the paper).
namespace pfl {
inline constexpr PredicateId kMember = 0;     // member(O, C)    — O : C
inline constexpr PredicateId kSub = 1;        // sub(C1, C2)     — C1 :: C2
inline constexpr PredicateId kData = 2;       // data(O, A, V)   — O[A->V]
inline constexpr PredicateId kType = 3;       // type(O, A, T)   — O[A*=>T]
inline constexpr PredicateId kMandatory = 4;  // mandatory(A, O) — O[A{1:*}*=>_]
inline constexpr PredicateId kFunct = 5;      // funct(A, O)     — O[A{0:1}*=>_]
inline constexpr PredicateId kCount = 6;      // number of P_FL predicates

/// True if `id` is one of the six P_FL predicates.
inline bool IsPfl(PredicateId id) { return id < kCount; }
}  // namespace pfl

/// Registry of predicate names and arities. Every World owns one and
/// pre-registers the P_FL six.
class PredicateTable {
 public:
  PredicateTable();

  PredicateTable(const PredicateTable&) = delete;
  PredicateTable& operator=(const PredicateTable&) = delete;

  /// Returns the id for (name, arity), registering it if new. If `name`
  /// is already registered with a different arity, returns
  /// kInvalidPredicate (the caller reports the error).
  PredicateId Intern(std::string_view name, int arity);

  /// Returns the id for `name` or kInvalidPredicate if unknown.
  PredicateId Lookup(std::string_view name) const;

  const std::string& NameOf(PredicateId id) const;
  int ArityOf(PredicateId id) const;
  uint32_t size() const { return names_.size(); }

 private:
  StringInterner names_;
  std::vector<int> arities_;
};

}  // namespace floq

#endif  // FLOQ_TERM_PREDICATE_H_
