#include "query/conjunctive_query.h"

#include <unordered_set>

#include "util/strings.h"

namespace floq {

namespace {

void CollectDistinct(Term t, std::vector<Term>& out,
                     std::unordered_set<uint32_t>& seen) {
  if (seen.insert(t.raw()).second) out.push_back(t);
}

}  // namespace

std::vector<Term> ConjunctiveQuery::Variables() const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (Term t : head_terms_) {
    if (t.IsVariable()) CollectDistinct(t, out, seen);
  }
  for (const Atom& atom : body_) {
    for (Term t : atom) {
      if (t.IsVariable()) CollectDistinct(t, out, seen);
    }
  }
  return out;
}

std::vector<Term> ConjunctiveQuery::BodyTerms() const {
  std::vector<Term> out;
  std::unordered_set<uint32_t> seen;
  for (const Atom& atom : body_) {
    for (Term t : atom) CollectDistinct(t, out, seen);
  }
  return out;
}

Status ConjunctiveQuery::Validate(const World& world) const {
  std::unordered_set<uint32_t> body_vars;
  for (const Atom& atom : body_) {
    if (atom.predicate() == kInvalidPredicate) {
      return InvalidArgumentError("body atom with invalid predicate");
    }
    int expected = world.predicates().ArityOf(atom.predicate());
    if (atom.arity() != expected) {
      return InvalidArgumentError(
          StrCat("predicate ", world.predicates().NameOf(atom.predicate()),
                 " expects arity ", expected, ", got ", atom.arity()));
    }
    for (Term t : atom) {
      if (t.IsVariable()) body_vars.insert(t.raw());
    }
  }
  for (Term t : head_terms_) {
    if (t.IsVariable() && body_vars.count(t.raw()) == 0) {
      return InvalidArgumentError(
          StrCat("unsafe head variable ", world.NameOf(t),
                 " does not occur in the body"));
    }
  }
  return Status::Ok();
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const Substitution& subst) const {
  ConjunctiveQuery out(name_, subst.ApplyToTerms(head_terms_),
                       subst.Apply(body_));
  out.span_ = span_;
  out.head_spans_ = head_spans_;
  return out;
}

ConjunctiveQuery ConjunctiveQuery::RenameApart(World& world,
                                               Substitution* renaming) const {
  Substitution fresh;
  for (Term var : Variables()) fresh.Bind(var, world.MakeFreshVariable());
  if (renaming != nullptr) *renaming = fresh;
  return Substitute(fresh);
}

std::vector<Atom> ConjunctiveQuery::Freeze(
    World& world, std::vector<Term>* frozen_head) const {
  Substitution freeze;
  for (Term var : Variables()) freeze.Bind(var, world.MakeFreshNull());
  if (frozen_head != nullptr) *frozen_head = freeze.ApplyToTerms(head_terms_);
  return freeze.Apply(body_);
}

std::string ConjunctiveQuery::ToString(const World& world) const {
  std::string out = name_;
  out += '(';
  for (size_t i = 0; i < head_terms_.size(); ++i) {
    if (i > 0) out += ", ";
    out += world.NameOf(head_terms_[i]);
  }
  out += ')';
  out += " :- ";
  out += AtomsToString(body_, world);
  out += '.';
  return out;
}

}  // namespace floq
