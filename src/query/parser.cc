#include "query/parser.h"

#include <cctype>
#include <string>

#include "util/strings.h"

namespace floq {

namespace {

// A minimal recursive-descent parser over the predicate notation. The
// F-logic surface syntax (molecules, signatures) lives in src/flogic; this
// parser handles only prenex predicate atoms.
class Parser {
 public:
  Parser(World& world, std::string_view text, bool check_safety = true)
      : world_(world), text_(text), check_safety_(check_safety) {}

  Result<std::vector<ConjunctiveQuery>> ParseProgram() {
    std::vector<ConjunctiveQuery> queries;
    SkipWhitespace();
    while (!AtEnd()) {
      Result<ConjunctiveQuery> query = ParseRule();
      if (!query.ok()) return query.status();
      queries.push_back(std::move(query).value());
      SkipWhitespace();
    }
    return queries;
  }

  Result<ConjunctiveQuery> ParseSingleRule() {
    Result<ConjunctiveQuery> query = ParseRule();
    if (!query.ok()) return query;
    SkipWhitespace();
    if (!AtEnd()) return Error("trailing input after rule");
    return query;
  }

  Result<std::vector<Atom>> ParseAtomList() {
    std::vector<Atom> atoms;
    SkipWhitespace();
    if (AtEnd()) return atoms;
    for (;;) {
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      atoms.push_back(std::move(atom).value());
      SkipWhitespace();
      if (!Consume(',')) break;
    }
    Consume('.');
    SkipWhitespace();
    if (!AtEnd()) return Error("trailing input after atom list");
    return atoms;
  }

 private:
  Result<ConjunctiveQuery> ParseRule() {
    SkipWhitespace();
    size_t rule_start = pos_;
    Result<std::string> name = ParseIdentifier("rule head name");
    if (!name.ok()) return name.status();

    std::vector<Term> head_terms;
    std::vector<uint32_t> head_spans;
    SkipWhitespace();
    if (Consume('(')) {
      SkipWhitespace();
      if (!Consume(')')) {
        for (;;) {
          SkipWhitespace();
          size_t term_start = pos_;
          Result<Term> term = ParseTerm();
          if (!term.ok()) return term.status();
          head_terms.push_back(term.value());
          head_spans.push_back(RecordSpan(term_start, pos_));
          SkipWhitespace();
          if (Consume(')')) break;
          if (!Consume(',')) return Error("expected ',' or ')' in head");
        }
      }
    }

    SkipWhitespace();
    if (!ConsumeSequence(":-")) return Error("expected ':-' after rule head");

    std::vector<Atom> body;
    for (;;) {
      Result<Atom> atom = ParseAtom();
      if (!atom.ok()) return atom.status();
      body.push_back(std::move(atom).value());
      SkipWhitespace();
      if (!Consume(',')) break;
    }
    SkipWhitespace();
    if (!Consume('.') && !AtEnd()) {
      return Error("expected '.' at end of rule");
    }

    ConjunctiveQuery query(*std::move(name), std::move(head_terms),
                           std::move(body));
    query.set_span(RecordSpan(rule_start, pos_));
    query.set_head_spans(std::move(head_spans));
    if (check_safety_) {
      Status valid = query.Validate(world_);
      if (!valid.ok()) return ErrorAt(rule_start, valid.message());
    }
    return query;
  }

  Result<Atom> ParseAtom() {
    SkipWhitespace();
    size_t atom_start = pos_;
    Result<std::string> name = ParseIdentifier("predicate name");
    if (!name.ok()) return name.status();
    SkipWhitespace();
    if (!Consume('(')) return Error("expected '(' after predicate name");

    std::vector<Term> args;
    SkipWhitespace();
    if (!Consume(')')) {
      for (;;) {
        Result<Term> term = ParseTerm();
        if (!term.ok()) return term.status();
        args.push_back(term.value());
        SkipWhitespace();
        if (Consume(')')) break;
        if (!Consume(',')) return Error("expected ',' or ')' in atom");
      }
    }

    PredicateId pred = world_.predicates().Intern(*name, int(args.size()));
    if (pred == kInvalidPredicate) {
      return ErrorAt(atom_start,
                     StrCat("predicate ", *name, "/", args.size(),
                            " conflicts with an existing arity or exceeds "
                            "the maximum arity"));
    }
    Atom atom(pred, args);
    atom.set_provenance(RecordSpan(atom_start, pos_));
    return atom;
  }

  Result<Term> ParseTerm() {
    SkipWhitespace();
    if (AtEnd()) return Error("expected a term");
    char c = Peek();
    if (c == '\'') return ParseQuotedConstant();
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
      return ParseNumberConstant();
    }
    Result<std::string> word = ParseIdentifier("term");
    if (!word.ok()) return word.status();
    const std::string& name = *word;
    if (name == "_") return world_.MakeFreshVariable();
    char first = name[0];
    if (std::isupper(static_cast<unsigned char>(first)) || first == '_') {
      return world_.MakeVariable(name);
    }
    return world_.MakeConstant(name);
  }

  Result<Term> ParseQuotedConstant() {
    // ParseTerm only dispatches here on a quote, but a malformed file must
    // never be able to turn a dispatch slip into an assertion failure.
    if (!Consume('\'')) return Error("expected '\\'' to open a constant");
    std::string value;
    while (!AtEnd() && Peek() != '\'') {
      value += Advance();
    }
    if (!Consume('\'')) return Error("unterminated quoted constant");
    return world_.MakeConstant(value);
  }

  Result<Term> ParseNumberConstant() {
    std::string value;
    if (Peek() == '-') value += Advance();
    if (AtEnd() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected digits in numeric constant");
    }
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      value += Advance();
    }
    // A '.' continues the number only when a digit follows; otherwise it
    // terminates the rule.
    if (!AtEnd() && Peek() == '.' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
      value += Advance();
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        value += Advance();
      }
    }
    return world_.MakeConstant(value);
  }

  Result<std::string> ParseIdentifier(const char* what) {
    SkipWhitespace();
    if (AtEnd()) return Error(StrCat("expected ", what, ", got end of input"));
    char c = Peek();
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') {
      return Error(StrCat("expected ", what, ", got '", c, "'"));
    }
    std::string name;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                        Peek() == '_')) {
      name += Advance();
    }
    return name;
  }

  void SkipWhitespace() {
    for (;;) {
      while (!AtEnd() &&
             std::isspace(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
      if (!AtEnd() && Peek() == '%') {
        while (!AtEnd() && Peek() != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }
  char Advance() { return text_[pos_++]; }

  bool Consume(char c) {
    if (AtEnd() || Peek() != c) return false;
    ++pos_;
    return true;
  }

  bool ConsumeSequence(std::string_view seq) {
    if (text_.substr(pos_, seq.size()) != seq) return false;
    pos_ += seq.size();
    return true;
  }

  /// 1-based line/column of a byte offset (parsers are not hot paths; the
  /// rescan keeps position tracking out of the scanning fast path).
  std::pair<int, int> LineColAt(size_t offset) const {
    int line = 1, column = 1;
    for (size_t i = 0; i < offset && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    return {line, column};
  }

  /// Interns the span covering text_[begin, end) into the World.
  uint32_t RecordSpan(size_t begin, size_t end) {
    auto [line, column] = LineColAt(begin);
    auto [end_line, end_column] = LineColAt(end);
    return world_.spans().Add(SourceSpan{line, column, end_line, end_column});
  }

  Status Error(std::string message) const { return ErrorAt(pos_, message); }

  Status ErrorAt(size_t offset, std::string message) const {
    auto [line, column] = LineColAt(offset);
    return InvalidArgumentError(
        StrCat("parse error at ", line, ":", column, ": ", message));
  }

  World& world_;
  std::string_view text_;
  size_t pos_ = 0;
  bool check_safety_ = true;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(World& world, std::string_view text) {
  return Parser(world, text).ParseSingleRule();
}

Result<ConjunctiveQuery> ParseQueryAllowUnsafeHead(World& world,
                                                   std::string_view text) {
  return Parser(world, text, /*check_safety=*/false).ParseSingleRule();
}

Result<std::vector<ConjunctiveQuery>> ParseQueries(World& world,
                                                   std::string_view text) {
  return Parser(world, text).ParseProgram();
}

Result<std::vector<Atom>> ParseAtoms(World& world, std::string_view text) {
  return Parser(world, text).ParseAtomList();
}

}  // namespace floq
