#ifndef FLOQ_QUERY_CONJUNCTIVE_QUERY_H_
#define FLOQ_QUERY_CONJUNCTIVE_QUERY_H_

#include <string>
#include <vector>

#include "term/atom.h"
#include "term/substitution.h"
#include "term/world.h"
#include "util/status.h"

// Conjunctive meta-queries over P_FL (and, for the substrate, over any
// registered predicates): q(t1,...,tn) :- a1, ..., am. The paper writes
// |q| for the number of body atoms; size() returns exactly that.

namespace floq {

class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  ConjunctiveQuery(std::string name, std::vector<Term> head_terms,
                   std::vector<Atom> body)
      : name_(std::move(name)),
        head_terms_(std::move(head_terms)),
        body_(std::move(body)) {}

  const std::string& name() const { return name_; }
  const std::vector<Term>& head() const { return head_terms_; }
  const std::vector<Atom>& body() const { return body_; }
  std::vector<Atom>& mutable_body() { return body_; }
  std::vector<Term>& mutable_head() { return head_terms_; }

  /// Arity of the answer relation.
  int arity() const { return int(head_terms_.size()); }

  /// |q| — the number of body atoms.
  int size() const { return int(body_.size()); }

  /// All distinct variables, in first-occurrence order (head first).
  std::vector<Term> Variables() const;

  /// All distinct terms occurring in the body, in first-occurrence order.
  std::vector<Term> BodyTerms() const;

  /// Checks the safety condition: every head variable occurs in the body,
  /// and every body atom's predicate arity matches.
  Status Validate(const World& world) const;

  /// Applies a substitution to head and body.
  ConjunctiveQuery Substitute(const Substitution& subst) const;

  /// Returns a copy whose variables are replaced by fresh ones from
  /// `world`, so that it shares no variable with any other query. The
  /// renaming used is appended to `renaming` if non-null.
  ConjunctiveQuery RenameApart(World& world,
                               Substitution* renaming = nullptr) const;

  /// Freezes the query: every variable is replaced by a distinct fresh
  /// null. The frozen body is the canonical database of the query, and the
  /// frozen head is its canonical answer tuple. Outputs via `frozen_head`
  /// if non-null.
  std::vector<Atom> Freeze(World& world,
                           std::vector<Term>* frozen_head = nullptr) const;

  /// Provenance (ids into the owning World's SpanTable; 0/empty =
  /// unknown): the span of the whole rule and of each head term, aligned
  /// with head(). Ignored by operator==; preserved by Substitute and
  /// RenameApart.
  uint32_t span() const { return span_; }
  void set_span(uint32_t span_id) { span_ = span_id; }
  const std::vector<uint32_t>& head_spans() const { return head_spans_; }
  void set_head_spans(std::vector<uint32_t> span_ids) {
    head_spans_ = std::move(span_ids);
  }

  /// The span id of head term `i`, or 0 when not recorded.
  uint32_t head_span(int i) const {
    return size_t(i) < head_spans_.size() ? head_spans_[i] : 0;
  }

  /// Renders "q(X, Y) :- member(X, C), data(X, A, Y)."
  std::string ToString(const World& world) const;

  friend bool operator==(const ConjunctiveQuery& a, const ConjunctiveQuery& b) {
    return a.head_terms_ == b.head_terms_ && a.body_ == b.body_;
  }

 private:
  std::string name_ = "q";
  std::vector<Term> head_terms_;
  std::vector<Atom> body_;
  uint32_t span_ = 0;
  std::vector<uint32_t> head_spans_;
};

}  // namespace floq

#endif  // FLOQ_QUERY_CONJUNCTIVE_QUERY_H_
