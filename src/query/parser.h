#ifndef FLOQ_QUERY_PARSER_H_
#define FLOQ_QUERY_PARSER_H_

#include <string_view>
#include <vector>

#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Parser for the low-level (predicate) notation of the paper:
//
//   q(A, B) :- type(T1, A, T2), sub(T2, T3), type(T3, B, _).
//
// Lexical conventions follow the paper and Prolog/Datalog practice:
//   * variables start with an upper-case letter or '_';
//   * a bare '_' is an anonymous variable, fresh at each occurrence;
//   * constants are lower-case identifiers, numbers, or 'quoted strings';
//   * '%' starts a comment that runs to end of line.
//
// The six P_FL predicates are always available; other predicates are
// registered on first use with the arity at which they first appear.

namespace floq {

/// Parses a single rule "head :- body." (the final '.' is optional when the
/// input ends). Returns the query or a parse error with position info.
Result<ConjunctiveQuery> ParseQuery(World& world, std::string_view text);

/// Like ParseQuery but skips the head-safety check: head variables may be
/// absent from the body. Used for existential TGD heads (chase
/// dependencies), where such variables denote invented values.
Result<ConjunctiveQuery> ParseQueryAllowUnsafeHead(World& world,
                                                   std::string_view text);

/// Parses a sequence of rules. Queries may share variables only by name
/// coincidence; callers that need disjoint variables should RenameApart.
Result<std::vector<ConjunctiveQuery>> ParseQueries(World& world,
                                                   std::string_view text);

/// Parses a comma-separated list of atoms (a rule body without a head),
/// e.g. "member(X, C), sub(C, D)". Used for ground fact lists as well.
Result<std::vector<Atom>> ParseAtoms(World& world, std::string_view text);

}  // namespace floq

#endif  // FLOQ_QUERY_PARSER_H_
