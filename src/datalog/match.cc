#include "datalog/match.h"

#include <algorithm>
#include <vector>

#include "datalog/compiled_pattern.h"
#include "util/metrics.h"

namespace floq {

namespace {

// Folds the search effort of one MatchConjunction call into the registry.
// The counters mirror MatchStats field for field so --metrics-out exposes
// the same series bench_hom_search reports. Called only when metrics are
// enabled; the instruments are cached in statics after the first call.
void FoldMatchMetrics(const MatchStats& before, const MatchStats& after,
                      bool used_kernel) {
  MetricsRegistry& registry = MetricsRegistry::Get();
  static Counter& kernel_dispatch = registry.counter("match.kernel_dispatch");
  static Counter& interpreter_dispatch =
      registry.counter("match.interpreter_dispatch");
  static Counter& nodes = registry.counter("hom.nodes_visited");
  static Counter& matches = registry.counter("hom.matches_found");
  static Counter& probes = registry.counter("hom.index_probes");
  static Counter& intersections = registry.counter("hom.intersect_nodes");
  static Counter& gallops = registry.counter("hom.gallop_skips");
  static Counter& rejects = registry.counter("hom.reject_prepass_hits");
  (used_kernel ? kernel_dispatch : interpreter_dispatch).Add(1);
  auto fold = [](Counter& c, uint64_t b, uint64_t a) {
    if (a > b) c.Add(a - b);
  };
  fold(nodes, before.nodes_visited, after.nodes_visited);
  fold(matches, before.matches_found, after.matches_found);
  fold(probes, before.index_probes, after.index_probes);
  fold(intersections, before.intersect_nodes, after.intersect_nodes);
  fold(gallops, before.gallop_skips, after.gallop_skips);
  fold(rejects, before.reject_prepass_hits, after.reject_prepass_hits);
}

// Per-call state for the legacy (interpreted, map-based) backtracking
// search. The production path is the compiled kernel in
// compiled_pattern.cc; this matcher is kept as the differential-testing
// and ablation baseline (MatchOptions::use_compiled_kernel = false).
class Matcher {
 public:
  Matcher(std::span<const Atom> pattern, const FactIndex& index,
          const Substitution& initial,
          FunctionRef<bool(const Substitution&)> on_match,
          MatchStats* stats, const MatchOptions& options)
      : pattern_(pattern),
        index_(index),
        subst_(initial),
        on_match_(on_match),
        stats_(stats),
        options_(options) {
    remaining_.reserve(pattern.size());
    for (uint32_t i = 0; i < pattern.size(); ++i) remaining_.push_back(i);
  }

  /// Returns false iff enumeration was stopped early by the callback.
  bool Run() { return Recurse(); }

 private:
  // Candidate fact ids for pattern atom `p` under the current bindings:
  // the smallest index list over the bound argument positions, or the
  // whole predicate bucket if no argument is bound.
  PostingView Candidates(const Atom& p) const {
    PostingView best = index_.WithPredicate(p.predicate());
    for (int i = 0; i < p.arity(); ++i) {
      Term arg = p.arg(i);
      // Unbound pattern variables constrain nothing; anything else (a
      // constant, a value variable, or a bound pattern variable's image)
      // pins the argument and its index applies. Lookup gives the image
      // in the same hash probe that decides boundness.
      const Term* image = subst_.Lookup(arg);
      if (arg.IsVariable() && image == nullptr) continue;
      if (stats_ != nullptr) ++stats_->index_probes;
      const PostingView ids = index_.WithArgument(
          p.predicate(), i, image != nullptr ? *image : arg);
      if (ids.size() < best.size()) best = ids;
    }
    return best;
  }

  bool Recurse() {
    if (stats_ != nullptr) ++stats_->nodes_visited;
    // A governor trip unwinds exactly like a callback stop: every frame
    // undoes its bindings and Run() reports the enumeration incomplete.
    if (options_.governor != nullptr && !options_.governor->Tick()) {
      return false;
    }
    if (remaining_.empty()) {
      if (stats_ != nullptr) ++stats_->matches_found;
      return on_match_(subst_);
    }

    // Most-constrained-first: pick the remaining atom with the fewest
    // candidates (or just the first one in the ablation configuration).
    size_t best_slot = 0;
    PostingView best_candidates;
    bool have_best = false;
    if (options_.most_constrained_first) {
      for (size_t slot = 0; slot < remaining_.size(); ++slot) {
        const PostingView ids = Candidates(pattern_[remaining_[slot]]);
        if (!have_best || ids.size() < best_candidates.size()) {
          best_candidates = ids;
          have_best = true;
          best_slot = slot;
          if (ids.empty()) return true;  // dead end, enumerate siblings
        }
      }
    } else {
      best_candidates = Candidates(pattern_[remaining_[0]]);
    }

    uint32_t atom_index = remaining_[best_slot];
    remaining_.erase(remaining_.begin() + best_slot);
    const Atom& p = pattern_[atom_index];

    bool keep_going = true;
    // The view is a value: candidate lists are stable (FactIndex is not
    // mutated during matching), and the cursor-backed iteration holds no
    // pointer into mutable index state.
    for (uint32_t fact_id : best_candidates) {
      if (options_.governor != nullptr && !options_.governor->Tick()) {
        keep_going = false;
        break;
      }
      const Atom& fact = index_.at(fact_id);
      std::vector<Term> bound_here;
      if (TryUnify(p, fact, bound_here)) {
        keep_going = Recurse();
      }
      for (Term var : bound_here) subst_.Erase(var);
      if (!keep_going) break;
    }

    remaining_.insert(remaining_.begin() + best_slot, atom_index);
    return keep_going;
  }

  // Attempts to extend subst_ so that it maps `p` onto `fact`. Newly bound
  // variables are appended to `bound_here` for undo.
  //
  // Only variables occurring *syntactically* in the pattern are bindable.
  // The image of a binding may itself be a variable (chase conjuncts carry
  // the chased query's variables as values); such images are compared, not
  // rebound. Callers must therefore keep pattern variables disjoint from
  // the target's value variables (rename apart).
  bool TryUnify(const Atom& p, const Atom& fact,
                std::vector<Term>& bound_here) {
    for (int i = 0; i < p.arity(); ++i) {
      Term arg = p.arg(i);
      // One Lookup replaces the old Binds-then-Apply pair (two probes of
      // the same key). The pointer is not held across Bind.
      const Term* image = subst_.Lookup(arg);
      if (arg.IsVariable() && image == nullptr) {
        subst_.Bind(arg, fact.arg(i));
        bound_here.push_back(arg);
      } else if ((image != nullptr ? *image : arg) != fact.arg(i)) {
        for (Term var : bound_here) subst_.Erase(var);
        bound_here.clear();
        return false;
      }
    }
    return true;
  }

  std::span<const Atom> pattern_;
  const FactIndex& index_;
  Substitution subst_;
  FunctionRef<bool(const Substitution&)> on_match_;
  MatchStats* stats_;
  MatchOptions options_;
  std::vector<uint32_t> remaining_;
};

}  // namespace

bool MatchConjunction(std::span<const Atom> pattern, const FactIndex& index,
                      const Substitution& initial,
                      FunctionRef<bool(const Substitution&)> on_match,
                      MatchStats* stats, const MatchOptions& options) {
  // The compiled kernel renumbers pattern variables into uint16_t slots;
  // a pathological pattern could overflow that space (at most kMaxArity
  // distinct variables per atom), so route oversized conjunctions to the
  // interpreter, which has no slot limit.
  const bool use_kernel = options.use_compiled_kernel &&
                          pattern.size() < size_t(UINT16_MAX) / size_t(kMaxArity);

  // With metrics on, effort is folded into the registry once per call —
  // never per node. A caller-provided MatchStats is snapshotted so only
  // this call's delta lands; callers without one get a local stand-in.
  const bool metrics = MetricsRegistry::enabled();
  MatchStats local;
  MatchStats* effective = stats;
  if (metrics && effective == nullptr) effective = &local;
  const MatchStats before = effective != nullptr ? *effective : MatchStats{};

  bool complete =
      use_kernel
          ? MatchCompiled(pattern, index, initial, on_match, effective, options)
          : Matcher(pattern, index, initial, on_match, effective, options)
                .Run();
  if (metrics) FoldMatchMetrics(before, *effective, use_kernel);
  return complete;
}

bool FindFirstMatch(std::span<const Atom> pattern, const FactIndex& index,
                    const Substitution& initial, Substitution* out,
                    MatchStats* stats) {
  bool found = false;
  MatchConjunction(
      pattern, index, initial,
      [&](const Substitution& match) {
        found = true;
        if (out != nullptr) *out = match;
        return false;  // stop at the first match
      },
      stats);
  return found;
}

}  // namespace floq
