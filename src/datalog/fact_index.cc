#include "datalog/fact_index.h"

#include <algorithm>

#include "util/check.h"

namespace floq {

void FactIndex::EnsureIds() const {
  if (ids_built_) return;
  const uint32_t n = size();
  ids_.reserve(n);
  for (uint32_t id = 0; id < n; ++id) ids_.emplace(at(id), id);
  ids_built_ = true;
}

void FactIndex::AppendPosting(PostingSlot& slot, uint32_t id) {
  FLOQ_DCHECK(slot.tail.empty() || slot.tail.back() < id);
  slot.tail.push_back(id);
}

std::pair<uint32_t, bool> FactIndex::Insert(const Atom& atom) {
  EnsureIds();
  auto [it, inserted] = ids_.emplace(atom, size());
  if (!inserted) return {it->second, false};
  const uint32_t id = it->second;
  atoms_.push_back(atom);
  AppendPosting(by_predicate_[atom.predicate()], id);
  for (int i = 0; i < atom.arity(); ++i) {
    AppendPosting(by_argument_[PositionKey(atom.predicate(), i, atom.arg(i))],
                  id);
  }
  return {id, true};
}

PostingView FactIndex::WithPredicate(PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? PostingView() : ViewOf(it->second);
}

PostingView FactIndex::WithArgument(PredicateId pred, int position,
                                    Term value) const {
  auto it = by_argument_.find(PositionKey(pred, position, value));
  return it == by_argument_.end() ? PostingView() : ViewOf(it->second);
}

uint32_t FactIndex::CountWithPredicate(PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  if (it == by_predicate_.end()) return 0;
  return it->second.frozen_count + uint32_t(it->second.tail.size());
}

uint32_t FactIndex::CountWithArgument(PredicateId pred, int position,
                                      Term value) const {
  auto it = by_argument_.find(PositionKey(pred, position, value));
  if (it == by_argument_.end()) return 0;
  return it->second.frozen_count + uint32_t(it->second.tail.size());
}

uint32_t FactIndex::DistinctArgumentValues(PredicateId pred,
                                           int position) const {
  // The by-argument key packs (pred, position) into the bits above the
  // term, so each distinct value at this position owns exactly one key
  // with this prefix.
  const uint64_t prefix = (uint64_t(pred) << 36) | (uint64_t(position) << 32);
  uint32_t distinct = 0;
  for (const auto& [key, slot] : by_argument_) {
    if ((key & ~uint64_t(UINT32_MAX)) == prefix) ++distinct;
  }
  return distinct;
}

void FactIndex::Freeze(uint32_t min_list_size) {
  PostingArena next;
  std::vector<uint32_t> scratch;
  auto freeze_slot = [&](PostingSlot& slot) {
    const size_t total = size_t(slot.frozen_count) + slot.tail.size();
    // A pure tail below the threshold stays mutable; anything already
    // frozen must be re-encoded regardless, since the old arena dies.
    if (slot.frozen_count == 0 && total < min_list_size) return;
    scratch.clear();
    ViewOf(slot).Materialize(scratch);
    slot.frozen_offset = next.EncodeList(scratch);
    slot.frozen_count = uint32_t(scratch.size());
    std::vector<uint32_t>().swap(slot.tail);
  };
  for (auto& [pred, slot] : by_predicate_) freeze_slot(slot);
  for (auto& [key, slot] : by_argument_) freeze_slot(slot);
  arena_ = std::move(next);
}

void FactIndex::Clear() {
  mapped_atoms_ = {};
  mapped_count_ = 0;
  mapped_owner_.reset();
  std::vector<Atom>().swap(atoms_);
  std::unordered_map<Atom, uint32_t, AtomHash>().swap(ids_);
  ids_built_ = true;
  std::unordered_map<PredicateId, PostingSlot>().swap(by_predicate_);
  std::unordered_map<uint64_t, PostingSlot>().swap(by_argument_);
  arena_.Clear();
}

bool FactIndex::PostingListsSorted() const {
  std::vector<uint32_t> scratch;
  auto strictly_increasing = [&](const PostingSlot& slot) {
    scratch.clear();
    ViewOf(slot).Materialize(scratch);
    for (size_t i = 1; i < scratch.size(); ++i) {
      if (scratch[i - 1] >= scratch[i]) return false;
    }
    return true;
  };
  for (const auto& [pred, slot] : by_predicate_) {
    if (!strictly_increasing(slot)) return false;
  }
  for (const auto& [key, slot] : by_argument_) {
    if (!strictly_increasing(slot)) return false;
  }
  return true;
}

FactIndex::StorageStats FactIndex::Stats() const {
  StorageStats stats;
  auto fold = [&](const PostingSlot& slot) {
    stats.postings += slot.frozen_count + slot.tail.size();
    stats.frozen_postings += slot.frozen_count;
    stats.tail_bytes += slot.tail.capacity() * sizeof(uint32_t);
  };
  for (const auto& [pred, slot] : by_predicate_) fold(slot);
  for (const auto& [key, slot] : by_argument_) fold(slot);
  stats.arena_bytes = arena_.size();
  return stats;
}

size_t FactIndex::MemoryFootprint() const {
  // Approximate: capacities plus per-node map overhead (bucket pointer +
  // node next-pointer), enough to make shrinkage measurable.
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  size_t bytes = atoms_.capacity() * sizeof(Atom);
  bytes += ids_.bucket_count() * sizeof(void*);
  bytes += ids_.size() * (sizeof(std::pair<Atom, uint32_t>) + kNodeOverhead);
  auto fold = [&](const auto& map) {
    bytes += map.bucket_count() * sizeof(void*);
    for (const auto& [key, slot] : map) {
      bytes += sizeof(key) + sizeof(PostingSlot) + kNodeOverhead;
      bytes += slot.tail.capacity() * sizeof(uint32_t);
    }
  };
  fold(by_predicate_);
  fold(by_argument_);
  bytes += arena_.HeapBytes();
  return bytes;
}

}  // namespace floq
