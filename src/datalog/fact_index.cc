#include "datalog/fact_index.h"

namespace floq {

namespace {
const std::vector<uint32_t> kEmptyIds;
}  // namespace

std::pair<uint32_t, bool> FactIndex::Insert(const Atom& atom) {
  auto [it, inserted] = ids_.emplace(atom, uint32_t(atoms_.size()));
  if (!inserted) return {it->second, false};
  uint32_t id = it->second;
  atoms_.push_back(atom);
  std::vector<uint32_t>& bucket = by_predicate_[atom.predicate()];
  FLOQ_DCHECK(bucket.empty() || bucket.back() < id);
  bucket.push_back(id);
  for (int i = 0; i < atom.arity(); ++i) {
    std::vector<uint32_t>& ids =
        by_argument_[PositionKey(atom.predicate(), i, atom.arg(i))];
    FLOQ_DCHECK(ids.empty() || ids.back() < id);
    ids.push_back(id);
  }
  return {id, true};
}

bool FactIndex::PostingListsSorted() const {
  auto strictly_increasing = [](const std::vector<uint32_t>& ids) {
    for (size_t i = 1; i < ids.size(); ++i) {
      if (ids[i - 1] >= ids[i]) return false;
    }
    return true;
  };
  for (const auto& [pred, ids] : by_predicate_) {
    if (!strictly_increasing(ids)) return false;
  }
  for (const auto& [key, ids] : by_argument_) {
    if (!strictly_increasing(ids)) return false;
  }
  return true;
}

const std::vector<uint32_t>& FactIndex::WithPredicate(PredicateId pred) const {
  auto it = by_predicate_.find(pred);
  return it == by_predicate_.end() ? kEmptyIds : it->second;
}

const std::vector<uint32_t>& FactIndex::WithArgument(PredicateId pred,
                                                     int position,
                                                     Term value) const {
  auto it = by_argument_.find(PositionKey(pred, position, value));
  return it == by_argument_.end() ? kEmptyIds : it->second;
}

void FactIndex::Clear() {
  atoms_.clear();
  ids_.clear();
  by_predicate_.clear();
  by_argument_.clear();
}

}  // namespace floq
