#ifndef FLOQ_DATALOG_POSTING_INTERSECT_H_
#define FLOQ_DATALOG_POSTING_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

// Sorted posting-list intersection for the homomorphism kernel. FactIndex
// posting lists are append-only and therefore strictly increasing in fact
// id (FLOQ_DCHECKed at insert time); candidate computation for a pattern
// atom with several bound argument positions is then a k-way intersection
// of sorted uint32 lists — the same primitive search engines use for
// conjunctive keyword queries. The driver iterates the smallest list and
// gallops (exponential probe + binary search, Bentley–Yao) through the
// others, so the cost is O(|smallest| * k * log(skip)) rather than the
// sum of the list lengths.

namespace floq {

/// First index in `list[begin..)` whose value is >= `target`, found by
/// galloping from `begin` (doubling steps, then binary search within the
/// last doubling window). Returns list.size() when every remaining element
/// is smaller. `list` must be sorted ascending.
size_t GallopToLowerBound(std::span<const uint32_t> list, size_t begin,
                          uint32_t target);

/// Intersects k >= 1 ascending id lists into `out` (cleared first). The
/// pointers must be non-null; `out` receives the ids present in every
/// list, ascending. The smallest list drives; cursors into the other
/// lists advance monotonically via GallopToLowerBound, so each list is
/// traversed at most once per call.
void IntersectPostingLists(std::span<const std::vector<uint32_t>* const> lists,
                           std::vector<uint32_t>& out);

}  // namespace floq

#endif  // FLOQ_DATALOG_POSTING_INTERSECT_H_
