#ifndef FLOQ_DATALOG_POSTING_INTERSECT_H_
#define FLOQ_DATALOG_POSTING_INTERSECT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "datalog/posting_block.h"

// Sorted posting-list intersection for the homomorphism kernel. FactIndex
// posting lists are append-only and therefore strictly increasing in fact
// id (FLOQ_DCHECKed at insert time); candidate computation for a pattern
// atom with several bound argument positions is then a k-way intersection
// of sorted uint32 lists — the same primitive search engines use for
// conjunctive keyword queries. The driver iterates the smallest list and
// leapfrogs PostingCursors through the others, so the cost is
// O(|smallest| * k * log(skip)) rather than the sum of the list lengths —
// and over the frozen tier a seek skips whole compressed blocks via their
// max-id metadata without decoding them.

namespace floq {

/// First index in `list[begin..)` whose value is >= `target`, found by
/// galloping from `begin` (doubling steps, then binary search within the
/// last doubling window). Returns list.size() when every remaining element
/// is smaller. `list` must be sorted ascending.
size_t GallopToLowerBound(std::span<const uint32_t> list, size_t begin,
                          uint32_t target);

/// Intersects k >= 1 ascending posting views into `out` (cleared first):
/// `out` receives the ids present in every view, ascending. The smallest
/// view drives; cursors into the other views advance monotonically via
/// SeekGE, so each view is traversed at most once per call.
void IntersectPostingLists(std::span<const PostingView> lists,
                           std::vector<uint32_t>& out);

}  // namespace floq

#endif  // FLOQ_DATALOG_POSTING_INTERSECT_H_
