#ifndef FLOQ_DATALOG_SNAPSHOT_H_
#define FLOQ_DATALOG_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "datalog/fact_index.h"
#include "term/world.h"
#include "util/status.h"

// Versioned FactIndex snapshots (DESIGN.md §14.3). A snapshot file holds
// the complete frozen state of an index — the raw atom array, the
// block-compressed posting arena, both posting-list tables, and the World
// symbols the stored Term encodings depend on — laid out so that loading
// is one mmap plus a pair of table scans: the atom array and the arena
// are used in place, so a process restart (or a future `floq serve`)
// skips re-parsing and re-chasing entirely and large KBs stay in shared
// page-cache memory.
//
// The format is little-endian and alignment-padded (every section starts
// 64-aligned). Loading verifies magic, version, and section bounds and
// fails with an error Status on any mismatch — snapshots are caches, not
// interchange: when in doubt, rebuild from source.

namespace floq {

/// Bumped on any layout change; loaders reject other versions.
/// v2: header CRC-32 + symbols-section CRC-32 (the sections that every
/// load reads eagerly; the mmap-ed atom/arena sections stay lazily
/// faulted and are covered by bounds checks), fsync'd tmp+rename writes.
inline constexpr uint32_t kSnapshotFormatVersion = 2;

/// Snapshot flag: the stored facts are already chase-saturated, so a
/// loader can skip Saturate() (KnowledgeBase records this).
inline constexpr uint32_t kSnapshotFlagSaturated = 1u << 0;

struct SnapshotInfo {
  uint32_t version = 0;
  uint32_t flags = 0;
  uint32_t atom_count = 0;
};

/// Freezes `index` (every posting list, tails included) and writes it plus
/// the `world` symbols to `path`, atomically (tmp file + rename).
Status WriteFactIndexSnapshot(FactIndex& index, const World& world,
                              const std::string& path, uint32_t flags = 0);

/// Loads a snapshot written by WriteFactIndexSnapshot: restores the World
/// symbols (the world must be fresh or already hold exactly the snapshot's
/// symbols in the same order — anything else fails, since stored Term
/// encodings would dangle) and points `index` at the mmap-ed atom array
/// and posting arena. `index` is cleared first.
Result<SnapshotInfo> LoadFactIndexSnapshot(const std::string& path,
                                           World& world, FactIndex& index);

}  // namespace floq

#endif  // FLOQ_DATALOG_SNAPSHOT_H_
