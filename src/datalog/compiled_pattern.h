#ifndef FLOQ_DATALOG_COMPILED_PATTERN_H_
#define FLOQ_DATALOG_COMPILED_PATTERN_H_

#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "datalog/fact_index.h"
#include "datalog/match.h"
#include "term/atom.h"
#include "term/substitution.h"
#include "util/function_ref.h"

// Pattern compilation for the homomorphism kernel. MatchConjunction (with
// MatchOptions::use_compiled_kernel, the default) compiles the conjunction
// once per search instead of re-interpreting it at every backtracking
// node:
//
//   * pattern variables are renumbered to dense slots, so the search-time
//     substitution is a flat array + undo trail (binding_trail.h) instead
//     of a mutated hash map;
//   * every argument position is classified up front as a constant (its
//     image under the initial substitution), a first-occurrence variable,
//     or a repeated variable;
//   * posting lists for constant positions are resolved against the
//     FactIndex at compile time, so their hash probes are paid once per
//     search instead of once per node — and an empty constant list proves
//     the whole conjunction unmatchable before any node is expanded.
//
// See DESIGN.md §9 for the full kernel design.

namespace floq {

/// One compiled argument position.
struct CompiledArg {
  enum class Kind : uint8_t { kConstant, kSlot };
  Kind kind = Kind::kConstant;
  /// kSlot only: this slot already occurred at an earlier position of the
  /// same atom (p(X, X)), so unification always compares here.
  bool repeated_in_atom = false;
  uint16_t slot = 0;  // kSlot only
  Term value;         // kConstant only: the image under `initial`
};

/// One compiled pattern atom.
struct CompiledAtom {
  PredicateId predicate = kInvalidPredicate;
  uint8_t arity = 0;
  std::array<CompiledArg, kMaxArity> args;

  /// (position, slot) of each kSlot argument; when the slot is bound at
  /// runtime the (predicate, position, image) posting list applies.
  uint8_t num_slot_positions = 0;
  std::array<std::pair<uint8_t, uint16_t>, kMaxArity> slot_positions;

  /// Posting views fixed for the whole search: one per constant position,
  /// resolved at compile time.
  uint8_t num_const_lists = 0;
  std::array<PostingView, kMaxArity> const_lists;

  /// Smallest of the predicate bucket and the constant-position lists —
  /// the candidate-count floor before any slot is bound.
  PostingView static_best;
  /// Which const_lists entry static_best is, or -1 when it is the
  /// predicate bucket (the leapfrog loop needs to know the driver's
  /// identity among the intersection inputs; views have no address).
  int8_t static_best_const_index = -1;
};

class CompiledPattern {
 public:
  /// Compiles `pattern` against `index`: variables unbound in `initial`
  /// become dense slots; everything else becomes a constant. Constant-
  /// position index probes are charged to `stats->index_probes`.
  CompiledPattern(std::span<const Atom> pattern, const FactIndex& index,
                  const Substitution& initial, MatchStats* stats) {
    Compile(pattern, index, initial, stats);
  }

  /// An empty pattern, for reuse via Compile.
  CompiledPattern() = default;

  /// Recompiles in place, reusing vector capacity — the kernel keeps one
  /// CompiledPattern per thread so steady-state searches do not allocate.
  void Compile(std::span<const Atom> pattern, const FactIndex& index,
               const Substitution& initial, MatchStats* stats);

  const std::vector<CompiledAtom>& atoms() const { return atoms_; }
  uint16_t num_slots() const { return uint16_t(slot_vars_.size()); }
  /// The pattern variable a slot was renumbered from.
  Term slot_var(uint16_t slot) const { return slot_vars_[slot]; }
  /// True when some constant position has an empty posting list: no
  /// homomorphism exists and the search can be skipped entirely.
  bool impossible() const { return impossible_; }

 private:
  std::vector<CompiledAtom> atoms_;
  std::vector<Term> slot_vars_;
  bool impossible_ = false;
};

/// The kernel entry point behind MatchConjunction: compiles `pattern` and
/// runs the trail-based backtracking search. Same contract as
/// MatchConjunction (returns false iff stopped early by `on_match`).
bool MatchCompiled(std::span<const Atom> pattern, const FactIndex& index,
                   const Substitution& initial,
                   FunctionRef<bool(const Substitution&)> on_match,
                   MatchStats* stats, const MatchOptions& options);

}  // namespace floq

#endif  // FLOQ_DATALOG_COMPILED_PATTERN_H_
