#include "datalog/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "util/crc32.h"

namespace floq {

namespace {

// File layout (all offsets from file start, little-endian):
//   SnapshotHeader
//   atoms    : Atom[atom_count]              (64-aligned)
//   arena    : uint8[arena_size]             (64-aligned)
//   preds    : PredTableEntry[pred_count]    (64-aligned)
//   args     : ArgTableEntry[arg_count]      (64-aligned)
//   symbols  : length-prefixed blob          (64-aligned)
constexpr char kMagic[8] = {'F', 'L', 'O', 'Q', 'S', 'N', 'A', 'P'};

struct SnapshotHeader {
  char magic[8];
  uint32_t version;
  uint32_t flags;
  uint32_t atom_count;
  uint32_t pred_count;
  uint32_t arg_count;
  // CRC-32 of this header with the field itself zeroed: catches a torn
  // or bit-flipped header before any offset is trusted.
  uint32_t header_crc;
  uint64_t atoms_offset;
  uint64_t arena_offset;
  uint64_t arena_size;
  uint64_t preds_offset;
  uint64_t args_offset;
  uint64_t symbols_offset;
  uint64_t symbols_size;
  // CRC-32 of the symbols section (low 32 bits; the section every load
  // reads eagerly — the mmap-ed atom/arena sections stay lazily faulted
  // and rely on the bounds checks).
  uint64_t symbols_crc;
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);
static_assert(sizeof(SnapshotHeader) == 96);

struct PredTableEntry {
  uint32_t predicate;
  uint32_t frozen_offset;
  uint32_t frozen_count;
  uint32_t reserved;
};
static_assert(sizeof(PredTableEntry) == 16);

struct ArgTableEntry {
  uint64_t key;
  uint32_t frozen_offset;
  uint32_t frozen_count;
};
static_assert(sizeof(ArgTableEntry) == 16);

static_assert(std::is_trivially_copyable_v<Atom>,
              "atoms are stored as raw bytes");

// Read-only private mapping of a whole file, kept alive by shared_ptr
// from everything that points into it (FactIndex atom span and arena).
struct MappedFile {
  const uint8_t* data = nullptr;
  size_t size = 0;

  ~MappedFile() {
    if (data != nullptr) {
      ::munmap(const_cast<uint8_t*>(data), size);
    }
  }
};

constexpr uint64_t kSectionAlign = 64;

// Buffered whole-file writer; sections are appended with alignment pads.
class FileWriter {
 public:
  void Pad() {
    while (bytes_.size() % kSectionAlign != 0) bytes_.push_back(0);
  }

  uint64_t offset() const { return bytes_.size(); }

  void Append(const void* data, size_t size) {
    if (size == 0) return;
    const uint8_t* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  void AppendU32(uint32_t v) { Append(&v, sizeof v); }

  void AppendString(const std::string& s) {
    AppendU32(uint32_t(s.size()));
    Append(s.data(), s.size());
  }

  void PatchHeader(const SnapshotHeader& header) {
    std::memcpy(bytes_.data(), &header, sizeof header);
  }

  Status WriteTo(const std::string& path) {
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
      return InvalidArgumentError("cannot open snapshot file for writing: " +
                                  tmp);
    }
    // fsync before close *and* rename: a crash between rename and the
    // data reaching disk would otherwise leave a live snapshot full of
    // zero pages — exactly the torn state the CRCs exist to catch, but
    // better never to create it.
    const size_t written = std::fwrite(bytes_.data(), 1, bytes_.size(), f);
    bool flushed = written == bytes_.size() && std::fflush(f) == 0 &&
                   ::fsync(fileno(f)) == 0;
    flushed = std::fclose(f) == 0 && flushed;
    if (!flushed || std::rename(tmp.c_str(), path.c_str()) != 0) {
      std::remove(tmp.c_str());
      return InternalError("short write while saving snapshot: " + path);
    }
    // Make the rename itself durable: fsync the parent directory.
    size_t slash = path.rfind('/');
    std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
    if (dir.empty()) dir = "/";
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0) {
      return InternalError("cannot open snapshot directory for fsync: " + dir);
    }
    const bool dir_synced = ::fsync(dfd) == 0;
    ::close(dfd);
    if (!dir_synced) {
      return InternalError("fsync failed on snapshot directory: " + dir);
    }
    return Status::Ok();
  }

  std::vector<uint8_t> bytes_;
};

// Bounds-checked reader over the symbol blob of a mapped snapshot.
class BlobReader {
 public:
  BlobReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadU32(uint32_t& out) {
    if (pos_ + 4 > size_) return false;
    std::memcpy(&out, data_ + pos_, 4);
    pos_ += 4;
    return true;
  }

  bool ReadString(std::string& out) {
    uint32_t len = 0;
    if (!ReadU32(len) || pos_ + len > size_) return false;
    out.assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace

// Privileged access to FactIndex storage (friend; see fact_index.h).
class SnapshotIO {
 public:
  static Status Write(FactIndex& index, const World& world,
                      const std::string& path, uint32_t flags) {
    // Freeze everything, tails included: the file stores only the frozen
    // tier, so after this pass every posting list is (offset, count).
    index.Freeze(/*min_list_size=*/1);

    FileWriter out;
    SnapshotHeader header{};
    std::memcpy(header.magic, kMagic, sizeof kMagic);
    header.version = kSnapshotFormatVersion;
    header.flags = flags;
    header.atom_count = index.size();
    header.pred_count = uint32_t(index.by_predicate_.size());
    header.arg_count = uint32_t(index.by_argument_.size());
    out.Append(&header, sizeof header);

    out.Pad();
    header.atoms_offset = out.offset();
    if (index.mapped_count_ > 0) {
      out.Append(index.mapped_atoms_.data(),
                 size_t(index.mapped_count_) * sizeof(Atom));
    }
    out.Append(index.atoms_.data(), index.atoms_.size() * sizeof(Atom));

    out.Pad();
    header.arena_offset = out.offset();
    header.arena_size = index.arena_.size();
    out.Append(index.arena_.data(), index.arena_.size());

    out.Pad();
    header.preds_offset = out.offset();
    for (const auto& [pred, slot] : index.by_predicate_) {
      FLOQ_CHECK(slot.tail.empty());
      const PredTableEntry entry{pred, slot.frozen_offset, slot.frozen_count,
                                 0};
      out.Append(&entry, sizeof entry);
    }

    out.Pad();
    header.args_offset = out.offset();
    for (const auto& [key, slot] : index.by_argument_) {
      FLOQ_CHECK(slot.tail.empty());
      const ArgTableEntry entry{key, slot.frozen_offset, slot.frozen_count};
      out.Append(&entry, sizeof entry);
    }

    out.Pad();
    header.symbols_offset = out.offset();
    out.AppendU32(world.constant_count());
    for (uint32_t i = 0; i < world.constant_count(); ++i) {
      out.AppendString(world.NameOf(Term::Constant(i)));
    }
    out.AppendU32(world.variable_count());
    for (uint32_t i = 0; i < world.variable_count(); ++i) {
      out.AppendString(world.NameOf(Term::Variable(i)));
    }
    out.AppendU32(world.predicates().size());
    for (uint32_t i = 0; i < world.predicates().size(); ++i) {
      out.AppendString(world.predicates().NameOf(i));
      out.AppendU32(uint32_t(world.predicates().ArityOf(i)));
    }
    out.AppendU32(world.null_count());
    header.symbols_size = out.offset() - header.symbols_offset;

    header.symbols_crc = Crc32(out.bytes_.data() + header.symbols_offset,
                               size_t(header.symbols_size));
    header.header_crc = 0;
    header.header_crc = Crc32(&header, sizeof header);
    out.PatchHeader(header);
    return out.WriteTo(path);
  }

  static Result<SnapshotInfo> Load(const std::string& path, World& world,
                                   FactIndex& index) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return NotFoundError("cannot open snapshot: " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(SnapshotHeader))) {
      ::close(fd);
      return InvalidArgumentError("snapshot too small: " + path);
    }
    const size_t file_size = size_t(st.st_size);
    void* raw = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (raw == MAP_FAILED) {
      return InternalError("mmap failed for snapshot: " + path);
    }
    auto mapping = std::make_shared<MappedFile>();
    mapping->data = static_cast<const uint8_t*>(raw);
    mapping->size = file_size;
    const uint8_t* base = mapping->data;

    SnapshotHeader header;
    std::memcpy(&header, base, sizeof header);
    if (std::memcmp(header.magic, kMagic, sizeof kMagic) != 0) {
      return InvalidArgumentError("not a floq snapshot: " + path);
    }
    if (header.version != kSnapshotFormatVersion) {
      return InvalidArgumentError(
          "snapshot version " + std::to_string(header.version) +
          " unsupported (expected " +
          std::to_string(kSnapshotFormatVersion) + "): " + path);
    }
    {
      SnapshotHeader checked = header;
      const uint32_t stored = checked.header_crc;
      checked.header_crc = 0;
      if (Crc32(&checked, sizeof checked) != stored) {
        return InvalidArgumentError("snapshot header CRC mismatch: " + path);
      }
    }
    auto section_ok = [&](uint64_t offset, uint64_t size) {
      return offset <= file_size && size <= file_size - offset;
    };
    if (!section_ok(header.atoms_offset,
                    uint64_t(header.atom_count) * sizeof(Atom)) ||
        !section_ok(header.arena_offset, header.arena_size) ||
        !section_ok(header.preds_offset,
                    uint64_t(header.pred_count) * sizeof(PredTableEntry)) ||
        !section_ok(header.args_offset,
                    uint64_t(header.arg_count) * sizeof(ArgTableEntry)) ||
        !section_ok(header.symbols_offset, header.symbols_size)) {
      return InvalidArgumentError("snapshot sections out of bounds: " + path);
    }
    if (Crc32(base + header.symbols_offset, size_t(header.symbols_size)) !=
        uint32_t(header.symbols_crc)) {
      return InvalidArgumentError("snapshot symbol table CRC mismatch: " +
                                  path);
    }

    // Restore the symbol tables. Interning must reproduce the stored ids
    // exactly — the Term encodings in the atom array depend on them — so
    // the target world must be fresh or already identical.
    BlobReader blob(base + header.symbols_offset, header.symbols_size);
    uint32_t count = 0;
    std::string name;
    auto corrupt = [&]() {
      return InvalidArgumentError("snapshot symbol table corrupt: " + path);
    };
    if (!blob.ReadU32(count)) return corrupt();
    for (uint32_t i = 0; i < count; ++i) {
      if (!blob.ReadString(name)) return corrupt();
      if (world.MakeConstant(name) != Term::Constant(i)) {
        return FailedPreconditionError(
            "snapshot constant '" + name +
            "' does not intern at its stored id; load into a fresh World");
      }
    }
    if (!blob.ReadU32(count)) return corrupt();
    for (uint32_t i = 0; i < count; ++i) {
      if (!blob.ReadString(name)) return corrupt();
      if (world.MakeVariable(name) != Term::Variable(i)) {
        return FailedPreconditionError(
            "snapshot variable '" + name +
            "' does not intern at its stored id; load into a fresh World");
      }
    }
    if (!blob.ReadU32(count)) return corrupt();
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t arity = 0;
      if (!blob.ReadString(name) || !blob.ReadU32(arity)) return corrupt();
      if (world.predicates().Intern(name, int(arity)) != PredicateId(i)) {
        return FailedPreconditionError(
            "snapshot predicate '" + name +
            "' does not intern at its stored id; load into a fresh World");
      }
    }
    uint32_t null_count = 0;
    if (!blob.ReadU32(null_count)) return corrupt();
    world.AdvanceNullCounter(null_count);

    // Validate posting tables before mutating the index, so an error
    // leaves the caller's index untouched.
    const auto* preds =
        reinterpret_cast<const PredTableEntry*>(base + header.preds_offset);
    const auto* args =
        reinterpret_cast<const ArgTableEntry*>(base + header.args_offset);
    for (uint32_t i = 0; i < header.pred_count; ++i) {
      if (preds[i].frozen_count > 0 &&
          preds[i].frozen_offset >= header.arena_size) {
        return InvalidArgumentError("snapshot posting offset out of bounds: " +
                                    path);
      }
    }
    for (uint32_t i = 0; i < header.arg_count; ++i) {
      if (args[i].frozen_count > 0 &&
          args[i].frozen_offset >= header.arena_size) {
        return InvalidArgumentError("snapshot posting offset out of bounds: " +
                                    path);
      }
    }

    // Point the index at the mapping. The id map is rebuilt lazily (see
    // FactIndex::EnsureIds) so a load touches no atom pages up front.
    index.Clear();
    index.mapped_atoms_ = std::span<const Atom>(
        reinterpret_cast<const Atom*>(base + header.atoms_offset),
        header.atom_count);
    index.mapped_count_ = header.atom_count;
    index.mapped_owner_ = mapping;
    index.arena_.AdoptMapped(base + header.arena_offset, header.arena_size,
                             mapping);
    index.ids_built_ = header.atom_count == 0;

    for (uint32_t i = 0; i < header.pred_count; ++i) {
      index.by_predicate_[preds[i].predicate] = FactIndex::PostingSlot{
          preds[i].frozen_offset, preds[i].frozen_count, {}};
    }
    for (uint32_t i = 0; i < header.arg_count; ++i) {
      index.by_argument_[args[i].key] = FactIndex::PostingSlot{
          args[i].frozen_offset, args[i].frozen_count, {}};
    }

    SnapshotInfo info;
    info.version = header.version;
    info.flags = header.flags;
    info.atom_count = header.atom_count;
    return info;
  }
};

Status WriteFactIndexSnapshot(FactIndex& index, const World& world,
                              const std::string& path, uint32_t flags) {
  return SnapshotIO::Write(index, world, path, flags);
}

Result<SnapshotInfo> LoadFactIndexSnapshot(const std::string& path,
                                           World& world, FactIndex& index) {
  return SnapshotIO::Load(path, world, index);
}

}  // namespace floq
