#ifndef FLOQ_DATALOG_EVALUATOR_H_
#define FLOQ_DATALOG_EVALUATOR_H_

#include <span>
#include <vector>

#include "datalog/database.h"
#include "datalog/match.h"
#include "datalog/rule.h"
#include "query/conjunctive_query.h"
#include "util/status.h"

// Bottom-up Datalog evaluation (semi-naive) and conjunctive-query
// evaluation. This is the substrate used to saturate F-logic Lite
// knowledge bases under the Datalog fragment of Sigma_FL, and the
// independent oracle the property tests use to validate containment
// verdicts on concrete databases.

namespace floq {

struct EvalOptions {
  /// Abort with kResourceExhausted when the database would exceed this.
  uint64_t max_facts = 50'000'000;
  /// Optional resource governor (not owned): checked per derived fact and
  /// threaded into body matching. A trip aborts the fixpoint with
  /// kDeadlineExceeded or kCancelled.
  ExecGovernor* governor = nullptr;
};

/// Saturates `db` under `rules` (to fixpoint) using semi-naive evaluation.
/// Returns the number of newly derived facts.
Result<uint64_t> SemiNaiveFixpoint(Database& db, std::span<const Rule> rules,
                                   const EvalOptions& options = {});

/// Evaluates a conjunctive query over the database: all distinct answer
/// tuples (instantiations of the query head). The query is *not* evaluated
/// under constraints; saturate the database first if Sigma_FL semantics is
/// wanted.
std::vector<std::vector<Term>> EvaluateQuery(const Database& db,
                                             const ConjunctiveQuery& query,
                                             MatchStats* stats = nullptr);

/// True iff `tuple` is among the answers of `query` on `db`.
bool QueryReturns(const Database& db, const ConjunctiveQuery& query,
                  const std::vector<Term>& tuple);

/// Attempts to extend `subst` so that it maps pattern atom `p` onto `fact`
/// (same predicate and arity required). On failure `subst` is unchanged.
bool TryUnifyAtom(const Atom& p, const Atom& fact, Substitution& subst);

}  // namespace floq

#endif  // FLOQ_DATALOG_EVALUATOR_H_
