#ifndef FLOQ_DATALOG_BINDING_TRAIL_H_
#define FLOQ_DATALOG_BINDING_TRAIL_H_

#include <cstdint>
#include <vector>

#include "term/term.h"
#include "util/check.h"

// Flat binding store for the compiled homomorphism kernel. Pattern
// variables are renumbered to dense slots by CompiledPattern, so the
// search-time substitution becomes a plain array of Terms indexed by slot
// plus an undo trail of slot ids — no hashing, no map mutation, no Erase.
// The invalid default-constructed Term is the "unbound" sentinel.

namespace floq {

class BindingTrail {
 public:
  BindingTrail() = default;
  explicit BindingTrail(size_t num_slots) { Reset(num_slots); }

  /// Re-initializes to `num_slots` unbound slots, reusing capacity (the
  /// kernel keeps one trail per thread across searches).
  void Reset(size_t num_slots) {
    bindings_.assign(num_slots, Term());
    trail_.clear();
    trail_.reserve(num_slots);
  }

  bool Bound(uint16_t slot) const { return bindings_[slot].valid(); }

  /// The image of `slot`; only meaningful when Bound(slot).
  Term Get(uint16_t slot) const { return bindings_[slot]; }

  /// Binds an *unbound* slot and records it for undo.
  void Bind(uint16_t slot, Term value) {
    FLOQ_CHECK(!bindings_[slot].valid());
    bindings_[slot] = value;
    trail_.push_back(slot);
  }

  /// Checkpoint for UndoTo: the current trail depth.
  size_t Mark() const { return trail_.size(); }

  /// Unbinds every slot bound since `mark` (most recent first).
  void UndoTo(size_t mark) {
    while (trail_.size() > mark) {
      bindings_[trail_.back()] = Term();
      trail_.pop_back();
    }
  }

  /// The slots bound so far, in binding order (the kernel reads the
  /// suffix since a mark to invalidate its selectivity cache before
  /// undoing).
  const std::vector<uint16_t>& trail() const { return trail_; }

  size_t num_slots() const { return bindings_.size(); }

 private:
  std::vector<Term> bindings_;
  std::vector<uint16_t> trail_;
};

}  // namespace floq

#endif  // FLOQ_DATALOG_BINDING_TRAIL_H_
