#include "datalog/evaluator.h"

#include <set>

#include "util/strings.h"

namespace floq {

bool TryUnifyAtom(const Atom& p, const Atom& fact, Substitution& subst) {
  if (p.predicate() != fact.predicate() || p.arity() != fact.arity()) {
    return false;
  }
  // Only syntactic pattern variables are bindable; images of bindings are
  // compared even when they are variables (a chase treats the chased
  // query's variables as values).
  std::vector<Term> bound_here;
  for (int i = 0; i < p.arity(); ++i) {
    Term arg = p.arg(i);
    if (arg.IsVariable() && !subst.Binds(arg)) {
      subst.Bind(arg, fact.arg(i));
      bound_here.push_back(arg);
    } else if (subst.Apply(arg) != fact.arg(i)) {
      for (Term var : bound_here) subst.Erase(var);
      return false;
    }
  }
  return true;
}

namespace {

// Matches `rule`'s body with atom `pivot_index` pinned to fact `fact`, the
// rest anywhere in `index`; appends the instantiated heads to `out`.
void MatchWithPivot(const Rule& rule, size_t pivot_index, const Atom& fact,
                    const FactIndex& index, std::vector<Atom>& out,
                    const MatchOptions& match_options) {
  Substitution subst;
  if (!TryUnifyAtom(rule.body[pivot_index], fact, subst)) return;

  std::vector<Atom> rest;
  rest.reserve(rule.body.size() - 1);
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (i != pivot_index) rest.push_back(rule.body[i]);
  }

  MatchConjunction(
      rest, index, subst,
      [&](const Substitution& match) {
        out.push_back(match.Apply(rule.head));
        return true;
      },
      /*stats=*/nullptr, match_options);
}

Status GovernorError(const ExecGovernor& governor) {
  return governor.trip() == TripReason::kCancelled
             ? CancelledError("fixpoint cancelled")
             : DeadlineExceededError("fixpoint deadline exceeded");
}

}  // namespace

Result<uint64_t> SemiNaiveFixpoint(Database& db, std::span<const Rule> rules,
                                   const EvalOptions& options) {
  uint64_t derived = 0;
  MatchOptions match_options;
  match_options.governor = options.governor;

  // Round 0 (naive): every rule against the full database.
  std::vector<Atom> pending;
  for (const Rule& rule : rules) {
    MatchConjunction(
        rule.body, db.index(), Substitution(),
        [&](const Substitution& match) {
          pending.push_back(match.Apply(rule.head));
          return true;
        },
        /*stats=*/nullptr, match_options);
  }

  // Delta rounds: each new derivation must use at least one fact from the
  // previous round's delta.
  std::vector<Atom> delta;
  for (;;) {
    if (options.governor != nullptr && !options.governor->CheckNow()) {
      return GovernorError(*options.governor);
    }
    delta.clear();
    for (const Atom& fact : pending) {
      if (options.governor != nullptr && !options.governor->Tick()) {
        return GovernorError(*options.governor);
      }
      if (db.Insert(fact)) {
        ++derived;
        delta.push_back(fact);
        if (db.size() > options.max_facts) {
          return ResourceExhaustedError(
              StrCat("fixpoint exceeded max_facts=", options.max_facts));
        }
      }
    }
    if (delta.empty()) return derived;

    pending.clear();
    for (const Rule& rule : rules) {
      for (size_t pivot = 0; pivot < rule.body.size(); ++pivot) {
        for (const Atom& fact : delta) {
          MatchWithPivot(rule, pivot, fact, db.index(), pending,
                         match_options);
        }
      }
    }
  }
}

std::vector<std::vector<Term>> EvaluateQuery(const Database& db,
                                             const ConjunctiveQuery& query,
                                             MatchStats* stats) {
  std::vector<std::vector<Term>> answers;
  std::set<std::vector<Term>> seen;
  MatchConjunction(
      query.body(), db.index(), Substitution(),
      [&](const Substitution& match) {
        std::vector<Term> tuple = match.ApplyToTerms(query.head());
        if (seen.insert(tuple).second) answers.push_back(std::move(tuple));
        return true;
      },
      stats);
  return answers;
}

bool QueryReturns(const Database& db, const ConjunctiveQuery& query,
                  const std::vector<Term>& tuple) {
  if (tuple.size() != size_t(query.arity())) return false;
  bool found = false;
  MatchConjunction(query.body(), db.index(), Substitution(),
                   [&](const Substitution& match) {
                     if (match.ApplyToTerms(query.head()) == tuple) {
                       found = true;
                       return false;
                     }
                     return true;
                   });
  return found;
}

}  // namespace floq
