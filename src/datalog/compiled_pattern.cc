#include "datalog/compiled_pattern.h"

#include <algorithm>

#include "datalog/binding_trail.h"
#include "datalog/posting_block.h"
#include "util/check.h"

namespace floq {

namespace {

// Below this driver-list size a k-way leapfrog intersection costs more
// than scanning the smallest list and letting unification reject
// mismatches: rejection is O(1)-ish per candidate (first mismatching
// position), so the gallops only pay off once they can skip *runs* of a
// long driver list. Chase-sized indexes keep most argument lists well
// under this, so on the generator corpus the cutoff mostly routes to the
// scan — measured in EXPERIMENTS.md E11; see DESIGN.md §9.
constexpr size_t kIntersectCutoff = 128;

}  // namespace

void CompiledPattern::Compile(std::span<const Atom> pattern,
                              const FactIndex& index,
                              const Substitution& initial,
                              MatchStats* stats) {
  atoms_.clear();
  slot_vars_.clear();
  impossible_ = false;
  // Reject pass: before allocating anything, scan for an atom whose
  // predicate bucket or constant-position posting list is empty. Dead
  // patterns are the common case in containment search (most probes do
  // not embed), and this makes them allocation-free: the whole "search"
  // is a handful of hash probes. The re-probe of surviving constant
  // positions below is one hash lookup each, noise next to the search a
  // live pattern then runs.
  for (const Atom& p : pattern) {
    if (index.WithPredicate(p.predicate()).empty()) {
      impossible_ = true;
      return;
    }
    for (int i = 0; i < p.arity(); ++i) {
      Term arg = p.arg(i);
      if (arg.IsVariable() && initial.Lookup(arg) == nullptr) continue;
      if (stats != nullptr) ++stats->index_probes;
      if (index.WithArgument(p.predicate(), i, initial.Apply(arg)).empty()) {
        impossible_ = true;
        return;
      }
    }
  }

  atoms_.reserve(pattern.size());
  for (const Atom& p : pattern) {
    CompiledAtom ca;
    ca.predicate = p.predicate();
    ca.arity = uint8_t(p.arity());
    ca.static_best = index.WithPredicate(p.predicate());
    ca.static_best_const_index = -1;
    for (int i = 0; i < p.arity(); ++i) {
      Term arg = p.arg(i);
      CompiledArg& slot_arg = ca.args[i];
      if (arg.IsVariable() && initial.Lookup(arg) == nullptr) {
        // Renumber to a dense slot. Linear scan: patterns have a handful
        // of distinct variables, and this runs once per search (a hash
        // map's allocation costs more than the scan saves).
        auto it = std::find(slot_vars_.begin(), slot_vars_.end(), arg);
        uint16_t slot = uint16_t(it - slot_vars_.begin());
        if (it == slot_vars_.end()) {
          FLOQ_CHECK_LT(slot_vars_.size(), size_t(UINT16_MAX));
          slot_vars_.push_back(arg);
        }
        slot_arg.kind = CompiledArg::Kind::kSlot;
        slot_arg.slot = slot;
        for (int j = 0; j < i; ++j) {
          if (ca.args[j].kind == CompiledArg::Kind::kSlot &&
              ca.args[j].slot == slot) {
            slot_arg.repeated_in_atom = true;
            break;
          }
        }
        ca.slot_positions[ca.num_slot_positions++] = {uint8_t(i), slot};
      } else {
        // A constant, a null, or a variable the initial substitution
        // already pins: its posting list is fixed for the whole search.
        // The reject pass proved it nonempty.
        slot_arg.kind = CompiledArg::Kind::kConstant;
        slot_arg.value = initial.Apply(arg);
        const PostingView ids =
            index.WithArgument(p.predicate(), i, slot_arg.value);
        ca.const_lists[ca.num_const_lists] = ids;
        // <= so ties prefer the argument list: it is a subset of the
        // predicate bucket, so unification rejects fewer candidates.
        if (ids.size() <= ca.static_best.size()) {
          ca.static_best = ids;
          ca.static_best_const_index = int8_t(ca.num_const_lists);
        }
        ++ca.num_const_lists;
      }
    }
    atoms_.push_back(ca);
  }
}

namespace {

// Cached candidate estimate for one pattern atom, valid as long as none
// of its slots was bound or unbound since (tracked by version sums:
// slot_version is bumped on every bind *and* undo, so a version-sum
// match proves the atom's binding state is unchanged and the node can
// reuse the cached lists without re-probing the index). Within a stale
// atom, caching is per *position*: binding one slot of a three-slot
// atom re-probes one list, not three — index probes are the dominant
// per-node cost, and sibling nodes invalidate shared atoms constantly.
struct AtomCache {
  uint64_t version = ~uint64_t{0};  // sentinel: always stale initially
  uint32_t best_size = 0;
  PostingView best;
  // Which lists[] entry best is, or -1 when best is the predicate bucket
  // (then it participates in no intersection skip).
  int8_t best_index = -1;
  // All constraining posting views (constant + bound-slot positions),
  // the intersection input. At most one view per argument position.
  uint8_t num_lists = 0;
  std::array<PostingView, kMaxArity> lists;
  // Per-slot-position memo, indexed like CompiledAtom::slot_positions:
  // the view probed for that position and the slot version it was probed
  // at (pos_has_list marks positions whose slot was unbound then — a
  // PostingView has no null state, so boundness needs its own flag).
  std::array<PostingView, kMaxArity> pos_list{};
  std::array<bool, kMaxArity> pos_has_list{};
  std::array<uint64_t, kMaxArity> pos_version{};
};

// Per-thread reusable kernel state. Containment search runs millions of
// tiny searches (most die after a handful of nodes), so per-search
// malloc/free of the compile output and matcher arrays would rival the
// search itself; keeping one scratch per thread makes the steady state
// allocation-free. `in_use` guards re-entrancy: an on_match callback that
// starts another search gets a fresh stack-local scratch instead.
struct KernelScratch {
  CompiledPattern pattern;
  BindingTrail trail;
  std::vector<uint64_t> slot_version;
  std::vector<AtomCache> cache;
  std::vector<Term> emitted;
  std::vector<uint16_t> remaining;
  bool in_use = false;
};

// The trail-based backtracking search over a compiled pattern. Mirrors
// the legacy Matcher in match.cc node for node (same dynamic atom
// ordering, same candidate semantics) so the two enumerate identical
// match sets — asserted by tests/kernel_test.cc.
class CompiledMatcher {
 public:
  CompiledMatcher(const CompiledPattern& pattern, const FactIndex& index,
                  const Substitution& initial,
                  FunctionRef<bool(const Substitution&)> on_match,
                  MatchStats* stats, const MatchOptions& options,
                  KernelScratch& scratch)
      : pattern_(pattern),
        index_(index),
        on_match_(on_match),
        stats_(stats),
        options_(options),
        trail_(scratch.trail),
        slot_version_(scratch.slot_version),
        cache_(scratch.cache),
        emit_(initial),
        emitted_(scratch.emitted),
        remaining_(scratch.remaining) {
    size_t num_slots = pattern.num_slots();
    size_t num_atoms = pattern.atoms().size();
    trail_.Reset(num_slots);
    slot_version_.assign(num_slots, 0);
    cache_.assign(num_atoms, AtomCache{});
    emitted_.assign(num_slots, Term());
    remaining_.clear();
    remaining_.reserve(num_atoms);
    for (size_t i = 0; i < num_atoms; ++i) remaining_.push_back(uint16_t(i));
  }

  bool Run() { return Recurse(); }

 private:

  uint64_t VersionOf(const CompiledAtom& atom) const {
    uint64_t v = 0;
    for (uint8_t i = 0; i < atom.num_slot_positions; ++i) {
      v += slot_version_[atom.slot_positions[i].second];
    }
    return v;
  }

  void Refresh(uint16_t atom_index, uint64_t version) {
    const CompiledAtom& atom = pattern_.atoms()[atom_index];
    AtomCache& cache = cache_[atom_index];
    cache.version = version;
    cache.num_lists = 0;
    const PostingView* best = &atom.static_best;
    // const_lists land at the same indexes in cache.lists, so the compile-
    // time best index carries over directly.
    int8_t best_index = atom.static_best_const_index;
    for (uint8_t i = 0; i < atom.num_const_lists; ++i) {
      cache.lists[cache.num_lists++] = atom.const_lists[i];
    }
    for (uint8_t i = 0; i < atom.num_slot_positions; ++i) {
      auto [position, slot] = atom.slot_positions[i];
      // The zero-initialized memo is already valid: slot version 0 means
      // "never bound", and the memo's default for it is "no list".
      uint64_t slot_version = slot_version_[slot];
      if (cache.pos_version[i] != slot_version) {
        cache.pos_version[i] = slot_version;
        if (trail_.Bound(slot)) {
          if (stats_ != nullptr) ++stats_->index_probes;
          cache.pos_list[i] = index_.WithArgument(atom.predicate, position,
                                                  trail_.Get(slot));
          cache.pos_has_list[i] = true;
        } else {
          cache.pos_has_list[i] = false;
        }
      }
      if (!cache.pos_has_list[i]) continue;
      const PostingView& ids = cache.pos_list[i];
      if (ids.size() < best->size()) {
        best = &ids;
        best_index = int8_t(cache.num_lists);
      }
      cache.lists[cache.num_lists++] = ids;
    }
    cache.best = *best;
    cache.best_index = best_index;
    cache.best_size = uint32_t(best->size());
  }

  void BindSlot(uint16_t slot, Term value) {
    trail_.Bind(slot, value);
    ++slot_version_[slot];
  }

  void UndoToMark(size_t mark) {
    const std::vector<uint16_t>& trail = trail_.trail();
    for (size_t i = mark; i < trail.size(); ++i) ++slot_version_[trail[i]];
    trail_.UndoTo(mark);
  }

  bool Unify(const CompiledAtom& atom, const Atom& fact, size_t mark) {
    for (uint8_t i = 0; i < atom.arity; ++i) {
      const CompiledArg& arg = atom.args[i];
      Term image = fact.arg(i);
      if (arg.kind == CompiledArg::Kind::kConstant) {
        if (arg.value != image) {
          UndoToMark(mark);
          return false;
        }
      } else if (trail_.Bound(arg.slot)) {
        if (trail_.Get(arg.slot) != image) {
          UndoToMark(mark);
          return false;
        }
      } else {
        BindSlot(arg.slot, image);
      }
    }
    return true;
  }

  // The Substitution handed to the callback. Built incrementally: at a
  // full match every slot is bound, and consecutive matches of a DFS
  // enumeration differ only in their deepest bindings, so diffing against
  // the previously emitted assignment turns the per-match cost from
  // "rebuild a hash map" into a slot-array scan plus a hash update per
  // *changed* slot. Callbacks see the same aliasing contract as the
  // legacy matcher's live substitution: valid for the duration of the
  // call, copy to retain.
  const Substitution& Materialize() {
    for (uint16_t slot = 0; slot < uint16_t(emitted_.size()); ++slot) {
      Term value = trail_.Get(slot);
      if (emitted_[slot] != value) {
        emit_.Bind(pattern_.slot_var(slot), value);
        emitted_[slot] = value;
      }
    }
    return emit_;
  }

  bool Recurse() {
    if (stats_ != nullptr) ++stats_->nodes_visited;
    // A governor trip unwinds exactly like a callback stop (every frame
    // undoes its trail mark); the caller distinguishes the two by
    // inspecting governor->tripped().
    if (options_.governor != nullptr && !options_.governor->Tick()) {
      return false;
    }
    if (remaining_.empty()) {
      if (stats_ != nullptr) ++stats_->matches_found;
      return on_match_(Materialize());
    }

    // Most-constrained-first over *cached* candidate counts: only atoms
    // whose slots changed since their last estimate re-probe the index.
    size_t best_slot = 0;
    if (options_.most_constrained_first) {
      uint32_t best_count = UINT32_MAX;
      for (size_t slot = 0; slot < remaining_.size(); ++slot) {
        uint16_t atom_index = remaining_[slot];
        uint64_t version = VersionOf(pattern_.atoms()[atom_index]);
        if (cache_[atom_index].version != version) {
          Refresh(atom_index, version);
        }
        uint32_t count = cache_[atom_index].best_size;
        if (count < best_count) {
          best_count = count;
          best_slot = slot;
          if (count == 0) return true;  // dead end, enumerate siblings
        }
      }
    } else {
      uint16_t atom_index = remaining_[0];
      uint64_t version = VersionOf(pattern_.atoms()[atom_index]);
      if (cache_[atom_index].version != version) {
        Refresh(atom_index, version);
      }
    }

    uint16_t atom_index = remaining_[best_slot];
    remaining_.erase(remaining_.begin() + best_slot);
    const CompiledAtom& atom = pattern_.atoms()[atom_index];
    const AtomCache& cache = cache_[atom_index];

    // Lazy k-way intersection: drive the smallest list and leapfrog a
    // monotone cursor through each other constraining list, skipping
    // candidates absent from any of them. Lazy (instead of materializing
    // the full intersection up front) because first-match searches and
    // callback-stopped enumerations break out of the loop early — work
    // spent intersecting ids the loop never reaches is pure waste. When
    // any other list runs out, no later driver id can qualify either.
    PostingCursor driver(cache.best);
    std::array<PostingCursor, kMaxArity> others;
    size_t num_others = 0;
    if (options_.use_list_intersection && cache.num_lists >= 2 &&
        cache.best_size > kIntersectCutoff) {
      for (uint8_t i = 0; i < cache.num_lists; ++i) {
        if (int8_t(i) == cache.best_index) continue;
        others[num_others++] = PostingCursor(cache.lists[i]);
      }
      if (stats_ != nullptr && num_others > 0) ++stats_->intersect_nodes;
    }

    // Tick per driver iteration: the leapfrog loop can gallop through
    // long posting lists without ever reaching Recurse(), so deadline
    // enforcement must live inside the intersection itself. Batched
    // through a register counter: the hot loop pays one local decrement,
    // and the governor's member state is touched once per kGovernorBatch
    // iterations (still far finer than its kStride clock amortization).
    constexpr uint32_t kGovernorBatch = 64;
    ExecGovernor* const governor = options_.governor;
    uint32_t governor_countdown = kGovernorBatch;
    bool keep_going = true;
    while (!driver.AtEnd()) {
      if (governor != nullptr && --governor_countdown == 0) {
        governor_countdown = kGovernorBatch;
        if (!governor->TickBatch(kGovernorBatch)) {
          keep_going = false;
          break;
        }
      }
      uint32_t fact_id = driver.value();
      bool present = true;
      bool exhausted = false;
      for (size_t i = 0; i < num_others; ++i) {
        PostingCursor& other = others[i];
        if (!other.SeekGE(fact_id)) {
          exhausted = true;
          break;
        }
        const uint32_t found = other.value();
        if (found != fact_id) {
          // Leapfrog: every driver id below the other list's next value
          // fails membership too, so jump the driver cursor straight to
          // it. This run-skipping is what lets intersection beat a plain
          // scan-and-let-unification-reject loop — over the frozen tier
          // both seeks skip whole compressed blocks via their max-ids.
          present = false;
          driver.Next();
          if (!driver.SeekGE(found)) exhausted = true;
          if (stats_ != nullptr) ++stats_->gallop_skips;
          break;
        }
        other.Next();
      }
      if (exhausted) break;
      if (!present) continue;
      size_t mark = trail_.Mark();
      if (Unify(atom, index_.at(fact_id), mark)) {
        keep_going = Recurse();
        UndoToMark(mark);
      }
      if (!keep_going) break;
      driver.Next();
    }

    remaining_.insert(remaining_.begin() + best_slot, atom_index);
    return keep_going;
  }

  const CompiledPattern& pattern_;
  const FactIndex& index_;
  FunctionRef<bool(const Substitution&)> on_match_;
  MatchStats* stats_;
  MatchOptions options_;
  // Search state, borrowed from the per-thread KernelScratch.
  BindingTrail& trail_;
  std::vector<uint64_t>& slot_version_;
  std::vector<AtomCache>& cache_;
  // Emission state for Materialize(): the last substitution handed to the
  // callback and, per slot, the value it held then (invalid = never).
  Substitution emit_;
  std::vector<Term>& emitted_;
  std::vector<uint16_t>& remaining_;
};

}  // namespace

bool MatchCompiled(std::span<const Atom> pattern, const FactIndex& index,
                   const Substitution& initial,
                   FunctionRef<bool(const Substitution&)> on_match,
                   MatchStats* stats, const MatchOptions& options) {
  thread_local KernelScratch tls;
  KernelScratch local;  // empty vectors: only filled if re-entered
  KernelScratch& scratch = tls.in_use ? local : tls;
  scratch.in_use = true;
  struct Release {
    bool* flag;
    ~Release() { *flag = false; }
  } release{&scratch.in_use};

  scratch.pattern.Compile(pattern, index, initial, stats);
  if (scratch.pattern.impossible()) {
    if (stats != nullptr) ++stats->reject_prepass_hits;
    return true;  // no matches, not stopped early
  }
  return CompiledMatcher(scratch.pattern, index, initial, on_match, stats,
                         options, scratch)
      .Run();
}

}  // namespace floq
