#include "datalog/posting_intersect.h"

#include <algorithm>

#include "util/check.h"

namespace floq {

size_t GallopToLowerBound(std::span<const uint32_t> list, size_t begin,
                          uint32_t target) {
  const size_t n = list.size();
  if (begin >= n || list[begin] >= target) return begin;
  // Exponential probe: find the first doubling offset that overshoots.
  size_t step = 1;
  size_t lo = begin;  // invariant: list[lo] < target
  while (lo + step < n && list[lo + step] < target) {
    lo += step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, n);  // list[hi] >= target or hi == n
  // Binary search in (lo, hi].
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void IntersectPostingLists(std::span<const std::vector<uint32_t>* const> lists,
                           std::vector<uint32_t>& out) {
  out.clear();
  FLOQ_CHECK(!lists.empty());
  if (lists.size() == 1) {
    out.assign(lists[0]->begin(), lists[0]->end());
    return;
  }

  // Drive from the smallest list; keep the rest in a small local array
  // ordered by size so the most selective lists reject candidates first.
  constexpr size_t kMaxLists = 16;
  FLOQ_CHECK_LE(lists.size(), kMaxLists);
  const std::vector<uint32_t>* ordered[kMaxLists];
  std::copy(lists.begin(), lists.end(), ordered);
  std::sort(ordered, ordered + lists.size(),
            [](const std::vector<uint32_t>* a, const std::vector<uint32_t>* b) {
              return a->size() < b->size();
            });

  const std::vector<uint32_t>& driver = *ordered[0];
  if (driver.empty()) return;
  out.reserve(driver.size());

  size_t cursors[kMaxLists] = {0};
  for (uint32_t id : driver) {
    bool in_all = true;
    for (size_t k = 1; k < lists.size(); ++k) {
      std::span<const uint32_t> other(*ordered[k]);
      size_t pos = GallopToLowerBound(other, cursors[k], id);
      cursors[k] = pos;
      if (pos == other.size()) return;  // other list exhausted: done
      if (other[pos] != id) {
        in_all = false;
        break;
      }
      ++cursors[k];  // id consumed; ids are strictly increasing
    }
    if (in_all) out.push_back(id);
  }
}

}  // namespace floq
