#include "datalog/posting_intersect.h"

#include <algorithm>

#include "util/check.h"

namespace floq {

size_t GallopToLowerBound(std::span<const uint32_t> list, size_t begin,
                          uint32_t target) {
  const size_t n = list.size();
  if (begin >= n || list[begin] >= target) return begin;
  // Exponential probe: find the first doubling offset that overshoots.
  size_t step = 1;
  size_t lo = begin;  // invariant: list[lo] < target
  while (lo + step < n && list[lo + step] < target) {
    lo += step;
    step <<= 1;
  }
  size_t hi = std::min(lo + step, n);  // list[hi] >= target or hi == n
  // Binary search in (lo, hi].
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (list[mid] < target) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void IntersectPostingLists(std::span<const PostingView> lists,
                           std::vector<uint32_t>& out) {
  out.clear();
  FLOQ_CHECK(!lists.empty());
  if (lists.size() == 1) {
    lists[0].Materialize(out);
    return;
  }

  // Drive from the smallest list; keep the rest in a small local array
  // ordered by size so the most selective lists reject candidates first.
  constexpr size_t kMaxLists = 16;
  FLOQ_CHECK_LE(lists.size(), kMaxLists);
  const PostingView* ordered[kMaxLists];
  for (size_t i = 0; i < lists.size(); ++i) ordered[i] = &lists[i];
  std::sort(ordered, ordered + lists.size(),
            [](const PostingView* a, const PostingView* b) {
              return a->size() < b->size();
            });

  if (ordered[0]->empty()) return;
  out.reserve(ordered[0]->size());

  PostingCursor driver(*ordered[0]);
  PostingCursor others[kMaxLists];
  for (size_t k = 1; k < lists.size(); ++k) {
    others[k] = PostingCursor(*ordered[k]);
  }

  while (!driver.AtEnd()) {
    const uint32_t id = driver.value();
    bool in_all = true;
    for (size_t k = 1; k < lists.size(); ++k) {
      if (!others[k].SeekGE(id)) return;  // other list exhausted: done
      const uint32_t found = others[k].value();
      if (found != id) {
        // Leapfrog: jump the driver to the other list's next value — no
        // id in between can be in the intersection either.
        in_all = false;
        if (!driver.SeekGE(found)) return;
        break;
      }
      others[k].Next();  // id consumed; ids are strictly increasing
    }
    if (in_all) {
      out.push_back(id);
      driver.Next();
    }
  }
}

}  // namespace floq
