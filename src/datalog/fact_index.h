#ifndef FLOQ_DATALOG_FACT_INDEX_H_
#define FLOQ_DATALOG_FACT_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "term/atom.h"

// An append-only, duplicate-free collection of atoms with hash indexes by
// predicate and by (predicate, argument position, term). This is the
// storage shared by the Datalog engine (ground facts), the chase (conjuncts
// of chase_Sigma(q), where query variables are treated as values), and the
// homomorphism search (candidate lookup).

namespace floq {

class FactIndex {
 public:
  FactIndex() = default;

  FactIndex(const FactIndex&) = delete;
  FactIndex& operator=(const FactIndex&) = delete;
  FactIndex(FactIndex&&) = default;
  FactIndex& operator=(FactIndex&&) = default;

  /// Appends `atom` unless already present. Returns the atom's id and
  /// whether it was newly inserted.
  std::pair<uint32_t, bool> Insert(const Atom& atom);

  bool Contains(const Atom& atom) const { return ids_.count(atom) > 0; }

  /// Id lookup; returns UINT32_MAX if absent.
  uint32_t IdOf(const Atom& atom) const {
    auto it = ids_.find(atom);
    return it == ids_.end() ? UINT32_MAX : it->second;
  }

  const Atom& at(uint32_t id) const { return atoms_[id]; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  uint32_t size() const { return uint32_t(atoms_.size()); }
  bool empty() const { return atoms_.empty(); }

  /// Ids of all atoms with the given predicate.
  const std::vector<uint32_t>& WithPredicate(PredicateId pred) const;

  /// Ids of all atoms with `pred` whose argument `position` equals `value`.
  const std::vector<uint32_t>& WithArgument(PredicateId pred, int position,
                                            Term value) const;

  /// Removes everything.
  void Clear();

  /// True iff every WithPredicate/WithArgument posting list is strictly
  /// increasing in fact id. This holds by construction (ids are assigned
  /// in insertion order and each Insert appends), and the homomorphism
  /// kernel's galloping intersection relies on it; Insert FLOQ_DCHECKs
  /// it per append, and this full scan backs the unit test.
  bool PostingListsSorted() const;

 private:
  // Packs (predicate, position, term) into one hash key: term in the low
  // 32 bits, position in the next 4, predicate above. An earlier packing
  // gave position only 2 bits, so position 4 of a wide predicate aliased
  // position 0 of predicate id + 1 and buckets silently collided (caught
  // by FactIndexTest.WideArityPositionsDoNotCollide).
  static uint64_t PositionKey(PredicateId pred, int position, Term value) {
    static_assert(kMaxArity <= 16, "position field packs into 4 bits");
    return (uint64_t(pred) << 36) | (uint64_t(position) << 32) |
           uint64_t(value.raw());
  }

  std::vector<Atom> atoms_;
  std::unordered_map<Atom, uint32_t, AtomHash> ids_;
  std::unordered_map<PredicateId, std::vector<uint32_t>> by_predicate_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_argument_;
};

}  // namespace floq

#endif  // FLOQ_DATALOG_FACT_INDEX_H_
