#ifndef FLOQ_DATALOG_FACT_INDEX_H_
#define FLOQ_DATALOG_FACT_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "datalog/posting_block.h"
#include "term/atom.h"

// An append-only, duplicate-free collection of atoms with hash indexes by
// predicate and by (predicate, argument position, term). This is the
// storage shared by the Datalog engine (ground facts), the chase (conjuncts
// of chase_Sigma(q), where query variables are treated as values), and the
// homomorphism search (candidate lookup).
//
// Storage is two-tier (DESIGN.md §14): every posting list is an immutable
// block-compressed frozen prefix inside one flat PostingArena plus a
// mutable append tail. Freeze() compacts tails into the frozen tier;
// lookups hand out PostingView values that consumers stream with
// PostingCursor, oblivious to the tier split. The frozen tier (and the
// atom array) can be serialized to a snapshot file and mmap-ed back —
// see datalog/snapshot.h.

namespace floq {

/// Sentinel id returned by IdOf for absent atoms.
inline constexpr uint32_t kInvalidFactId = UINT32_MAX;

class SnapshotIO;  // snapshot.cc: serialized access to the private tiers

class FactIndex {
 public:
  /// Freeze() leaves lists shorter than this as plain tails: below it the
  /// block header + metadata outweigh the delta savings, and — worse — a
  /// first-match search that reads two or three ids of a short list would
  /// pay a whole 128-id block decode for them. Half a block keeps the
  /// frozen tier to lists whose decodes amortize.
  static constexpr uint32_t kDefaultFreezeThreshold = 64;

  FactIndex() = default;

  FactIndex(const FactIndex&) = delete;
  FactIndex& operator=(const FactIndex&) = delete;
  FactIndex(FactIndex&&) = default;
  FactIndex& operator=(FactIndex&&) = default;

  /// Appends `atom` unless already present. Returns the atom's id and
  /// whether it was newly inserted.
  std::pair<uint32_t, bool> Insert(const Atom& atom);

  bool Contains(const Atom& atom) const {
    EnsureIds();
    return ids_.count(atom) > 0;
  }

  /// Id lookup; returns kInvalidFactId if absent.
  uint32_t IdOf(const Atom& atom) const {
    EnsureIds();
    auto it = ids_.find(atom);
    return it == ids_.end() ? kInvalidFactId : it->second;
  }

  const Atom& at(uint32_t id) const {
    return id < mapped_count_ ? mapped_atoms_[id] : atoms_[id - mapped_count_];
  }

  uint32_t size() const { return mapped_count_ + uint32_t(atoms_.size()); }
  bool empty() const { return size() == 0; }

  /// Random-access range over all atoms in id order (the atom array may be
  /// split between an mmap-ed snapshot prefix and the in-memory suffix, so
  /// there is no single contiguous vector to return).
  class AtomRange {
   public:
    class iterator {
     public:
      using value_type = Atom;
      using difference_type = std::ptrdiff_t;
      using reference = const Atom&;
      using pointer = const Atom*;
      using iterator_category = std::forward_iterator_tag;

      iterator() = default;
      iterator(const FactIndex* index, uint32_t id) : index_(index), id_(id) {}
      const Atom& operator*() const { return index_->at(id_); }
      const Atom* operator->() const { return &index_->at(id_); }
      iterator& operator++() {
        ++id_;
        return *this;
      }
      iterator operator++(int) {
        iterator old = *this;
        ++id_;
        return old;
      }
      bool operator==(const iterator& o) const { return id_ == o.id_; }
      bool operator!=(const iterator& o) const { return id_ != o.id_; }

     private:
      const FactIndex* index_ = nullptr;
      uint32_t id_ = 0;
    };

    explicit AtomRange(const FactIndex* index) : index_(index) {}
    uint32_t size() const { return index_->size(); }
    bool empty() const { return index_->empty(); }
    const Atom& operator[](uint32_t id) const { return index_->at(id); }
    iterator begin() const { return iterator(index_, 0); }
    iterator end() const { return iterator(index_, index_->size()); }

   private:
    const FactIndex* index_;
  };

  AtomRange atoms() const { return AtomRange(this); }

  /// Ids of all atoms with the given predicate.
  PostingView WithPredicate(PredicateId pred) const;

  /// Ids of all atoms with `pred` whose argument `position` equals `value`.
  PostingView WithArgument(PredicateId pred, int position, Term value) const;

  /// Posting-list length of WithPredicate(pred) without materializing a
  /// view: the per-predicate fact count the cost model's selectivity
  /// estimates are built from.
  uint32_t CountWithPredicate(PredicateId pred) const;

  /// Posting-list length of WithArgument(pred, position, value): how many
  /// facts a constant at this position narrows the candidates to.
  uint32_t CountWithArgument(PredicateId pred, int position, Term value) const;

  /// Number of distinct terms occurring at `position` of `pred`. Scans the
  /// whole by-argument key space — O(index size), meant for one-shot cost
  /// profiling at query registration, never for search hot paths.
  uint32_t DistinctArgumentValues(PredicateId pred, int position) const;

  /// Compacts every posting tail of at least `min_list_size` ids into the
  /// block-compressed frozen tier (already-frozen prefixes are re-encoded
  /// together with their tails). Outstanding PostingViews are invalidated;
  /// callers freeze between searches, never during one.
  void Freeze(uint32_t min_list_size = kDefaultFreezeThreshold);

  /// Removes everything and releases all heap capacity (swap-clear: a
  /// long-lived process that resets its registry must actually return the
  /// bucket arrays and posting vectors to the allocator).
  void Clear();

  /// True iff every WithPredicate/WithArgument posting list is strictly
  /// increasing in fact id. This holds by construction (ids are assigned
  /// in insertion order and each Insert appends), and the homomorphism
  /// kernel's galloping intersection relies on it; Insert FLOQ_DCHECKs
  /// it per append, and this full scan backs the unit test.
  bool PostingListsSorted() const;

  /// Posting-storage accounting for benches and the snapshot writer.
  struct StorageStats {
    uint64_t postings = 0;         // ids across all posting lists
    uint64_t frozen_postings = 0;  // of which live in the frozen tier
    uint64_t arena_bytes = 0;      // frozen-tier bytes (heap or mapped)
    uint64_t tail_bytes = 0;       // capacity bytes of the mutable tails
  };
  StorageStats Stats() const;

  /// Approximate heap bytes owned by the index (atoms, id map, posting
  /// slots, arena). Mapped snapshot bytes are excluded — they are shared
  /// pages, the point of mmap loading.
  size_t MemoryFootprint() const;

 private:
  friend class SnapshotIO;

  /// One posting list: immutable frozen prefix (offset into arena_, count
  /// of ids there) + mutable append tail.
  struct PostingSlot {
    uint32_t frozen_offset = 0;
    uint32_t frozen_count = 0;
    std::vector<uint32_t> tail;
  };

  // Packs (predicate, position, term) into one hash key: term in the low
  // 32 bits, position in the next 4, predicate above. An earlier packing
  // gave position only 2 bits, so position 4 of a wide predicate aliased
  // position 0 of predicate id + 1 and buckets silently collided (caught
  // by FactIndexTest.WideArityPositionsDoNotCollide).
  static uint64_t PositionKey(PredicateId pred, int position, Term value) {
    static_assert(kMaxArity <= 16, "position field packs into 4 bits");
    return (uint64_t(pred) << 36) | (uint64_t(position) << 32) |
           uint64_t(value.raw());
  }

  PostingView ViewOf(const PostingSlot& slot) const {
    return PostingView(arena_.data(), slot.frozen_offset, slot.frozen_count,
                       slot.tail);
  }

  void AppendPosting(PostingSlot& slot, uint32_t id);

  // The atom -> id map is rebuilt lazily after a snapshot load (building
  // it eagerly would touch every mapped page up front, defeating the
  // mmap). First touch is not thread-safe; snapshot loads happen on the
  // single-threaded CLI path before any search starts.
  void EnsureIds() const;

  // Atoms in id order: an optional mmap-ed prefix (ids [0, mapped_count_))
  // followed by the in-memory suffix.
  std::span<const Atom> mapped_atoms_;
  uint32_t mapped_count_ = 0;
  std::shared_ptr<const void> mapped_owner_;
  std::vector<Atom> atoms_;

  mutable std::unordered_map<Atom, uint32_t, AtomHash> ids_;
  mutable bool ids_built_ = true;

  std::unordered_map<PredicateId, PostingSlot> by_predicate_;
  std::unordered_map<uint64_t, PostingSlot> by_argument_;
  PostingArena arena_;
};

}  // namespace floq

#endif  // FLOQ_DATALOG_FACT_INDEX_H_
