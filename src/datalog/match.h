#ifndef FLOQ_DATALOG_MATCH_H_
#define FLOQ_DATALOG_MATCH_H_

#include <cstdint>
#include <span>

#include "datalog/fact_index.h"
#include "term/atom.h"
#include "term/substitution.h"
#include "util/function_ref.h"

// Conjunction matching: enumerate the homomorphisms (Definition 1 of the
// paper) from a conjunction of pattern atoms into a FactIndex. Pattern
// variables may map to any term occurring in the index; pattern constants
// and nulls map to themselves. This single primitive powers
//   * Datalog rule bodies and conjunctive-query evaluation,
//   * chase rule applicability (bodies of Sigma_FL rules),
//   * the containment homomorphism body(q2) -> chase(q1).

namespace floq {

struct MatchStats {
  uint64_t nodes_visited = 0;   // backtracking nodes expanded
  uint64_t matches_found = 0;
};

struct MatchOptions {
  /// Dynamic most-constrained-first atom ordering (the default). Disabling
  /// it matches atoms left to right — kept for the ablation benchmark
  /// bench_ablation, not for production use.
  bool most_constrained_first = true;
};

/// Enumerates all substitutions extending `initial` that map every atom of
/// `pattern` to some atom in `index`. Invokes `on_match` for each complete
/// substitution; enumeration stops early if `on_match` returns false.
/// Returns false iff the enumeration was stopped early.
///
/// Atom order is chosen dynamically (fewest candidates first), so callers
/// need not pre-order the pattern. `stats`, when non-null, accumulates
/// search effort for benchmarks.
///
/// `on_match` is a non-owning FunctionRef: the callable only has to
/// outlive this call (std::function's owning type erasure was measurable
/// per-node overhead in the backtracking hot path; see bench_hom_search).
bool MatchConjunction(std::span<const Atom> pattern, const FactIndex& index,
                      const Substitution& initial,
                      FunctionRef<bool(const Substitution&)> on_match,
                      MatchStats* stats = nullptr,
                      const MatchOptions& options = {});

/// Convenience: true iff at least one match exists; if so and `out` is
/// non-null, stores the first match found.
bool FindFirstMatch(std::span<const Atom> pattern, const FactIndex& index,
                    const Substitution& initial, Substitution* out = nullptr,
                    MatchStats* stats = nullptr);

}  // namespace floq

#endif  // FLOQ_DATALOG_MATCH_H_
