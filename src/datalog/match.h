#ifndef FLOQ_DATALOG_MATCH_H_
#define FLOQ_DATALOG_MATCH_H_

#include <cstdint>
#include <span>

#include "datalog/fact_index.h"
#include "term/atom.h"
#include "term/substitution.h"
#include "util/deadline.h"
#include "util/function_ref.h"

// Conjunction matching: enumerate the homomorphisms (Definition 1 of the
// paper) from a conjunction of pattern atoms into a FactIndex. Pattern
// variables may map to any term occurring in the index; pattern constants
// and nulls map to themselves. This single primitive powers
//   * Datalog rule bodies and conjunctive-query evaluation,
//   * chase rule applicability (bodies of Sigma_FL rules),
//   * the containment homomorphism body(q2) -> chase(q1).

namespace floq {

struct MatchStats {
  uint64_t nodes_visited = 0;   // backtracking nodes expanded
  uint64_t matches_found = 0;
  /// FactIndex posting-list probes (WithArgument lookups), including the
  /// compile-time probes of the compiled kernel. The per-node probe count
  /// is the metric the kernel's selectivity cache attacks; reported by
  /// bench_hom_search.
  uint64_t index_probes = 0;
  /// Backtracking nodes where the kernel ran a k-way posting-list
  /// intersection (vs scanning the single driver list). Kernel path only.
  uint64_t intersect_nodes = 0;
  /// Galloping skips taken inside those intersections: each is a binary
  /// search that advanced a non-driver list past a candidate.
  uint64_t gallop_skips = 0;
  /// Patterns rejected by the kernel's compile-time pre-pass (a constant
  /// or predicate with no posting list) before any search node expanded.
  uint64_t reject_prepass_hits = 0;

  void Accumulate(const MatchStats& other) {
    nodes_visited += other.nodes_visited;
    matches_found += other.matches_found;
    index_probes += other.index_probes;
    intersect_nodes += other.intersect_nodes;
    gallop_skips += other.gallop_skips;
    reject_prepass_hits += other.reject_prepass_hits;
  }
};

struct MatchOptions {
  /// Dynamic most-constrained-first atom ordering (the default). Disabling
  /// it matches atoms left to right — kept for the ablation benchmark
  /// bench_ablation, not for production use.
  bool most_constrained_first = true;
  /// Compiled-pattern kernel (the default): dense slot renumbering, flat
  /// binding trail, compile-time constant-list resolution, cached
  /// candidate counts. Disabling it runs the legacy map-based matcher —
  /// kept for differential testing and bench_ablation/bench_hom_search.
  bool use_compiled_kernel = true;
  /// K-way galloping intersection of all bound-position posting lists
  /// when computing an atom's candidates (vs scanning the single smallest
  /// list and filtering in unification). Kernel path only; an adaptive
  /// cutoff skips the intersection for tiny driver lists.
  bool use_list_intersection = true;
  /// Optional resource governor ticked once per backtracking node and per
  /// candidate-loop iteration (amortized; see util/deadline.h). When it
  /// trips, the search unwinds and MatchConjunction returns false exactly
  /// as if the callback had stopped enumeration — callers that need to
  /// tell the two apart inspect governor->tripped(). Not owned; one
  /// governor may be shared across many MatchConjunction calls so budgets
  /// span a whole check, not one search. Its trip latches across calls:
  /// once tripped, every subsequent governed search returns immediately.
  ExecGovernor* governor = nullptr;
};

/// Enumerates all substitutions extending `initial` that map every atom of
/// `pattern` to some atom in `index`. Invokes `on_match` for each complete
/// substitution; enumeration stops early if `on_match` returns false.
/// Returns false iff the enumeration was stopped early.
///
/// Atom order is chosen dynamically (fewest candidates first), so callers
/// need not pre-order the pattern. `stats`, when non-null, accumulates
/// search effort for benchmarks.
///
/// `on_match` is a non-owning FunctionRef: the callable only has to
/// outlive this call (std::function's owning type erasure was measurable
/// per-node overhead in the backtracking hot path; see bench_hom_search).
bool MatchConjunction(std::span<const Atom> pattern, const FactIndex& index,
                      const Substitution& initial,
                      FunctionRef<bool(const Substitution&)> on_match,
                      MatchStats* stats = nullptr,
                      const MatchOptions& options = {});

/// Convenience: true iff at least one match exists; if so and `out` is
/// non-null, stores the first match found.
bool FindFirstMatch(std::span<const Atom> pattern, const FactIndex& index,
                    const Substitution& initial, Substitution* out = nullptr,
                    MatchStats* stats = nullptr);

}  // namespace floq

#endif  // FLOQ_DATALOG_MATCH_H_
