#ifndef FLOQ_DATALOG_DATABASE_H_
#define FLOQ_DATALOG_DATABASE_H_

#include <vector>

#include "datalog/fact_index.h"
#include "term/atom.h"
#include "term/world.h"
#include "util/status.h"

// A database instance: a duplicate-free set of facts. Facts are normally
// ground (constants and nulls); the engine tolerates variables in facts
// because the chase reuses this storage with query variables as values.

namespace floq {

class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Adds a fact; returns true if it was new.
  bool Insert(const Atom& fact) { return index_.Insert(fact).second; }

  /// Adds many facts.
  void InsertAll(const std::vector<Atom>& facts) {
    for (const Atom& fact : facts) Insert(fact);
  }

  bool Contains(const Atom& fact) const { return index_.Contains(fact); }

  const FactIndex& index() const { return index_; }
  /// Mutable access for storage maintenance (Freeze, snapshot load); the
  /// engines only ever read through index().
  FactIndex& mutable_index() { return index_; }
  FactIndex::AtomRange facts() const { return index_.atoms(); }
  uint32_t size() const { return index_.size(); }

  /// Facts of one predicate (ids into facts()).
  PostingView FactsWith(PredicateId pred) const {
    return index_.WithPredicate(pred);
  }

  void Clear() { index_.Clear(); }

 private:
  FactIndex index_;
};

}  // namespace floq

#endif  // FLOQ_DATALOG_DATABASE_H_
