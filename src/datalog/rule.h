#ifndef FLOQ_DATALOG_RULE_H_
#define FLOQ_DATALOG_RULE_H_

#include <string>
#include <vector>

#include "term/atom.h"
#include "term/world.h"

// Positive Datalog rules: head :- body. Variables in the head must occur
// in the body (range restriction). F-logic Lite's ten Datalog rules
// (rho_1..rho_3, rho_6..rho_12) are rules of this form; the chase adds the
// EGD rho_4 and the existential rho_5 on top (see src/chase/sigma_fl.h).

namespace floq {

struct Rule {
  Atom head;
  std::vector<Atom> body;

  std::string ToString(const World& world) const {
    std::string out = head.ToString(world);
    out += " :- ";
    out += AtomsToString(body, world);
    out += '.';
    return out;
  }
};

}  // namespace floq

#endif  // FLOQ_DATALOG_RULE_H_
