#ifndef FLOQ_DATALOG_POSTING_BLOCK_H_
#define FLOQ_DATALOG_POSTING_BLOCK_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

// Block-compressed posting storage (DESIGN.md §14). FactIndex posting
// lists are strictly increasing fact ids, which makes them ideal targets
// for delta encoding: a frozen list is cut into blocks of
// kPostingBlockSize ids, each block stored as a 4-byte base id plus
// fixed-width deltas (frame-of-reference, byte-aligned widths 1/2/4), with
// a per-block max-id so seeks skip whole blocks without decoding them.
// Everything lives in one flat, offset-addressed arena — no per-list heap
// allocation, and the arena bytes are position-independent, so a snapshot
// file can be mmap-ed back and used in place (snapshot.h).
//
// Consumers never touch blocks directly: PostingView is the value-type
// handle FactIndex hands out (frozen prefix + mutable tail span), and
// PostingCursor streams a view with next()/SeekGE(), decoding one block at
// a time into a small stack buffer. The compiled kernel's leapfrog driver
// and IntersectPostingLists run entirely on cursors, so they are oblivious
// to which tier an id came from.
//
// SIMD: with FLOQ_NATIVE (and SSE4.1) the block decode runs a 4-wide
// prefix-sum and SeekGE's in-block lower bound is a vectorized compare +
// movemask. The scalar paths are always compiled and differentially
// tested against the SIMD ones (tests/posting_test.cc).

namespace floq {

/// Ids per compressed block. 128 keeps the decode buffer stack-friendly
/// (512 bytes) and one block per cache-line-sized metadata entry.
inline constexpr uint32_t kPostingBlockSize = 128;

/// Skip metadata for one block. `packed` holds the payload-relative byte
/// offset of the block's data in the upper 30 bits and the delta width
/// code (0 -> 1 byte, 1 -> 2 bytes, 2 -> 4 bytes) in the low 2.
struct PostingBlockMeta {
  uint32_t max_id;
  uint32_t packed;

  uint32_t payload_offset() const { return packed >> 2; }
  uint32_t delta_width() const { return 1u << (packed & 3u); }
};
static_assert(sizeof(PostingBlockMeta) == 8);

/// A resolved frozen list inside an arena: header + metadata + payload
/// pointers. Cheap to build from (arena, offset); see ResolveFrozenList.
struct FrozenListView {
  uint32_t count = 0;       // total ids in the frozen list
  uint32_t num_blocks = 0;  // ceil(count / kPostingBlockSize)
  const PostingBlockMeta* metas = nullptr;
  const uint8_t* payload = nullptr;  // base for PostingBlockMeta offsets

  /// Number of ids in block `b` (only the last block may be short).
  uint32_t BlockLength(uint32_t b) const {
    return b + 1 == num_blocks ? count - b * kPostingBlockSize
                               : kPostingBlockSize;
  }
};

/// Flat byte arena of frozen posting lists. Lists are appended with
/// EncodeList while building (FactIndex::Freeze) and addressed by byte
/// offset thereafter; AdoptMapped points the arena at an external
/// read-only buffer (an mmap-ed snapshot) instead.
class PostingArena {
 public:
  PostingArena() = default;
  PostingArena(PostingArena&&) = default;
  PostingArena& operator=(PostingArena&&) = default;
  PostingArena(const PostingArena&) = delete;
  PostingArena& operator=(const PostingArena&) = delete;

  /// Appends a frozen encoding of `ids` (strictly increasing, nonempty)
  /// and returns its arena offset. Invalidates data() from prior calls
  /// only within the same Freeze pass — FactIndex swaps in the finished
  /// arena wholesale before handing out views.
  uint32_t EncodeList(std::span<const uint32_t> ids);

  /// Points the arena at `size` externally owned bytes (mmap). `owner`
  /// keeps the mapping alive for the arena's lifetime.
  void AdoptMapped(const uint8_t* data, size_t size,
                   std::shared_ptr<const void> owner);

  const uint8_t* data() const { return mapped_ != nullptr ? mapped_ : bytes_.data(); }
  size_t size() const { return mapped_ != nullptr ? mapped_size_ : bytes_.size(); }
  bool empty() const { return size() == 0; }

  /// Heap bytes owned by the arena itself (0 when mmap-backed).
  size_t HeapBytes() const { return bytes_.capacity(); }

  void Clear() {
    std::vector<uint8_t>().swap(bytes_);
    mapped_ = nullptr;
    mapped_size_ = 0;
    owner_.reset();
  }

 private:
  std::vector<uint8_t> bytes_;
  const uint8_t* mapped_ = nullptr;
  size_t mapped_size_ = 0;
  std::shared_ptr<const void> owner_;
};

/// Resolves the frozen list stored at `offset` in `arena_data`.
FrozenListView ResolveFrozenList(const uint8_t* arena_data, uint32_t offset);

/// Decodes block `b` of `list` into `out` (capacity >= kPostingBlockSize).
/// Returns the number of ids written. The *Scalar variant is the always-
/// compiled reference; DecodeBlock dispatches to SIMD when built with
/// FLOQ_NATIVE and SSE4.1, and is bit-identical to the scalar path.
uint32_t DecodeBlockScalar(const FrozenListView& list, uint32_t b,
                           uint32_t* out);
uint32_t DecodeBlock(const FrozenListView& list, uint32_t b, uint32_t* out);

/// First index in data[0..n) with data[i] >= target (n when none); `data`
/// ascending. Same scalar/SIMD split as DecodeBlock.
uint32_t LowerBoundInBlockScalar(const uint32_t* data, uint32_t n,
                                 uint32_t target);
uint32_t LowerBoundInBlock(const uint32_t* data, uint32_t n, uint32_t target);

/// True when this binary's DecodeBlock/LowerBoundInBlock run SIMD paths.
bool SimdPostingsEnabled();

class PostingCursor;

/// A posting list as handed out by FactIndex: an optional frozen prefix
/// (arena + offset) followed by the mutable append tail. Value type —
/// copying is two pointers and two spans; views are transient (taken per
/// lookup, never across a Freeze()).
class PostingView {
 public:
  PostingView() = default;

  /// Frozen prefix at `frozen_offset` (count `frozen_count`) plus `tail`.
  PostingView(const uint8_t* arena_data, uint32_t frozen_offset,
              uint32_t frozen_count, std::span<const uint32_t> tail)
      : arena_(arena_data),
        frozen_offset_(frozen_offset),
        frozen_count_(frozen_count),
        tail_(tail) {}

  /// Tail-only views, for unfrozen lists and tests.
  PostingView(std::span<const uint32_t> ids) : tail_(ids) {}  // NOLINT
  PostingView(const std::vector<uint32_t>& ids)               // NOLINT
      : tail_(ids.data(), ids.size()) {}

  size_t size() const { return size_t(frozen_count_) + tail_.size(); }
  bool empty() const { return frozen_count_ == 0 && tail_.empty(); }
  uint32_t frozen_count() const { return frozen_count_; }
  std::span<const uint32_t> tail() const { return tail_; }

  /// Appends all ids, in order, to `out`.
  void Materialize(std::vector<uint32_t>& out) const;

  /// Convenience for tests and benches: the ids as one plain vector.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> out;
    Materialize(out);
    return out;
  }

  // Input iteration for range-for. The iterator owns a PostingCursor, so
  // it is not cheap to copy — hot loops use PostingCursor directly.
  class iterator;
  iterator begin() const;
  struct end_sentinel {};
  end_sentinel end() const { return {}; }

 private:
  friend class PostingCursor;
  const uint8_t* arena_ = nullptr;
  uint32_t frozen_offset_ = 0;
  uint32_t frozen_count_ = 0;
  std::span<const uint32_t> tail_;
};

/// Streaming cursor over a PostingView: value()/Next()/SeekGE(). Decodes
/// one frozen block at a time, lazily, into an owned buffer; positions in
/// the tail read straight from the index's vector. Forward-only: SeekGE
/// targets must be non-decreasing (leapfrog discipline).
class PostingCursor {
 public:
  PostingCursor() = default;
  explicit PostingCursor(const PostingView& view)
      : frozen_(view.frozen_count_ > 0
                    ? ResolveFrozenList(view.arena_, view.frozen_offset_)
                    : FrozenListView{}),
        tail_(view.tail_),
        frozen_count_(view.frozen_count_),
        total_(view.size()) {}

  bool AtEnd() const { return pos_ >= total_; }
  size_t size() const { return total_; }
  size_t position() const { return pos_; }

  /// Current id; cursor must not be AtEnd().
  uint32_t value() {
    if (pos_ >= frozen_count_) return tail_[pos_ - frozen_count_];
    uint32_t p = uint32_t(pos_);
    if (p < block_begin_ || p >= block_end_) DecodeBlockAt(p);
    return buf_[p - block_begin_];
  }

  void Next() { ++pos_; }

  /// Advances to the first id >= target (ids before the current position
  /// are never revisited). Returns false iff the cursor is exhausted.
  bool SeekGE(uint32_t target);

 private:
  void DecodeBlockAt(uint32_t p);

  FrozenListView frozen_{};
  std::span<const uint32_t> tail_;
  size_t frozen_count_ = 0;
  size_t total_ = 0;
  size_t pos_ = 0;
  // Decoded window [block_begin_, block_end_) of frozen positions.
  uint32_t block_begin_ = 0;
  uint32_t block_end_ = 0;
  std::array<uint32_t, kPostingBlockSize> buf_;
};

class PostingView::iterator {
 public:
  using value_type = uint32_t;
  using difference_type = std::ptrdiff_t;

  iterator() = default;
  explicit iterator(const PostingView& view) : cursor_(view) {}

  uint32_t operator*() { return cursor_.value(); }
  iterator& operator++() {
    cursor_.Next();
    return *this;
  }
  void operator++(int) { cursor_.Next(); }
  bool operator==(PostingView::end_sentinel) const { return cursor_.AtEnd(); }
  bool operator!=(PostingView::end_sentinel) const { return !cursor_.AtEnd(); }

 private:
  PostingCursor cursor_;
};

inline PostingView::iterator PostingView::begin() const {
  return iterator(*this);
}

}  // namespace floq

#endif  // FLOQ_DATALOG_POSTING_BLOCK_H_
