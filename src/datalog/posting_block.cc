#include "datalog/posting_block.h"

#include <algorithm>

#include "datalog/posting_intersect.h"
#include "util/check.h"
#include "util/metrics.h"

#if defined(FLOQ_NATIVE) && defined(__SSE4_1__)
#include <smmintrin.h>
#define FLOQ_POSTING_SIMD 1
#else
#define FLOQ_POSTING_SIMD 0
#endif

namespace floq {

namespace {

// Frozen-list layout at an 8-aligned arena offset (all fields little-
// endian, the only byte order the engine targets):
//   u32 count | u32 num_blocks | PostingBlockMeta[num_blocks] | payload
// where each block's payload is a u32 base id followed by (len - 1)
// fixed-width deltas (width from the block's meta).
constexpr uint32_t kArenaAlign = 8;

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

uint32_t WidthCodeFor(uint32_t max_delta) {
  if (max_delta <= 0xffu) return 0;
  if (max_delta <= 0xffffu) return 1;
  return 2;
}

}  // namespace

uint32_t PostingArena::EncodeList(std::span<const uint32_t> ids) {
  FLOQ_CHECK(mapped_ == nullptr);
  FLOQ_CHECK(!ids.empty());
  while (bytes_.size() % kArenaAlign != 0) bytes_.push_back(0);
  const uint32_t offset = uint32_t(bytes_.size());

  const uint32_t count = uint32_t(ids.size());
  const uint32_t num_blocks =
      (count + kPostingBlockSize - 1) / kPostingBlockSize;

  auto append_u32 = [&](uint32_t v) {
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    bytes_.insert(bytes_.end(), p, p + sizeof v);
  };
  append_u32(count);
  append_u32(num_blocks);
  const size_t metas_at = bytes_.size();
  bytes_.resize(metas_at + size_t(num_blocks) * sizeof(PostingBlockMeta));
  const size_t payload_at = bytes_.size();

  for (uint32_t b = 0; b < num_blocks; ++b) {
    const uint32_t begin = b * kPostingBlockSize;
    const uint32_t len = std::min(kPostingBlockSize, count - begin);
    uint32_t max_delta = 0;
    for (uint32_t i = 1; i < len; ++i) {
      FLOQ_DCHECK(ids[begin + i] > ids[begin + i - 1]);
      max_delta = std::max(max_delta, ids[begin + i] - ids[begin + i - 1]);
    }
    const uint32_t width_code = WidthCodeFor(max_delta);
    const uint32_t width = 1u << width_code;
    const uint32_t rel = uint32_t(bytes_.size() - payload_at);
    const PostingBlockMeta meta{ids[begin + len - 1], (rel << 2) | width_code};
    std::memcpy(bytes_.data() + metas_at + size_t(b) * sizeof meta, &meta,
                sizeof meta);
    append_u32(ids[begin]);
    for (uint32_t i = 1; i < len; ++i) {
      const uint32_t delta = ids[begin + i] - ids[begin + i - 1];
      // Low `width` bytes only — little-endian truncation.
      const uint8_t* p = reinterpret_cast<const uint8_t*>(&delta);
      bytes_.insert(bytes_.end(), p, p + width);
    }
  }
  return offset;
}

void PostingArena::AdoptMapped(const uint8_t* data, size_t size,
                               std::shared_ptr<const void> owner) {
  std::vector<uint8_t>().swap(bytes_);
  mapped_ = data;
  mapped_size_ = size;
  owner_ = std::move(owner);
}

FrozenListView ResolveFrozenList(const uint8_t* arena_data, uint32_t offset) {
  FrozenListView v;
  const uint8_t* p = arena_data + offset;
  v.count = LoadU32(p);
  v.num_blocks = LoadU32(p + 4);
  v.metas = reinterpret_cast<const PostingBlockMeta*>(p + 8);
  v.payload = p + 8 + size_t(v.num_blocks) * sizeof(PostingBlockMeta);
  return v;
}

uint32_t DecodeBlockScalar(const FrozenListView& list, uint32_t b,
                           uint32_t* out) {
  const uint32_t n = list.BlockLength(b);
  const PostingBlockMeta meta = list.metas[b];
  const uint8_t* p = list.payload + meta.payload_offset();
  uint32_t value = LoadU32(p);
  p += 4;
  out[0] = value;
  switch (meta.packed & 3u) {
    case 0:
      for (uint32_t i = 1; i < n; ++i) {
        value += p[i - 1];
        out[i] = value;
      }
      break;
    case 1:
      for (uint32_t i = 1; i < n; ++i) {
        uint16_t d;
        std::memcpy(&d, p + size_t(i - 1) * 2, sizeof d);
        value += d;
        out[i] = value;
      }
      break;
    default:
      for (uint32_t i = 1; i < n; ++i) {
        value += LoadU32(p + size_t(i - 1) * 4);
        out[i] = value;
      }
      break;
  }
  return n;
}

uint32_t LowerBoundInBlockScalar(const uint32_t* data, uint32_t n,
                                 uint32_t target) {
  return uint32_t(std::lower_bound(data, data + n, target) - data);
}

#if FLOQ_POSTING_SIMD

namespace {

// Inclusive 4-lane prefix sum (Hillis–Steele within the register).
inline __m128i PrefixSum4(__m128i d) {
  d = _mm_add_epi32(d, _mm_slli_si128(d, 4));
  d = _mm_add_epi32(d, _mm_slli_si128(d, 8));
  return d;
}

uint32_t DecodeBlockSimd(const FrozenListView& list, uint32_t b,
                         uint32_t* out) {
  const uint32_t n = list.BlockLength(b);
  const PostingBlockMeta meta = list.metas[b];
  const uint8_t* p = list.payload + meta.payload_offset();
  uint32_t value = LoadU32(p);
  p += 4;
  out[0] = value;
  const uint32_t width_code = meta.packed & 3u;
  const uint32_t deltas = n - 1;
  uint32_t g = 0;
  for (; g + 4 <= deltas; g += 4) {
    __m128i d;
    if (width_code == 0) {
      uint32_t raw;
      std::memcpy(&raw, p + g, sizeof raw);
      d = _mm_cvtepu8_epi32(_mm_cvtsi32_si128(int(raw)));
    } else if (width_code == 1) {
      d = _mm_cvtepu16_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p + size_t(g) * 2)));
    } else {
      d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + size_t(g) * 4));
    }
    const __m128i sums =
        _mm_add_epi32(PrefixSum4(d), _mm_set1_epi32(int(value)));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 1 + g), sums);
    value = uint32_t(_mm_extract_epi32(sums, 3));
  }
  for (; g < deltas; ++g) {
    uint32_t delta;
    if (width_code == 0) {
      delta = p[g];
    } else if (width_code == 1) {
      uint16_t d16;
      std::memcpy(&d16, p + size_t(g) * 2, sizeof d16);
      delta = d16;
    } else {
      delta = LoadU32(p + size_t(g) * 4);
    }
    value += delta;
    out[1 + g] = value;
  }
  return n;
}

// Vectorized lower bound over an ascending run: count the < target prefix
// four lanes at a time. Unsigned compare via the sign-bit flip trick.
uint32_t LowerBoundInBlockSimd(const uint32_t* data, uint32_t n,
                               uint32_t target) {
  const __m128i sign = _mm_set1_epi32(int(0x80000000u));
  const __m128i t = _mm_set1_epi32(int(target ^ 0x80000000u));
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i)), sign);
    const int mask = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmplt_epi32(v, t)));
    // Sorted input: lanes < target form a prefix of the group.
    if (mask != 0xF) return i + uint32_t(__builtin_popcount(unsigned(mask)));
  }
  for (; i < n; ++i) {
    if (data[i] >= target) break;
  }
  return i;
}

}  // namespace

uint32_t DecodeBlock(const FrozenListView& list, uint32_t b, uint32_t* out) {
  return DecodeBlockSimd(list, b, out);
}

uint32_t LowerBoundInBlock(const uint32_t* data, uint32_t n, uint32_t target) {
  return LowerBoundInBlockSimd(data, n, target);
}

bool SimdPostingsEnabled() { return true; }

#else

uint32_t DecodeBlock(const FrozenListView& list, uint32_t b, uint32_t* out) {
  return DecodeBlockScalar(list, b, out);
}

uint32_t LowerBoundInBlock(const uint32_t* data, uint32_t n, uint32_t target) {
  return LowerBoundInBlockScalar(data, n, target);
}

bool SimdPostingsEnabled() { return false; }

#endif  // FLOQ_POSTING_SIMD

void PostingView::Materialize(std::vector<uint32_t>& out) const {
  out.reserve(out.size() + size());
  if (frozen_count_ > 0) {
    const FrozenListView list = ResolveFrozenList(arena_, frozen_offset_);
    std::array<uint32_t, kPostingBlockSize> buf;
    for (uint32_t b = 0; b < list.num_blocks; ++b) {
      const uint32_t n = DecodeBlock(list, b, buf.data());
      out.insert(out.end(), buf.data(), buf.data() + n);
    }
  }
  out.insert(out.end(), tail_.begin(), tail_.end());
}

void PostingCursor::DecodeBlockAt(uint32_t p) {
  const uint32_t b = p / kPostingBlockSize;
  const uint32_t n = DecodeBlock(frozen_, b, buf_.data());
  block_begin_ = b * kPostingBlockSize;
  block_end_ = block_begin_ + n;
  if (MetricsRegistry::enabled()) {
    static Counter& decoded =
        MetricsRegistry::Get().counter("index.blocks_decoded");
    decoded.Add(1);
  }
}

bool PostingCursor::SeekGE(uint32_t target) {
  if (MetricsRegistry::enabled()) {
    static Counter& seeks = MetricsRegistry::Get().counter("index.seek_calls");
    seeks.Add(1);
  }
  if (pos_ >= total_) return false;
  if (pos_ < frozen_count_) {
    uint32_t b = uint32_t(pos_) / kPostingBlockSize;
    if (frozen_.metas[b].max_id < target) {
      // Gallop over block max-ids, then binary search the last doubling
      // window — the whole point of the skip metadata: blocks the target
      // cannot live in are never decoded.
      uint32_t lo = b;  // invariant: metas[lo].max_id < target
      uint32_t step = 1;
      while (lo + step < frozen_.num_blocks &&
             frozen_.metas[lo + step].max_id < target) {
        lo += step;
        step <<= 1;
      }
      uint32_t hi = std::min(lo + step, frozen_.num_blocks);
      ++lo;
      while (lo < hi) {
        const uint32_t mid = lo + (hi - lo) / 2;
        if (frozen_.metas[mid].max_id < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (MetricsRegistry::enabled()) {
        static Counter& skipped =
            MetricsRegistry::Get().counter("index.seek_blocks_skipped");
        skipped.Add(lo - b);
      }
      pos_ = lo >= frozen_.num_blocks ? frozen_count_
                                      : size_t(lo) * kPostingBlockSize;
    }
    if (pos_ < frozen_count_) {
      const uint32_t p = uint32_t(pos_);
      if (p < block_begin_ || p >= block_end_) DecodeBlockAt(p);
      const uint32_t k =
          LowerBoundInBlock(buf_.data(), block_end_ - block_begin_, target);
      // The block's max_id is >= target, so the lower bound is in-block.
      pos_ = std::max(pos_, size_t(block_begin_) + k);
      return pos_ < total_;
    }
  }
  size_t tpos = pos_ - frozen_count_;
  tpos = GallopToLowerBound(tail_, tpos, target);
  pos_ = frozen_count_ + tpos;
  return pos_ < total_;
}

}  // namespace floq
