#ifndef FLOQ_ANALYSIS_COST_MODEL_H_
#define FLOQ_ANALYSIS_COST_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/boundedness.h"
#include "analysis/diagnostic.h"
#include "chase/chase.h"
#include "datalog/fact_index.h"
#include "query/conjunctive_query.h"
#include "term/world.h"

// Static cost prediction for containment checks (DESIGN.md §15). A check
// q1 ⊆_Sigma q2 has two priced stages — materializing chase_Sigma(q1) to
// the Theorem-12 level and searching for a homomorphism body(q2) ->
// chase(q1) — and this model predicts both *before* running them, from
// (a) a geometric fit of the registration probe chase's level counts and
// (b) a join-shape walk of q2's body against the probe's per-position
// posting statistics (FactIndex stat accessors).
//
// Soundness discipline: every number here is either a sound upper bound
// (a completed probe makes AtomsAtLevel exact — the chase reached its
// fixpoint, deeper levels add nothing) or an explicitly confidence-tagged
// extrapolation (geometric growth continued past the probe horizon). The
// consumers never let an estimate change a verdict: the engine only
// *reorders* pairs by it (use_cost_scheduling), and budget calibration
// (ResourceBudget::FromEstimate) only ever *raises* a pair's step budget,
// so kUnknown verdicts can only decrease.

namespace floq::analysis {

/// Geometric growth model fitted from a probe chase prefix: total
/// conjunct counts per level, extrapolated as probe_atoms * per_level^k
/// past the probe horizon.
struct ChaseGrowthModel {
  /// rho_4 equated two distinct constants: the chase fails, every pair
  /// with this query on the left is decided with zero further work.
  bool failed = false;
  /// The probe reached the chase fixpoint: AtomsAtLevel is exact at every
  /// level and confidence is 1.
  bool completed = false;
  int probe_level = 0;
  /// Total conjuncts at level 0 / at probe_level.
  uint64_t level0_atoms = 0;
  uint64_t probe_atoms = 0;
  /// Per-level multiplicative growth observed across the last probe level
  /// (1.0 when the frontier went quiet).
  double per_level = 1.0;

  /// Estimated total conjuncts once materialized to `level`, saturated at
  /// `cap` (the engine's chase atom budget stops materialization there
  /// anyway).
  uint64_t AtomsAtLevel(int level, uint64_t cap) const;

  /// 1.0 when exact (completed probe, or no extrapolation needed); decays
  /// with the number of extrapolated levels when the probe was still
  /// growing.
  double ConfidenceAtLevel(int level) const;
};

/// Fits the model from a materialized probe prefix (any ResumableChase /
/// ChaseQuery result; deeper probes give tighter fits).
ChaseGrowthModel FitChaseGrowth(const ChaseResult& probe);

/// Target-side statistics of one query: its growth model plus the probe
/// index's posting-list shape, summarized so the per-pair estimator never
/// touches the (mutable, later re-frozen) index again.
struct TargetProfile {
  ChaseGrowthModel growth;
  /// Probe posting-list length per predicate (FactIndex::CountWithPredicate).
  std::unordered_map<PredicateId, uint32_t> predicate_counts;
  /// Distinct terms per (pred << 4 | position)
  /// (FactIndex::DistinctArgumentValues).
  std::unordered_map<uint64_t, uint32_t> position_distinct;
  /// Posting length per (pred << 36 | position << 32 | term.raw()) for
  /// constant terms (FactIndex::CountWithArgument) — constant selectivity.
  std::unordered_map<uint64_t, uint32_t> constant_counts;

  uint32_t PredicateCount(PredicateId pred) const {
    auto it = predicate_counts.find(pred);
    return it == predicate_counts.end() ? 0 : it->second;
  }
  uint32_t DistinctAt(PredicateId pred, int position) const {
    auto it = position_distinct.find((uint64_t(pred) << 4) | uint64_t(position));
    return it == position_distinct.end() ? 0 : it->second;
  }
  uint32_t ConstantCount(PredicateId pred, int position, Term value) const {
    auto it = constant_counts.find((uint64_t(pred) << 36) |
                                   (uint64_t(position) << 32) |
                                   uint64_t(value.raw()));
    return it == constant_counts.end() ? 0 : it->second;
  }
};

/// Profiles a probe chase (the engine's registration probe doubles as the
/// sample).
TargetProfile ProfileTarget(const ChaseResult& probe);

/// Profiles a plain fact set (ChaseDepth::kNone targets, KB fact bases):
/// an exact, completed "growth" model over the facts as they stand.
TargetProfile ProfileFacts(const FactIndex& facts);

/// Pattern-side join shape of one query used as a right-hand side: its
/// body atoms plus the variable-connectivity component count (components
/// multiply the hom fan-out — each is matched independently).
struct PatternProfile {
  std::vector<Atom> atoms;
  int join_components = 0;
};

PatternProfile ProfilePattern(const ConjunctiveQuery& query);

/// The predicted price of one containment check.
struct CostEstimate {
  /// Estimated chase conjuncts at chase_levels_bound (exact when
  /// confidence == 1).
  uint64_t chase_atoms_bound = 0;
  /// The level the estimate targets (the pair's Theorem-12 bound).
  int chase_levels_bound = 0;
  /// Estimated homomorphism-search nodes: partial assignments probed by a
  /// most-constrained-first search, from posting-derived per-atom
  /// candidate counts.
  double hom_fanout_bound = 0.0;
  /// 1.0 when chase_atoms_bound is exact; decays with extrapolation
  /// distance past the probe horizon.
  double confidence = 1.0;

  /// Scalar ranking cost (chase conjuncts + hom nodes, both roughly
  /// "operations"): the scheduling key. Order-preserving in either
  /// component; the absolute value has no unit.
  double Scalar() const {
    return double(chase_atoms_bound) + hom_fanout_bound;
  }
};

/// Predicts the price of checking target ⊆ pattern at `level` under a
/// chase atom budget of `atom_cap`.
CostEstimate EstimatePairCost(const TargetProfile& target,
                              const PatternProfile& pattern, int level,
                              uint64_t atom_cap);

/// Theorem 12's level cap |q2| * 2|q1|, restated here so this library
/// stays below floq_containment in the link order (PaperLevelBound in
/// containment.h computes the identical number).
inline int TheoremTwelveLevel(const ConjunctiveQuery& q1,
                              const ConjunctiveQuery& q2) {
  return q2.size() * 2 * q1.size();
}

/// FLD201: the dependency set is weakly acyclic but its null generation
/// is polynomial of degree >= 2 — the chase terminates yet can blow up
/// polynomially, with the witness special-edge chain attached.
std::vector<Diagnostic> LintDependencyCost(const DependencySet& dependencies,
                                           const World& world);

struct CostAnalysisOptions {
  /// Levels the probe chase materializes before fitting the growth model.
  int probe_levels = 2;
  /// Conjunct cap on the probe itself (keeps `floq analyze` fast even on
  /// divergent inputs).
  uint64_t probe_max_atoms = 200'000;
  /// FLD203 threshold: the default engine chase budget
  /// (ContainmentOptions::max_chase_atoms).
  uint64_t chase_atom_budget = 2'000'000;
};

/// One query's cost report as `floq analyze` prints it: the estimate for
/// the query's own Theorem-12 self-containment level (the representative
/// price of using it in a containment check), its instance-level
/// boundedness grade, and any FLD202/FLD203 findings.
struct QueryCostReport {
  CostEstimate estimate;
  SigmaBoundedness boundedness;
  std::vector<Diagnostic> diagnostics;
};

/// Runs the probe chase, fits the model, and lints. FLD202 fires on a
/// variable-disjoint body (multiplicative cross-join fan-out), FLD203
/// when the estimated chase exceeds options.chase_atom_budget.
QueryCostReport AnalyzeQueryCost(World& world, const ConjunctiveQuery& query,
                                 const CostAnalysisOptions& options = {});

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_COST_MODEL_H_
