#ifndef FLOQ_ANALYSIS_ANALYZER_H_
#define FLOQ_ANALYSIS_ANALYZER_H_

#include <string_view>
#include <vector>

#include "analysis/dependency_lints.h"
#include "analysis/diagnostic.h"
#include "analysis/query_lints.h"
#include "chase/dependencies.h"
#include "flogic/parser.h"
#include "term/world.h"

// The analyzer facade behind `floq lint`: parse leniently (so unsafe
// heads surface as located FLQ001 diagnostics, not parse failures), run
// every applicable lint family, and return the diagnostics sorted by
// source position. Parse errors themselves become FLQ000 diagnostics —
// the analyzer entry points never fail.

namespace floq::analysis {

struct AnalyzeOptions {
  QueryLintOptions query;
  /// FLD103 over the program's ground facts.
  bool lint_facts = true;
};

/// Lints every rule, goal, and (optionally) the fact base of a parsed
/// F-logic program.
std::vector<Diagnostic> AnalyzeProgram(World& world,
                                       const flogic::Program& program,
                                       const AnalyzeOptions& options = {});

/// Parses `text` leniently and lints it. Unparseable input yields one
/// FLQ000 diagnostic.
std::vector<Diagnostic> AnalyzeProgramText(World& world, std::string_view text,
                                           const AnalyzeOptions& options = {});

/// FLD101/FLD102 for a dependency set.
std::vector<Diagnostic> AnalyzeDependencySet(const DependencySet& dependencies,
                                             const World& world);

/// Parses a dependency program (chase/dependencies syntax) and lints it.
std::vector<Diagnostic> AnalyzeDependencyText(World& world,
                                              std::string_view text);

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_ANALYZER_H_
