#include "analysis/analyzer.h"

#include "analysis/cost_model.h"

namespace floq::analysis {

std::vector<Diagnostic> AnalyzeProgram(World& world,
                                       const flogic::Program& program,
                                       const AnalyzeOptions& options) {
  std::vector<Diagnostic> out;
  for (const ConjunctiveQuery& rule : program.rules) {
    std::vector<Diagnostic> found = LintQuery(world, rule, options.query);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  for (const ConjunctiveQuery& goal : program.goals) {
    std::vector<Diagnostic> found = LintQuery(world, goal, options.query);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  if (options.lint_facts) {
    std::vector<Diagnostic> found = LintFacts(world, program.facts);
    out.insert(out.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  SortDiagnostics(out);
  return out;
}

std::vector<Diagnostic> AnalyzeProgramText(World& world, std::string_view text,
                                           const AnalyzeOptions& options) {
  Result<flogic::Program> program = flogic::ParseProgramLenient(world, text);
  if (!program.ok()) {
    return {DiagnosticFromStatus(program.status())};
  }
  return AnalyzeProgram(world, *program, options);
}

std::vector<Diagnostic> AnalyzeDependencySet(const DependencySet& dependencies,
                                             const World& world) {
  std::vector<Diagnostic> out = LintDependencySet(dependencies, world);
  // FLD201 (cost_model.h): polynomial-blowup grading refines the binary
  // FLD101/102 verdict for sets that terminate but can still blow up.
  std::vector<Diagnostic> cost = LintDependencyCost(dependencies, world);
  out.insert(out.end(), std::make_move_iterator(cost.begin()),
             std::make_move_iterator(cost.end()));
  SortDiagnostics(out);
  return out;
}

std::vector<Diagnostic> AnalyzeDependencyText(World& world,
                                              std::string_view text) {
  Result<DependencySet> dependencies = ParseDependencies(world, text);
  if (!dependencies.ok()) {
    return {DiagnosticFromStatus(dependencies.status())};
  }
  return AnalyzeDependencySet(*dependencies, world);
}

}  // namespace floq::analysis
