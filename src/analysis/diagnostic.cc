#include "analysis/diagnostic.h"

#include <algorithm>
#include <cctype>
#include <tuple>

#include "util/strings.h"

namespace floq::analysis {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "?";
}

const std::vector<LintCodeInfo>& LintCodes() {
  static const std::vector<LintCodeInfo> kCodes = {
      {"FLD101", "non-weakly-acyclic", Severity::kWarning,
       "the dependency set is not weakly acyclic; the chase may not "
       "terminate"},
      {"FLD102", "jointly-acyclic", Severity::kNote,
       "not weakly acyclic but jointly acyclic: the chase still terminates"},
      {"FLD103", "cyclic-mandatory", Severity::kError,
       "a mandatory-attribute cycle makes the Sigma_FL chase infinite"},
      {"FLD201", "polynomial-blowup", Severity::kWarning,
       "null generation is polynomial of degree >= 2: the chase terminates "
       "but can blow up polynomially"},
      {"FLD202", "cross-join-fanout", Severity::kWarning,
       "variable-disjoint body components multiply the homomorphism-search "
       "fan-out"},
      {"FLD203", "chase-over-budget", Severity::kWarning,
       "the estimated chase exceeds the default governor budget; checks "
       "will degrade to UNKNOWN"},
      {"FLQ000", "parse-error", Severity::kError,
       "the input does not parse"},
      {"FLQ001", "unsafe-head-variable", Severity::kError,
       "a head variable does not occur in the body"},
      {"FLQ002", "singleton-variable", Severity::kWarning,
       "a named variable occurs exactly once (likely a typo; use _)"},
      {"FLQ003", "cartesian-product", Severity::kWarning,
       "the body splits into variable-disjoint components"},
      {"FLQ004", "pfl-misuse", Severity::kWarning,
       "a P_FL position is used against its object/class/attribute role"},
      {"FLQ005", "duplicate-atom", Severity::kWarning,
       "the same atom occurs twice in a body"},
      {"FLQ006", "unsatisfiable-query", Severity::kError,
       "the chase of the query fails: no answers on any legal database"},
      {"FLQ007", "redundant-atom", Severity::kNote,
       "dropping the atom keeps the query equivalent under Sigma_FL"},
  };
  return kCodes;
}

const LintCodeInfo* FindLintCode(std::string_view code) {
  for (const LintCodeInfo& info : LintCodes()) {
    if (code == info.code) return &info;
  }
  return nullptr;
}

Diagnostic MakeDiagnostic(std::string_view code, std::string message,
                          SourceSpan span) {
  Diagnostic diagnostic;
  diagnostic.code = std::string(code);
  const LintCodeInfo* info = FindLintCode(code);
  FLOQ_CHECK(info != nullptr) << "unregistered lint code: " << code;
  diagnostic.severity = info->severity;
  diagnostic.message = std::move(message);
  diagnostic.span = span;
  return diagnostic;
}

Diagnostic DiagnosticFromStatus(const Status& status) {
  // Every floq parser reports "... at L:C: message"; lift the anchor into
  // the span so editors can jump to it.
  std::string_view message = status.message();
  SourceSpan span;
  size_t at = message.rfind(" at ");
  size_t start = at == std::string_view::npos ? 0 : at + 4;
  if (at != std::string_view::npos) {
    int line = 0, column = 0;
    size_t i = start;
    while (i < message.size() &&
           std::isdigit(static_cast<unsigned char>(message[i]))) {
      line = line * 10 + (message[i] - '0');
      ++i;
    }
    if (i < message.size() && message[i] == ':' && i > start) {
      size_t col_start = ++i;
      while (i < message.size() &&
             std::isdigit(static_cast<unsigned char>(message[i]))) {
        column = column * 10 + (message[i] - '0');
        ++i;
      }
      if (i > col_start && i < message.size() && message[i] == ':') {
        span = SourceSpan{line, column, line, column};
      }
    }
  }
  return MakeDiagnostic("FLQ000", std::string(message), span);
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

void SortDiagnostics(std::vector<Diagnostic>& diagnostics) {
  auto sort_key = [](const Diagnostic& d) {
    // Unknown spans sort after every located diagnostic.
    int line = d.span.known() ? d.span.line : INT32_MAX;
    int column = d.span.known() ? d.span.column : INT32_MAX;
    return std::make_tuple(line, column, std::string_view(d.code));
  };
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [&](const Diagnostic& a, const Diagnostic& b) {
                     return sort_key(a) < sort_key(b);
                   });
}

std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view filename) {
  std::string out;
  if (!filename.empty()) out = StrCat(filename, ":");
  if (diagnostic.span.known()) {
    out = StrCat(out, diagnostic.span.line, ":", diagnostic.span.column, ":");
  }
  if (!out.empty()) out += ' ';
  out = StrCat(out, SeverityName(diagnostic.severity), ": ",
               diagnostic.message, " [", diagnostic.code, "]");
  for (const std::string& note : diagnostic.notes) {
    out = StrCat(out, "\n    note: ", note);
  }
  return out;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename) {
  std::string out;
  int errors = 0, warnings = 0;
  for (const Diagnostic& d : diagnostics) {
    out = StrCat(out, FormatDiagnostic(d, filename), "\n");
    if (d.severity == Severity::kError) ++errors;
    if (d.severity == Severity::kWarning) ++warnings;
  }
  if (!diagnostics.empty()) {
    out = StrCat(out, errors, " error(s), ", warnings, " warning(s)\n");
  }
  return out;
}

namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    const LintCodeInfo* info = FindLintCode(d.code);
    out = StrCat(out, "\n  {\"code\": \"", JsonEscape(d.code), "\", \"name\": \"",
                 info != nullptr ? info->name : "", "\", \"severity\": \"",
                 SeverityName(d.severity), "\"");
    if (!filename.empty()) {
      out = StrCat(out, ", \"file\": \"", JsonEscape(filename), "\"");
    }
    out = StrCat(out, ", \"message\": \"", JsonEscape(d.message), "\"");
    if (d.span.known()) {
      out = StrCat(out, ", \"span\": {\"line\": ", d.span.line,
                   ", \"column\": ", d.span.column,
                   ", \"end_line\": ", d.span.end_line,
                   ", \"end_column\": ", d.span.end_column, "}");
    }
    out += ", \"notes\": [";
    for (size_t n = 0; n < d.notes.size(); ++n) {
      if (n > 0) out += ", ";
      out = StrCat(out, "\"", JsonEscape(d.notes[n]), "\"");
    }
    out += "]}";
  }
  out += diagnostics.empty() ? "]" : "\n]";
  return out;
}

}  // namespace floq::analysis
