#ifndef FLOQ_ANALYSIS_QUERY_LINTS_H_
#define FLOQ_ANALYSIS_QUERY_LINTS_H_

#include <cstdint>
#include <vector>

#include "analysis/diagnostic.h"
#include "containment/governor.h"
#include "query/conjunctive_query.h"
#include "term/world.h"

// Per-query lints (FLQ0xx). Structural checks are pure; the semantic
// checks reuse the paper machinery: FLQ006 probes the Sigma_FL chase of
// the query for failure (rho_4 equating distinct constants means the
// query is unsatisfiable on every legal database), FLQ007 runs
// containment-based minimization (src/containment/minimize) and flags
// atoms whose removal keeps the query equivalent under Sigma_FL — the
// optimization the paper motivates in its introduction.

namespace floq::analysis {

struct QueryLintOptions {
  /// FLQ006: chase the query a few levels looking for failure.
  bool chase_probe = true;
  int chase_probe_max_level = 3;
  uint64_t chase_probe_max_atoms = 50'000;

  /// FLQ007: Sigma_FL minimization; skipped for bodies larger than the
  /// cap (each candidate atom costs a containment check).
  bool redundancy = true;
  int redundancy_max_atoms = 10;

  /// Resource budget shared by the semantic probes (the FLQ006 chase
  /// probe and each FLQ007 containment check). A trip keeps the lint
  /// silent — an undecided probe never produces a diagnostic, wrong or
  /// otherwise.
  ResourceBudget budget;
};

/// Lints one rule or goal. Diagnostics carry spans when the query was
/// produced by a span-recording parser over `world`.
std::vector<Diagnostic> LintQuery(World& world, const ConjunctiveQuery& query,
                                  const QueryLintOptions& options = {});

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_QUERY_LINTS_H_
