#include "analysis/cost_model.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/strings.h"

namespace floq::analysis {

namespace {

SourceSpan SpanOf(const World& world, uint32_t span_id) {
  return world.spans().at(span_id);
}

}  // namespace

uint64_t ChaseGrowthModel::AtomsAtLevel(int level, uint64_t cap) const {
  if (failed) return 0;
  if (completed || level <= probe_level || per_level <= 1.0) {
    return std::min(probe_atoms, cap);
  }
  // Geometric extrapolation past the probe horizon, saturated early so a
  // steep ratio cannot overflow the multiply.
  double atoms = double(probe_atoms);
  for (int k = probe_level; k < level; ++k) {
    atoms *= per_level;
    if (atoms >= double(cap)) return cap;
  }
  return uint64_t(atoms);
}

double ChaseGrowthModel::ConfidenceAtLevel(int level) const {
  if (failed || completed || level <= probe_level || per_level <= 1.0) {
    return 1.0;
  }
  // Each extrapolated level compounds the fit error; 0.9 per level is a
  // heuristic tag, not a probability — consumers only compare magnitudes.
  return std::pow(0.9, double(level - probe_level));
}

ChaseGrowthModel FitChaseGrowth(const ChaseResult& probe) {
  ChaseGrowthModel model;
  model.failed = probe.failed();
  model.completed = probe.outcome() == ChaseOutcome::kCompleted;
  model.probe_level = probe.max_level();
  model.level0_atoms = probe.CountUpToLevel(0);
  model.probe_atoms = probe.size();
  if (model.probe_level >= 1) {
    const uint64_t prev = probe.CountUpToLevel(model.probe_level - 1);
    if (prev > 0 && model.probe_atoms > prev) {
      model.per_level = double(model.probe_atoms) / double(prev);
    }
  }
  return model;
}

namespace {

TargetProfile ProfileIndex(const FactIndex& index,
                           ChaseGrowthModel growth) {
  TargetProfile profile;
  profile.growth = growth;
  // One pass over the atoms discovers which (pred, position, constant)
  // keys exist; the FactIndex stat accessors then price each of them.
  std::set<PredicateId> predicates;
  std::set<std::pair<uint64_t, Term>> constant_keys;  // ((pred<<4)|pos, term)
  for (const Atom& atom : index.atoms()) {
    predicates.insert(atom.predicate());
    for (int i = 0; i < atom.arity(); ++i) {
      if (atom.arg(i).IsConstant()) {
        constant_keys.insert(
            {(uint64_t(atom.predicate()) << 4) | uint64_t(i), atom.arg(i)});
      }
    }
  }
  for (PredicateId pred : predicates) {
    profile.predicate_counts[pred] = index.CountWithPredicate(pred);
    const int arity = kMaxArity;
    for (int pos = 0; pos < arity; ++pos) {
      uint32_t distinct = index.DistinctArgumentValues(pred, pos);
      if (distinct > 0) {
        profile.position_distinct[(uint64_t(pred) << 4) | uint64_t(pos)] =
            distinct;
      }
    }
  }
  for (const auto& [pred_pos, term] : constant_keys) {
    const PredicateId pred = PredicateId(pred_pos >> 4);
    const int pos = int(pred_pos & 0xf);
    profile.constant_counts[(uint64_t(pred) << 36) | (uint64_t(pos) << 32) |
                            uint64_t(term.raw())] =
        index.CountWithArgument(pred, pos, term);
  }
  return profile;
}

}  // namespace

TargetProfile ProfileTarget(const ChaseResult& probe) {
  return ProfileIndex(probe.conjuncts(), FitChaseGrowth(probe));
}

TargetProfile ProfileFacts(const FactIndex& facts) {
  ChaseGrowthModel growth;
  growth.completed = true;
  growth.level0_atoms = facts.size();
  growth.probe_atoms = facts.size();
  return ProfileIndex(facts, growth);
}

PatternProfile ProfilePattern(const ConjunctiveQuery& query) {
  PatternProfile profile;
  profile.atoms = query.body();
  if (profile.atoms.empty()) return profile;
  // Union-find over atoms sharing a variable (the FLQ003 construction).
  std::vector<size_t> parent(profile.atoms.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::map<uint32_t, size_t> owner;  // variable -> first atom seen in
  for (size_t i = 0; i < profile.atoms.size(); ++i) {
    for (Term t : profile.atoms[i]) {
      if (!t.IsVariable()) continue;
      auto [it, fresh] = owner.insert({t.raw(), i});
      if (!fresh) parent[find(i)] = find(it->second);
    }
  }
  std::set<size_t> roots;
  for (size_t i = 0; i < profile.atoms.size(); ++i) roots.insert(find(i));
  profile.join_components = int(roots.size());
  return profile;
}

CostEstimate EstimatePairCost(const TargetProfile& target,
                              const PatternProfile& pattern, int level,
                              uint64_t atom_cap) {
  CostEstimate estimate;
  estimate.chase_levels_bound = level;
  estimate.chase_atoms_bound = target.growth.AtomsAtLevel(level, atom_cap);
  estimate.confidence = target.growth.ConfidenceAtLevel(level);
  if (target.growth.failed || pattern.atoms.empty()) {
    // A failed chase decides the pair for free; an empty pattern matches
    // trivially.
    return estimate;
  }

  // The chase only grows posting lists, never predicates' relative shape
  // (rho_1/rho_5 dominate growth uniformly enough for ranking): scale
  // every probe posting count by the total-atoms ratio.
  const double scale =
      target.growth.probe_atoms > 0
          ? double(estimate.chase_atoms_bound) /
                double(target.growth.probe_atoms)
          : 1.0;

  // Most-constrained-first walk, mirroring the kernel's atom ordering:
  // the next atom is the one with the fewest estimated candidates given
  // the variables bound so far. The search-tree node count is the sum of
  // partial-assignment counts along that order.
  const size_t n = pattern.atoms.size();
  std::vector<bool> used(n, false);
  std::set<uint32_t> bound;
  auto candidates = [&](const Atom& atom) {
    double cand = scale * double(target.PredicateCount(atom.predicate()));
    if (cand <= 0.0) return 0.0;
    for (int i = 0; i < atom.arity(); ++i) {
      Term t = atom.arg(i);
      if (t.IsVariable()) {
        if (bound.count(t.raw()) != 0) {
          uint32_t distinct = target.DistinctAt(atom.predicate(), i);
          if (distinct > 1) cand /= double(distinct);
        }
        continue;
      }
      // Constant selectivity: posting length of (pred, i, t) against the
      // predicate's total. The chase invents only nulls, so a constant
      // absent from the probe closure stays absent at every level.
      const uint32_t pred_count = target.PredicateCount(atom.predicate());
      const uint32_t with_constant =
          target.ConstantCount(atom.predicate(), i, t);
      if (with_constant == 0) return 0.0;
      cand *= double(with_constant) / double(std::max(pred_count, 1u));
    }
    return cand;
  };

  double nodes = 0.0;
  double prefix = 1.0;
  for (size_t step = 0; step < n; ++step) {
    double best_cand = 0.0;
    size_t best = n;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      double cand = candidates(pattern.atoms[i]);
      if (best == n || cand < best_cand) {
        best = i;
        best_cand = cand;
      }
    }
    used[best] = true;
    // Each live partial assignment probes this atom's posting list once
    // (the `prefix` term) and extends into `cand` children.
    nodes += prefix + prefix * best_cand;
    prefix *= best_cand;
    for (Term t : pattern.atoms[best]) {
      if (t.IsVariable()) bound.insert(t.raw());
    }
  }
  estimate.hom_fanout_bound = nodes;
  return estimate;
}

std::vector<Diagnostic> LintDependencyCost(const DependencySet& dependencies,
                                           const World& world) {
  std::vector<Diagnostic> out;
  BoundednessReport report = AnalyzeBoundedness(dependencies, world);
  if (report.degree != NullDegree::kPolynomial) {
    // kUnbounded is FLD101's finding; kNone/kLinear are benign.
    return out;
  }
  Diagnostic d = MakeDiagnostic(
      "FLD201",
      StrCat("null generation is polynomial of degree ", report.witness_degree,
             ": the chase terminates but can materialize O(n^",
             report.witness_degree,
             ") nulls on an n-element instance (", report.positions.size(),
             " position(s) receive invented values)"));
  d.notes.push_back(StrCat(
      "witness special-edge chain (depth ", report.witness_degree, "): ",
      WitnessPathToString(report.witness, dependencies, world)));
  for (const PositionBoundedness& pb : report.positions) {
    if (pb.degree != NullDegree::kPolynomial) continue;
    d.notes.push_back(StrCat(pb.position.ToString(world), ": degree ",
                             pb.witness_degree));
  }
  out.push_back(std::move(d));
  return out;
}

QueryCostReport AnalyzeQueryCost(World& world, const ConjunctiveQuery& query,
                                 const CostAnalysisOptions& options) {
  QueryCostReport report;

  ChaseOptions chase_options;
  chase_options.max_level = std::max(options.probe_levels, 0);
  chase_options.max_atoms = options.probe_max_atoms;
  ChaseResult probe = ChaseQuery(world, query, chase_options);

  TargetProfile target = ProfileTarget(probe);
  PatternProfile pattern = ProfilePattern(query);
  report.estimate =
      EstimatePairCost(target, pattern, TheoremTwelveLevel(query, query),
                       options.chase_atom_budget);
  report.boundedness = AnalyzeSigmaBoundedness(world, query.body());

  if (pattern.join_components > 1) {
    Diagnostic d = MakeDiagnostic(
        "FLD202",
        StrCat("cross-join: the body splits into ", pattern.join_components,
               " variable-disjoint components, so the homomorphism fan-out "
               "is the product of the per-component fan-outs (estimated ",
               uint64_t(report.estimate.hom_fanout_bound), " search nodes)"),
        SpanOf(world, query.span()));
    report.diagnostics.push_back(std::move(d));
  }
  if (report.estimate.chase_atoms_bound >= options.chase_atom_budget) {
    Diagnostic d = MakeDiagnostic(
        "FLD203",
        StrCat("estimated chase exceeds the default governor budget: ~",
               report.estimate.chase_atoms_bound, " conjuncts at level ",
               report.estimate.chase_levels_bound, " (budget ",
               options.chase_atom_budget, ", confidence ",
               int(report.estimate.confidence * 100),
               "%); containment checks with this query on the left will "
               "degrade to UNKNOWN unless the budget is raised"),
        SpanOf(world, query.span()));
    if (report.boundedness.degree == NullDegree::kUnbounded) {
      d.notes.push_back(
          "the body reaches a mandatory-attribute cycle: the chase is "
          "infinite (see FLD103)");
      for (const MandatoryEdge& edge : report.boundedness.witness) {
        d.notes.push_back(edge.ToString(world));
      }
    }
    report.diagnostics.push_back(std::move(d));
  }
  return report;
}

}  // namespace floq::analysis
