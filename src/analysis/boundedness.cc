#include "analysis/boundedness.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "term/predicate.h"
#include "util/strings.h"

namespace floq::analysis {

namespace {

// Same packing AnalyzeWeakAcyclicity and dependency_lints use for a
// (predicate, position) node.
uint64_t PositionKey(const DependencyPosition& pos) {
  return (uint64_t(pos.pred) << 8) | uint64_t(pos.index);
}

std::string EdgeLabel(const DependencyEdge& edge,
                      const DependencySet& dependencies) {
  std::string name =
      edge.tgd_index >= 0 &&
              size_t(edge.tgd_index) < dependencies.tgds.size() &&
              !dependencies.tgds[edge.tgd_index].name.empty()
          ? dependencies.tgds[edge.tgd_index].name
          : StrCat("tgd", edge.tgd_index);
  if (edge.special) name += "*";
  return name;
}

}  // namespace

const char* NullDegreeName(NullDegree degree) {
  switch (degree) {
    case NullDegree::kNone:
      return "none";
    case NullDegree::kLinear:
      return "linear";
    case NullDegree::kPolynomial:
      return "polynomial";
    case NullDegree::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

std::string WitnessPathToString(const std::vector<DependencyEdge>& witness,
                                const DependencySet& dependencies,
                                const World& world) {
  if (witness.empty()) return "";
  std::string out = witness.front().from.ToString(world);
  for (const DependencyEdge& edge : witness) {
    out = StrCat(out, " --", EdgeLabel(edge, dependencies), "--> ",
                 edge.to.ToString(world));
  }
  return out;
}

BoundednessReport AnalyzeBoundedness(const DependencySet& dependencies,
                                     const World& world) {
  WeakAcyclicityResult wa = AnalyzeWeakAcyclicity(dependencies, world);

  // Collect the node set and a dense numbering.
  std::map<uint64_t, int> node_of;
  std::vector<DependencyPosition> positions;
  auto intern = [&](const DependencyPosition& pos) {
    auto [it, fresh] = node_of.insert({PositionKey(pos), int(positions.size())});
    if (fresh) positions.push_back(pos);
    return it->second;
  };
  struct Arc {
    int from, to;
    size_t edge;  // index into wa.edges
  };
  std::vector<Arc> arcs;
  arcs.reserve(wa.edges.size());
  for (size_t e = 0; e < wa.edges.size(); ++e) {
    arcs.push_back({intern(wa.edges[e].from), intern(wa.edges[e].to), e});
  }
  const int n = int(positions.size());
  std::vector<std::vector<size_t>> out_arcs(n);
  for (size_t a = 0; a < arcs.size(); ++a) out_arcs[arcs[a].from].push_back(a);

  // Tarjan SCC (iterative).
  std::vector<int> scc_of(n, -1), low(n, 0), disc(n, -1);
  std::vector<int> tarjan_stack;
  std::vector<bool> on_stack(n, false);
  int timer = 0, scc_count = 0;
  struct Frame {
    int node;
    size_t next = 0;
  };
  for (int start = 0; start < n; ++start) {
    if (disc[start] != -1) continue;
    std::vector<Frame> stack{{start}};
    disc[start] = low[start] = timer++;
    tarjan_stack.push_back(start);
    on_stack[start] = true;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      int u = frame.node;
      if (frame.next < out_arcs[u].size()) {
        int v = arcs[out_arcs[u][frame.next++]].to;
        if (disc[v] == -1) {
          disc[v] = low[v] = timer++;
          tarjan_stack.push_back(v);
          on_stack[v] = true;
          stack.push_back({v});
        } else if (on_stack[v]) {
          low[u] = std::min(low[u], disc[v]);
        }
      } else {
        if (low[u] == disc[u]) {
          while (true) {
            int w = tarjan_stack.back();
            tarjan_stack.pop_back();
            on_stack[w] = false;
            scc_of[w] = scc_count;
            if (w == u) break;
          }
          ++scc_count;
        }
        stack.pop_back();
        if (!stack.empty()) {
          low[stack.back().node] = std::min(low[stack.back().node], low[u]);
        }
      }
    }
  }

  // An SCC holding a special edge diverges (the weak-acyclicity
  // refutation), and so does everything null flow can reach from it.
  std::vector<bool> scc_unbounded(scc_count, false);
  for (const Arc& arc : arcs) {
    if (wa.edges[arc.edge].special && scc_of[arc.from] == scc_of[arc.to]) {
      scc_unbounded[scc_of[arc.from]] = true;
    }
  }
  std::vector<bool> unbounded(n, false);
  {
    std::vector<int> work;
    for (int u = 0; u < n; ++u) {
      if (scc_unbounded[scc_of[u]]) {
        unbounded[u] = true;
        work.push_back(u);
      }
    }
    while (!work.empty()) {
      int u = work.back();
      work.pop_back();
      for (size_t a : out_arcs[u]) {
        int v = arcs[a].to;
        if (!unbounded[v]) {
          unbounded[v] = true;
          work.push_back(v);
        }
      }
    }
  }

  // Longest special-edge chain into each bounded position: work-list
  // relaxation depth(to) = max(depth(to), depth(from) + special). Bounded
  // positions sit in special-free SCCs, so strict improvements are capped
  // by the special-edge count and the loop terminates; predecessor edges
  // recorded at each strict improvement reconstruct an acyclic witness
  // (each pred reached its depth strictly before the node it improved).
  std::vector<int> depth(n, 0);
  std::vector<int> pred(n, -1);  // arc index of the recorded improvement
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t a = 0; a < arcs.size(); ++a) {
      const Arc& arc = arcs[a];
      if (unbounded[arc.from] || unbounded[arc.to]) continue;
      int cand = depth[arc.from] + (wa.edges[arc.edge].special ? 1 : 0);
      if (cand > depth[arc.to]) {
        depth[arc.to] = cand;
        pred[arc.to] = int(a);
        changed = true;
      }
    }
  }

  auto witness_path = [&](int node) {
    std::vector<DependencyEdge> path;
    for (int u = node; pred[u] != -1; u = arcs[pred[u]].from) {
      path.push_back(wa.edges[arcs[pred[u]].edge]);
    }
    std::reverse(path.begin(), path.end());
    return path;
  };

  BoundednessReport report;
  for (int u = 0; u < n; ++u) {
    PositionBoundedness pb;
    pb.position = positions[u];
    if (unbounded[u]) {
      pb.degree = NullDegree::kUnbounded;
      pb.witness_degree = depth[u];
      pb.witness = wa.witness;
    } else if (depth[u] == 0) {
      continue;  // never holds an invented value
    } else {
      pb.degree = depth[u] == 1 ? NullDegree::kLinear : NullDegree::kPolynomial;
      pb.witness_degree = depth[u];
      pb.witness = witness_path(u);
    }
    report.positions.push_back(std::move(pb));
  }
  std::sort(report.positions.begin(), report.positions.end(),
            [](const PositionBoundedness& a, const PositionBoundedness& b) {
              if (a.degree != b.degree) return a.degree > b.degree;
              return a.witness_degree > b.witness_degree;
            });

  if (!wa.weakly_acyclic) {
    report.degree = NullDegree::kUnbounded;
    report.witness = wa.witness;
    for (const PositionBoundedness& pb : report.positions) {
      report.witness_degree = std::max(report.witness_degree, pb.witness_degree);
    }
  } else if (!report.positions.empty()) {
    const PositionBoundedness& worst = report.positions.front();
    report.degree = worst.degree;
    report.witness_degree = worst.witness_degree;
    report.witness = worst.witness;
  }
  return report;
}

SigmaBoundedness AnalyzeSigmaBoundedness(const World& world,
                                         const std::vector<Atom>& facts) {
  (void)world;
  SigmaBoundedness result;

  // Mandatory-attribute class graph, indexed as in FindMandatoryCycle —
  // except the walk starts from *every* term, variables included: the
  // chase treats query variables as plain values, so a variable typed
  // into a mandatory-cycle class triggers the same rho_5 cascade a
  // constant would.
  std::map<uint32_t, std::vector<Term>> supers;
  std::map<uint32_t, std::vector<std::pair<Term, uint32_t>>> mandatory_of;
  std::map<uint32_t, std::vector<std::tuple<Term, Term, uint32_t>>> type_of;
  for (const Atom& fact : facts) {
    if (fact.predicate() == pfl::kSub && fact.arity() == 2) {
      supers[fact.arg(0).raw()].push_back(fact.arg(1));
    } else if (fact.predicate() == pfl::kMandatory && fact.arity() == 2) {
      mandatory_of[fact.arg(1).raw()].push_back(
          {fact.arg(0), fact.provenance()});
    } else if (fact.predicate() == pfl::kType && fact.arity() == 3) {
      type_of[fact.arg(0).raw()].push_back(
          {fact.arg(1), fact.arg(2), fact.provenance()});
    }
  }

  auto upward_closure = [&](Term c) {
    std::vector<Term> closure = {c};
    std::set<uint32_t> seen = {c.raw()};
    for (size_t i = 0; i < closure.size(); ++i) {
      auto it = supers.find(closure[i].raw());
      if (it == supers.end()) continue;
      for (Term super : it->second) {
        if (seen.insert(super.raw()).second) closure.push_back(super);
      }
    }
    return closure;
  };

  auto edges_of = [&](Term c) {
    std::vector<MandatoryEdge> edges;
    std::set<std::pair<uint32_t, uint32_t>> seen;  // (attr, target)
    std::vector<Term> closure = upward_closure(c);
    for (Term d : closure) {
      auto mand = mandatory_of.find(d.raw());
      if (mand == mandatory_of.end()) continue;
      for (const auto& [attr, mand_span] : mand->second) {
        for (Term e : closure) {
          auto typed = type_of.find(e.raw());
          if (typed == type_of.end()) continue;
          for (const auto& [type_attr, target, type_span] : typed->second) {
            if (!(type_attr == attr)) continue;
            if (!seen.insert({attr.raw(), target.raw()}).second) continue;
            edges.push_back(
                MandatoryEdge{c, attr, target, mand_span, type_span});
          }
        }
      }
    }
    return edges;
  };

  // Memoized longest-path DFS with gray-node cycle extraction: depth(c) is
  // the longest mandatory chain out of c, i.e. how deep the rho_5 cascade
  // nests values invented under c.
  std::map<uint32_t, int> color;  // missing = white, 1 gray, 2 black
  std::map<uint32_t, int> memo_depth;
  std::map<uint32_t, MandatoryEdge> best_edge;  // the deepest child per node
  struct Frame {
    Term node;
    std::vector<MandatoryEdge> edges;
    size_t next = 0;
    int depth = 0;
  };

  std::set<uint32_t> starts_seen;
  std::vector<Term> starts;
  for (const Atom& fact : facts) {
    for (Term t : fact) {
      if (starts_seen.insert(t.raw()).second) starts.push_back(t);
    }
  }

  for (Term start : starts) {
    if (color.count(start.raw()) != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({start, edges_of(start)});
    color[start.raw()] = 1;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.edges.size()) {
        color[frame.node.raw()] = 2;
        memo_depth[frame.node.raw()] = frame.depth;
        int child_depth = frame.depth;
        Term done = frame.node;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          if (child_depth + 1 > parent.depth) {
            parent.depth = child_depth + 1;
            best_edge[parent.node.raw()] = parent.edges[parent.next - 1];
          }
        }
        (void)done;
        continue;
      }
      MandatoryEdge edge = frame.edges[frame.next++];
      auto it = color.find(edge.target.raw());
      if (it != color.end() && it->second == 1) {
        // Cycle: extract it from the gray path, as FindMandatoryCycle does.
        size_t from = 0;
        while (!(stack[from].node == edge.target)) ++from;
        for (size_t i = from; i + 1 < stack.size(); ++i) {
          result.witness.push_back(stack[i].edges[stack[i].next - 1]);
        }
        result.witness.push_back(edge);
        result.degree = NullDegree::kUnbounded;
        return result;
      }
      if (it != color.end()) {
        // Black: reuse the memoized depth.
        int cand = memo_depth[edge.target.raw()] + 1;
        if (cand > frame.depth) {
          frame.depth = cand;
          best_edge[frame.node.raw()] = edge;
        }
        continue;
      }
      color[edge.target.raw()] = 1;
      stack.push_back({edge.target, edges_of(edge.target)});
    }
  }

  Term deepest;
  for (Term start : starts) {
    auto it = memo_depth.find(start.raw());
    if (it != memo_depth.end() && it->second > result.mandatory_depth) {
      result.mandatory_depth = it->second;
      deepest = start;
    }
  }
  if (result.mandatory_depth > 0) {
    result.degree = NullDegree::kLinear;
    Term walk = deepest;
    for (int i = 0; i < result.mandatory_depth; ++i) {
      auto it = best_edge.find(walk.raw());
      if (it == best_edge.end()) break;
      result.witness.push_back(it->second);
      walk = it->second.target;
    }
  }
  return result;
}

}  // namespace floq::analysis
