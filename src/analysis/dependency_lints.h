#ifndef FLOQ_ANALYSIS_DEPENDENCY_LINTS_H_
#define FLOQ_ANALYSIS_DEPENDENCY_LINTS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "chase/dependencies.h"
#include "term/atom.h"
#include "term/world.h"

// Dependency-set and knowledge-base termination analyses (FLD1xx).
//
// FLD101/FLD102 grade a user TGD set for chase termination: weak
// acyclicity (Fagin et al.) with a witness cycle, refined by joint
// acyclicity (Kroetzsch & Rudolph, IJCAI 2011), which still guarantees
// termination for sets weak acyclicity rejects. Sigma_FL itself fails
// both — its chase really is infinite in general (Section 4 of the
// paper).
//
// FLD103 is the paper's Section-4 trigger made concrete: a cycle
// c1 -[a1]-> c2 -[a2]-> ... -> c1 where each ci has (possibly inherited)
// mandatory attribute ai typed into c_{i+1} forces rho_5 and rho_1 to
// invent members forever. A KB whose class graph has such a cycle can
// never be fully saturated.

namespace floq::analysis {

/// Joint acyclicity: build Mov(y) for each existential variable y (the
/// positions its invented values can reach through frontier variables)
/// and test the existential-dependency graph for cycles. Implies chase
/// termination; strictly weaker a requirement than weak acyclicity.
bool IsJointlyAcyclic(const DependencySet& dependencies);

/// One edge of the mandatory-attribute class graph: `cls` has mandatory
/// attribute `attr` (inherited along sub) typed into `target`. The spans
/// locate the generating mandatory/type facts when known.
struct MandatoryEdge {
  Term cls;
  Term attr;
  Term target;
  uint32_t mandatory_span = 0;
  uint32_t type_span = 0;

  /// "person -[spouse]-> person".
  std::string ToString(const World& world) const;
};

struct MandatoryCycleReport {
  bool cyclic = false;
  /// The witness cycle: cycle[i].target == cycle[i+1].cls, wrapping.
  std::vector<MandatoryEdge> cycle;
};

/// Scans ground P_FL facts for a mandatory-attribute cycle, closing
/// mandatory and type declarations upward along sub (rho_7/rho_9: both
/// inherit to subclasses; membership of an invented value then reimports
/// them via rho_3/rho_10).
MandatoryCycleReport FindMandatoryCycle(const World& world,
                                        const std::vector<Atom>& facts);

/// FLD101/FLD102 for a dependency set.
std::vector<Diagnostic> LintDependencySet(const DependencySet& dependencies,
                                          const World& world);

/// FLD103 for a fact base.
std::vector<Diagnostic> LintFacts(const World& world,
                                  const std::vector<Atom>& facts);

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_DEPENDENCY_LINTS_H_
