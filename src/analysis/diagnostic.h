#ifndef FLOQ_ANALYSIS_DIAGNOSTIC_H_
#define FLOQ_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "term/source_span.h"
#include "util/status.h"

// Diagnostics infrastructure for the floq static analyzer (floq lint).
// Every analyzer reports through one channel: a Diagnostic with a stable
// lint code, a severity, a message, an exact source span (when the parsed
// input recorded one), and optional supporting note lines (witness
// cycles, component lists). The registry below is the single source of
// truth for codes; DESIGN.md section 10 documents it.

namespace floq::analysis {

enum class Severity {
  kError,    // the input is wrong: it will fail or silently misbehave
  kWarning,  // suspicious: likely a typo or a performance hazard
  kNote,     // informational: an optimization opportunity
};

/// "error" / "warning" / "note".
const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string code;  // stable lint code, e.g. "FLQ001"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceSpan span;                 // !known() when no span was recorded
  std::vector<std::string> notes;  // supporting lines (witness paths etc.)
};

struct LintCodeInfo {
  const char* code;
  const char* name;   // kebab-case slug
  Severity severity;  // default severity
  const char* summary;
};

/// The stable lint-code registry, sorted by code.
const std::vector<LintCodeInfo>& LintCodes();

/// Looks up a code; nullptr when unknown.
const LintCodeInfo* FindLintCode(std::string_view code);

/// A diagnostic carrying the registry's default severity for `code`.
Diagnostic MakeDiagnostic(std::string_view code, std::string message,
                          SourceSpan span = {});

/// Converts an error Status whose message carries an "at L:C:" anchor
/// (every floq lex/parse error does) into a located FLQ000 diagnostic.
Diagnostic DiagnosticFromStatus(const Status& status);

/// True if any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Sorts by source position (unknown spans last), then by code.
void SortDiagnostics(std::vector<Diagnostic>& diagnostics);

/// "file:3:14: warning: message [FLQ002]" plus indented note lines.
std::string FormatDiagnostic(const Diagnostic& diagnostic,
                             std::string_view filename = {});

/// All diagnostics, one per line (notes indented), plus a trailing
/// "N error(s), M warning(s)" summary line when non-empty.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename = {});

/// Machine-readable JSON: an array of objects with code, name, severity,
/// message, span {line, column, end_line, end_column} and notes.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics,
                              std::string_view filename = {});

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_DIAGNOSTIC_H_
