#include "analysis/dependency_lints.h"

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "term/predicate.h"
#include "util/strings.h"

namespace floq::analysis {

namespace {

// A (predicate, position) node packed into one integer, matching the
// encoding AnalyzeWeakAcyclicity uses.
uint64_t PositionKey(PredicateId pred, int index) {
  return (uint64_t(pred) << 8) | uint64_t(index);
}

std::vector<Term> FrontierVariables(const Tgd& tgd) {
  std::set<uint32_t> body_vars;
  for (const Atom& atom : tgd.body) {
    for (Term t : atom) {
      if (t.IsVariable()) body_vars.insert(t.raw());
    }
  }
  std::vector<Term> frontier;
  std::set<uint32_t> seen;
  for (Term t : tgd.head) {
    if (t.IsVariable() && body_vars.count(t.raw()) != 0 &&
        seen.insert(t.raw()).second) {
      frontier.push_back(t);
    }
  }
  return frontier;
}

std::set<uint64_t> BodyPositionsOf(const Tgd& tgd, Term x) {
  std::set<uint64_t> positions;
  for (const Atom& atom : tgd.body) {
    for (int i = 0; i < atom.arity(); ++i) {
      if (atom.arg(i) == x) positions.insert(PositionKey(atom.predicate(), i));
    }
  }
  return positions;
}

std::set<uint64_t> HeadPositionsOf(const Tgd& tgd, Term x) {
  std::set<uint64_t> positions;
  for (int i = 0; i < tgd.head.arity(); ++i) {
    if (tgd.head.arg(i) == x) positions.insert(PositionKey(tgd.head.predicate(), i));
  }
  return positions;
}

bool Subset(const std::set<uint64_t>& small, const std::set<uint64_t>& big) {
  for (uint64_t k : small) {
    if (big.count(k) == 0) return false;
  }
  return !small.empty();
}

}  // namespace

bool IsJointlyAcyclic(const DependencySet& dependencies) {
  // One entry per existential variable occurrence site (rule, variable).
  struct ExVar {
    size_t tgd_index;
    Term variable;
    std::set<uint64_t> mov;  // positions its invented values can reach
  };
  std::vector<ExVar> ex_vars;
  for (size_t ti = 0; ti < dependencies.tgds.size(); ++ti) {
    for (Term y : dependencies.tgds[ti].ExistentialVariables()) {
      ex_vars.push_back({ti, y, {}});
    }
  }
  if (ex_vars.empty()) return true;

  // Mov(y): start from y's head positions, then close under frontier
  // propagation — whenever every body position of a frontier variable x
  // of some rule lies in Mov(y), x can be bound entirely to y-values, so
  // x's head positions join Mov(y).
  for (ExVar& ex : ex_vars) {
    ex.mov = HeadPositionsOf(dependencies.tgds[ex.tgd_index], ex.variable);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Tgd& tgd : dependencies.tgds) {
        for (Term x : FrontierVariables(tgd)) {
          if (!Subset(BodyPositionsOf(tgd, x), ex.mov)) continue;
          for (uint64_t k : HeadPositionsOf(tgd, x)) {
            changed |= ex.mov.insert(k).second;
          }
        }
      }
    }
  }

  // Existential-dependency graph: y -> y' when y-values can fire y''s
  // rule (some frontier variable of that rule binds entirely inside
  // Mov(y)). Jointly acyclic iff this graph is acyclic.
  size_t n = ex_vars.size();
  std::vector<std::vector<size_t>> successors(n);
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      const Tgd& rule_b = dependencies.tgds[ex_vars[b].tgd_index];
      for (Term x : FrontierVariables(rule_b)) {
        if (Subset(BodyPositionsOf(rule_b, x), ex_vars[a].mov)) {
          successors[a].push_back(b);
          break;
        }
      }
    }
  }

  std::vector<int> color(n, 0);  // 0 white, 1 gray, 2 black
  std::vector<std::pair<size_t, size_t>> stack;
  for (size_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    stack.push_back({start, 0});
    color[start] = 1;
    while (!stack.empty()) {
      auto& [node, next] = stack.back();
      if (next < successors[node].size()) {
        size_t succ = successors[node][next++];
        if (color[succ] == 1) return false;  // back edge: a cycle
        if (color[succ] == 0) {
          color[succ] = 1;
          stack.push_back({succ, 0});
        }
      } else {
        color[node] = 2;
        stack.pop_back();
      }
    }
  }
  return true;
}

std::string MandatoryEdge::ToString(const World& world) const {
  return StrCat(world.NameOf(cls), " -[", world.NameOf(attr), "]-> ",
                world.NameOf(target));
}

MandatoryCycleReport FindMandatoryCycle(const World& world,
                                        const std::vector<Atom>& facts) {
  (void)world;
  MandatoryCycleReport report;

  // Index the three fact kinds the analysis needs. sub(c, d): d is a
  // superclass of c; mandatory/type declarations inherit downward along
  // sub (rho_7, rho_9), so the effective declarations of a class come
  // from its upward closure sup*.
  std::map<uint32_t, std::vector<Term>> supers;
  std::map<uint32_t, std::vector<std::pair<Term, uint32_t>>> mandatory_of;
  std::map<uint32_t, std::vector<std::tuple<Term, Term, uint32_t>>> type_of;
  for (const Atom& fact : facts) {
    if (fact.predicate() == pfl::kSub && fact.arity() == 2) {
      supers[fact.arg(0).raw()].push_back(fact.arg(1));
    } else if (fact.predicate() == pfl::kMandatory && fact.arity() == 2) {
      mandatory_of[fact.arg(1).raw()].push_back(
          {fact.arg(0), fact.provenance()});
    } else if (fact.predicate() == pfl::kType && fact.arity() == 3) {
      type_of[fact.arg(0).raw()].push_back(
          {fact.arg(1), fact.arg(2), fact.provenance()});
    }
  }

  auto upward_closure = [&](Term c) {
    std::vector<Term> closure = {c};
    std::set<uint32_t> seen = {c.raw()};
    for (size_t i = 0; i < closure.size(); ++i) {
      auto it = supers.find(closure[i].raw());
      if (it == supers.end()) continue;
      for (Term super : it->second) {
        if (seen.insert(super.raw()).second) closure.push_back(super);
      }
    }
    return closure;
  };

  // Outgoing edges of class c: c -[a]-> t whenever a is mandatory for
  // some superclass of c and typed into t by some superclass of c. A
  // member invented in c (or c itself, viewed as an object) then needs an
  // a-value of type t, whose membership in t continues the walk (rho_5,
  // rho_1, rho_3, rho_10).
  auto edges_of = [&](Term c) {
    std::vector<MandatoryEdge> edges;
    std::set<std::pair<uint32_t, uint32_t>> seen;  // (attr, target)
    std::vector<Term> closure = upward_closure(c);
    for (Term d : closure) {
      auto mand = mandatory_of.find(d.raw());
      if (mand == mandatory_of.end()) continue;
      for (const auto& [attr, mand_span] : mand->second) {
        for (Term e : closure) {
          auto typed = type_of.find(e.raw());
          if (typed == type_of.end()) continue;
          for (const auto& [type_attr, target, type_span] : typed->second) {
            if (!(type_attr == attr)) continue;
            if (!seen.insert({attr.raw(), target.raw()}).second) continue;
            edges.push_back(MandatoryEdge{c, attr, target, mand_span,
                                          type_span});
          }
        }
      }
    }
    return edges;
  };

  // Iterative DFS with gray-node cycle extraction. Start nodes: every
  // class with a mandatory declaration somewhere in its closure (only
  // those can have outgoing edges).
  std::set<uint32_t> starts_seen;
  std::vector<Term> starts;
  for (const Atom& fact : facts) {
    for (Term t : fact) {
      if (t.IsConstant() && starts_seen.insert(t.raw()).second) {
        starts.push_back(t);
      }
    }
  }

  std::map<uint32_t, int> color;  // missing = white, 1 gray, 2 black
  struct Frame {
    Term node;
    std::vector<MandatoryEdge> edges;
    size_t next = 0;
  };
  for (Term start : starts) {
    if (color.count(start.raw()) != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({start, edges_of(start)});
    color[start.raw()] = 1;
    while (!stack.empty()) {
      Frame& frame = stack.back();
      if (frame.next >= frame.edges.size()) {
        color[frame.node.raw()] = 2;
        stack.pop_back();
        continue;
      }
      MandatoryEdge edge = frame.edges[frame.next++];
      auto it = color.find(edge.target.raw());
      if (it != color.end() && it->second == 1) {
        // Gray target: the DFS path from edge.target down to `frame`
        // plus this edge closes the cycle.
        size_t from = 0;
        while (!(stack[from].node == edge.target)) ++from;
        for (size_t i = from; i + 1 < stack.size(); ++i) {
          report.cycle.push_back(stack[i].edges[stack[i].next - 1]);
        }
        report.cycle.push_back(edge);
        report.cyclic = true;
        return report;
      }
      if (it == color.end()) {
        color[edge.target.raw()] = 1;
        stack.push_back({edge.target, edges_of(edge.target)});
      }
    }
  }
  return report;
}

std::vector<Diagnostic> LintDependencySet(const DependencySet& dependencies,
                                          const World& world) {
  std::vector<Diagnostic> out;
  WeakAcyclicityResult wa = AnalyzeWeakAcyclicity(dependencies, world);
  if (wa.weakly_acyclic) return out;

  std::vector<std::string> witness;
  witness.reserve(wa.witness.size());
  for (const DependencyEdge& edge : wa.witness) {
    witness.push_back(edge.ToString(dependencies, world));
  }

  if (IsJointlyAcyclic(dependencies)) {
    Diagnostic d = MakeDiagnostic(
        "FLD102",
        "not weakly acyclic, but jointly acyclic: the chase still "
        "terminates on every instance");
    d.notes.push_back("weak-acyclicity witness cycle (refuted by joint "
                      "acyclicity):");
    for (std::string& line : witness) d.notes.push_back(std::move(line));
    out.push_back(std::move(d));
  } else {
    Diagnostic d = MakeDiagnostic(
        "FLD101",
        "dependency set is not weakly acyclic (nor jointly acyclic): the "
        "chase may not terminate; containment checks need a level "
        "override and negative verdicts become inconclusive");
    d.notes.push_back("witness cycle through a special edge (*):");
    for (std::string& line : witness) d.notes.push_back(std::move(line));
    out.push_back(std::move(d));
  }
  return out;
}

std::vector<Diagnostic> LintFacts(const World& world,
                                  const std::vector<Atom>& facts) {
  std::vector<Diagnostic> out;
  MandatoryCycleReport report = FindMandatoryCycle(world, facts);
  if (!report.cyclic) return out;

  uint32_t anchor = report.cycle.front().mandatory_span;
  Diagnostic d = MakeDiagnostic(
      "FLD103",
      "mandatory-attribute cycle: rho_5 must invent a fresh value at every "
      "step, so the Sigma_FL chase of this knowledge base is infinite and "
      "saturation cannot terminate",
      world.spans().at(anchor));
  for (const MandatoryEdge& edge : report.cycle) {
    std::string line = edge.ToString(world);
    SourceSpan mand = world.spans().at(edge.mandatory_span);
    SourceSpan type = world.spans().at(edge.type_span);
    if (mand.known() || type.known()) {
      line += "  (";
      if (mand.known()) line = StrCat(line, "mandatory at ", mand.ToString());
      if (mand.known() && type.known()) line += ", ";
      if (type.known()) line = StrCat(line, "type at ", type.ToString());
      line += ")";
    }
    d.notes.push_back(std::move(line));
  }
  out.push_back(std::move(d));
  return out;
}

}  // namespace floq::analysis
