#include "analysis/query_lints.h"

#include <map>
#include <set>

#include "chase/chase.h"
#include "containment/minimize.h"
#include "term/predicate.h"
#include "util/strings.h"

namespace floq::analysis {

namespace {

SourceSpan SpanOf(const World& world, uint32_t span_id) {
  return world.spans().at(span_id);
}

SourceSpan AtomSpan(const World& world, const Atom& atom) {
  return SpanOf(world, atom.provenance());
}

// FLQ001: head variables missing from the body. The parsers normally
// reject these; the lenient entry points let them through so the linter
// can point at the exact head term.
void LintUnsafeHead(World& world, const ConjunctiveQuery& query,
                    std::vector<Diagnostic>& out) {
  std::set<uint32_t> body_vars;
  for (const Atom& atom : query.body()) {
    for (Term t : atom) {
      if (t.IsVariable()) body_vars.insert(t.raw());
    }
  }
  std::set<uint32_t> reported;
  for (size_t i = 0; i < query.head().size(); ++i) {
    Term t = query.head()[i];
    if (!t.IsVariable() || body_vars.count(t.raw()) != 0) continue;
    if (!reported.insert(t.raw()).second) continue;
    out.push_back(MakeDiagnostic(
        "FLQ001",
        StrCat("head variable ", world.NameOf(t),
               " does not occur in the body"),
        SpanOf(world, query.head_span(int(i)))));
  }
}

// FLQ002: a named variable occurring exactly once in the body and not
// projected by the head joins nothing — usually a typo. Anonymous
// variables (leading '_', including parser-generated _G fresh ones) are
// the idiom for "intentionally unused" and stay silent.
void LintSingletonVariables(World& world, const ConjunctiveQuery& query,
                            std::vector<Diagnostic>& out) {
  std::set<uint32_t> head_vars;
  for (Term t : query.head()) {
    if (t.IsVariable()) head_vars.insert(t.raw());
  }
  std::map<uint32_t, int> counts;
  std::map<uint32_t, const Atom*> first_atom;
  std::map<uint32_t, Term> terms;
  for (const Atom& atom : query.body()) {
    for (Term t : atom) {
      if (!t.IsVariable()) continue;
      ++counts[t.raw()];
      terms.emplace(t.raw(), t);
      first_atom.emplace(t.raw(), &atom);
    }
  }
  for (const auto& [raw, count] : counts) {
    if (count != 1 || head_vars.count(raw) != 0) continue;
    Term t = terms.at(raw);
    std::string name = world.NameOf(t);
    if (!name.empty() && name[0] == '_') continue;
    out.push_back(MakeDiagnostic(
        "FLQ002",
        StrCat("variable ", name,
               " occurs only once; use _ if this is intentional"),
        AtomSpan(world, *first_atom.at(raw))));
  }
}

// FLQ003: variable-disjoint body components multiply answer tuples
// (a cartesian product) — almost always a missing join. Union-find over
// body atoms sharing a variable.
void LintCartesianProduct(World& world, const ConjunctiveQuery& query,
                          std::vector<Diagnostic>& out) {
  const std::vector<Atom>& body = query.body();
  if (body.size() < 2) return;
  std::vector<size_t> parent(body.size());
  for (size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  auto find = [&](size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  std::map<uint32_t, size_t> owner;  // variable -> first atom seen in
  std::vector<bool> has_variable(body.size(), false);
  for (size_t i = 0; i < body.size(); ++i) {
    for (Term t : body[i]) {
      if (!t.IsVariable()) continue;
      has_variable[i] = true;
      auto [it, inserted] = owner.emplace(t.raw(), i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  // Ground atoms are membership conditions, not product factors.
  std::map<size_t, std::vector<size_t>> components;
  for (size_t i = 0; i < body.size(); ++i) {
    if (has_variable[i]) components[find(i)].push_back(i);
  }
  if (components.size() < 2) return;

  Diagnostic d = MakeDiagnostic(
      "FLQ003",
      StrCat("body splits into ", components.size(),
             " variable-disjoint components (cartesian product)"),
      SpanOf(world, query.span()));
  for (const auto& [root, atoms] : components) {
    std::string note = "component:";
    for (size_t i : atoms) {
      note = StrCat(note, " ", body[i].ToString(world));
    }
    d.notes.push_back(std::move(note));
  }
  out.push_back(std::move(d));
}

// Positions of the six P_FL predicates that hold an attribute.
bool IsAttributePosition(PredicateId pred, int index) {
  return (pred == pfl::kData && index == 1) ||
         (pred == pfl::kType && index == 1) ||
         (pred == pfl::kMandatory && index == 0) ||
         (pfl::kFunct == pred && index == 0);
}

// FLQ004: one term playing both the attribute role and the object/class
// role across P_FL atoms. Legal (the domain is untyped) but almost
// always a swapped-argument mistake — mandatory/funct take the attribute
// FIRST, unlike data/type.
void LintPflRoleMisuse(World& world, const ConjunctiveQuery& query,
                       std::vector<Diagnostic>& out) {
  struct Roles {
    const Atom* attr_use = nullptr;
    int attr_pos = 0;
    const Atom* object_use = nullptr;
    int object_pos = 0;
  };
  std::map<uint32_t, Roles> roles;
  std::set<uint32_t> reported;
  for (const Atom& atom : query.body()) {
    PredicateId pred = atom.predicate();
    if (!pfl::IsPfl(pred)) continue;
    for (int i = 0; i < atom.arity(); ++i) {
      Term t = atom.arg(i);
      if (t.IsNull()) continue;
      Roles& r = roles[t.raw()];
      if (IsAttributePosition(pred, i)) {
        if (r.attr_use == nullptr) {
          r.attr_use = &atom;
          r.attr_pos = i;
        }
      } else if (r.object_use == nullptr) {
        r.object_use = &atom;
        r.object_pos = i;
      }
      if (r.attr_use != nullptr && r.object_use != nullptr &&
          reported.insert(t.raw()).second) {
        const PredicateTable& preds = world.predicates();
        Diagnostic d = MakeDiagnostic(
            "FLQ004",
            StrCat(world.NameOf(t), " is used both as an attribute (",
                   preds.NameOf(r.attr_use->predicate()), "[", r.attr_pos,
                   "]) and as an object/class (",
                   preds.NameOf(r.object_use->predicate()), "[", r.object_pos,
                   "])"),
            AtomSpan(world, atom));
        d.notes.push_back(StrCat("attribute use: ",
                                 r.attr_use->ToString(world)));
        d.notes.push_back(StrCat("object/class use: ",
                                 r.object_use->ToString(world)));
        out.push_back(std::move(d));
      }
    }
  }
}

// FLQ005: literally repeated body atoms. Harmless semantically, but they
// cost chase and homomorphism work and usually signal an editing slip.
void LintDuplicateAtoms(World& world, const ConjunctiveQuery& query,
                        std::vector<Diagnostic>& out) {
  const std::vector<Atom>& body = query.body();
  for (size_t i = 0; i < body.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (!(body[j] == body[i])) continue;
      Diagnostic d = MakeDiagnostic(
          "FLQ005",
          StrCat("duplicate atom ", body[i].ToString(world)),
          AtomSpan(world, body[i]));
      SourceSpan first = AtomSpan(world, body[j]);
      if (first.known()) {
        d.notes.push_back(StrCat("first occurrence at ", first.ToString()));
      }
      out.push_back(std::move(d));
      break;
    }
  }
}

// FLQ006: a bounded chase probe. If the chase *fails* (rho_4 forces two
// distinct constants equal), Theorem 4's machinery says the query has no
// answer on any database satisfying Sigma_FL.
void LintUnsatisfiable(World& world, const ConjunctiveQuery& query,
                       const QueryLintOptions& options,
                       std::vector<Diagnostic>& out) {
  ChaseOptions chase_options;
  chase_options.max_level = options.chase_probe_max_level;
  chase_options.max_atoms = options.chase_probe_max_atoms;
  ExecGovernor governor = MakeChaseGovernor(options.budget);
  if (!options.budget.unlimited()) chase_options.governor = &governor;
  ChaseResult chase = ChaseQuery(world, query, chase_options);
  // An interrupted probe stays silent: failure was not demonstrated.
  if (!chase.failed()) return;
  out.push_back(MakeDiagnostic(
      "FLQ006",
      "unsatisfiable under Sigma_FL: a functional attribute (rho_4) forces "
      "two distinct constants to be equal, so the query has no answers on "
      "any legal database",
      SpanOf(world, query.span())));
}

// FLQ007: Sigma_FL-aware redundancy. MinimizeQuery drops atoms whose
// removal keeps the query equivalent under the constraints; each dropped
// atom is reported at its own span.
void LintRedundantAtoms(World& world, const ConjunctiveQuery& query,
                        const QueryLintOptions& options,
                        std::vector<Diagnostic>& out) {
  if (int(query.body().size()) > options.redundancy_max_atoms) return;
  ContainmentOptions containment;
  containment.max_chase_atoms = 200'000;
  // Budget trips inside MinimizeQuery surface as kUnknown containment
  // verdicts, which keep the candidate atom — silent, never wrong.
  containment.budget = options.budget;
  Result<ConjunctiveQuery> minimized =
      MinimizeQuery(world, query, containment);
  if (!minimized.ok()) return;  // stay silent, not wrong
  if (minimized->body().size() == query.body().size()) return;

  std::vector<bool> kept(query.body().size(), false);
  for (const Atom& atom : minimized->body()) {
    for (size_t i = 0; i < query.body().size(); ++i) {
      if (!kept[i] && query.body()[i] == atom) {
        kept[i] = true;
        break;
      }
    }
  }
  for (size_t i = 0; i < query.body().size(); ++i) {
    if (kept[i]) continue;
    out.push_back(MakeDiagnostic(
        "FLQ007",
        StrCat("atom ", query.body()[i].ToString(world),
               " is redundant under Sigma_FL; dropping it keeps the query "
               "equivalent"),
        AtomSpan(world, query.body()[i])));
  }
}

}  // namespace

std::vector<Diagnostic> LintQuery(World& world, const ConjunctiveQuery& query,
                                  const QueryLintOptions& options) {
  std::vector<Diagnostic> out;
  LintUnsafeHead(world, query, out);
  LintSingletonVariables(world, query, out);
  LintCartesianProduct(world, query, out);
  LintPflRoleMisuse(world, query, out);
  LintDuplicateAtoms(world, query, out);

  // The semantic probes need a well-formed query (the chase freezes head
  // variables through the body); skip them when safety already failed.
  bool safe = query.Validate(world).ok();
  if (safe && options.chase_probe) {
    LintUnsatisfiable(world, query, options, out);
  }
  if (safe && options.redundancy && !HasErrors(out)) {
    LintRedundantAtoms(world, query, options, out);
  }
  return out;
}

}  // namespace floq::analysis
