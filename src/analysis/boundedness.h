#ifndef FLOQ_ANALYSIS_BOUNDEDNESS_H_
#define FLOQ_ANALYSIS_BOUNDEDNESS_H_

#include <string>
#include <vector>

#include "analysis/dependency_lints.h"
#include "chase/dependencies.h"
#include "term/atom.h"
#include "term/world.h"

// Null-generation boundedness — the abstract-interpretation layer under
// the cost model (DESIGN.md §15). FLD101/102 grade a dependency set
// *binarily* (does the chase terminate?); the analyses here refine that
// verdict into a degree: how fast can the number of invented nulls grow
// as a function of the instance size?
//
// The abstract domain is the four-point lattice
//
//   kNone  <  kLinear  <  kPolynomial(k)  <  kUnbounded
//
// ordered by growth rate. For a dependency set the grading reads off the
// Fagin-et-al. labeled dependency graph: positions reachable through k
// chained special edges hold nulls nested k deep — O(n^k) of them on an
// n-element instance (Fagin, Kolaitis, Miller, Popa 2003, Thm. 3.9's
// counting argument) — and a cycle through a special edge removes every
// bound (exactly the weak-acyclicity refutation). Every verdict except
// kUnbounded is a sound upper bound on null growth; kUnbounded is a
// may-diverge verdict (the chase of a *particular* instance can still
// terminate).
//
// For a Sigma_FL instance (a KB fact base, or a query body whose
// variables the chase treats as values) the positional graph is useless —
// Sigma_FL itself is not weakly acyclic — so AnalyzeSigmaBoundedness
// grades the *instance-level* mandatory-attribute class graph instead
// (the FLD103 graph): an acyclic graph of depth d means the rho_5 cascade
// dies out after d nesting levels (degree kLinear with witness_degree d),
// while a cycle forces invention forever (kUnbounded, FLD103's verdict).

namespace floq::analysis {

/// How fast the chase can invent nulls, worst case over instances.
enum class NullDegree {
  /// No existential TGD can ever fire transitively: zero fresh nulls.
  kNone,
  /// Nulls are invented, but no invented value can transitively trigger
  /// another invention chain: O(n) nulls.
  kLinear,
  /// Special edges chain to depth k >= 2 without closing a cycle:
  /// O(n^k) nulls.
  kPolynomial,
  /// A cycle through a special edge: null generation has no bound in the
  /// instance size (the weak-acyclicity refutation).
  kUnbounded,
};

/// "none" / "linear" / "polynomial" / "unbounded".
const char* NullDegreeName(NullDegree degree);

/// Grading of one predicate position with its witness through the labeled
/// dependency graph.
struct PositionBoundedness {
  DependencyPosition position;
  NullDegree degree = NullDegree::kNone;
  /// The count of special edges on the worst path into the position: the
  /// exponent of the polynomial null bound (0 for kNone, 1 for kLinear).
  /// For kUnbounded positions it is the depth at which the cycle was
  /// entered, not a bound.
  int witness_degree = 0;
  /// The worst path (consecutive edges chain: witness[i].to ==
  /// witness[i+1].from), or for kUnbounded a cycle through a special
  /// edge.
  std::vector<DependencyEdge> witness;
};

/// Whole-set grading: the worst position plus the per-position table.
struct BoundednessReport {
  NullDegree degree = NullDegree::kNone;
  /// Max special-edge chain depth over all positions (the degree k of the
  /// polynomial bound when degree == kPolynomial).
  int witness_degree = 0;
  /// The worst position's witness path/cycle.
  std::vector<DependencyEdge> witness;
  /// Every position that can hold an invented value (degree > kNone),
  /// worst first.
  std::vector<PositionBoundedness> positions;

  bool bounded() const { return degree != NullDegree::kUnbounded; }
};

/// Grades `dependencies` over the labeled dependency graph. Consistent
/// with AnalyzeWeakAcyclicity: degree == kUnbounded iff the set is not
/// weakly acyclic.
BoundednessReport AnalyzeBoundedness(const DependencySet& dependencies,
                                     const World& world);

/// Instance-level Sigma_FL grading of a fact base or query body (the
/// chase treats query variables as values, so they count as class nodes
/// too — unlike FindMandatoryCycle, which only walks ground terms).
struct SigmaBoundedness {
  NullDegree degree = NullDegree::kNone;
  /// Longest mandatory-attribute chain: the nesting depth of invented
  /// values, and (plus the terminating level-0 phase) a bound on the
  /// level where the rho_5 cascade stabilizes. Meaningless when
  /// kUnbounded.
  int mandatory_depth = 0;
  /// The deepest chain (kLinear) or the invention cycle (kUnbounded).
  std::vector<MandatoryEdge> witness;
};

SigmaBoundedness AnalyzeSigmaBoundedness(const World& world,
                                         const std::vector<Atom>& facts);

/// "P[2] --tgd1*--> Q[0] --tgd2--> P[2]"-style rendering of a witness.
std::string WitnessPathToString(const std::vector<DependencyEdge>& witness,
                                const DependencySet& dependencies,
                                const World& world);

}  // namespace floq::analysis

#endif  // FLOQ_ANALYSIS_BOUNDEDNESS_H_
