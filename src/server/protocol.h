#ifndef FLOQ_SERVER_PROTOCOL_H_
#define FLOQ_SERVER_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/deadline.h"
#include "util/status.h"

// Wire protocol for `floq serve`: length-prefixed JSON frames over a
// local (AF_UNIX) stream socket.
//
//   frame   := u32-LE payload-length, payload bytes
//   payload := one JSON object (UTF-8, no trailing bytes)
//
// Requests carry {"cmd": "...", ...}; responses carry {"ok": true, ...}
// or {"ok": false, "code": "...", "error": "..."} where `code` is one of
// the typed degradation categories (BAD_REQUEST, INVALID, NOT_FOUND,
// OVERLOADED, UNKNOWN, INTERNAL). The frame length is capped at
// kMaxFrameBytes; an oversized prefix is a protocol error and the server
// closes the connection after a typed reply.
//
// The JSON layer below is deliberately minimal (objects, arrays,
// strings, doubles, bools, null; no \u escapes beyond Latin-1, no
// numeric edge pedantry) — it frames small control messages, not data.

namespace floq::server {

inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
// Parser recursion cap: frames are flat command objects, so anything
// deeper than this is hostile input, not a real request.
inline constexpr int kMaxJsonDepth = 32;

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Null() { return Json(); }
  static Json Bool(bool b) {
    Json j;
    j.type_ = Type::kBool;
    j.bool_ = b;
    return j;
  }
  static Json Number(double d) {
    Json j;
    j.type_ = Type::kNumber;
    j.number_ = d;
    return j;
  }
  static Json String(std::string s) {
    Json j;
    j.type_ = Type::kString;
    j.string_ = std::move(s);
    return j;
  }
  static Json Array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json Object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<Json>& items() const { return items_; }
  // Insertion-ordered so serialized responses are deterministic and the
  // crash-recovery suite can compare them as strings.
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  void Append(Json value) { items_.push_back(std::move(value)); }
  // Overwrites an existing key in place (keeps first-insertion order).
  void Set(std::string_view key, Json value);

  // Object lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  // Typed member accessors: error Status when absent or wrong type.
  Result<std::string> GetString(std::string_view key) const;
  Result<int64_t> GetInt(std::string_view key) const;
  Result<bool> GetBool(std::string_view key) const;

  // Compact serialization (no whitespace). Deterministic for a given
  // construction order.
  std::string Serialize() const;

 private:
  void SerializeTo(std::string* out) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

// Parses exactly one JSON value spanning all of `text` (surrounding
// whitespace allowed). Depth-capped at kMaxJsonDepth.
Result<Json> ParseJson(std::string_view text);

// Incremental frame decoder. Feed raw socket bytes with Append; Next()
// yields complete payloads in order. Returns an error Status (and is
// then poisoned) when a frame header announces more than kMaxFrameBytes.
class FrameDecoder {
 public:
  void Append(const char* data, size_t size) {
    buffer_.append(data, size);
  }
  // One decoded payload, std::nullopt if more bytes are needed.
  Result<std::optional<std::string>> Next();
  // Bytes buffered but not yet decoded (tail of a partial frame).
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  bool poisoned_ = false;
};

// Prepends the u32-LE length header.
std::string EncodeFrame(std::string_view payload);

// Blocking frame I/O over a socket fd with a poll(2)-based deadline.
// ReadFrame: NotFound on clean EOF between frames, DeadlineExceeded on
// timeout, InvalidArgument on protocol violations (oversized frame,
// EOF mid-frame). WriteFrame mirrors the deadline handling.
Result<std::string> ReadFrame(int fd, FrameDecoder& decoder,
                              Deadline deadline);
Status WriteFrame(int fd, std::string_view payload, Deadline deadline);

}  // namespace floq::server

#endif  // FLOQ_SERVER_PROTOCOL_H_
