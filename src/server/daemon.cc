#include "server/daemon.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostic.h"
#include "containment/containment.h"
#include "flogic/parser.h"
#include "server/protocol.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/request_context.h"
#include "util/strings.h"
#include "util/trace.h"

namespace floq::server {

namespace {

// ---------------------------------------------------------------------------
// Signals: a self-pipe so the accept loop's poll wakes on SIGTERM/SIGINT.

int g_signal_pipe[2] = {-1, -1};

void OnDrainSignal(int /*sig*/) {
  char byte = 1;
  // Best effort; a full pipe means a wakeup is already pending.
  [[maybe_unused]] ssize_t rc = ::write(g_signal_pipe[1], &byte, 1);
}

Status InstallSignalHandlers() {
  if (g_signal_pipe[0] < 0) {
    if (::pipe(g_signal_pipe) != 0) {
      return InternalError(std::string("pipe: ") + std::strerror(errno));
    }
    ::fcntl(g_signal_pipe[0], F_SETFL, O_NONBLOCK);
    ::fcntl(g_signal_pipe[1], F_SETFL, O_NONBLOCK);
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnDrainSignal;
  ::sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
      ::sigaction(SIGINT, &sa, nullptr) != 0) {
    return InternalError(std::string("sigaction: ") + std::strerror(errno));
  }
  ::signal(SIGPIPE, SIG_IGN);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Admission gate: `workers` permits, a bounded wait queue, immediate shed
// beyond it.

class AdmissionGate {
 public:
  AdmissionGate(int workers, int queue_limit)
      : workers_(std::max(workers, 1)), queue_limit_(std::max(queue_limit, 0)) {}

  // True once a permit is held; false = shed (reply OVERLOADED).
  bool Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (active_ < workers_) {
      ++active_;
      PublishGaugesLocked();
      return true;
    }
    if (waiting_ >= queue_limit_) return false;
    ++waiting_;
    PublishGaugesLocked();
    cv_.wait(lock, [&] { return active_ < workers_; });
    --waiting_;
    ++active_;
    PublishGaugesLocked();
    return true;
  }

  void Exit() {
    std::lock_guard<std::mutex> lock(mu_);
    --active_;
    PublishGaugesLocked();
    cv_.notify_one();
  }

  int active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_;
  }

 private:
  // Under mu_, so the two gauges are mutually consistent.
  void PublishGaugesLocked() {
    if (!MetricsRegistry::enabled()) return;
    static Gauge& inflight = MetricsRegistry::Get().gauge("serve.inflight");
    static Gauge& depth = MetricsRegistry::Get().gauge("serve.queue.depth");
    inflight.Set(active_);
    depth.Set(waiting_);
  }

  const int workers_;
  const int queue_limit_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int active_ = 0;
  int waiting_ = 0;
};

// ---------------------------------------------------------------------------
// Responses

// Stamps the ambient request attribution (util/request_context.h) into a
// reply before serializing: the request_id in the reply is the same id the
// span tree and every log line of this request carry. Replies built
// outside a request scope (accept-path sheds, stream-level errors) pass
// through unstamped.
std::string Finalize(Json reply) {
  if (const RequestContext* context = CurrentRequestContext()) {
    reply.Set("request_id", Json::Number(double(context->id)));
    if (!context->trace_id.empty()) {
      reply.Set("trace_id", Json::String(context->trace_id));
    }
  }
  return reply.Serialize();
}

std::string ErrorReply(const char* code, const std::string& message) {
  Json reply = Json::Object();
  reply.Set("ok", Json::Bool(false));
  reply.Set("code", Json::String(code));
  reply.Set("error", Json::String(message));
  return Finalize(std::move(reply));
}

const char* CodeForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
      return "INVALID";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "INVALID";
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kCancelled:
      return "UNKNOWN";
    default:
      return "INTERNAL";
  }
}

std::string StatusReply(const Status& status) {
  return ErrorReply(CodeForStatus(status), status.message());
}

// ---------------------------------------------------------------------------
// Daemon

class Daemon {
 public:
  explicit Daemon(const DaemonOptions& options)
      : options_(Normalize(options)),
        registry_(RegistryOptions{
            options_.dir,
            BatchContainmentOptions{
                ContainmentOptions{},
                options_.jobs,
            },
            options_.checkpoint_every,
        }),
        gate_(options_.workers, options_.queue_limit) {}

  Status Run() {
    FLOQ_RETURN_IF_ERROR(ConfigureObservability());
    FLOQ_RETURN_IF_ERROR(InstallSignalHandlers());
    DrainPendingSignals();
    FLOQ_RETURN_IF_ERROR(registry_.Open());
    FLOQ_RETURN_IF_ERROR(Listen());
    FLOQ_RETURN_IF_ERROR(StartHttpMetrics());
    FLOQ_LOG(Info, "serve.listening")
        .Str("socket", options_.socket_path)
        .Num("queries", int64_t(registry_.Snapshot()->entries.size()));
    Serve();
    return Drain();
  }

 private:
  static DaemonOptions Normalize(DaemonOptions options) {
    if (options.socket_path.empty()) {
      options.socket_path = options.dir + "/floq.sock";
    }
    options.workers = std::max(options.workers, 1);
    options.queue_limit = std::max(options.queue_limit, 0);
    options.max_connections = std::max(options.max_connections, 1);
    return options;
  }

  Status Listen() {
    struct sockaddr_un addr;
    if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
      return InvalidArgumentError("socket path too long for AF_UNIX: " +
                                  options_.socket_path);
    }
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      return InternalError(std::string("socket: ") + std::strerror(errno));
    }
    // A stale socket file from a crashed daemon would make bind fail;
    // remove it (exclusive ownership of the registry dir is assumed —
    // this is a single-process design).
    ::unlink(options_.socket_path.c_str());
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, options_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return InternalError("bind(" + options_.socket_path +
                           "): " + std::strerror(errno));
    }
    if (::listen(listen_fd_, 64) != 0) {
      return InternalError(std::string("listen: ") + std::strerror(errno));
    }
    return Status::Ok();
  }

  Status ConfigureObservability() {
    // A long-lived server is not operable blind: metrics are always on
    // (the cost is gated by E13/E17), logging level and sink follow the
    // options, tracing is opt-in via --trace-sample.
    MetricsRegistry::set_enabled(true);
    LogLevel level = LogLevel::kInfo;
    if (!options_.log_level.empty() &&
        !ParseLogLevel(options_.log_level, &level)) {
      return InvalidArgumentError("unknown log level '" + options_.log_level +
                                  "' (debug|info|warn|error|off)");
    }
    Logger::Get().set_level(level);
    if (!options_.log_out.empty()) {
      FLOQ_RETURN_IF_ERROR(Logger::Get().OpenFile(options_.log_out));
    }
    if (options_.trace_sample > 0) {
      trace_dir_ = options_.trace_dir.empty() ? options_.dir + "/traces"
                                              : options_.trace_dir;
      if (::mkdir(trace_dir_.c_str(), 0755) != 0 && errno != EEXIST) {
        return InternalError("mkdir(" + trace_dir_ +
                             "): " + std::strerror(errno));
      }
      trace_session_ = std::make_unique<TraceSession>();
    }
    return Status::Ok();
  }

  // Writes the buffered spans to the next rolling trace file and restarts
  // the session. Callers must guarantee quiescence (no connection thread
  // live): the accept loop rotates only when connections_ == 0, and Drain
  // rotates after joining every connection thread — the TraceSession
  // single-writer contract (trace.h) holds at both sites.
  void RotateTraceLocked() {
    if (trace_session_ == nullptr || trace_session_->size() == 0) return;
    std::string path =
        StrCat(trace_dir_, "/floq-trace-", trace_file_seq_++, ".json");
    std::string json = trace_session_->ToJson();
    FILE* file = std::fopen(path.c_str(), "w");
    if (file == nullptr) {
      FLOQ_LOG(Warn, "trace.rotate_failed")
          .Str("path", path)
          .Str("error", std::strerror(errno));
    } else {
      std::fwrite(json.data(), 1, json.size(), file);
      std::fclose(file);
      FLOQ_LOG(Info, "trace.rotated")
          .Str("path", path)
          .Num("events", int64_t(trace_session_->size()))
          .Num("dropped", int64_t(trace_session_->dropped()));
      if (MetricsRegistry::enabled()) {
        static Counter& rotations =
            MetricsRegistry::Get().counter("serve.trace.rotations");
        rotations.Add(1);
      }
    }
    // Destroy-then-recreate at this quiescent point; the generation-keyed
    // thread cache makes reuse of the old address safe.
    trace_session_.reset();
    trace_session_ = std::make_unique<TraceSession>();
  }

  Status StartHttpMetrics() {
    if (options_.http_metrics_port <= 0) return Status::Ok();
    http_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (http_fd_ < 0) {
      return InternalError(std::string("socket(http): ") +
                           std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(http_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // never public
    addr.sin_port = htons(uint16_t(options_.http_metrics_port));
    if (::bind(http_fd_, reinterpret_cast<struct sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(http_fd_, 16) != 0) {
      Status st = InternalError(
          StrCat("bind(http 127.0.0.1:", options_.http_metrics_port,
                 "): ", std::strerror(errno)));
      ::close(http_fd_);
      http_fd_ = -1;
      return st;
    }
    FLOQ_LOG(Info, "serve.http_metrics.listening")
        .Num("port", options_.http_metrics_port);
    http_thread_ = std::thread([this] { ServeHttpMetrics(); });
    return Status::Ok();
  }

  // Minimal HTTP/1.0 exposition endpoint: GET /metrics -> Prometheus text
  // format. One request per connection, loopback only, no keep-alive —
  // exactly what a scraper needs and nothing more.
  void ServeHttpMetrics() {
    while (!draining_.load(std::memory_order_acquire)) {
      struct pollfd pfd = {http_fd_, POLLIN, 0};
      int rc = ::poll(&pfd, 1, 200);
      if (rc <= 0 || (pfd.revents & POLLIN) == 0) continue;
      int client = ::accept(http_fd_, nullptr, nullptr);
      if (client < 0) continue;
      struct timeval tv = {1, 0};  // slow-scraper guard
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
      std::string head;
      char buf[1024];
      while (head.find("\r\n\r\n") == std::string::npos &&
             head.size() < 8192) {
        ssize_t n = ::recv(client, buf, sizeof(buf), 0);
        if (n <= 0) break;
        head.append(buf, size_t(n));
      }
      bool found = head.rfind("GET /metrics", 0) == 0;
      std::string body =
          found ? MetricsRegistry::Get().Snapshot().ToPrometheus()
                : std::string("not found\n");
      std::string response = StrCat(
          "HTTP/1.0 ", found ? "200 OK" : "404 Not Found",
          "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
          "\r\nContent-Length: ", body.size(),
          "\r\nConnection: close\r\n\r\n", body);
      size_t off = 0;
      while (off < response.size()) {
        ssize_t n = ::send(client, response.data() + off,
                           response.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;
        off += size_t(n);
      }
      ::close(client);
      if (MetricsRegistry::enabled()) {
        static Counter& scrapes =
            MetricsRegistry::Get().counter("serve.http_metrics.scrapes");
        scrapes.Add(1);
      }
    }
  }

  void DrainPendingSignals() {
    char buf[64];
    while (g_signal_pipe[0] >= 0 &&
           ::read(g_signal_pipe[0], buf, sizeof(buf)) > 0) {
    }
  }

  void Serve() {
    while (!draining_.load(std::memory_order_acquire)) {
      struct pollfd fds[2] = {
          {listen_fd_, POLLIN, 0},
          {g_signal_pipe[0], POLLIN, 0},
      };
      int rc = ::poll(fds, 2, 200);
      if (rc < 0) {
        if (errno == EINTR) continue;
        break;
      }
      ReapFinished();
      // Roll the trace file only while no connection thread is live — the
      // only point the accept loop can prove span quiescence.
      if (trace_session_ != nullptr &&
          connections_.load(std::memory_order_acquire) == 0 &&
          trace_session_->size() >= kTraceRotateEvents) {
        RotateTraceLocked();
      }
      if ((fds[1].revents & POLLIN) != 0) {
        DrainPendingSignals();
        if (!StartDrain()) {
          // Second signal: cancel in-flight requests through the shared
          // token so the drain converges within one governor tick batch.
          drain_source_.Cancel();
        }
        break;
      }
      if ((fds[0].revents & POLLIN) == 0) continue;
      int client = ::accept(listen_fd_, nullptr, nullptr);
      if (client < 0) continue;
      if (connections_.load(std::memory_order_relaxed) >=
          options_.max_connections) {
        // Typed shed, then close: the client learns it was load, not a
        // protocol error.
        if (MetricsRegistry::enabled()) {
          static Counter& shed =
              MetricsRegistry::Get().counter("serve.shed.connections");
          shed.Add(1);
        }
        FLOQ_LOG(Warn, "connection.shed")
            .Num("connections", connections_.load(std::memory_order_relaxed));
        (void)WriteFrame(client,
                         ErrorReply("OVERLOADED", "connection limit reached"),
                         Deadline::AfterMillis(1000));
        ::close(client);
        continue;
      }
      int now_open = connections_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (MetricsRegistry::enabled()) {
        static Gauge& open =
            MetricsRegistry::Get().gauge("serve.connections");
        open.Set(now_open);
      }
      auto done = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(threads_mu_);
      threads_.push_back(ConnThread{
          std::thread([this, client, done] {
            HandleConnection(client);
            done->store(true, std::memory_order_release);
          }),
          done});
    }
  }

  // Sets the drain flag; the accept loop notices within one poll slice
  // (200 ms) and connection loops between requests. Returns false when a
  // drain was already in progress.
  bool StartDrain() {
    bool expected = false;
    return draining_.compare_exchange_strong(expected, true);
  }

  Status Drain() {
    // A second SIGTERM while joining still escalates to cancellation.
    std::thread escalation([this] {
      while (connections_.load(std::memory_order_acquire) > 0) {
        char buf[16];
        if (g_signal_pipe[0] >= 0 &&
            ::read(g_signal_pipe[0], buf, sizeof(buf)) > 0) {
          drain_source_.Cancel();
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      for (ConnThread& conn : threads_) {
        if (conn.thread.joinable()) conn.thread.join();
      }
      threads_.clear();
    }
    escalation.join();
    if (http_thread_.joinable()) http_thread_.join();
    if (http_fd_ >= 0) {
      ::close(http_fd_);
      http_fd_ = -1;
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    ::unlink(options_.socket_path.c_str());
    // Every connection thread is joined: a quiescent point, so the last
    // trace window can roll out and the final metrics snapshot is exact.
    RotateTraceLocked();
    trace_session_.reset();
    Status st = registry_.Checkpoint();
    if (!st.ok()) {
      // The WAL already holds every acked mutation; a failed final
      // checkpoint costs recovery time, not data.
      FLOQ_LOG(Error, "checkpoint.final_failed").Str("error", st.ToString());
    }
    if (!options_.metrics_out.empty()) {
      std::string snapshot = MetricsRegistry::Get().ToJson() + "\n";
      FILE* file = std::fopen(options_.metrics_out.c_str(), "w");
      if (file == nullptr) {
        FLOQ_LOG(Error, "metrics.write_failed")
            .Str("path", options_.metrics_out)
            .Str("error", std::strerror(errno));
      } else {
        std::fwrite(snapshot.data(), 1, snapshot.size(), file);
        std::fclose(file);
      }
    }
    FLOQ_LOG(Info, "serve.drained")
        .Num("requests", int64_t(requests_served_.load(
                             std::memory_order_relaxed)));
    return Status::Ok();
  }

  void ReapFinished() {
    // Join threads whose connection loop has finished (their done flag is
    // set, so join returns immediately) to keep the vector bounded on
    // long runs; live connections are never joined here.
    std::lock_guard<std::mutex> lock(threads_mu_);
    std::erase_if(threads_, [](ConnThread& conn) {
      if (!conn.done->load(std::memory_order_acquire)) return false;
      if (conn.thread.joinable()) conn.thread.join();
      return true;
    });
  }

  void HandleConnection(int fd) {
    FrameDecoder decoder;
    Deadline idle = Deadline::AfterMillis(options_.idle_timeout_ms);
    while (!draining_.load(std::memory_order_acquire)) {
      // Slice the read so drain and idle are both observed promptly.
      Deadline slice = Deadline::Min(idle, Deadline::AfterMillis(200));
      Result<std::string> frame = ReadFrame(fd, decoder, slice);
      if (!frame.ok()) {
        if (frame.status().code() == StatusCode::kDeadlineExceeded) {
          if (idle.Expired()) break;  // silent client: disconnect
          continue;                   // slice elapsed: re-check drain
        }
        if (frame.status().code() == StatusCode::kNotFound) break;  // EOF
        // Protocol violation (oversized frame, EOF mid-frame): typed
        // reply, then close — the stream is unframeable from here.
        (void)WriteFrame(fd, ErrorReply("BAD_REQUEST",
                                        frame.status().message()),
                         Deadline::AfterMillis(options_.io_timeout_ms));
        break;
      }
      idle = Deadline::AfterMillis(options_.idle_timeout_ms);
      bool close_after = false;
      std::string reply = HandleRequest(*frame, &close_after);
      if (!reply.empty()) {
        Status wst = WriteFrame(
            fd, reply, Deadline::AfterMillis(options_.io_timeout_ms));
        if (!wst.ok()) break;
      }
      if (close_after) break;
    }
    ::close(fd);
    int now_open = connections_.fetch_sub(1, std::memory_order_acq_rel) - 1;
    if (MetricsRegistry::enabled()) {
      static Gauge& open = MetricsRegistry::Get().gauge("serve.connections");
      open.Set(now_open);
    }
  }

  // The per-command latency instruments, resolved once: a dynamic
  // name lookup per request would put the registry mutex on the hot path.
  Histogram& LatencyHistogramFor(const std::string& cmd) {
    static Histogram& reg =
        MetricsRegistry::Get().histogram("serve.cmd.register.latency_us");
    static Histogram& unreg =
        MetricsRegistry::Get().histogram("serve.cmd.unregister.latency_us");
    static Histogram& contain =
        MetricsRegistry::Get().histogram("serve.cmd.contain.latency_us");
    static Histogram& classify =
        MetricsRegistry::Get().histogram("serve.cmd.classify.latency_us");
    static Histogram& lint =
        MetricsRegistry::Get().histogram("serve.cmd.lint.latency_us");
    static Histogram& status =
        MetricsRegistry::Get().histogram("serve.cmd.status.latency_us");
    static Histogram& metrics =
        MetricsRegistry::Get().histogram("serve.cmd.metrics.latency_us");
    static Histogram& ping =
        MetricsRegistry::Get().histogram("serve.cmd.ping.latency_us");
    static Histogram& other =
        MetricsRegistry::Get().histogram("serve.cmd.other.latency_us");
    if (cmd == "register") return reg;
    if (cmd == "unregister") return unreg;
    if (cmd == "contain") return contain;
    if (cmd == "classify") return classify;
    if (cmd == "lint") return lint;
    if (cmd == "status") return status;
    if (cmd == "metrics") return metrics;
    if (cmd == "ping") return ping;
    return other;
  }

  std::string HandleRequest(const std::string& payload, bool* close_after) {
    // Request attribution starts before parsing: even a BAD_REQUEST reply
    // and its log line carry the server-assigned id.
    RequestContext context;
    context.id = next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    Result<Json> request = ParseJson(payload);
    if (request.ok() && request->is_object()) {
      if (const Json* tid = request->Find("trace_id");
          tid != nullptr && tid->is_string()) {
        context.trace_id = tid->AsString();
      }
    }
    ScopedRequestContext scope(&context);
    // Sampled tracing: non-sampled requests suppress their whole span
    // tree on this thread, so a long-lived session holds every Nth
    // request end to end instead of a uniform smear of all of them.
    std::optional<TraceSuppress> suppress;
    if (trace_session_ != nullptr && options_.trace_sample > 0 &&
        context.id % uint64_t(options_.trace_sample) != 0) {
      suppress.emplace();
    }

    if (!request.ok() || !request->is_object()) {
      *close_after = true;
      return ErrorReply("BAD_REQUEST",
                        request.ok() ? "request must be a JSON object"
                                     : request.status().message());
    }
    Result<std::string> cmd = request->GetString("cmd");
    if (!cmd.ok()) {
      return ErrorReply("INVALID", cmd.status().message());
    }

    auto request_start = std::chrono::steady_clock::now();
    TraceSpan span("serve.request");
    AnnotateWithRequest(span);
    // Admission control guards execution, not parsing: shedding must be
    // cheap or it is no defense.
    if (!gate_.Enter()) {
      if (MetricsRegistry::enabled()) {
        static Counter& shed =
            MetricsRegistry::Get().counter("serve.shed.requests");
        shed.Add(1);
      }
      FLOQ_LOG(Warn, "request.shed").Str("cmd", *cmd);
      return ErrorReply("OVERLOADED", "request queue full");
    }
    fault::MaybeCrash("serve.request.before_execute");
    std::string reply = Execute(*cmd, *request, close_after);
    gate_.Exit();

    auto elapsed = std::chrono::steady_clock::now() - request_start;
    int64_t elapsed_us =
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count();
    if (MetricsRegistry::enabled()) {
      static Counter& requests =
          MetricsRegistry::Get().counter("serve.requests");
      requests.Add(1);
      LatencyHistogramFor(*cmd).Record(uint64_t(elapsed_us));
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    if (options_.slow_request_ms > 0 &&
        elapsed_us >= options_.slow_request_ms * 1000) {
      FLOQ_LOG(Warn, "request.slow")
          .Str("cmd", *cmd)
          .Num("latency_us", elapsed_us);
    } else {
      FLOQ_LOG(Debug, "request.done")
          .Str("cmd", *cmd)
          .Num("latency_us", elapsed_us);
    }
    fault::MaybeCrash("serve.request.before_reply");
    return reply;
  }

  std::string Execute(const std::string& cmd, const Json& request,
                      bool* close_after) {
    if (cmd == "register") return CmdRegister(request);
    if (cmd == "unregister") return CmdUnregister(request);
    if (cmd == "contain") return CmdContain(request);
    if (cmd == "classify") return CmdClassify();
    if (cmd == "lint") return CmdLint(request);
    if (cmd == "status") return CmdStatus();
    if (cmd == "metrics") return CmdMetrics(request);
    if (cmd == "ping") {
      Json reply = Json::Object();
      reply.Set("ok", Json::Bool(true));
      return Finalize(std::move(reply));
    }
    if (cmd == "shutdown") {
      *close_after = true;
      StartDrain();
      Json reply = Json::Object();
      reply.Set("ok", Json::Bool(true));
      reply.Set("draining", Json::Bool(true));
      return Finalize(std::move(reply));
    }
    return ErrorReply("INVALID", "unknown command '" + cmd + "'");
  }

  std::string CmdRegister(const Json& request) {
    Result<std::string> name = request.GetString("name");
    Result<std::string> text = request.GetString("query");
    if (!name.ok()) return StatusReply(name.status());
    if (!text.ok()) return StatusReply(text.status());
    Result<QueryRegistry::RegisterOutcome> outcome =
        registry_.Register(*name, *text);
    if (!outcome.ok()) return StatusReply(outcome.status());
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("epoch", Json::Number(double(outcome->epoch)));
    reply.Set("already_registered",
              Json::Bool(outcome->already_registered));
    return Finalize(std::move(reply));
  }

  std::string CmdUnregister(const Json& request) {
    Result<std::string> name = request.GetString("name");
    if (!name.ok()) return StatusReply(name.status());
    Result<uint64_t> epoch = registry_.Unregister(*name);
    if (!epoch.ok()) return StatusReply(epoch.status());
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("epoch", Json::Number(double(*epoch)));
    return Finalize(std::move(reply));
  }

  // Per-request budget: requests may *lower* the server default, never
  // raise it, and every budget carries the drain cancellation token.
  ResourceBudget RequestBudget(const Json& request) {
    ResourceBudget budget;
    budget.timeout_ms = options_.request_timeout_ms;
    if (const Json* t = request.Find("timeout_ms");
        t != nullptr && t->type() == Json::Type::kNumber) {
      int64_t asked = int64_t(t->AsNumber());
      if (asked > 0 &&
          (budget.timeout_ms <= 0 || asked < budget.timeout_ms)) {
        budget.timeout_ms = asked;
      }
    }
    budget.hom_step_budget = options_.hom_step_budget;
    budget.cancel = drain_source_.token();
    return budget;
  }

  std::string CmdContain(const Json& request) {
    // Stall-type fault point: pins this request (and its admission
    // permit) for a fixed window so overload tests are deterministic.
    fault::MaybeStall("serve.contain.stall", 2000);
    std::shared_ptr<const RegistrySnapshotView> snap = registry_.Snapshot();
    const Json* lhs_name = request.Find("lhs");
    const Json* rhs_name = request.Find("rhs");

    // Both sides registered: answered from the epoch snapshot's
    // maintained matrix — no chase, no hom search, no lock.
    if (lhs_name != nullptr && rhs_name != nullptr) {
      if (!lhs_name->is_string() || !rhs_name->is_string()) {
        return ErrorReply("INVALID", "lhs/rhs must be query names");
      }
      const RegistryEntryView* lhs = snap->Find(lhs_name->AsString());
      const RegistryEntryView* rhs = snap->Find(rhs_name->AsString());
      if (lhs == nullptr || rhs == nullptr) {
        return ErrorReply("NOT_FOUND",
                          "no registered query named '" +
                              (lhs == nullptr ? lhs_name->AsString()
                                              : rhs_name->AsString()) +
                              "'");
      }
      size_t li = snap->by_name.find(lhs->name)->second;
      size_t ri = snap->by_name.find(rhs->name)->second;
      Resolution resolution = snap->resolution[li][ri];
      Json reply = Json::Object();
      reply.Set("ok", Json::Bool(true));
      reply.Set("resolution", Json::String(ResolutionName(resolution)));
      reply.Set("epoch", Json::Number(double(snap->epoch)));
      reply.Set("cached", Json::Bool(true));
      return Finalize(std::move(reply));
    }

    // Ad-hoc: resolve each side to surface text (a name looks up the
    // registered definition), then decide in a fresh World under the
    // request budget.
    auto side_text = [&](const char* name_key, const char* text_key,
                         std::string* out) -> Status {
      const Json* name = request.Find(name_key);
      if (name != nullptr) {
        if (!name->is_string()) {
          return InvalidArgumentError(std::string(name_key) +
                                      " must be a string");
        }
        const RegistryEntryView* entry = snap->Find(name->AsString());
        if (entry == nullptr) {
          return NotFoundError("no registered query named '" +
                               name->AsString() + "'");
        }
        *out = entry->text;
        return Status::Ok();
      }
      Result<std::string> text = request.GetString(text_key);
      if (!text.ok()) return text.status();
      *out = *text;
      return Status::Ok();
    };
    std::string lhs_text, rhs_text;
    if (Status st = side_text("lhs", "lhs_query", &lhs_text); !st.ok()) {
      return StatusReply(st);
    }
    if (Status st = side_text("rhs", "rhs_query", &rhs_text); !st.ok()) {
      return StatusReply(st);
    }
    World world;
    Result<ConjunctiveQuery> q1 = flogic::ParseQuery(world, lhs_text);
    if (!q1.ok()) return StatusReply(q1.status());
    Result<ConjunctiveQuery> q2 = flogic::ParseQuery(world, rhs_text);
    if (!q2.ok()) return StatusReply(q2.status());
    ContainmentOptions copts;
    copts.budget = RequestBudget(request);
    Result<ContainmentResult> verdict =
        CheckContainment(world, *q1, *q2, copts);
    if (!verdict.ok()) return StatusReply(verdict.status());
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("resolution",
              Json::String(ResolutionName(verdict->resolution)));
    if (verdict->resolution == Resolution::kUnknown) {
      reply.Set("reason",
                Json::String(TripReasonName(verdict->unknown_reason)));
    }
    reply.Set("epoch", Json::Number(double(snap->epoch)));
    reply.Set("cached", Json::Bool(false));
    return Finalize(std::move(reply));
  }

  // Deterministic classify payload: equivalence classes (names, in
  // registration order) and Hasse edges over class indexes. No
  // run-dependent counters — the crash-recovery suite compares this
  // string byte-for-byte against an uninterrupted run.
  std::string CmdClassify() {
    std::shared_ptr<const RegistrySnapshotView> snap = registry_.Snapshot();
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("epoch", Json::Number(double(snap->epoch)));
    Json classes = Json::Array();
    for (const std::vector<size_t>& cls : snap->taxonomy.classes) {
      Json members = Json::Array();
      for (size_t member : cls) {
        members.Append(Json::String(snap->entries[member].name));
      }
      classes.Append(std::move(members));
    }
    reply.Set("classes", std::move(classes));
    Json hasse = Json::Array();
    for (const auto& [sub, super] : snap->taxonomy.hasse_edges) {
      Json edge = Json::Array();
      edge.Append(Json::Number(double(sub)));
      edge.Append(Json::Number(double(super)));
      hasse.Append(std::move(edge));
    }
    reply.Set("hasse", std::move(hasse));
    return Finalize(std::move(reply));
  }

  std::string CmdLint(const Json& request) {
    Result<std::string> program = request.GetString("program");
    if (!program.ok()) return StatusReply(program.status());
    World world;
    analysis::AnalyzeOptions options;
    options.query.budget = RequestBudget(request);
    std::vector<analysis::Diagnostic> diagnostics =
        analysis::AnalyzeProgramText(world, *program, options);
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    Json items = Json::Array();
    bool has_error = false;
    for (const analysis::Diagnostic& d : diagnostics) {
      Json item = Json::Object();
      item.Set("code", Json::String(d.code));
      item.Set("severity",
               Json::String(analysis::SeverityName(d.severity)));
      item.Set("message", Json::String(d.message));
      if (d.span.known()) {
        item.Set("line", Json::Number(double(d.span.line)));
      }
      items.Append(std::move(item));
      if (d.severity == analysis::Severity::kError) has_error = true;
    }
    reply.Set("diagnostics", std::move(items));
    reply.Set("errors", Json::Bool(has_error));
    return Finalize(std::move(reply));
  }

  std::string CmdStatus() {
    std::shared_ptr<const RegistrySnapshotView> snap = registry_.Snapshot();
    const IndexStats& stats = registry_.index_stats();
    Json reply = Json::Object();
    reply.Set("ok", Json::Bool(true));
    reply.Set("epoch", Json::Number(double(snap->epoch)));
    reply.Set("queries", Json::Number(double(snap->entries.size())));
    reply.Set("classes",
              Json::Number(double(snap->taxonomy.classes.size())));
    reply.Set("draining",
              Json::Bool(draining_.load(std::memory_order_relaxed)));
    reply.Set("active_requests", Json::Number(double(gate_.active())));
    reply.Set("wal_mutations",
              Json::Number(double(registry_.mutations_since_checkpoint())));
    Json index = Json::Object();
    index.Set("inserts", Json::Number(double(stats.inserts)));
    index.Set("checked_pairs", Json::Number(double(stats.checked_pairs)));
    index.Set("pruned_pairs", Json::Number(double(stats.pruned_pairs)));
    index.Set("unknown_pairs", Json::Number(double(stats.unknown_pairs)));
    reply.Set("index", std::move(index));
    return Finalize(std::move(reply));
  }

  std::string CmdMetrics(const Json& request) {
    std::string format = "json";
    if (const Json* f = request.Find("format");
        f != nullptr && f->is_string()) {
      format = f->AsString();
    }
    if (format == "prometheus") {
      // Text exposition carried in the reply body; `floq client metrics
      // --format prometheus` prints it verbatim for pipe-to-scraper use.
      Json reply = Json::Object();
      reply.Set("ok", Json::Bool(true));
      reply.Set("format", Json::String("prometheus"));
      reply.Set("body",
                Json::String(MetricsRegistry::enabled()
                                 ? MetricsRegistry::Get().Snapshot()
                                       .ToPrometheus()
                                 : std::string()));
      return Finalize(std::move(reply));
    }
    if (format != "json") {
      return ErrorReply("INVALID",
                        "unknown metrics format '" + format +
                            "' (json|prometheus)");
    }
    // The snapshot JSON is canonical (no trailing whitespace —
    // MetricsSnapshot::ToJson), so it embeds raw with no trimming. Spliced
    // as a string to keep uint64 counter values exact: a Json round-trip
    // would route them through double.
    std::string metrics = MetricsRegistry::enabled()
                              ? MetricsRegistry::Get().ToJson()
                              : std::string("{}");
    std::string head = "{\"ok\":true,";
    if (const RequestContext* context = CurrentRequestContext()) {
      head += "\"request_id\":" + std::to_string(context->id) + ",";
      if (!context->trace_id.empty()) {
        head += "\"trace_id\":" +
                Json::String(context->trace_id).Serialize() + ",";
      }
    }
    return head + "\"metrics\":" + metrics + "}";
  }

  struct ConnThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  // Buffered spans that trigger a roll at the next quiescent poll slice.
  static constexpr uint64_t kTraceRotateEvents = 4096;

  const DaemonOptions options_;
  QueryRegistry registry_;
  AdmissionGate gate_;
  CancellationSource drain_source_;
  int listen_fd_ = -1;
  std::atomic<bool> draining_{false};
  std::atomic<int> connections_{0};
  std::mutex threads_mu_;
  std::vector<ConnThread> threads_;
  std::atomic<uint64_t> next_request_id_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::unique_ptr<TraceSession> trace_session_;
  std::string trace_dir_;
  uint64_t trace_file_seq_ = 0;
  int http_fd_ = -1;
  std::thread http_thread_;
};

}  // namespace

Status RunDaemon(const DaemonOptions& options) {
  if (options.dir.empty()) {
    return InvalidArgumentError("daemon requires a registry directory");
  }
  struct stat sb;
  if (::stat(options.dir.c_str(), &sb) != 0 || !S_ISDIR(sb.st_mode)) {
    return InvalidArgumentError("registry directory does not exist: " +
                                options.dir);
  }
  Daemon daemon(options);
  return daemon.Run();
}

}  // namespace floq::server
