#include "server/registry.h"

#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "flogic/parser.h"
#include "server/protocol.h"
#include "util/crc32.h"
#include "util/fault.h"
#include "util/log.h"
#include "util/metrics.h"

namespace floq::server {

namespace {

constexpr char kCheckpointMagic[8] = {'F', 'L', 'O', 'Q',
                                      'R', 'E', 'G', '1'};

Status Errno(const char* op) {
  return InternalError(std::string(op) + ": " + std::strerror(errno));
}

Status ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 256) {
    return InvalidArgumentError("query name must be 1..256 bytes");
  }
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x21 || c == 0x7F) {
      return InvalidArgumentError(
          "query name must not contain spaces or control bytes");
    }
  }
  return Status::Ok();
}

Status SyncParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Errno("open(dir)");
  int rc = ::fsync(dfd);
  int saved = errno;
  ::close(dfd);
  if (rc != 0) {
    errno = saved;
    return Errno("fsync(dir)");
  }
  return Status::Ok();
}

}  // namespace

QueryRegistry::QueryRegistry(RegistryOptions options)
    : options_(std::move(options)),
      checkpoint_path_(options_.dir + "/registry.floqreg"),
      wal_path_(options_.dir + "/registry.wal"),
      index_(world_, options_.containment) {}

Status QueryRegistry::Open() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fault::Armed("registry.load.io_error")) {
    return InternalError("injected: registry.load.io_error");
  }

  std::vector<RegistryEntryView> checkpointed;
  bool have_checkpoint = false;
  FLOQ_RETURN_IF_ERROR(LoadCheckpoint(&checkpointed, &have_checkpoint));
  for (const RegistryEntryView& entry : checkpointed) {
    bool applied = false;
    Status st = ApplyRegister(entry.name, entry.text, &applied);
    if (!st.ok()) {
      return InternalError("checkpoint entry '" + entry.name +
                           "' failed to re-apply: " + st.ToString());
    }
  }

  WalReplay replay;
  FLOQ_RETURN_IF_ERROR(wal_.Open(wal_path_, &replay));
  for (const std::string& record : replay.records) {
    FLOQ_RETURN_IF_ERROR(ApplyWalRecord(record));
  }
  // Recovery state is in memory only; the files already encode it, so no
  // checkpoint is forced here — mutation counting starts fresh.
  dirty_ = uint64_t(replay.records.size());
  PublishLocked();
  return Status::Ok();
}

Status QueryRegistry::LoadCheckpoint(std::vector<RegistryEntryView>* entries,
                                     bool* found) {
  *found = false;
  int fd = ::open(checkpoint_path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return Status::Ok();
    return Errno("open(checkpoint)");
  }
  struct stat sb;
  if (::fstat(fd, &sb) != 0) {
    Status st = Errno("fstat(checkpoint)");
    ::close(fd);
    return st;
  }
  std::string bytes(size_t(sb.st_size), '\0');
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::pread(fd, bytes.data() + off, bytes.size() - off,
                        off_t(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("pread(checkpoint)");
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    off += size_t(n);
  }
  ::close(fd);
  bytes.resize(off);

  // The checkpoint only becomes live via rename, so a torn or corrupt
  // live checkpoint is real corruption, never an interrupted write.
  if (bytes.size() < sizeof(kCheckpointMagic) + 8 ||
      std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return InvalidArgumentError("registry checkpoint corrupt (header): " +
                                checkpoint_path_);
  }
  uint32_t len = 0;
  uint32_t crc = 0;
  std::memcpy(&len, bytes.data() + 8, 4);
  std::memcpy(&crc, bytes.data() + 12, 4);
  if (bytes.size() != 16 + size_t(len)) {
    return InvalidArgumentError("registry checkpoint corrupt (size): " +
                                checkpoint_path_);
  }
  std::string_view payload(bytes.data() + 16, len);
  if (Crc32(payload) != crc) {
    return InvalidArgumentError("registry checkpoint corrupt (CRC): " +
                                checkpoint_path_);
  }
  Result<Json> doc = ParseJson(payload);
  if (!doc.ok()) {
    return InvalidArgumentError("registry checkpoint corrupt (JSON): " +
                                doc.status().message());
  }
  const Json* list = doc->Find("entries");
  if (list == nullptr || !list->is_array()) {
    return InvalidArgumentError(
        "registry checkpoint corrupt (no entries array)");
  }
  for (const Json& item : list->items()) {
    Result<std::string> name = item.GetString("name");
    Result<std::string> text = item.GetString("query");
    if (!name.ok() || !text.ok()) {
      return InvalidArgumentError("registry checkpoint corrupt (entry)");
    }
    RegistryEntryView entry;
    entry.name = *name;
    entry.text = *text;
    entries->push_back(std::move(entry));
  }
  *found = true;
  return Status::Ok();
}

Status QueryRegistry::ApplyRegister(const std::string& name,
                                    const std::string& text, bool* applied) {
  *applied = false;
  FLOQ_RETURN_IF_ERROR(ValidateName(name));
  auto it = live_.find(name);
  if (it != live_.end()) {
    if (it->second.text == text) return Status::Ok();  // idempotent replay
    return FailedPreconditionError("query '" + name +
                                   "' already registered with a "
                                   "different definition");
  }
  Result<ConjunctiveQuery> query = flogic::ParseQuery(world_, text);
  if (!query.ok()) return query.status();
  Result<size_t> id = index_.Insert(*query);
  if (!id.ok()) return id.status();
  RegistryEntryView entry;
  entry.name = name;
  entry.text = text;
  entry.id = *id;
  live_.emplace(name, std::move(entry));
  order_.push_back(name);
  *applied = true;
  return Status::Ok();
}

Status QueryRegistry::ApplyUnregister(const std::string& name,
                                      bool* applied) {
  *applied = false;
  auto it = live_.find(name);
  if (it == live_.end()) return Status::Ok();  // idempotent replay
  live_.erase(it);
  for (auto order_it = order_.begin(); order_it != order_.end(); ++order_it) {
    if (*order_it == name) {
      order_.erase(order_it);
      break;
    }
  }
  *applied = true;
  return Status::Ok();
}

Status QueryRegistry::ApplyWalRecord(const std::string& payload) {
  Result<Json> doc = ParseJson(payload);
  if (!doc.ok()) {
    return InvalidArgumentError("WAL record is not JSON: " +
                                doc.status().message());
  }
  Result<std::string> op = doc->GetString("op");
  if (!op.ok()) return op.status();
  bool applied = false;
  if (*op == "register") {
    Result<std::string> name = doc->GetString("name");
    Result<std::string> text = doc->GetString("query");
    if (!name.ok()) return name.status();
    if (!text.ok()) return text.status();
    return ApplyRegister(*name, *text, &applied);
  }
  if (*op == "unregister") {
    Result<std::string> name = doc->GetString("name");
    if (!name.ok()) return name.status();
    return ApplyUnregister(*name, &applied);
  }
  return InvalidArgumentError("WAL record has unknown op '" + *op + "'");
}

Result<QueryRegistry::RegisterOutcome> QueryRegistry::Register(
    const std::string& name, const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  FLOQ_RETURN_IF_ERROR(ValidateName(name));
  if (auto it = live_.find(name); it != live_.end()) {
    if (it->second.text != text) {
      return FailedPreconditionError("query '" + name +
                                     "' already registered with a "
                                     "different definition");
    }
    RegisterOutcome outcome;
    outcome.epoch = epoch_;
    outcome.already_registered = true;
    return outcome;
  }
  // Validate before logging: the WAL must only ever hold records that
  // re-apply cleanly on recovery.
  {
    World probe;
    Result<ConjunctiveQuery> query = flogic::ParseQuery(probe, text);
    if (!query.ok()) return query.status();
  }

  Json record = Json::Object();
  record.Set("op", Json::String("register"));
  record.Set("name", Json::String(name));
  record.Set("query", Json::String(text));
  FLOQ_RETURN_IF_ERROR(wal_.Append(record.Serialize()));

  // Durable from here: even if this process dies before the in-memory
  // apply below, recovery replays the record.
  bool applied = false;
  FLOQ_RETURN_IF_ERROR(ApplyRegister(name, text, &applied));
  ++epoch_;
  ++dirty_;
  MaybeCheckpointLocked();
  PublishLocked();
  RegisterOutcome outcome;
  outcome.epoch = epoch_;
  return outcome;
}

Result<uint64_t> QueryRegistry::Unregister(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.find(name) == live_.end()) {
    return NotFoundError("no registered query named '" + name + "'");
  }
  Json record = Json::Object();
  record.Set("op", Json::String("unregister"));
  record.Set("name", Json::String(name));
  FLOQ_RETURN_IF_ERROR(wal_.Append(record.Serialize()));
  bool applied = false;
  FLOQ_RETURN_IF_ERROR(ApplyUnregister(name, &applied));
  ++epoch_;
  ++dirty_;
  MaybeCheckpointLocked();
  PublishLocked();
  return epoch_;
}

Status QueryRegistry::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

// The mutation is already fsync'd in the WAL when this runs, so a failed
// cadence checkpoint must not fail (or worse, un-ack) the mutation:
// recovery just replays a longer log. The error is reported and the next
// mutation retries (dirty_ keeps counting).
void QueryRegistry::MaybeCheckpointLocked() {
  if (options_.checkpoint_every <= 0 ||
      dirty_ < uint64_t(options_.checkpoint_every)) {
    return;
  }
  if (Status checkpointed = CheckpointLocked(); !checkpointed.ok()) {
    // The WAL remains authoritative; recovery replays a longer log.
    FLOQ_LOG(Warn, "checkpoint.failed")
        .Str("error", checkpointed.ToString())
        .Num("dirty", int64_t(dirty_));
  }
}

Status QueryRegistry::CheckpointLocked() {
  auto checkpoint_start = std::chrono::steady_clock::now();
  if (fault::Armed("checkpoint.io_error")) {
    // The WAL still holds every mutation: recovery without this
    // checkpoint reaches the same state, so the daemon reports the error
    // and keeps serving.
    return InternalError("injected: checkpoint.io_error");
  }

  Json doc = Json::Object();
  Json entries = Json::Array();
  for (const std::string& name : order_) {
    const RegistryEntryView& entry = live_.find(name)->second;
    Json item = Json::Object();
    item.Set("name", Json::String(entry.name));
    item.Set("query", Json::String(entry.text));
    entries.Append(std::move(item));
  }
  doc.Set("entries", std::move(entries));
  std::string payload = doc.Serialize();

  uint32_t len = uint32_t(payload.size());
  uint32_t crc = Crc32(payload);
  std::string bytes(kCheckpointMagic, sizeof(kCheckpointMagic));
  bytes.append(reinterpret_cast<const char*>(&len), 4);
  bytes.append(reinterpret_cast<const char*>(&crc), 4);
  bytes.append(payload);

  const std::string tmp = checkpoint_path_ + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open(checkpoint.tmp)");
  if (fault::Armed("checkpoint.tmp.torn_write")) {
    // Half a checkpoint in the tmp file, then death: the live checkpoint
    // and WAL are untouched, so recovery must not even notice.
    (void)!::write(fd, bytes.data(), bytes.size() / 2);
    (void)::fsync(fd);
    _exit(fault::kCrashExitCode);
  }
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("write(checkpoint.tmp)");
      ::close(fd);
      ::unlink(tmp.c_str());
      return st;
    }
    off += size_t(n);
  }
  if (::fsync(fd) != 0) {
    Status st = Errno("fsync(checkpoint.tmp)");
    ::close(fd);
    ::unlink(tmp.c_str());
    return st;
  }
  ::close(fd);

  fault::MaybeCrash("checkpoint.before_rename");
  if (::rename(tmp.c_str(), checkpoint_path_.c_str()) != 0) {
    Status st = Errno("rename(checkpoint)");
    ::unlink(tmp.c_str());
    return st;
  }
  // Make the rename itself durable before truncating the WAL — reversing
  // the order could lose the registry to a crash between the two.
  FLOQ_RETURN_IF_ERROR(SyncParentDir(checkpoint_path_));
  fault::MaybeCrash("checkpoint.after_rename");
  FLOQ_RETURN_IF_ERROR(wal_.Reset());
  dirty_ = 0;
  if (MetricsRegistry::enabled()) {
    static Histogram& duration_us =
        MetricsRegistry::Get().histogram("serve.checkpoint.duration_us");
    static Counter& count =
        MetricsRegistry::Get().counter("serve.checkpoint.count");
    static Gauge& last_unix_s =
        MetricsRegistry::Get().gauge("serve.checkpoint.last_unix_s");
    duration_us.Record(uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - checkpoint_start)
            .count()));
    count.Add(1);
    // Scrapers derive checkpoint age as time() - this gauge.
    last_unix_s.Set(std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count());
  }
  return Status::Ok();
}

void QueryRegistry::PublishLocked() {
  auto view = std::make_shared<RegistrySnapshotView>();
  view->epoch = epoch_;
  view->entries.reserve(order_.size());
  std::vector<size_t> ids;
  ids.reserve(order_.size());
  for (const std::string& name : order_) {
    const RegistryEntryView& entry = live_.find(name)->second;
    view->by_name.emplace(entry.name, view->entries.size());
    view->entries.push_back(entry);
    ids.push_back(entry.id);
  }
  const size_t n = ids.size();
  view->resolution.assign(n, std::vector<Resolution>(n));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      view->resolution[i][j] = index_.ResolutionOf(ids[i], ids[j]);
    }
  }
  view->taxonomy = index_.TaxonomyOf(ids);
  if (MetricsRegistry::enabled()) {
    static Gauge& queries = MetricsRegistry::Get().gauge("serve.registry.queries");
    static Gauge& epoch = MetricsRegistry::Get().gauge("serve.registry.epoch");
    static Gauge& hasse = MetricsRegistry::Get().gauge("serve.registry.hasse_edges");
    static Gauge& wal_dirty = MetricsRegistry::Get().gauge("serve.wal.dirty");
    queries.Set(int64_t(view->entries.size()));
    epoch.Set(int64_t(view->epoch));
    hasse.Set(int64_t(view->taxonomy.hasse_edges.size()));
    wal_dirty.Set(int64_t(dirty_));
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(view);
}

std::shared_ptr<const RegistrySnapshotView> QueryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t QueryRegistry::mutations_since_checkpoint() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_;
}

}  // namespace floq::server
