#ifndef FLOQ_SERVER_DAEMON_H_
#define FLOQ_SERVER_DAEMON_H_

#include <cstdint>
#include <string>

#include "server/registry.h"
#include "util/status.h"

// The `floq serve` daemon: an AF_UNIX stream listener speaking the
// length-prefixed JSON protocol (protocol.h) over a durable QueryRegistry
// (registry.h). One thread per connection, with a counting-semaphore
// admission gate in front of request execution: `workers` requests run,
// up to `queue_limit` wait, and anything beyond is shed immediately with
// a typed OVERLOADED response — the daemon never queues unboundedly.
//
// Degradation ladder (DESIGN.md §16): malformed frame → BAD_REQUEST and
// the connection closes; bad command → INVALID; unknown name →
// NOT_FOUND; admission shed → OVERLOADED; budget trip mid-check →
// ok:true with resolution UNKNOWN and a typed reason; internal I/O
// failure → INTERNAL. A verdict is never invented: overload and timeouts
// surface only as OVERLOADED/UNKNOWN.
//
// SIGTERM/SIGINT start a graceful drain: stop accepting, let in-flight
// requests finish (a second signal cancels them through the shared
// CancellationSource every request budget carries), checkpoint the
// registry, unlink the socket, return from Serve with Status::Ok so the
// process exits 0.

namespace floq::server {

struct DaemonOptions {
  // Registry directory (WAL + checkpoint live here). Required.
  std::string dir;
  // Listener path; defaults to dir + "/floq.sock". AF_UNIX paths are
  // limited to ~107 bytes — keep the directory shallow.
  std::string socket_path;
  // Concurrent request executors.
  int workers = 2;
  // Requests allowed to wait for a worker before shedding OVERLOADED.
  int queue_limit = 16;
  // Concurrent client connections; further accepts are shed with an
  // OVERLOADED frame and an immediate close.
  int max_connections = 64;
  // Idle read deadline per connection: a silent client is disconnected.
  int64_t idle_timeout_ms = 30'000;
  // Deadline for writing one reply frame (slow-reader guard).
  int64_t io_timeout_ms = 10'000;
  // Default per-request containment budget; requests may lower but never
  // raise these (<= 0 / 0 = unlimited).
  int64_t request_timeout_ms = 0;
  uint64_t hom_step_budget = 0;
  // Registry checkpoint cadence (mutations between checkpoints).
  int checkpoint_every = 32;
  // Engine fan-out for index inserts.
  int jobs = 1;

  // Observability (DESIGN.md §17). The daemon always arms the metrics
  // registry — a server without counters is not operable — and the
  // E13/E17 benches gate the cost.
  //
  // Structured log sink (JSON lines, util/log.h): empty = stderr.
  std::string log_out;
  // Minimum level that emits: debug|info|warn|error|off.
  std::string log_level = "info";
  // Requests slower than this log a warn-level "request.slow" line with
  // the request id; <= 0 disables the slow-request log.
  int64_t slow_request_ms = 1'000;
  // Final metrics snapshot written here on graceful drain; empty = none.
  std::string metrics_out;
  // Sampled tracing: keep every Nth request's span tree in a long-lived
  // trace session, rolled to Chrome-trace files in `trace_dir` at
  // quiescent moments. 0 disables tracing entirely.
  int trace_sample = 0;
  // Rolling trace output directory; defaults to dir + "/traces".
  std::string trace_dir;
  // Loopback HTTP listener serving GET /metrics in Prometheus text
  // exposition, so stock scrapers work unmodified. 0 disables.
  int http_metrics_port = 0;
};

// Runs the daemon until a drain signal, serving on options.socket_path.
// Installs SIGTERM/SIGINT/SIGPIPE handlers. Returns Ok after a graceful
// drain (caller exits 0), an error Status on startup or fatal I/O
// failure (caller exits 4).
Status RunDaemon(const DaemonOptions& options);

}  // namespace floq::server

#endif  // FLOQ_SERVER_DAEMON_H_
