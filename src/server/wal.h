#ifndef FLOQ_SERVER_WAL_H_
#define FLOQ_SERVER_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

// Append-only write-ahead log backing the `floq serve` registry.
//
// On-disk layout:
//
//   header  := "FLOQWAL1" (8 bytes)
//   record  := u32-LE payload-length, u32-LE CRC-32(payload), payload
//
// Records are appended with write(2) + fsync(2) before the registry
// acknowledges the mutation, so an acked register/unregister survives
// kill -9 at any later instant. Recovery replays records in order and
// repairs a torn tail: a final record whose bytes are incomplete or
// whose CRC mismatches is truncated away (it was never acked — the
// crash interrupted the append before the fsync ack fence), while a
// CRC mismatch *followed by* more valid bytes is real corruption and
// fails recovery loudly.
//
// Fault points (util/fault.h) are threaded through Append so the
// crash-recovery suite can kill the process before the write, between a
// half-written record and its tail, and after the write but before the
// fsync.

namespace floq::server {

inline constexpr char kWalMagic[8] = {'F', 'L', 'O', 'Q', 'W', 'A', 'L', '1'};
inline constexpr uint32_t kMaxWalRecordBytes = 1u << 20;

struct WalReplay {
  std::vector<std::string> records;
  // Offset just past the last valid record; anything beyond was a torn
  // tail that Open truncated away.
  uint64_t valid_bytes = 0;
  bool truncated_tail = false;
};

class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  // Opens (creating if absent) the log at `path`, replays every valid
  // record into `replay`, and truncates any torn tail so the next
  // Append lands on a clean boundary.
  Status Open(const std::string& path, WalReplay* replay);

  // Durably appends one record: write, fsync, then return. An error
  // leaves the log closed (the daemon must not ack after a failed
  // append, and a reopened log re-runs tail repair).
  Status Append(std::string_view payload);

  // Truncates back to the bare header after a successful checkpoint.
  Status Reset();

  void Close();
  bool open() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace floq::server

#endif  // FLOQ_SERVER_WAL_H_
