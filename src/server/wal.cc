#include "server/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "util/crc32.h"
#include "util/fault.h"
#include "util/metrics.h"

namespace floq::server {

namespace {

Status Errno(const char* op) {
  return InternalError(std::string(op) + ": " + std::strerror(errno));
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    off += size_t(n);
  }
  return Status::Ok();
}

// fsync the directory containing `path` so a freshly created or renamed
// entry survives a crash of the directory inode itself.
Status SyncParentDir(const std::string& path) {
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return Errno("open(dir)");
  int rc = ::fsync(dfd);
  int saved = errno;
  ::close(dfd);
  if (rc != 0) {
    errno = saved;
    return Errno("fsync(dir)");
  }
  return Status::Ok();
}

}  // namespace

Wal::~Wal() { Close(); }

void Wal::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Wal::Open(const std::string& path, WalReplay* replay) {
  Close();
  replay->records.clear();
  replay->valid_bytes = 0;
  replay->truncated_tail = false;

  bool existed = ::access(path.c_str(), F_OK) == 0;
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return Errno("open(wal)");
  fd_ = fd;
  path_ = path;

  if (!existed) {
    Status st = WriteAll(fd_, kWalMagic, sizeof(kWalMagic));
    if (st.ok() && ::fsync(fd_) != 0) st = Errno("fsync(wal)");
    if (st.ok()) st = SyncParentDir(path_);
    if (!st.ok()) {
      Close();
      return st;
    }
    replay->valid_bytes = sizeof(kWalMagic);
    return Status::Ok();
  }

  // Replay. Read the whole log (registration logs are small; checkpoints
  // keep them so).
  struct stat sb;
  if (::fstat(fd_, &sb) != 0) {
    Status st = Errno("fstat(wal)");
    Close();
    return st;
  }
  std::string bytes(size_t(sb.st_size), '\0');
  size_t off = 0;
  while (off < bytes.size()) {
    if (fault::Armed("wal.replay.io_error")) {
      Close();
      return InternalError("injected: wal.replay.io_error");
    }
    ssize_t n = ::pread(fd_, bytes.data() + off, bytes.size() - off,
                        off_t(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("pread(wal)");
      Close();
      return st;
    }
    if (n == 0) break;
    off += size_t(n);
  }
  bytes.resize(off);

  if (bytes.size() < sizeof(kWalMagic) ||
      std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    Close();
    return InvalidArgumentError("WAL header missing or corrupt: " + path);
  }

  uint64_t pos = sizeof(kWalMagic);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < 8) break;  // torn header
    uint32_t len = 0;
    uint32_t crc = 0;
    std::memcpy(&len, bytes.data() + pos, 4);
    std::memcpy(&crc, bytes.data() + pos + 4, 4);
    if (len > kMaxWalRecordBytes) {
      // A garbage length is indistinguishable from a torn header write;
      // treat it as the tail only if nothing follows that parses.
      break;
    }
    if (bytes.size() - pos - 8 < len) break;  // torn payload
    std::string_view payload(bytes.data() + pos + 8, len);
    if (Crc32(payload) != crc) break;  // torn or corrupt record
    replay->records.emplace_back(payload);
    pos += 8 + len;
  }

  if (pos < bytes.size()) {
    // Tail repair is only sound for the *final* record: any valid record
    // after the mismatch would mean mid-log corruption. Scan forward for
    // a parseable record; finding one fails recovery.
    uint64_t probe = pos + 1;
    while (probe + 8 <= bytes.size()) {
      uint32_t len = 0;
      uint32_t crc = 0;
      std::memcpy(&len, bytes.data() + probe, 4);
      std::memcpy(&crc, bytes.data() + probe + 4, 4);
      if (len <= kMaxWalRecordBytes && bytes.size() - probe - 8 >= len &&
          Crc32(std::string_view(bytes.data() + probe + 8, len)) == crc) {
        Close();
        return InvalidArgumentError(
            "WAL corrupt mid-log (valid record follows a bad one): " + path);
      }
      ++probe;
    }
    if (::ftruncate(fd_, off_t(pos)) != 0) {
      Status st = Errno("ftruncate(wal)");
      Close();
      return st;
    }
    if (::fsync(fd_) != 0) {
      Status st = Errno("fsync(wal)");
      Close();
      return st;
    }
    replay->truncated_tail = true;
  }
  replay->valid_bytes = pos;

  if (::lseek(fd_, off_t(pos), SEEK_SET) < 0) {
    Status st = Errno("lseek(wal)");
    Close();
    return st;
  }
  return Status::Ok();
}

Status Wal::Append(std::string_view payload) {
  if (fd_ < 0) return FailedPreconditionError("WAL not open");
  if (payload.size() > kMaxWalRecordBytes) {
    return InvalidArgumentError("WAL record too large");
  }
  fault::MaybeCrash("wal.append.before_write");
  if (fault::Armed("wal.append.io_error")) {
    Close();
    return InternalError("injected: wal.append.io_error");
  }

  uint32_t len = uint32_t(payload.size());
  uint32_t crc = Crc32(payload);
  std::string record(8, '\0');
  std::memcpy(record.data(), &len, 4);
  std::memcpy(record.data() + 4, &crc, 4);
  record.append(payload);

  if (fault::Armed("wal.append.torn_write")) {
    // Persist half the record — header plus a payload prefix — and die.
    // Recovery must truncate this tail and match a run where the append
    // never happened (it was never acked).
    size_t half = record.size() / 2;
    (void)WriteAll(fd_, record.data(), half);
    (void)::fsync(fd_);
    _exit(fault::kCrashExitCode);
  }

  Status st = WriteAll(fd_, record.data(), record.size());
  if (!st.ok()) {
    Close();
    return st;
  }
  fault::MaybeCrash("wal.append.before_fsync");
  if (MetricsRegistry::enabled()) {
    auto t0 = std::chrono::steady_clock::now();
    int rc = ::fsync(fd_);
    auto t1 = std::chrono::steady_clock::now();
    static Histogram& fsync_us =
        MetricsRegistry::Get().histogram("serve.wal.fsync_us");
    fsync_us.Record(uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count()));
    if (rc != 0) {
      st = Errno("fsync(wal)");
      Close();
      return st;
    }
    static Counter& bytes =
        MetricsRegistry::Get().counter("serve.wal.append.bytes");
    static Counter& records =
        MetricsRegistry::Get().counter("serve.wal.append.records");
    bytes.Add(record.size());
    records.Add(1);
  } else if (::fsync(fd_) != 0) {
    st = Errno("fsync(wal)");
    Close();
    return st;
  }
  return Status::Ok();
}

Status Wal::Reset() {
  if (fd_ < 0) return FailedPreconditionError("WAL not open");
  if (::ftruncate(fd_, off_t(sizeof(kWalMagic))) != 0) {
    Status st = Errno("ftruncate(wal)");
    Close();
    return st;
  }
  if (::fsync(fd_) != 0) {
    Status st = Errno("fsync(wal)");
    Close();
    return st;
  }
  if (::lseek(fd_, off_t(sizeof(kWalMagic)), SEEK_SET) < 0) {
    Status st = Errno("lseek(wal)");
    Close();
    return st;
  }
  return Status::Ok();
}

}  // namespace floq::server
