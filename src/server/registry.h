#ifndef FLOQ_SERVER_REGISTRY_H_
#define FLOQ_SERVER_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "containment/index.h"
#include "server/wal.h"
#include "term/world.h"
#include "util/status.h"

// The durable query registry behind `floq serve`.
//
// State = a World + ContainmentIndex (the in-memory containment lattice)
// plus two files under the registry directory:
//
//   registry.floqreg   checkpoint: magic "FLOQREG1" + one CRC-framed JSON
//                      record {"entries":[{"name":..,"query":..},...]}
//                      in registration order, written tmp + fsync +
//                      rename + fsync(parent) (the FLOQSNAP discipline,
//                      hardened per DESIGN.md §16)
//   registry.wal       append-only CRC-framed log of mutations since the
//                      checkpoint (see wal.h)
//
// Durability contract: Register/Unregister append to the WAL (fsync'd)
// *before* mutating in-memory state or acknowledging, so any mutation a
// client saw acked is replayed identically after kill -9 at any instant.
// Replay is idempotent (re-registering an identical name/query is a
// no-op, unregistering an absent name is a no-op), which makes the
// checkpoint.after_rename crash — checkpoint live, WAL not yet reset —
// recover cleanly too.
//
// Reads are epoch-based: every mutation publishes a new immutable
// RegistrySnapshotView; `contain`/`classify`/`status` grab the current
// shared_ptr and never block behind a registration in progress.

namespace floq::server {

struct RegistryOptions {
  std::string dir;
  // Engine options for the maintained index (jobs, budgets, signatures).
  BatchContainmentOptions containment;
  // Mutations between automatic checkpoints; Checkpoint() can always be
  // called explicitly (graceful drain does).
  int checkpoint_every = 32;
};

struct RegistryEntryView {
  std::string name;
  std::string text;  // original surface syntax, re-parsed on recovery
  size_t id = 0;     // dense id in the underlying ContainmentIndex
};

struct RegistrySnapshotView {
  uint64_t epoch = 0;
  // Live entries in registration order; `resolution` and `taxonomy` are
  // positional over this vector.
  std::vector<RegistryEntryView> entries;
  std::map<std::string, size_t, std::less<>> by_name;
  std::vector<std::vector<Resolution>> resolution;
  QueryTaxonomy taxonomy;

  const RegistryEntryView* Find(std::string_view name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &entries[it->second];
  }
};

class QueryRegistry {
 public:
  explicit QueryRegistry(RegistryOptions options);

  // Recovers from the registry directory: load checkpoint (if any),
  // replay the WAL, rebuild the containment lattice by re-inserting
  // every live query in registration order.
  Status Open();

  struct RegisterOutcome {
    uint64_t epoch = 0;
    bool already_registered = false;  // identical name+query: no-op ack
  };
  Result<RegisterOutcome> Register(const std::string& name,
                                   const std::string& text);
  // NotFound when `name` is not live. The engine entry is tombstoned,
  // not destroyed: verdicts already paid for stay cached.
  Result<uint64_t> Unregister(const std::string& name);

  // Writes a checkpoint and truncates the WAL. Also invoked internally
  // every `checkpoint_every` mutations and by the daemon's drain path.
  Status Checkpoint();

  // Current immutable view; never nullptr after a successful Open.
  std::shared_ptr<const RegistrySnapshotView> Snapshot() const;

  const IndexStats& index_stats() const { return index_.index_stats(); }
  uint64_t mutations_since_checkpoint() const;

 private:
  Status ApplyRegister(const std::string& name, const std::string& text,
                       bool* applied);
  Status ApplyUnregister(const std::string& name, bool* applied);
  Status ApplyWalRecord(const std::string& payload);
  Status LoadCheckpoint(std::vector<RegistryEntryView>* entries,
                        bool* found);
  Status CheckpointLocked();
  // Cadence checkpoint after a mutation: a failure here is reported, not
  // returned — the mutation is already durable in the WAL.
  void MaybeCheckpointLocked();
  void PublishLocked();

  const RegistryOptions options_;
  const std::string checkpoint_path_;
  const std::string wal_path_;

  mutable std::mutex mu_;       // serializes mutations + file I/O
  World world_;
  ContainmentIndex index_;
  std::vector<std::string> order_;  // live names in registration order
  std::map<std::string, RegistryEntryView, std::less<>> live_;
  Wal wal_;
  uint64_t epoch_ = 0;
  uint64_t dirty_ = 0;  // mutations since the last checkpoint

  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const RegistrySnapshotView> snapshot_;
};

}  // namespace floq::server

#endif  // FLOQ_SERVER_REGISTRY_H_
