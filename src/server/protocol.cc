#include "server/protocol.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace floq::server {

// ---------------------------------------------------------------------------
// Json value

void Json::Set(std::string_view key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<std::string> Json::GetString(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return InvalidArgumentError("missing field '" + std::string(key) + "'");
  }
  if (v->type_ != Type::kString) {
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be a string");
  }
  return v->string_;
}

Result<int64_t> Json::GetInt(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return InvalidArgumentError("missing field '" + std::string(key) + "'");
  }
  if (v->type_ != Type::kNumber || !std::isfinite(v->number_) ||
      v->number_ != std::floor(v->number_)) {
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be an integer");
  }
  return int64_t(v->number_);
}

Result<bool> Json::GetBool(std::string_view key) const {
  const Json* v = Find(key);
  if (v == nullptr) {
    return InvalidArgumentError("missing field '" + std::string(key) + "'");
  }
  if (v->type_ != Type::kBool) {
    return InvalidArgumentError("field '" + std::string(key) +
                                "' must be a bool");
  }
  return v->bool_;
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(double d, std::string* out) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out->append(buf);
}

}  // namespace

void Json::SerializeTo(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(number_, out);
      break;
    case Type::kString:
      AppendEscaped(string_, out);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : items_) {
        if (!first) out->push_back(',');
        first = false;
        item.SerializeTo(out);
      }
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        v.SerializeTo(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Serialize() const {
  std::string out;
  SerializeTo(&out);
  return out;
}

// ---------------------------------------------------------------------------
// Parser (recursive descent, depth-capped)

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Json value;
    FLOQ_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return InvalidArgumentError("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  Status ParseValue(int depth, Json* out) {
    if (depth > kMaxJsonDepth) {
      return InvalidArgumentError("JSON nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return InvalidArgumentError("unexpected end of JSON input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        FLOQ_RETURN_IF_ERROR(ParseString(&s));
        *out = Json::String(std::move(s));
        return Status::Ok();
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = Json::Bool(true);
          return Status::Ok();
        }
        break;
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = Json::Bool(false);
          return Status::Ok();
        }
        break;
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = Json::Null();
          return Status::Ok();
        }
        break;
      default:
        return ParseNumber(out);
    }
    return InvalidArgumentError("malformed JSON value at byte " +
                                std::to_string(pos_));
  }

  Status ParseObject(int depth, Json* out) {
    ++pos_;  // '{'
    *out = Json::Object();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return InvalidArgumentError("expected object key");
      }
      std::string key;
      FLOQ_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return InvalidArgumentError("expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      Json value;
      FLOQ_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Set(key, std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return Status::Ok();
      }
      return InvalidArgumentError("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, Json* out) {
    ++pos_;  // '['
    *out = Json::Array();
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      Json value;
      FLOQ_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->Append(std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return InvalidArgumentError("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return Status::Ok();
      }
      return InvalidArgumentError("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return InvalidArgumentError("raw control byte in JSON string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) break;
      char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return InvalidArgumentError("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= unsigned(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= unsigned(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= unsigned(h - 'A' + 10);
            } else {
              return InvalidArgumentError("bad hex digit in \\u escape");
            }
          }
          pos_ += 4;
          // Minimal UTF-8 encode; surrogate pairs are passed through as
          // two separate 3-byte sequences (command frames never need
          // astral-plane text).
          if (code < 0x80) {
            out->push_back(char(code));
          } else if (code < 0x800) {
            out->push_back(char(0xC0 | (code >> 6)));
            out->push_back(char(0x80 | (code & 0x3F)));
          } else {
            out->push_back(char(0xE0 | (code >> 12)));
            out->push_back(char(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(char(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return InvalidArgumentError("bad escape in JSON string");
      }
    }
    return InvalidArgumentError("unterminated JSON string");
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return InvalidArgumentError("malformed JSON number");
    }
    std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || errno == ERANGE ||
        !std::isfinite(d)) {
      return InvalidArgumentError("malformed JSON number");
    }
    *out = Json::Number(d);
    return Status::Ok();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Json> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

// ---------------------------------------------------------------------------
// Frames

Result<std::optional<std::string>> FrameDecoder::Next() {
  if (poisoned_) {
    return InvalidArgumentError("frame decoder poisoned by oversized frame");
  }
  // Compact once the consumed prefix dominates the buffer.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  if (buffer_.size() - consumed_ < 4) return std::optional<std::string>();
  uint32_t len = 0;
  std::memcpy(&len, buffer_.data() + consumed_, 4);
  if (len > kMaxFrameBytes) {
    poisoned_ = true;
    return InvalidArgumentError("frame length " + std::to_string(len) +
                                " exceeds cap " +
                                std::to_string(kMaxFrameBytes));
  }
  if (buffer_.size() - consumed_ < 4 + size_t(len)) {
    return std::optional<std::string>();
  }
  std::string payload = buffer_.substr(consumed_ + 4, len);
  consumed_ += 4 + size_t(len);
  return std::optional<std::string>(std::move(payload));
}

std::string EncodeFrame(std::string_view payload) {
  uint32_t len = uint32_t(payload.size());
  std::string frame(4, '\0');
  std::memcpy(frame.data(), &len, 4);
  frame.append(payload);
  return frame;
}

namespace {

// Remaining milliseconds for poll(2); -1 for an infinite deadline,
// clamped into [0, slice].
int PollTimeoutMs(Deadline deadline, int slice_ms = 200) {
  if (deadline.infinite()) return slice_ms;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline.when() - Deadline::Clock::now())
                  .count();
  if (left <= 0) return 0;
  return int(std::min<int64_t>(left, slice_ms));
}

}  // namespace

Result<std::string> ReadFrame(int fd, FrameDecoder& decoder,
                              Deadline deadline) {
  bool got_bytes_this_call = false;
  while (true) {
    Result<std::optional<std::string>> next = decoder.Next();
    if (!next.ok()) return next.status();
    if (next->has_value()) return std::move(**next);
    if (deadline.Expired()) {
      return DeadlineExceededError("read deadline expired");
    }
    struct pollfd pfd = {fd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;  // slice elapsed; re-check the deadline
    char buf[4096];
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return InternalError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (decoder.pending_bytes() > 0 || got_bytes_this_call) {
        return InvalidArgumentError("connection closed mid-frame");
      }
      return NotFoundError("connection closed");
    }
    got_bytes_this_call = true;
    decoder.Append(buf, size_t(n));
  }
}

Status WriteFrame(int fd, std::string_view payload, Deadline deadline) {
  std::string frame = EncodeFrame(payload);
  size_t off = 0;
  while (off < frame.size()) {
    if (deadline.Expired()) {
      return DeadlineExceededError("write deadline expired");
    }
    struct pollfd pfd = {fd, POLLOUT, 0};
    int rc = ::poll(&pfd, 1, PollTimeoutMs(deadline));
    if (rc < 0) {
      if (errno == EINTR) continue;
      return InternalError(std::string("poll: ") + std::strerror(errno));
    }
    if (rc == 0) continue;
    ssize_t n = ::write(fd, frame.data() + off, frame.size() - off);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return InternalError(std::string("write: ") + std::strerror(errno));
    }
    off += size_t(n);
  }
  return Status::Ok();
}

}  // namespace floq::server
