#include "kb/knowledge_base.h"

#include <unordered_set>

#include "chase/sigma_fl.h"
#include "chase/term_union_find.h"
#include "datalog/evaluator.h"
#include "datalog/snapshot.h"
#include "flogic/parser.h"
#include "flogic/printer.h"
#include "util/strings.h"

namespace floq {

KnowledgeBase::KnowledgeBase(World& world)
    : world_(world), sigma_rules_(SigmaFLDatalogRules(world)) {}

Status KnowledgeBase::Load(std::string_view flogic_text) {
  Result<flogic::Program> program = flogic::ParseProgram(world_, flogic_text);
  if (!program.ok()) return program.status();
  for (const Atom& fact : program->facts) {
    FLOQ_RETURN_IF_ERROR(AddFact(fact));
  }
  for (ConjunctiveQuery& rule : program->rules) {
    rules_.push_back(std::move(rule));
  }
  for (ConjunctiveQuery& goal : program->goals) {
    goals_.push_back(std::move(goal));
  }
  return Status::Ok();
}

Status KnowledgeBase::AddFact(const Atom& fact) {
  if (fact.predicate() == kInvalidPredicate) {
    return InvalidArgumentError("fact with invalid predicate");
  }
  int expected = world_.predicates().ArityOf(fact.predicate());
  if (fact.arity() != expected) {
    return InvalidArgumentError(
        StrCat("arity mismatch for ",
               world_.predicates().NameOf(fact.predicate())));
  }
  if (!fact.IsGround()) {
    return InvalidArgumentError(
        StrCat("facts must be ground: ", fact.ToString(world_)));
  }
  database_.Insert(fact);
  saturated_ = false;
  return Status::Ok();
}

Result<ConsistencyReport> KnowledgeBase::Saturate(
    const SaturateOptions& options) {
  ConsistencyReport report;
  EvalOptions eval_options;
  eval_options.max_facts = options.max_facts;

  // One governor spans the whole saturation: fixpoint ticks and the
  // between-phase checks below all draw on the same deadline and token.
  ExecGovernor governor(options.deadline, options.cancel);
  bool governed = !options.deadline.infinite() || options.cancel.valid();
  if (governed) eval_options.governor = &governor;

  int completion_rounds_left = options.mandatory_completion_rounds;
  for (;;) {
    if (governed && !governor.CheckNow()) {
      return governor.trip() == TripReason::kCancelled
                 ? CancelledError("saturation cancelled")
                 : DeadlineExceededError("saturation deadline exceeded");
    }
    Result<uint64_t> derived =
        SemiNaiveFixpoint(database_, sigma_rules_, eval_options);
    if (!derived.ok()) return derived.status();
    saturated_ = true;

    // ApplyFunctRepair and CompleteMandatoryOnce reset saturated_ when
    // they rewrite or extend the store; the Datalog rules must then run
    // again.
    FLOQ_RETURN_IF_ERROR(ApplyFunctRepair(report));
    if (!saturated_) continue;

    if (completion_rounds_left > 0 && CompleteMandatoryOnce() > 0) {
      --completion_rounds_left;
      continue;
    }
    break;
  }

  CollectUnsatisfiedMandatory(report);
  return report;
}

Status KnowledgeBase::DefineRule(const ConjunctiveQuery& rule) {
  FLOQ_RETURN_IF_ERROR(rule.Validate(world_));
  PredicateId head = world_.predicates().Intern(rule.name(),
                                                int(rule.head().size()));
  if (head == kInvalidPredicate) {
    return InvalidArgumentError(
        StrCat("rule head ", rule.name(), "/", rule.head().size(),
               " conflicts with an existing predicate arity"));
  }
  sigma_rules_.push_back(Rule{Atom(head, rule.head()), rule.body()});
  saturated_ = false;
  return Status::Ok();
}

Status KnowledgeBase::MaterializeLoadedRules() {
  for (const ConjunctiveQuery& rule : rules_) {
    FLOQ_RETURN_IF_ERROR(DefineRule(rule));
  }
  return Status::Ok();
}

Status KnowledgeBase::ApplyFunctRepair(ConsistencyReport& report) {
  TermUnionFind uf;
  bool merged_any = false;

  for (;;) {
    // Violations are recomputed from scratch on every pass (the offending
    // facts persist), so the last pass leaves the accurate report.
    report.consistent = true;
    report.funct_violations.clear();
    uint64_t merges_before = uf.merge_count();
    for (uint32_t fid : database_.FactsWith(pfl::kFunct)) {
      const Atom& funct = database_.facts()[fid];
      Term attr = funct.arg(0);
      Term object = funct.arg(1);
      Term first;
      for (uint32_t id : database_.index().WithArgument(pfl::kData, 0, object)) {
        const Atom& atom = database_.facts()[id];
        if (atom.arg(1) != attr) continue;
        Term value = uf.Find(atom.arg(2));
        if (!first.valid()) {
          first = value;
          continue;
        }
        first = uf.Find(first);
        if (first == value) continue;
        Status merged = uf.Merge(first, value, world_);
        if (!merged.ok()) {
          report.consistent = false;
          report.funct_violations.push_back(
              StrCat(world_.NameOf(object), "[", world_.NameOf(attr),
                     "] has distinct values ", world_.NameOf(first), " and ",
                     world_.NameOf(value)));
        }
      }
    }
    if (uf.merge_count() == merges_before) break;
    merged_any = true;

    // Rewrite the store through the union-find.
    Database rewritten;
    for (const Atom& fact : database_.facts()) {
      Atom canonical = fact;
      for (int i = 0; i < fact.arity(); ++i) {
        canonical.set_arg(i, uf.Find(fact.arg(i)));
      }
      rewritten.Insert(canonical);
    }
    database_ = std::move(rewritten);
  }

  if (merged_any) saturated_ = false;
  return Status::Ok();
}

void KnowledgeBase::CollectUnsatisfiedMandatory(
    ConsistencyReport& report) const {
  for (uint32_t fid : database_.FactsWith(pfl::kMandatory)) {
    const Atom& fact = database_.facts()[fid];
    Term attr = fact.arg(0);
    Term object = fact.arg(1);
    bool satisfied = false;
    for (uint32_t id : database_.index().WithArgument(pfl::kData, 0, object)) {
      if (database_.facts()[id].arg(1) == attr) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      report.unsatisfied_mandatory.push_back(
          StrCat(world_.NameOf(object), "[", world_.NameOf(attr),
                 " {1:*} *=> _] has no value"));
    }
  }
}

uint64_t KnowledgeBase::CompleteMandatoryOnce() {
  std::vector<Atom> additions;
  for (uint32_t fid : database_.FactsWith(pfl::kMandatory)) {
    const Atom& fact = database_.facts()[fid];
    Term attr = fact.arg(0);
    Term object = fact.arg(1);
    bool satisfied = false;
    for (uint32_t id : database_.index().WithArgument(pfl::kData, 0, object)) {
      if (database_.facts()[id].arg(1) == attr) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      additions.push_back(Atom::Data(object, attr, world_.MakeFreshNull()));
    }
  }
  for (const Atom& atom : additions) database_.Insert(atom);
  if (!additions.empty()) saturated_ = false;
  return additions.size();
}

Result<std::vector<std::vector<Term>>> KnowledgeBase::Answer(
    const ConjunctiveQuery& query) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world_));
  if (!saturated_) {
    Result<ConsistencyReport> report = Saturate();
    if (!report.ok()) return report.status();
  }
  return EvaluateQuery(database_, query);
}

std::string KnowledgeBase::DumpAsProgram() const {
  std::string out = "% floq knowledge base dump: ";
  out += std::to_string(database_.size());
  out += " facts\n";
  for (const Atom& fact : database_.facts()) {
    Atom printable = fact;
    for (int i = 0; i < fact.arity(); ++i) {
      Term t = fact.arg(i);
      if (t.IsNull()) {
        // Nulls become loadable fresh constants. (world_ is a reference
        // member, so interning through it is fine in a const method.)
        printable.set_arg(
            i, world_.MakeConstant("null_" + std::to_string(t.index())));
      }
    }
    out += flogic::AtomToSurface(printable, world_);
    out += ".\n";
  }
  return out;
}

Result<std::vector<std::vector<Term>>> KnowledgeBase::CertainAnswers(
    const ConjunctiveQuery& query, int completion_rounds) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world_));
  SaturateOptions options;
  options.mandatory_completion_rounds = completion_rounds;
  Result<ConsistencyReport> report = Saturate(options);
  if (!report.ok()) return report.status();
  if (!report->consistent) {
    return FailedPreconditionError(
        "knowledge base is inconsistent (functional-attribute violation); "
        "certain answers are undefined");
  }

  std::vector<std::vector<Term>> certain;
  for (std::vector<Term>& tuple : EvaluateQuery(database_, query)) {
    bool has_null = false;
    for (Term t : tuple) has_null |= t.IsNull();
    if (!has_null) certain.push_back(std::move(tuple));
  }
  return certain;
}

Result<std::vector<std::vector<Term>>> KnowledgeBase::Answer(
    std::string_view query_text) {
  // Accept both a full rule and a bare formula (goal).
  Result<ConjunctiveQuery> rule = flogic::ParseQuery(world_, query_text);
  if (rule.ok()) return Answer(*rule);

  Result<std::vector<Atom>> atoms = flogic::ParseFormula(world_, query_text);
  if (!atoms.ok()) return atoms.status();
  // Head: named variables of the formula, first-occurrence order.
  std::vector<Term> head;
  std::unordered_set<uint32_t> seen;
  for (const Atom& atom : *atoms) {
    for (Term t : atom) {
      if (!t.IsVariable()) continue;
      if (StartsWith(world_.NameOf(t), "_G")) continue;
      if (seen.insert(t.raw()).second) head.push_back(t);
    }
  }
  return Answer(ConjunctiveQuery("goal", std::move(head), std::move(*atoms)));
}

Status KnowledgeBase::SaveSnapshot(const std::string& path) {
  return WriteFactIndexSnapshot(database_.mutable_index(), world_, path,
                                saturated_ ? kSnapshotFlagSaturated : 0);
}

Status KnowledgeBase::LoadSnapshot(const std::string& path) {
  Result<SnapshotInfo> info =
      LoadFactIndexSnapshot(path, world_, database_.mutable_index());
  if (!info.ok()) return info.status();
  saturated_ = (info->flags & kSnapshotFlagSaturated) != 0;
  return Status::Ok();
}

}  // namespace floq
