#ifndef FLOQ_KB_KNOWLEDGE_BASE_H_
#define FLOQ_KB_KNOWLEDGE_BASE_H_

#include <string>
#include <string_view>
#include <vector>

#include "datalog/database.h"
#include "datalog/rule.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/deadline.h"
#include "util/status.h"

// F-logic Lite knowledge bases: a ground fact store over P_FL whose
// semantics is Sigma_FL. Loading accepts the F-logic surface syntax;
// Saturate() materializes the Datalog fragment (rho_1..rho_3,
// rho_6..rho_12), repairs rho_4 (merging labeled nulls, reporting genuine
// functional-attribute violations), and can complete mandatory attributes
// with labeled nulls (rho_5). Queries are answered on the saturated store.
//
// This is the concrete-database side of the paper: the containment checker
// reasons about *all* such databases; the knowledge base materializes one,
// and the property tests use it as an independent oracle.

namespace floq {

struct ConsistencyReport {
  /// False iff rho_4 equates two distinct constants somewhere.
  bool consistent = true;
  /// Human-readable rho_4 violations (empty when consistent).
  std::vector<std::string> funct_violations;
  /// mandatory(A, O) facts with no data(O, A, ·) — unsatisfied rho_5.
  std::vector<std::string> unsatisfied_mandatory;
};

struct SaturateOptions {
  /// Budget on total facts during saturation.
  uint64_t max_facts = 10'000'000;
  /// Rounds of rho_5 completion (each round may cascade new mandatory
  /// facts onto the invented nulls). 0 disables completion.
  int mandatory_completion_rounds = 0;
  /// Wall-clock limit on the whole saturation (fixpoint rounds, funct
  /// repair, mandatory completion). Infinite by default.
  Deadline deadline;
  /// Cooperative cancellation: when the token fires, Saturate returns
  /// kCancelled at the next amortized check.
  CancellationToken cancel;
};

class KnowledgeBase {
 public:
  explicit KnowledgeBase(World& world);

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  /// Parses an F-logic program; its facts enter the store, its rules and
  /// goals are kept for Rules()/Goals(). Invalidates saturation.
  Status Load(std::string_view flogic_text);

  /// Adds one ground fact. Invalidates saturation.
  Status AddFact(const Atom& fact);

  /// Materializes the Sigma_FL consequences (see class comment). Returns
  /// the consistency report; on rho_4 violations between constants the KB
  /// is flagged inconsistent but remains queryable.
  Result<ConsistencyReport> Saturate(const SaturateOptions& options = {});

  /// Registers a user (IDB) rule: head predicate `rule.name()/arity`,
  /// body over any predicates — recursion through the head predicate is
  /// allowed (the engine evaluates to fixpoint). The rule participates in
  /// every subsequent Saturate(), interleaved with Sigma_FL.
  Status DefineRule(const ConjunctiveQuery& rule);

  /// Registers every rule collected by Load() as an IDB rule.
  Status MaterializeLoadedRules();

  /// Answers a conjunctive query on the saturated store (saturates with
  /// default options first if needed).
  Result<std::vector<std::vector<Term>>> Answer(const ConjunctiveQuery& query);

  /// Parses and answers a query in F-logic surface syntax, e.g.
  /// "q(A) :- student[A *=> string]." or a bare formula "X : person".
  Result<std::vector<std::vector<Term>>> Answer(std::string_view query_text);

  /// Certain answers of `query` over this KB viewed as an *incomplete*
  /// database under Sigma_FL: the store is saturated and completed with
  /// labeled nulls (`completion_rounds` rounds of rho_5), making it a
  /// universal-model prefix (Fagin et al., the paper's Theorem 4 source);
  /// answers containing labeled nulls are then filtered out. Sound always;
  /// complete when completion reaches a fixpoint within the budget.
  Result<std::vector<std::vector<Term>>> CertainAnswers(
      const ConjunctiveQuery& query, int completion_rounds = 8);

  /// Serializes the current store as an F-logic surface program, one fact
  /// per line. Labeled nulls render as fresh constants "null_<k>" so the
  /// dump is loadable (the identities of nulls are preserved within one
  /// dump). Round-trips through Load().
  std::string DumpAsProgram() const;

  /// Writes the fact store (frozen, block-compressed) plus the World
  /// symbols to `path` as a versioned snapshot (datalog/snapshot.h). The
  /// saturation flag is recorded so LoadSnapshot can skip Saturate().
  Status SaveSnapshot(const std::string& path);

  /// Replaces the fact store with the snapshot at `path`, mmap-ing the
  /// atom array and posting arena in place. The World must be fresh or
  /// already hold exactly the snapshot's symbols. Rules/goals collected by
  /// Load() are untouched; saturation state is restored from the file.
  Status LoadSnapshot(const std::string& path);

  const Database& database() const { return database_; }
  World& world() { return world_; }
  bool saturated() const { return saturated_; }
  uint32_t size() const { return database_.size(); }

  /// Rules and goals collected from Load()ed programs.
  const std::vector<ConjunctiveQuery>& rules() const { return rules_; }
  const std::vector<ConjunctiveQuery>& goals() const { return goals_; }

 private:
  Status ApplyFunctRepair(ConsistencyReport& report);
  void CollectUnsatisfiedMandatory(ConsistencyReport& report) const;
  uint64_t CompleteMandatoryOnce();

  World& world_;
  Database database_;
  std::vector<Rule> sigma_rules_;  // the ten Datalog TGDs of Sigma_FL
  std::vector<ConjunctiveQuery> rules_;
  std::vector<ConjunctiveQuery> goals_;
  bool saturated_ = false;
};

}  // namespace floq

#endif  // FLOQ_KB_KNOWLEDGE_BASE_H_
