#ifndef FLOQ_CONTAINMENT_HOMOMORPHISM_H_
#define FLOQ_CONTAINMENT_HOMOMORPHISM_H_

#include <optional>
#include <vector>

#include "datalog/fact_index.h"
#include "datalog/match.h"
#include "query/conjunctive_query.h"
#include "term/substitution.h"

// Query homomorphisms (Definition 1 + Theorem 4 side conditions): a
// mapping of the query's variables (constants map to themselves) that
// sends every body atom into the target conjunct set and the head tuple
// onto a required target tuple.

namespace floq {

/// Searches for a homomorphism that maps body(query) into `target` and
/// head(query) position-wise onto `target_head`. Returns the homomorphism
/// or nullopt. `target_head` must have the query's arity.
std::optional<Substitution> FindQueryHomomorphism(
    const ConjunctiveQuery& query, const FactIndex& target,
    const std::vector<Term>& target_head, MatchStats* stats = nullptr,
    const MatchOptions& options = {});

/// Checks whether `candidate` is a valid homomorphism for the same
/// request (used by tests to validate witnesses).
bool IsQueryHomomorphism(const ConjunctiveQuery& query,
                         const FactIndex& target,
                         const std::vector<Term>& target_head,
                         const Substitution& candidate);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_HOMOMORPHISM_H_
