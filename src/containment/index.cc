#include "containment/index.h"

#include <utility>

#include "util/check.h"

namespace floq {

ContainmentIndex::ContainmentIndex(World& world,
                                   const BatchContainmentOptions& options)
    : engine_(world, options) {}

Resolution ContainmentIndex::ResolutionOf(size_t lhs, size_t rhs) const {
  FLOQ_CHECK_LT(lhs, resolution_.size());
  FLOQ_CHECK_LT(rhs, resolution_.size());
  return resolution_[lhs][rhs];
}

Result<size_t> ContainmentIndex::Insert(const ConjunctiveQuery& query) {
  Result<size_t> id_or = engine_.AddQuery(query);
  if (!id_or.ok()) return id_or.status();
  const size_t id = *id_or;
  const size_t n = id + 1;
  for (std::vector<Resolution>& row : resolution_) {
    row.resize(n, Resolution::kNotContained);
  }
  resolution_.emplace_back(n, Resolution::kNotContained);
  resolution_[id][id] = Resolution::kContained;  // reflexive
  ++stats_.inserts;

  // Candidate pairs in both directions against every same-arity entry,
  // prefiltered here so the engine batch holds only survivors. The engine
  // applies the same test again as its stage 0 — deterministic, so the
  // survivors pass it and nothing is double-counted as pruned.
  const ClosureSignature* sig_new = engine_.signature_of(id);
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t j = 0; j < id; ++j) {
    if (engine_.query(j).arity() != query.arity()) continue;
    const ClosureSignature* sig_old = engine_.signature_of(j);
    const std::pair<size_t, size_t> directions[2] = {{id, j}, {j, id}};
    for (const auto& [lhs, rhs] : directions) {
      ++stats_.candidate_pairs;
      const ClosureSignature* ls = lhs == id ? sig_new : sig_old;
      const ClosureSignature* rs = rhs == id ? sig_new : sig_old;
      if (ls != nullptr && rs != nullptr && !MayContain(*ls, rs->base)) {
        ++stats_.pruned_pairs;  // row already reads kNotContained
        continue;
      }
      pairs.emplace_back(lhs, rhs);
    }
  }

  if (!pairs.empty()) {
    Result<std::vector<PairVerdict>> verdicts = engine_.CheckPairs(pairs);
    if (!verdicts.ok()) return verdicts.status();
    stats_.checked_pairs += pairs.size();
    for (size_t k = 0; k < pairs.size(); ++k) {
      resolution_[pairs[k].first][pairs[k].second] = (*verdicts)[k].resolution;
      if ((*verdicts)[k].resolution == Resolution::kUnknown) {
        ++stats_.unknown_pairs;
      }
    }
  }
  return id;
}

QueryTaxonomy ContainmentIndex::TaxonomyOf(
    std::span<const size_t> ids) const {
  const size_t n = ids.size();
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    FLOQ_CHECK_LT(ids[i], size());
    for (size_t j = 0; j < n; ++j) {
      contained[i][j] =
          resolution_[ids[i]][ids[j]] == Resolution::kContained;
    }
  }
  return TaxonomyFromContainment(contained, int(stats_.checked_pairs),
                                 int(stats_.unknown_pairs),
                                 int(stats_.pruned_pairs));
}

QueryTaxonomy ContainmentIndex::Taxonomy() const {
  const size_t n = size();
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      // kUnknown counts as not-contained: the taxonomy only merges or
      // orders classes on proven containments.
      contained[i][j] = resolution_[i][j] == Resolution::kContained;
    }
  }
  return TaxonomyFromContainment(contained, int(stats_.checked_pairs),
                                 int(stats_.unknown_pairs),
                                 int(stats_.pruned_pairs));
}

}  // namespace floq
