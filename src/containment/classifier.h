#ifndef FLOQ_CONTAINMENT_CLASSIFIER_H_
#define FLOQ_CONTAINMENT_CLASSIFIER_H_

#include <string>
#include <vector>

#include "containment/containment.h"
#include "containment/engine.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Query classification under Sigma_FL — the knowledge-representation
// application the paper cites ("in knowledge representation it has been
// widely used ... for object classification, schema integration, service
// discovery", §1). Given a set of queries (views, service descriptions),
// the classifier computes the full containment preorder, collapses it into
// equivalence classes, and exposes the Hasse diagram of the induced
// partial order (most-specific to most-general).

namespace floq {

struct QueryTaxonomy {
  /// One entry per input query: the equivalence class it landed in.
  std::vector<int> class_of;

  /// The classes, each a non-empty list of input indexes; classes are
  /// numbered in input order of their first member.
  std::vector<std::vector<size_t>> classes;

  /// Hasse edges over classes: (sub, super) with sub ⊂ super and no class
  /// strictly between.
  std::vector<std::pair<int, int>> hasse_edges;

  /// Transitively closed strict containment between classes.
  std::vector<std::vector<bool>> contains;  // contains[sub][super]

  /// Number of pairwise containment checks that ran the full chase + hom
  /// pipeline.
  int checks = 0;

  /// Pairwise checks that returned Resolution::kUnknown (a resource
  /// budget tripped). Unknown pairs are treated conservatively as
  /// not-contained when building the preorder — the taxonomy never
  /// *merges* classes on an unproven containment — so a nonzero count
  /// means some edges/classes may be missing, never wrong.
  int unknown_checks = 0;

  /// Pairs discharged as definite kNotContained by the signature
  /// prefilter (signature.h) without running the pipeline. checks +
  /// pruned_checks covers every ordered pair the classification needed.
  int pruned_checks = 0;
};

/// Builds the taxonomy (equivalence classes, strict containment, Hasse
/// diagram) from a reflexive pairwise containment matrix; `checks`,
/// `unknown_checks` and `pruned_checks` seed the counters. Shared by the
/// one-shot classifier below and the incremental ContainmentIndex.
QueryTaxonomy TaxonomyFromContainment(
    const std::vector<std::vector<bool>>& contained, int checks,
    int unknown_checks, int pruned_checks);

/// Classifies `queries` (all must have equal arity) under Sigma_FL. The
/// n(n-1) pairwise checks run through a ContainmentEngine: each query is
/// chased once (not once per pair) and the homomorphism searches fan out
/// over `options.jobs` threads.
Result<QueryTaxonomy> ClassifyQueries(
    World& world, const std::vector<ConjunctiveQuery>& queries,
    const BatchContainmentOptions& options = {});

/// Convenience overload for callers holding plain per-pair options; runs
/// with the default thread count.
Result<QueryTaxonomy> ClassifyQueries(
    World& world, const std::vector<ConjunctiveQuery>& queries,
    const ContainmentOptions& options);

/// Renders the taxonomy as an indented forest, most general classes first.
std::string TaxonomyToString(const QueryTaxonomy& taxonomy,
                             const std::vector<ConjunctiveQuery>& queries,
                             const World& world);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_CLASSIFIER_H_
