#include "containment/signature.h"

#include <algorithm>
#include <bit>

#include "containment/containment.h"

namespace floq {

namespace {

// One hashed bit per constant: a Fibonacci multiplicative hash spreads
// consecutively interned ids across the 64-bit Bloom mask.
uint64_t ConstantBit(uint32_t raw) {
  return uint64_t(1) << ((raw * uint64_t(0x9E3779B97F4A7C15)) >> 58);
}

// Collects the distinct constants of `terms` into sorted (raw, count)
// parallel vectors (and their Bloom mask), merging with whatever is
// already there.
void FoldConstants(const Term* begin, const Term* end,
                   std::vector<uint32_t>* raws,
                   std::vector<uint32_t>* counts, uint64_t* mask) {
  for (const Term* t = begin; t != end; ++t) {
    if (!t->IsConstant()) continue;
    const uint32_t raw = t->raw();
    *mask |= ConstantBit(raw);
    auto it = std::lower_bound(raws->begin(), raws->end(), raw);
    if (it != raws->end() && *it == raw) {
      if (counts != nullptr) ++(*counts)[size_t(it - raws->begin())];
    } else {
      const size_t pos = size_t(it - raws->begin());
      raws->insert(it, raw);
      if (counts != nullptr) {
        counts->insert(counts->begin() + long(pos), 1);
      }
    }
  }
}

}  // namespace

int PredicateBits::Count() const {
  int count = 0;
  for (uint64_t word : words_) count += std::popcount(word);
  return count;
}

bool PredicateBits::Any() const {
  for (uint64_t word : words_) {
    if (word != 0) return true;
  }
  return false;
}

QuerySignature ComputeQuerySignature(const ConjunctiveQuery& query) {
  QuerySignature sig;
  sig.arity = query.arity();
  sig.atoms = uint32_t(query.body().size());
  sig.variables = uint32_t(query.Variables().size());
  for (const Atom& atom : query.body()) {
    sig.predicates.Set(atom.predicate());
    FoldConstants(atom.begin(), atom.end(), &sig.constants,
                  &sig.constant_counts, &sig.constant_mask);
  }
  const std::vector<Term>& head = query.head();
  FoldConstants(head.data(), head.data() + head.size(), &sig.constants,
                &sig.constant_counts, &sig.constant_mask);
  return sig;
}

PredicateBits SigmaClosurePredicates(const PredicateBits& start,
                                     bool with_rho5) {
  // Predicate-level abstraction of the twelve Sigma_FL rules (sigma_fl.h):
  // each entry reads "if every body predicate is derivable, the head
  // predicate is". Entries whose head already occurs in their body are
  // fixpoint no-ops but kept for fidelity to the rule list; rho_4 (an EGD)
  // derives no atom and has no entry.
  struct RuleAbstraction {
    PredicateId head;
    PredicateId body[2];
    int body_size;
    bool needs_rho5;
  };
  static constexpr RuleAbstraction kRules[] = {
      {pfl::kMember, {pfl::kType, pfl::kData}, 2, false},      // rho_1
      {pfl::kSub, {pfl::kSub, pfl::kSub}, 2, false},           // rho_2
      {pfl::kMember, {pfl::kMember, pfl::kSub}, 2, false},     // rho_3
      {pfl::kData, {pfl::kMandatory, kInvalidPredicate}, 1, true},  // rho_5
      {pfl::kType, {pfl::kMember, pfl::kType}, 2, false},      // rho_6
      {pfl::kType, {pfl::kSub, pfl::kType}, 2, false},         // rho_7
      {pfl::kType, {pfl::kType, pfl::kSub}, 2, false},         // rho_8
      {pfl::kMandatory, {pfl::kSub, pfl::kMandatory}, 2, false},    // rho_9
      {pfl::kMandatory, {pfl::kMember, pfl::kMandatory}, 2, false},  // rho_10
      {pfl::kFunct, {pfl::kSub, pfl::kFunct}, 2, false},       // rho_11
      {pfl::kFunct, {pfl::kMember, pfl::kFunct}, 2, false},    // rho_12
  };

  PredicateBits closure = start;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const RuleAbstraction& rule : kRules) {
      if (rule.needs_rho5 && !with_rho5) continue;
      if (closure.Test(rule.head)) continue;
      bool body_ok = true;
      for (int i = 0; i < rule.body_size; ++i) {
        body_ok = body_ok && closure.Test(rule.body[i]);
      }
      if (body_ok) {
        closure.Set(rule.head);
        changed = true;
      }
    }
  }
  return closure;
}

ClosureSignature ComputeClosureSignature(const ConjunctiveQuery& query,
                                         ChaseDepth depth,
                                         const ChaseResult* probe) {
  ClosureSignature sig;
  sig.base = ComputeQuerySignature(query);

  if (depth == ChaseDepth::kNone) {
    // Classical containment: the hom target IS body(q), so the base
    // signature is exact and no chase can fail.
    sig.closure_predicates = sig.base.predicates;
    sig.closure_constants = sig.base.constants;
    sig.closure_constant_mask = sig.base.constant_mask;
    sig.exact = true;
    sig.prunable = true;
    return sig;
  }

  if (probe != nullptr && probe->failed()) {
    sig.closure_predicates = sig.base.predicates;
    sig.closure_constants = sig.base.constants;
    sig.closure_constant_mask = sig.base.constant_mask;
    sig.chase_failed = true;
    sig.prunable = false;  // vacuously contained in everything
    return sig;
  }

  // The probe is exact when it materialized everything the engine's hom
  // stage can ever search: a completed chase, or — in level-0 mode — a
  // level-capped one (kLevelCapped promises every conjunct up to the cap
  // is present, and level 0 is the whole target).
  const bool exact =
      probe != nullptr &&
      (probe->outcome() == ChaseOutcome::kCompleted ||
       (depth == ChaseDepth::kLevelZero &&
        probe->outcome() == ChaseOutcome::kLevelCapped));

  if (exact) {
    for (const Atom& atom : probe->conjuncts().atoms()) {
      sig.closure_predicates.Set(atom.predicate());
      FoldConstants(atom.begin(), atom.end(), &sig.closure_constants,
                    nullptr, &sig.closure_constant_mask);
    }
    const std::vector<Term>& head = probe->head();
    FoldConstants(head.data(), head.data() + head.size(),
                  &sig.closure_constants, nullptr,
                  &sig.closure_constant_mask);
    sig.exact = true;
    sig.prunable = true;
    return sig;
  }

  // Inconclusive probe (interrupted / budget / deeper cap): fall back to
  // the static over-approximations, which cover every level.
  sig.closure_predicates = SigmaClosurePredicates(
      sig.base.predicates, /*with_rho5=*/depth != ChaseDepth::kLevelZero);
  sig.closure_constants = sig.base.constants;
  sig.closure_constant_mask = sig.base.constant_mask;

  // rho_4 can fail at a level the probe never reached (merge cascades can
  // make two original data atoms newly agree on (O, A)), and a failure
  // would make q vacuously contained in everything — so a query that
  // *could* still fail must not prune. It cannot fail unless funct atoms
  // are present, data atoms are derivable, and there are two distinct
  // constants to equate.
  const bool can_fail = sig.base.predicates.Test(pfl::kFunct) &&
                        sig.closure_predicates.Test(pfl::kData) &&
                        sig.base.constants.size() >= 2;
  sig.prunable = !can_fail;
  return sig;
}

bool MayContain(const ClosureSignature& lhs, const QuerySignature& rhs) {
  if (!lhs.prunable) return true;
  // Cheapest test first: a Bloom bit rhs carries but the closure lacks
  // proves some rhs constant is absent. Only mask-subset pairs pay the
  // exact checks below.
  if ((rhs.constant_mask & ~lhs.closure_constant_mask) != 0) return false;
  if (!rhs.predicates.IsSubsetOf(lhs.closure_predicates)) return false;
  // A homomorphism fixes constants and the chase invents none, so every
  // rhs constant must already occur in lhs's closure.
  return std::includes(lhs.closure_constants.begin(),
                       lhs.closure_constants.end(), rhs.constants.begin(),
                       rhs.constants.end());
}

}  // namespace floq
