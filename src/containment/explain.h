#ifndef FLOQ_CONTAINMENT_EXPLAIN_H_
#define FLOQ_CONTAINMENT_EXPLAIN_H_

#include <string>

#include "containment/containment.h"
#include "query/conjunctive_query.h"
#include "term/world.h"

// Human-readable explanations of containment verdicts. For a positive
// verdict: how each atom of q2 maps into chase(q1), and the Sigma_FL
// derivation (rule + premises, recursively) of each image conjunct. For a
// negative verdict: the canonical counterexample reading of Theorem 4.
// Used by the floq CLI and by the examples.

namespace floq {

/// Renders an explanation for `result`, which must come from
/// CheckContainment(world, q1, q2, ...) with depth != kNone.
std::string ExplainContainment(const World& world,
                               const ConjunctiveQuery& q1,
                               const ConjunctiveQuery& q2,
                               const ContainmentResult& result);

/// Renders the derivation tree of one chase conjunct ("... by rho_k from
/// ...", recursively, with sharing noted).
std::string ExplainDerivation(const World& world, const ChaseResult& chase,
                              uint32_t conjunct_id);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_EXPLAIN_H_
