#include "containment/minimize.h"

namespace floq {

Result<ConjunctiveQuery> MinimizeQuery(World& world,
                                       const ConjunctiveQuery& query,
                                       const ContainmentOptions& options,
                                       MinimizeStats* stats) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world));
  ConjunctiveQuery current = query;

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < current.body().size(); ++i) {
      std::vector<Atom> smaller_body = current.body();
      smaller_body.erase(smaller_body.begin() + i);
      ConjunctiveQuery candidate(current.name(), current.head(),
                                 std::move(smaller_body));
      // Dropping an atom must keep the head safe.
      if (!candidate.Validate(world).ok()) continue;

      // candidate has fewer atoms, so current ⊆ candidate holds trivially;
      // equivalence needs candidate ⊆ current.
      if (stats != nullptr) ++stats->containment_checks;
      Result<ContainmentResult> check =
          CheckContainment(world, candidate, current, options);
      if (!check.ok()) return check.status();
      if (check->contained) {
        current = std::move(candidate);
        if (stats != nullptr) ++stats->atoms_removed;
        changed = true;
        break;  // restart the scan over the shrunken body
      }
    }
  }
  return current;
}

namespace {

// One folding pass: tries to substitute a non-head variable by another
// body term; adopts the first equivalence-preserving fold. Returns true
// if a fold happened.
Result<bool> TryFoldOneVariable(World& world, ConjunctiveQuery& current,
                                const ContainmentOptions& options,
                                CoreStats* stats) {
  std::vector<Term> head_vars;
  for (Term t : current.head()) {
    if (t.IsVariable()) head_vars.push_back(t);
  }
  auto is_head_var = [&](Term t) {
    for (Term h : head_vars) {
      if (h == t) return true;
    }
    return false;
  };

  std::vector<Term> terms = current.BodyTerms();
  for (Term from : terms) {
    if (!from.IsVariable() || is_head_var(from)) continue;
    for (Term to : terms) {
      if (from == to) continue;
      Substitution fold;
      fold.Bind(from, to);
      ConjunctiveQuery candidate = current.Substitute(fold);
      // Folding instantiates the body, so candidate ⊆ current always
      // holds; equivalence needs current ⊆ candidate.
      if (stats != nullptr) ++stats->containment_checks;
      Result<ContainmentResult> check =
          CheckContainment(world, current, candidate, options);
      if (!check.ok()) return check.status();
      if (check->contained) {
        current = std::move(candidate);
        if (stats != nullptr) ++stats->variables_folded;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

Result<ConjunctiveQuery> ComputeCore(World& world,
                                     const ConjunctiveQuery& query,
                                     const ContainmentOptions& options,
                                     CoreStats* stats) {
  FLOQ_RETURN_IF_ERROR(query.Validate(world));
  ConjunctiveQuery current = query;

  for (;;) {
    MinimizeStats minimize_stats;
    Result<ConjunctiveQuery> minimized =
        MinimizeQuery(world, current, options, &minimize_stats);
    if (!minimized.ok()) return minimized.status();
    current = std::move(minimized).value();
    if (stats != nullptr) {
      stats->atoms_removed += minimize_stats.atoms_removed;
      stats->containment_checks += minimize_stats.containment_checks;
    }

    Result<bool> folded = TryFoldOneVariable(world, current, options, stats);
    if (!folded.ok()) return folded.status();
    if (!*folded) return current;
    // A fold may create duplicate atoms (removed by the dedup below) and
    // enable further removals; loop.
    std::vector<Atom> dedup;
    for (const Atom& atom : current.body()) {
      bool seen = false;
      for (const Atom& kept : dedup) seen |= kept == atom;
      if (!seen) dedup.push_back(atom);
    }
    current = ConjunctiveQuery(current.name(), current.head(),
                               std::move(dedup));
  }
}

}  // namespace floq
