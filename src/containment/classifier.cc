#include "containment/classifier.h"

#include <functional>

#include "util/strings.h"

namespace floq {

Result<QueryTaxonomy> ClassifyQueries(
    World& world, const std::vector<ConjunctiveQuery>& queries,
    const BatchContainmentOptions& options) {
  const size_t n = queries.size();
  if (n == 0) {
    QueryTaxonomy taxonomy;
    return taxonomy;
  }

  // Pairwise containment matrix over queries, via the batch engine: one
  // memoized chase per query, the signature prefilter discharging most
  // pairs, homomorphism searches fanned out for the survivors.
  ContainmentEngine engine(world, options);
  for (const ConjunctiveQuery& query : queries) {
    Result<size_t> id = engine.AddQuery(query);
    if (!id.ok()) return id.status();
  }
  Result<std::vector<std::vector<PairVerdict>>> matrix = engine.CheckAll();
  if (!matrix.ok()) return matrix.status();

  int unknown_checks = 0;
  std::vector<std::vector<bool>> contained(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    contained[i][i] = true;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      // An UNKNOWN verdict (resource trip) counts as not-contained here:
      // the taxonomy only merges or orders classes on *proven*
      // containments, so trips can hide structure but never fabricate it.
      contained[i][j] = (*matrix)[i][j].contained;
      if ((*matrix)[i][j].resolution == Resolution::kUnknown) {
        ++unknown_checks;
      }
    }
  }
  const BatchStats& stats = engine.stats();
  return TaxonomyFromContainment(
      contained, int(stats.pairs_checked - stats.pruned_pairs),
      unknown_checks, int(stats.pruned_pairs));
}

QueryTaxonomy TaxonomyFromContainment(
    const std::vector<std::vector<bool>>& contained, int checks,
    int unknown_checks, int pruned_checks) {
  const size_t n = contained.size();
  QueryTaxonomy taxonomy;
  taxonomy.class_of.assign(n, -1);
  taxonomy.checks = checks;
  taxonomy.unknown_checks = unknown_checks;
  taxonomy.pruned_checks = pruned_checks;
  if (n == 0) return taxonomy;

  // Equivalence classes: mutual containment.
  for (size_t i = 0; i < n; ++i) {
    if (taxonomy.class_of[i] >= 0) continue;
    int cls = int(taxonomy.classes.size());
    taxonomy.classes.push_back({i});
    taxonomy.class_of[i] = cls;
    for (size_t j = i + 1; j < n; ++j) {
      if (taxonomy.class_of[j] < 0 && contained[i][j] && contained[j][i]) {
        taxonomy.class_of[j] = cls;
        taxonomy.classes[cls].push_back(j);
      }
    }
  }

  // Strict containment between classes (via representatives).
  const size_t m = taxonomy.classes.size();
  taxonomy.contains.assign(m, std::vector<bool>(m, false));
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      size_t i = taxonomy.classes[a][0];
      size_t j = taxonomy.classes[b][0];
      taxonomy.contains[a][b] = contained[i][j];
    }
  }

  // Hasse reduction: keep (a, b) with nothing strictly between.
  for (size_t a = 0; a < m; ++a) {
    for (size_t b = 0; b < m; ++b) {
      if (!taxonomy.contains[a][b]) continue;
      bool direct = true;
      for (size_t c = 0; c < m && direct; ++c) {
        if (c == a || c == b) continue;
        direct = !(taxonomy.contains[a][c] && taxonomy.contains[c][b]);
      }
      if (direct) taxonomy.hasse_edges.emplace_back(int(a), int(b));
    }
  }
  return taxonomy;
}

Result<QueryTaxonomy> ClassifyQueries(
    World& world, const std::vector<ConjunctiveQuery>& queries,
    const ContainmentOptions& options) {
  BatchContainmentOptions batch;
  batch.containment = options;
  return ClassifyQueries(world, queries, batch);
}

std::string TaxonomyToString(const QueryTaxonomy& taxonomy,
                             const std::vector<ConjunctiveQuery>& queries,
                             const World& world) {
  const size_t m = taxonomy.classes.size();
  std::string out;

  auto class_label = [&](size_t cls) {
    std::vector<std::string> names;
    for (size_t i : taxonomy.classes[cls]) names.push_back(queries[i].name());
    return Join(names, " ≡ ");
  };

  // Children of each class in the Hasse diagram (sub below super).
  std::vector<std::vector<int>> children(m);
  std::vector<bool> has_parent(m, false);
  for (const auto& [sub, super] : taxonomy.hasse_edges) {
    children[super].push_back(sub);
    has_parent[sub] = true;
  }

  std::function<void(size_t, int)> render = [&](size_t cls, int depth) {
    out += std::string(size_t(depth) * 2, ' ');
    out += class_label(cls);
    out += '\n';
    for (int child : children[cls]) render(size_t(child), depth + 1);
  };

  for (size_t cls = 0; cls < m; ++cls) {
    if (!has_parent[cls]) render(cls, 0);  // maximal (most general) roots
  }
  (void)world;
  return out;
}

}  // namespace floq
