#ifndef FLOQ_CONTAINMENT_GOVERNOR_H_
#define FLOQ_CONTAINMENT_GOVERNOR_H_

#include <cstdint>

#include "chase/chase.h"
#include "util/deadline.h"

// Resource governance for containment checks (DESIGN.md §11). A check has
// two long-running stages — materializing chase(q1) and searching for a
// homomorphism body(q2) -> chase(q1) — and a ResourceBudget bounds both.
// When a budget trips, the check degrades to a three-valued Resolution
// instead of returning a spurious "not contained":
//
//   * A homomorphism into ANY materialized chase prefix is a sound
//     positive (the prefix maps into the universal model, so the
//     composition body(q2) -> prefix -> universal model is a witness):
//     kContained can be reported even from a truncated chase.
//   * "No homomorphism" is only conclusive against the full Theorem-12
//     materialization with an exhausted search: a trip in either stage
//     turns the negative into kUnknown with the stage's TripReason.

namespace floq {

/// Three-valued verdict of a governed containment check.
enum class Resolution : uint8_t {
  kContained = 0,
  kNotContained,
  kUnknown,
};

/// "CONTAINED", "NOT_CONTAINED", or "UNKNOWN".
const char* ResolutionName(Resolution resolution);

/// Per-check resource limits. Default fields mean "unlimited"; the paper's
/// decision procedure then runs to completion (modulo the pre-existing
/// max_chase_atoms cap). timeout_ms is relative and anchored when the
/// governed stage starts; deadline is absolute; when both are set the
/// earlier wins.
struct ResourceBudget {
  /// Wall-clock budget in milliseconds; <= 0 means none. In a batch
  /// engine each pair anchors its own timeout, so one runaway pair cannot
  /// starve the rest of the batch.
  int64_t timeout_ms = 0;
  /// Absolute deadline shared by every stage (and, in a batch, by every
  /// pair).
  Deadline deadline;
  /// Cooperative cancellation token observed by every stage.
  CancellationToken cancel;
  /// Cap on homomorphism-search steps (backtracking nodes plus candidate
  /// iterations) per hom-search stage; 0 means none.
  uint64_t hom_step_budget = 0;

  bool unlimited() const {
    return timeout_ms <= 0 && deadline.infinite() && !cancel.valid() &&
           hom_step_budget == 0;
  }

  /// Calibrates `base` for one pair from its predicted cost relative to
  /// the batch mean (analysis/cost_model.h feeds both numbers): a pair
  /// predicted k times more expensive than average gets up to k times the
  /// hom step budget, capped at 64x. The result is never below `base` —
  /// an unlimited budget stays unlimited, a cheap pair keeps its full
  /// share — so calibration can only turn step-budget kUnknowns into
  /// definite verdicts, never the reverse (the verdict-parity invariant
  /// the differential tests pin down).
  static ResourceBudget FromEstimate(const ResourceBudget& base,
                                     double pair_cost, double mean_cost);
};

/// The budget's deadline, anchored now: min(absolute deadline, now +
/// timeout_ms). Call once per governed stage.
Deadline AnchorDeadline(const ResourceBudget& budget);

/// A governor for the chase stage: deadline and cancellation, no step
/// budget (the chase has its own atom budget in ChaseOptions).
ExecGovernor MakeChaseGovernor(const ResourceBudget& budget);

/// A governor for the homomorphism-search stage: deadline, cancellation,
/// and the hom step budget.
ExecGovernor MakeHomGovernor(const ResourceBudget& budget);

/// Why a chase left the check inconclusive, or kNone when its prefix is
/// conclusive for negatives too (completed or deep enough). `governor` is
/// the governor the chase ran under.
TripReason ChaseTripReason(ChaseOutcome outcome, const ExecGovernor& governor);

/// Folds one finished governed stage into the MetricsRegistry:
/// `governor.ticks` grows by the stage's step count, and a trip bumps the
/// per-reason counter `governor.trip.<reason>`. No-op when metrics are
/// disabled. Thread-safe — the hom fan-out calls this from workers.
void FoldGovernorMetrics(const ExecGovernor& governor);

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_GOVERNOR_H_
