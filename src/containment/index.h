#ifndef FLOQ_CONTAINMENT_INDEX_H_
#define FLOQ_CONTAINMENT_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "containment/classifier.h"
#include "containment/engine.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// The containment index: an incrementally maintained containment preorder
// over a growing query registry. Where ClassifyQueries answers the full
// N^2 matrix in one batch, the index supports classify-on-insert: each
// Insert places the new query into the existing lattice by checking it
// against *only the candidate pairs that survive the signature prefilter*
// (signature.h) — for a typical registry the filter discharges the
// overwhelming majority of the 2·N candidate pairs before the engine ever
// sees them, so an insert costs a handful of chase/hom decisions instead
// of 2·N.
//
// Soundness: a discharged pair is a definite kNotContained (the subset
// test is a necessary condition of containment, see signature.h), so the
// maintained matrix is exactly what a full batch over the same options
// would produce — the differential suite in tests/containment_index_test.cc
// asserts this pair-for-pair.

namespace floq {

/// Cumulative accounting across all Inserts.
struct IndexStats {
  uint64_t inserts = 0;
  /// Ordered same-arity candidate pairs considered ((id, j) and (j, id)
  /// per existing entry j).
  uint64_t candidate_pairs = 0;
  /// Candidates discharged by the signature prefilter before reaching the
  /// engine (definite kNotContained).
  uint64_t pruned_pairs = 0;
  /// Candidates that survived and ran the full chase + hom pipeline.
  uint64_t checked_pairs = 0;
  /// Checked pairs whose verdict degraded to Resolution::kUnknown.
  uint64_t unknown_pairs = 0;
};

class ContainmentIndex {
 public:
  explicit ContainmentIndex(World& world,
                            const BatchContainmentOptions& options = {});

  ContainmentIndex(const ContainmentIndex&) = delete;
  ContainmentIndex& operator=(const ContainmentIndex&) = delete;

  /// Registers `query`, decides its containment relation to every query
  /// already in the index (both directions), and returns its dense id.
  /// Cross-arity pairs are recorded kNotContained without any check —
  /// containment only relates queries of equal arity.
  Result<size_t> Insert(const ConjunctiveQuery& query);

  size_t size() const { return engine_.query_count(); }
  const ConjunctiveQuery& query(size_t id) const { return engine_.query(id); }

  /// The maintained verdict for query(lhs) ⊆_Sigma query(rhs). The
  /// diagonal is kContained (containment is reflexive).
  Resolution ResolutionOf(size_t lhs, size_t rhs) const;
  bool Contains(size_t lhs, size_t rhs) const {
    return ResolutionOf(lhs, rhs) == Resolution::kContained;
  }

  /// The taxonomy of everything inserted so far (equivalence classes,
  /// Hasse diagram), built from the maintained matrix without any further
  /// containment checks.
  QueryTaxonomy Taxonomy() const;

  /// Taxonomy restricted to `ids` (dense ids in any order; `class_of` and
  /// `classes` index into `ids` positionally). Lets a caller that
  /// tombstones entries — the serve registry, where unregister removes a
  /// query from the live set but not from the engine — classify just the
  /// live subset from the maintained matrix, again with no new checks.
  QueryTaxonomy TaxonomyOf(std::span<const size_t> ids) const;

  const IndexStats& index_stats() const { return stats_; }
  /// The underlying engine's cache/fan-out stats (chases run, cache hits,
  /// in-engine pruning of pairs the prefilter let through).
  const BatchStats& engine_stats() const { return engine_.stats(); }
  ContainmentEngine& engine() { return engine_; }

 private:
  ContainmentEngine engine_;
  // resolution_[lhs][rhs]; rows grow with each Insert.
  std::vector<std::vector<Resolution>> resolution_;
  IndexStats stats_;
};

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_INDEX_H_
