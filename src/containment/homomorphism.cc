#include "containment/homomorphism.h"

#include "util/check.h"

namespace floq {

namespace {

// Seeds the substitution with the head constraint: head(query)[i] must map
// to target_head[i]. Returns false if impossible (a head constant differs
// from the target, or one variable would need two images).
bool SeedFromHead(const ConjunctiveQuery& query,
                  const std::vector<Term>& target_head, Substitution& seed) {
  FLOQ_CHECK_EQ(target_head.size(), size_t(query.arity()));
  for (int i = 0; i < query.arity(); ++i) {
    Term from = query.head()[i];
    Term to = target_head[i];
    if (from.IsVariable()) {
      if (!seed.TryBind(from, to)) return false;
    } else if (from != to) {
      // Constants (and nulls) map to themselves.
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<Substitution> FindQueryHomomorphism(
    const ConjunctiveQuery& query, const FactIndex& target,
    const std::vector<Term>& target_head, MatchStats* stats,
    const MatchOptions& options) {
  Substitution seed;
  if (!SeedFromHead(query, target_head, seed)) return std::nullopt;
  std::optional<Substitution> found;
  MatchConjunction(
      query.body(), target, seed,
      [&](const Substitution& match) {
        found = match;
        return false;  // first match suffices
      },
      stats, options);
  return found;
}

bool IsQueryHomomorphism(const ConjunctiveQuery& query,
                         const FactIndex& target,
                         const std::vector<Term>& target_head,
                         const Substitution& candidate) {
  if (target_head.size() != size_t(query.arity())) return false;
  for (int i = 0; i < query.arity(); ++i) {
    if (candidate.Apply(query.head()[i]) != target_head[i]) return false;
  }
  for (const Atom& atom : query.body()) {
    if (!target.Contains(candidate.Apply(atom))) return false;
  }
  // Constants must map to themselves.
  for (const auto& [from, to] : candidate.entries()) {
    if (!from.IsVariable() && from != to) return false;
  }
  return true;
}

}  // namespace floq
