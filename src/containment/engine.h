#ifndef FLOQ_CONTAINMENT_ENGINE_H_
#define FLOQ_CONTAINMENT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "containment/containment.h"
#include "containment/signature.h"
#include "query/conjunctive_query.h"
#include "term/world.h"
#include "util/status.h"

// Batch containment over a shared query set. Every realistic workload —
// the classify taxonomy, view-based rewriting, the bench matrix — asks
// O(n^2) containment questions over the *same* n queries, and the pairwise
// CheckContainment re-materializes chase_Sigma(q1) from scratch for every
// pair. The engine instead keeps one memoized, resumable chase handle per
// registered query, deepens it lazily to the largest Theorem 12 bound
// |q2| * 2|q1| any requested pair demands (a deeper chase prefix is still
// a universal-model prefix, so homomorphism verdicts are unchanged), and
// then fans the pairwise homomorphism searches out across a thread pool.
//
// With options.containment.use_signature_index on (the default), a stage-0
// signature filter runs first: registration computes a closure signature
// per query (signature.h) from a bounded probe chase, and any pair whose
// predicate/constant subset test fails is discharged as a definite
// kNotContained before either expensive stage — typically the vast
// majority of a dense N^2 matrix (DESIGN.md §13).
//
// Concurrency model (see DESIGN.md §8): all chase construction, deepening,
// and query renaming happen sequentially on the calling thread (they draw
// fresh nulls/variables from the shared World, which is not thread-safe);
// the handles are then frozen (ResumableChase::Freeze) and shared
// read-only with stateless workers that only perform const FactIndex
// lookups. n queries cost n chases instead of n(n-1).

namespace floq {

struct BatchContainmentOptions {
  /// Per-pair semantics: depth, level override, chase atom budget, and the
  /// resource budget (containment.budget). The engine honors all three
  /// ChaseDepth modes. The budget is applied *per pair, per stage*: each
  /// pair's chase stage and hom stage re-anchor containment.budget's
  /// timeout_ms, so one runaway pair exhausts its own slice (at most
  /// ~2x timeout_ms) and every other pair still gets its full share. The
  /// absolute deadline and cancellation token are shared batch-wide.
  ContainmentOptions containment;
  /// Worker threads for the homomorphism fan-out. 0 = hardware
  /// concurrency; 1 = run everything on the calling thread.
  int jobs = 0;
};

/// Wall-clock accounting for one pipeline stage across a batch. Only
/// *decided* pairs are recorded: a cancelled or timed-out pair's time
/// reflects where its budget tripped, not the cost of the work, and
/// folding it in would skew every throughput-style aggregate. Degraded
/// pairs are counted separately (unknown_pairs / timed_out_pairs /
/// cancelled_pairs and BatchStats::hom_degraded).
struct StageMetrics {
  uint64_t samples = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  void Record(double ms) {
    ++samples;
    total_ms += ms;
    if (ms > max_ms) max_ms = ms;
  }
  double mean_ms() const {
    return samples == 0 ? 0.0 : total_ms / double(samples);
  }
};

/// Cache and fan-out accounting for one engine.
struct BatchStats {
  /// One request per checked pair (the pair's left-hand side needs a
  /// materialized chase).
  uint64_t chase_requests = 0;
  /// Requests served by a handle built for an earlier pair.
  uint64_t chase_cache_hits = 0;
  /// Distinct queries chased (cache misses; each query is chased once).
  uint64_t chases_run = 0;
  /// Times an existing handle had to resume its chase to a deeper level.
  uint64_t chase_deepenings = 0;
  uint64_t pairs_checked = 0;
  /// Pairs discharged by the stage-0 signature filter: definite
  /// kNotContained with zero chase or hom work (never counted in
  /// chase_requests). pruned_pairs + chase_requests == pairs checked in
  /// every depth mode when the filter is on.
  uint64_t pruned_pairs = 0;
  /// Cumulative microseconds spent in the stage-0 signature subset tests
  /// (registration-time probe chases are accounted to chases_run).
  double signature_us = 0.0;
  /// Cumulative microseconds spent estimating per-pair costs and sorting
  /// the schedule (use_cost_scheduling only; zero otherwise).
  double cost_us = 0.0;
  /// Pairs whose hom step budget was raised by ResourceBudget::FromEstimate
  /// (use_cost_scheduling with a step budget set).
  uint64_t budget_calibrated_pairs = 0;
  /// Pairs whose verdict degraded to Resolution::kUnknown (any reason).
  uint64_t unknown_pairs = 0;
  /// Unknown pairs whose reason was a tripped deadline.
  uint64_t timed_out_pairs = 0;
  /// Unknown pairs whose reason was cancellation (engine or user token).
  uint64_t cancelled_pairs = 0;
  /// Aggregated homomorphism search effort across *decided* pairs.
  MatchStats hom;
  /// Hom effort of pairs that degraded to Resolution::kUnknown — kept out
  /// of `hom` so decided-pair averages are not polluted by searches that
  /// were cut off mid-flight.
  MatchStats hom_degraded;
  /// Per-stage wall time, decided pairs only (see StageMetrics).
  StageMetrics chase_stage;
  StageMetrics hom_stage;
  /// Delay between the hom fan-out opening and each pair's search actually
  /// starting on a worker (scheduling / queueing latency).
  StageMetrics queue_wait;
};

/// Verdict for one ordered pair lhs ⊆ rhs.
struct PairVerdict {
  /// Always equals (resolution == Resolution::kContained).
  bool contained = false;
  /// Three-valued verdict: kUnknown means this pair's resource budget
  /// tripped before the pair was decided (the rest of the batch is
  /// unaffected); `unknown_reason` names the budget that tripped first.
  Resolution resolution = Resolution::kNotContained;
  TripReason unknown_reason = TripReason::kNone;
  /// The stage-0 signature filter discharged this pair (a sound definite
  /// kNotContained; see signature.h): no chase or hom stage ran, and
  /// chase_ms / hom_ms / hom_stats stay zero.
  bool pruned = false;
  /// Containment holds vacuously: chase(lhs) failed (rho_4 equated two
  /// distinct constants), so lhs is unsatisfiable under Sigma_FL.
  bool lhs_unsatisfiable = false;
  /// Level the lhs chase was materialized to when searching (-1 for
  /// ChaseDepth::kNone).
  int level_bound = -1;
  /// Search effort of this pair's homomorphism search.
  MatchStats hom_stats;
  /// Wall-clock stage costs for this pair. chase_ms covers the EnsureLevel
  /// call (near zero on a cache hit that needs no deepening); hom_ms the
  /// homomorphism search; queue_wait_ms the delay before a worker picked
  /// the pair up. All zero for stages the pair never reached.
  double chase_ms = 0.0;
  double hom_ms = 0.0;
  double queue_wait_ms = 0.0;
  /// The scheduler's static cost prediction for this pair
  /// (CostEstimate::Scalar; zero when use_cost_scheduling is off). The
  /// cost-model bench correlates it against chase_ms + hom_ms.
  double predicted_cost = 0.0;
};

class ContainmentEngine {
 public:
  explicit ContainmentEngine(World& world,
                             const BatchContainmentOptions& options = {});
  ~ContainmentEngine();

  ContainmentEngine(const ContainmentEngine&) = delete;
  ContainmentEngine& operator=(const ContainmentEngine&) = delete;

  /// Registers a query and returns its dense id (the cache key: chases are
  /// memoized per id). Fails if the query is malformed. Registration
  /// renames the query apart eagerly, so later checks share one renamed
  /// copy instead of re-renaming per pair.
  Result<size_t> AddQuery(const ConjunctiveQuery& query);

  size_t query_count() const;
  const ConjunctiveQuery& query(size_t id) const;

  /// Decides lhs ⊆_Sigma rhs for every requested (lhs, rhs) id pair.
  /// Verdicts align with `pairs`. Fails on arity mismatches. Resource
  /// trips never fail the batch: the affected pair's verdict becomes
  /// Resolution::kUnknown with a typed reason and every other pair still
  /// gets a definite answer.
  Result<std::vector<PairVerdict>> CheckPairs(
      std::span<const std::pair<size_t, size_t>> pairs);

  /// The full matrix: verdicts[i][j] answers query(i) ⊆ query(j) for all
  /// i != j (the diagonal is left defaulted — containment is reflexive).
  Result<std::vector<std::vector<PairVerdict>>> CheckAll();

  /// The materialized chase of a query, if one was built (nullptr before
  /// any check used `id` as a left-hand side, or in kNone mode). With the
  /// signature index on, registration already runs a bounded probe chase,
  /// so this is non-null for every id right after AddQuery.
  const ChaseResult* chase_of(size_t id) const;

  /// The closure signature computed at registration, or nullptr when
  /// options.containment.use_signature_index is off. Incremental callers
  /// (ContainmentIndex) use it to prefilter candidate pairs before ever
  /// building a CheckPairs batch.
  const ClosureSignature* signature_of(size_t id) const;

  const BatchStats& stats() const { return stats_; }

  /// Requests cooperative cancellation of any in-flight CheckPairs /
  /// CheckAll. Safe to call from another thread; the batch returns
  /// promptly (within one governor stride per worker) with every
  /// unfinished pair marked Resolution::kUnknown(kCancelled) and every
  /// already-finished pair keeping its definite verdict. Cancellation
  /// latches: later batches also return kCancelled until ResetCancel().
  void Cancel();
  bool cancel_requested() const { return cancel_source_.cancel_requested(); }
  /// Re-arms the engine after a Cancel(). Must not race an in-flight
  /// batch; call it between batches only.
  void ResetCancel();

 private:
  struct Entry;

  /// The batch pipeline behind CheckPairs and CheckAll. `out(k)` returns
  /// the verdict slot for pairs[k]; templating the output lets CheckAll
  /// write each verdict straight into its final matrix cell instead of
  /// filling a flat vector and copying — on an n-thousand-query registry
  /// that copy (and its second allocation) would dominate the pruned-pair
  /// fast path. Instantiated only in engine.cc.
  template <class OutFn>
  Status CheckPairsCore(std::span<const std::pair<size_t, size_t>> pairs,
                        OutFn&& out);

  World& world_;
  BatchContainmentOptions options_;
  std::vector<std::unique_ptr<Entry>> entries_;
  BatchStats stats_;
  CancellationSource cancel_source_;
};

}  // namespace floq

#endif  // FLOQ_CONTAINMENT_ENGINE_H_
