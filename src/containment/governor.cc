#include "containment/governor.h"

#include <algorithm>

#include "util/metrics.h"
#include "util/strings.h"

namespace floq {

const char* ResolutionName(Resolution resolution) {
  switch (resolution) {
    case Resolution::kContained: return "CONTAINED";
    case Resolution::kNotContained: return "NOT_CONTAINED";
    case Resolution::kUnknown: return "UNKNOWN";
  }
  return "invalid";
}

Deadline AnchorDeadline(const ResourceBudget& budget) {
  Deadline deadline = budget.deadline;
  if (budget.timeout_ms > 0) {
    deadline = Deadline::Min(deadline, Deadline::AfterMillis(budget.timeout_ms));
  }
  return deadline;
}

ResourceBudget ResourceBudget::FromEstimate(const ResourceBudget& base,
                                            double pair_cost,
                                            double mean_cost) {
  ResourceBudget out = base;
  if (base.hom_step_budget == 0 || !(mean_cost > 0.0) || !(pair_cost > 0.0)) {
    return out;
  }
  const double ratio = pair_cost / mean_cost;
  if (ratio <= 1.0) return out;  // never shrink: cheap pairs keep base
  constexpr double kMaxScale = 64.0;
  const double scaled = double(base.hom_step_budget) * std::min(ratio, kMaxScale);
  // The cap keeps the multiply far from overflow, but saturate anyway for
  // budgets near UINT64_MAX.
  out.hom_step_budget =
      scaled >= double(UINT64_MAX) ? UINT64_MAX : uint64_t(scaled);
  if (out.hom_step_budget < base.hom_step_budget) {
    out.hom_step_budget = base.hom_step_budget;
  }
  return out;
}

ExecGovernor MakeChaseGovernor(const ResourceBudget& budget) {
  return ExecGovernor(AnchorDeadline(budget), budget.cancel);
}

ExecGovernor MakeHomGovernor(const ResourceBudget& budget) {
  return ExecGovernor(AnchorDeadline(budget), budget.cancel,
                      budget.hom_step_budget);
}

TripReason ChaseTripReason(ChaseOutcome outcome,
                           const ExecGovernor& governor) {
  switch (outcome) {
    case ChaseOutcome::kBudgetExceeded:
      return TripReason::kChaseAtomBudget;
    case ChaseOutcome::kInterrupted:
      // The governor that stopped the chase knows the precise reason; an
      // interrupted outcome without a local trip (a cached chase another
      // governor stopped earlier) defaults to the deadline.
      return governor.tripped() ? governor.trip()
                                : TripReason::kDeadlineExceeded;
    default:
      return TripReason::kNone;
  }
}

void FoldGovernorMetrics(const ExecGovernor& governor) {
  if (!MetricsRegistry::enabled()) return;
  MetricsRegistry& registry = MetricsRegistry::Get();
  static Counter& ticks = registry.counter("governor.ticks");
  if (governor.steps() > 0) ticks.Add(governor.steps());
  if (!governor.tripped()) return;
  // Resolved through the registry map (not a cached static) because the
  // label varies per call; trips are rare, so the lock is off the hot path.
  registry.counter(StrCat("governor.trip.", TripReasonName(governor.trip())))
      .Add(1);
}

}  // namespace floq
