#include "containment/explain.h"

#include <unordered_set>

#include "util/strings.h"

namespace floq {

namespace {

// One-line summary of the homomorphism search effort behind a verdict.
std::string RenderSearchEffort(const MatchStats& stats) {
  return StrCat("search effort: ", stats.nodes_visited,
                " backtracking nodes visited, ", stats.index_probes,
                " index probes, ", stats.matches_found,
                " matches found.\n");
}

void RenderDerivation(const World& world, const ChaseResult& chase,
                      uint32_t id, int depth,
                      std::unordered_set<uint32_t>& visited,
                      std::string& out) {
  out += std::string(size_t(depth) * 2, ' ');
  out += chase.conjunct(id).ToString(world);
  const ChaseNodeMeta& meta = chase.meta(id);
  if (meta.rule == kRho0) {
    out += "   [in body(q1)]\n";
    return;
  }
  out += StrCat("   [level ", meta.level, ", by rho_", int(meta.rule), "]");
  if (!visited.insert(id).second) {
    out += "   (derivation shown above)\n";
    return;
  }
  out += '\n';
  for (uint32_t parent : meta.parents) {
    RenderDerivation(world, chase, parent, depth + 1, visited, out);
  }
}

}  // namespace

std::string ExplainDerivation(const World& world, const ChaseResult& chase,
                              uint32_t conjunct_id) {
  std::string out;
  std::unordered_set<uint32_t> visited;
  RenderDerivation(world, chase, conjunct_id, 0, visited, out);
  return out;
}

std::string ExplainContainment(const World& world,
                               const ConjunctiveQuery& q1,
                               const ConjunctiveQuery& q2,
                               const ContainmentResult& result) {
  std::string out;
  out += StrCat("q1 = ", q1.ToString(world), "\n");
  out += StrCat("q2 = ", q2.ToString(world), "\n");

  if (result.q1_unsatisfiable) {
    out += "VERDICT: q1 ⊆ q2 holds vacuously — the chase of q1 FAILED\n";
    out += "(rho_4 equated two distinct constants), so q1 has no answers\n";
    out += "on any database satisfying Sigma_FL.\n";
    return out;
  }

  if (result.resolution == Resolution::kUnknown) {
    out += StrCat("VERDICT: UNKNOWN (",
                  TripReasonName(result.unknown_reason),
                  " budget tripped before the check was decided).\n");
    out += StrCat("chase(q1) materialized ", result.chase.size(),
                  " conjuncts up to level ", result.chase.max_level(),
                  " of the ", result.level_bound, " required.\n");
    out += "No homomorphism was found in the explored prefix, but a\n";
    out += "truncated chase or search cannot refute containment; rerun\n";
    out += "with a larger budget for a definite verdict.\n";
    out += RenderSearchEffort(result.hom_stats);
    return out;
  }

  if (!result.contained) {
    out += "VERDICT: q1 ⊄ q2 under Sigma_FL.\n";
    out += StrCat("No homomorphism maps body(q2) into the first ",
                  result.level_bound, " levels of chase(q1) — by Theorem 12\n",
                  "none maps into the full chase, so the (frozen) chase of "
                  "q1 is a\ncounterexample database: q1 returns (",
                  [&] {
                    std::vector<std::string> names;
                    for (Term t : result.chase.head()) {
                      names.push_back(world.NameOf(t));
                    }
                    return Join(names, ", ");
                  }(),
                  ") on it, q2 does not.\n");
    out += StrCat("chase(q1) has ", result.chase.size(),
                  " conjuncts up to level ", result.chase.max_level(), ".\n");
    out += RenderSearchEffort(result.hom_stats);
    return out;
  }

  out += "VERDICT: q1 ⊆ q2 under Sigma_FL (Theorem 4/12).\n";
  out += RenderSearchEffort(result.hom_stats);
  if (!result.witness.has_value()) return out;
  out += "witness homomorphism and image derivations:\n";
  for (const Atom& atom : q2.body()) {
    Atom image = result.witness->Apply(atom);
    out += StrCat("  ", atom.ToString(world), "  ->  ",
                  image.ToString(world), "\n");
    uint32_t id = result.chase.conjuncts().IdOf(image);
    if (id != kInvalidFactId) {
      std::string derivation = ExplainDerivation(world, result.chase, id);
      // Indent the derivation under the mapping line.
      for (const std::string& line : Split(derivation, '\n')) {
        if (!line.empty()) out += StrCat("      ", line, "\n");
      }
    }
  }
  return out;
}

}  // namespace floq
